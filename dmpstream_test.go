package dmpstream_test

import (
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"dmpstream"
)

func twoPathModel(ratio float64, mu float64) dmpstream.Model {
	// Build a homogeneous two-path model with aggregate throughput
	// ratio·mu by scaling the RTT (σ scales exactly as 1/RTT).
	ref := dmpstream.PathParams{LossRate: 0.02, RTT: 100 * time.Millisecond, TimeoutRatio: 4}
	sigma, err := dmpstream.PathThroughput(ref)
	if err != nil {
		panic(err)
	}
	// Want per-path σ' = ratio·mu/2: RTT' = RTT·σ/σ'.
	ref.RTT = time.Duration(float64(ref.RTT) * sigma / (ratio * mu / 2))
	return dmpstream.Model{Paths: []dmpstream.PathParams{ref, ref}, PlaybackRate: mu, Seed: 1}
}

func TestHeadlineResultMultipathAt1_6(t *testing.T) {
	// The paper's headline: two paths at sigma_a/mu = 1.6 reach satisfactory
	// quality (late fraction < 1e-4) with a startup delay around 10 seconds.
	m := twoPathModel(1.6, 25)
	agg, err := m.AggregateThroughput()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(agg/25-1.6) > 0.01 {
		t.Fatalf("constructed ratio %v", agg/25)
	}
	delay, ok, err := m.RequiredStartupDelay(1e-4, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("no feasible startup delay at sigma_a/mu = 1.6")
	}
	if delay > 30*time.Second {
		t.Fatalf("required delay %v; paper reports around 10s", delay)
	}
}

func TestMultipathBeatsSinglePathAtEqualAggregate(t *testing.T) {
	// Single-path TCP streaming needs sigma/mu ≈ 2; multipath gets away with
	// 1.6. At an aggregate ratio of 1.5 the single path should need a larger
	// buffer than the two-path split, or fail outright.
	const mu = 25
	dual := twoPathModel(1.5, mu)
	ref := dual.Paths[0]
	ref.RTT /= 2 // one path with the full aggregate throughput
	single := dmpstream.Model{Paths: []dmpstream.PathParams{ref}, PlaybackRate: mu, Seed: 1}

	dualDelay, dualOK, err := dual.RequiredStartupDelay(1e-3, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	singleDelay, singleOK, err := single.RequiredStartupDelay(1e-3, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !dualOK {
		t.Fatal("two paths infeasible at ratio 1.5")
	}
	if singleOK && singleDelay < dualDelay {
		t.Fatalf("single path (%v) beat two paths (%v) at equal aggregate throughput",
			singleDelay, dualDelay)
	}
}

func TestIntroQuestionTwoHalfPaths(t *testing.T) {
	// Paper intro question (i): two paths with half the throughput each can
	// replace one full path.
	const mu = 50
	full := twoPathModel(2.0, mu) // per-path σ = mu
	half := full.Paths[0]
	single := dmpstream.Model{Paths: []dmpstream.PathParams{half}, PlaybackRate: mu, Seed: 1}
	singleF, err := single.FractionLate(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	dualF, err := full.FractionLate(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// The single half-path has sigma/mu = 1 and must be bad; the pair works.
	if singleF < 0.01 {
		t.Fatalf("single half-path late fraction %v; expected severe lateness", singleF)
	}
	if dualF > 1e-3 {
		t.Fatalf("two half-paths late fraction %v; expected satisfactory", dualF)
	}
}

func TestModelValidation(t *testing.T) {
	bad := []dmpstream.Model{
		{Paths: nil, PlaybackRate: 10},
		{Paths: []dmpstream.PathParams{{LossRate: 0.02, RTT: time.Second, TimeoutRatio: 4}}, PlaybackRate: 0},
		{Paths: []dmpstream.PathParams{{LossRate: 0, RTT: time.Second, TimeoutRatio: 4}}, PlaybackRate: 10},
	}
	for i, m := range bad {
		if _, err := m.FractionLate(5 * time.Second); err == nil {
			t.Errorf("model %d accepted", i)
		}
	}
}

func TestSimulateStreamingDeterministic(t *testing.T) {
	paths := []dmpstream.SimPath{
		{BottleneckMbps: 2, OneWayDelay: 20 * time.Millisecond, BufferPkts: 40, FTPFlows: 3, HTTPFlows: 5},
		{BottleneckMbps: 1, OneWayDelay: 40 * time.Millisecond, BufferPkts: 30, FTPFlows: 2, HTTPFlows: 5},
	}
	a, err := dmpstream.SimulateStreaming(paths, 40, 60*time.Second, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dmpstream.SimulateStreaming(paths, 40, 60*time.Second, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Generated != b.Generated || a.Arrived != b.Arrived ||
		a.PathCounts[0] != b.PathCounts[0] || a.PathCounts[1] != b.PathCounts[1] {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	pa, _ := a.LateFraction(5)
	pb, _ := b.LateFraction(5)
	if pa != pb {
		t.Fatalf("late fractions diverged: %v vs %v", pa, pb)
	}
	if a.Generated != 2400 {
		t.Fatalf("generated %d, want 2400", a.Generated)
	}
	if a.Arrived != a.Generated {
		t.Fatalf("TCP lost packets: %d/%d", a.Arrived, a.Generated)
	}
}

func TestSimulateStreamingValidation(t *testing.T) {
	good := []dmpstream.SimPath{{BottleneckMbps: 1, BufferPkts: 10}}
	if _, err := dmpstream.SimulateStreaming(nil, 10, time.Second, 1); err == nil {
		t.Error("no paths accepted")
	}
	if _, err := dmpstream.SimulateStreaming(good, 0, time.Second, 1); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := dmpstream.SimulateStreaming(good, 10, 0, 1); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestRealStreamingEndToEnd(t *testing.T) {
	srv, err := dmpstream.NewServer(dmpstream.StreamConfig{Rate: 500, PayloadSize: 100, Count: 400})
	if err != nil {
		t.Fatal(err)
	}
	serverConns := make([]net.Conn, 2)
	clientConns := make([]net.Conn, 2)
	for i := 0; i < 2; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		acc := make(chan net.Conn, 1)
		go func() {
			c, err := ln.Accept()
			if err == nil {
				acc <- c
			}
		}()
		clientConns[i], err = net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		serverConns[i] = <-acc
		ln.Close()
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := srv.Serve(serverConns); err != nil {
			t.Errorf("serve: %v", err)
		}
		for _, c := range serverConns {
			c.Close()
		}
	}()
	trace, err := dmpstream.Receive(clientConns)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if trace.Expected != 400 || int64(len(trace.Arrivals)) != 400 {
		t.Fatalf("trace %d/%d", len(trace.Arrivals), trace.Expected)
	}
	if pb, ao := trace.LateFraction(2); pb != 0 || ao != 0 {
		t.Fatalf("late on loopback: %v %v", pb, ao)
	}
	counts := srv.PathCounts()
	if counts[0]+counts[1] != 400 {
		t.Fatalf("path counts %v", counts)
	}
}

func TestHubBroadcastFacade(t *testing.T) {
	h, err := dmpstream.NewHub(dmpstream.HubConfig{
		Rate:        500,
		PayloadSize: 100,
		Count:       300,
		StreamID:    "facade",
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go h.Serve(ln)

	const subs = 2
	traces := make([]*dmpstream.Trace, subs)
	var wg sync.WaitGroup
	for i := 0; i < subs; i++ {
		conns, err := dmpstream.DialStream(
			[]string{ln.Addr().String(), ln.Addr().String()}, "facade")
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, conns []net.Conn) {
			defer wg.Done()
			tr, err := dmpstream.Receive(conns)
			if err != nil {
				t.Errorf("subscriber %d: %v", i, err)
			}
			for _, c := range conns {
				c.Close()
			}
			traces[i] = tr
		}(i, conns)
	}
	wg.Wait()
	h.Stop()
	h.Wait()

	var sent int64
	for i, tr := range traces {
		if tr == nil {
			t.Fatalf("subscriber %d: no trace", i)
		}
		if int64(len(tr.Arrivals)) != tr.Expected || tr.Expected == 0 {
			t.Fatalf("subscriber %d: %d/%d", i, len(tr.Arrivals), tr.Expected)
		}
		sent += int64(len(tr.Arrivals))
	}
	st := h.Stats()
	if st.Sent != sent {
		t.Fatalf("hub reports %d sent, subscribers received %d", st.Sent, sent)
	}
	if st.Generated != 300 {
		t.Fatalf("generated %d", st.Generated)
	}
	if st.Dropped != 0 || st.Evicted != 0 {
		t.Fatalf("unexpected drops/evictions: %+v", st)
	}
}

func TestPathThroughputScaling(t *testing.T) {
	a, err := dmpstream.PathThroughput(dmpstream.PathParams{LossRate: 0.02, RTT: 100 * time.Millisecond, TimeoutRatio: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := dmpstream.PathThroughput(dmpstream.PathParams{LossRate: 0.02, RTT: 200 * time.Millisecond, TimeoutRatio: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a/b-2) > 1e-9 {
		t.Fatalf("σ(100ms)/σ(200ms) = %v, want 2", a/b)
	}
}
