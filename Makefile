# Developer entry points. CI runs the same targets (.github/workflows/ci.yml).

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test race lint fuzz

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint is the repo-invariant gate: go vet plus the dmplint suite
# (detsim, lockguard, wiresafe, netdeadline, closecheck — see DESIGN.md
# "Enforced invariants"). Non-zero exit on any finding.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/dmplint ./...

# fuzz gives each wire-format target a short budget; CI runs the same
# smoke. Raise FUZZTIME locally for a deeper session.
fuzz:
	$(GO) test -fuzz=FuzzParseJoin -fuzztime=$(FUZZTIME) -run '^$$' ./internal/core
	$(GO) test -fuzz=FuzzParseHeader -fuzztime=$(FUZZTIME) -run '^$$' ./internal/core
	$(GO) test -fuzz=FuzzParseFrameHeader -fuzztime=$(FUZZTIME) -run '^$$' ./internal/core
