# Developer entry points. CI runs the same targets (.github/workflows/ci.yml).

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test race lint lint-json lockgraph bufgraph hotpaths fuzz soak soak-tree bench-fanout

SOAKSEED ?= 1
SOAKTIME ?= 30s
FANOUT_TIER ?= quick

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint is the repo-invariant gate: go vet plus the dmplint suite
# (detsim, lockguard, wiresafe, netdeadline, closecheck, lockorder,
# goleak, atomicmix, hotalloc, copycheck, bufown, exhaustenum — see
# DESIGN.md "Enforced invariants"). Findings not recorded in the
# burn-down baseline (dmplint_baseline.json, currently empty) exit
# non-zero. Analyzers run in parallel; pass -cpuprofile to dmplint
# directly when triaging suite latency.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/dmplint -baseline dmplint_baseline.json ./...

# lint-json writes the machine-readable findings (including inline
# suppressions, marked) to dmplint.json; CI uploads it as an artifact.
lint-json:
	$(GO) run ./cmd/dmplint -json ./... > dmplint.json

# lockgraph renders the whole-program lock-acquisition graph as Graphviz
# dot on stdout (cycle edges in red). Pipe into `dot -Tsvg` to view.
lockgraph:
	$(GO) run ./cmd/dmplint -lockgraph

# bufgraph renders the buffer-ownership borrow graph as Graphviz dot on
# stdout: who borrows which shared payload buffer, where it is lent on,
# and which sink ends each borrow (sinks in blue). Pipe into
# `dot -Tsvg` to view.
bufgraph:
	$(GO) run ./cmd/dmplint -bufgraph

# hotpaths dumps the `// hotpath` annotated roots and the transitive
# callee closure the hotalloc/copycheck analyzers police.
hotpaths:
	$(GO) run ./cmd/dmplint -hotpaths

# fuzz gives each wire-format target a short budget; CI runs the same
# smoke. Raise FUZZTIME locally for a deeper session.
fuzz:
	$(GO) test -fuzz=FuzzParseJoin -fuzztime=$(FUZZTIME) -run '^$$' ./internal/core
	$(GO) test -fuzz=FuzzParseHeader -fuzztime=$(FUZZTIME) -run '^$$' ./internal/core
	$(GO) test -fuzz=FuzzParseFrameHeader -fuzztime=$(FUZZTIME) -run '^$$' ./internal/core
	$(GO) test -fuzz=FuzzParseFaultScript -fuzztime=$(FUZZTIME) -run '^$$' ./internal/emunet

# bench-fanout runs the massive-fanout benchmark (registry + sharded
# hubs, tens of thousands of in-process subscribers) in -compare mode —
# copy vs zero-copy delivery on the same workload — and gates against
# the committed baseline: the zero-copy/copy throughput ratio,
# allocs_per_frame and bytes_copied_per_frame (header-patch only on the
# zero-copy path). Tiers: quick (push CI) and full (nightly) — see
# EXPERIMENTS.md for the BENCH_fanout.json schema.
bench-fanout:
	$(GO) run ./cmd/dmpfanout -tier $(FANOUT_TIER) -v \
		-o BENCH_fanout.json -check bench/BENCH_fanout_baseline.json

# soak runs the randomized chaos harness against a live hub under the
# race detector: seeded churn of joins, leaves, overload bursts, flaps
# and stalls, with robustness invariants checked after every event. CI
# runs this nightly; a failure reproduces from the printed seed
# (make soak SOAKSEED=<seed>). SOAKSEED=0 derives a fresh seed.
soak:
	$(GO) run -race ./cmd/dmpchaos -seed $(SOAKSEED) -duration $(SOAKTIME)

# soak-tree runs tree-wide chaos under the race detector: an origin hub
# feeding tiers of edge relays with dual-homed leaves underneath, while
# the schedule severs origin paths and kills/restarts relays mid-tier.
# Every leaf must conserve the stream exactly; TREE_REPORT.json records
# the per-tier conservation outcome (CI uploads it as an artifact). A
# failure reproduces from the printed seed (make soak-tree SOAKSEED=<seed>).
soak-tree:
	$(GO) run -race ./cmd/dmpchaos -tree -relays 2 -depth 2 \
		-seed $(SOAKSEED) -duration $(SOAKTIME) -report TREE_REPORT.json
