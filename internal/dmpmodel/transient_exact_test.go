package dmpmodel

import (
	"math"
	"testing"

	"dmpstream/internal/markov"
	"dmpstream/internal/tcpmodel"
)

// TestTransientMatchesUniformization cross-validates the Monte-Carlo
// transient estimator against exact uniformization of the composed chain on
// a truncated instance: buildup phase [0, τ) without consumption, then
// playback with the late-probability integrated over the video horizon.
func TestTransientMatchesUniformization(t *testing.T) {
	p := smallPath()
	sigma, err := Sigma(p)
	if err != nil {
		t.Fatal(err)
	}
	mu := 2 * sigma / 1.25 // tight enough for measurable lateness
	const (
		nmax     = 10
		floor    = -60
		videoSec = 40.0
	)
	tau := float64(nmax) / mu

	// Phase 1: buffer buildup from empty, no consumption.
	buildup := ExactBuildupGenerator(p, p, nmax)
	init := Composite{F1: tcpmodel.Initial(p), F2: tcpmodel.Initial(p), N: 0}
	ts1, err := markov.NewTransientSolver(buildup, init, 500_000)
	if err != nil {
		t.Fatal(err)
	}
	ts1.Advance(tau)

	// Phase 2: playback dynamics; integrate µ·P(N ≤ 0) over the video.
	full := ExactGenerator(p, p, mu, nmax, floor)
	ts2, err := markov.NewTransientSolver(full, init, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts2.SetDist(ts1.Dist()); err != nil {
		t.Fatal(err)
	}
	const dt = 0.05
	var lateMass float64
	for tt := 0.0; tt < videoSec; tt += dt {
		ts2.Advance(dt)
		lateMass += mu * dt * ts2.Prob(func(c Composite) bool { return c.N <= 0 && c.N > floor })
	}
	exactF := lateMass / (mu * videoSec)

	// Monte-Carlo estimator with the same truncation-free dynamics (the
	// floor is far below anything the chain visits here).
	m := Model{Paths: []tcpmodel.Params{p, p}, Mu: mu}
	res, err := m.TransientFractionLate(tau, videoSec, false, Options{
		Seed: 5, MaxConsumptions: 3_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}

	if exactF <= 0 {
		t.Fatalf("exact transient late fraction = %v; test setting should produce lateness", exactF)
	}
	tol := 3*res.CI95 + 0.2*exactF
	if math.Abs(res.F-exactF) > tol {
		t.Fatalf("MC transient %v (CI %v) vs uniformization %v: beyond tolerance %v",
			res.F, res.CI95, exactF, tol)
	}
}
