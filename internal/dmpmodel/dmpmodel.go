// Package dmpmodel composes per-flow TCP chains into the paper's analytical
// model of DMP-streaming (Section 4.2) and computes its performance metric,
// the fraction of late packets.
//
// The composed state is (X_1, ..., X_K, N): one tcpmodel.State per path plus
// the number of early packets N in the client buffer. N is the lead of
// arrivals over the playback schedule: flow transitions add their delivered
// packets to N (clipped at Nmax = µτ, the live-streaming constraint of
// Section 2.1, with flows frozen while N = Nmax), and packet consumption is a
// rate-µ event that decrements N. A consumption finding N ≤ 0 is a late
// packet; f = P(late | consumption).
//
// The paper solved this chain numerically with TANGRAM-II. Here the large
// parameter sweeps use an exact-dynamics Monte-Carlo estimator over the
// embedded jump chain (no discretization error; batch-means confidence
// intervals), and small truncated instances are solved exactly through
// markov.Stationary to cross-validate the estimator. See DESIGN.md §2.
package dmpmodel

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"dmpstream/internal/markov"
	"dmpstream/internal/stats"
	"dmpstream/internal/tcpmodel"
)

// Model is a DMP-streaming instance: K paths feeding one playback process.
type Model struct {
	Paths []tcpmodel.Params
	Mu    float64 // playback rate, packets per second
}

// Validate checks the model's parameters.
func (m *Model) Validate() error {
	if len(m.Paths) == 0 {
		return fmt.Errorf("dmpmodel: no paths")
	}
	if m.Mu <= 0 {
		return fmt.Errorf("dmpmodel: playback rate %v <= 0", m.Mu)
	}
	for i, p := range m.Paths {
		if _, err := tcpmodel.Throughput(p); err != nil {
			return fmt.Errorf("dmpmodel: path %d: %w", i, err)
		}
	}
	return nil
}

// AggregateThroughput returns σ_a = Σ σ_k from the exact per-flow solve.
func (m *Model) AggregateThroughput() (float64, error) {
	var total float64
	for _, p := range m.Paths {
		s, err := Sigma(p)
		if err != nil {
			return 0, err
		}
		total += s
	}
	return total, nil
}

// Options tune the Monte-Carlo estimator.
type Options struct {
	Seed            int64
	MaxConsumptions int64 // sampling budget (default 2_000_000)
	Warmup          int64 // consumptions discarded before counting (default max(20_000, 20·Nmax))
	BatchSize       int64 // consumptions per batch for the CI (default 20_000)

	// FloorN, when non-nil, disables consumption at N = *FloorN. It exists to
	// match the truncated exact chain in cross-validation tests; production
	// estimates leave it nil (N is unbounded below).
	FloorN *int64
}

func (o Options) withDefaults(nmax int64) Options {
	if o.MaxConsumptions == 0 {
		o.MaxConsumptions = 2_000_000
	}
	if o.Warmup == 0 {
		o.Warmup = 20 * nmax
		if o.Warmup < 20_000 {
			o.Warmup = 20_000
		}
	}
	if o.BatchSize == 0 {
		o.BatchSize = 20_000
	}
	return o
}

// Result is a fraction-late estimate with uncertainty.
type Result struct {
	F            float64 // point estimate of the fraction of late packets
	CI95         float64 // 95% half-width from batch means (0 if too few batches)
	Consumptions int64   // counted consumption events
	Late         int64   // late consumption events
	// PathShares is each path's fraction of the packets delivered to the
	// client buffer — the model-side view of DMP's dynamic allocation
	// (faster paths carry more).
	PathShares []float64
}

// flowTable is a memoized, indexed view of one path's chain for the tight
// sampling loop: states become dense int32 ids.
type flowTable struct {
	par    tcpmodel.Params
	index  map[tcpmodel.State]int32
	states []tcpmodel.State
	rows   []flowRow
}

type flowRow struct {
	total float64
	cum   []float64
	next  []int32
	s     []int32
}

func newFlowTable(par tcpmodel.Params) *flowTable {
	return &flowTable{par: par, index: make(map[tcpmodel.State]int32)}
}

func (ft *flowTable) id(s tcpmodel.State) int32 {
	if id, ok := ft.index[s]; ok {
		return id
	}
	id := int32(len(ft.states))
	ft.index[s] = id
	ft.states = append(ft.states, s)
	ft.rows = append(ft.rows, flowRow{}) // placeholder; filled lazily
	return id
}

func (ft *flowTable) row(id int32) *flowRow {
	if ft.rows[id].cum == nil {
		trs := tcpmodel.Transitions(ft.par, ft.states[id])
		nr := flowRow{
			cum:  make([]float64, len(trs)),
			next: make([]int32, len(trs)),
			s:    make([]int32, len(trs)),
		}
		for i, tr := range trs {
			nr.total += tr.Rate
			nr.cum[i] = nr.total
			nr.s[i] = tr.Tag
			// ft.id may append to ft.rows and reallocate its backing array,
			// so the row is built locally and stored only afterwards.
			nr.next[i] = ft.id(tr.Next)
		}
		ft.rows[id] = nr
	}
	return &ft.rows[id]
}

// nmaxFor converts a startup delay to the early-packet cap Nmax = µτ.
func (m *Model) nmaxFor(tau float64) int64 {
	n := int64(math.Round(m.Mu * tau))
	if n < 1 {
		n = 1
	}
	return n
}

// FractionLate estimates f for startup delay tau (seconds) by sampling the
// embedded jump chain of the composed CTMC.
func (m *Model) FractionLate(tau float64, o Options) (Result, error) {
	return m.fractionLate(tau, o, 0)
}

// fractionLate is FractionLate with an optional sequential stopping
// threshold: when thresh > 0, sampling stops early once the batch-means CI
// cleanly separates the estimate from thresh.
func (m *Model) fractionLate(tau float64, o Options, thresh float64) (Result, error) {
	if err := m.Validate(); err != nil {
		return Result{}, err
	}
	if tau <= 0 {
		return Result{}, fmt.Errorf("dmpmodel: startup delay %v <= 0", tau)
	}
	nmax := m.nmaxFor(tau)
	o = o.withDefaults(nmax)

	k := len(m.Paths)
	tables := make([]*flowTable, k)
	cur := make([]int32, k)
	for i, p := range m.Paths {
		tables[i] = newFlowTable(p)
		cur[i] = tables[i].id(tcpmodel.Initial(p))
	}
	rng := rand.New(rand.NewSource(o.Seed))

	n := nmax // start with a full buffer, the post-startup condition
	var consumed, late int64
	delivered := make([]int64, k)
	bm := stats.NewBatchMeans(o.BatchSize)

	rates := make([]float64, k)
	budget := o.Warmup + o.MaxConsumptions
	const checkEvery = 10 // batches between sequential checks

	for consumed < budget {
		total := m.Mu
		consumptionOn := o.FloorN == nil || n != *o.FloorN
		if !consumptionOn {
			total = 0
		}
		if n < nmax {
			for i := 0; i < k; i++ {
				r := tables[i].row(cur[i])
				rates[i] = r.total
				total += r.total
			}
		} else {
			for i := range rates {
				rates[i] = 0
			}
		}
		if total == 0 {
			return Result{}, fmt.Errorf("dmpmodel: deadlocked state (N=%d, floor active)", n)
		}
		u := rng.Float64() * total
		if consumptionOn && u < m.Mu {
			consumed++
			if consumed > o.Warmup {
				x := 0.0
				if n <= 0 {
					late++
					x = 1
				}
				bm.Add(x)
				if thresh > 0 && bm.Batches()%checkEvery == 0 && bm.Batches() > 0 &&
					(consumed-o.Warmup)%o.BatchSize == 0 && bm.Separated(thresh) {
					break
				}
			}
			n--
			continue
		}
		if consumptionOn {
			u -= m.Mu
		}
		for i := 0; i < k; i++ {
			if u < rates[i] {
				r := tables[i].row(cur[i])
				j := sampleCum(r.cum, u)
				room := nmax - n
				got := int64(r.s[j])
				if got > room {
					got = room // the cap froze part of the round
				}
				n += got
				delivered[i] += got
				cur[i] = r.next[j]
				break
			}
			u -= rates[i]
		}
	}

	counted := consumed - o.Warmup
	if counted <= 0 {
		return Result{}, fmt.Errorf("dmpmodel: budget %d consumed entirely by warmup", o.MaxConsumptions)
	}
	res := Result{Consumptions: counted, Late: late}
	res.F = float64(late) / float64(counted)
	_, res.CI95 = bm.Estimate()
	var totalDelivered int64
	for _, d := range delivered {
		totalDelivered += d
	}
	if totalDelivered > 0 {
		res.PathShares = make([]float64, k)
		for i, d := range delivered {
			res.PathShares[i] = float64(d) / float64(totalDelivered)
		}
	}
	return res, nil
}

// sampleCum returns the first index whose cumulative rate exceeds u.
func sampleCum(cum []float64, u float64) int {
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Verdict is the outcome of a threshold comparison.
type Verdict int

// Comparison outcomes.
const (
	Below Verdict = iota // f is below the threshold
	Above                // f is at or above the threshold
)

// CompareToThreshold decides whether f(tau) < thresh, stopping early when the
// confidence interval separates. Ties at budget exhaustion go to the point
// estimate.
func (m *Model) CompareToThreshold(tau, thresh float64, o Options) (Verdict, Result, error) {
	res, err := m.fractionLate(tau, o, thresh)
	if err != nil {
		return Above, res, err
	}
	if res.F < thresh {
		return Below, res, nil
	}
	return Above, res, nil
}

// RequiredStartupDelay returns the smallest startup delay (on a grid of
// `step` seconds) for which the fraction of late packets is below thresh —
// the quantity plotted in the paper's Figs 9-11. It exploits that f is
// non-increasing in τ. Returns +Inf if even maxTau misses the threshold.
func (m *Model) RequiredStartupDelay(thresh, step, maxTau float64, o Options) (float64, error) {
	if step <= 0 || maxTau <= step {
		return 0, fmt.Errorf("dmpmodel: bad search grid step=%v maxTau=%v", step, maxTau)
	}
	v, _, err := m.CompareToThreshold(maxTau, thresh, o)
	if err != nil {
		return 0, err
	}
	if v == Above {
		return math.Inf(1), nil
	}
	lo, hi := 0.0, maxTau // f(lo) ≥ thresh (vacuously), f(hi) < thresh
	for hi-lo > step+1e-9 {
		mid := math.Round((lo+hi)/2/step) * step
		if mid <= lo {
			mid = lo + step
		}
		if mid >= hi {
			mid = hi - step
		}
		v, _, err := m.CompareToThreshold(mid, thresh, o)
		if err != nil {
			return 0, err
		}
		if v == Below {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// ---------- Transient analysis: finite videos, live vs stored ----------

// TransientResult summarizes replicated finite-video simulations of the
// model.
type TransientResult struct {
	F            float64 // mean fraction of late packets per replication
	CI95         float64 // across replications
	Replications int
}

// TransientFractionLate simulates finite videos of the given length through
// the model chain and returns the fraction of late packets, averaged over
// replications. Unlike FractionLate (the stationary quantity the paper
// reports), this resolves the whole session: the buffer starts empty,
// playback begins τ seconds after streaming starts, and the video ends
// after videoSeconds of content.
//
// stored selects stored-video streaming — the paper's "future work"
// extension: the entire video exists up front, so senders are never
// constrained by the live cap N ≤ µτ and can run arbitrarily far ahead.
// Live streaming keeps the cap. Comparing the two quantifies how much the
// liveness constraint itself costs.
func (m *Model) TransientFractionLate(tau, videoSeconds float64, stored bool, o Options) (TransientResult, error) {
	if err := m.Validate(); err != nil {
		return TransientResult{}, err
	}
	if tau <= 0 || videoSeconds <= tau {
		return TransientResult{}, fmt.Errorf("dmpmodel: need 0 < tau < videoSeconds, got %v, %v", tau, videoSeconds)
	}
	nmax := m.nmaxFor(tau)
	o = o.withDefaults(nmax)
	perRep := int64(m.Mu * videoSeconds)
	if perRep < 1 {
		return TransientResult{}, fmt.Errorf("dmpmodel: video too short (%v s at %v pkts/s)", videoSeconds, m.Mu)
	}
	reps := int(o.MaxConsumptions / perRep)
	if reps < 3 {
		reps = 3
	}
	if reps > 500 {
		reps = 500
	}

	k := len(m.Paths)
	tables := make([]*flowTable, k)
	for i, p := range m.Paths {
		tables[i] = newFlowTable(p)
	}
	rng := rand.New(rand.NewSource(o.Seed))
	rates := make([]float64, k)
	fs := make([]float64, 0, reps)

	for rep := 0; rep < reps; rep++ {
		cur := make([]int32, k)
		for i, p := range m.Paths {
			cur[i] = tables[i].id(tcpmodel.Initial(p))
		}
		var n, late, consumed int64
		t := 0.0
		for consumed < perRep {
			total := 0.0
			consuming := t >= tau
			if consuming {
				total += m.Mu
			}
			sending := stored || n < nmax
			if sending {
				for i := 0; i < k; i++ {
					r := tables[i].row(cur[i])
					rates[i] = r.total
					total += r.total
				}
			} else {
				for i := range rates {
					rates[i] = 0
				}
			}
			if total == 0 {
				// Buffer full before playback started: nothing can happen
				// until the startup delay elapses.
				t = tau
				continue
			}
			t += rng.ExpFloat64() / total
			u := rng.Float64() * total
			if consuming && u < m.Mu {
				consumed++
				if n <= 0 {
					late++
				}
				n--
				continue
			}
			if consuming {
				u -= m.Mu
			}
			for i := 0; i < k; i++ {
				if u < rates[i] {
					r := tables[i].row(cur[i])
					j := sampleCum(r.cum, u)
					n += int64(r.s[j])
					if !stored && n > nmax {
						n = nmax
					}
					cur[i] = r.next[j]
					break
				}
				u -= rates[i]
			}
		}
		fs = append(fs, float64(late)/float64(perRep))
	}
	mean, ci := stats.MeanCI95(fs)
	return TransientResult{F: mean, CI95: ci, Replications: reps}, nil
}

// ---------- Exact solution on truncated instances ----------

// Composite is the composed chain state for K=2 paths, used by the exact
// cross-validation solver.
type Composite struct {
	F1, F2 tcpmodel.State
	N      int32
}

// ExactGenerator builds the composed CTMC over two paths with early-packet
// cap nmax and truncation floor floorN (consumption disabled at the floor).
// Tags: consumption transitions carry -1; flow transitions carry the
// delivered-packet count.
func ExactGenerator(p1, p2 tcpmodel.Params, mu float64, nmax, floorN int32) markov.Generator[Composite] {
	g1 := tcpmodel.Generator(p1)
	g2 := tcpmodel.Generator(p2)
	return func(c Composite) []markov.Transition[Composite] {
		var out []markov.Transition[Composite]
		if c.N > floorN {
			out = append(out, markov.Transition[Composite]{
				Rate: mu, Tag: -1,
				Next: Composite{F1: c.F1, F2: c.F2, N: c.N - 1},
			})
		}
		if c.N < nmax {
			for _, tr := range g1(c.F1) {
				n := c.N + tr.Tag
				if n > nmax {
					n = nmax
				}
				out = append(out, markov.Transition[Composite]{
					Rate: tr.Rate, Tag: tr.Tag,
					Next: Composite{F1: tr.Next, F2: c.F2, N: n},
				})
			}
			for _, tr := range g2(c.F2) {
				n := c.N + tr.Tag
				if n > nmax {
					n = nmax
				}
				out = append(out, markov.Transition[Composite]{
					Rate: tr.Rate, Tag: tr.Tag,
					Next: Composite{F1: c.F1, F2: tr.Next, N: n},
				})
			}
		}
		return out
	}
}

// ExactBuildupGenerator is the composed chain before playback starts: flows
// fill the buffer toward the cap, nothing is consumed. Used with
// markov.TransientSolver to compute the exact distribution at playback
// start (t = τ) when cross-validating the transient estimator.
func ExactBuildupGenerator(p1, p2 tcpmodel.Params, nmax int32) markov.Generator[Composite] {
	g1 := tcpmodel.Generator(p1)
	g2 := tcpmodel.Generator(p2)
	return func(c Composite) []markov.Transition[Composite] {
		var out []markov.Transition[Composite]
		if c.N < nmax {
			for _, tr := range g1(c.F1) {
				n := c.N + tr.Tag
				if n > nmax {
					n = nmax
				}
				out = append(out, markov.Transition[Composite]{
					Rate: tr.Rate, Tag: tr.Tag,
					Next: Composite{F1: tr.Next, F2: c.F2, N: n},
				})
			}
			for _, tr := range g2(c.F2) {
				n := c.N + tr.Tag
				if n > nmax {
					n = nmax
				}
				out = append(out, markov.Transition[Composite]{
					Rate: tr.Rate, Tag: tr.Tag,
					Next: Composite{F1: c.F1, F2: tr.Next, N: n},
				})
			}
		}
		return out
	}
}

// ExactFractionLate solves the truncated composed chain exactly and returns
// f = P(N ≤ 0 | consumption). Feasible only for small Wmax and N ranges; used
// to validate the Monte-Carlo estimator.
func ExactFractionLate(p1, p2 tcpmodel.Params, mu float64, nmax, floorN int32, maxStates int) (float64, error) {
	g := ExactGenerator(p1, p2, mu, nmax, floorN)
	init := Composite{F1: tcpmodel.Initial(p1), F2: tcpmodel.Initial(p2), N: nmax}
	pi, err := markov.Stationary(g, init, maxStates, 1e-11, 500000)
	if err != nil {
		return 0, err
	}
	// Collect the masses and reduce them in sorted order: float addition is
	// not associative, so accumulating in map-iteration order would perturb
	// the result in the last ulps from run to run.
	var lateTerms, consumeTerms []float64
	// nolint:detsim the terms are sorted before the reduction below, so the
	// result is independent of map iteration order.
	for s, p := range pi {
		if s.N > floorN { // consumption enabled
			consumeTerms = append(consumeTerms, p)
			if s.N <= 0 {
				lateTerms = append(lateTerms, p)
			}
		}
	}
	sort.Float64s(lateTerms)
	sort.Float64s(consumeTerms)
	var lateMass, consumeMass float64
	for _, v := range lateTerms {
		lateMass += v
	}
	for _, v := range consumeTerms {
		consumeMass += v
	}
	if consumeMass == 0 {
		return 0, fmt.Errorf("dmpmodel: no consumption-enabled mass")
	}
	return lateMass / consumeMass, nil
}

// ---------- σ̂ cache and parameter construction ----------

var sigmaCache sync.Map // tcpmodel.Params (R normalized to 1) -> float64

// Sigma returns the achievable throughput σ(par), using the R-scaling
// σ = σ̂(p, T_O, Wmax)/R and caching σ̂.
func Sigma(par tcpmodel.Params) (float64, error) {
	key := par
	key.R = 1
	if v, ok := sigmaCache.Load(key); ok {
		return v.(float64) / par.R, nil
	}
	hat, err := tcpmodel.Throughput(key)
	if err != nil {
		return 0, err
	}
	sigmaCache.Store(key, hat)
	return hat / par.R, nil
}

// RForRatio returns the RTT making K homogeneous paths with loss p and
// timeout ratio to achieve σ_a/µ = ratio (the paper's Fig 8/9a sweep, which
// fixes p, T_O, µ and varies R).
func RForRatio(p, to float64, wmax int, mu, ratio float64, k int) (tcpmodel.Params, error) {
	base := tcpmodel.Params{P: p, R: 1, TO: to, Wmax: wmax}
	hat, err := Sigma(base)
	if err != nil {
		return tcpmodel.Params{}, err
	}
	// σ_a = K·σ̂/R = ratio·µ  ⇒  R = K·σ̂/(ratio·µ).
	base.R = float64(k) * hat / (ratio * mu)
	return base, nil
}

// MuForRatio returns the playback rate making K homogeneous paths (p, R, to)
// achieve σ_a/µ = ratio (the paper's Fig 9b sweep, which fixes R and varies µ).
func MuForRatio(p, r, to float64, wmax int, ratio float64, k int) (float64, tcpmodel.Params, error) {
	par := tcpmodel.Params{P: p, R: r, TO: to, Wmax: wmax}
	sigma, err := Sigma(par)
	if err != nil {
		return 0, tcpmodel.Params{}, err
	}
	return float64(k) * sigma / ratio, par, nil
}

// Case1RTTHetero builds the paper's Case-1 heterogeneous paths (Section 7.2):
// same loss and timeout ratio, RTTs split as R1 = γR°, R2 = R°/(2-1/γ), which
// preserves the aggregate achievable throughput of two homogeneous paths.
func Case1RTTHetero(homo tcpmodel.Params, gamma float64) [2]tcpmodel.Params {
	p1, p2 := homo, homo
	p1.R = gamma * homo.R
	p2.R = homo.R / (2 - 1/gamma)
	return [2]tcpmodel.Params{p1, p2}
}

// Case2LossHetero builds the paper's Case-2 heterogeneous paths: same RTT and
// timeout ratio, p1 = γp°, and p2 chosen so the aggregate achievable
// throughput matches two homogeneous paths. The paper inverts the PFTK
// formula; we invert the model's own chain for self-consistency.
func Case2LossHetero(homo tcpmodel.Params, gamma float64) ([2]tcpmodel.Params, error) {
	sigmaO, err := Sigma(homo)
	if err != nil {
		return [2]tcpmodel.Params{}, err
	}
	p1 := homo
	p1.P = gamma * homo.P
	sigma1, err := Sigma(p1)
	if err != nil {
		return [2]tcpmodel.Params{}, err
	}
	target := 2*sigmaO - sigma1
	p2loss, err := tcpmodel.LossForThroughput(target, homo.R, homo.TO, homo.Wmax)
	if err != nil {
		return [2]tcpmodel.Params{}, fmt.Errorf("dmpmodel: case-2 inversion: %w", err)
	}
	p2 := homo
	p2.P = p2loss
	return [2]tcpmodel.Params{p1, p2}, nil
}

// ---------- Static streaming (Section 7.4) ----------

// StaticFractionLate evaluates the paper's static comparison scheme: packets
// are split across paths in fixed proportion to the paths' average
// throughputs, so each path becomes an independent single-path TCP stream
// carrying a w_k·µ sub-video with its own µ_k·τ buffer cap. f is the
// throughput-weighted average of the per-path late fractions.
func StaticFractionLate(paths []tcpmodel.Params, mu, tau float64, o Options) (Result, error) {
	sigmas := make([]float64, len(paths))
	var total float64
	for i, p := range paths {
		s, err := Sigma(p)
		if err != nil {
			return Result{}, err
		}
		sigmas[i] = s
		total += s
	}
	var agg Result
	for i, p := range paths {
		w := sigmas[i] / total
		sub := Model{Paths: []tcpmodel.Params{p}, Mu: w * mu}
		oi := o
		oi.Seed = o.Seed + int64(i)*7919
		res, err := sub.FractionLate(tau, oi)
		if err != nil {
			return Result{}, err
		}
		agg.F += w * res.F
		agg.CI95 += w * res.CI95
		agg.Consumptions += res.Consumptions
		agg.Late += res.Late
	}
	return agg, nil
}

// StaticRequiredStartupDelay is RequiredStartupDelay for the static scheme.
func StaticRequiredStartupDelay(paths []tcpmodel.Params, mu, thresh, step, maxTau float64, o Options) (float64, error) {
	check := func(tau float64) (bool, error) {
		res, err := StaticFractionLate(paths, mu, tau, o)
		if err != nil {
			return false, err
		}
		return res.F < thresh, nil
	}
	ok, err := check(maxTau)
	if err != nil {
		return 0, err
	}
	if !ok {
		return math.Inf(1), nil
	}
	lo, hi := 0.0, maxTau
	for hi-lo > step+1e-9 {
		mid := math.Round((lo+hi)/2/step) * step
		if mid <= lo {
			mid = lo + step
		}
		if mid >= hi {
			mid = hi - step
		}
		ok, err := check(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}
