package dmpmodel

import (
	"testing"
	"testing/quick"

	"dmpstream/internal/tcpmodel"
)

// Property: for random valid parameters, the estimate is a probability and
// the estimator terminates within its budget.
func TestPropertyFractionLateIsProbability(t *testing.T) {
	f := func(pRaw, rRaw, muRaw, tauRaw uint16, seed int64) bool {
		p := 0.004 + float64(pRaw%100)/1000.0 // 0.004..0.104
		r := 0.04 + float64(rRaw%261)/1000.0  // 40..300 ms
		mu := 10 + float64(muRaw%90)          // 10..100
		tau := 1 + float64(tauRaw%10)         // 1..10 s
		m := Model{
			Paths: []tcpmodel.Params{
				{P: p, R: r, TO: 2},
				{P: p, R: r, TO: 2},
			},
			Mu: mu,
		}
		res, err := m.FractionLate(tau, Options{Seed: seed, MaxConsumptions: 60_000})
		if err != nil {
			return false
		}
		return res.F >= 0 && res.F <= 1 && res.Consumptions > 0 &&
			res.Late >= 0 && res.Late <= res.Consumptions
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: more loss on both paths can only hurt (checked with slack for
// Monte-Carlo noise).
func TestPropertyMonotoneInLoss(t *testing.T) {
	f := func(seed int64) bool {
		mk := func(p float64) (Result, error) {
			par := tcpmodel.Params{P: p, R: 0.12, TO: 2}
			m := Model{Paths: []tcpmodel.Params{par, par}, Mu: 40}
			return m.FractionLate(4, Options{Seed: seed, MaxConsumptions: 250_000})
		}
		lo, err := mk(0.01)
		if err != nil {
			return false
		}
		hi, err := mk(0.06)
		if err != nil {
			return false
		}
		return hi.F+hi.CI95+lo.CI95+1e-3 >= lo.F
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// Property: the static scheme never beats DMP beyond noise (the paper's
// Section 7.4 claim, tested across random homogeneous settings).
func TestPropertyStaticNeverBeatsDMP(t *testing.T) {
	f := func(pRaw uint16, seed int64) bool {
		p := 0.01 + float64(pRaw%40)/1000.0 // 0.01..0.05
		par, err := RForRatio(p, 4, 0, 50, 1.5, 2)
		if err != nil {
			return false
		}
		paths := []tcpmodel.Params{par, par}
		opts := Options{Seed: seed, MaxConsumptions: 250_000}
		m := Model{Paths: paths, Mu: 50}
		dmp, err := m.FractionLate(4, opts)
		if err != nil {
			return false
		}
		static, err := StaticFractionLate(paths, 50, 4, opts)
		if err != nil {
			return false
		}
		return static.F+static.CI95+dmp.CI95+2e-3 >= dmp.F
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
