package dmpmodel

import (
	"math"
	"testing"

	"dmpstream/internal/tcpmodel"
)

// smallPath returns a tiny-window path whose composed chain is exactly
// solvable: Wmax=4 keeps the per-flow space to ~15 states.
func smallPath() tcpmodel.Params {
	return tcpmodel.Params{P: 0.1, R: 0.2, TO: 2, Wmax: 4}
}

func TestMonteCarloMatchesExactSolution(t *testing.T) {
	p := smallPath()
	sigma, err := Sigma(p)
	if err != nil {
		t.Fatal(err)
	}
	mu := 2 * sigma / 1.3 // σ_a/µ = 1.3: substantial late fraction, fast mixing
	const nmax, floor = 20, -80

	exact, err := ExactFractionLate(p, p, mu, nmax, floor, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if exact <= 0 || exact >= 1 {
		t.Fatalf("exact f = %v, expected in (0,1)", exact)
	}

	m := Model{Paths: []tcpmodel.Params{p, p}, Mu: mu}
	fl := int64(floor)
	tau := float64(nmax) / mu
	res, err := m.FractionLate(tau, Options{
		Seed:            1,
		MaxConsumptions: 3_000_000,
		FloorN:          &fl,
	})
	if err != nil {
		t.Fatal(err)
	}
	tol := 3*res.CI95 + 0.15*exact
	if math.Abs(res.F-exact) > tol {
		t.Fatalf("MC f = %v (CI %v), exact f = %v: disagreement beyond tolerance %v",
			res.F, res.CI95, exact, tol)
	}
}

func TestFractionLateMonotoneInTau(t *testing.T) {
	p := tcpmodel.Params{P: 0.02, R: 0.15, TO: 4}
	sigma, _ := Sigma(p)
	m := Model{Paths: []tcpmodel.Params{p, p}, Mu: 2 * sigma / 1.4}
	prev := 1.1
	for _, tau := range []float64{1, 2, 4, 8} {
		res, err := m.FractionLate(tau, Options{Seed: 2, MaxConsumptions: 400_000})
		if err != nil {
			t.Fatal(err)
		}
		if res.F > prev+3*res.CI95+0.002 {
			t.Fatalf("f(tau=%v) = %v rose above f at smaller tau (%v)", tau, res.F, prev)
		}
		prev = res.F
	}
}

func TestFractionLateDecreasesWithRatio(t *testing.T) {
	// The paper's Fig 8 shape: increasing σ_a/µ improves performance.
	var prev = 1.1
	for _, ratio := range []float64{1.2, 1.6, 2.0} {
		par, err := RForRatio(0.02, 4, 0, 25, ratio, 2)
		if err != nil {
			t.Fatal(err)
		}
		m := Model{Paths: []tcpmodel.Params{par, par}, Mu: 25}
		res, err := m.FractionLate(6, Options{Seed: 3, MaxConsumptions: 400_000})
		if err != nil {
			t.Fatal(err)
		}
		if res.F >= prev {
			t.Fatalf("f at ratio %v = %v, not below %v", ratio, res.F, prev)
		}
		prev = res.F
	}
}

func TestOverprovisionedIsNearlyLossless(t *testing.T) {
	par, err := RForRatio(0.004, 1, 0, 25, 3.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := Model{Paths: []tcpmodel.Params{par, par}, Mu: 25}
	res, err := m.FractionLate(15, Options{Seed: 4, MaxConsumptions: 300_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.F > 1e-3 {
		t.Fatalf("f = %v at σ_a/µ=3 with 15s delay", res.F)
	}
}

func TestUnderprovisionedIsBad(t *testing.T) {
	par, err := RForRatio(0.02, 4, 0, 25, 0.8, 2) // σ_a below µ: doomed
	if err != nil {
		t.Fatal(err)
	}
	m := Model{Paths: []tcpmodel.Params{par, par}, Mu: 25}
	res, err := m.FractionLate(5, Options{Seed: 5, MaxConsumptions: 200_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.F < 0.05 {
		t.Fatalf("f = %v despite σ_a/µ=0.8", res.F)
	}
}

func TestRForRatioHitsTarget(t *testing.T) {
	for _, ratio := range []float64{1.2, 1.6, 2.0} {
		par, err := RForRatio(0.02, 4, 0, 50, ratio, 2)
		if err != nil {
			t.Fatal(err)
		}
		m := Model{Paths: []tcpmodel.Params{par, par}, Mu: 50}
		agg, err := m.AggregateThroughput()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(agg/50-ratio) > 1e-6 {
			t.Fatalf("ratio %v: got σ_a/µ = %v", ratio, agg/50)
		}
	}
}

func TestMuForRatioHitsTarget(t *testing.T) {
	mu, par, err := MuForRatio(0.02, 0.2, 4, 0, 1.6, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := Model{Paths: []tcpmodel.Params{par, par}, Mu: mu}
	agg, err := m.AggregateThroughput()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(agg/mu-1.6) > 1e-6 {
		t.Fatalf("got σ_a/µ = %v", agg/mu)
	}
}

func TestCase1PreservesAggregateThroughput(t *testing.T) {
	homo := tcpmodel.Params{P: 0.01, R: 0.15, TO: 4}
	sigmaO, err := Sigma(homo)
	if err != nil {
		t.Fatal(err)
	}
	for _, gamma := range []float64{1.5, 2.0} {
		paths := Case1RTTHetero(homo, gamma)
		s1, _ := Sigma(paths[0])
		s2, _ := Sigma(paths[1])
		if math.Abs((s1+s2)-2*sigmaO)/(2*sigmaO) > 1e-9 {
			t.Fatalf("gamma %v: aggregate %v vs homogeneous %v", gamma, s1+s2, 2*sigmaO)
		}
		if paths[0].R != gamma*homo.R {
			t.Fatalf("R1 = %v", paths[0].R)
		}
	}
}

func TestCase2PreservesAggregateThroughput(t *testing.T) {
	homo := tcpmodel.Params{P: 0.02, R: 0.1, TO: 4}
	sigmaO, err := Sigma(homo)
	if err != nil {
		t.Fatal(err)
	}
	for _, gamma := range []float64{1.5, 2.0} {
		paths, err := Case2LossHetero(homo, gamma)
		if err != nil {
			t.Fatal(err)
		}
		s1, _ := Sigma(paths[0])
		s2, _ := Sigma(paths[1])
		if math.Abs((s1+s2)-2*sigmaO)/(2*sigmaO) > 0.02 {
			t.Fatalf("gamma %v: aggregate %v vs homogeneous %v", gamma, s1+s2, 2*sigmaO)
		}
		if paths[0].P != gamma*homo.P {
			t.Fatalf("p1 = %v", paths[0].P)
		}
		if paths[1].P >= homo.P {
			t.Fatalf("p2 = %v should be below p° = %v", paths[1].P, homo.P)
		}
	}
}

func TestRequiredStartupDelayMonotoneInRatio(t *testing.T) {
	get := func(ratio float64) float64 {
		par, err := RForRatio(0.02, 2, 0, 25, ratio, 2)
		if err != nil {
			t.Fatal(err)
		}
		m := Model{Paths: []tcpmodel.Params{par, par}, Mu: 25}
		tau, err := m.RequiredStartupDelay(1e-2, 1, 60, Options{Seed: 6, MaxConsumptions: 400_000})
		if err != nil {
			t.Fatal(err)
		}
		return tau
	}
	lo, hi := get(1.8), get(1.3)
	if lo > hi {
		t.Fatalf("required delay at ratio 1.8 (%v) exceeds ratio 1.3 (%v)", lo, hi)
	}
}

func TestRequiredStartupDelayInfeasible(t *testing.T) {
	par, err := RForRatio(0.02, 4, 0, 25, 0.9, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := Model{Paths: []tcpmodel.Params{par, par}, Mu: 25}
	tau, err := m.RequiredStartupDelay(1e-4, 1, 10, Options{Seed: 7, MaxConsumptions: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(tau, 1) {
		t.Fatalf("tau = %v for infeasible ratio", tau)
	}
}

func TestStaticWorseThanDMP(t *testing.T) {
	// The paper's Fig 11 claim: static allocation needs (much) more buffer.
	par, err := RForRatio(0.02, 4, 0, 50, 1.4, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := Model{Paths: []tcpmodel.Params{par, par}, Mu: 50}
	opts := Options{Seed: 8, MaxConsumptions: 800_000}
	tau := 3.0
	dmp, err := m.FractionLate(tau, opts)
	if err != nil {
		t.Fatal(err)
	}
	static, err := StaticFractionLate(m.Paths, m.Mu, tau, opts)
	if err != nil {
		t.Fatal(err)
	}
	if static.F <= dmp.F {
		t.Fatalf("static f (%v) not worse than DMP f (%v)", static.F, dmp.F)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	p := tcpmodel.Params{P: 0.02, R: 0.2, TO: 4}
	m := Model{Paths: []tcpmodel.Params{p, p}, Mu: 20}
	a, err := m.FractionLate(3, Options{Seed: 11, MaxConsumptions: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.FractionLate(3, Options{Seed: 11, MaxConsumptions: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	if a.F != b.F || a.Late != b.Late {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestValidation(t *testing.T) {
	good := tcpmodel.Params{P: 0.02, R: 0.2, TO: 4}
	cases := []Model{
		{Paths: nil, Mu: 10},
		{Paths: []tcpmodel.Params{good}, Mu: 0},
		{Paths: []tcpmodel.Params{{P: 2, R: 0.1, TO: 4}}, Mu: 10},
	}
	for i, m := range cases {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	m := Model{Paths: []tcpmodel.Params{good}, Mu: 10}
	if _, err := m.FractionLate(0, Options{}); err == nil {
		t.Error("tau=0 accepted")
	}
	if _, err := m.RequiredStartupDelay(1e-4, 0, 10, Options{}); err == nil {
		t.Error("zero step accepted")
	}
}

func TestSigmaCacheConsistency(t *testing.T) {
	p := tcpmodel.Params{P: 0.013, R: 0.27, TO: 3}
	a, err := Sigma(p)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := tcpmodel.Throughput(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-direct)/direct > 1e-9 {
		t.Fatalf("cached σ = %v, direct = %v", a, direct)
	}
	b, _ := Sigma(p) // cached path
	if a != b {
		t.Fatalf("cache changed value: %v vs %v", a, b)
	}
}

func TestSinglePathModelDegenerate(t *testing.T) {
	// K=1 reduces to the single-path streaming model of [31]; it must need a
	// higher σ/µ than K=2 for the same quality (the paper's core claim).
	p1, err := RForRatio(0.02, 4, 0, 25, 1.6, 1)
	if err != nil {
		t.Fatal(err)
	}
	single := Model{Paths: []tcpmodel.Params{p1}, Mu: 25}
	p2, err := RForRatio(0.02, 4, 0, 25, 1.6, 2)
	if err != nil {
		t.Fatal(err)
	}
	dual := Model{Paths: []tcpmodel.Params{p2, p2}, Mu: 25}
	opts := Options{Seed: 13, MaxConsumptions: 600_000}
	fs, err := single.FractionLate(8, opts)
	if err != nil {
		t.Fatal(err)
	}
	fd, err := dual.FractionLate(8, opts)
	if err != nil {
		t.Fatal(err)
	}
	if fd.F > fs.F+3*(fd.CI95+fs.CI95)+1e-3 {
		t.Fatalf("two paths (f=%v) not at least as good as one (f=%v) at equal σ_a/µ", fd.F, fs.F)
	}
}

func BenchmarkFractionLateJumpChain(b *testing.B) {
	p := tcpmodel.Params{P: 0.02, R: 0.15, TO: 4}
	m := Model{Paths: []tcpmodel.Params{p, p}, Mu: 30}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.FractionLate(5, Options{Seed: int64(i), MaxConsumptions: 100_000}); err != nil {
			b.Fatal(err)
		}
	}
}
