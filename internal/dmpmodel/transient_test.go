package dmpmodel

import (
	"testing"

	"dmpstream/internal/tcpmodel"
)

func ratioModel(t *testing.T, ratio, mu float64) Model {
	t.Helper()
	par, err := RForRatio(0.02, 4, 0, mu, ratio, 2)
	if err != nil {
		t.Fatal(err)
	}
	return Model{Paths: []tcpmodel.Params{par, par}, Mu: mu}
}

func TestTransientStoredBeatsLive(t *testing.T) {
	// The live cap N ≤ µτ throttles senders whenever the client is maximally
	// ahead; stored streaming has no such cap, so at a tight provisioning
	// ratio it must lose no more packets than live streaming.
	m := ratioModel(t, 1.2, 25)
	opts := Options{Seed: 9, MaxConsumptions: 3_000_000}
	live, err := m.TransientFractionLate(4, 200, false, opts)
	if err != nil {
		t.Fatal(err)
	}
	stored, err := m.TransientFractionLate(4, 200, true, opts)
	if err != nil {
		t.Fatal(err)
	}
	if live.F <= 0 {
		t.Fatalf("live f = %v at ratio 1.2; expected lateness", live.F)
	}
	if stored.F > live.F+stored.CI95+live.CI95 {
		t.Fatalf("stored (%v) worse than live (%v)", stored.F, live.F)
	}
}

func TestTransientMatchesStationaryRegime(t *testing.T) {
	// For long videos the transient live fraction should approach the
	// stationary estimate (same chain, same cap).
	m := ratioModel(t, 1.3, 25)
	opts := Options{Seed: 11, MaxConsumptions: 4_000_000}
	tr, err := m.TransientFractionLate(4, 2000, false, opts)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.FractionLate(4, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Same order of magnitude (transient includes the startup ramp).
	if tr.F > st.F*5+0.02 || st.F > tr.F*5+0.02 {
		t.Fatalf("transient %v vs stationary %v diverge", tr.F, st.F)
	}
}

func TestTransientValidation(t *testing.T) {
	m := ratioModel(t, 1.5, 25)
	if _, err := m.TransientFractionLate(0, 100, false, Options{}); err == nil {
		t.Error("tau=0 accepted")
	}
	if _, err := m.TransientFractionLate(10, 5, false, Options{}); err == nil {
		t.Error("video shorter than tau accepted")
	}
}

func TestTransientDeterministic(t *testing.T) {
	m := ratioModel(t, 1.3, 25)
	opts := Options{Seed: 21, MaxConsumptions: 500_000}
	a, err := m.TransientFractionLate(4, 100, false, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.TransientFractionLate(4, 100, false, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.F != b.F || a.Replications != b.Replications {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestMorePathsHelpAtFixedAggregate(t *testing.T) {
	// The paper's future-work question: does K > 2 help further? At a fixed
	// σ_a/µ, more paths give finer-grained diversity; the late fraction
	// should not get worse as K grows.
	const mu, ratio, tau = 25.0, 1.4, 5.0
	var prev float64 = 1.1
	for _, k := range []int{1, 2, 4} {
		par, err := RForRatio(0.02, 4, 0, mu, ratio, k)
		if err != nil {
			t.Fatal(err)
		}
		paths := make([]tcpmodel.Params, k)
		for i := range paths {
			paths[i] = par
		}
		m := Model{Paths: paths, Mu: mu}
		res, err := m.FractionLate(tau, Options{Seed: 31, MaxConsumptions: 600_000})
		if err != nil {
			t.Fatal(err)
		}
		if res.F > prev+3*res.CI95+2e-3 {
			t.Fatalf("K=%d made things worse: f=%v (prev %v)", k, res.F, prev)
		}
		prev = res.F
	}
}

func TestPathSharesFollowThroughput(t *testing.T) {
	// A path with half the RTT has twice the achievable throughput and must
	// carry roughly twice the packets — the model-side mirror of DMP's
	// dynamic allocation.
	fast := tcpmodel.Params{P: 0.02, R: 0.08, TO: 2}
	slow := tcpmodel.Params{P: 0.02, R: 0.16, TO: 2}
	sf, _ := Sigma(fast)
	ss, _ := Sigma(slow)
	m := Model{Paths: []tcpmodel.Params{fast, slow}, Mu: (sf + ss) / 1.2}
	res, err := m.FractionLate(5, Options{Seed: 17, MaxConsumptions: 400_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PathShares) != 2 {
		t.Fatalf("shares = %v", res.PathShares)
	}
	ratio := res.PathShares[0] / res.PathShares[1]
	if ratio < 1.5 || ratio > 2.6 {
		t.Fatalf("fast/slow share ratio %.2f, want ≈2", ratio)
	}
}
