package simstream

import (
	"testing"

	"dmpstream/internal/netsim"
	"dmpstream/internal/sim"
	"dmpstream/internal/tcpsim"
)

// twoPathStream builds a stream over two independent lossless paths with the
// given bottleneck rates (Mbps) and one-way delays.
func twoPathStream(seed int64, cfg VideoConfig, rates [2]float64, delays [2]sim.Time, buf int) (*sim.Simulator, *Stream) {
	s := sim.New(seed)
	var conns []*tcpsim.Conn
	for k := 0; k < 2; k++ {
		c := tcpsim.NewConn(s, netsim.FlowID(k+1), tcpsim.Config{})
		fwd := netsim.NewLink(s, "fwd", rates[k], delays[k], buf, nil)
		rev := netsim.NewLink(s, "rev", 100, delays[k], 1<<20, nil)
		c.Wire(netsim.NewPath(c.Rcv, fwd), netsim.NewPath(c.Snd, rev))
		conns = append(conns, c)
	}
	return s, New(s, cfg, conns)
}

func TestAllPacketsDeliveredWithAmpleBandwidth(t *testing.T) {
	cfg := VideoConfig{Mu: 50, Duration: 60 * sim.Second}
	s, st := twoPathStream(1, cfg, [2]float64{10, 10}, [2]sim.Time{20 * sim.Millisecond, 20 * sim.Millisecond}, 1000)
	st.Start()
	s.Run(120 * sim.Second)
	want := int64(60 * 50)
	if st.Generated() != want {
		t.Fatalf("generated %d, want %d", st.Generated(), want)
	}
	if st.Arrived() != want {
		t.Fatalf("arrived %d, want %d", st.Arrived(), want)
	}
	pb, ao := st.LateFraction(2.0)
	if pb != 0 || ao != 0 {
		t.Fatalf("late fractions %v/%v on uncongested paths", pb, ao)
	}
}

func TestConservationNoDuplicates(t *testing.T) {
	cfg := VideoConfig{Mu: 80, Duration: 30 * sim.Second}
	s, st := twoPathStream(2, cfg, [2]float64{5, 1}, [2]sim.Time{10 * sim.Millisecond, 40 * sim.Millisecond}, 100)
	st.Start()
	s.Run(200 * sim.Second)
	counts := st.PathCounts()
	if counts[0]+counts[1] != st.Generated() {
		t.Fatalf("fetched %d+%d != generated %d", counts[0], counts[1], st.Generated())
	}
	if st.Arrived() != st.Generated() {
		t.Fatalf("arrived %d != generated %d (lossless paths)", st.Arrived(), st.Generated())
	}
}

func TestFasterPathCarriesMore(t *testing.T) {
	// 4:1 bandwidth asymmetry with the offered load (1.2 Mbps) close to the
	// aggregate capacity (1.5 Mbps): both send buffers see backpressure, so
	// the fetch loop should route most packets to the fast path. (When both
	// paths are far from saturation, a 50/50 split is expected and correct —
	// no backpressure means no inference signal.)
	cfg := VideoConfig{Mu: 100, Duration: 60 * sim.Second}
	s, st := twoPathStream(3, cfg, [2]float64{1.2, 0.3}, [2]sim.Time{20 * sim.Millisecond, 20 * sim.Millisecond}, 500)
	st.Start()
	s.Run(180 * sim.Second)
	share0 := st.PathShare(0)
	if share0 < 0.55 {
		t.Fatalf("fast path share %.2f; expected dynamic allocation to favor it", share0)
	}
	if st.PathShare(1) == 0 {
		t.Fatal("slow path completely starved")
	}
}

func TestLateFractionMonotoneInTau(t *testing.T) {
	// Constrained aggregate bandwidth: some packets are late at small τ.
	cfg := VideoConfig{Mu: 100, Duration: 60 * sim.Second}
	s, st := twoPathStream(4, cfg, [2]float64{0.7, 0.7}, [2]sim.Time{30 * sim.Millisecond, 30 * sim.Millisecond}, 30)
	st.Start()
	s.Run(300 * sim.Second)
	prev := 1.1
	for _, tau := range []float64{0.5, 1, 2, 4, 8, 16, 32} {
		pb, _ := st.LateFraction(tau)
		if pb > prev+1e-12 {
			t.Fatalf("late fraction increased with tau at %v: %v > %v", tau, pb, prev)
		}
		prev = pb
	}
}

func TestArrivalOrderCloseToPlaybackOrder(t *testing.T) {
	// The paper's Fig 4(a)/5(a) claim: playing in arrival order yields nearly
	// the same late fraction as true playback order.
	cfg := VideoConfig{Mu: 50, Duration: 120 * sim.Second}
	s, st := twoPathStream(5, cfg, [2]float64{1.0, 0.6}, [2]sim.Time{20 * sim.Millisecond, 60 * sim.Millisecond}, 40)
	st.Start()
	s.Run(400 * sim.Second)
	for _, tau := range []float64{4, 6, 8, 10} {
		pb, ao := st.LateFraction(tau)
		diff := pb - ao
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.05 && (pb < 10*ao || ao < 10*pb) == false {
			t.Fatalf("tau=%v: playback %v vs arrival-order %v differ wildly", tau, pb, ao)
		}
	}
}

func TestArrivalLogTimeOrdered(t *testing.T) {
	cfg := VideoConfig{Mu: 50, Duration: 30 * sim.Second}
	s, st := twoPathStream(6, cfg, [2]float64{2, 0.5}, [2]sim.Time{10 * sim.Millisecond, 80 * sim.Millisecond}, 50)
	st.Start()
	s.Run(120 * sim.Second)
	if !st.ArrivalTimesSorted() {
		t.Fatal("arrival log out of time order")
	}
}

func TestReorderingObservedAcrossAsymmetricPaths(t *testing.T) {
	cfg := VideoConfig{Mu: 60, Duration: 60 * sim.Second}
	s, st := twoPathStream(7, cfg, [2]float64{2, 0.4}, [2]sim.Time{5 * sim.Millisecond, 150 * sim.Millisecond}, 50)
	st.Start()
	s.Run(300 * sim.Second)
	if st.OutOfOrderCount() == 0 {
		t.Fatal("expected cross-path reordering on asymmetric paths")
	}
}

func TestSinglePathDegeneratesToTCPStreaming(t *testing.T) {
	s := sim.New(8)
	c := tcpsim.NewConn(s, 1, tcpsim.Config{})
	fwd := netsim.NewLink(s, "fwd", 5, 20*sim.Millisecond, 200, nil)
	rev := netsim.NewLink(s, "rev", 100, 20*sim.Millisecond, 1<<20, nil)
	c.Wire(netsim.NewPath(c.Rcv, fwd), netsim.NewPath(c.Snd, rev))
	st := New(s, VideoConfig{Mu: 50, Duration: 30 * sim.Second}, []*tcpsim.Conn{c})
	st.Start()
	s.Run(100 * sim.Second)
	if st.Arrived() != st.Generated() {
		t.Fatalf("single-path stream lost packets: %d/%d", st.Arrived(), st.Generated())
	}
	if st.PathShare(0) != 1.0 {
		t.Fatalf("share = %v", st.PathShare(0))
	}
}

func TestQueueBacklogWhenUnderprovisioned(t *testing.T) {
	// Aggregate capacity below µ: the server queue must grow (live content
	// cannot be dropped by the server).
	cfg := VideoConfig{Mu: 200, Duration: 30 * sim.Second}
	s, st := twoPathStream(9, cfg, [2]float64{0.5, 0.5}, [2]sim.Time{20 * sim.Millisecond, 20 * sim.Millisecond}, 20)
	st.Start()
	s.Run(30 * sim.Second)
	if st.QueueLen() < 100 {
		t.Fatalf("queue backlog %d; expected large backlog at 2.4x overload", st.QueueLen())
	}
}
