// Package simstream runs DMP-streaming inside the packet-level simulator.
//
// It implements the scheme of the paper's Section 3 verbatim: a CBR source
// places packets into a server queue; one TCP sender per path fetches packets
// from the head of the queue whenever it can send (send buffer not full),
// draining until it blocks or the queue empties. Because fetching is driven
// by send-buffer backpressure, paths with higher achievable TCP throughput
// automatically carry more packets — the "implicit bandwidth inference" at
// the heart of DMP-streaming.
//
// The client side records the arrival time of every video packet, which lets
// one simulation run be analyzed for every startup delay τ afterwards, in
// both true playback order and arrival order (the paper's Figs 4a/5a).
package simstream

import (
	"fmt"
	"sort"

	"dmpstream/internal/sim"
	"dmpstream/internal/tcpsim"
)

// VideoConfig describes the live CBR source.
type VideoConfig struct {
	Mu       float64  // playback/generation rate, packets per second
	Duration sim.Time // generation horizon (video length)
}

// arrival is one client-side packet arrival observation.
type arrival struct {
	pkt int64
	at  sim.Time
}

// Stream couples a CBR generator, the server queue, K TCP senders and the
// client-side trace.
type Stream struct {
	sim   *sim.Simulator
	cfg   VideoConfig
	conns []*tcpsim.Conn

	queue     []int64 // packet numbers awaiting a sender; head at [qhead]
	qhead     int
	generated int64
	rr        int      // round-robin start for the drain loop
	startAt   sim.Time // generation start (packet i is generated at startAt + i/µ)

	arrivals   []sim.Time // arrival time per packet number; -1 = not arrived
	arrivalLog []arrival  // merged arrival sequence across paths
	byPath     []int64    // packets fetched per path
}

// New builds a stream over pre-wired connections (one per path). Call Start,
// then run the simulator past cfg.Duration plus drain time.
func New(s *sim.Simulator, cfg VideoConfig, conns []*tcpsim.Conn) *Stream {
	if cfg.Mu <= 0 {
		panic(fmt.Sprintf("simstream: non-positive rate %v", cfg.Mu))
	}
	if len(conns) == 0 {
		panic("simstream: no paths")
	}
	st := &Stream{sim: s, cfg: cfg, conns: conns, byPath: make([]int64, len(conns))}
	total := int64(cfg.Duration.Seconds() * cfg.Mu)
	st.arrivals = make([]sim.Time, total)
	for i := range st.arrivals {
		st.arrivals[i] = -1
	}
	for k, c := range conns {
		k := k
		c.Snd.Writable = st.drain
		c.Rcv.OnDeliver = func(_ int64, app any) {
			pkt := app.(int64)
			if st.arrivals[pkt] < 0 {
				st.arrivals[pkt] = s.Now()
				st.arrivalLog = append(st.arrivalLog, arrival{pkt: pkt, at: s.Now()})
			}
			_ = k
		}
	}
	return st
}

// Start begins CBR generation at packet 0, anchored at the current
// simulation time (lateness deadlines are relative to this instant).
func (st *Stream) Start() {
	st.startAt = st.sim.Now()
	st.generate()
}

func (st *Stream) generate() {
	total := int64(len(st.arrivals))
	if st.generated >= total {
		return
	}
	st.queue = append(st.queue, st.generated)
	st.generated++
	st.drain()
	if st.generated < total {
		st.sim.After(sim.Seconds(1/st.cfg.Mu), st.generate)
	}
}

// drain implements the server-queue fetch loop: visit senders round-robin;
// each writable sender fetches from the head of the queue until it blocks or
// the queue empties. The sim is single-threaded, so the paper's queue lock is
// implicit.
func (st *Stream) drain() {
	n := len(st.conns)
	for i := 0; i < n && st.qhead < len(st.queue); i++ {
		k := (st.rr + i) % n
		snd := st.conns[k].Snd
		for snd.CanWrite() && st.qhead < len(st.queue) {
			snd.Write(st.queue[st.qhead])
			st.queue[st.qhead] = 0
			st.qhead++
			st.byPath[k]++
		}
	}
	st.rr = (st.rr + 1) % n
	if st.qhead == len(st.queue) {
		st.queue = st.queue[:0]
		st.qhead = 0
	}
}

// Generated returns the number of packets generated so far.
func (st *Stream) Generated() int64 { return st.generated }

// QueueLen returns the current server-queue backlog.
func (st *Stream) QueueLen() int { return len(st.queue) - st.qhead }

// PathShare returns the fraction of fetched packets assigned to path k.
func (st *Stream) PathShare(k int) float64 {
	var tot int64
	for _, c := range st.byPath {
		tot += c
	}
	if tot == 0 {
		return 0
	}
	return float64(st.byPath[k]) / float64(tot)
}

// PathCounts returns per-path fetched-packet counts.
func (st *Stream) PathCounts() []int64 {
	out := make([]int64, len(st.byPath))
	copy(out, st.byPath)
	return out
}

// Arrived returns how many distinct packets reached the client.
func (st *Stream) Arrived() int64 { return int64(len(st.arrivalLog)) }

// LateFraction analyzes the recorded trace for startup delay tau (seconds).
// playback is the true-order fraction of late packets: packet i (generated at
// i/µ) is late if it arrives after i/µ + τ. arrivalOrder plays packets in the
// order they arrived — the j-th arriving packet is consumed at j/µ + τ — and
// is the quantity the paper uses to show out-of-order effects are negligible
// (Figs 4a, 5a). Packets that never arrived count as late in both.
func (st *Stream) LateFraction(tau float64) (playback, arrivalOrder float64) {
	total := int64(len(st.arrivals))
	if total == 0 {
		return 0, 0
	}
	var latePB int64
	for i, at := range st.arrivals {
		deadline := st.startAt + sim.Seconds(float64(i)/st.cfg.Mu+tau)
		if at < 0 || at > deadline {
			latePB++
		}
	}
	var lateAO int64
	for j, a := range st.arrivalLog {
		deadline := st.startAt + sim.Seconds(float64(j)/st.cfg.Mu+tau)
		if a.at > deadline {
			lateAO++
		}
	}
	lateAO += total - int64(len(st.arrivalLog)) // missing packets are late
	return float64(latePB) / float64(total), float64(lateAO) / float64(total)
}

// RequiredDelay returns the smallest startup delay (seconds) that keeps the
// fraction of late packets at or below quality, computed exactly from the
// recorded arrivals, and ok=false when missing packets alone exceed the
// budget. It is the simulation-side counterpart of the model's
// RequiredStartupDelay and of core.Trace.RequiredDelay.
func (st *Stream) RequiredDelay(quality float64) (delay float64, ok bool) {
	n := len(st.arrivals)
	if n == 0 {
		return 0, true
	}
	slacks := make([]float64, 0, n)
	missing := 0
	for i, at := range st.arrivals {
		if at < 0 {
			missing++
			continue
		}
		gen := st.startAt + sim.Seconds(float64(i)/st.cfg.Mu)
		slacks = append(slacks, (at - gen).Seconds())
	}
	budget := int(quality * float64(n))
	if missing > budget {
		return 0, false
	}
	sort.Float64s(slacks)
	idx := len(slacks) - 1 - (budget - missing)
	if idx < 0 {
		return 0, true
	}
	s := slacks[idx]
	if s < 0 {
		s = 0
	}
	return s, true
}

// OutOfOrderCount returns how many arrivals had a packet number smaller than
// an earlier arrival (a direct measure of cross-path reordering).
func (st *Stream) OutOfOrderCount() int64 {
	var n int64
	maxSeen := int64(-1)
	for _, a := range st.arrivalLog {
		if a.pkt < maxSeen {
			n++
		} else {
			maxSeen = a.pkt
		}
	}
	return n
}

// ArrivalTimesSorted returns all arrival times in increasing order (test
// support: verifying the log is time-ordered).
func (st *Stream) ArrivalTimesSorted() bool {
	return sort.SliceIsSorted(st.arrivalLog, func(i, j int) bool {
		return st.arrivalLog[i].at < st.arrivalLog[j].at
	})
}
