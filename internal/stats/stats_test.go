package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean %v", m)
	}
	want := math.Sqrt(32.0 / 7.0)
	if sd := StdDev(xs); math.Abs(sd-want) > 1e-12 {
		t.Fatalf("stddev %v, want %v", sd, want)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{3}) != 0 {
		t.Fatal("empty-input conventions violated")
	}
	m, hw := MeanCI95([]float64{7})
	if m != 7 || hw != 0 {
		t.Fatalf("singleton CI: %v ± %v", m, hw)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := map[float64]float64{0: 1, 0.25: 2, 0.5: 3, 0.75: 4, 1: 5}
	for q, want := range cases {
		if got := Quantile(xs, q); math.Abs(got-want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{0, 10}, 0.3); math.Abs(got-3) > 1e-12 {
		t.Errorf("interpolated quantile = %v, want 3", got)
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestQuantileBadQPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on q=2")
		}
	}()
	Quantile([]float64{1}, 2)
}

func TestBatchMeansCoverage(t *testing.T) {
	// Bernoulli(0.3) stream: the batch-means CI should cover 0.3.
	rng := rand.New(rand.NewSource(5))
	b := NewBatchMeans(1000)
	for i := 0; i < 200_000; i++ {
		x := 0.0
		if rng.Float64() < 0.3 {
			x = 1
		}
		b.Add(x)
	}
	mean, hw := b.Estimate()
	if hw <= 0 {
		t.Fatal("no interval with 200 batches")
	}
	if math.Abs(mean-0.3) > 3*hw {
		t.Fatalf("estimate %v ± %v far from 0.3", mean, hw)
	}
	if b.Batches() != 200 {
		t.Fatalf("batches = %d", b.Batches())
	}
}

func TestBatchMeansPartialBatchExcluded(t *testing.T) {
	b := NewBatchMeans(10)
	for i := 0; i < 25; i++ {
		b.Add(1)
	}
	if b.Batches() != 2 {
		t.Fatalf("batches = %d, want 2 (5 observations pending)", b.Batches())
	}
}

func TestBatchMeansSeparated(t *testing.T) {
	b := NewBatchMeans(100)
	for i := 0; i < 10_000; i++ {
		b.Add(1) // constant 1
	}
	// Note: zero variance yields hw=0, so Separated is conservative-false.
	if b.Separated(0.5) {
		t.Fatal("zero-variance series should not claim separation")
	}
	rng := rand.New(rand.NewSource(1))
	b2 := NewBatchMeans(100)
	for i := 0; i < 20_000; i++ {
		x := 0.0
		if rng.Float64() < 0.8 {
			x = 1
		}
		b2.Add(x)
	}
	if !b2.Separated(0.5) {
		t.Fatal("0.8 stream should separate from 0.5")
	}
	if b2.Separated(0.8) {
		t.Fatal("0.8 stream should not separate from its own mean")
	}
}

func TestNewBatchMeansPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on size 0")
		}
	}()
	NewBatchMeans(0)
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestPropertyQuantileMonotone(t *testing.T) {
	f := func(raw []float64, qa, qb uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		q1 := float64(qa%101) / 100
		q2 := float64(qb%101) / 100
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		v1, v2 := Quantile(raw, q1), Quantile(raw, q2)
		lo, hi := Quantile(raw, 0), Quantile(raw, 1)
		return v1 <= v2+1e-9 && v1 >= lo-1e-9 && v2 <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Mean is translation-equivariant.
func TestPropertyMeanShift(t *testing.T) {
	f := func(raw []float64, shift float64) bool {
		if len(raw) == 0 || math.IsNaN(shift) || math.IsInf(shift, 0) {
			return true
		}
		clean := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 || math.Abs(shift) > 1e12 {
			return true
		}
		shifted := make([]float64, len(clean))
		for i, v := range clean {
			shifted[i] = v + shift
		}
		return math.Abs(Mean(shifted)-(Mean(clean)+shift)) < 1e-6*(1+math.Abs(shift))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
