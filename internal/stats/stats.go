// Package stats provides the small statistical toolkit the experiment
// harness and estimators share: sample summaries, normal-approximation
// confidence intervals, batch means for autocorrelated series, and
// quantiles.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator; 0 when
// fewer than two samples).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// MeanCI95 returns the sample mean and the 95% normal-approximation
// confidence half-width. The half-width is 0 when fewer than two samples.
func MeanCI95(xs []float64) (mean, halfWidth float64) {
	mean = Mean(xs)
	if len(xs) < 2 {
		return mean, 0
	}
	return mean, 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Quantile returns the q-th sample quantile (0 ≤ q ≤ 1) using linear
// interpolation between order statistics. It panics on q outside [0,1] and
// returns 0 for an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v outside [0,1]", q))
	}
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// BatchMeans accumulates a 0/1 (or arbitrary real) event series into
// fixed-size batches and reports a mean with a batch-means 95% confidence
// interval, the standard technique for autocorrelated steady-state series.
type BatchMeans struct {
	batchSize int64
	sum       float64
	count     int64
	batches   []float64
}

// NewBatchMeans creates an accumulator with the given batch size (panics on
// a non-positive size).
func NewBatchMeans(batchSize int64) *BatchMeans {
	if batchSize <= 0 {
		panic(fmt.Sprintf("stats: batch size %d", batchSize))
	}
	return &BatchMeans{batchSize: batchSize}
}

// Add appends one observation.
func (b *BatchMeans) Add(x float64) {
	b.sum += x
	b.count++
	if b.count == b.batchSize {
		b.batches = append(b.batches, b.sum/float64(b.count))
		b.sum, b.count = 0, 0
	}
}

// Batches returns the number of completed batches.
func (b *BatchMeans) Batches() int { return len(b.batches) }

// Estimate returns the mean over completed batches and the 95% half-width
// (0 when fewer than four batches — too few for a meaningful interval).
// Observations in the current partial batch are not included.
func (b *BatchMeans) Estimate() (mean, halfWidth float64) {
	if len(b.batches) < 4 {
		return Mean(b.batches), 0
	}
	return MeanCI95(b.batches)
}

// Separated reports whether the accumulated estimate is cleanly above or
// below the threshold at 95% confidence (used for sequential stopping).
func (b *BatchMeans) Separated(threshold float64) bool {
	mean, hw := b.Estimate()
	if hw == 0 {
		return false
	}
	return mean-hw > threshold || mean+hw < threshold
}
