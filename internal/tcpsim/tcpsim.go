// Package tcpsim implements packet-granularity TCP Reno endpoints on the
// discrete-event simulator.
//
// This is the transport substrate that replaces ns-2 in the reproduction.
// Each data segment carries exactly one application packet (one MSS), which
// matches the paper's packet-based accounting: the video source emits
// fixed-size packets and the model reasons about per-packet loss.
//
// The sender implements the Reno loss recovery the paper's model reconstructs:
// slow start, congestion avoidance with delayed-ACK-paced growth, fast
// retransmit on three duplicate ACKs, fast recovery with window inflation,
// and retransmission timeouts with exponential backoff (RFC 6298 estimator).
// Crucially for DMP-streaming, the sender has a finite send buffer and a
// writability callback: an application can only hand the sender a packet when
// buffer space is available, which is the backpressure signal DMP-streaming
// uses to infer per-path achievable throughput.
package tcpsim

import (
	"fmt"

	"dmpstream/internal/netsim"
	"dmpstream/internal/sim"
)

// Flavor selects the loss-recovery variant.
type Flavor int

// Supported TCP flavors.
const (
	// Reno exits fast recovery on the first ACK that advances sndUna
	// (classic RFC 2581 behavior; multiple losses per window usually cost a
	// timeout). This is what the paper's experiments use.
	Reno Flavor = iota
	// NewReno stays in fast recovery across partial ACKs, retransmitting one
	// hole per RTT (RFC 6582), which survives multi-loss windows without
	// timeouts. Provided for the TCP-flavor ablation.
	NewReno
)

// Config holds per-connection TCP parameters. Zero values select defaults.
type Config struct {
	MSS        int     // data segment size in bytes (default 1500)
	AckSizeB   int     // ACK wire size (default 40)
	SndBufPkts int     // send buffer capacity in packets (default 16)
	InitCwnd   float64 // initial congestion window (default 2)
	MaxCwnd    float64 // congestion window cap in packets (default 32)
	Flavor     Flavor  // loss recovery variant (default Reno)

	MinRTO  sim.Time // lower bound on the retransmission timer (default 200ms)
	MaxRTO  sim.Time // upper bound (default 60s)
	InitRTO sim.Time // before the first RTT sample (default 1s)

	DelAckTimeout sim.Time // delayed-ACK timer (default 100ms)
	AckEvery      int      // ACK every n-th in-order segment (default 2)
}

func (c Config) withDefaults() Config {
	if c.MSS == 0 {
		c.MSS = 1500
	}
	if c.AckSizeB == 0 {
		c.AckSizeB = 40
	}
	if c.SndBufPkts == 0 {
		c.SndBufPkts = 16
	}
	if c.InitCwnd == 0 {
		c.InitCwnd = 2
	}
	if c.MaxCwnd == 0 {
		c.MaxCwnd = 32
	}
	if c.MinRTO == 0 {
		c.MinRTO = 200 * sim.Millisecond
	}
	if c.MaxRTO == 0 {
		c.MaxRTO = 60 * sim.Second
	}
	if c.InitRTO == 0 {
		c.InitRTO = sim.Second
	}
	if c.DelAckTimeout == 0 {
		c.DelAckTimeout = 100 * sim.Millisecond
	}
	if c.AckEvery == 0 {
		c.AckEvery = 2
	}
	return c
}

// dataSeg is the payload of a forward-path packet.
type dataSeg struct {
	seq int64
	app any // application payload unit riding in this segment
}

// ackSeg is the payload of a reverse-path packet.
type ackSeg struct {
	ack int64 // cumulative: next expected sequence
}

// SenderStats accumulates sender-side counters used to regenerate the
// paper's Table 2/3 path parameters.
type SenderStats struct {
	Sent            int64 // data segments put on the wire, incl. retransmissions
	Retransmits     int64
	Timeouts        int64
	FastRetransmits int64
	AckedPkts       int64

	RTTSampleSum sim.Time
	RTTSamples   int64
	RTOSampleSum sim.Time // RTO value recorded at each RTT sample
}

// MeanRTT returns the average of the sender's RTT samples (0 if none).
func (st SenderStats) MeanRTT() sim.Time {
	if st.RTTSamples == 0 {
		return 0
	}
	return st.RTTSampleSum / sim.Time(st.RTTSamples)
}

// MeanRTO returns the average first-retransmission-timer value (0 if none).
func (st SenderStats) MeanRTO() sim.Time {
	if st.RTTSamples == 0 {
		return 0
	}
	return st.RTOSampleSum / sim.Time(st.RTTSamples)
}

// Sender is the TCP Reno sending endpoint.
type Sender struct {
	sim  *sim.Simulator
	cfg  Config
	flow netsim.FlowID
	out  netsim.Sink // forward path toward the receiver

	// Sequence space, in packets.
	sndUna int64 // oldest unacknowledged
	sndNxt int64 // next new segment to send
	appSeq int64 // next slot the application will fill; buffer holds [sndUna, appSeq)
	buf    []any // ring: payload for seq s lives at s % SndBufPkts

	cwnd       float64
	ssthresh   float64
	dupAcks    int
	inRecovery bool
	recover    int64 // sndNxt at loss detection; recovery ends when acked past it

	// RFC 6298 estimator.
	srtt, rttvar sim.Time
	rto          sim.Time
	backoff      uint
	hasSample    bool

	// One outstanding RTT measurement (Karn's algorithm: abandoned on any
	// retransmission).
	timing   bool
	timedSeq int64
	timedAt  sim.Time

	rtxTimer *sim.Timer

	// Writable, if set, is called whenever send-buffer space may have become
	// available. DMP-streaming and the background sources drive their data
	// production from this callback.
	Writable func()
	// OnAllAcked, if set, is called when every written packet has been acked.
	OnAllAcked func()

	stats SenderStats
}

// Receiver is the TCP receiving endpoint: cumulative ACKs, delayed ACKs,
// immediate duplicate ACKs on out-of-order arrival, in-order delivery.
type Receiver struct {
	sim  *sim.Simulator
	cfg  Config
	flow netsim.FlowID
	out  netsim.Sink // reverse path toward the sender

	rcvNxt  int64
	ooo     map[int64]any // buffered out-of-order payloads
	pending int           // in-order segments not yet acked
	delack  *sim.Timer

	// OnDeliver receives application payloads in sequence order.
	OnDeliver func(seq int64, app any)

	Delivered int64 // in-order packets handed to the application
	DupAcks   int64 // duplicate ACKs generated
}

// Conn couples a sender and receiver.
type Conn struct {
	Snd *Sender
	Rcv *Receiver
}

// NewConn creates a connection. fwd carries data sender→receiver; rev carries
// ACKs receiver→sender. The endpoints terminate the paths themselves: point
// fwd's final sink at Conn.Rcv and rev's final sink at Conn.Snd via the
// returned endpoints' Deliver methods (see netsim.NewPath).
func NewConn(s *sim.Simulator, flow netsim.FlowID, cfg Config) *Conn {
	cfg = cfg.withDefaults()
	snd := &Sender{
		sim:      s,
		cfg:      cfg,
		flow:     flow,
		cwnd:     cfg.InitCwnd,
		ssthresh: cfg.MaxCwnd,
		rto:      cfg.InitRTO,
		buf:      make([]any, cfg.SndBufPkts),
	}
	rcv := &Receiver{
		sim:  s,
		cfg:  cfg,
		flow: flow,
		ooo:  make(map[int64]any),
	}
	return &Conn{Snd: snd, Rcv: rcv}
}

// Wire attaches the forward and reverse paths. It must be called before any
// data is written. Typically: c.Wire(netsim.NewPath(c.Rcv, fwdLinks...),
// netsim.NewPath(c.Snd, revLinks...)).
func (c *Conn) Wire(fwd, rev netsim.Sink) {
	c.Snd.out = fwd
	c.Rcv.out = rev
}

// ---------- Sender ----------

// Stats returns a snapshot of sender counters.
func (s *Sender) Stats() SenderStats { return s.stats }

// Cwnd returns the current congestion window (packets).
func (s *Sender) Cwnd() float64 { return s.cwnd }

// RTO returns the current (un-backed-off) retransmission timeout.
func (s *Sender) RTO() sim.Time { return s.rto }

// BufferedPkts returns the number of packets in the send buffer (unacked +
// unsent).
func (s *Sender) BufferedPkts() int { return int(s.appSeq - s.sndUna) }

// CanWrite reports whether the send buffer has room for another packet.
func (s *Sender) CanWrite() bool {
	return int(s.appSeq-s.sndUna) < s.cfg.SndBufPkts
}

// Write places one application packet into the send buffer. It panics when
// the buffer is full: callers must check CanWrite, which is exactly the
// blocking-write discipline DMP-streaming depends on.
func (s *Sender) Write(app any) {
	if !s.CanWrite() {
		panic(fmt.Sprintf("tcpsim: flow %d: write to full send buffer", s.flow))
	}
	s.buf[s.appSeq%int64(s.cfg.SndBufPkts)] = app
	s.appSeq++
	s.trySend()
}

// effWindow returns the usable congestion window in packets (≥1).
func (s *Sender) effWindow() int64 {
	w := int64(s.cwnd)
	if w < 1 {
		w = 1
	}
	return w
}

// trySend transmits new segments permitted by the window and buffered data.
func (s *Sender) trySend() {
	for s.sndNxt < s.appSeq && s.sndNxt-s.sndUna < s.effWindow() {
		s.transmit(s.sndNxt, false)
		s.sndNxt++
	}
}

// transmit puts segment seq on the wire.
func (s *Sender) transmit(seq int64, isRtx bool) {
	app := s.buf[seq%int64(s.cfg.SndBufPkts)]
	s.out.Deliver(&netsim.Packet{
		Flow:    s.flow,
		SizeB:   s.cfg.MSS,
		Payload: &dataSeg{seq: seq, app: app},
	})
	s.stats.Sent++
	if isRtx {
		s.stats.Retransmits++
	} else if !s.timing {
		s.timing = true
		s.timedSeq = seq
		s.timedAt = s.sim.Now()
	}
	if s.rtxTimer == nil || !s.rtxTimer.Pending() {
		s.armTimer()
	}
}

// effRTO is the backed-off retransmission timeout.
func (s *Sender) effRTO() sim.Time {
	r := s.rto
	for i := uint(0); i < s.backoff && i < 6; i++ {
		r *= 2
	}
	if r > s.cfg.MaxRTO {
		r = s.cfg.MaxRTO
	}
	return r
}

func (s *Sender) armTimer() {
	if s.rtxTimer != nil {
		s.rtxTimer.Cancel()
	}
	s.rtxTimer = s.sim.After(s.effRTO(), s.onTimeout)
}

func (s *Sender) cancelTimer() {
	if s.rtxTimer != nil {
		s.rtxTimer.Cancel()
		s.rtxTimer = nil
	}
}

// onTimeout handles RTO expiry: multiplicative backoff, window collapse,
// go-back-N retransmission of the first unacked segment.
func (s *Sender) onTimeout() {
	if s.sndUna == s.appSeq { // nothing outstanding; stale timer
		return
	}
	s.stats.Timeouts++
	flight := float64(s.sndNxt - s.sndUna)
	if flight < 1 {
		flight = 1
	}
	s.ssthresh = max2(flight/2, 2)
	s.cwnd = 1
	s.sndNxt = s.sndUna
	s.dupAcks = 0
	s.inRecovery = false
	s.timing = false
	if s.backoff < 12 {
		s.backoff++
	}
	s.transmit(s.sndNxt, true)
	s.sndNxt++
	s.armTimer()
}

// Deliver implements netsim.Sink for the reverse path: the sender consumes
// ACK packets.
func (s *Sender) Deliver(pkt *netsim.Packet) {
	seg, ok := pkt.Payload.(*ackSeg)
	if !ok {
		panic(fmt.Sprintf("tcpsim: flow %d: sender received non-ACK payload %T", s.flow, pkt.Payload))
	}
	s.onAck(seg.ack)
}

func (s *Sender) onAck(ack int64) {
	switch {
	case ack > s.sndUna:
		s.onNewAck(ack)
	case ack == s.sndUna && s.sndNxt > s.sndUna:
		s.onDupAck()
	default:
		// Stale ACK (below sndUna): ignore.
	}
}

func (s *Sender) onNewAck(ack int64) {
	if ack > s.sndNxt {
		// A timeout rolled sndNxt back to sndUna (go-back-N) but segments
		// sent before the timeout were in flight and got ACKed. Resume from
		// the ACK point instead of retransmitting already-received data.
		s.sndNxt = ack
	}
	newly := ack - s.sndUna
	for seq := s.sndUna; seq < ack; seq++ {
		s.buf[seq%int64(s.cfg.SndBufPkts)] = nil
	}
	s.sndUna = ack
	s.stats.AckedPkts += newly
	s.backoff = 0

	// RTT sample (Karn: timing is cleared on any retransmission event).
	if s.timing && ack > s.timedSeq {
		s.timing = false
		s.rttSample(s.sim.Now() - s.timedAt)
	}

	switch {
	case s.inRecovery && s.cfg.Flavor == NewReno && ack < s.recover:
		// Partial ACK: another segment of the loss window is missing.
		// Retransmit it, deflate by the amount acked, and stay in recovery
		// (RFC 6582).
		s.cwnd -= float64(newly)
		if s.cwnd < 1 {
			s.cwnd = 1
		}
		s.cwnd++
		s.transmit(s.sndUna, true)
	case s.inRecovery:
		// Recovery complete (Reno: any advancing ACK; NewReno: ACK covering
		// the whole loss window). Deflate to ssthresh.
		s.inRecovery = false
		s.dupAcks = 0
		s.cwnd = s.ssthresh
	default:
		s.dupAcks = 0
		// Classic RFC 2581 growth: one increment per ACK received, so
		// delayed ACKs halve the growth rate (the b=2 of the paper's model).
		if s.cwnd < s.ssthresh {
			s.cwnd++ // slow start
			if s.cwnd > s.ssthresh {
				s.cwnd = s.ssthresh
			}
		} else {
			s.cwnd += 1 / s.cwnd // congestion avoidance
		}
		if s.cwnd > s.cfg.MaxCwnd {
			s.cwnd = s.cfg.MaxCwnd
		}
	}

	if s.sndUna == s.sndNxt {
		s.cancelTimer()
	} else {
		s.armTimer()
	}
	s.trySend()
	s.notifyWritable()
	if s.sndUna == s.appSeq && s.OnAllAcked != nil {
		s.OnAllAcked()
	}
}

func (s *Sender) onDupAck() {
	s.dupAcks++
	switch {
	case s.dupAcks == 3 && !s.inRecovery:
		flight := float64(s.sndNxt - s.sndUna)
		s.ssthresh = max2(flight/2, 2)
		s.cwnd = s.ssthresh + 3
		s.inRecovery = true
		s.recover = s.sndNxt
		s.timing = false
		s.stats.FastRetransmits++
		s.transmit(s.sndUna, true)
		s.armTimer()
	case s.inRecovery:
		s.cwnd++ // window inflation: each dup ACK signals a departure
		if s.cwnd > s.cfg.MaxCwnd+float64(s.cfg.SndBufPkts) {
			s.cwnd = s.cfg.MaxCwnd + float64(s.cfg.SndBufPkts)
		}
		s.trySend()
	}
}

func (s *Sender) rttSample(m sim.Time) {
	if !s.hasSample {
		s.srtt = m
		s.rttvar = m / 2
		s.hasSample = true
	} else {
		d := s.srtt - m
		if d < 0 {
			d = -d
		}
		s.rttvar = (3*s.rttvar + d) / 4
		s.srtt = (7*s.srtt + m) / 8
	}
	s.rto = s.srtt + 4*s.rttvar
	if s.rto < s.cfg.MinRTO {
		s.rto = s.cfg.MinRTO
	}
	if s.rto > s.cfg.MaxRTO {
		s.rto = s.cfg.MaxRTO
	}
	s.stats.RTTSampleSum += m
	s.stats.RTTSamples++
	s.stats.RTOSampleSum += s.rto
}

func (s *Sender) notifyWritable() {
	if s.Writable != nil && s.CanWrite() {
		s.Writable()
	}
}

// ---------- Receiver ----------

// Deliver implements netsim.Sink for the forward path: the receiver consumes
// data segments.
func (r *Receiver) Deliver(pkt *netsim.Packet) {
	seg, ok := pkt.Payload.(*dataSeg)
	if !ok {
		panic(fmt.Sprintf("tcpsim: flow %d: receiver got non-data payload %T", r.flow, pkt.Payload))
	}
	switch {
	case seg.seq == r.rcvNxt:
		r.deliverApp(seg.seq, seg.app)
		r.rcvNxt++
		// Drain any buffered continuation.
		filledGap := false
		for {
			app, ok := r.ooo[r.rcvNxt]
			if !ok {
				break
			}
			delete(r.ooo, r.rcvNxt)
			r.deliverApp(r.rcvNxt, app)
			r.rcvNxt++
			filledGap = true
		}
		r.pending++
		if filledGap || r.pending >= r.cfg.AckEvery {
			r.sendAck()
		} else if r.delack == nil || !r.delack.Pending() {
			r.delack = r.sim.After(r.cfg.DelAckTimeout, r.sendAck)
		}
	case seg.seq > r.rcvNxt:
		if _, dup := r.ooo[seg.seq]; !dup {
			r.ooo[seg.seq] = seg.app
		}
		r.DupAcks++
		r.sendAck() // immediate duplicate ACK
	default:
		// Below rcvNxt: spurious retransmission; re-ACK immediately.
		r.sendAck()
	}
}

func (r *Receiver) deliverApp(seq int64, app any) {
	r.Delivered++
	if r.OnDeliver != nil {
		r.OnDeliver(seq, app)
	}
}

func (r *Receiver) sendAck() {
	r.pending = 0
	if r.delack != nil {
		r.delack.Cancel()
	}
	r.out.Deliver(&netsim.Packet{
		Flow:    r.flow,
		SizeB:   r.cfg.AckSizeB,
		Payload: &ackSeg{ack: r.rcvNxt},
	})
}

// RcvNxt returns the next expected sequence number.
func (r *Receiver) RcvNxt() int64 { return r.rcvNxt }

func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
