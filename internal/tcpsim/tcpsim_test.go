package tcpsim

import (
	"math"
	"testing"
	"testing/quick"

	"dmpstream/internal/netsim"
	"dmpstream/internal/sim"
)

// dropper drops packets with probability p before handing them on.
type dropper struct {
	s    *sim.Simulator
	p    float64
	next netsim.Sink
	n    int64
	drop int64
}

func (d *dropper) Deliver(pkt *netsim.Packet) {
	d.n++
	if d.s.Rand().Float64() < d.p {
		d.drop++
		return
	}
	d.next.Deliver(pkt)
}

type testConn struct {
	s         *sim.Simulator
	c         *Conn
	delivered []int64
	loss      *dropper
}

// newTestConn wires a connection over a symmetric path with the given
// one-way delay and independent per-packet loss probability on data segments.
func newTestConn(seed int64, cfg Config, lossP float64, oneWay sim.Time) *testConn {
	s := sim.New(seed)
	tc := &testConn{s: s}
	c := NewConn(s, 1, cfg)
	fwdLink := netsim.NewLink(s, "fwd", 100, oneWay, 1<<20, nil)
	revLink := netsim.NewLink(s, "rev", 100, oneWay, 1<<20, nil)
	tc.loss = &dropper{s: s, p: lossP, next: netsim.NewPath(c.Rcv, fwdLink)}
	c.Wire(tc.loss, netsim.NewPath(c.Snd, revLink))
	c.Rcv.OnDeliver = func(seq int64, app any) { tc.delivered = append(tc.delivered, seq) }
	tc.c = c
	return tc
}

// writeN feeds n packets through the send buffer, respecting backpressure.
func (tc *testConn) writeN(n int64) {
	var written int64
	fill := func() {
		for written < n && tc.c.Snd.CanWrite() {
			tc.c.Snd.Write(written)
			written++
		}
	}
	tc.c.Snd.Writable = fill
	fill()
}

func (tc *testConn) checkInOrder(t *testing.T, n int64) {
	t.Helper()
	if int64(len(tc.delivered)) != n {
		t.Fatalf("delivered %d packets, want %d", len(tc.delivered), n)
	}
	for i, seq := range tc.delivered {
		if seq != int64(i) {
			t.Fatalf("delivery %d has seq %d", i, seq)
		}
	}
}

func TestLosslessTransfer(t *testing.T) {
	tc := newTestConn(1, Config{}, 0, 10*sim.Millisecond)
	tc.writeN(500)
	tc.s.Run(60 * sim.Second)
	tc.checkInOrder(t, 500)
	st := tc.c.Snd.Stats()
	if st.Retransmits != 0 || st.Timeouts != 0 {
		t.Fatalf("spurious recovery on lossless path: %+v", st)
	}
	if st.AckedPkts != 500 {
		t.Fatalf("acked %d", st.AckedPkts)
	}
}

func TestOnAllAcked(t *testing.T) {
	tc := newTestConn(1, Config{}, 0, 5*sim.Millisecond)
	done := sim.Time(0)
	tc.c.Snd.OnAllAcked = func() { done = tc.s.Now() }
	tc.writeN(50)
	tc.s.Run(30 * sim.Second)
	if done == 0 {
		t.Fatal("OnAllAcked never fired")
	}
}

func TestReliabilityUnderLoss(t *testing.T) {
	// 10% independent loss: every packet must still arrive exactly once, in
	// order, via retransmissions.
	tc := newTestConn(2, Config{}, 0.10, 20*sim.Millisecond)
	tc.writeN(2000)
	tc.s.Run(2000 * sim.Second)
	tc.checkInOrder(t, 2000)
	st := tc.c.Snd.Stats()
	if st.Retransmits == 0 {
		t.Fatal("no retransmissions despite 10% loss")
	}
}

func TestFastRetransmitUsed(t *testing.T) {
	tc := newTestConn(3, Config{}, 0.02, 20*sim.Millisecond)
	tc.writeN(5000)
	tc.s.Run(2000 * sim.Second)
	tc.checkInOrder(t, 5000)
	st := tc.c.Snd.Stats()
	if st.FastRetransmits == 0 {
		t.Fatalf("expected fast retransmits at 2%% loss: %+v", st)
	}
	// At 2% loss with a healthy window most recoveries avoid timeout.
	if st.FastRetransmits < st.Timeouts {
		t.Fatalf("fast retransmits (%d) < timeouts (%d)", st.FastRetransmits, st.Timeouts)
	}
}

func TestTimeoutRecoveryUnderSevereLoss(t *testing.T) {
	tc := newTestConn(4, Config{}, 0.35, 20*sim.Millisecond)
	tc.writeN(200)
	tc.s.Run(4000 * sim.Second)
	tc.checkInOrder(t, 200)
	if tc.c.Snd.Stats().Timeouts == 0 {
		t.Fatal("no timeouts at 35% loss")
	}
}

func TestSendBufferBackpressure(t *testing.T) {
	tc := newTestConn(5, Config{SndBufPkts: 8}, 0, 50*sim.Millisecond)
	snd := tc.c.Snd
	for i := 0; i < 8; i++ {
		if !snd.CanWrite() {
			t.Fatalf("buffer full after %d writes", i)
		}
		snd.Write(int64(i))
	}
	if snd.CanWrite() {
		t.Fatal("buffer should be full after 8 writes")
	}
	if snd.BufferedPkts() != 8 {
		t.Fatalf("BufferedPkts = %d", snd.BufferedPkts())
	}
	wake := false
	snd.Writable = func() { wake = true }
	tc.s.Run(5 * sim.Second)
	if !wake {
		t.Fatal("Writable never fired after ACKs freed space")
	}
	if !snd.CanWrite() {
		t.Fatal("buffer still full after ACKs")
	}
}

func TestWriteToFullBufferPanics(t *testing.T) {
	tc := newTestConn(6, Config{SndBufPkts: 2}, 0, 50*sim.Millisecond)
	tc.c.Snd.Write(0)
	tc.c.Snd.Write(1)
	defer func() {
		if recover() == nil {
			t.Error("write to full buffer did not panic")
		}
	}()
	tc.c.Snd.Write(2)
}

func TestRTTEstimation(t *testing.T) {
	tc := newTestConn(7, Config{}, 0, 50*sim.Millisecond) // RTT ≈ 100ms + tx
	tc.writeN(500)
	tc.s.Run(60 * sim.Second)
	mean := tc.c.Snd.Stats().MeanRTT()
	if mean < 100*sim.Millisecond || mean > 115*sim.Millisecond {
		t.Fatalf("mean RTT = %v, want ≈100ms", mean)
	}
	if rto := tc.c.Snd.RTO(); rto < tc.c.Snd.cfg.MinRTO {
		t.Fatalf("RTO %v below floor", rto)
	}
}

func TestDelayedAcks(t *testing.T) {
	// Count reverse-path packets: with AckEvery=2 and a saturated flow, the
	// receiver should emit roughly one ACK per two data segments.
	s := sim.New(8)
	c := NewConn(s, 1, Config{})
	fwd := netsim.NewLink(s, "fwd", 100, 10*sim.Millisecond, 1<<20, nil)
	rev := netsim.NewLink(s, "rev", 100, 10*sim.Millisecond, 1<<20, nil)
	c.Wire(netsim.NewPath(c.Rcv, fwd), netsim.NewPath(c.Snd, rev))
	var written int64
	fill := func() {
		for written < 1000 && c.Snd.CanWrite() {
			c.Snd.Write(written)
			written++
		}
	}
	c.Snd.Writable = fill
	fill()
	s.Run(120 * sim.Second)
	acks := rev.Stats().Sent
	if acks < 450 || acks > 650 {
		t.Fatalf("ACK count %d for 1000 segments; want ≈500", acks)
	}
}

func TestThroughputMatchesRenoScaling(t *testing.T) {
	// Backlogged Reno at loss p should move roughly sqrt(3/(2bp))/RTT
	// packets per second (b=2 delayed ACKs). Check within a generous band.
	for _, p := range []float64{0.01, 0.04} {
		tc := newTestConn(9, Config{MaxCwnd: 64}, p, 50*sim.Millisecond)
		n := int64(30000)
		tc.writeN(n)
		dur := 400 * sim.Second
		tc.s.Run(dur)
		got := float64(len(tc.delivered)) / tc.s.Now().Seconds()
		rtt := 0.105
		want := math.Sqrt(3/(2*2*p)) / rtt
		if got < want*0.5 || got > want*1.7 {
			t.Errorf("p=%v: throughput %.1f pkts/s, square-root law predicts %.1f", p, got, want)
		}
	}
}

func TestCwndBoundedByMax(t *testing.T) {
	tc := newTestConn(10, Config{MaxCwnd: 10}, 0, 5*sim.Millisecond)
	maxSeen := 0.0
	tc.writeN(4000)
	for i := 0; i < 400; i++ {
		tc.s.Run(sim.Time(i+1) * 100 * sim.Millisecond)
		if w := tc.c.Snd.Cwnd(); w > maxSeen {
			maxSeen = w
		}
	}
	if maxSeen > 10 {
		t.Fatalf("cwnd reached %v with MaxCwnd=10 on lossless path", maxSeen)
	}
}

func TestSharedBottleneckTwoFlows(t *testing.T) {
	// Two backlogged flows through one 2 Mbps drop-tail bottleneck: both make
	// progress, drops occur, and aggregate goodput ≈ link capacity.
	s := sim.New(11)
	bneck := netsim.NewLink(s, "bneck", 2.0, 20*sim.Millisecond, 20, nil)
	mux := netsim.NewPath(nil, bneck) // sink set below via demux
	var c1, c2 *Conn
	demux := netsim.SinkFunc(func(pkt *netsim.Packet) {
		if pkt.Flow == 1 {
			c1.Rcv.Deliver(pkt)
		} else {
			c2.Rcv.Deliver(pkt)
		}
	})
	bneck.SetSink(demux)
	mkFlow := func(id netsim.FlowID) *Conn {
		c := NewConn(s, id, Config{})
		rev := netsim.NewLink(s, "rev", 100, 20*sim.Millisecond, 1<<20, nil)
		c.Wire(mux, netsim.NewPath(c.Snd, rev))
		fill := func() {
			for c.Snd.CanWrite() {
				c.Snd.Write(nil)
			}
		}
		c.Snd.Writable = fill
		s.After(0, fill)
		return c
	}
	c1 = mkFlow(1)
	c2 = mkFlow(2)
	s.Run(200 * sim.Second)
	d1, d2 := c1.Rcv.Delivered, c2.Rcv.Delivered
	if d1 == 0 || d2 == 0 {
		t.Fatalf("a flow starved: %d %d", d1, d2)
	}
	if bneck.Stats().Dropped == 0 {
		t.Fatal("no drops at saturated bottleneck")
	}
	goodput := float64(d1+d2) * 1500 * 8 / s.Now().Seconds() // bps
	if goodput < 1.6e6 || goodput > 2.05e6 {
		t.Fatalf("aggregate goodput %.2f Mbps, want ≈2", goodput/1e6)
	}
	// Rough fairness: neither flow below 25% of the other.
	if float64(d1) < 0.25*float64(d2) || float64(d2) < 0.25*float64(d1) {
		t.Fatalf("gross unfairness: %d vs %d", d1, d2)
	}
}

// Property: for random loss rates and seeds, TCP delivers every packet
// exactly once, in order (reliability invariant).
func TestPropertyReliableInOrderDelivery(t *testing.T) {
	f := func(seed int64, lossPct uint8) bool {
		p := float64(lossPct%30) / 100.0
		tc := newTestConn(seed, Config{SndBufPkts: 8}, p, 15*sim.Millisecond)
		const n = 300
		tc.writeN(n)
		tc.s.Run(3000 * sim.Second)
		if int64(len(tc.delivered)) != n {
			return false
		}
		for i, seq := range tc.delivered {
			if seq != int64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: sender sequence invariants hold at all times under random loss:
// sndUna ≤ sndNxt ≤ appSeq, buffered ≤ capacity, ssthresh ≥ 2.
func TestPropertySenderInvariants(t *testing.T) {
	f := func(seed int64, lossPct uint8) bool {
		p := float64(lossPct%25) / 100.0
		tc := newTestConn(seed, Config{}, p, 15*sim.Millisecond)
		tc.writeN(1000)
		ok := true
		var check func()
		check = func() {
			snd := tc.c.Snd
			if snd.sndUna > snd.sndNxt || snd.sndNxt > snd.appSeq {
				ok = false
			}
			if snd.BufferedPkts() > snd.cfg.SndBufPkts {
				ok = false
			}
			if snd.ssthresh < 2 {
				ok = false
			}
			if ok && tc.s.Now() < 100*sim.Second {
				tc.s.After(50*sim.Millisecond, check)
			}
		}
		tc.s.After(0, check)
		tc.s.Run(120 * sim.Second)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBulkTransfer(b *testing.B) {
	tc := newTestConn(1, Config{}, 0.01, 20*sim.Millisecond)
	tc.writeN(int64(b.N))
	b.ResetTimer()
	tc.s.Run(sim.Time(b.N) * sim.Second) // generous horizon; queue drains first
}
