package tcpsim

import (
	"testing"

	"dmpstream/internal/netsim"
	"dmpstream/internal/sim"
)

// burstDropper drops a fixed set of first-transmission sequence numbers,
// letting retransmissions through — a deterministic multi-loss window.
type burstDropper struct {
	drop map[int64]bool
	next netsim.Sink
}

func (d *burstDropper) Deliver(pkt *netsim.Packet) {
	seg := pkt.Payload.(*dataSeg)
	if d.drop[seg.seq] {
		delete(d.drop, seg.seq)
		return
	}
	d.next.Deliver(pkt)
}

// multiLossRun transfers 200 packets dropping three segments of one window
// and reports the sender's timeout count.
func multiLossRun(t *testing.T, flavor Flavor) SenderStats {
	t.Helper()
	s := sim.New(1)
	c := NewConn(s, 1, Config{Flavor: flavor, MaxCwnd: 64})
	fwd := netsim.NewLink(s, "fwd", 100, 20*sim.Millisecond, 1<<18, nil)
	rev := netsim.NewLink(s, "rev", 100, 20*sim.Millisecond, 1<<18, nil)
	drop := &burstDropper{
		drop: map[int64]bool{40: true, 42: true, 44: true},
		next: netsim.NewPath(c.Rcv, fwd),
	}
	c.Wire(drop, netsim.NewPath(c.Snd, rev))
	var written int64
	fill := func() {
		for written < 200 && c.Snd.CanWrite() {
			c.Snd.Write(written)
			written++
		}
	}
	c.Snd.Writable = fill
	fill()
	s.Run(120 * sim.Second)
	if c.Rcv.Delivered != 200 {
		t.Fatalf("%v delivered %d/200", flavor, c.Rcv.Delivered)
	}
	return c.Snd.Stats()
}

func TestNewRenoSurvivesMultiLossWindow(t *testing.T) {
	reno := multiLossRun(t, Reno)
	newreno := multiLossRun(t, NewReno)
	if newreno.Timeouts > 0 {
		t.Fatalf("NewReno timed out on a 3-loss window: %+v", newreno)
	}
	if reno.Timeouts == 0 {
		t.Fatalf("classic Reno recovered a 3-loss window without timeout: %+v", reno)
	}
}

func TestNewRenoReliabilityUnderRandomLoss(t *testing.T) {
	tc := newTestConn(31, Config{Flavor: NewReno}, 0.08, 20*sim.Millisecond)
	tc.writeN(2000)
	tc.s.Run(2000 * sim.Second)
	tc.checkInOrder(t, 2000)
}

func TestNewRenoFewerTimeoutsThanReno(t *testing.T) {
	run := func(flavor Flavor) SenderStats {
		tc := newTestConn(32, Config{Flavor: flavor, MaxCwnd: 64}, 0.05, 25*sim.Millisecond)
		tc.writeN(10000)
		tc.s.Run(3000 * sim.Second)
		tc.checkInOrder(t, 10000)
		return tc.c.Snd.Stats()
	}
	reno := run(Reno)
	newreno := run(NewReno)
	if newreno.Timeouts >= reno.Timeouts {
		t.Fatalf("NewReno timeouts (%d) not below Reno's (%d) at 5%% loss",
			newreno.Timeouts, reno.Timeouts)
	}
}
