package hub

import (
	"errors"
	"net"
	"testing"
	"time"

	"dmpstream/internal/core"
)

// newExternalHub builds an ExternalSource hub for direct PublishAt tests.
func newExternalHub(t *testing.T, cfg Config) *Hub {
	t.Helper()
	cfg.ExternalSource = true
	if cfg.Stream.Mu == 0 {
		cfg.Stream.Mu = 100
	}
	if cfg.Stream.PayloadSize == 0 {
		cfg.Stream.PayloadSize = 32
	}
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestExternalPublishAt: in-order ingest counts as generated, late
// duplicates are refused, and head jumps record the skipped span as
// source gaps.
func TestExternalPublishAt(t *testing.T) {
	h := newExternalHub(t, Config{StreamID: "ext", LagWindow: 64})
	defer h.Close()

	payload := make([]byte, 32)
	for seq := int64(0); seq < 10; seq++ {
		if !h.PublishAt(seq, seq*1000, payload) {
			t.Fatalf("in-order publish of seq %d refused", seq)
		}
	}
	if h.PublishAt(4, 4000, payload) {
		t.Fatal("late duplicate (seq 4 behind head 10) must be refused")
	}
	if g := h.Generated(); g != 10 {
		t.Fatalf("generated %d, want 10 (dup must not count)", g)
	}
	if sg := h.Stats().SourceGaps; sg != 0 {
		t.Fatalf("source gaps %d on a contiguous ingest", sg)
	}

	// Jump the head: seqs 10..14 never arrive, 15 does.
	if !h.PublishAt(15, 15000, payload) {
		t.Fatal("head-jump publish refused")
	}
	if sg := h.Stats().SourceGaps; sg != 5 {
		t.Fatalf("source gaps %d after skipping 10..14, want 5", sg)
	}
	if g := h.Generated(); g != 11 {
		t.Fatalf("generated %d, want 11 (gaps are not generated)", g)
	}
}

// TestExternalPublishAtValidation: PublishAt enforces its contract —
// external mode only, exact payload size, non-negative sequence, and
// nothing after the stream is over.
func TestExternalPublishAtValidation(t *testing.T) {
	gen, err := New(Config{Stream: core.Config{Mu: 1000, PayloadSize: 32, Count: 1}, StreamID: "gen"})
	if err != nil {
		t.Fatal(err)
	}
	defer gen.Close()
	if gen.PublishAt(0, 0, make([]byte, 32)) {
		t.Fatal("PublishAt must refuse a generator-sourced hub")
	}

	h := newExternalHub(t, Config{StreamID: "ext", LagWindow: 64})
	defer h.Close()
	if h.PublishAt(0, 0, make([]byte, 31)) {
		t.Fatal("PublishAt must refuse a short payload (poison residue risk)")
	}
	if h.PublishAt(-1, 0, make([]byte, 32)) {
		t.Fatal("PublishAt must refuse a negative sequence")
	}
	if !h.PublishAt(0, 0, make([]byte, 32)) {
		t.Fatal("valid publish refused")
	}
	h.Stop()
	if h.PublishAt(1, 0, make([]byte, 32)) {
		t.Fatal("PublishAt must refuse a stopped hub")
	}
}

// TestExternalGapReadsAsDrop: a subscriber walking across an ingest gap
// counts drops for the skipped span — it must never be handed another
// packet's bytes — and still receives everything that was published.
func TestExternalGapReadsAsDrop(t *testing.T) {
	h := newExternalHub(t, Config{StreamID: "ext", LagWindow: 64, PoisonPool: true})
	ln := listenLoopback(t)
	defer ln.Close()
	go h.Serve(ln)

	tok := newToken(t)
	conn := dial(t, ln.Addr().String(), "ext", tok, 0)
	defer conn.Close()
	waitSubscribers(t, h, 1)

	payload := make([]byte, 32)
	for seq := int64(0); seq < 5; seq++ {
		payload[0] = byte(seq)
		if !h.PublishAt(seq, seq, payload) {
			t.Fatalf("publish %d refused", seq)
		}
	}
	// Gap: 5..9 lost upstream; 10..14 delivered.
	for seq := int64(10); seq < 15; seq++ {
		payload[0] = byte(seq)
		if !h.PublishAt(seq, seq, payload) {
			t.Fatalf("publish %d refused", seq)
		}
	}
	h.Stop()

	tr, err := core.Receive([]net.Conn{conn})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Expected != 15 {
		t.Fatalf("end marker announced %d, want 15 (head includes the gap)", tr.Expected)
	}
	if len(tr.Arrivals) != 10 {
		t.Fatalf("received %d packets, want the 10 published", len(tr.Arrivals))
	}
	for _, a := range tr.Arrivals {
		if a.Pkt >= 5 && a.Pkt < 10 {
			t.Fatalf("packet %d was never published yet got delivered", a.Pkt)
		}
	}
	if d := h.TotalDropped(); d != 5 {
		t.Fatalf("dropped %d, want exactly the 5-packet gap", d)
	}
	if ps := h.PoolCheck(); ps.DoublePuts != 0 || ps.PoisonTrips != 0 {
		t.Fatalf("pool integrity: %+v", ps)
	}
	h.Close()
}

// TestAbsoluteJoin: a join carrying JoinFlagAbsolute keeps the origin's
// numbering (first=0) and starts at the ring tail — the catch-up join an
// edge relay's leaves use.
func TestAbsoluteJoin(t *testing.T) {
	h := newExternalHub(t, Config{StreamID: "abs", LagWindow: 64})
	ln := listenLoopback(t)
	defer ln.Close()
	go h.Serve(ln)

	payload := make([]byte, 32)
	for seq := int64(0); seq < 20; seq++ {
		if !h.PublishAt(seq, seq, payload) {
			t.Fatalf("publish %d refused", seq)
		}
	}

	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	j := core.Join{StreamID: "abs", Token: newToken(t), Flags: core.JoinFlagAbsolute}
	if err := core.WriteJoin(c, j); err != nil {
		t.Fatal(err)
	}
	waitSubscribers(t, h, 1)
	h.Stop()

	tr, err := core.Receive([]net.Conn{c})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Expected != 20 {
		t.Fatalf("end marker announced %d, want the absolute head 20", tr.Expected)
	}
	if len(tr.Arrivals) != 20 {
		t.Fatalf("caught up %d packets, want all 20 in the ring", len(tr.Arrivals))
	}
	for _, a := range tr.Arrivals {
		if int64(a.Pkt) >= 20 {
			t.Fatalf("packet %d outside the published range", a.Pkt)
		}
	}
}

// TestFailRejectsWithCode: Fail(code) ends the stream like Stop but
// answers later joins with the given verdict instead of stream-ended —
// and the first code wins over both later Fails and plain Stops.
func TestFailRejectsWithCode(t *testing.T) {
	h := newExternalHub(t, Config{StreamID: "lost", LagWindow: 64})
	defer h.Close()
	ln := listenLoopback(t)
	defer ln.Close()
	go h.Serve(ln)

	if !h.PublishAt(0, 0, make([]byte, 32)) {
		t.Fatal("publish refused")
	}
	h.Fail(core.RejectUpstreamLost)
	h.Fail(core.RejectServerFull) // loses: first verdict stands
	h.Wait()

	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := core.WriteJoin(c, core.Join{StreamID: "lost", Token: newToken(t)}); err != nil {
		t.Fatal(err)
	}
	_, _, err = core.ReadStreamHeader(c)
	if !errors.Is(err, core.ErrUpstreamLost) {
		t.Fatalf("join after Fail: %v, want errors.Is ErrUpstreamLost", err)
	}
	var rej *core.RejectError
	if !errors.As(err, &rej) || rej.Code != core.RejectUpstreamLost {
		t.Fatalf("join after Fail: %v, want RejectUpstreamLost frame", err)
	}
}

// listenLoopback and waitSubscribers are tiny local conveniences.
func listenLoopback(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

func waitSubscribers(t *testing.T, h *Hub, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for h.SubscriberCount() != want {
		if time.Now().After(deadline) {
			t.Fatalf("subscribers stuck at %d, want %d", h.SubscriberCount(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
