package hub

import (
	"sync"
	"sync/atomic"
)

// poisonByte fills every released buffer when the pool's poison-on-put
// debug mode is on; get verifies the fill is intact, so a use-after-put
// write is caught at the buffer's next acquisition instead of corrupting
// a live frame silently.
const poisonByte = 0xDB

// payloadBuf is one shared, refcounted payload buffer. The generator
// acquires it from the pool with refs == 1 (the ring's own reference),
// fills it once, and publishes it into a ring slot; zero-copy senders pin
// it (refs++) under the ring's read lock and release after their vectored
// write completes. Whoever drops the last reference returns the buffer to
// the pool. From publish until refs reaches zero the bytes are immutable —
// that is the invariant the bufown annotation below enforces.
type payloadBuf struct {
	refs   atomic.Int32
	pooled bool // guarded by bufPool.mu; true while on the freelist

	// data is rewritten only between pool put and the next publish, i.e.
	// while exactly one owner holds the buffer. Writes anywhere else are
	// cross-reader corruption, which is why only payloadBuf's own methods
	// touch the bytes.
	data []byte // bufown owned — pooled shared payload, immutable from publish until the refcount reaches zero
}

// fill renders packet pkt's payload in place. Called only by the
// generator, on a buffer it exclusively owns (fresh from the pool, not
// yet published), so no reader can observe a torn write.
func (pb *payloadBuf) fill(fill func(pkt uint32, buf []byte), pkt uint32) {
	if fill != nil {
		fill(pkt, pb.data)
	}
}

// fillFrom copies an externally received payload in place — the
// external-source ingest analogue of fill, called by ring.publishAt on a
// buffer it exclusively owns (fresh from the pool, not yet published).
//
// hotpath copy-point — the one sanctioned ingest copy per republished
// frame: the upstream's bytes become pool-private before any reader can
// alias the slot.
//
// bufown borrowed src — copied out inside the call, never retained.
func (pb *payloadBuf) fillFrom(src []byte) {
	copy(pb.data, src)
}

// poison overwrites the payload with the poison pattern on release
// (debug mode only).
func (pb *payloadBuf) poison() {
	for i := range pb.data {
		pb.data[i] = poisonByte
	}
}

// poisonIntact reports whether the release-time poison fill survived the
// buffer's stay on the freelist; a false return means someone wrote
// through a stale reference after releasing it.
func (pb *payloadBuf) poisonIntact() bool {
	for _, c := range pb.data {
		if c != poisonByte {
			return false
		}
	}
	return true
}

// bufPool is a mutex-guarded freelist of fixed-size payload buffers.
// A freelist rather than sync.Pool on purpose: sync.Pool drops its
// contents under GC pressure and would re-allocate on the hot path,
// breaking the zero-allocs-per-frame budget; the freelist keeps steady
// state allocation-free with a capacity that stabilizes at the ring size
// plus in-flight pins.
//
// Integrity counters make misuse observable: chaos asserts DoublePuts and
// PoisonTrips stay zero across a full churn run.
type bufPool struct {
	size   int
	poison bool

	mu   sync.Mutex
	free []*payloadBuf // guarded by mu

	news        int64 // guarded by mu; fresh buffers allocated (pool misses)
	gets        int64 // guarded by mu; acquisitions, freelist hits plus misses
	puts        int64 // guarded by mu; releases accepted onto the freelist
	doublePuts  int64 // guarded by mu; releases of a buffer already pooled
	poisonTrips int64 // guarded by mu; poison fills found overwritten on get
}

func newBufPool(size int, poison bool) *bufPool {
	return &bufPool{size: size, poison: poison}
}

// get acquires a buffer with refs == 1 and exclusive ownership: either a
// recycled freelist entry or a fresh allocation on a miss.
func (p *bufPool) get() *payloadBuf {
	p.mu.Lock()
	p.gets++
	if n := len(p.free); n > 0 {
		pb := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		pb.pooled = false
		if p.poison && !pb.poisonIntact() {
			p.poisonTrips++
		}
		p.mu.Unlock()
		pb.refs.Store(1)
		return pb
	}
	p.news++
	p.mu.Unlock()
	pb := &payloadBuf{data: make([]byte, p.size)} // nolint:hotalloc pool miss: one make per buffer per hub lifetime, then recycled through the freelist
	pb.refs.Store(1)
	return pb
}

// put returns a buffer whose refcount reached zero to the freelist. A
// buffer already on the freelist is counted as a double put and left
// alone (the freelist must never hold the same entry twice).
//
// bufown sink — pool reclaim: the ring's lapped-slot reference and the
// senders' released pins all die here; the bytes never leave the pool.
func (p *bufPool) put(pb *payloadBuf) {
	if pb == nil || len(pb.data) != p.size {
		return // foreign or mis-sized buffer: drop it rather than corrupt the freelist
	}
	p.mu.Lock()
	if pb.pooled {
		p.doublePuts++
		p.mu.Unlock()
		return
	}
	if p.poison {
		pb.poison()
	}
	pb.pooled = true
	p.puts++
	p.free = append(p.free, pb) // nolint:hotalloc freelist growth is amortized: capacity stabilizes at ring size plus in-flight pins
	p.mu.Unlock()
}

// PoolStats is a point-in-time integrity snapshot of the payload pool.
// News − (the buffers currently live in ring slots and pinned batches)
// should equal Free at quiescence; DoublePuts or PoisonTrips above zero
// mean the refcount discipline was violated somewhere.
type PoolStats struct {
	News        int64 // fresh buffers allocated (pool misses)
	Gets        int64 // acquisitions (freelist hits + misses)
	Puts        int64 // releases accepted onto the freelist
	Free        int   // buffers currently on the freelist
	DoublePuts  int64 // > 0 ⇒ some buffer was released twice
	PoisonTrips int64 // > 0 ⇒ some pooled buffer was written after release
}

func (p *bufPool) stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{
		News:        p.news,
		Gets:        p.gets,
		Puts:        p.puts,
		Free:        len(p.free),
		DoublePuts:  p.doublePuts,
		PoisonTrips: p.poisonTrips,
	}
}
