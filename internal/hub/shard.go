package hub

import (
	"net"
	"sync"
	"time"

	"dmpstream/internal/core"
)

// subscriber is one multipath subscription: a cursor into the ring plus the
// path connections attached under its token. All mutable fields are guarded
// by the owning shard's mutex; token, first and shard are immutable after
// creation.
type subscriber struct {
	token core.Token
	shard *shard // owning shard, fixed by the token hash
	first int64  // absolute sequence at join; frames are rebased to it

	cur      int64      // guarded by mu (the shard's); absolute next sequence to fetch
	paths    int        // guarded by mu; live path senders
	nextPath int        // guarded by mu; next path index to hand out
	sent     int64      // guarded by mu
	dropped  int64      // guarded by mu
	evicted  bool       // guarded by mu
	conns    []net.Conn // guarded by mu
	window   int        // guarded by mu; effective lag window, shrunk by the governor
	sheds    int64      // guarded by mu; degradation-ladder steps applied

	// Path-death bookkeeping. resend holds absolute sequences a dead path
	// may not have delivered, served (oldest first) before the cursor by any
	// of the subscriber's paths. deaths counts abnormal path deaths;
	// deadPaths counts deaths not yet matched by a re-attach. graceGen
	// versions the pending grace timer so a timer from an earlier death
	// cannot delete a subscriber that re-attached and died again.
	resend    []int64 // guarded by mu; sorted ascending, deduplicated
	deaths    int64   // guarded by mu
	deadPaths int     // guarded by mu
	graceGen  int64   // guarded by mu
}

// shard owns one slice of the subscriber population. Each subscriber is
// pinned to a shard by a hash of its token, so a shard's mutex covers
// exactly its own subscribers' cursors, resend queues and send loops —
// ring advance, lag enforcement and fan-out for one shard never contend
// with another shard's. The generator wakes each shard once per packet;
// everything else on the frame hot path is shard-local plus a shared
// (read) lock on the ring.
type shard struct {
	h *Hub

	mu    sync.Mutex
	cond  *sync.Cond
	subs  map[core.Token]*subscriber // guarded by mu
	wakes int64                      // guarded by mu; generator wake broadcasts (the coalescing tests' counter hook)
}

func newShard(h *Hub) *shard {
	sd := &shard{h: h, subs: make(map[core.Token]*subscriber)}
	sd.cond = sync.NewCond(&sd.mu)
	return sd
}

// wake is the generator's per-tick visit: apply the slow-subscriber
// policy to this shard's laggards at the new live edge and wake its send
// loops. The generator coalesces: however many packets one tick
// published, each shard is visited — and each subscriber woken — at most
// once per tick (wakes counts the broadcasts so tests can pin that).
func (sd *shard) wake(head int64) {
	sd.mu.Lock()
	sd.enforceLagLocked(head)
	sd.wakes++
	sd.cond.Broadcast()
	sd.mu.Unlock()
}

// enforceLagLocked applies the slow-subscriber policy to every subscriber
// whose cursor has fallen behind its effective window — the configured
// LagWindow, or less once the resource governor has shrunk it. Caller
// holds sd.mu.
func (sd *shard) enforceLagLocked(head int64) {
	ringSize := sd.h.ring.size()
	for _, sub := range sd.subs {
		if sub.evicted {
			continue
		}
		win := int64(sub.window)
		if win > ringSize {
			win = ringSize
		}
		oldest := head - win
		if oldest <= 0 || sub.cur >= oldest {
			continue
		}
		switch sd.h.cfg.Policy {
		case DropOldest:
			skipped := oldest - sub.cur
			sub.dropped += skipped
			sd.h.totalDropped.Add(skipped)
			sub.cur = oldest
		case Evict:
			sd.evictLocked(sub)
		}
	}
}

// heldLocked is the full-frame buffered-byte attribution of one
// subscriber at live edge head: the ring packets it still has to fetch
// (its lag) plus its pending resends, at one frame each. The governor's
// global total charges shared payload bytes once (Hub.accountLocked);
// heldLocked deliberately keeps the per-subscriber view at full frames so
// ranking the worst laggard reflects the payload span only it keeps
// alive. Caller holds sd.mu.
func (sd *shard) heldLocked(sub *subscriber, head int64) int64 {
	frame := int64(core.FrameHeaderSize + sd.h.cfg.Stream.PayloadSize)
	return (head - sub.cur + int64(len(sub.resend))) * frame
}

// shedLocked applies one degradation-ladder step to sub: drop its backlog
// to the current window; if that frees nothing, shrink the window (halving,
// floored at minShedWindow) and drop again; once even the floor holds
// nothing clippable, evict. Caller holds sd.mu.
func (sd *shard) shedLocked(sub *subscriber, head int64) {
	if sub.evicted {
		return
	}
	sub.sheds++
	sd.h.shedCount.Add(1)
	for {
		if sd.clipLocked(sub, int64(sub.window), head) > 0 {
			return
		}
		if sub.window <= minShedWindow {
			break
		}
		if w := sub.window / 2; w < minShedWindow {
			sub.window = minShedWindow
		} else {
			sub.window = w
		}
	}
	sd.evictLocked(sub)
}

// clipLocked advances sub's cursor to at most win packets behind the live
// edge and sheds resend entries older than that, counting everything
// skipped as drops. It returns the number of packets freed. Caller holds
// sd.mu.
func (sd *shard) clipLocked(sub *subscriber, win, head int64) int64 {
	if win > sd.h.ring.size() {
		win = sd.h.ring.size()
	}
	oldest := head - win
	if oldest <= 0 {
		return 0
	}
	var freed int64
	if sub.cur < oldest {
		skipped := oldest - sub.cur
		sub.dropped += skipped
		sd.h.totalDropped.Add(skipped)
		sub.cur = oldest
		freed += skipped
	}
	for len(sub.resend) > 0 && sub.resend[0] < oldest {
		sub.resend = sub.resend[1:]
		sub.dropped++
		sd.h.totalDropped.Add(1)
		freed++
	}
	return freed
}

// evictLocked disconnects sub and marks it evicted; its paths see closed
// connections and a later re-attach of its token is refused with a typed
// reject. Caller holds sd.mu.
func (sd *shard) evictLocked(sub *subscriber) {
	if sub.evicted {
		return
	}
	sub.evicted = true
	sd.h.evictedCount.Add(1)
	for _, c := range sub.conns {
		_ = c.Close()
	}
}

// pop copies the subscriber's next frame (header + payload) into frame and
// returns its absolute sequence, blocking while the subscriber is caught up
// and generation continues. A dead path's resend queue is served before the
// cursor, so retransmissions jump ahead of new content; resends whose packet
// has already left the ring are dropped and counted. ok=false means the
// stream is over for this subscriber: drained after Stop/Count, evicted, or
// the hub force-closed.
//
// bufown owned frame — the caller's per-path buffer; pop rewrites it
// through the ring.frame copy point and never keeps a reference.
func (sd *shard) pop(sub *subscriber, frame []byte) (seq int64, ok bool) {
	h := sd.h
	sd.mu.Lock()
	defer sd.mu.Unlock()
	for {
		if sub.evicted || h.closed.Load() {
			return 0, false
		}
		for len(sub.resend) > 0 {
			seq := sub.resend[0]
			sub.resend = sub.resend[1:]
			if !h.ring.frame(seq, sub.first, frame) {
				// Fell out of the ring while the path was down: the
				// subscriber will see a gap, same as a DropOldest skip.
				sub.dropped++
				h.totalDropped.Add(1)
				continue
			}
			sub.sent++
			h.totalSent.Add(1)
			h.totalResent.Add(1)
			h.bytesCopied.Add(int64(core.FrameHeaderSize + h.cfg.Stream.PayloadSize))
			return seq, true
		}
		if sub.cur < h.ring.headSeq() {
			seq := sub.cur
			sub.cur++
			if !h.ring.frame(seq, sub.first, frame) {
				// Lapped between the lag check and the copy — an extreme
				// laggard racing the generator. Same accounting as a skip.
				sub.dropped++
				h.totalDropped.Add(1)
				continue
			}
			sub.sent++
			h.totalSent.Add(1)
			h.bytesCopied.Add(int64(core.FrameHeaderSize + h.cfg.Stream.PayloadSize))
			return seq, true
		}
		if h.stopped.Load() || h.genDone.Load() {
			return 0, false
		}
		sd.cond.Wait()
	}
}

// popBatch is pop's zero-copy sibling: it fills b with the subscriber's
// next ready frames — resend-queue packets first, then up to the batch
// capacity of consecutive cursor packets — pinning each shared ring
// buffer instead of copying it, and blocking while the subscriber is
// caught up and generation continues. One wakeup therefore drains one
// vectored write's worth of frames. Lifecycle contract matches pop:
// ok=false means the stream is over for this subscriber (drained after
// Stop/Count, evicted, or force-closed). The caller owns the pins in b
// and must drop them with releaseBatch after its write.
func (sd *shard) popBatch(sub *subscriber, b *batch) bool {
	h := sd.h
	sd.mu.Lock()
	defer sd.mu.Unlock()
	for {
		if sub.evicted || h.closed.Load() {
			return false
		}
		b.n = 0
		for len(sub.resend) > 0 && b.n < len(b.bufs) {
			seq := sub.resend[0]
			sub.resend = sub.resend[1:]
			pb, gen, ok := h.ring.pin(seq)
			if !ok {
				// Fell out of the ring while the path was down: the
				// subscriber will see a gap, same as a DropOldest skip.
				sub.dropped++
				h.totalDropped.Add(1)
				continue
			}
			b.bufs[b.n], b.gens[b.n], b.seqs[b.n] = pb, gen, seq
			b.n++
			sub.sent++
			h.totalSent.Add(1)
			h.totalResent.Add(1)
		}
		if sub.cur < h.ring.headSeq() && b.n < len(b.bufs) {
			pinned, skipped := h.ring.pinBatch(sub.cur, len(b.bufs)-b.n, b)
			if skipped > 0 {
				// Lapped between the lag check and the pin — an extreme
				// laggard racing the generator. Same accounting as a skip.
				sub.dropped += skipped
				h.totalDropped.Add(skipped)
			}
			sub.cur += skipped + int64(pinned)
			sub.sent += int64(pinned)
			h.totalSent.Add(int64(pinned))
		}
		if b.n > 0 {
			return true
		}
		if h.stopped.Load() || h.genDone.Load() {
			return false
		}
		sd.cond.Wait()
	}
}

// finishPath retires one path sender. A path that drained normally (or died
// after the stream ended) just goes away, and the subscriber disappears with
// its last path. A path that died abnormally mid-stream instead queues its
// recent writes for retransmission and, if it was the subscriber's last
// path, starts the re-attach grace countdown: the subscription stays in the
// shard so a redialing client's token still resolves, and is reaped only if
// the window expires (or the stream ends) with no path back.
func (sd *shard) finishPath(sub *subscriber, conn net.Conn, recent []int64, err error) {
	_ = conn.Close()
	h := sd.h
	// A resend queue is held memory like any backlog: when this death adds
	// one, the global budget is re-checked before anyone can observe the
	// overshoot. The governor lock is taken before the shard lock (the
	// documented order) and held across the merge so a concurrent Stats
	// cannot sample between the merge and the governor pass.
	govern := len(recent) > 0 && h.cfg.MaxBytes > 0
	if govern {
		h.govMu.Lock()
		defer h.govMu.Unlock()
	}
	sd.mu.Lock()
	sub.paths--
	h.pathConns.Add(-1)
	for i, c := range sub.conns {
		if c == conn {
			sub.conns = append(sub.conns[:i], sub.conns[i+1:]...)
			break
		}
	}
	abnormal := err != nil && !sub.evicted && !h.closed.Load()
	if abnormal {
		h.pathErrors.Add(1)
	}
	if abnormal && !h.stopped.Load() && !h.genDone.Load() {
		sub.deaths++
		sub.deadPaths++
		if len(recent) > 0 {
			sub.resend = mergeSeqs(sub.resend, recent)
		}
		switch {
		case sub.paths > 0:
			// Surviving paths serve the resends.
		case h.cfg.ReattachGrace > 0:
			sub.graceGen++
			gen := sub.graceGen
			h.wg.Add(1)
			go func() {
				defer h.wg.Done()
				t := time.NewTimer(h.cfg.ReattachGrace)
				select {
				case <-t.C:
				case <-h.stopCh: // stream over: no re-attach can succeed
					t.Stop()
				}
				sd.mu.Lock()
				// A re-attach (paths > 0) or a newer death's timer
				// (graceGen moved on) supersedes this countdown.
				if sub.paths == 0 && sub.graceGen == gen {
					sd.removeLocked(sub)
				}
				sd.mu.Unlock()
			}()
		default:
			sd.removeLocked(sub)
		}
		sd.mu.Unlock()
		if govern {
			h.governLocked(h.ring.headSeq())
		}
		return
	}
	if sub.paths == 0 {
		sd.removeLocked(sub)
	}
	sd.mu.Unlock()
	if govern {
		h.governLocked(h.ring.headSeq())
	}
}

// removeLocked deletes sub from the shard if it is still the one
// registered under its token, releasing its admission slot. Caller holds
// sd.mu.
func (sd *shard) removeLocked(sub *subscriber) {
	if sd.subs[sub.token] == sub {
		delete(sd.subs, sub.token)
		sd.h.subCount.Add(-1)
	}
}
