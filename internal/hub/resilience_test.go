package hub

import (
	"net"
	"sync"
	"testing"
	"time"

	"dmpstream/internal/core"
	"dmpstream/internal/emunet"
)

// TestHubReattachWithinGrace: a subscriber path is severed mid-stream; the
// client redials inside the grace window with the same token, the hub
// revives the subscription, replays the dead path's resend window, and the
// stream completes with no packet lost.
func TestHubReattachWithinGrace(t *testing.T) {
	const (
		mu      = 300.0
		count   = 900 // ~3 s of stream
		payload = 100
	)
	h, err := New(Config{
		Stream:        core.Config{Mu: mu, PayloadSize: payload, Count: count, WriteStallTimeout: 2 * time.Second},
		StreamID:      "flap",
		ReattachGrace: 5 * time.Second,
		ResendWindow:  128,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go h.Serve(ln)

	relay, err := emunet.Listen("127.0.0.1:0", ln.Addr().String(), emunet.PathConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()
	evs, err := emunet.ParseFaultScript("sever@600ms")
	if err != nil {
		t.Fatal(err)
	}
	tl := relay.Schedule(evs)
	defer tl.Stop()

	tok := newToken(t)
	addrs := []string{ln.Addr().String(), relay.Addr()}
	client := &core.Client{
		Dial:   func(k int) (net.Conn, error) { return net.Dial("tcp", addrs[k]) },
		Paths:  2,
		Join:   &core.Join{StreamID: "flap", Token: tok},
		Policy: core.RedialPolicy{Base: 400 * time.Millisecond, Multiplier: 1, Budget: 3, Seed: 11},
	}
	tr, err := client.Run()
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	h.Stop()
	h.Wait()

	if got := assertExactlyOnce(t, "flapped", tr); got != tr.Expected {
		t.Fatalf("delivered %d of %d distinct packets", got, tr.Expected)
	}
	if missing := tr.Missing(); len(missing) != 0 {
		t.Fatalf("%d packets lost across the flap", len(missing))
	}
	st := h.Stats()
	if st.Reattached != 1 {
		t.Fatalf("reattached = %d, want 1", st.Reattached)
	}
	if st.Resent == 0 {
		t.Fatal("no packets replayed from the dead path's resend window")
	}
	if st.Subscribers != 0 {
		t.Fatalf("%d subscribers left after Stop+Wait", st.Subscribers)
	}
}

// TestHubGraceExpires: a subscriber whose only path dies and never comes
// back must be reaped after the grace window, not retained forever.
func TestHubGraceExpires(t *testing.T) {
	h, err := New(Config{
		Stream:        core.Config{Mu: 200, PayloadSize: 50, WriteStallTimeout: time.Second}, // live until Stop
		StreamID:      "reap",
		ReattachGrace: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go h.Serve(ln)

	conn := dial(t, ln.Addr().String(), "reap", newToken(t), 0)
	// Consume a little of the stream, then die without warning.
	buf := make([]byte, 4096)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(buf); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	deadline := time.Now().Add(5 * time.Second)
	for h.Stats().Subscribers != 0 {
		if time.Now().After(deadline) {
			t.Fatal("dead subscriber still attached long after the grace window")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if pe := h.Stats().PathErrors; pe == 0 {
		t.Fatal("abnormal path death not counted in PathErrors")
	}
	h.Stop()
	h.Wait()
}

// TestHubReattachRacesStop drives re-attach joins concurrently with Stop on
// a hub full of subscribers inside their grace windows. Meaningful under
// -race; the invariant is that Stop+Wait always converges with zero
// subscribers and no goroutine left behind.
func TestHubReattachRacesStop(t *testing.T) {
	h, err := New(Config{
		Stream:        core.Config{Mu: 400, PayloadSize: 50, WriteStallTimeout: time.Second}, // live until Stop
		StreamID:      "race",
		ReattachGrace: 5 * time.Second,
		ResendWindow:  32,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go h.Serve(ln)

	// Eight single-path subscribers; kill every path so each subscription
	// sits in its grace window.
	const subs = 8
	toks := make([]core.Token, subs)
	for i := range toks {
		toks[i] = newToken(t)
		conn := dial(t, ln.Addr().String(), "race", toks[i], 0)
		buf := make([]byte, 1024)
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := conn.Read(buf); err != nil {
			t.Fatal(err)
		}
		conn.Close()
	}

	// Let the hub notice the deaths (write errors) before racing.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := h.Stats()
		live := 0
		for _, s := range st.Subs {
			live += s.Paths
		}
		if live == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("paths still live: %+v", st.Subs)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Race: every token redials while Stop fires halfway through.
	var wg sync.WaitGroup
	for i := range toks {
		wg.Add(1)
		go func(tok core.Token) {
			defer wg.Done()
			c, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				return
			}
			defer c.Close()
			if err := core.WriteJoin(c, core.Join{StreamID: "race", Token: tok}); err != nil {
				return
			}
			// Drain whatever the hub sends (stream or an immediate close).
			buf := make([]byte, 4096)
			for {
				c.SetReadDeadline(time.Now().Add(5 * time.Second))
				if _, err := c.Read(buf); err != nil {
					return
				}
			}
		}(toks[i])
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(5 * time.Millisecond)
		h.Stop()
	}()
	wg.Wait()
	h.Wait()
	h.Close() // idempotent on a stopped hub; kills any re-attached conns

	if st := h.Stats(); st.Subscribers != 0 {
		t.Fatalf("%d subscribers left after Stop+Wait+Close", st.Subscribers)
	}
}
