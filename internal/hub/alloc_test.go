// Alloc-budget guard for the hub frame hot path: publish → wake → pop
// must not allocate in steady state, or fan-out throughput decays into
// GC pressure exactly when the subscriber count makes it matter. The
// static side of the same contract is enforced by dmplint's hotalloc
// analyzer over the `// hotpath` closure; this is the runtime check that
// catches what escape analysis does behind the analyzer's back.
//
// AllocsPerRun is unreliable under the race detector (instrumentation
// allocates), so the guard is built out of race runs.
//
//go:build !race

package hub

import (
	"net"
	"testing"
	"time"

	"dmpstream/internal/core"
)

// quietHub builds a hub whose generator publishes its single scheduled
// packet and exits, leaving the ring free for the test to drive by hand.
func quietHub(t *testing.T) *Hub {
	t.Helper()
	h, err := New(Config{
		Stream: core.Config{
			Mu: 500, PayloadSize: 64, Count: 1,
			Fill: func(pkt uint32, buf []byte) { buf[0] = byte(pkt) },
		},
		LagWindow: 8,
		Shards:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)
	for !h.genDone.Load() {
		time.Sleep(time.Millisecond)
	}
	return h
}

// TestFrameHotPathAllocFree drives the steady-state frame cycle —
// ring.publish, shard.wake (lag enforcement + broadcast), shard.pop
// (frame header encode + payload copy-out) — and requires zero
// allocations per frame once the ring's lazy slot buffers have been
// populated by one full lap.
func TestFrameHotPathAllocFree(t *testing.T) {
	h := quietHub(t)
	sd := h.shards[0]

	var tok core.Token
	sub := &subscriber{token: tok, shard: sd, window: h.cfg.LagWindow}
	sd.mu.Lock()
	sd.subs[tok] = sub
	sd.mu.Unlock()
	h.subCount.Add(1)

	frame := make([]byte, core.FrameHeaderSize+h.cfg.Stream.PayloadSize)
	cycle := func() {
		head := h.ring.publish(h.cfg.Stream.Fill)
		sd.wake(head)
		if _, ok := sd.pop(sub, frame); !ok {
			t.Fatal("pop returned !ok in steady state")
		}
	}
	// One full ring lap allocates every slot's payload buffer exactly once
	// (the nolint'd pool-miss make in bufPool.get); after that the path
	// must be allocation-free.
	for i := 0; i < h.cfg.LagWindow+1; i++ {
		cycle()
	}
	if allocs := testing.AllocsPerRun(200, cycle); allocs != 0 {
		t.Errorf("frame hot path allocates %.2f times per frame, want 0", allocs)
	}
}

// sinkConn is a net.Conn that discards writes without allocating.
type sinkConn struct{}

func (sinkConn) Read(p []byte) (int, error)       { return 0, net.ErrClosed }
func (sinkConn) Write(p []byte) (int, error)      { return len(p), nil }
func (sinkConn) Close() error                     { return nil }
func (sinkConn) LocalAddr() net.Addr              { return nil }
func (sinkConn) RemoteAddr() net.Addr             { return nil }
func (sinkConn) SetDeadline(time.Time) error      { return nil }
func (sinkConn) SetReadDeadline(time.Time) error  { return nil }
func (sinkConn) SetWriteDeadline(time.Time) error { return nil }

// TestZeroCopyHotPathAllocFree drives the zero-copy steady state —
// ring.publish (pool acquire + fill), shard.wake, shard.popBatch (pin),
// Hub.writeBatch (header patch + vectored write) and releaseBatch (pool
// return) — and requires zero allocations per frame once the pool and
// freelist have warmed through one ring lap.
func TestZeroCopyHotPathAllocFree(t *testing.T) {
	h := quietHub(t)
	sd := h.shards[0]

	var tok core.Token
	sub := &subscriber{token: tok, shard: sd, window: h.cfg.LagWindow}
	sd.mu.Lock()
	sd.subs[tok] = sub
	sd.mu.Unlock()
	h.subCount.Add(1)

	var conn net.Conn = sinkConn{}
	b := newBatch(h.cfg.WriteBatch)
	cycle := func() {
		head := h.ring.publish(h.cfg.Stream.Fill)
		sd.wake(head)
		if !sd.popBatch(sub, b) {
			t.Fatal("popBatch returned !ok in steady state")
		}
		if err := h.writeBatch(conn, sub, b); err != nil {
			t.Fatal(err)
		}
		h.releaseBatch(b)
	}
	for i := 0; i < h.cfg.LagWindow+1; i++ {
		cycle()
	}
	if allocs := testing.AllocsPerRun(200, cycle); allocs != 0 {
		t.Errorf("zero-copy hot path allocates %.2f times per frame, want 0", allocs)
	}
}
