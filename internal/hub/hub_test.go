package hub

import (
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"dmpstream/internal/core"
	"dmpstream/internal/emunet"
)

// dial connects one path to addr and writes the join handshake.
func dial(t *testing.T, addr, streamID string, tok core.Token, rcvBuf int) net.Conn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if rcvBuf > 0 {
		c.(*net.TCPConn).SetReadBuffer(rcvBuf)
	}
	if err := core.WriteJoin(c, core.Join{StreamID: streamID, Token: tok}); err != nil {
		t.Fatal(err)
	}
	return c
}

func newToken(t *testing.T) core.Token {
	t.Helper()
	tok, err := core.NewToken()
	if err != nil {
		t.Fatal(err)
	}
	return tok
}

// assertExactlyOnce checks that a subscriber trace carries no duplicate and
// no out-of-range packets, and returns the number of distinct packets.
func assertExactlyOnce(t *testing.T, name string, tr *core.Trace) int64 {
	t.Helper()
	seen := make(map[uint32]bool, len(tr.Arrivals))
	for _, a := range tr.Arrivals {
		if seen[a.Pkt] {
			t.Fatalf("%s: packet %d delivered twice", name, a.Pkt)
		}
		if int64(a.Pkt) >= tr.Expected {
			t.Fatalf("%s: packet %d beyond expected %d", name, a.Pkt, tr.Expected)
		}
		seen[a.Pkt] = true
	}
	return int64(len(seen))
}

// TestHubFanout is the end-to-end acceptance test: one live source through
// the hub to three concurrent subscribers (two paths each, one subscriber
// with an emunet-impaired path) plus a deliberately stalled fourth
// subscriber that the DropOldest policy must skip ahead without degrading
// the others.
func TestHubFanout(t *testing.T) {
	const (
		mu      = 300.0
		count   = 900 // ~3s of stream
		payload = 200
	)
	h, err := New(Config{
		Stream:          core.Config{Mu: mu, PayloadSize: payload, Count: count},
		StreamID:        "fanout",
		LagWindow:       256,
		Policy:          DropOldest,
		PathWriteBuffer: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go h.Serve(ln)

	// Impaired path: a WAN relay rate-limiting the hub→subscriber direction
	// to ~80 KB/s with periodic deep congestion episodes.
	ep := emunet.NewPeriodicEpisodes(time.Second, 300*time.Millisecond, 400*time.Millisecond)
	defer ep.Stop()
	relay, err := emunet.Listen("127.0.0.1:0", ln.Addr().String(), emunet.PathConfig{
		RateBps: 80e3, Delay: 5 * time.Millisecond, BufferKiB: 16,
		EpisodeFactor: 0.25, Shared: ep, Downstream: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()

	// Three healthy subscribers with two paths each; subscriber 2 routes
	// its second path through the impaired relay.
	traces := make([]*core.Trace, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		tok := newToken(t)
		addr2 := ln.Addr().String()
		if i == 2 {
			addr2 = relay.Addr()
		}
		conns := []net.Conn{
			dial(t, ln.Addr().String(), "fanout", tok, 0),
			dial(t, addr2, "fanout", tok, 0),
		}
		wg.Add(1)
		go func(i int, conns []net.Conn) {
			defer wg.Done()
			tr, err := core.Receive(conns)
			if err != nil {
				t.Errorf("subscriber %d: %v", i, err)
			}
			for _, c := range conns {
				c.Close()
			}
			traces[i] = tr
		}(i, conns)
	}

	// The stalled subscriber joins with two paths and never reads a byte.
	stTok := newToken(t)
	stalled := []net.Conn{
		dial(t, ln.Addr().String(), "fanout", stTok, 4096),
		dial(t, ln.Addr().String(), "fanout", stTok, 4096),
	}

	// Mid-stream, the stalled subscriber must have been skipped ahead
	// (drops counted) while the healthy ones track the live edge.
	deadline := time.Now().Add(8 * time.Second)
	var mid Stats
	for {
		mid = h.Stats()
		var st *SubscriberStats
		for i := range mid.Subs {
			if mid.Subs[i].Token == stTok.String() {
				st = &mid.Subs[i]
			}
		}
		if st != nil && st.Dropped > 0 {
			if st.Evicted {
				t.Fatal("DropOldest evicted the stalled subscriber")
			}
			if st.Lag > int64(256+64) {
				t.Fatalf("stalled lag %d exceeds window", st.Lag)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stalled subscriber never dropped packets: %+v", mid.Subs)
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, s := range mid.Subs {
		if s.Token != stTok.String() && s.Dropped != 0 {
			t.Fatalf("healthy subscriber %s dropped %d packets", s.Token, s.Dropped)
		}
	}

	wg.Wait() // healthy subscribers drain to their end markers

	for i, tr := range traces {
		if tr == nil {
			t.Fatalf("subscriber %d: no trace", i)
		}
		uniq := assertExactlyOnce(t, "subscriber", tr)
		// Healthy subscribers must receive every non-dropped packet exactly
		// once: they dropped nothing, so all Expected packets arrive.
		if uniq != tr.Expected || int64(len(tr.Arrivals)) != tr.Expected {
			t.Fatalf("subscriber %d: %d/%d packets (arrivals %d)",
				i, uniq, tr.Expected, len(tr.Arrivals))
		}
		if tr.Expected < count-64 {
			t.Fatalf("subscriber %d joined too late: expected %d of %d", i, tr.Expected, count)
		}
		// The stalled peer must not degrade anyone's late fraction; even
		// the impaired subscriber stays comfortable at a 2s startup delay.
		if pb, _ := tr.LateFraction(2.0); pb > 0.02 {
			t.Fatalf("subscriber %d: late fraction %v at tau=2s", i, pb)
		}
	}

	// Teardown: release the stalled subscriber and drain the hub.
	for _, c := range stalled {
		c.Close()
	}
	h.Stop()
	h.Wait()

	fin := h.Stats()
	if fin.Generated != count {
		t.Fatalf("generated %d of %d", fin.Generated, count)
	}
	if fin.Dropped == 0 {
		t.Fatal("no drops recorded for the stalled subscriber")
	}
	if fin.Subscribers != 0 {
		t.Fatalf("%d subscribers left after Wait", fin.Subscribers)
	}
	if fin.Evicted != 0 {
		t.Fatalf("evictions under DropOldest: %d", fin.Evicted)
	}
	if fin.Sent == 0 || fin.GoodputPkts <= 0 {
		t.Fatalf("implausible aggregate goodput: %+v", fin)
	}
}

// TestHubEvictPolicy checks that a stalled subscriber is disconnected under
// Evict while a healthy subscriber is untouched.
func TestHubEvictPolicy(t *testing.T) {
	const count = 800
	h, err := New(Config{
		Stream:          core.Config{Mu: 400, PayloadSize: 100, Count: count},
		LagWindow:       128,
		Policy:          Evict,
		PathWriteBuffer: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go h.Serve(ln)

	tok := newToken(t)
	conns := []net.Conn{
		dial(t, ln.Addr().String(), "live", tok, 0),
		dial(t, ln.Addr().String(), "live", tok, 0),
	}
	var tr *core.Trace
	var rErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tr, rErr = core.Receive(conns)
		for _, c := range conns {
			c.Close()
		}
	}()

	stall := dial(t, ln.Addr().String(), "live", newToken(t), 4096)
	deadline := time.Now().Add(8 * time.Second)
	for h.Stats().Evicted == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("stalled subscriber never evicted: %+v", h.Stats())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The hub closed the stalled path: draining it hits EOF/reset, not an
	// endless stream.
	stall.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.Copy(io.Discard, stall); err != nil {
		t.Logf("stalled path closed with: %v", err) // reset is fine too
	}
	stall.Close()

	wg.Wait()
	if rErr != nil {
		t.Fatalf("healthy subscriber: %v", rErr)
	}
	uniq := assertExactlyOnce(t, "healthy", tr)
	if uniq != tr.Expected || tr.Expected < count-64 {
		t.Fatalf("healthy subscriber got %d/%d (stream %d)", uniq, tr.Expected, count)
	}
	if pb, _ := tr.LateFraction(2.0); pb > 0.02 {
		t.Fatalf("healthy late fraction %v after peer eviction", pb)
	}

	h.Stop()
	h.Wait()
	fin := h.Stats()
	if fin.Evicted != 1 {
		t.Fatalf("evicted %d, want 1", fin.Evicted)
	}
	if fin.Dropped != 0 {
		t.Fatalf("drops under Evict: %d", fin.Dropped)
	}
}

// TestHubChurn exercises subscribers joining and leaving mid-stream under
// the race detector: abrupt leavers must not disturb a subscriber that
// stays to the end.
func TestHubChurn(t *testing.T) {
	h, err := New(Config{
		Stream:    core.Config{Mu: 1000, PayloadSize: 64}, // live until Stop
		LagWindow: 2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go h.Serve(ln)

	// One durable subscriber stays for the whole stream.
	tok := newToken(t)
	durable := []net.Conn{
		dial(t, ln.Addr().String(), "live", tok, 0),
		dial(t, ln.Addr().String(), "live", tok, 0),
	}
	var tr *core.Trace
	var rErr error
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		tr, rErr = core.Receive(durable)
		for _, c := range durable {
			c.Close()
		}
	}()

	// Churners join with 1-2 paths, read a little, and hang up abruptly.
	conns := make([][]net.Conn, 8)
	for i := range conns {
		ctok := newToken(t)
		n := 1 + i%2
		for j := 0; j < n; j++ {
			conns[i] = append(conns[i], dial(t, ln.Addr().String(), "live", ctok, 0))
		}
	}
	var cwg sync.WaitGroup
	rng := rand.New(rand.NewSource(1))
	for i := range conns {
		cwg.Add(1)
		go func(i int, hold time.Duration) {
			defer cwg.Done()
			for _, c := range conns[i] {
				c.SetReadDeadline(time.Now().Add(hold))
				io.Copy(io.Discard, c)
				c.Close()
			}
		}(i, time.Duration(50+rng.Intn(200))*time.Millisecond)
	}
	cwg.Wait()

	h.Stop()
	h.Wait()
	rwg.Wait()
	if rErr != nil {
		t.Fatalf("durable subscriber: %v", rErr)
	}
	uniq := assertExactlyOnce(t, "durable", tr)
	if uniq != tr.Expected || tr.Expected == 0 {
		t.Fatalf("durable subscriber got %d/%d", uniq, tr.Expected)
	}
	if fin := h.Stats(); fin.Subscribers != 0 {
		t.Fatalf("%d subscribers left after Wait", fin.Subscribers)
	}
}

// TestHubJoinValidation covers the join handshake edges: wrong stream id,
// join after the stream ended, garbage instead of a join.
func TestHubJoinValidation(t *testing.T) {
	h, err := New(Config{Stream: core.Config{Mu: 2000, PayloadSize: 16, Count: 10}})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	// Wrong stream id.
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	s := accept(t, ln)
	if err := core.WriteJoin(c, core.Join{StreamID: "other"}); err != nil {
		t.Fatal(err)
	}
	if err := h.Attach(s); err == nil {
		t.Fatal("wrong stream id accepted")
	}
	c.Close()

	// Garbage instead of a join request.
	c2, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	s2 := accept(t, ln)
	c2.Write(make([]byte, 64))
	if err := h.Attach(s2); err == nil {
		t.Fatal("garbage join accepted")
	}
	c2.Close()

	// Join after the stream ended.
	deadline := time.Now().Add(5 * time.Second)
	for h.Generated() < 10 {
		if time.Now().After(deadline) {
			t.Fatal("generation never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}
	h.Stop()
	h.Wait()
	c3, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	s3 := accept(t, ln)
	if err := core.WriteJoin(c3, core.Join{StreamID: "live"}); err != nil {
		t.Fatal(err)
	}
	if err := h.Attach(s3); err == nil {
		t.Fatal("join after stream end accepted")
	}
	c3.Close()
}

func accept(t *testing.T, ln net.Listener) net.Conn {
	t.Helper()
	s, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestHubConfigValidation(t *testing.T) {
	bad := []Config{
		{Stream: core.Config{Mu: 0}},
		{Stream: core.Config{Mu: 10}, LagWindow: -1},
		{Stream: core.Config{Mu: 10}, Policy: Policy(9)},
		{Stream: core.Config{Mu: 10}, StreamID: "this-stream-id-is-far-too-long"},
		{Stream: core.Config{Mu: 10}, PathWriteBuffer: -1},
		{Stream: core.Config{Mu: 10}, MaxSubscribers: -1},
		{Stream: core.Config{Mu: 10}, MaxConns: -1},
		{Stream: core.Config{Mu: 10}, MaxBytes: -1},
		{Stream: core.Config{Mu: 10}, JoinTimeout: -time.Second},
		{Stream: core.Config{Mu: 10}, HandshakeLimit: -1},
	}
	for i, cfg := range bad {
		if h, err := New(cfg); err == nil {
			h.Close()
			t.Errorf("config %d accepted", i)
		}
	}
}

// TestHubLateJoiner verifies rebased numbering: a subscriber joining
// mid-stream sees a 0-based stream covering only the packets generated
// after its join.
func TestHubLateJoiner(t *testing.T) {
	const count = 600
	h, err := New(Config{Stream: core.Config{Mu: 600, PayloadSize: 64, Count: count}})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go h.Serve(ln)

	// Let roughly a third of the stream pass before joining.
	deadline := time.Now().Add(5 * time.Second)
	for h.Generated() < count/3 {
		if time.Now().After(deadline) {
			t.Fatal("generation stalled")
		}
		time.Sleep(5 * time.Millisecond)
	}
	conns := []net.Conn{dial(t, ln.Addr().String(), "live", newToken(t), 0)}
	tr, err := core.Receive(conns)
	conns[0].Close()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Expected <= 0 || tr.Expected > count-count/3+32 {
		t.Fatalf("late joiner expected %d of a %d stream (joined after %d)", tr.Expected, count, count/3)
	}
	uniq := assertExactlyOnce(t, "late-joiner", tr)
	if uniq != tr.Expected {
		t.Fatalf("late joiner got %d/%d", uniq, tr.Expected)
	}
	h.Stop()
	h.Wait()
}
