package hub

import (
	"sync"
	"testing"
	"time"

	"dmpstream/internal/core"
)

// TestTickCoalescesWakeups pins the wakeup-coalescing contract: however
// many packets one generator tick publishes (a burst after scheduling
// debt), each shard's subscribers are woken exactly once, and a waiting
// zero-copy sender drains the whole burst as one pinned batch. Without
// coalescing, a k-packet tick costs k broadcasts and up to k context
// switches per subscriber; with it, wakes advances by one per tick no
// matter what k is.
func TestTickCoalescesWakeups(t *testing.T) {
	h := ownershipHub(t, 1, 8, 16)
	// The quiesced generator published its single packet and exited; lift
	// the generation cap and the done flag so the tick under test replays
	// a backlog by hand against a parked (not drained) sender.
	h.cfg.Stream.Count = 0
	h.genDone.Store(false)
	defer h.genDone.Store(true)
	sd := h.shards[0]

	tok, err := core.NewToken()
	if err != nil {
		t.Fatal(err)
	}
	sub := &subscriber{token: tok, shard: sd, first: 0, cur: 1, window: 16}
	sd.mu.Lock()
	sd.subs[tok] = sub
	wakes0 := sd.wakes
	sd.mu.Unlock()
	h.subCount.Add(1)

	// Park a zero-copy sender on the shard's cond (cur == head == 1).
	b := newBatch(32)
	got := make(chan int, 1)
	go func() {
		if !sd.popBatch(sub, b) {
			got <- -1
			return
		}
		got <- b.n
	}()
	time.Sleep(20 * time.Millisecond)

	// One tick with ~8 packets of scheduling debt: base is 8ms in the past
	// at a 1ms period, so everything due publishes in this single call.
	k := h.publishTick(1, time.Now().Add(-8*time.Millisecond), time.Millisecond)
	if k < 2 {
		t.Fatalf("backlogged tick published %d packets, want a burst > 1", k)
	}

	n := <-got
	if n < 0 {
		t.Fatal("popBatch returned !ok")
	}
	if int64(n) != k {
		t.Fatalf("one wakeup drained %d frames, want the full %d-packet burst", n, k)
	}
	sd.mu.Lock()
	wakes := sd.wakes - wakes0
	sd.mu.Unlock()
	if wakes != 1 {
		t.Fatalf("%d-packet tick broadcast %d wakeups per shard, want exactly 1", k, wakes)
	}
	h.releaseBatch(b)
	if ps := h.PoolCheck(); ps.DoublePuts != 0 || ps.PoisonTrips != 0 {
		t.Fatalf("pool integrity violated: %+v", ps)
	}
}

// TestPoolChurnRace churns the pool's full lifecycle — publish recycling
// lapped slots, concurrent pinners borrowing and releasing — under the
// race detector (no !race build tag on this file on purpose). The poison
// mode turns any use-after-put into a counted trip, and the refcount
// discipline must keep DoublePuts at zero through arbitrary interleaving.
func TestPoolChurnRace(t *testing.T) {
	const (
		ringSize  = 8
		publishes = 3000
		pinners   = 4
	)
	pool := newBufPool(64, true)
	r := newRing(ringSize, pool)
	fill := func(pkt uint32, buf []byte) {
		for i := range buf {
			buf[i] = byte(pkt)
		}
	}
	r.publish(fill) // seed so pinners always have a live seq

	done := make(chan struct{})
	var wg sync.WaitGroup
	for p := 0; p < pinners; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				seq := r.headSeq() - 1
				pb, _, ok := r.pin(seq)
				if !ok {
					continue
				}
				// Read through the borrow; the poison check on the pool's
				// next get would trip if this raced a recycle.
				_ = pb.data[0]
				if pb.refs.Add(-1) == 0 {
					pool.put(pb)
				}
			}
		}()
	}
	for i := 1; i < publishes; i++ {
		r.publish(fill)
	}
	close(done)
	wg.Wait()

	ps := pool.stats()
	if ps.DoublePuts != 0 || ps.PoisonTrips != 0 {
		t.Fatalf("pool integrity violated under churn: %+v", ps)
	}
	if live := int64(ps.Free) + r.size(); ps.News != live {
		t.Fatalf("pool leak under churn: %d allocated, %d accounted for (%+v)", ps.News, live, ps)
	}
}
