package hub

import (
	"bytes"
	"reflect"
	"testing"

	"dmpstream/internal/core"
)

// TestRingCopyAtIngest pins the buffer-ownership contract the bufown
// analyzer annotates: publish copies the generator's payload into the
// slot buffer under the exclusive lock (copy at ingest), and frame
// copies the slot into the caller's buffer (the sanctioned copy point).
// Mutating the generator's source after publish — or scribbling over a
// delivered frame — must never change what later readers receive,
// because laps and re-attach resends re-render from the same slot.
func TestRingCopyAtIngest(t *testing.T) {
	const payloadSize = 8
	r := newRing(4)
	source := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	fill := func(pkt uint32, buf []byte) { copy(buf, source) }

	head := r.publish(fill, payloadSize)
	seq := head - 1
	want := append([]byte(nil), source...)

	// The generator reuses its source buffer for the next packet; the
	// published slot must be unaffected.
	for i := range source {
		source[i] = 0xEE
	}
	frame := make([]byte, core.FrameHeaderSize+payloadSize)
	if !r.frame(seq, 0, frame) {
		t.Fatal("published packet already lapped")
	}
	if got := frame[core.FrameHeaderSize:]; !bytes.Equal(got, want) {
		t.Fatalf("delivered payload aliases the generator source: got %v, want %v", got, want)
	}

	// A delivered frame is the reader's to destroy — a resend of the
	// same sequence (re-attach replays through ring.frame) still sees
	// the original bytes.
	for i := range frame {
		frame[i] = 0xAA
	}
	resend := make([]byte, core.FrameHeaderSize+payloadSize)
	if !r.frame(seq, 0, resend) {
		t.Fatal("published packet already lapped")
	}
	if got := resend[core.FrameHeaderSize:]; !bytes.Equal(got, want) {
		t.Fatalf("resent payload shares bytes with the delivered frame: got %v, want %v", got, want)
	}
}

// TestResendRingRetainsNoPayloadAliases locks in why copy-at-ingest is
// sufficient on the hub side: the per-path resend ring holds bare
// sequence numbers, re-rendered through ring.frame on re-attach, so
// there is no retained payload to go stale. Adding a payload alias to
// the ring would reintroduce the exact use-after-lap bug the bufown
// analyzer exists to prevent, so the element type is pinned
// reference-free here. (internal/core has the matching pin for its
// queued metadata ring.)
func TestResendRingRetainsNoPayloadAliases(t *testing.T) {
	rt := reflect.TypeOf(unrollSeqs).In(0).Elem()
	if k := rt.Kind(); k != reflect.Int64 {
		t.Fatalf("hub resend ring element is %v, want int64 (metadata only)", k)
	}
	ring := []int64{3, 4, 5}
	if got := unrollSeqs(ring, 7); len(got) != 3 {
		t.Fatalf("unrollSeqs returned %d seqs, want 3", len(got))
	}
}
