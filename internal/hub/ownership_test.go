package hub

import (
	"bytes"
	"net"
	"reflect"
	"testing"
	"time"

	"dmpstream/internal/core"
)

// TestRingCopyAtIngest pins the buffer-ownership contract the bufown
// analyzer annotates: publish fills a pool buffer while it is still
// private (copy at ingest), and frame copies the slot into the caller's
// buffer (the sanctioned copy point). Mutating the generator's source
// after publish — or scribbling over a delivered frame — must never
// change what later readers receive, because laps and re-attach resends
// re-render from the same slot.
func TestRingCopyAtIngest(t *testing.T) {
	const payloadSize = 8
	r := newRing(4, newBufPool(payloadSize, false))
	source := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	fill := func(pkt uint32, buf []byte) { copy(buf, source) }

	head := r.publish(fill)
	seq := head - 1
	want := append([]byte(nil), source...)

	// The generator reuses its source buffer for the next packet; the
	// published slot must be unaffected.
	for i := range source {
		source[i] = 0xEE
	}
	frame := make([]byte, core.FrameHeaderSize+payloadSize)
	if !r.frame(seq, 0, frame) {
		t.Fatal("published packet already lapped")
	}
	if got := frame[core.FrameHeaderSize:]; !bytes.Equal(got, want) {
		t.Fatalf("delivered payload aliases the generator source: got %v, want %v", got, want)
	}

	// A delivered frame is the reader's to destroy — a resend of the
	// same sequence (re-attach replays through ring.frame) still sees
	// the original bytes.
	for i := range frame {
		frame[i] = 0xAA
	}
	resend := make([]byte, core.FrameHeaderSize+payloadSize)
	if !r.frame(seq, 0, resend) {
		t.Fatal("published packet already lapped")
	}
	if got := resend[core.FrameHeaderSize:]; !bytes.Equal(got, want) {
		t.Fatalf("resent payload shares bytes with the delivered frame: got %v, want %v", got, want)
	}
}

// TestResendRingRetainsNoPayloadAliases locks in why pin-at-fetch is
// sufficient on the hub side: the per-path resend ring holds bare
// sequence numbers, re-rendered (or re-pinned) through the shared ring
// on re-attach, so there is no retained payload to go stale. Adding a
// payload alias to the ring would reintroduce the exact use-after-lap
// bug the bufown analyzer exists to prevent, so the element type is
// pinned reference-free here. (internal/core has the matching pin for
// its queued metadata ring.)
func TestResendRingRetainsNoPayloadAliases(t *testing.T) {
	rt := reflect.TypeOf(unrollSeqs).In(0).Elem()
	if k := rt.Kind(); k != reflect.Int64 {
		t.Fatalf("hub resend ring element is %v, want int64 (metadata only)", k)
	}
	ring := []int64{3, 4, 5}
	if got := unrollSeqs(ring, 7); len(got) != 3 {
		t.Fatalf("unrollSeqs returned %d seqs, want 3", len(got))
	}
}

// ownFill is the deterministic payload pattern the shared-buffer tests
// assert byte-exactness against: byte i of packet pkt is pkt*16+i.
func ownFill(pkt uint32, buf []byte) {
	for i := range buf {
		buf[i] = byte(pkt)*16 + byte(i)
	}
}

func ownWant(pkt uint32, n int) []byte {
	out := make([]byte, n)
	ownFill(pkt, out)
	return out
}

// ownershipHub builds a quiesced poison-mode hub: Count packets
// published, generator done, one shard, no subscribers yet.
func ownershipHub(t *testing.T, count int64, payloadSize, lagWindow int) *Hub {
	t.Helper()
	h, err := New(Config{
		Stream:     core.Config{Mu: 5000, PayloadSize: payloadSize, Count: count, Fill: ownFill},
		LagWindow:  lagWindow,
		Shards:     1,
		PoisonPool: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)
	deadline := time.Now().Add(5 * time.Second)
	for !h.genDone.Load() {
		if time.Now().After(deadline) {
			t.Fatal("generator did not finish")
		}
		time.Sleep(time.Millisecond)
	}
	return h
}

// TestPinnedBufferSurvivesPoolReturn is the shared-buffer aliasing pin
// for churn: a fast subscriber takes delivery and is evicted, the ring
// laps so every buffer it consumed returns to the (poisoning) pool —
// while a slow sibling still borrows two of those buffers through its
// batch pins. The pinned bytes must stay byte-exact until the sibling
// releases them, and the pool must see no double puts or poison trips
// from the whole dance.
func TestPinnedBufferSurvivesPoolReturn(t *testing.T) {
	const payloadSize = 8
	h := ownershipHub(t, 8, payloadSize, 4)
	sd := h.shards[0]

	mkSub := func(cur int64) *subscriber {
		tok, err := core.NewToken()
		if err != nil {
			t.Fatal(err)
		}
		sub := &subscriber{token: tok, shard: sd, first: 0, cur: cur, window: 4}
		sd.mu.Lock()
		sd.subs[tok] = sub
		sd.mu.Unlock()
		h.subCount.Add(1)
		return sub
	}
	// head is 8, ring holds seqs 4..7.
	slow := mkSub(4)
	fast := mkSub(4)

	// The slow sibling pins seqs 4 and 5 (a writev in flight).
	slowBatch := newBatch(2)
	if !sd.popBatch(slow, slowBatch) {
		t.Fatal("slow popBatch returned no frames")
	}
	if slowBatch.n != 2 || slowBatch.seqs[0] != 4 || slowBatch.seqs[1] != 5 {
		t.Fatalf("slow batch pinned seqs %v (n=%d), want [4 5]", slowBatch.seqs[:slowBatch.n], slowBatch.n)
	}

	// The fast subscriber takes full delivery and is then evicted.
	fastBatch := newBatch(8)
	if !sd.popBatch(fast, fastBatch) {
		t.Fatal("fast popBatch returned no frames")
	}
	if fastBatch.n != 4 {
		t.Fatalf("fast batch pinned %d frames, want 4", fastBatch.n)
	}
	h.releaseBatch(fastBatch)
	sd.mu.Lock()
	sd.evictLocked(fast)
	sd.mu.Unlock()

	// Lap the whole ring: every slot's buffer reference drops; unpinned
	// buffers return to the pool and are poisoned there.
	for i := 0; i < 4; i++ {
		h.ring.publish(ownFill)
	}

	// The slow sibling's pins must still hold the original bytes.
	for i := 0; i < slowBatch.n; i++ {
		want := ownWant(uint32(slowBatch.seqs[i]), payloadSize)
		if got := slowBatch.bufs[i].data; !bytes.Equal(got, want) {
			t.Fatalf("pinned seq %d recycled under the borrow: got %v, want %v", slowBatch.seqs[i], got, want)
		}
	}
	h.releaseBatch(slowBatch)

	ps := h.PoolCheck()
	if ps.DoublePuts != 0 || ps.PoisonTrips != 0 {
		t.Fatalf("pool integrity violated: %+v", ps)
	}
	// Conservation at quiescence: every allocated buffer is either on the
	// freelist or sitting in a live ring slot.
	if live := int64(ps.Free) + h.ring.size(); ps.News != live {
		t.Fatalf("pool leak: %d buffers allocated, %d accounted for (%+v)", ps.News, live, ps)
	}
}

// wcapConn is a net.Conn that captures everything written to it.
type wcapConn struct{ buf bytes.Buffer }

func (c *wcapConn) Read(p []byte) (int, error)       { return 0, net.ErrClosed }
func (c *wcapConn) Write(p []byte) (int, error)      { return c.buf.Write(p) }
func (c *wcapConn) Close() error                     { return nil }
func (c *wcapConn) LocalAddr() net.Addr              { return nil }
func (c *wcapConn) RemoteAddr() net.Addr             { return nil }
func (c *wcapConn) SetDeadline(time.Time) error      { return nil }
func (c *wcapConn) SetReadDeadline(time.Time) error  { return nil }
func (c *wcapConn) SetWriteDeadline(time.Time) error { return nil }

// TestReattachResendReplayFromPool pins byte-exact conservation of the
// resend path over pooled buffers: a re-attached subscriber's resend
// queue is replayed through popBatch pins and a vectored writeBatch, and
// every replayed frame must carry the original payload bytes with the
// header renumbered to the subscriber's join point — even though the
// buffers have been through pool recycling since the stream started.
func TestReattachResendReplayFromPool(t *testing.T) {
	const payloadSize = 8
	// Count 12 over a 4-slot ring: seqs 0..7 were published into buffers
	// that have since been lapped and recycled through the pool; the ring
	// now holds 8..11.
	h := ownershipHub(t, 12, payloadSize, 4)
	sd := h.shards[0]
	tok, err := core.NewToken()
	if err != nil {
		t.Fatal(err)
	}
	// A subscriber that joined at seq 6, caught up, and whose dead path
	// left seqs 9 and 10 queued for retransmission.
	sub := &subscriber{token: tok, shard: sd, first: 6, cur: 12, window: 4,
		resend: []int64{9, 10}}
	sd.mu.Lock()
	sd.subs[tok] = sub
	sd.mu.Unlock()
	h.subCount.Add(1)

	b := newBatch(4)
	if !sd.popBatch(sub, b) {
		t.Fatal("popBatch returned no resend frames")
	}
	if b.n != 2 || b.seqs[0] != 9 || b.seqs[1] != 10 {
		t.Fatalf("replayed seqs %v (n=%d), want [9 10]", b.seqs[:b.n], b.n)
	}
	conn := &wcapConn{}
	if err := h.writeBatch(conn, sub, b); err != nil {
		t.Fatalf("writeBatch: %v", err)
	}
	h.releaseBatch(b)

	wire := conn.buf.Bytes()
	frameSize := core.FrameHeaderSize + payloadSize
	if len(wire) != 2*frameSize {
		t.Fatalf("writeBatch wrote %d bytes, want %d", len(wire), 2*frameSize)
	}
	for i, seq := range []int64{9, 10} {
		frame := wire[i*frameSize : (i+1)*frameSize]
		pkt, _, err := core.ParseFrameHeader(frame)
		if err != nil {
			t.Fatal(err)
		}
		if want := uint32(seq - sub.first); pkt != want {
			t.Fatalf("replayed seq %d renumbered to %d, want %d", seq, pkt, want)
		}
		if got, want := frame[core.FrameHeaderSize:], ownWant(uint32(seq), payloadSize); !bytes.Equal(got, want) {
			t.Fatalf("replayed seq %d payload %v, want %v (byte-exact conservation)", seq, got, want)
		}
	}
	if ps := h.PoolCheck(); ps.DoublePuts != 0 || ps.PoisonTrips != 0 {
		t.Fatalf("pool integrity violated: %+v", ps)
	}
}
