package hub

import (
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dmpstream/internal/core"
)

// joinOK dials one path, writes the join and requires the stream header
// back: the join was admitted.
func joinOK(t *testing.T, addr, streamID string, tok core.Token, rcvBuf int) net.Conn {
	t.Helper()
	c := dial(t, addr, streamID, tok, rcvBuf)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, _, err := core.ReadStreamHeader(c); err != nil {
		c.Close()
		t.Fatalf("join not admitted: %v", err)
	}
	c.SetReadDeadline(time.Time{})
	return c
}

// joinErr dials one path, writes the join and returns the typed error the
// hub answered with (nil means the join was, unexpectedly, admitted — the
// connection is closed either way).
func joinErr(t *testing.T, addr, streamID string, tok core.Token) error {
	t.Helper()
	c := dial(t, addr, streamID, tok, 0)
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	_, _, err := core.ReadStreamHeader(c)
	return err
}

// waitStats polls the hub until pred holds or the deadline passes.
func waitStats(t *testing.T, h *Hub, what string, pred func(Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !pred(h.Stats()) {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s; stats: %+v", what, h.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestHubAdmissionRejects walks every admission refusal over the wire:
// each refused join must carry the matching DMPR code (surfacing as the
// typed core sentinel client-side), increment Stats.Rejected exactly once,
// and leave admitted subscribers untouched.
func TestHubAdmissionRejects(t *testing.T) {
	h, err := New(Config{
		Stream:         core.Config{Mu: 200, PayloadSize: 32, Count: 1 << 30},
		StreamID:       "adm",
		MaxSubscribers: 1,
		MaxConns:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go h.Serve(ln)
	addr := ln.Addr().String()

	tokA := newToken(t)
	a1 := joinOK(t, addr, "adm", tokA, 0)
	defer a1.Close()

	var wantRejected int64
	expectReject := func(name, streamID string, tok core.Token, sentinel error) {
		t.Helper()
		err := joinErr(t, addr, streamID, tok)
		if err == nil {
			t.Fatalf("%s: join admitted", name)
		}
		if !errors.Is(err, core.ErrRejected) {
			t.Fatalf("%s: not a typed reject: %v", name, err)
		}
		if !errors.Is(err, sentinel) {
			t.Fatalf("%s: wrong reject code: %v", name, err)
		}
		wantRejected++
		if got := h.Stats().Rejected; got != wantRejected {
			t.Fatalf("%s: Rejected = %d, want exactly %d", name, got, wantRejected)
		}
	}

	// A second subscriber is over MaxSubscribers; a wrong stream id is
	// refused regardless of capacity.
	expectReject("fresh token past MaxSubscribers", "adm", newToken(t), core.ErrServerFull)
	expectReject("unknown stream id", "not-adm", newToken(t), core.ErrUnknownStream)

	// Additional paths of the admitted token are exempt from the
	// subscriber cap...
	a2 := joinOK(t, addr, "adm", tokA, 0)
	defer a2.Close()
	a3 := joinOK(t, addr, "adm", tokA, 0)
	defer a3.Close()
	// ...but not from MaxConns: the fourth connection overall is refused.
	expectReject("admitted token past MaxConns", "adm", tokA, core.ErrServerFull)

	// The full client stack surfaces the same typed error from Run.
	cl := &core.Client{
		Dial: func(int) (net.Conn, error) { return net.Dial("tcp", addr) },
		Join: &core.Join{StreamID: "adm", Token: newToken(t)},
	}
	if _, err := cl.Run(); !errors.Is(err, core.ErrServerFull) {
		t.Fatalf("client Run past MaxSubscribers: %v, want ErrServerFull", err)
	}
	wantRejected++

	// Draining closes admission for fresh tokens before any capacity check.
	h.BeginDrain()
	expectReject("fresh token while draining", "adm", newToken(t), core.ErrDraining)

	st := h.Stats()
	if st.Rejected != wantRejected {
		t.Fatalf("Rejected = %d, want %d", st.Rejected, wantRejected)
	}
	if st.Subscribers != 1 || st.Conns != 3 {
		t.Fatalf("admitted state disturbed: %d subscribers, %d conns", st.Subscribers, st.Conns)
	}
	if !st.Draining {
		t.Fatal("Stats.Draining false after BeginDrain")
	}
}

// TestHubSlowlorisJoin: connections that never send their join occupy
// handshake slots only until JoinTimeout; while the slots are full, Serve
// sheds newcomers with a server-full reject, and once the deadline cuts
// the stallers a well-behaved join is admitted again.
func TestHubSlowlorisJoin(t *testing.T) {
	h, err := New(Config{
		Stream:         core.Config{Mu: 200, PayloadSize: 32, Count: 1 << 30},
		StreamID:       "slow",
		JoinTimeout:    300 * time.Millisecond,
		HandshakeLimit: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go h.Serve(ln)
	addr := ln.Addr().String()

	// Two silent connections fill both handshake slots.
	var stallers []net.Conn
	for i := 0; i < 2; i++ {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		stallers = append(stallers, c)
	}
	waitStats(t, h, "both handshake slots occupied", func(st Stats) bool {
		return st.Handshaking == 2
	})

	// The overflow connection is shed immediately — before any join bytes.
	over, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer over.Close()
	over.SetReadDeadline(time.Now().Add(5 * time.Second))
	_, _, err = core.ReadStreamHeader(over)
	if !errors.Is(err, core.ErrServerFull) {
		t.Fatalf("overflow conn: %v, want ErrServerFull", err)
	}

	// JoinTimeout cuts the stallers: their reads fail (no reject frame is
	// owed to a connection that never spoke the protocol).
	for i, c := range stallers {
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, _, err := core.ReadStreamHeader(c); err == nil {
			t.Fatalf("staller %d got a stream header", i)
		} else if errors.Is(err, core.ErrRejected) {
			t.Fatalf("staller %d got a courtesy reject: %v", i, err)
		}
	}
	waitStats(t, h, "handshake slots freed", func(st Stats) bool {
		return st.Handshaking == 0
	})

	// With the slots free, a prompt join is admitted again.
	c := joinOK(t, addr, "slow", newToken(t), 0)
	c.Close()

	if st := h.Stats(); st.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1 (the overflow conn)", st.Rejected)
	}
}

// TestHubOverloadDegradation is the deterministic overload acceptance
// test: a prompt subscriber and a fully stalled one share a hub with a
// tight MaxBytes budget while two excess joiners are refused. The
// resource governor must walk the stalled subscriber down the degradation
// ladder (Shed > 0, window shrunk), keep BytesHeld under the budget at
// every sample, and leave the prompt subscriber's stream conserved and
// punctual.
func TestHubOverloadDegradation(t *testing.T) {
	const (
		mu       = 400.0
		payload  = 100
		count    = 1600 // ~4s of stream
		lagWin   = 512
		maxBytes = 16384 // ~146 frames of 112 bytes
	)
	h, err := New(Config{
		Stream:          core.Config{Mu: mu, PayloadSize: payload, Count: count},
		StreamID:        "over",
		LagWindow:       lagWin,
		Policy:          DropOldest,
		PathWriteBuffer: 4096,
		MaxSubscribers:  2,
		MaxBytes:        maxBytes,
		ReattachGrace:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go h.Serve(ln)
	addr := ln.Addr().String()

	// Subscriber 1 joins and then never reads another byte.
	stalled := joinOK(t, addr, "over", newToken(t), 4096)
	defer stalled.Close()

	// Subscriber 2 consumes promptly through the full client stack.
	type result struct {
		tr  *core.Trace
		err error
	}
	resCh := make(chan result, 1)
	cl := &core.Client{
		Dial: func(int) (net.Conn, error) { return net.Dial("tcp", addr) },
		Join: &core.Join{StreamID: "over", Token: newToken(t)},
	}
	go func() {
		tr, err := cl.Run()
		resCh <- result{tr, err}
	}()
	waitStats(t, h, "both subscribers admitted", func(st Stats) bool {
		return st.Subscribers == 2
	})

	// Excess joiners: both must get the typed server-full verdict.
	for i := 0; i < 2; i++ {
		if err := joinErr(t, addr, "over", newToken(t)); !errors.Is(err, core.ErrServerFull) {
			t.Fatalf("excess joiner %d: %v, want ErrServerFull", i, err)
		}
	}

	// Sample the hub for the rest of the stream: the budget is a hard
	// ceiling on subscriber-attributable bytes at every observation.
	for h.Generated() < count {
		if st := h.Stats(); st.BytesHeld > maxBytes {
			t.Fatalf("BytesHeld %d exceeds budget %d; stats: %+v", st.BytesHeld, maxBytes, st)
		}
		time.Sleep(10 * time.Millisecond)
	}

	st := h.Stats()
	if st.BytesHeld > maxBytes {
		t.Fatalf("final BytesHeld %d exceeds budget %d", st.BytesHeld, maxBytes)
	}
	if st.Shed < 1 {
		t.Fatalf("Shed = %d, want >= 1", st.Shed)
	}
	if st.Rejected != 2 {
		t.Fatalf("Rejected = %d, want 2", st.Rejected)
	}
	// The stalled subscriber must have been walked down the ladder: its
	// window shrinks until its holdings fit the budget (512 → 256 → 128
	// at these parameters), and the shrunk window then persists, so the
	// ordinary lag policy keeps it inside the budget from then on.
	degraded := false
	for _, sub := range st.Subs {
		if sub.Evicted || (sub.Sheds > 0 && sub.Window <= lagWin/4) {
			degraded = true
		}
	}
	if !degraded {
		t.Fatalf("no subscriber walked the degradation ladder: %+v", st.Subs)
	}

	// Unblock the stalled path's sender before waiting for shutdown, then
	// require the prompt subscriber's stream intact and punctual.
	stalled.Close()
	res := <-resCh
	if res.err != nil {
		t.Fatalf("prompt subscriber: %v", res.err)
	}
	if got := assertExactlyOnce(t, "prompt", res.tr); got != res.tr.Expected {
		t.Fatalf("prompt subscriber lost packets under overload: %d of %d", got, res.tr.Expected)
	}
	if late, _ := res.tr.LateFraction(2.0); late > 0.02 {
		t.Fatalf("prompt subscriber late fraction %v at τ=2s, want <= 0.02", late)
	}
	h.Wait()
}

// tempErr mimics the temporary net.Error an accept storm (EMFILE) raises.
type tempErr struct{}

func (tempErr) Error() string   { return "accept: too many open files (simulated)" }
func (tempErr) Timeout() bool   { return false }
func (tempErr) Temporary() bool { return true }

// flakyListener fails its first `fails` Accept calls with a temporary
// error, then behaves like the wrapped listener.
type flakyListener struct {
	net.Listener
	fails atomic.Int32
}

func (l *flakyListener) Accept() (net.Conn, error) {
	if l.fails.Add(-1) >= 0 {
		return nil, tempErr{}
	}
	return l.Listener.Accept()
}

// TestHubServeAcceptBackoff: temporary accept errors must not tear Serve
// down — the loop backs off, retries, and keeps admitting.
func TestHubServeAcceptBackoff(t *testing.T) {
	const fails = 3
	h, err := New(Config{
		Stream:   core.Config{Mu: 200, PayloadSize: 32, Count: 1 << 30},
		StreamID: "flaky",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	fl := &flakyListener{Listener: ln}
	fl.fails.Store(fails)

	serveDone := make(chan error, 1)
	go func() { serveDone <- h.Serve(fl) }()

	// The join only succeeds once Serve has survived every simulated
	// accept failure.
	c := joinOK(t, ln.Addr().String(), "flaky", newToken(t), 0)
	c.Close()
	if got := h.Stats().AcceptRetries; got != fails {
		t.Fatalf("AcceptRetries = %d, want %d", got, fails)
	}

	h.Close()
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}

// TestHubDrainGraceful: BeginDrain refuses fresh tokens but keeps serving
// (and healing) live subscriptions, and Drain delivers end markers to
// everyone within the deadline.
func TestHubDrainGraceful(t *testing.T) {
	h, err := New(Config{
		Stream:   core.Config{Mu: 300, PayloadSize: 48, Count: 1 << 30},
		StreamID: "drain",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go h.Serve(ln)
	addr := ln.Addr().String()

	// One full-stack subscriber that must see a conserved, cleanly ended
	// stream, and one raw subscription to exercise the re-attach exemption.
	type result struct {
		tr  *core.Trace
		err error
	}
	resCh := make(chan result, 1)
	cl := &core.Client{
		Dial:  func(int) (net.Conn, error) { return net.Dial("tcp", addr) },
		Paths: 2,
		Join:  &core.Join{StreamID: "drain", Token: newToken(t)},
	}
	go func() {
		tr, err := cl.Run()
		resCh <- result{tr, err}
	}()

	rawTok := newToken(t)
	raw1 := joinOK(t, addr, "drain", rawTok, 0)
	defer raw1.Close()
	var drainers sync.WaitGroup
	drainers.Add(1)
	go func() {
		defer drainers.Done()
		_, _ = io.Copy(io.Discard, raw1)
	}()
	waitStats(t, h, "both subscribers admitted", func(st Stats) bool {
		return st.Subscribers == 2
	})
	// Let some stream flow first, so the drained clients end with a
	// non-empty stream (an instant drain can beat the first tick after
	// the join, and a zero-packet stream has no end state to conserve).
	mark := h.Generated() + 50
	deadline := time.Now().Add(10 * time.Second)
	for h.Generated() < mark {
		if time.Now().After(deadline) {
			t.Fatal("generation stalled")
		}
		time.Sleep(5 * time.Millisecond)
	}

	h.BeginDrain()
	if !h.Draining() {
		t.Fatal("Draining() false after BeginDrain")
	}
	// Fresh tokens are refused...
	if err := joinErr(t, addr, "drain", newToken(t)); !errors.Is(err, core.ErrDraining) {
		t.Fatalf("fresh join while draining: %v, want ErrDraining", err)
	}
	// ...but a live token may still add (heal) a path mid-drain.
	raw2 := joinOK(t, addr, "drain", rawTok, 0)
	defer raw2.Close()
	drainers.Add(1)
	go func() {
		defer drainers.Done()
		_, _ = io.Copy(io.Discard, raw2)
	}()

	if !h.Drain(10 * time.Second) {
		t.Fatal("Drain timed out with cooperating subscribers")
	}
	res := <-resCh
	if res.err != nil {
		t.Fatalf("client through drain: %v", res.err)
	}
	if got := assertExactlyOnce(t, "drained", res.tr); got != res.tr.Expected {
		t.Fatalf("drain lost packets: %d of %d", got, res.tr.Expected)
	}
	drainers.Wait()

	// The hub is stopped now: late joins get the stream-ended verdict.
	if err := joinErr(t, addr, "drain", newToken(t)); !errors.Is(err, core.ErrStreamOver) {
		t.Fatalf("join after drain: %v, want ErrStreamOver", err)
	}
}

// TestHubDrainTimeout: a stalled subscriber cannot hold shutdown hostage —
// Drain reports the missed deadline and force-closes.
func TestHubDrainTimeout(t *testing.T) {
	h, err := New(Config{
		Stream:          core.Config{Mu: 800, PayloadSize: 1024, Count: 1 << 30},
		StreamID:        "stuck",
		PathWriteBuffer: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go h.Serve(ln)

	stalled := joinOK(t, ln.Addr().String(), "stuck", newToken(t), 4096)
	defer stalled.Close()

	// Let enough backlog build that the stalled path's sender is wedged in
	// Write well past every socket buffer.
	deadline := time.Now().Add(10 * time.Second)
	for h.Generated() < 600 {
		if time.Now().After(deadline) {
			t.Fatal("generation stalled")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if h.Drain(300 * time.Millisecond) {
		t.Fatal("Drain reported success with a wedged subscriber")
	}
	// Drain's timeout path force-closed the hub: Wait must now return.
	h.Wait()
}
