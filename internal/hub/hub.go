// Package hub fans a single live DMP source out to many multipath
// subscribers.
//
// The paper's server (internal/core) serves exactly one client: one CBR
// generator, one queue, one session. A broadcast hub keeps the single
// generator but replaces the queue with a shared ring of the most recent
// LagWindow packets; every subscriber owns a cursor into that ring, so one
// generation goroutine serves all subscribers without per-subscriber copies
// of the queue. Each subscriber is its own DMP multipath session: its path
// connections pop from the subscriber's cursor under the hub lock and block
// in Write, so send-buffer backpressure allocates packets across that
// subscriber's paths exactly as in the single-client scheme — and
// independently of every other subscriber.
//
// A subscriber that cannot keep up falls behind the ring. The hub then
// applies the configured slow-subscriber policy at generation time:
// DropOldest advances the laggard's cursor to the oldest live packet and
// counts the skipped packets as drops (the client sees a sequence gap);
// Evict disconnects the subscriber outright. Either way, one stalled
// subscriber cannot make the generator or its peers late — the per-packet
// cost of a slow client is bounded by the ring, not by the stream.
//
// Joining is a 40-byte wire handshake (core.Join): each path connection
// carries the stream id and a subscriber token, so a client's 2nd..Kth
// connections attach to the same subscription. After the join, each path
// speaks the unchanged v1 stream format, with packet numbers rebased to the
// subscriber's join point so existing receivers (core.Receive, core.Play)
// work verbatim.
//
// The hub also carries the overload-protection layer: admission control
// (MaxSubscribers/MaxConns answered with typed DMPR reject frames), a
// resource governor that keeps subscriber-attributable buffering under
// MaxBytes by walking a degradation ladder (drop backlog → shrink window →
// evict) against the laggiest subscriber first, a hardened accept loop
// (backoff on temporary errors, handshake concurrency cap, configurable
// JoinTimeout against slowloris joins), and graceful drain (BeginDrain /
// Drain). Overload thus degrades the worst laggard's quality instead of
// collapsing the hub — the paper's backpressure story applied to the
// server's own resources.
package hub

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"dmpstream/internal/core"
)

// Policy selects what happens to a subscriber whose lag exceeds the window.
type Policy int

const (
	// DropOldest skips the subscriber's cursor ahead to the oldest packet
	// still in the ring, counting the skipped packets as drops.
	DropOldest Policy = iota
	// Evict disconnects the subscriber.
	Evict
)

func (p Policy) String() string {
	switch p {
	case DropOldest:
		return "drop-oldest"
	case Evict:
		return "evict"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// DefaultJoinTimeout bounds how long an accepted connection may take to
// present its join request before the hub gives up on it (see
// Config.JoinTimeout).
const DefaultJoinTimeout = 10 * time.Second

// DefaultHandshakeLimit caps how many accepted connections may sit in the
// join handshake concurrently (see Config.HandshakeLimit). Beyond it, Serve
// sheds new connections with a server-full reject instead of queuing
// unbounded slowloris candidates.
const DefaultHandshakeLimit = 64

// minShedWindow is the floor of the degradation ladder: the resource
// governor never shrinks a subscriber's effective lag window below this
// many packets — past that rung, the only relief left is eviction.
const minShedWindow = 16

// rejectWriteTimeout bounds the courtesy reject-frame write so a refused
// client that never reads cannot pin a handshake goroutine.
const rejectWriteTimeout = 2 * time.Second

// DefaultReattachGrace is how long a subscriber outlives its last path by
// default, waiting for the client to redial with the same token.
const DefaultReattachGrace = 5 * time.Second

// DefaultResendWindow is the default per-path retransmission window: the
// last packets a dead path wrote that are replayed to the subscriber's
// surviving (or re-attached) paths.
const DefaultResendWindow = 64

// Config describes a broadcast hub.
type Config struct {
	// Stream is the live source (rate, payload, count, fill, stall timeout).
	Stream core.Config
	// StreamID names the stream; joins carrying another id are rejected.
	// Default "live".
	StreamID string
	// LagWindow is the ring size: the number of most recent packets a
	// subscriber may lag behind the generator before Policy applies.
	// Default 1024.
	LagWindow int
	// Policy is the slow-subscriber policy (default DropOldest).
	Policy Policy
	// PathWriteBuffer, when positive, caps each path's kernel send buffer
	// (SetWriteBuffer) so backpressure from a slow subscriber reaches the
	// hub within a bounded number of packets. 0 keeps the kernel default.
	PathWriteBuffer int
	// ReattachGrace keeps a subscription alive after its last path dies
	// abnormally mid-stream, so a client that redials within the window and
	// presents the same token resumes with its original rebased numbering
	// (no wire change — the re-attach is an ordinary join). 0 selects
	// DefaultReattachGrace; negative disables the grace (a subscriber dies
	// with its last path, the pre-resilience behavior).
	ReattachGrace time.Duration
	// ResendWindow is how many of a path's most recently written packets are
	// queued for retransmission to the subscriber's other paths when that
	// path dies — TCP acknowledges bytes to the hub's kernel without telling
	// the hub the client saw them, so the tail of a dead path must be resent
	// to conserve the stream. Duplicates are deduplicated client-side;
	// resends whose packet has already fallen out of the ring are counted as
	// drops. 0 selects DefaultResendWindow; negative disables resends.
	ResendWindow int

	// MaxSubscribers caps concurrently attached subscriptions. A join with a
	// fresh token past the cap is answered with a server-full reject frame
	// (additional paths of already-admitted tokens are unaffected).
	// 0 = unlimited.
	MaxSubscribers int
	// MaxConns caps live path connections across all subscribers; joins past
	// the cap get a server-full reject. 0 = unlimited.
	MaxConns int
	// MaxBytes is the global budget for subscriber-attributable buffered
	// bytes: each subscriber holds (lag + pending resends) × frame bytes of
	// the ring on its behalf. When the sum exceeds MaxBytes the resource
	// governor sheds the laggiest subscriber first, walking the degradation
	// ladder — drop its backlog to its window, shrink the window (halving,
	// floored at minShedWindow), and finally evict. 0 = unlimited.
	MaxBytes int64
	// JoinTimeout bounds how long an accepted connection may take to present
	// its join request; a handshake stalled past it is cut and its slot
	// freed (the slowloris guard). 0 selects DefaultJoinTimeout.
	JoinTimeout time.Duration
	// HandshakeLimit caps connections sitting in the join handshake
	// concurrently; Serve sheds beyond it with a server-full reject.
	// 0 selects DefaultHandshakeLimit.
	HandshakeLimit int
}

func (c Config) withDefaults() (Config, error) {
	var err error
	if c.Stream, err = c.Stream.Normalized(); err != nil {
		return c, err
	}
	if c.StreamID == "" {
		c.StreamID = "live"
	}
	if len(c.StreamID) > core.MaxStreamID {
		return c, fmt.Errorf("hub: stream id %q longer than %d bytes", c.StreamID, core.MaxStreamID)
	}
	if c.LagWindow == 0 {
		c.LagWindow = 1024
	}
	if c.LagWindow < 0 {
		return c, fmt.Errorf("hub: lag window %d < 0", c.LagWindow)
	}
	if c.Policy != DropOldest && c.Policy != Evict {
		return c, fmt.Errorf("hub: unknown policy %d", int(c.Policy))
	}
	if c.PathWriteBuffer < 0 {
		return c, fmt.Errorf("hub: path write buffer %d < 0", c.PathWriteBuffer)
	}
	switch {
	case c.ReattachGrace == 0:
		c.ReattachGrace = DefaultReattachGrace
	case c.ReattachGrace < 0:
		c.ReattachGrace = 0 // disabled
	}
	switch {
	case c.ResendWindow == 0:
		c.ResendWindow = DefaultResendWindow
	case c.ResendWindow < 0:
		c.ResendWindow = 0 // disabled
	}
	if c.ResendWindow > c.LagWindow {
		// Resends beyond the ring could never be served anyway.
		c.ResendWindow = c.LagWindow
	}
	if c.MaxSubscribers < 0 {
		return c, fmt.Errorf("hub: max subscribers %d < 0", c.MaxSubscribers)
	}
	if c.MaxConns < 0 {
		return c, fmt.Errorf("hub: max conns %d < 0", c.MaxConns)
	}
	if c.MaxBytes < 0 {
		return c, fmt.Errorf("hub: max bytes %d < 0", c.MaxBytes)
	}
	if c.JoinTimeout < 0 {
		return c, fmt.Errorf("hub: join timeout %v < 0", c.JoinTimeout)
	}
	if c.JoinTimeout == 0 {
		c.JoinTimeout = DefaultJoinTimeout
	}
	if c.HandshakeLimit < 0 {
		return c, fmt.Errorf("hub: handshake limit %d < 0", c.HandshakeLimit)
	}
	if c.HandshakeLimit == 0 {
		c.HandshakeLimit = DefaultHandshakeLimit
	}
	return c, nil
}

// ErrStreamEnded is returned by Attach once the stream is over or the hub
// has been closed.
var ErrStreamEnded = errors.New("hub: stream ended")

// slot is one generated packet in the shared ring.
type slot struct {
	gen     int64  // generation timestamp, UnixNano
	payload []byte // filled content; nil when Config.Stream.Fill is nil
}

// subscriber is one multipath subscription: a cursor into the ring plus the
// path connections attached under its token. All mutable fields are guarded
// by the hub mutex; first and token are immutable after creation.
type subscriber struct {
	token core.Token
	first int64 // absolute sequence at join; frames are rebased to it

	cur      int64      // guarded by mu (the hub's); absolute next sequence to fetch
	paths    int        // guarded by mu; live path senders
	nextPath int        // guarded by mu; next path index to hand out
	sent     int64      // guarded by mu
	dropped  int64      // guarded by mu
	evicted  bool       // guarded by mu
	conns    []net.Conn // guarded by mu
	window   int        // guarded by mu; effective lag window, shrunk by the governor
	sheds    int64      // guarded by mu; degradation-ladder steps applied

	// Path-death bookkeeping. resend holds absolute sequences a dead path
	// may not have delivered, served (oldest first) before the cursor by any
	// of the subscriber's paths. deaths counts abnormal path deaths;
	// deadPaths counts deaths not yet matched by a re-attach. graceGen
	// versions the pending grace timer so a timer from an earlier death
	// cannot delete a subscriber that re-attached and died again.
	resend    []int64 // guarded by mu; sorted ascending, deduplicated
	deaths    int64   // guarded by mu
	deadPaths int     // guarded by mu
	graceGen  int64   // guarded by mu
}

// Hub is a running broadcast: one generator, a shared ring, N subscribers.
type Hub struct {
	cfg Config

	mu   sync.Mutex
	cond *sync.Cond
	wg   sync.WaitGroup

	ring      []slot // guarded by mu
	head      int64  // guarded by mu; absolute sequence of the next packet to generate
	generated int64  // guarded by mu
	stopped   bool   // guarded by mu
	genDone   bool   // guarded by mu
	closed    bool   // guarded by mu
	draining  bool   // guarded by mu; admission closed, live subscriptions finishing
	start     time.Time
	stopCh    chan struct{} // closed once the stream is over (Stop/Close/Count)
	stopSig   bool          // guarded by mu; stopCh already closed

	subs    map[core.Token]*subscriber // guarded by mu
	lns     []net.Listener             // guarded by mu
	pending map[net.Conn]struct{}      // guarded by mu; accepted conns mid-handshake

	totalSent     int64 // guarded by mu
	totalDropped  int64 // guarded by mu
	evictedCount  int64 // guarded by mu
	pathErrors    int64 // guarded by mu
	totalResent   int64 // guarded by mu; packets replayed from resend queues
	reattached    int64 // guarded by mu; joins that revived a dead path's slot
	pathConns     int   // guarded by mu; attached path connections (MaxConns accounting)
	rejected      int64 // guarded by mu; joins refused with a reject frame
	shedCount     int64 // guarded by mu; degradation-ladder steps across all subscribers
	acceptRetries int64 // guarded by mu; temporary Accept errors retried with backoff
}

// New validates cfg, starts the live generator and returns the hub.
// Subscribers attach via Serve or Attach; shut down with Stop+Wait
// (graceful: every path drains and receives an end marker) or Close.
func New(cfg Config) (*Hub, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	h := &Hub{
		cfg:     cfg,
		ring:    make([]slot, cfg.LagWindow),
		subs:    make(map[core.Token]*subscriber),
		pending: make(map[net.Conn]struct{}),
		start:   time.Now(),
		stopCh:  make(chan struct{}),
	}
	h.cond = sync.NewCond(&h.mu)
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		h.generate()
	}()
	return h, nil
}

// generate produces packets on the CBR schedule into the ring, applying the
// slow-subscriber policy after each packet.
func (h *Hub) generate() {
	period := time.Duration(float64(time.Second) / h.cfg.Stream.Mu)
	base := time.Now()
	for n := int64(0); ; n++ {
		if h.cfg.Stream.Count > 0 && n >= h.cfg.Stream.Count {
			break
		}
		// Drift-free schedule: packet n is due at base + n/µ.
		due := base.Add(time.Duration(n) * period)
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		h.mu.Lock()
		if h.stopped {
			h.mu.Unlock()
			break
		}
		s := &h.ring[h.head%int64(len(h.ring))]
		s.gen = time.Now().UnixNano()
		if h.cfg.Stream.Fill != nil {
			if s.payload == nil {
				s.payload = make([]byte, h.cfg.Stream.PayloadSize)
			}
			h.cfg.Stream.Fill(uint32(h.head), s.payload)
		}
		h.head++
		h.generated++
		h.enforceLagLocked()
		h.governLocked()
		h.cond.Broadcast()
		h.mu.Unlock()
	}
	h.mu.Lock()
	h.genDone = true
	h.signalStopLocked()
	h.cond.Broadcast()
	h.mu.Unlock()
}

// signalStopLocked closes stopCh exactly once, waking pending grace timers
// so Wait never blocks on a dead subscriber's countdown. Caller holds h.mu.
func (h *Hub) signalStopLocked() {
	if !h.stopSig {
		h.stopSig = true
		close(h.stopCh)
	}
}

// enforceLagLocked applies the slow-subscriber policy to every subscriber
// whose cursor has fallen behind its effective window — the configured
// LagWindow, or less once the resource governor has shrunk it. Caller
// holds h.mu.
func (h *Hub) enforceLagLocked() {
	for _, sub := range h.subs {
		if sub.evicted {
			continue
		}
		win := int64(sub.window)
		if win > int64(len(h.ring)) {
			win = int64(len(h.ring))
		}
		oldest := h.head - win
		if oldest <= 0 || sub.cur >= oldest {
			continue
		}
		switch h.cfg.Policy {
		case DropOldest:
			skipped := oldest - sub.cur
			sub.dropped += skipped
			h.totalDropped += skipped
			sub.cur = oldest
		case Evict:
			h.evictLocked(sub)
		}
	}
}

// heldLocked is the buffered-byte account of one subscriber: the ring
// packets it still has to fetch (its lag) plus its pending resends, at one
// frame each. Caller holds h.mu.
func (h *Hub) heldLocked(sub *subscriber) int64 {
	frame := int64(core.FrameHeaderSize + h.cfg.Stream.PayloadSize)
	return (h.head - sub.cur + int64(len(sub.resend))) * frame
}

// governLocked enforces the global MaxBytes budget over subscriber
// holdings. While the sum exceeds the budget it sheds the laggiest
// subscriber with one degradation-ladder step at a time, so overload
// degrades the worst laggard's quality instead of the whole hub's. Caller
// holds h.mu.
func (h *Hub) governLocked() {
	if h.cfg.MaxBytes <= 0 {
		return
	}
	for {
		var total, worstHeld int64
		var worst *subscriber
		for _, sub := range h.subs {
			if sub.evicted {
				continue
			}
			held := h.heldLocked(sub)
			total += held
			if held > worstHeld {
				worst, worstHeld = sub, held
			}
		}
		if total <= h.cfg.MaxBytes || worst == nil || worstHeld == 0 {
			return
		}
		h.shedLocked(worst)
	}
}

// shedLocked applies one degradation-ladder step to sub: drop its backlog
// to the current window; if that frees nothing, shrink the window (halving,
// floored at minShedWindow) and drop again; once even the floor holds
// nothing clippable, evict. Caller holds h.mu.
func (h *Hub) shedLocked(sub *subscriber) {
	sub.sheds++
	h.shedCount++
	for {
		if h.clipLocked(sub, int64(sub.window)) > 0 {
			return
		}
		if sub.window <= minShedWindow {
			break
		}
		if w := sub.window / 2; w < minShedWindow {
			sub.window = minShedWindow
		} else {
			sub.window = w
		}
	}
	h.evictLocked(sub)
}

// clipLocked advances sub's cursor to at most win packets behind the live
// edge and sheds resend entries older than that, counting everything
// skipped as drops. It returns the number of packets freed. Caller holds
// h.mu.
func (h *Hub) clipLocked(sub *subscriber, win int64) int64 {
	if win > int64(len(h.ring)) {
		win = int64(len(h.ring))
	}
	oldest := h.head - win
	if oldest <= 0 {
		return 0
	}
	var freed int64
	if sub.cur < oldest {
		skipped := oldest - sub.cur
		sub.dropped += skipped
		h.totalDropped += skipped
		sub.cur = oldest
		freed += skipped
	}
	for len(sub.resend) > 0 && sub.resend[0] < oldest {
		sub.resend = sub.resend[1:]
		sub.dropped++
		h.totalDropped++
		freed++
	}
	return freed
}

// evictLocked disconnects sub and marks it evicted; its paths see closed
// connections and a later re-attach of its token is refused with a typed
// reject. Caller holds h.mu.
func (h *Hub) evictLocked(sub *subscriber) {
	if sub.evicted {
		return
	}
	sub.evicted = true
	h.evictedCount++
	for _, c := range sub.conns {
		_ = c.Close()
	}
}

// pop copies the subscriber's next frame (header + payload) into frame and
// returns its absolute sequence, blocking while the subscriber is caught up
// and generation continues. A dead path's resend queue is served before the
// cursor, so retransmissions jump ahead of new content; resends whose packet
// has already left the ring are dropped and counted. ok=false means the
// stream is over for this subscriber: drained after Stop/Count, evicted, or
// the hub force-closed.
func (h *Hub) pop(sub *subscriber, frame []byte) (seq int64, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for {
		if sub.evicted || h.closed {
			return 0, false
		}
		oldest := h.head - int64(len(h.ring))
		for len(sub.resend) > 0 {
			seq := sub.resend[0]
			sub.resend = sub.resend[1:]
			if seq < oldest {
				// Fell out of the ring while the path was down: the
				// subscriber will see a gap, same as a DropOldest skip.
				sub.dropped++
				h.totalDropped++
				continue
			}
			h.fillFrameLocked(sub, seq, frame)
			h.totalResent++
			return seq, true
		}
		if sub.cur < h.head {
			seq := sub.cur
			h.fillFrameLocked(sub, seq, frame)
			sub.cur++
			return seq, true
		}
		if h.stopped || h.genDone {
			return 0, false
		}
		h.cond.Wait()
	}
}

// fillFrameLocked renders ring packet seq into frame with the subscriber's
// rebased numbering (each subscriber sees a standalone 0-based v1 stream).
// Caller holds h.mu and guarantees seq is still in the ring.
func (h *Hub) fillFrameLocked(sub *subscriber, seq int64, frame []byte) {
	s := &h.ring[seq%int64(len(h.ring))]
	core.PutFrameHeader(frame, uint32(seq-sub.first), s.gen)
	if s.payload != nil {
		copy(frame[core.FrameHeaderSize:], s.payload)
	}
	sub.sent++
	h.totalSent++
}

// sendLoop is one subscriber path's sender: stream header, frames popped
// from the subscriber's cursor, end marker. On failure it returns the
// absolute sequences this path wrote most recently (oldest first, the
// in-hand packet last) — TCP may have buffered but never delivered them, so
// finishPath queues them for retransmission on the subscriber's other paths.
func (h *Hub) sendLoop(sub *subscriber, pathIdx, numPaths int, conn net.Conn) (recent []int64, err error) {
	if err := core.WriteStreamHeader(conn, pathIdx, numPaths, h.cfg.Stream.PayloadSize, h.cfg.Stream.Mu); err != nil {
		return nil, fmt.Errorf("hub: path %d header: %w", pathIdx, err)
	}
	frame := make([]byte, core.FrameHeaderSize+h.cfg.Stream.PayloadSize)
	win := h.cfg.ResendWindow
	var ring []int64 // last win sequences written, ring[next%win] next to overwrite
	next := 0
	for {
		seq, ok := h.pop(sub, frame)
		if !ok {
			break
		}
		if err := h.writeFrame(conn, frame); err != nil {
			return append(unrollSeqs(ring, next), seq), fmt.Errorf("hub: path %d write: %w", pathIdx, err)
		}
		if win > 0 {
			if len(ring) < win {
				ring = append(ring, seq)
			} else {
				ring[next%win] = seq
			}
			next++
		}
	}
	// End marker: carries the number of packets generated since this
	// subscriber joined, matching its rebased numbering.
	h.mu.Lock()
	n := h.head - sub.first
	h.mu.Unlock()
	core.PutFrameHeader(frame, core.EndMarker, n)
	if err := h.writeFrame(conn, frame); err != nil {
		return unrollSeqs(ring, next), fmt.Errorf("hub: path %d end marker: %w", pathIdx, err)
	}
	return nil, nil
}

// unrollSeqs returns the ring's contents oldest first.
func unrollSeqs(ring []int64, next int) []int64 {
	if len(ring) == 0 {
		return nil
	}
	out := make([]int64, 0, len(ring)+1)
	if next <= len(ring) {
		return append(out, ring...)
	}
	i := next % len(ring)
	out = append(out, ring[i:]...)
	return append(out, ring[:i]...)
}

func (h *Hub) writeFrame(conn net.Conn, frame []byte) error {
	if d := h.cfg.Stream.WriteStallTimeout; d > 0 {
		conn.SetWriteDeadline(time.Now().Add(d))
	}
	_, err := conn.Write(frame)
	return err
}

// rejectConn answers a refused join with the typed reject frame and closes
// the connection. The courtesy write gets a short deadline so a refused
// client that never reads cannot pin the handshake goroutine. Every written
// reject is counted exactly once in Stats.Rejected.
func (h *Hub) rejectConn(conn net.Conn, code core.RejectCode) {
	h.mu.Lock()
	h.rejected++
	h.mu.Unlock()
	conn.SetWriteDeadline(time.Now().Add(rejectWriteTimeout))
	_ = core.WriteReject(conn, code)
	_ = conn.Close()
}

// Attach performs the server side of the join handshake on conn and starts
// a path sender for the joined subscription. It closes conn on any error;
// admission refusals additionally answer with the typed reject frame, and
// the returned error unwraps to the matching core sentinel
// (core.ErrServerFull, core.ErrDraining, ...).
func (h *Hub) Attach(conn net.Conn) error {
	conn.SetReadDeadline(time.Now().Add(h.cfg.JoinTimeout))
	j, err := core.ReadJoin(conn)
	conn.SetReadDeadline(time.Time{})
	if err != nil {
		// Not (or not yet) speaking our protocol: no reject frame owed.
		_ = conn.Close()
		return fmt.Errorf("hub: join: %w", err)
	}
	if j.StreamID != h.cfg.StreamID {
		h.rejectConn(conn, core.RejectUnknownStream)
		return fmt.Errorf("hub: join for stream %q (serving %q): %w",
			j.StreamID, h.cfg.StreamID, &core.RejectError{Code: core.RejectUnknownStream})
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
		if h.cfg.PathWriteBuffer > 0 {
			tc.SetWriteBuffer(h.cfg.PathWriteBuffer)
		}
	}

	h.mu.Lock()
	if h.closed || h.stopped || h.genDone {
		h.mu.Unlock()
		h.rejectConn(conn, core.RejectStreamEnded)
		return ErrStreamEnded
	}
	sub := h.subs[j.Token]
	if sub == nil {
		// A fresh token asks for admission; re-attaches of live tokens are
		// exempt so a drain or a full house never strands a subscription
		// that is only trying to heal a flapped path.
		var code core.RejectCode
		switch {
		case h.draining:
			code = core.RejectDraining
		case h.cfg.MaxSubscribers > 0 && len(h.subs) >= h.cfg.MaxSubscribers:
			code = core.RejectServerFull
		}
		if code != 0 {
			h.mu.Unlock()
			h.rejectConn(conn, code)
			return fmt.Errorf("hub: join refused: %w", &core.RejectError{Code: code})
		}
	}
	if h.cfg.MaxConns > 0 && h.pathConns >= h.cfg.MaxConns {
		h.mu.Unlock()
		h.rejectConn(conn, core.RejectServerFull)
		return fmt.Errorf("hub: %d connections attached: %w",
			h.cfg.MaxConns, &core.RejectError{Code: core.RejectServerFull})
	}
	if sub == nil {
		sub = &subscriber{token: j.Token, first: h.head, cur: h.head, window: h.cfg.LagWindow}
		h.subs[j.Token] = sub
	}
	if sub.evicted {
		h.mu.Unlock()
		h.rejectConn(conn, core.RejectEvicted)
		return fmt.Errorf("hub: subscriber %s: %w",
			j.Token, &core.RejectError{Code: core.RejectEvicted})
	}
	pathIdx := sub.nextPath
	sub.nextPath++
	sub.paths++
	h.pathConns++
	numPaths := sub.paths
	sub.conns = append(sub.conns, conn)
	if sub.deadPaths > 0 {
		// This join revives a slot an abnormal death left open: the token
		// survived the flap and the subscription resumes where it was.
		sub.deadPaths--
		h.reattached++
	}
	h.wg.Add(1)
	h.mu.Unlock()

	go func() {
		defer h.wg.Done()
		recent, err := h.sendLoop(sub, pathIdx, numPaths, conn)
		h.finishPath(sub, conn, recent, err)
	}()
	return nil
}

// finishPath retires one path sender. A path that drained normally (or died
// after the stream ended) just goes away, and the subscriber disappears with
// its last path. A path that died abnormally mid-stream instead queues its
// recent writes for retransmission and, if it was the subscriber's last
// path, starts the re-attach grace countdown: the subscription stays in the
// hub so a redialing client's token still resolves, and is reaped only if
// the window expires (or the stream ends) with no path back.
func (h *Hub) finishPath(sub *subscriber, conn net.Conn, recent []int64, err error) {
	_ = conn.Close()
	h.mu.Lock()
	defer h.mu.Unlock()
	sub.paths--
	h.pathConns--
	for i, c := range sub.conns {
		if c == conn {
			sub.conns = append(sub.conns[:i], sub.conns[i+1:]...)
			break
		}
	}
	abnormal := err != nil && !sub.evicted && !h.closed
	if abnormal {
		h.pathErrors++
	}
	if abnormal && !h.stopped && !h.genDone {
		sub.deaths++
		sub.deadPaths++
		if len(recent) > 0 {
			sub.resend = mergeSeqs(sub.resend, recent)
			// A resend queue is held memory like any backlog: re-check the
			// global budget now instead of waiting for the next packet.
			h.governLocked()
		}
		if sub.paths > 0 {
			return // surviving paths serve the resends
		}
		if h.cfg.ReattachGrace > 0 {
			sub.graceGen++
			gen := sub.graceGen
			h.wg.Add(1)
			go func() {
				defer h.wg.Done()
				t := time.NewTimer(h.cfg.ReattachGrace)
				select {
				case <-t.C:
				case <-h.stopCh: // stream over: no re-attach can succeed
					t.Stop()
				}
				h.mu.Lock()
				// A re-attach (paths > 0) or a newer death's timer
				// (graceGen moved on) supersedes this countdown.
				if sub.paths == 0 && sub.graceGen == gen {
					delete(h.subs, sub.token)
				}
				h.mu.Unlock()
			}()
			return
		}
	}
	if sub.paths == 0 {
		delete(h.subs, sub.token)
	}
}

// mergeSeqs folds newly dead sequences into a sorted, deduplicated resend
// queue so retransmits go out oldest first and at most once.
func mergeSeqs(have, add []int64) []int64 {
	out := make([]int64, 0, len(have)+len(add))
	out = append(out, have...)
	out = append(out, add...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	n := 0
	for i, s := range out {
		if i == 0 || s != out[n-1] {
			out[n] = s
			n++
		}
	}
	return out[:n]
}

// Serve accepts connections on ln and attaches each as a subscriber path.
// It returns when ln is closed; per-connection join failures are counted in
// Stats, not returned. Temporary accept errors (EMFILE storms, transient
// kernel refusals) are retried with capped exponential backoff instead of
// tearing the accept loop down, and connections beyond the handshake
// concurrency cap are shed with a server-full reject.
func (h *Hub) Serve(ln net.Listener) error {
	h.mu.Lock()
	h.lns = append(h.lns, ln)
	closed := h.closed
	h.mu.Unlock()
	if closed {
		_ = ln.Close()
		return ErrStreamEnded
	}
	var backoff time.Duration
	for {
		conn, err := ln.Accept()
		if err != nil {
			h.mu.Lock()
			if h.closed || h.stopped {
				h.mu.Unlock()
				return nil
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Temporary() {
				// An accept storm that exhausts descriptors surfaces here as
				// a temporary error: hold the loop together and retry once
				// some in-flight connection retires a descriptor.
				h.acceptRetries++
				h.mu.Unlock()
				switch {
				case backoff <= 0:
					backoff = 5 * time.Millisecond
				case backoff < time.Second:
					backoff *= 2
					if backoff > time.Second {
						backoff = time.Second
					}
				}
				t := time.NewTimer(backoff)
				select {
				case <-t.C:
				case <-h.stopCh:
					t.Stop()
				}
				continue
			}
			h.mu.Unlock()
			return err
		}
		backoff = 0
		// The handshake goroutine is wg-tracked and its conn is registered
		// so Close can cut a client that stalls mid-handshake instead of
		// leaking the goroutine for up to JoinTimeout. Adding to wg under
		// mu with closed checked first keeps Add ordered before Close's
		// Wait.
		h.mu.Lock()
		if h.closed {
			h.mu.Unlock()
			_ = conn.Close()
			continue
		}
		if h.stopped || h.genDone {
			// The stream is over, so Attach would refuse anyway — answer
			// inline rather than spawn a tracked goroutine, because a
			// Drain/Close may already be in wg.Wait and an Add now would
			// race it. The reject write is deadline-bounded.
			h.mu.Unlock()
			h.rejectConn(conn, core.RejectStreamEnded)
			continue
		}
		if len(h.pending) >= h.cfg.HandshakeLimit {
			// Too many handshakes in flight — likely a slowloris herd. Shed
			// the newcomer; rejectConn relocks, so drop mu first.
			h.mu.Unlock()
			h.rejectConn(conn, core.RejectServerFull)
			continue
		}
		h.pending[conn] = struct{}{}
		h.wg.Add(1)
		h.mu.Unlock()
		go func() {
			defer h.wg.Done()
			err := h.Attach(conn)
			h.mu.Lock()
			delete(h.pending, conn)
			if err != nil && !errors.Is(err, ErrStreamEnded) && !errors.Is(err, core.ErrRejected) {
				// Admission refusals are counted in Rejected by rejectConn;
				// only protocol-level failures are path errors.
				h.pathErrors++
			}
			h.mu.Unlock()
		}()
	}
}

// BeginDrain closes admission: joins presenting fresh tokens are refused
// with a draining reject, while live subscriptions (including re-attaches
// of their tokens) continue unaffected. Generation is not touched — pair
// with Stop, or use Drain for the full graceful-shutdown sequence.
func (h *Hub) BeginDrain() {
	h.mu.Lock()
	h.draining = true
	h.mu.Unlock()
}

// Draining reports whether admission has been closed by BeginDrain/Drain.
func (h *Hub) Draining() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.draining
}

// Drain is the graceful-shutdown ladder: stop admitting, stop generating,
// and give live paths until timeout to drain their end markers; whatever is
// still attached then is force-closed. It returns true when every path
// drained within the deadline.
func (h *Hub) Drain(timeout time.Duration) bool {
	h.BeginDrain()
	h.Stop()
	done := make(chan struct{})
	go func() {
		h.wg.Wait()
		close(done)
	}()
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-done:
		return true
	case <-t.C:
		h.Close()
		return false
	}
}

// Stop ends generation. Path senders drain the remaining ring contents and
// emit end markers; follow with Wait for a graceful shutdown.
func (h *Hub) Stop() {
	h.mu.Lock()
	h.stopped = true
	h.signalStopLocked()
	h.cond.Broadcast()
	h.mu.Unlock()
}

// Wait blocks until generation has ended (Stop or Count) and every path
// sender has drained or failed. A subscriber that has stopped reading can
// hold Wait up indefinitely unless Config.Stream.WriteStallTimeout is set
// or Close is used.
func (h *Hub) Wait() {
	h.wg.Wait()
}

// Close force-stops the hub: generation ends, all listeners and subscriber
// connections are closed, and new attaches are refused. It waits for the
// sender goroutines to exit. Unlike Stop+Wait, paths are NOT drained.
func (h *Hub) Close() {
	h.mu.Lock()
	h.closed = true
	h.stopped = true
	h.signalStopLocked()
	for _, ln := range h.lns {
		_ = ln.Close()
	}
	for _, sub := range h.subs {
		for _, c := range sub.conns {
			_ = c.Close()
		}
	}
	for c := range h.pending {
		_ = c.Close()
	}
	h.cond.Broadcast()
	h.mu.Unlock()
	h.wg.Wait()
}

// Generated returns the number of packets generated so far.
func (h *Hub) Generated() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.generated
}

// SubscriberStats is one subscriber's snapshot within Stats.
type SubscriberStats struct {
	Token    string // hex token
	Paths    int    // live path connections
	FirstSeq int64  // absolute sequence at join
	Lag      int64  // packets behind the generator
	Sent     int64  // packets handed to this subscriber's paths
	Dropped  int64  // packets skipped by DropOldest or lost from resend queues
	Deaths   int64  // abnormal path deaths so far
	Pending  int    // resend-queue packets not yet retransmitted
	Window   int    // effective lag window (LagWindow until the governor shrinks it)
	Sheds    int64  // degradation-ladder steps applied to this subscriber
	Held     int64  // buffered bytes attributed to this subscriber
	Evicted  bool
}

// Stats is a point-in-time snapshot of the hub.
type Stats struct {
	StreamID      string
	Generated     int64         // packets generated
	Subscribers   int           // currently attached subscribers
	Conns         int           // attached path connections
	Handshaking   int           // accepted connections still in the join handshake
	Sent          int64         // packets written across all subscribers
	Dropped       int64         // packets skipped by DropOldest, all subscribers
	Evicted       int64         // subscribers evicted so far
	Rejected      int64         // joins refused with a reject frame (full, draining, ...)
	Shed          int64         // degradation-ladder steps taken by the resource governor
	BytesHeld     int64         // buffered bytes currently attributed to subscribers
	AcceptRetries int64         // temporary accept errors retried with backoff
	PathErrors    int64         // paths that ended in an error (left, stalled out, bad join)
	Resent        int64         // packets retransmitted from dead paths' windows
	Reattached    int64         // joins that revived a dead path within the grace
	Draining      bool          // admission closed, live subscriptions finishing
	Elapsed       time.Duration // since the hub started
	GoodputPkts   float64       // aggregate delivered packets per second
	Subs          []SubscriberStats
}

// Stats returns a snapshot of the hub and its current subscribers.
func (h *Hub) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := Stats{
		StreamID:      h.cfg.StreamID,
		Generated:     h.generated,
		Subscribers:   len(h.subs),
		Conns:         h.pathConns,
		Handshaking:   len(h.pending),
		Sent:          h.totalSent,
		Dropped:       h.totalDropped,
		Evicted:       h.evictedCount,
		Rejected:      h.rejected,
		Shed:          h.shedCount,
		AcceptRetries: h.acceptRetries,
		PathErrors:    h.pathErrors,
		Resent:        h.totalResent,
		Reattached:    h.reattached,
		Draining:      h.draining,
		Elapsed:       time.Since(h.start),
	}
	if s := st.Elapsed.Seconds(); s > 0 {
		st.GoodputPkts = float64(st.Sent) / s
	}
	for _, sub := range h.subs {
		held := int64(0)
		if !sub.evicted {
			held = h.heldLocked(sub)
			st.BytesHeld += held
		}
		st.Subs = append(st.Subs, SubscriberStats{
			Token:    sub.token.String(),
			Paths:    sub.paths,
			FirstSeq: sub.first,
			Lag:      h.head - sub.cur,
			Sent:     sub.sent,
			Dropped:  sub.dropped,
			Deaths:   sub.deaths,
			Pending:  len(sub.resend),
			Window:   sub.window,
			Sheds:    sub.sheds,
			Held:     held,
			Evicted:  sub.evicted,
		})
	}
	sort.Slice(st.Subs, func(i, j int) bool {
		if st.Subs[i].FirstSeq != st.Subs[j].FirstSeq {
			return st.Subs[i].FirstSeq < st.Subs[j].FirstSeq
		}
		return st.Subs[i].Token < st.Subs[j].Token
	})
	return st
}
