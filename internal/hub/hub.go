// Package hub fans a single live DMP source out to many multipath
// subscribers.
//
// The paper's server (internal/core) serves exactly one client: one CBR
// generator, one queue, one session. A broadcast hub keeps the single
// generator but replaces the queue with a shared ring of the most recent
// LagWindow packets; every subscriber owns a cursor into that ring, so one
// generation goroutine serves all subscribers without per-subscriber copies
// of the queue. Each subscriber is its own DMP multipath session: its path
// connections pop from the subscriber's cursor and block in Write, so
// send-buffer backpressure allocates packets across that subscriber's paths
// exactly as in the single-client scheme — and independently of every other
// subscriber.
//
// The subscriber population is sharded: each token hashes to one of
// Config.Shards per-core worker groups, and a shard's mutex covers exactly
// its own subscribers' cursors, resend queues and send loops. The generator
// publishes each packet into a shared ring (exclusive lock, one writer) and
// then wakes the shards, which enforce the lag policy for their own
// laggards; send loops copy frames out of the ring under a shared read
// lock. Ring advance, lag enforcement and fan-out therefore never
// serialize on a single hub-wide mutex — the only cross-shard points are
// admission (control plane), the byte-budget governor, and Stats, none of
// which sit on the frame hot path. Shards=1 degenerates to the historical
// single-lock hub, which the fan-out benchmark uses as its comparison
// baseline.
//
// A subscriber that cannot keep up falls behind the ring. The hub then
// applies the configured slow-subscriber policy at generation time:
// DropOldest advances the laggard's cursor to the oldest live packet and
// counts the skipped packets as drops (the client sees a sequence gap);
// Evict disconnects the subscriber outright. Either way, one stalled
// subscriber cannot make the generator or its peers late — the per-packet
// cost of a slow client is bounded by the ring, not by the stream.
//
// Joining is a 40-byte wire handshake (core.Join): each path connection
// carries the stream id and a subscriber token, so a client's 2nd..Kth
// connections attach to the same subscription. After the join, each path
// speaks the unchanged v1 stream format, with packet numbers rebased to the
// subscriber's join point so existing receivers (core.Receive, core.Play)
// work verbatim. A hub serves exactly one stream id; internal/registry
// multiplexes many hubs behind one accept loop, routing each join by the
// stream id it carries (AttachJoined is that entry point).
//
// The hub also carries the overload-protection layer: admission control
// (MaxSubscribers/MaxConns answered with typed DMPR reject frames), a
// resource governor that keeps subscriber-attributable buffering under
// MaxBytes by walking a degradation ladder (drop backlog → shrink window →
// evict) against the laggiest subscriber first, a hardened accept loop
// (backoff on temporary errors, handshake concurrency cap, configurable
// JoinTimeout against slowloris joins), and graceful drain (BeginDrain /
// Drain). Overload thus degrades the worst laggard's quality instead of
// collapsing the hub — the paper's backpressure story applied to the
// server's own resources.
package hub

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dmpstream/internal/core"
)

// Policy selects what happens to a subscriber whose lag exceeds the window.
type Policy int

const (
	// DropOldest skips the subscriber's cursor ahead to the oldest packet
	// still in the ring, counting the skipped packets as drops.
	DropOldest Policy = iota
	// Evict disconnects the subscriber.
	Evict
)

func (p Policy) String() string {
	switch p {
	case DropOldest:
		return "drop-oldest"
	case Evict:
		return "evict"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Delivery selects how frames travel from the shared ring to a path
// connection.
type Delivery int

const (
	// DeliveryZeroCopy (the default) pins the shared ring buffer under the
	// read lock and hands [patched per-subscriber header, shared payload]
	// to the connection as one vectored write per sender wakeup, batching
	// consecutive ready frames. The payload bytes are never copied in user
	// space; only the FrameHeaderSize header patch is rendered per frame.
	DeliveryZeroCopy Delivery = iota
	// DeliveryCopy renders every frame through the ring.frame copy point
	// into a per-path buffer — the historical delivery path, kept as the
	// benchmark's copying baseline and the simplest ownership story.
	DeliveryCopy
)

func (d Delivery) String() string {
	switch d {
	case DeliveryZeroCopy:
		return "zero-copy"
	case DeliveryCopy:
		return "copy"
	default:
		return fmt.Sprintf("delivery(%d)", int(d))
	}
}

// DefaultWriteBatch caps how many ready frames a zero-copy sender drains
// into one vectored write per wakeup (see Config.WriteBatch).
const DefaultWriteBatch = 32

// maxTickBurst bounds how many overdue packets one generator tick
// publishes before waking the shards: a generator catching up after a
// stall still coalesces wakeups, but never laps more than this many
// packets between two lag-policy passes.
const maxTickBurst = 64

// DefaultJoinTimeout bounds how long an accepted connection may take to
// present its join request before the hub gives up on it (see
// Config.JoinTimeout).
const DefaultJoinTimeout = 10 * time.Second

// DefaultHandshakeLimit caps how many accepted connections may sit in the
// join handshake concurrently (see Config.HandshakeLimit). Beyond it, Serve
// sheds new connections with a server-full reject instead of queuing
// unbounded slowloris candidates.
const DefaultHandshakeLimit = 64

// MaxShards bounds Config.Shards: past a few dozen shards the per-packet
// wake walk costs more than the contention it avoids.
const MaxShards = 64

// minShedWindow is the floor of the degradation ladder: the resource
// governor never shrinks a subscriber's effective lag window below this
// many packets — past that rung, the only relief left is eviction.
const minShedWindow = 16

// rejectWriteTimeout bounds the courtesy reject-frame write so a refused
// client that never reads cannot pin a handshake goroutine.
const rejectWriteTimeout = 2 * time.Second

// DefaultReattachGrace is how long a subscriber outlives its last path by
// default, waiting for the client to redial with the same token.
const DefaultReattachGrace = 5 * time.Second

// DefaultResendWindow is the default per-path retransmission window: the
// last packets a dead path wrote that are replayed to the subscriber's
// surviving (or re-attached) paths.
const DefaultResendWindow = 64

// Config describes a broadcast hub.
type Config struct {
	// Stream is the live source (rate, payload, count, fill, stall timeout).
	Stream core.Config
	// ExternalSource disables the internal CBR generator: frames are
	// injected by the hub's owner through PublishAt at absolute sequences —
	// the edge-relay mode, where the frame source is an upstream
	// subscription instead of a local generator. Stream.Count and
	// Stream.Fill are ignored; the stream ends when the owner calls Stop
	// (or Fail). Stream.Mu and PayloadSize still describe the feed — they
	// are announced in every path's stream header, so set them from the
	// upstream's own header.
	ExternalSource bool
	// StreamID names the stream; joins carrying another id are rejected.
	// Default "live".
	StreamID string
	// LagWindow is the ring size: the number of most recent packets a
	// subscriber may lag behind the generator before Policy applies.
	// Default 1024.
	LagWindow int
	// Policy is the slow-subscriber policy (default DropOldest).
	Policy Policy
	// Delivery selects the fan-out delivery path: DeliveryZeroCopy (the
	// default) pins shared ring buffers and issues one vectored write of
	// [patched header, shared payload] pairs per sender wakeup;
	// DeliveryCopy renders each frame through the ring.frame copy point
	// into a per-path buffer (the historical path, kept as the benchmark
	// baseline).
	Delivery Delivery
	// WriteBatch caps how many ready frames a zero-copy sender drains into
	// one vectored write when it wakes. 0 selects DefaultWriteBatch;
	// ignored under DeliveryCopy.
	WriteBatch int
	// PoisonPool turns on the payload pool's poison-on-put debug mode:
	// released buffers are filled with a poison byte and verified intact on
	// reuse, so a use-after-release write trips a counter (Stats.Pool)
	// instead of silently corrupting a live frame. Costs one buffer scan
	// per publish and per release — meant for chaos/soak builds.
	PoisonPool bool
	// Shards is how many per-core worker groups the subscriber population
	// is hashed across; each shard's lock covers only its own subscribers'
	// cursors and send loops. 0 selects GOMAXPROCS (capped at MaxShards);
	// 1 reproduces the historical single-lock hub.
	Shards int
	// PathWriteBuffer, when positive, caps each path's kernel send buffer
	// (SetWriteBuffer) so backpressure from a slow subscriber reaches the
	// hub within a bounded number of packets. 0 keeps the kernel default.
	PathWriteBuffer int
	// ReattachGrace keeps a subscription alive after its last path dies
	// abnormally mid-stream, so a client that redials within the window and
	// presents the same token resumes with its original rebased numbering
	// (no wire change — the re-attach is an ordinary join). 0 selects
	// DefaultReattachGrace; negative disables the grace (a subscriber dies
	// with its last path, the pre-resilience behavior).
	ReattachGrace time.Duration
	// ResendWindow is how many of a path's most recently written packets are
	// queued for retransmission to the subscriber's other paths when that
	// path dies — TCP acknowledges bytes to the hub's kernel without telling
	// the hub the client saw them, so the tail of a dead path must be resent
	// to conserve the stream. Duplicates are deduplicated client-side;
	// resends whose packet has already fallen out of the ring are counted as
	// drops. 0 selects DefaultResendWindow; negative disables resends.
	ResendWindow int

	// MaxSubscribers caps concurrently attached subscriptions. A join with a
	// fresh token past the cap is answered with a server-full reject frame
	// (additional paths of already-admitted tokens are unaffected).
	// 0 = unlimited.
	MaxSubscribers int
	// MaxConns caps live path connections across all subscribers; joins past
	// the cap get a server-full reject. 0 = unlimited.
	MaxConns int
	// MaxBytes is the global budget for subscriber-attributable buffered
	// bytes. Ring payloads are shared buffers, so their bytes are charged
	// once — the span from the oldest packet any subscriber still needs up
	// to the live edge — while each subscriber is charged the
	// FrameHeaderSize header patch for every frame it has yet to take
	// (lag + pending resends). When the sum exceeds MaxBytes the resource
	// governor sheds the laggiest subscriber first, walking the degradation
	// ladder — drop its backlog to its window, shrink the window (halving,
	// floored at minShedWindow), and finally evict. 0 = unlimited.
	MaxBytes int64
	// JoinTimeout bounds how long an accepted connection may take to present
	// its join request; a handshake stalled past it is cut and its slot
	// freed (the slowloris guard). 0 selects DefaultJoinTimeout.
	JoinTimeout time.Duration
	// HandshakeLimit caps connections sitting in the join handshake
	// concurrently; Serve sheds beyond it with a server-full reject.
	// 0 selects DefaultHandshakeLimit.
	HandshakeLimit int
}

func (c Config) withDefaults() (Config, error) {
	var err error
	if c.Stream, err = c.Stream.Normalized(); err != nil {
		return c, err
	}
	if c.StreamID == "" {
		c.StreamID = "live"
	}
	if err := core.ValidateStreamID(c.StreamID); err != nil {
		return c, fmt.Errorf("hub: %w", err)
	}
	if c.LagWindow == 0 {
		c.LagWindow = 1024
	}
	if c.LagWindow < 0 {
		return c, fmt.Errorf("hub: lag window %d < 0", c.LagWindow)
	}
	if c.Policy != DropOldest && c.Policy != Evict {
		return c, fmt.Errorf("hub: unknown policy %d", int(c.Policy))
	}
	if c.Delivery != DeliveryZeroCopy && c.Delivery != DeliveryCopy {
		return c, fmt.Errorf("hub: unknown delivery %d", int(c.Delivery))
	}
	if c.WriteBatch < 0 {
		return c, fmt.Errorf("hub: write batch %d < 0", c.WriteBatch)
	}
	if c.WriteBatch == 0 {
		c.WriteBatch = DefaultWriteBatch
	}
	if c.Shards < 0 {
		return c, fmt.Errorf("hub: shards %d < 0", c.Shards)
	}
	if c.Shards == 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.Shards > MaxShards {
		c.Shards = MaxShards
	}
	if c.PathWriteBuffer < 0 {
		return c, fmt.Errorf("hub: path write buffer %d < 0", c.PathWriteBuffer)
	}
	switch {
	case c.ReattachGrace == 0:
		c.ReattachGrace = DefaultReattachGrace
	case c.ReattachGrace < 0:
		c.ReattachGrace = 0 // disabled
	}
	switch {
	case c.ResendWindow == 0:
		c.ResendWindow = DefaultResendWindow
	case c.ResendWindow < 0:
		c.ResendWindow = 0 // disabled
	}
	if c.ResendWindow > c.LagWindow {
		// Resends beyond the ring could never be served anyway.
		c.ResendWindow = c.LagWindow
	}
	if c.MaxSubscribers < 0 {
		return c, fmt.Errorf("hub: max subscribers %d < 0", c.MaxSubscribers)
	}
	if c.MaxConns < 0 {
		return c, fmt.Errorf("hub: max conns %d < 0", c.MaxConns)
	}
	if c.MaxBytes < 0 {
		return c, fmt.Errorf("hub: max bytes %d < 0", c.MaxBytes)
	}
	if c.JoinTimeout < 0 {
		return c, fmt.Errorf("hub: join timeout %v < 0", c.JoinTimeout)
	}
	if c.JoinTimeout == 0 {
		c.JoinTimeout = DefaultJoinTimeout
	}
	if c.HandshakeLimit < 0 {
		return c, fmt.Errorf("hub: handshake limit %d < 0", c.HandshakeLimit)
	}
	if c.HandshakeLimit == 0 {
		c.HandshakeLimit = DefaultHandshakeLimit
	}
	return c, nil
}

// ErrStreamEnded is returned by Attach once the stream is over or the hub
// has been closed.
var ErrStreamEnded = errors.New("hub: stream ended")

// Hub is a running broadcast: one generator, a shared ring, N subscribers
// spread over per-core shards.
//
// Lock hierarchy (see DESIGN.md): registry.Registry.mu ≺ Hub.mu ≺
// Hub.govMu ≺ shard.mu ≺ ring.mu. The frame hot path (shard.pop →
// ring.frame) takes only the last two, and ring.mu only shared.
type Hub struct {
	cfg Config

	pool   *bufPool
	ring   *ring
	shards []*shard
	wg     sync.WaitGroup
	start  time.Time

	// Lifecycle flags. Read lock-free on the hot path; stores happen under
	// mu so admission's check-then-register stays ordered against
	// Close/Stop's wg.Wait.
	stopped atomic.Bool // generation ordered to end
	genDone atomic.Bool // generator exited
	closed  atomic.Bool // force-closed

	// mu is the control plane: listeners, handshakes, drain state and
	// admission. It is never taken on the frame hot path.
	mu       sync.Mutex
	lns      []net.Listener        // guarded by mu
	pending  map[net.Conn]struct{} // guarded by mu; accepted conns mid-handshake
	draining bool                  // guarded by mu; admission closed, live subscriptions finishing
	stopSig  bool                  // guarded by mu; stopCh already closed
	stopCh   chan struct{}         // closed once the stream is over (Stop/Close/Count)

	// govMu serializes the byte-budget governor with Stats' BytesHeld
	// aggregation and with the generator's publish cycle, so no reader can
	// observe held bytes between a publish (or resend merge) and the
	// governor pass that settles them back under budget.
	govMu sync.Mutex

	// Admission accounting: incremented only under mu (so the caps are
	// strict), decremented atomically wherever a subscriber or path retires.
	subCount  atomic.Int64 // subscribers registered across all shards
	pathConns atomic.Int64 // attached path connections (MaxConns accounting)

	// failCode, when non-zero, is the reject verdict a stopped hub answers
	// joins with instead of the default stream-ended code (see Fail).
	failCode atomic.Uint32

	generated     atomic.Int64
	sourceGaps    atomic.Int64 // external-source sequences skipped past (never published)
	totalSent     atomic.Int64
	totalDropped  atomic.Int64
	evictedCount  atomic.Int64
	pathErrors    atomic.Int64
	totalResent   atomic.Int64 // packets replayed from resend queues
	reattached    atomic.Int64 // joins that revived a dead path's slot
	rejected      atomic.Int64 // joins refused with a reject frame
	shedCount     atomic.Int64 // degradation-ladder steps across all subscribers
	acceptRetries atomic.Int64 // temporary Accept errors retried with backoff

	// Delivery-path instrumentation: how many user-space bytes were
	// memcpy'd to deliver frames (zero-copy: header patches only), and how
	// many vectored writes carried how many frames (batch-size telemetry).
	bytesCopied   atomic.Int64
	writevs       atomic.Int64
	framesBatched atomic.Int64
}

// New validates cfg, starts the live generator and returns the hub.
// Subscribers attach via Serve or Attach; shut down with Stop+Wait
// (graceful: every path drains and receives an end marker) or Close.
func New(cfg Config) (*Hub, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	pool := newBufPool(cfg.Stream.PayloadSize, cfg.PoisonPool)
	h := &Hub{
		cfg:     cfg,
		pool:    pool,
		ring:    newRing(cfg.LagWindow, pool),
		pending: make(map[net.Conn]struct{}),
		start:   time.Now(),
		stopCh:  make(chan struct{}),
	}
	h.shards = make([]*shard, cfg.Shards)
	for i := range h.shards {
		h.shards[i] = newShard(h)
	}
	if !cfg.ExternalSource {
		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			h.generate()
		}()
	}
	return h, nil
}

// shardFor pins a token to its shard. Tokens are random, so the first
// eight bytes hash the population evenly.
func (h *Hub) shardFor(tok core.Token) *shard {
	return h.shards[binary.BigEndian.Uint64(tok[:8])%uint64(len(h.shards))]
}

// StreamID returns the stream id this hub serves.
func (h *Hub) StreamID() string { return h.cfg.StreamID }

// SubscriberCount returns the number of currently registered
// subscriptions (including those inside a re-attach grace). Lock-free;
// registries layer their global admission caps over it.
func (h *Hub) SubscriberCount() int { return int(h.subCount.Load()) }

// ConnCount returns the number of attached path connections. Lock-free.
func (h *Hub) ConnCount() int { return int(h.pathConns.Load()) }

// HasSubscriber reports whether tok is currently registered (attached or
// inside a re-attach grace). Registries use it to exempt re-attaches of
// live tokens from their global subscriber caps, mirroring the hub's own
// fresh-token-only admission rule.
func (h *Hub) HasSubscriber(tok core.Token) bool {
	sd := h.shardFor(tok)
	sd.mu.Lock()
	_, ok := sd.subs[tok]
	sd.mu.Unlock()
	return ok
}

// generate produces packets on the CBR schedule into the ring, waking the
// shards (which apply the slow-subscriber policy to their own laggards)
// and re-running the byte-budget governor once per tick.
//
// hotpath — the ring-advance root; everything below the publishTick call
// runs once per generated packet.
func (h *Hub) generate() {
	period := time.Duration(float64(time.Second) / h.cfg.Stream.Mu)
	base := time.Now()
	for n := int64(0); ; {
		if h.cfg.Stream.Count > 0 && n >= h.cfg.Stream.Count {
			break
		}
		// Drift-free schedule: packet n is due at base + n/µ.
		due := base.Add(time.Duration(n) * period)
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		if h.stopped.Load() {
			break
		}
		n += h.publishTick(n, base, period)
	}
	h.mu.Lock()
	h.genDone.Store(true)
	h.signalStopLocked()
	h.mu.Unlock()
	h.broadcast()
}

// publishTick publishes every packet due by now — at least one, at most
// maxTickBurst (and never more than the ring holds) — then visits each
// shard exactly once and runs one governor pass. Coalescing the wakeups
// this way means a tick that catches up k overdue packets still wakes
// each subscriber at most once per shard, instead of k times; on
// schedule, k is 1 and the cadence is identical to the historical
// per-packet wake. It returns how many packets it published.
func (h *Hub) publishTick(n int64, base time.Time, period time.Duration) int64 {
	k := int64(1)
	if period > 0 {
		// Packet i is due at base + i/µ: everything with index < elapsed/µ+1
		// is due now, and n of those are already out.
		if due := int64(time.Since(base)/period) + 1 - n; due > k {
			k = due
		}
	}
	if c := h.cfg.Stream.Count; c > 0 && k > c-n {
		k = c - n
	}
	if k > maxTickBurst {
		k = maxTickBurst
	}
	if s := h.ring.size(); k > s {
		k = s
	}
	h.govMu.Lock()
	var head int64
	for i := int64(0); i < k; i++ {
		head = h.ring.publish(h.cfg.Stream.Fill)
	}
	h.generated.Add(k)
	for _, sd := range h.shards {
		sd.wake(head)
	}
	h.governLocked(head)
	h.govMu.Unlock()
	return k
}

// PublishAt injects one externally received packet at absolute sequence
// seq — the ingest point of an ExternalSource hub (an edge relay
// republishing its upstream feed). The caller must publish in ascending
// sequence order; a seq below the current head is a late duplicate and is
// refused. Sequences may skip ahead (the upstream lost packets for good,
// or the relay restarted mid-stream): the head jumps and the skipped
// positions read as drops downstream. payload must be exactly PayloadSize
// bytes. It returns whether the packet was accepted.
//
// The call mirrors publishTick's cycle — publish, wake the shards (lag
// policy + send-loop broadcast), one governor pass — so every downstream
// guarantee (lag window, byte budget, degradation ladder) holds at every
// tier of a relay tree.
//
// hotpath — the relay-ingest ring-advance root; runs once per upstream
// frame.
//
// bufown borrowed payload — copied into a private pool buffer inside
// ring.publishAt before any reader can alias the slot; never retained.
func (h *Hub) PublishAt(seq, gen int64, payload []byte) bool {
	if !h.cfg.ExternalSource || len(payload) != h.cfg.Stream.PayloadSize || seq < 0 {
		return false
	}
	if h.stopped.Load() || h.closed.Load() {
		return false
	}
	h.govMu.Lock()
	prev := h.ring.headSeq()
	head, ok := h.ring.publishAt(seq, gen, payload)
	if !ok {
		h.govMu.Unlock()
		return false
	}
	h.generated.Add(1)
	if gap := seq - prev; gap > 0 {
		h.sourceGaps.Add(gap)
	}
	for _, sd := range h.shards {
		sd.wake(head)
	}
	h.governLocked(head)
	h.govMu.Unlock()
	return true
}

// broadcast wakes every shard's send loops so they re-check the lifecycle
// flags.
func (h *Hub) broadcast() {
	for _, sd := range h.shards {
		sd.mu.Lock()
		sd.cond.Broadcast()
		sd.mu.Unlock()
	}
}

// signalStopLocked closes stopCh exactly once, waking pending grace timers
// so Wait never blocks on a dead subscriber's countdown. Caller holds h.mu.
func (h *Hub) signalStopLocked() {
	if !h.stopSig {
		h.stopSig = true
		close(h.stopCh)
	}
}

// accountLocked computes the subscriber-attributable buffered bytes at
// live edge head under the shared-buffer ownership model, plus the
// laggiest subscriber for the governor to shed. Ring payload bytes are
// held once no matter how many subscribers still need them — the span
// from the oldest packet any live subscriber still needs (cursor or
// pending resend, clamped to what the ring actually retains) up to the
// head — while the per-subscriber cost is the FrameHeaderSize header
// patch for every frame it has yet to take. The worst laggard is still
// ranked by heldLocked's full-frame attribution: for choosing whom to
// shed, a laggard pinning the whole ring span is exactly as expensive as
// the payload bytes it alone keeps alive. Caller holds h.govMu; shard
// locks are taken one at a time underneath it.
func (h *Hub) accountLocked(head int64) (total, worstHeld int64, worst *subscriber, worstShard *shard) {
	tail := head - h.ring.size()
	if tail < 0 {
		tail = 0
	}
	minNeed := head
	var hdrBytes int64
	for _, sd := range h.shards {
		sd.mu.Lock()
		for _, sub := range sd.subs {
			if sub.evicted {
				continue
			}
			need := sub.cur
			if len(sub.resend) > 0 && sub.resend[0] < need {
				need = sub.resend[0]
			}
			if need < tail {
				need = tail
			}
			if need < minNeed {
				minNeed = need
			}
			hdrBytes += (head - sub.cur + int64(len(sub.resend))) * core.FrameHeaderSize
			held := sd.heldLocked(sub, head)
			if held > worstHeld {
				worst, worstHeld, worstShard = sub, held, sd
			}
		}
		sd.mu.Unlock()
	}
	total = (head-minNeed)*int64(h.cfg.Stream.PayloadSize) + hdrBytes
	return total, worstHeld, worst, worstShard
}

// governLocked enforces the global MaxBytes budget over subscriber
// holdings at live edge head. While the sum exceeds the budget it sheds
// the laggiest subscriber with one degradation-ladder step at a time, so
// overload degrades the worst laggard's quality instead of the whole
// hub's. Caller holds h.govMu; shard locks are taken one at a time
// underneath it.
func (h *Hub) governLocked(head int64) {
	if h.cfg.MaxBytes <= 0 {
		return
	}
	for {
		total, worstHeld, worst, worstShard := h.accountLocked(head)
		if total <= h.cfg.MaxBytes || worst == nil || worstHeld == 0 {
			return
		}
		worstShard.mu.Lock()
		worstShard.shedLocked(worst, head)
		worstShard.mu.Unlock()
	}
}

// batch is one zero-copy sender's per-wakeup workspace: up to WriteBatch
// pinned shared payload buffers plus the per-subscriber patched headers
// and the vectored write assembled over them. All storage is preallocated
// once per path; the hot loop only writes indexed slots, never appends.
type batch struct {
	n    int           // filled entries
	bufs []*payloadBuf // pinned shared payloads; len is the batch capacity
	seqs []int64       // absolute sequences (resend bookkeeping on a write error)
	gens []int64       // generation timestamps for the header patch
	hdrs []byte        // capacity × FrameHeaderSize patched header bytes
	wb   [][]byte      // 2 × capacity vectored-write slots: header, payload, ...
	vec  net.Buffers   // reusable view of wb[:2n] — a field so WriteTo's pointer receiver never forces a per-call heap escape
}

func newBatch(size int) *batch {
	return &batch{
		bufs: make([]*payloadBuf, size),
		seqs: make([]int64, size),
		gens: make([]int64, size),
		hdrs: make([]byte, size*core.FrameHeaderSize),
		wb:   make([][]byte, 2*size),
	}
}

// BuffersWriter is implemented by connections that consume a vectored
// write natively in one call. The zero-copy sender prefers it over
// net.Buffers' fallback so wrappers (a registry's counted conns, the
// benchmark's in-process pipes) keep the single-call batch handoff that a
// raw *net.TCPConn gets from writev.
type BuffersWriter interface {
	WriteBuffers(bufs net.Buffers) (int64, error)
}

// writeBatch patches one FrameHeaderSize header per pinned frame —
// renumbered relative to the subscriber's join point — and hands the
// [header, shared payload] pairs to the connection as one vectored
// write. The payload bytes are shared ring buffers the batch holds pins
// on; they are lent to the kernel for the duration of the call and never
// copied in user space.
//
// bufown sink — writev handoff: the pinned slot borrows leave the
// process here, alive under the batch's refcounts until releaseBatch.
func (h *Hub) writeBatch(conn net.Conn, sub *subscriber, b *batch) error {
	for i := 0; i < b.n; i++ {
		hdr := b.hdrs[i*core.FrameHeaderSize : (i+1)*core.FrameHeaderSize]
		core.PutFrameHeader(hdr, uint32(b.seqs[i]-sub.first), b.gens[i])
		b.wb[2*i] = hdr
		b.wb[2*i+1] = b.bufs[i].data
	}
	if d := h.cfg.Stream.WriteStallTimeout; d > 0 {
		conn.SetWriteDeadline(time.Now().Add(d))
	}
	b.vec = b.wb[:2*b.n]
	var err error
	if bw, ok := conn.(BuffersWriter); ok {
		_, err = bw.WriteBuffers(b.vec)
	} else {
		_, err = b.vec.WriteTo(conn)
	}
	h.bytesCopied.Add(int64(b.n) * core.FrameHeaderSize)
	h.writevs.Add(1)
	h.framesBatched.Add(int64(b.n))
	return err
}

// releaseBatch drops the batch's pins, returning buffers whose refcount
// reached zero to the pool. Entries are nil'd as they release, so a
// second call over the same batch is a no-op.
func (h *Hub) releaseBatch(b *batch) {
	for i := 0; i < b.n; i++ {
		pb := b.bufs[i]
		if pb == nil {
			continue
		}
		b.bufs[i] = nil
		if pb.refs.Add(-1) == 0 {
			h.pool.put(pb)
		}
	}
}

// sendLoop is one subscriber path's sender: stream header, frames popped
// from the subscriber's shard, end marker. Under DeliveryZeroCopy each
// wakeup drains a batch of pinned shared buffers into one vectored write;
// under DeliveryCopy each frame is rendered through the ring.frame copy
// point into the per-path buffer. On failure it returns the absolute
// sequences this path wrote most recently (oldest first, the in-hand
// packets last) — TCP may have buffered but never delivered them, so
// finishPath queues them for retransmission on the subscriber's other paths.
//
// hotpath — the per-subscriber sender root; the loop body runs once per
// delivered frame (copy) or once per delivered batch (zero-copy).
func (h *Hub) sendLoop(sub *subscriber, pathIdx, numPaths int, conn net.Conn) (recent []int64, err error) {
	if err := core.WriteStreamHeader(conn, pathIdx, numPaths, h.cfg.Stream.PayloadSize, h.cfg.Stream.Mu); err != nil {
		return nil, fmt.Errorf("hub: path %d header: %w", pathIdx, err)
	}
	frame := make([]byte, core.FrameHeaderSize+h.cfg.Stream.PayloadSize) // nolint:hotalloc per-path frame buffer (copy mode and end marker), allocated once
	win := h.cfg.ResendWindow
	if win < 0 {
		win = 0 // negative disables resends; make would panic on it
	}
	// last win sequences written, ring[next%win] next to overwrite;
	// pre-sized so the per-frame append below never grows mid-stream.
	ring := make([]int64, 0, win) // nolint:hotalloc per-path resend ring, allocated once
	next := 0
	if h.cfg.Delivery == DeliveryCopy {
		for {
			seq, ok := sub.shard.pop(sub, frame)
			if !ok {
				break
			}
			if err := h.writeFrame(conn, frame); err != nil {
				return append(unrollSeqs(ring, next), seq), fmt.Errorf("hub: path %d write: %w", pathIdx, err)
			}
			if win > 0 {
				if len(ring) < win {
					ring = append(ring, seq)
				} else {
					ring[next%win] = seq
				}
				next++
			}
		}
	} else {
		b := newBatch(h.cfg.WriteBatch) // nolint:hotalloc per-path batch workspace, allocated once before the loop
		for {
			if !sub.shard.popBatch(sub, b) {
				break
			}
			werr := h.writeBatch(conn, sub, b)
			h.releaseBatch(b)
			if werr != nil {
				// The kernel may have taken any prefix of the batch; resend
				// all of it — duplicates are deduplicated client-side.
				return append(unrollSeqs(ring, next), b.seqs[:b.n]...), fmt.Errorf("hub: path %d write: %w", pathIdx, werr)
			}
			if win > 0 {
				for i := 0; i < b.n; i++ {
					if len(ring) < win {
						ring = append(ring, b.seqs[i])
					} else {
						ring[next%win] = b.seqs[i]
					}
					next++
				}
			}
		}
	}
	// End marker: carries the number of packets generated since this
	// subscriber joined, matching its rebased numbering.
	n := h.ring.headSeq() - sub.first
	core.PutFrameHeader(frame, core.EndMarker, n)
	if err := h.writeFrame(conn, frame); err != nil {
		return unrollSeqs(ring, next), fmt.Errorf("hub: path %d end marker: %w", pathIdx, err)
	}
	return nil, nil
}

// unrollSeqs returns the ring's contents oldest first.
func unrollSeqs(ring []int64, next int) []int64 {
	if len(ring) == 0 {
		return nil
	}
	out := make([]int64, 0, len(ring)+1)
	if next <= len(ring) {
		return append(out, ring...)
	}
	i := next % len(ring)
	out = append(out, ring[i:]...)
	return append(out, ring[:i]...)
}

// writeFrame writes one rendered frame, arming the optional stall
// deadline first.
//
// bufown borrowed frame — writeFrame only lends the buffer to the
// conn.Write sink; it must never retain or rewrite it.
func (h *Hub) writeFrame(conn net.Conn, frame []byte) error {
	if d := h.cfg.Stream.WriteStallTimeout; d > 0 {
		conn.SetWriteDeadline(time.Now().Add(d))
	}
	_, err := conn.Write(frame)
	return err
}

// rejectConn answers a refused join with the typed reject frame and closes
// the connection. The courtesy write gets a short deadline so a refused
// client that never reads cannot pin a handshake goroutine. Every written
// reject is counted exactly once in Stats.Rejected.
func (h *Hub) rejectConn(conn net.Conn, code core.RejectCode) {
	h.rejected.Add(1)
	conn.SetWriteDeadline(time.Now().Add(rejectWriteTimeout))
	_ = core.WriteReject(conn, code)
	_ = conn.Close()
}

// Attach performs the server side of the join handshake on conn and starts
// a path sender for the joined subscription. It closes conn on any error;
// admission refusals additionally answer with the typed reject frame, and
// the returned error unwraps to the matching core sentinel
// (core.ErrServerFull, core.ErrDraining, ...).
func (h *Hub) Attach(conn net.Conn) error {
	conn.SetReadDeadline(time.Now().Add(h.cfg.JoinTimeout))
	j, err := core.ReadJoin(conn)
	conn.SetReadDeadline(time.Time{})
	if err != nil {
		// Not (or not yet) speaking our protocol: no reject frame owed.
		_ = conn.Close()
		return fmt.Errorf("hub: join: %w", err)
	}
	return h.AttachJoined(conn, j)
}

// AttachJoined admits a connection whose join request has already been
// read — the entry point a stream registry routes to after demultiplexing
// the stream id. It behaves exactly like Attach past the handshake read:
// conn is closed on any error, refusals answer with the typed reject
// frame, and on success a path sender runs until the stream ends.
func (h *Hub) AttachJoined(conn net.Conn, j core.Join) error {
	if j.StreamID != h.cfg.StreamID {
		h.rejectConn(conn, core.RejectUnknownStream)
		return fmt.Errorf("hub: join for stream %q (serving %q): %w",
			j.StreamID, h.cfg.StreamID, &core.RejectError{Code: core.RejectUnknownStream})
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
		if h.cfg.PathWriteBuffer > 0 {
			tc.SetWriteBuffer(h.cfg.PathWriteBuffer)
		}
	}

	sd := h.shardFor(j.Token)
	h.mu.Lock()
	if h.closed.Load() || h.stopped.Load() || h.genDone.Load() {
		h.mu.Unlock()
		code := h.endCode()
		h.rejectConn(conn, code)
		if code != core.RejectStreamEnded {
			return fmt.Errorf("hub: stream over: %w", &core.RejectError{Code: code})
		}
		return ErrStreamEnded
	}
	sd.mu.Lock()
	sub := sd.subs[j.Token]
	if sub == nil {
		// A fresh token asks for admission; re-attaches of live tokens are
		// exempt so a drain or a full house never strands a subscription
		// that is only trying to heal a flapped path.
		var code core.RejectCode
		switch {
		case h.draining:
			code = core.RejectDraining
		case h.cfg.MaxSubscribers > 0 && int(h.subCount.Load()) >= h.cfg.MaxSubscribers:
			code = core.RejectServerFull
		}
		if code != 0 {
			sd.mu.Unlock()
			h.mu.Unlock()
			h.rejectConn(conn, code)
			return fmt.Errorf("hub: join refused: %w", &core.RejectError{Code: code})
		}
	}
	if h.cfg.MaxConns > 0 && int(h.pathConns.Load()) >= h.cfg.MaxConns {
		sd.mu.Unlock()
		h.mu.Unlock()
		h.rejectConn(conn, core.RejectServerFull)
		return fmt.Errorf("hub: %d connections attached: %w",
			h.cfg.MaxConns, &core.RejectError{Code: core.RejectServerFull})
	}
	if sub == nil {
		head := h.ring.headSeq()
		first, cur := head, head
		if j.Flags&core.JoinFlagAbsolute != 0 {
			// Absolute subscription: no rebase (frames carry origin
			// numbering — first stays 0) and the cursor starts at the ring
			// tail, so the joiner catches up on everything the hub still
			// retains. Relays and tree leaves join this way: stable packet
			// identity across tiers is what lets the client-side dedup
			// collapse failover replays and restart re-joins.
			first = 0
			if cur = head - h.ring.size(); cur < 0 {
				cur = 0
			}
		}
		sub = &subscriber{token: j.Token, shard: sd, first: first, cur: cur, window: h.cfg.LagWindow}
		sd.subs[j.Token] = sub
		h.subCount.Add(1)
	}
	if sub.evicted {
		sd.mu.Unlock()
		h.mu.Unlock()
		h.rejectConn(conn, core.RejectEvicted)
		return fmt.Errorf("hub: subscriber %s: %w",
			j.Token, &core.RejectError{Code: core.RejectEvicted})
	}
	pathIdx := sub.nextPath
	sub.nextPath++
	sub.paths++
	h.pathConns.Add(1)
	numPaths := sub.paths
	sub.conns = append(sub.conns, conn)
	if sub.deadPaths > 0 {
		// This join revives a slot an abnormal death left open: the token
		// survived the flap and the subscription resumes where it was.
		sub.deadPaths--
		h.reattached.Add(1)
	}
	h.wg.Add(1)
	sd.mu.Unlock()
	h.mu.Unlock()

	go func() {
		defer h.wg.Done()
		recent, err := h.sendLoop(sub, pathIdx, numPaths, conn)
		sd.finishPath(sub, conn, recent, err)
	}()
	return nil
}

// mergeSeqs folds newly dead sequences into a sorted, deduplicated resend
// queue so retransmits go out oldest first and at most once.
func mergeSeqs(have, add []int64) []int64 {
	out := make([]int64, 0, len(have)+len(add))
	out = append(out, have...)
	out = append(out, add...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	n := 0
	for i, s := range out {
		if i == 0 || s != out[n-1] {
			out[n] = s
			n++
		}
	}
	return out[:n]
}

// Serve accepts connections on ln and attaches each as a subscriber path.
// It returns when ln is closed; per-connection join failures are counted in
// Stats, not returned. Temporary accept errors (EMFILE storms, transient
// kernel refusals) are retried with capped exponential backoff instead of
// tearing the accept loop down, and connections beyond the handshake
// concurrency cap are shed with a server-full reject.
func (h *Hub) Serve(ln net.Listener) error {
	h.mu.Lock()
	h.lns = append(h.lns, ln)
	closed := h.closed.Load()
	h.mu.Unlock()
	if closed {
		_ = ln.Close()
		return ErrStreamEnded
	}
	var backoff time.Duration
	for {
		conn, err := ln.Accept()
		if err != nil {
			if h.closed.Load() || h.stopped.Load() {
				return nil
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Temporary() {
				// An accept storm that exhausts descriptors surfaces here as
				// a temporary error: hold the loop together and retry once
				// some in-flight connection retires a descriptor.
				h.acceptRetries.Add(1)
				switch {
				case backoff <= 0:
					backoff = 5 * time.Millisecond
				case backoff < time.Second:
					backoff *= 2
					if backoff > time.Second {
						backoff = time.Second
					}
				}
				t := time.NewTimer(backoff)
				select {
				case <-t.C:
				case <-h.stopCh:
					t.Stop()
				}
				continue
			}
			return err
		}
		backoff = 0
		// The handshake goroutine is wg-tracked and its conn is registered
		// so Close can cut a client that stalls mid-handshake instead of
		// leaking the goroutine for up to JoinTimeout. Adding to wg under
		// mu with closed checked first keeps Add ordered before Close's
		// Wait.
		h.mu.Lock()
		if h.closed.Load() {
			h.mu.Unlock()
			_ = conn.Close()
			continue
		}
		if h.stopped.Load() || h.genDone.Load() {
			// The stream is over, so Attach would refuse anyway — answer
			// inline rather than spawn a tracked goroutine, because a
			// Drain/Close may already be in wg.Wait and an Add now would
			// race it. The reject write is deadline-bounded.
			h.mu.Unlock()
			h.rejectConn(conn, h.endCode())
			continue
		}
		if len(h.pending) >= h.cfg.HandshakeLimit {
			// Too many handshakes in flight — likely a slowloris herd. Shed
			// the newcomer; rejectConn writes under a deadline, so drop mu
			// first.
			h.mu.Unlock()
			h.rejectConn(conn, core.RejectServerFull)
			continue
		}
		h.pending[conn] = struct{}{}
		h.wg.Add(1)
		h.mu.Unlock()
		go func() {
			defer h.wg.Done()
			err := h.Attach(conn)
			h.mu.Lock()
			delete(h.pending, conn)
			h.mu.Unlock()
			if err != nil && !errors.Is(err, ErrStreamEnded) && !errors.Is(err, core.ErrRejected) {
				// Admission refusals are counted in Rejected by rejectConn;
				// only protocol-level failures are path errors.
				h.pathErrors.Add(1)
			}
		}()
	}
}

// BeginDrain closes admission: joins presenting fresh tokens are refused
// with a draining reject, while live subscriptions (including re-attaches
// of their tokens) continue unaffected. Generation is not touched — pair
// with Stop, or use Drain for the full graceful-shutdown sequence.
func (h *Hub) BeginDrain() {
	h.mu.Lock()
	h.draining = true
	h.mu.Unlock()
}

// Draining reports whether admission has been closed by BeginDrain/Drain.
func (h *Hub) Draining() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.draining
}

// Drain is the graceful-shutdown ladder: stop admitting, stop generating,
// and give live paths until timeout to drain their end markers; whatever is
// still attached then is force-closed. It returns true when every path
// drained within the deadline.
func (h *Hub) Drain(timeout time.Duration) bool {
	h.BeginDrain()
	h.Stop()
	done := make(chan struct{})
	go func() {
		h.wg.Wait()
		close(done)
	}()
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-done:
		return true
	case <-t.C:
		h.Close()
		return false
	}
}

// Fail ends the stream abnormally: generation stops and live paths drain
// the ring and emit end markers exactly like Stop, but every subsequent
// join is answered with the given reject code instead of the default
// stream-ended verdict. An edge relay orphaned from its upstream uses it
// to propagate RejectUpstreamLost downstream — live subscribers get
// everything the hub ever held plus a clean end marker, while new joiners
// learn the stream is gone for a reason. The first failure code sticks.
func (h *Hub) Fail(code core.RejectCode) {
	if code != 0 {
		h.failCode.CompareAndSwap(0, uint32(code))
	}
	h.Stop()
}

// endCode is the verdict a stopped hub rejects joins with: the Fail code
// when one was recorded, RejectStreamEnded otherwise.
func (h *Hub) endCode() core.RejectCode {
	if c := h.failCode.Load(); c != 0 {
		return core.RejectCode(c)
	}
	return core.RejectStreamEnded
}

// Stop ends generation. Path senders drain the remaining ring contents and
// emit end markers; follow with Wait for a graceful shutdown.
func (h *Hub) Stop() {
	h.mu.Lock()
	h.stopped.Store(true)
	h.signalStopLocked()
	h.mu.Unlock()
	h.broadcast()
}

// Wait blocks until generation has ended (Stop or Count) and every path
// sender has drained or failed. A subscriber that has stopped reading can
// hold Wait up indefinitely unless Config.Stream.WriteStallTimeout is set
// or Close is used.
func (h *Hub) Wait() {
	h.wg.Wait()
}

// Close force-stops the hub: generation ends, all listeners and subscriber
// connections are closed, and new attaches are refused. It waits for the
// sender goroutines to exit. Unlike Stop+Wait, paths are NOT drained.
func (h *Hub) Close() {
	h.mu.Lock()
	h.closed.Store(true)
	h.stopped.Store(true)
	h.signalStopLocked()
	for _, ln := range h.lns {
		_ = ln.Close()
	}
	for c := range h.pending {
		_ = c.Close()
	}
	h.mu.Unlock()
	for _, sd := range h.shards {
		sd.mu.Lock()
		for _, sub := range sd.subs {
			for _, c := range sub.conns {
				_ = c.Close()
			}
		}
		sd.cond.Broadcast()
		sd.mu.Unlock()
	}
	h.wg.Wait()
}

// Generated returns the number of packets generated so far.
func (h *Hub) Generated() int64 {
	return h.generated.Load()
}

// TotalDropped returns the packets skipped across all subscribers so far.
// Lock-free.
func (h *Hub) TotalDropped() int64 {
	return h.totalDropped.Load()
}

// BytesHeld returns the buffered bytes currently attributed to subscribers
// without building the full Stats snapshot — the cheap sampling hook for
// dashboards and the fanout benchmark. Like Stats, it aggregates under the
// governor lock so it never observes the budget mid-settlement.
func (h *Hub) BytesHeld() int64 {
	h.govMu.Lock()
	defer h.govMu.Unlock()
	total, _, _, _ := h.accountLocked(h.ring.headSeq())
	return total
}

// DeliveryCounters returns the delivery-path instrumentation: user-space
// bytes memcpy'd to deliver frames (zero-copy delivery pays only the
// FrameHeaderSize header patch per frame; copy delivery pays the full
// frame), vectored writes issued, and the frames those writes carried.
// Lock-free; the fan-out benchmark samples it around its measurement
// window.
func (h *Hub) DeliveryCounters() (bytesCopied, writevs, framesBatched int64) {
	return h.bytesCopied.Load(), h.writevs.Load(), h.framesBatched.Load()
}

// PoolCheck snapshots the payload pool's integrity counters; chaos runs
// assert DoublePuts and PoisonTrips stay zero.
func (h *Hub) PoolCheck() PoolStats {
	return h.pool.stats()
}

// SubscriberStats is one subscriber's snapshot within Stats.
type SubscriberStats struct {
	Token    string // hex token
	Paths    int    // live path connections
	FirstSeq int64  // absolute sequence at join
	Lag      int64  // packets behind the generator
	Sent     int64  // packets handed to this subscriber's paths
	Dropped  int64  // packets skipped by DropOldest or lost from resend queues
	Deaths   int64  // abnormal path deaths so far
	Pending  int    // resend-queue packets not yet retransmitted
	Window   int    // effective lag window (LagWindow until the governor shrinks it)
	Sheds    int64  // degradation-ladder steps applied to this subscriber
	Held     int64  // buffered bytes attributed to this subscriber
	Evicted  bool
}

// Stats is a point-in-time snapshot of the hub.
type Stats struct {
	StreamID      string
	Shards        int           // per-core worker groups the subscribers hash across
	Generated     int64         // packets generated (external source: packets accepted by PublishAt)
	SourceGaps    int64         // external-source sequences skipped past, never published
	Subscribers   int           // currently attached subscribers
	Conns         int           // attached path connections
	Handshaking   int           // accepted connections still in the join handshake
	Sent          int64         // packets written across all subscribers
	Dropped       int64         // packets skipped by DropOldest, all subscribers
	Evicted       int64         // subscribers evicted so far
	Rejected      int64         // joins refused with a reject frame (full, draining, ...)
	Shed          int64         // degradation-ladder steps taken by the resource governor
	BytesHeld     int64         // buffered bytes held (shared payload span once + per-subscriber headers)
	BytesCopied   int64         // user-space bytes memcpy'd for delivery (zero-copy: header patches only)
	Writevs       int64         // vectored writes issued by zero-copy senders
	FramesBatched int64         // frames carried by those vectored writes
	Pool          PoolStats     // payload-pool integrity counters
	AcceptRetries int64         // temporary accept errors retried with backoff
	PathErrors    int64         // paths that ended in an error (left, stalled out, bad join)
	Resent        int64         // packets retransmitted from dead paths' windows
	Reattached    int64         // joins that revived a dead path within the grace
	Draining      bool          // admission closed, live subscriptions finishing
	Elapsed       time.Duration // since the hub started
	GoodputPkts   float64       // aggregate delivered packets per second
	Subs          []SubscriberStats
}

// Stats returns a snapshot of the hub and its current subscribers. The
// per-subscriber walk takes the governor lock and then each shard's lock
// in turn, so BytesHeld is always observed after a governor pass — never
// between a publish and the shed that settles the budget.
func (h *Hub) Stats() Stats {
	st := Stats{
		StreamID:      h.cfg.StreamID,
		Shards:        len(h.shards),
		Generated:     h.generated.Load(),
		SourceGaps:    h.sourceGaps.Load(),
		Sent:          h.totalSent.Load(),
		Dropped:       h.totalDropped.Load(),
		Evicted:       h.evictedCount.Load(),
		Rejected:      h.rejected.Load(),
		Shed:          h.shedCount.Load(),
		AcceptRetries: h.acceptRetries.Load(),
		PathErrors:    h.pathErrors.Load(),
		Resent:        h.totalResent.Load(),
		Reattached:    h.reattached.Load(),
		Conns:         int(h.pathConns.Load()),
		BytesCopied:   h.bytesCopied.Load(),
		Writevs:       h.writevs.Load(),
		FramesBatched: h.framesBatched.Load(),
		Pool:          h.pool.stats(),
		Elapsed:       time.Since(h.start),
	}
	h.mu.Lock()
	st.Handshaking = len(h.pending)
	st.Draining = h.draining
	h.mu.Unlock()
	h.govMu.Lock()
	head := h.ring.headSeq()
	st.BytesHeld, _, _, _ = h.accountLocked(head)
	for _, sd := range h.shards {
		sd.mu.Lock()
		for _, sub := range sd.subs {
			held := int64(0)
			if !sub.evicted {
				// Per-subscriber attribution keeps the full-frame account
				// (heldLocked), so Σ Subs[i].Held ≥ BytesHeld: shared
				// payload bytes appear once in the total but in every
				// laggard's own column.
				held = sd.heldLocked(sub, head)
			}
			st.Subs = append(st.Subs, SubscriberStats{
				Token:    sub.token.String(),
				Paths:    sub.paths,
				FirstSeq: sub.first,
				Lag:      head - sub.cur,
				Sent:     sub.sent,
				Dropped:  sub.dropped,
				Deaths:   sub.deaths,
				Pending:  len(sub.resend),
				Window:   sub.window,
				Sheds:    sub.sheds,
				Held:     held,
				Evicted:  sub.evicted,
			})
		}
		sd.mu.Unlock()
	}
	h.govMu.Unlock()
	st.Subscribers = len(st.Subs)
	if s := st.Elapsed.Seconds(); s > 0 {
		st.GoodputPkts = float64(st.Sent) / s
	}
	sort.Slice(st.Subs, func(i, j int) bool {
		if st.Subs[i].FirstSeq != st.Subs[j].FirstSeq {
			return st.Subs[i].FirstSeq < st.Subs[j].FirstSeq
		}
		return st.Subs[i].Token < st.Subs[j].Token
	})
	return st
}
