// Package hub fans a single live DMP source out to many multipath
// subscribers.
//
// The paper's server (internal/core) serves exactly one client: one CBR
// generator, one queue, one session. A broadcast hub keeps the single
// generator but replaces the queue with a shared ring of the most recent
// LagWindow packets; every subscriber owns a cursor into that ring, so one
// generation goroutine serves all subscribers without per-subscriber copies
// of the queue. Each subscriber is its own DMP multipath session: its path
// connections pop from the subscriber's cursor under the hub lock and block
// in Write, so send-buffer backpressure allocates packets across that
// subscriber's paths exactly as in the single-client scheme — and
// independently of every other subscriber.
//
// A subscriber that cannot keep up falls behind the ring. The hub then
// applies the configured slow-subscriber policy at generation time:
// DropOldest advances the laggard's cursor to the oldest live packet and
// counts the skipped packets as drops (the client sees a sequence gap);
// Evict disconnects the subscriber outright. Either way, one stalled
// subscriber cannot make the generator or its peers late — the per-packet
// cost of a slow client is bounded by the ring, not by the stream.
//
// Joining is a 40-byte wire handshake (core.Join): each path connection
// carries the stream id and a subscriber token, so a client's 2nd..Kth
// connections attach to the same subscription. After the join, each path
// speaks the unchanged v1 stream format, with packet numbers rebased to the
// subscriber's join point so existing receivers (core.Receive, core.Play)
// work verbatim.
package hub

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"dmpstream/internal/core"
)

// Policy selects what happens to a subscriber whose lag exceeds the window.
type Policy int

const (
	// DropOldest skips the subscriber's cursor ahead to the oldest packet
	// still in the ring, counting the skipped packets as drops.
	DropOldest Policy = iota
	// Evict disconnects the subscriber.
	Evict
)

func (p Policy) String() string {
	switch p {
	case DropOldest:
		return "drop-oldest"
	case Evict:
		return "evict"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// joinTimeout bounds how long an accepted connection may take to present
// its join request before the hub gives up on it.
const joinTimeout = 10 * time.Second

// Config describes a broadcast hub.
type Config struct {
	// Stream is the live source (rate, payload, count, fill, stall timeout).
	Stream core.Config
	// StreamID names the stream; joins carrying another id are rejected.
	// Default "live".
	StreamID string
	// LagWindow is the ring size: the number of most recent packets a
	// subscriber may lag behind the generator before Policy applies.
	// Default 1024.
	LagWindow int
	// Policy is the slow-subscriber policy (default DropOldest).
	Policy Policy
	// PathWriteBuffer, when positive, caps each path's kernel send buffer
	// (SetWriteBuffer) so backpressure from a slow subscriber reaches the
	// hub within a bounded number of packets. 0 keeps the kernel default.
	PathWriteBuffer int
}

func (c Config) withDefaults() (Config, error) {
	var err error
	if c.Stream, err = c.Stream.Normalized(); err != nil {
		return c, err
	}
	if c.StreamID == "" {
		c.StreamID = "live"
	}
	if len(c.StreamID) > core.MaxStreamID {
		return c, fmt.Errorf("hub: stream id %q longer than %d bytes", c.StreamID, core.MaxStreamID)
	}
	if c.LagWindow == 0 {
		c.LagWindow = 1024
	}
	if c.LagWindow < 0 {
		return c, fmt.Errorf("hub: lag window %d < 0", c.LagWindow)
	}
	if c.Policy != DropOldest && c.Policy != Evict {
		return c, fmt.Errorf("hub: unknown policy %d", int(c.Policy))
	}
	if c.PathWriteBuffer < 0 {
		return c, fmt.Errorf("hub: path write buffer %d < 0", c.PathWriteBuffer)
	}
	return c, nil
}

// ErrStreamEnded is returned by Attach once the stream is over or the hub
// has been closed.
var ErrStreamEnded = errors.New("hub: stream ended")

// slot is one generated packet in the shared ring.
type slot struct {
	gen     int64  // generation timestamp, UnixNano
	payload []byte // filled content; nil when Config.Stream.Fill is nil
}

// subscriber is one multipath subscription: a cursor into the ring plus the
// path connections attached under its token. All mutable fields are guarded
// by the hub mutex; first and token are immutable after creation.
type subscriber struct {
	token core.Token
	first int64 // absolute sequence at join; frames are rebased to it

	cur      int64      // guarded by mu (the hub's); absolute next sequence to fetch
	paths    int        // guarded by mu; live path senders
	nextPath int        // guarded by mu; next path index to hand out
	sent     int64      // guarded by mu
	dropped  int64      // guarded by mu
	evicted  bool       // guarded by mu
	conns    []net.Conn // guarded by mu
}

// Hub is a running broadcast: one generator, a shared ring, N subscribers.
type Hub struct {
	cfg Config

	mu   sync.Mutex
	cond *sync.Cond
	wg   sync.WaitGroup

	ring      []slot // guarded by mu
	head      int64  // guarded by mu; absolute sequence of the next packet to generate
	generated int64  // guarded by mu
	stopped   bool   // guarded by mu
	genDone   bool   // guarded by mu
	closed    bool   // guarded by mu
	start     time.Time

	subs    map[core.Token]*subscriber // guarded by mu
	lns     []net.Listener             // guarded by mu
	pending map[net.Conn]struct{}      // guarded by mu; accepted conns mid-handshake

	totalSent    int64 // guarded by mu
	totalDropped int64 // guarded by mu
	evictedCount int64 // guarded by mu
	pathErrors   int64 // guarded by mu
}

// New validates cfg, starts the live generator and returns the hub.
// Subscribers attach via Serve or Attach; shut down with Stop+Wait
// (graceful: every path drains and receives an end marker) or Close.
func New(cfg Config) (*Hub, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	h := &Hub{
		cfg:     cfg,
		ring:    make([]slot, cfg.LagWindow),
		subs:    make(map[core.Token]*subscriber),
		pending: make(map[net.Conn]struct{}),
		start:   time.Now(),
	}
	h.cond = sync.NewCond(&h.mu)
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		h.generate()
	}()
	return h, nil
}

// generate produces packets on the CBR schedule into the ring, applying the
// slow-subscriber policy after each packet.
func (h *Hub) generate() {
	period := time.Duration(float64(time.Second) / h.cfg.Stream.Mu)
	base := time.Now()
	for n := int64(0); ; n++ {
		if h.cfg.Stream.Count > 0 && n >= h.cfg.Stream.Count {
			break
		}
		// Drift-free schedule: packet n is due at base + n/µ.
		due := base.Add(time.Duration(n) * period)
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		h.mu.Lock()
		if h.stopped {
			h.mu.Unlock()
			break
		}
		s := &h.ring[h.head%int64(len(h.ring))]
		s.gen = time.Now().UnixNano()
		if h.cfg.Stream.Fill != nil {
			if s.payload == nil {
				s.payload = make([]byte, h.cfg.Stream.PayloadSize)
			}
			h.cfg.Stream.Fill(uint32(h.head), s.payload)
		}
		h.head++
		h.generated++
		h.enforceLagLocked()
		h.cond.Broadcast()
		h.mu.Unlock()
	}
	h.mu.Lock()
	h.genDone = true
	h.cond.Broadcast()
	h.mu.Unlock()
}

// enforceLagLocked applies the slow-subscriber policy to every subscriber
// whose cursor has fallen out of the ring. Caller holds h.mu.
func (h *Hub) enforceLagLocked() {
	oldest := h.head - int64(len(h.ring))
	if oldest <= 0 {
		return
	}
	for _, sub := range h.subs {
		if sub.evicted || sub.cur >= oldest {
			continue
		}
		switch h.cfg.Policy {
		case DropOldest:
			skipped := oldest - sub.cur
			sub.dropped += skipped
			h.totalDropped += skipped
			sub.cur = oldest
		case Evict:
			sub.evicted = true
			h.evictedCount++
			for _, c := range sub.conns {
				_ = c.Close()
			}
		}
	}
}

// pop copies the subscriber's next frame (header + payload) into frame,
// blocking while the subscriber is caught up and generation continues.
// ok=false means the stream is over for this subscriber: drained after
// Stop/Count, evicted, or the hub force-closed.
func (h *Hub) pop(sub *subscriber, frame []byte) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	for {
		if sub.evicted || h.closed {
			return false
		}
		if sub.cur < h.head {
			s := &h.ring[sub.cur%int64(len(h.ring))]
			// Rebase packet numbers to the join point so each subscriber
			// sees a standalone 0-based v1 stream.
			core.PutFrameHeader(frame, uint32(sub.cur-sub.first), s.gen)
			if s.payload != nil {
				copy(frame[core.FrameHeaderSize:], s.payload)
			}
			sub.cur++
			sub.sent++
			h.totalSent++
			return true
		}
		if h.stopped || h.genDone {
			return false
		}
		h.cond.Wait()
	}
}

// sendLoop is one subscriber path's sender: stream header, frames popped
// from the subscriber's cursor, end marker.
func (h *Hub) sendLoop(sub *subscriber, pathIdx, numPaths int, conn net.Conn) error {
	if err := core.WriteStreamHeader(conn, pathIdx, numPaths, h.cfg.Stream.PayloadSize, h.cfg.Stream.Mu); err != nil {
		return fmt.Errorf("hub: path %d header: %w", pathIdx, err)
	}
	frame := make([]byte, core.FrameHeaderSize+h.cfg.Stream.PayloadSize)
	for h.pop(sub, frame) {
		if err := h.writeFrame(conn, frame); err != nil {
			return fmt.Errorf("hub: path %d write: %w", pathIdx, err)
		}
	}
	// End marker: carries the number of packets generated since this
	// subscriber joined, matching its rebased numbering.
	h.mu.Lock()
	n := h.head - sub.first
	h.mu.Unlock()
	core.PutFrameHeader(frame, core.EndMarker, n)
	if err := h.writeFrame(conn, frame); err != nil {
		return fmt.Errorf("hub: path %d end marker: %w", pathIdx, err)
	}
	return nil
}

func (h *Hub) writeFrame(conn net.Conn, frame []byte) error {
	if d := h.cfg.Stream.WriteStallTimeout; d > 0 {
		conn.SetWriteDeadline(time.Now().Add(d))
	}
	_, err := conn.Write(frame)
	return err
}

// Attach performs the server side of the join handshake on conn and starts
// a path sender for the joined subscription. It closes conn on any error.
func (h *Hub) Attach(conn net.Conn) error {
	conn.SetReadDeadline(time.Now().Add(joinTimeout))
	j, err := core.ReadJoin(conn)
	conn.SetReadDeadline(time.Time{})
	if err != nil {
		_ = conn.Close()
		return fmt.Errorf("hub: join: %w", err)
	}
	if j.StreamID != h.cfg.StreamID {
		_ = conn.Close()
		return fmt.Errorf("hub: join for unknown stream %q (serving %q)", j.StreamID, h.cfg.StreamID)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
		if h.cfg.PathWriteBuffer > 0 {
			tc.SetWriteBuffer(h.cfg.PathWriteBuffer)
		}
	}

	h.mu.Lock()
	if h.closed || h.stopped || h.genDone {
		h.mu.Unlock()
		_ = conn.Close()
		return ErrStreamEnded
	}
	sub := h.subs[j.Token]
	if sub == nil {
		sub = &subscriber{token: j.Token, first: h.head, cur: h.head}
		h.subs[j.Token] = sub
	}
	if sub.evicted {
		h.mu.Unlock()
		_ = conn.Close()
		return fmt.Errorf("hub: subscriber %s is evicted", j.Token)
	}
	pathIdx := sub.nextPath
	sub.nextPath++
	sub.paths++
	numPaths := sub.paths
	sub.conns = append(sub.conns, conn)
	h.wg.Add(1)
	h.mu.Unlock()

	go func() {
		defer h.wg.Done()
		err := h.sendLoop(sub, pathIdx, numPaths, conn)
		h.finishPath(sub, conn, err)
	}()
	return nil
}

// finishPath retires one path sender; the subscriber disappears from the
// hub once its last path is gone.
func (h *Hub) finishPath(sub *subscriber, conn net.Conn, err error) {
	_ = conn.Close()
	h.mu.Lock()
	defer h.mu.Unlock()
	sub.paths--
	for i, c := range sub.conns {
		if c == conn {
			sub.conns = append(sub.conns[:i], sub.conns[i+1:]...)
			break
		}
	}
	if err != nil && !sub.evicted && !h.closed {
		h.pathErrors++
	}
	if sub.paths == 0 {
		delete(h.subs, sub.token)
	}
}

// Serve accepts connections on ln and attaches each as a subscriber path.
// It returns when ln is closed; per-connection join failures are counted in
// Stats, not returned.
func (h *Hub) Serve(ln net.Listener) error {
	h.mu.Lock()
	h.lns = append(h.lns, ln)
	closed := h.closed
	h.mu.Unlock()
	if closed {
		_ = ln.Close()
		return ErrStreamEnded
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			h.mu.Lock()
			defer h.mu.Unlock()
			if h.closed || h.stopped {
				return nil
			}
			return err
		}
		// The handshake goroutine is wg-tracked and its conn is registered
		// so Close can cut a client that stalls mid-handshake instead of
		// leaking the goroutine for up to joinTimeout. Adding to wg under
		// mu with closed checked first keeps Add ordered before Close's
		// Wait.
		h.mu.Lock()
		if h.closed {
			h.mu.Unlock()
			_ = conn.Close()
			continue
		}
		h.pending[conn] = struct{}{}
		h.wg.Add(1)
		h.mu.Unlock()
		go func() {
			defer h.wg.Done()
			err := h.Attach(conn)
			h.mu.Lock()
			delete(h.pending, conn)
			if err != nil && !errors.Is(err, ErrStreamEnded) {
				h.pathErrors++
			}
			h.mu.Unlock()
		}()
	}
}

// Stop ends generation. Path senders drain the remaining ring contents and
// emit end markers; follow with Wait for a graceful shutdown.
func (h *Hub) Stop() {
	h.mu.Lock()
	h.stopped = true
	h.cond.Broadcast()
	h.mu.Unlock()
}

// Wait blocks until generation has ended (Stop or Count) and every path
// sender has drained or failed. A subscriber that has stopped reading can
// hold Wait up indefinitely unless Config.Stream.WriteStallTimeout is set
// or Close is used.
func (h *Hub) Wait() {
	h.wg.Wait()
}

// Close force-stops the hub: generation ends, all listeners and subscriber
// connections are closed, and new attaches are refused. It waits for the
// sender goroutines to exit. Unlike Stop+Wait, paths are NOT drained.
func (h *Hub) Close() {
	h.mu.Lock()
	h.closed = true
	h.stopped = true
	for _, ln := range h.lns {
		_ = ln.Close()
	}
	for _, sub := range h.subs {
		for _, c := range sub.conns {
			_ = c.Close()
		}
	}
	for c := range h.pending {
		_ = c.Close()
	}
	h.cond.Broadcast()
	h.mu.Unlock()
	h.wg.Wait()
}

// Generated returns the number of packets generated so far.
func (h *Hub) Generated() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.generated
}

// SubscriberStats is one subscriber's snapshot within Stats.
type SubscriberStats struct {
	Token    string // hex token
	Paths    int    // live path connections
	FirstSeq int64  // absolute sequence at join
	Lag      int64  // packets behind the generator
	Sent     int64  // packets handed to this subscriber's paths
	Dropped  int64  // packets skipped by DropOldest
	Evicted  bool
}

// Stats is a point-in-time snapshot of the hub.
type Stats struct {
	StreamID    string
	Generated   int64         // packets generated
	Subscribers int           // currently attached subscribers
	Sent        int64         // packets written across all subscribers
	Dropped     int64         // packets skipped by DropOldest, all subscribers
	Evicted     int64         // subscribers evicted so far
	PathErrors  int64         // paths that ended in an error (left, stalled out, bad join)
	Elapsed     time.Duration // since the hub started
	GoodputPkts float64       // aggregate delivered packets per second
	Subs        []SubscriberStats
}

// Stats returns a snapshot of the hub and its current subscribers.
func (h *Hub) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := Stats{
		StreamID:    h.cfg.StreamID,
		Generated:   h.generated,
		Subscribers: len(h.subs),
		Sent:        h.totalSent,
		Dropped:     h.totalDropped,
		Evicted:     h.evictedCount,
		PathErrors:  h.pathErrors,
		Elapsed:     time.Since(h.start),
	}
	if s := st.Elapsed.Seconds(); s > 0 {
		st.GoodputPkts = float64(st.Sent) / s
	}
	for _, sub := range h.subs {
		st.Subs = append(st.Subs, SubscriberStats{
			Token:    sub.token.String(),
			Paths:    sub.paths,
			FirstSeq: sub.first,
			Lag:      h.head - sub.cur,
			Sent:     sub.sent,
			Dropped:  sub.dropped,
			Evicted:  sub.evicted,
		})
	}
	sort.Slice(st.Subs, func(i, j int) bool {
		if st.Subs[i].FirstSeq != st.Subs[j].FirstSeq {
			return st.Subs[i].FirstSeq < st.Subs[j].FirstSeq
		}
		return st.Subs[i].Token < st.Subs[j].Token
	})
	return st
}
