// Package hub fans a single live DMP source out to many multipath
// subscribers.
//
// The paper's server (internal/core) serves exactly one client: one CBR
// generator, one queue, one session. A broadcast hub keeps the single
// generator but replaces the queue with a shared ring of the most recent
// LagWindow packets; every subscriber owns a cursor into that ring, so one
// generation goroutine serves all subscribers without per-subscriber copies
// of the queue. Each subscriber is its own DMP multipath session: its path
// connections pop from the subscriber's cursor under the hub lock and block
// in Write, so send-buffer backpressure allocates packets across that
// subscriber's paths exactly as in the single-client scheme — and
// independently of every other subscriber.
//
// A subscriber that cannot keep up falls behind the ring. The hub then
// applies the configured slow-subscriber policy at generation time:
// DropOldest advances the laggard's cursor to the oldest live packet and
// counts the skipped packets as drops (the client sees a sequence gap);
// Evict disconnects the subscriber outright. Either way, one stalled
// subscriber cannot make the generator or its peers late — the per-packet
// cost of a slow client is bounded by the ring, not by the stream.
//
// Joining is a 40-byte wire handshake (core.Join): each path connection
// carries the stream id and a subscriber token, so a client's 2nd..Kth
// connections attach to the same subscription. After the join, each path
// speaks the unchanged v1 stream format, with packet numbers rebased to the
// subscriber's join point so existing receivers (core.Receive, core.Play)
// work verbatim.
package hub

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"dmpstream/internal/core"
)

// Policy selects what happens to a subscriber whose lag exceeds the window.
type Policy int

const (
	// DropOldest skips the subscriber's cursor ahead to the oldest packet
	// still in the ring, counting the skipped packets as drops.
	DropOldest Policy = iota
	// Evict disconnects the subscriber.
	Evict
)

func (p Policy) String() string {
	switch p {
	case DropOldest:
		return "drop-oldest"
	case Evict:
		return "evict"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// joinTimeout bounds how long an accepted connection may take to present
// its join request before the hub gives up on it.
const joinTimeout = 10 * time.Second

// DefaultReattachGrace is how long a subscriber outlives its last path by
// default, waiting for the client to redial with the same token.
const DefaultReattachGrace = 5 * time.Second

// DefaultResendWindow is the default per-path retransmission window: the
// last packets a dead path wrote that are replayed to the subscriber's
// surviving (or re-attached) paths.
const DefaultResendWindow = 64

// Config describes a broadcast hub.
type Config struct {
	// Stream is the live source (rate, payload, count, fill, stall timeout).
	Stream core.Config
	// StreamID names the stream; joins carrying another id are rejected.
	// Default "live".
	StreamID string
	// LagWindow is the ring size: the number of most recent packets a
	// subscriber may lag behind the generator before Policy applies.
	// Default 1024.
	LagWindow int
	// Policy is the slow-subscriber policy (default DropOldest).
	Policy Policy
	// PathWriteBuffer, when positive, caps each path's kernel send buffer
	// (SetWriteBuffer) so backpressure from a slow subscriber reaches the
	// hub within a bounded number of packets. 0 keeps the kernel default.
	PathWriteBuffer int
	// ReattachGrace keeps a subscription alive after its last path dies
	// abnormally mid-stream, so a client that redials within the window and
	// presents the same token resumes with its original rebased numbering
	// (no wire change — the re-attach is an ordinary join). 0 selects
	// DefaultReattachGrace; negative disables the grace (a subscriber dies
	// with its last path, the pre-resilience behavior).
	ReattachGrace time.Duration
	// ResendWindow is how many of a path's most recently written packets are
	// queued for retransmission to the subscriber's other paths when that
	// path dies — TCP acknowledges bytes to the hub's kernel without telling
	// the hub the client saw them, so the tail of a dead path must be resent
	// to conserve the stream. Duplicates are deduplicated client-side;
	// resends whose packet has already fallen out of the ring are counted as
	// drops. 0 selects DefaultResendWindow; negative disables resends.
	ResendWindow int
}

func (c Config) withDefaults() (Config, error) {
	var err error
	if c.Stream, err = c.Stream.Normalized(); err != nil {
		return c, err
	}
	if c.StreamID == "" {
		c.StreamID = "live"
	}
	if len(c.StreamID) > core.MaxStreamID {
		return c, fmt.Errorf("hub: stream id %q longer than %d bytes", c.StreamID, core.MaxStreamID)
	}
	if c.LagWindow == 0 {
		c.LagWindow = 1024
	}
	if c.LagWindow < 0 {
		return c, fmt.Errorf("hub: lag window %d < 0", c.LagWindow)
	}
	if c.Policy != DropOldest && c.Policy != Evict {
		return c, fmt.Errorf("hub: unknown policy %d", int(c.Policy))
	}
	if c.PathWriteBuffer < 0 {
		return c, fmt.Errorf("hub: path write buffer %d < 0", c.PathWriteBuffer)
	}
	switch {
	case c.ReattachGrace == 0:
		c.ReattachGrace = DefaultReattachGrace
	case c.ReattachGrace < 0:
		c.ReattachGrace = 0 // disabled
	}
	switch {
	case c.ResendWindow == 0:
		c.ResendWindow = DefaultResendWindow
	case c.ResendWindow < 0:
		c.ResendWindow = 0 // disabled
	}
	if c.ResendWindow > c.LagWindow {
		// Resends beyond the ring could never be served anyway.
		c.ResendWindow = c.LagWindow
	}
	return c, nil
}

// ErrStreamEnded is returned by Attach once the stream is over or the hub
// has been closed.
var ErrStreamEnded = errors.New("hub: stream ended")

// slot is one generated packet in the shared ring.
type slot struct {
	gen     int64  // generation timestamp, UnixNano
	payload []byte // filled content; nil when Config.Stream.Fill is nil
}

// subscriber is one multipath subscription: a cursor into the ring plus the
// path connections attached under its token. All mutable fields are guarded
// by the hub mutex; first and token are immutable after creation.
type subscriber struct {
	token core.Token
	first int64 // absolute sequence at join; frames are rebased to it

	cur      int64      // guarded by mu (the hub's); absolute next sequence to fetch
	paths    int        // guarded by mu; live path senders
	nextPath int        // guarded by mu; next path index to hand out
	sent     int64      // guarded by mu
	dropped  int64      // guarded by mu
	evicted  bool       // guarded by mu
	conns    []net.Conn // guarded by mu

	// Path-death bookkeeping. resend holds absolute sequences a dead path
	// may not have delivered, served (oldest first) before the cursor by any
	// of the subscriber's paths. deaths counts abnormal path deaths;
	// deadPaths counts deaths not yet matched by a re-attach. graceGen
	// versions the pending grace timer so a timer from an earlier death
	// cannot delete a subscriber that re-attached and died again.
	resend    []int64 // guarded by mu; sorted ascending, deduplicated
	deaths    int64   // guarded by mu
	deadPaths int     // guarded by mu
	graceGen  int64   // guarded by mu
}

// Hub is a running broadcast: one generator, a shared ring, N subscribers.
type Hub struct {
	cfg Config

	mu   sync.Mutex
	cond *sync.Cond
	wg   sync.WaitGroup

	ring      []slot // guarded by mu
	head      int64  // guarded by mu; absolute sequence of the next packet to generate
	generated int64  // guarded by mu
	stopped   bool   // guarded by mu
	genDone   bool   // guarded by mu
	closed    bool   // guarded by mu
	start     time.Time
	stopCh    chan struct{} // closed once the stream is over (Stop/Close/Count)
	stopSig   bool          // guarded by mu; stopCh already closed

	subs    map[core.Token]*subscriber // guarded by mu
	lns     []net.Listener             // guarded by mu
	pending map[net.Conn]struct{}      // guarded by mu; accepted conns mid-handshake

	totalSent    int64 // guarded by mu
	totalDropped int64 // guarded by mu
	evictedCount int64 // guarded by mu
	pathErrors   int64 // guarded by mu
	totalResent  int64 // guarded by mu; packets replayed from resend queues
	reattached   int64 // guarded by mu; joins that revived a dead path's slot
}

// New validates cfg, starts the live generator and returns the hub.
// Subscribers attach via Serve or Attach; shut down with Stop+Wait
// (graceful: every path drains and receives an end marker) or Close.
func New(cfg Config) (*Hub, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	h := &Hub{
		cfg:     cfg,
		ring:    make([]slot, cfg.LagWindow),
		subs:    make(map[core.Token]*subscriber),
		pending: make(map[net.Conn]struct{}),
		start:   time.Now(),
		stopCh:  make(chan struct{}),
	}
	h.cond = sync.NewCond(&h.mu)
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		h.generate()
	}()
	return h, nil
}

// generate produces packets on the CBR schedule into the ring, applying the
// slow-subscriber policy after each packet.
func (h *Hub) generate() {
	period := time.Duration(float64(time.Second) / h.cfg.Stream.Mu)
	base := time.Now()
	for n := int64(0); ; n++ {
		if h.cfg.Stream.Count > 0 && n >= h.cfg.Stream.Count {
			break
		}
		// Drift-free schedule: packet n is due at base + n/µ.
		due := base.Add(time.Duration(n) * period)
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		h.mu.Lock()
		if h.stopped {
			h.mu.Unlock()
			break
		}
		s := &h.ring[h.head%int64(len(h.ring))]
		s.gen = time.Now().UnixNano()
		if h.cfg.Stream.Fill != nil {
			if s.payload == nil {
				s.payload = make([]byte, h.cfg.Stream.PayloadSize)
			}
			h.cfg.Stream.Fill(uint32(h.head), s.payload)
		}
		h.head++
		h.generated++
		h.enforceLagLocked()
		h.cond.Broadcast()
		h.mu.Unlock()
	}
	h.mu.Lock()
	h.genDone = true
	h.signalStopLocked()
	h.cond.Broadcast()
	h.mu.Unlock()
}

// signalStopLocked closes stopCh exactly once, waking pending grace timers
// so Wait never blocks on a dead subscriber's countdown. Caller holds h.mu.
func (h *Hub) signalStopLocked() {
	if !h.stopSig {
		h.stopSig = true
		close(h.stopCh)
	}
}

// enforceLagLocked applies the slow-subscriber policy to every subscriber
// whose cursor has fallen out of the ring. Caller holds h.mu.
func (h *Hub) enforceLagLocked() {
	oldest := h.head - int64(len(h.ring))
	if oldest <= 0 {
		return
	}
	for _, sub := range h.subs {
		if sub.evicted || sub.cur >= oldest {
			continue
		}
		switch h.cfg.Policy {
		case DropOldest:
			skipped := oldest - sub.cur
			sub.dropped += skipped
			h.totalDropped += skipped
			sub.cur = oldest
		case Evict:
			sub.evicted = true
			h.evictedCount++
			for _, c := range sub.conns {
				_ = c.Close()
			}
		}
	}
}

// pop copies the subscriber's next frame (header + payload) into frame and
// returns its absolute sequence, blocking while the subscriber is caught up
// and generation continues. A dead path's resend queue is served before the
// cursor, so retransmissions jump ahead of new content; resends whose packet
// has already left the ring are dropped and counted. ok=false means the
// stream is over for this subscriber: drained after Stop/Count, evicted, or
// the hub force-closed.
func (h *Hub) pop(sub *subscriber, frame []byte) (seq int64, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for {
		if sub.evicted || h.closed {
			return 0, false
		}
		oldest := h.head - int64(len(h.ring))
		for len(sub.resend) > 0 {
			seq := sub.resend[0]
			sub.resend = sub.resend[1:]
			if seq < oldest {
				// Fell out of the ring while the path was down: the
				// subscriber will see a gap, same as a DropOldest skip.
				sub.dropped++
				h.totalDropped++
				continue
			}
			h.fillFrameLocked(sub, seq, frame)
			h.totalResent++
			return seq, true
		}
		if sub.cur < h.head {
			seq := sub.cur
			h.fillFrameLocked(sub, seq, frame)
			sub.cur++
			return seq, true
		}
		if h.stopped || h.genDone {
			return 0, false
		}
		h.cond.Wait()
	}
}

// fillFrameLocked renders ring packet seq into frame with the subscriber's
// rebased numbering (each subscriber sees a standalone 0-based v1 stream).
// Caller holds h.mu and guarantees seq is still in the ring.
func (h *Hub) fillFrameLocked(sub *subscriber, seq int64, frame []byte) {
	s := &h.ring[seq%int64(len(h.ring))]
	core.PutFrameHeader(frame, uint32(seq-sub.first), s.gen)
	if s.payload != nil {
		copy(frame[core.FrameHeaderSize:], s.payload)
	}
	sub.sent++
	h.totalSent++
}

// sendLoop is one subscriber path's sender: stream header, frames popped
// from the subscriber's cursor, end marker. On failure it returns the
// absolute sequences this path wrote most recently (oldest first, the
// in-hand packet last) — TCP may have buffered but never delivered them, so
// finishPath queues them for retransmission on the subscriber's other paths.
func (h *Hub) sendLoop(sub *subscriber, pathIdx, numPaths int, conn net.Conn) (recent []int64, err error) {
	if err := core.WriteStreamHeader(conn, pathIdx, numPaths, h.cfg.Stream.PayloadSize, h.cfg.Stream.Mu); err != nil {
		return nil, fmt.Errorf("hub: path %d header: %w", pathIdx, err)
	}
	frame := make([]byte, core.FrameHeaderSize+h.cfg.Stream.PayloadSize)
	win := h.cfg.ResendWindow
	var ring []int64 // last win sequences written, ring[next%win] next to overwrite
	next := 0
	for {
		seq, ok := h.pop(sub, frame)
		if !ok {
			break
		}
		if err := h.writeFrame(conn, frame); err != nil {
			return append(unrollSeqs(ring, next), seq), fmt.Errorf("hub: path %d write: %w", pathIdx, err)
		}
		if win > 0 {
			if len(ring) < win {
				ring = append(ring, seq)
			} else {
				ring[next%win] = seq
			}
			next++
		}
	}
	// End marker: carries the number of packets generated since this
	// subscriber joined, matching its rebased numbering.
	h.mu.Lock()
	n := h.head - sub.first
	h.mu.Unlock()
	core.PutFrameHeader(frame, core.EndMarker, n)
	if err := h.writeFrame(conn, frame); err != nil {
		return unrollSeqs(ring, next), fmt.Errorf("hub: path %d end marker: %w", pathIdx, err)
	}
	return nil, nil
}

// unrollSeqs returns the ring's contents oldest first.
func unrollSeqs(ring []int64, next int) []int64 {
	if len(ring) == 0 {
		return nil
	}
	out := make([]int64, 0, len(ring)+1)
	if next <= len(ring) {
		return append(out, ring...)
	}
	i := next % len(ring)
	out = append(out, ring[i:]...)
	return append(out, ring[:i]...)
}

func (h *Hub) writeFrame(conn net.Conn, frame []byte) error {
	if d := h.cfg.Stream.WriteStallTimeout; d > 0 {
		conn.SetWriteDeadline(time.Now().Add(d))
	}
	_, err := conn.Write(frame)
	return err
}

// Attach performs the server side of the join handshake on conn and starts
// a path sender for the joined subscription. It closes conn on any error.
func (h *Hub) Attach(conn net.Conn) error {
	conn.SetReadDeadline(time.Now().Add(joinTimeout))
	j, err := core.ReadJoin(conn)
	conn.SetReadDeadline(time.Time{})
	if err != nil {
		_ = conn.Close()
		return fmt.Errorf("hub: join: %w", err)
	}
	if j.StreamID != h.cfg.StreamID {
		_ = conn.Close()
		return fmt.Errorf("hub: join for unknown stream %q (serving %q)", j.StreamID, h.cfg.StreamID)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
		if h.cfg.PathWriteBuffer > 0 {
			tc.SetWriteBuffer(h.cfg.PathWriteBuffer)
		}
	}

	h.mu.Lock()
	if h.closed || h.stopped || h.genDone {
		h.mu.Unlock()
		_ = conn.Close()
		return ErrStreamEnded
	}
	sub := h.subs[j.Token]
	if sub == nil {
		sub = &subscriber{token: j.Token, first: h.head, cur: h.head}
		h.subs[j.Token] = sub
	}
	if sub.evicted {
		h.mu.Unlock()
		_ = conn.Close()
		return fmt.Errorf("hub: subscriber %s is evicted", j.Token)
	}
	pathIdx := sub.nextPath
	sub.nextPath++
	sub.paths++
	numPaths := sub.paths
	sub.conns = append(sub.conns, conn)
	if sub.deadPaths > 0 {
		// This join revives a slot an abnormal death left open: the token
		// survived the flap and the subscription resumes where it was.
		sub.deadPaths--
		h.reattached++
	}
	h.wg.Add(1)
	h.mu.Unlock()

	go func() {
		defer h.wg.Done()
		recent, err := h.sendLoop(sub, pathIdx, numPaths, conn)
		h.finishPath(sub, conn, recent, err)
	}()
	return nil
}

// finishPath retires one path sender. A path that drained normally (or died
// after the stream ended) just goes away, and the subscriber disappears with
// its last path. A path that died abnormally mid-stream instead queues its
// recent writes for retransmission and, if it was the subscriber's last
// path, starts the re-attach grace countdown: the subscription stays in the
// hub so a redialing client's token still resolves, and is reaped only if
// the window expires (or the stream ends) with no path back.
func (h *Hub) finishPath(sub *subscriber, conn net.Conn, recent []int64, err error) {
	_ = conn.Close()
	h.mu.Lock()
	defer h.mu.Unlock()
	sub.paths--
	for i, c := range sub.conns {
		if c == conn {
			sub.conns = append(sub.conns[:i], sub.conns[i+1:]...)
			break
		}
	}
	abnormal := err != nil && !sub.evicted && !h.closed
	if abnormal {
		h.pathErrors++
	}
	if abnormal && !h.stopped && !h.genDone {
		sub.deaths++
		sub.deadPaths++
		if len(recent) > 0 {
			sub.resend = mergeSeqs(sub.resend, recent)
		}
		if sub.paths > 0 {
			return // surviving paths serve the resends
		}
		if h.cfg.ReattachGrace > 0 {
			sub.graceGen++
			gen := sub.graceGen
			h.wg.Add(1)
			go func() {
				defer h.wg.Done()
				t := time.NewTimer(h.cfg.ReattachGrace)
				select {
				case <-t.C:
				case <-h.stopCh: // stream over: no re-attach can succeed
					t.Stop()
				}
				h.mu.Lock()
				// A re-attach (paths > 0) or a newer death's timer
				// (graceGen moved on) supersedes this countdown.
				if sub.paths == 0 && sub.graceGen == gen {
					delete(h.subs, sub.token)
				}
				h.mu.Unlock()
			}()
			return
		}
	}
	if sub.paths == 0 {
		delete(h.subs, sub.token)
	}
}

// mergeSeqs folds newly dead sequences into a sorted, deduplicated resend
// queue so retransmits go out oldest first and at most once.
func mergeSeqs(have, add []int64) []int64 {
	out := make([]int64, 0, len(have)+len(add))
	out = append(out, have...)
	out = append(out, add...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	n := 0
	for i, s := range out {
		if i == 0 || s != out[n-1] {
			out[n] = s
			n++
		}
	}
	return out[:n]
}

// Serve accepts connections on ln and attaches each as a subscriber path.
// It returns when ln is closed; per-connection join failures are counted in
// Stats, not returned.
func (h *Hub) Serve(ln net.Listener) error {
	h.mu.Lock()
	h.lns = append(h.lns, ln)
	closed := h.closed
	h.mu.Unlock()
	if closed {
		_ = ln.Close()
		return ErrStreamEnded
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			h.mu.Lock()
			defer h.mu.Unlock()
			if h.closed || h.stopped {
				return nil
			}
			return err
		}
		// The handshake goroutine is wg-tracked and its conn is registered
		// so Close can cut a client that stalls mid-handshake instead of
		// leaking the goroutine for up to joinTimeout. Adding to wg under
		// mu with closed checked first keeps Add ordered before Close's
		// Wait.
		h.mu.Lock()
		if h.closed {
			h.mu.Unlock()
			_ = conn.Close()
			continue
		}
		h.pending[conn] = struct{}{}
		h.wg.Add(1)
		h.mu.Unlock()
		go func() {
			defer h.wg.Done()
			err := h.Attach(conn)
			h.mu.Lock()
			delete(h.pending, conn)
			if err != nil && !errors.Is(err, ErrStreamEnded) {
				h.pathErrors++
			}
			h.mu.Unlock()
		}()
	}
}

// Stop ends generation. Path senders drain the remaining ring contents and
// emit end markers; follow with Wait for a graceful shutdown.
func (h *Hub) Stop() {
	h.mu.Lock()
	h.stopped = true
	h.signalStopLocked()
	h.cond.Broadcast()
	h.mu.Unlock()
}

// Wait blocks until generation has ended (Stop or Count) and every path
// sender has drained or failed. A subscriber that has stopped reading can
// hold Wait up indefinitely unless Config.Stream.WriteStallTimeout is set
// or Close is used.
func (h *Hub) Wait() {
	h.wg.Wait()
}

// Close force-stops the hub: generation ends, all listeners and subscriber
// connections are closed, and new attaches are refused. It waits for the
// sender goroutines to exit. Unlike Stop+Wait, paths are NOT drained.
func (h *Hub) Close() {
	h.mu.Lock()
	h.closed = true
	h.stopped = true
	h.signalStopLocked()
	for _, ln := range h.lns {
		_ = ln.Close()
	}
	for _, sub := range h.subs {
		for _, c := range sub.conns {
			_ = c.Close()
		}
	}
	for c := range h.pending {
		_ = c.Close()
	}
	h.cond.Broadcast()
	h.mu.Unlock()
	h.wg.Wait()
}

// Generated returns the number of packets generated so far.
func (h *Hub) Generated() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.generated
}

// SubscriberStats is one subscriber's snapshot within Stats.
type SubscriberStats struct {
	Token    string // hex token
	Paths    int    // live path connections
	FirstSeq int64  // absolute sequence at join
	Lag      int64  // packets behind the generator
	Sent     int64  // packets handed to this subscriber's paths
	Dropped  int64  // packets skipped by DropOldest or lost from resend queues
	Deaths   int64  // abnormal path deaths so far
	Pending  int    // resend-queue packets not yet retransmitted
	Evicted  bool
}

// Stats is a point-in-time snapshot of the hub.
type Stats struct {
	StreamID    string
	Generated   int64         // packets generated
	Subscribers int           // currently attached subscribers
	Sent        int64         // packets written across all subscribers
	Dropped     int64         // packets skipped by DropOldest, all subscribers
	Evicted     int64         // subscribers evicted so far
	PathErrors  int64         // paths that ended in an error (left, stalled out, bad join)
	Resent      int64         // packets retransmitted from dead paths' windows
	Reattached  int64         // joins that revived a dead path within the grace
	Elapsed     time.Duration // since the hub started
	GoodputPkts float64       // aggregate delivered packets per second
	Subs        []SubscriberStats
}

// Stats returns a snapshot of the hub and its current subscribers.
func (h *Hub) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := Stats{
		StreamID:    h.cfg.StreamID,
		Generated:   h.generated,
		Subscribers: len(h.subs),
		Sent:        h.totalSent,
		Dropped:     h.totalDropped,
		Evicted:     h.evictedCount,
		PathErrors:  h.pathErrors,
		Resent:      h.totalResent,
		Reattached:  h.reattached,
		Elapsed:     time.Since(h.start),
	}
	if s := st.Elapsed.Seconds(); s > 0 {
		st.GoodputPkts = float64(st.Sent) / s
	}
	for _, sub := range h.subs {
		st.Subs = append(st.Subs, SubscriberStats{
			Token:    sub.token.String(),
			Paths:    sub.paths,
			FirstSeq: sub.first,
			Lag:      h.head - sub.cur,
			Sent:     sub.sent,
			Dropped:  sub.dropped,
			Deaths:   sub.deaths,
			Pending:  len(sub.resend),
			Evicted:  sub.evicted,
		})
	}
	sort.Slice(st.Subs, func(i, j int) bool {
		if st.Subs[i].FirstSeq != st.Subs[j].FirstSeq {
			return st.Subs[i].FirstSeq < st.Subs[j].FirstSeq
		}
		return st.Subs[i].Token < st.Subs[j].Token
	})
	return st
}
