package hub

import (
	"sync"
	"sync/atomic"
	"time"

	"dmpstream/internal/core"
)

// slot is one generated packet in the shared ring.
type slot struct {
	// seq is the absolute sequence the slot currently holds, -1 until its
	// first publish. The CBR generator fills every position in order, so
	// seq always matches the requested sequence there; an external source
	// (relay ingest, ring.publishAt) may advance the head past sequences it
	// never received, leaving the skipped positions with a stale seq — the
	// read paths treat a seq mismatch as "not in the ring" and the caller
	// counts a drop, so a gap can never serve another packet's bytes.
	seq int64
	gen int64 // generation timestamp, UnixNano
	// payload is the refcounted shared buffer holding the filled content;
	// nil only before the slot's first publish. The ring holds one
	// reference for as long as the buffer sits in the slot; publish drops
	// that reference when the head laps, so a zero-copy sender that pinned
	// the buffer keeps valid bytes until its own release. Any reference
	// that leaves the ring's lock scope without a pin is a borrow with
	// frame-scoped lifetime.
	payload *payloadBuf // bufown owned — slot buffer, recycled through the pool when the head laps
}

// ring is the shared packet store every shard fans out from: a fixed
// window of the most recent LagWindow packets, written only by the
// generator and read by every subscriber path. The generator publishes
// under the exclusive lock; send loops either copy frames out under the
// shared lock (ring.frame, the sanctioned copy point) or pin the shared
// buffer's refcount under the same shared lock (ring.pin/pinBatch, the
// zero-copy path), so fan-out readers never serialize against each other
// — only against the (brief, µ-paced) publish of a new packet. A slot's
// content is immutable from publish until every reference is dropped, and
// both read paths revalidate the sequence under the lock hold, so a
// reader can never observe a torn overwrite or pin a recycled buffer.
//
// head is mirrored into an atomic so shards compute lag and cursor math
// (sub.cur < head) without touching the ring lock at all; only the
// actual frame copy or pin takes the read lock.
type ring struct {
	n    int64 // capacity in packets; immutable after newRing
	pool *bufPool

	mu    sync.RWMutex
	slots []slot // guarded by mu
	head  int64  // guarded by mu; absolute sequence of the next packet to publish

	headA atomic.Int64 // mirror of head, published after each write
}

// newRing builds the ring with every slot invalid (seq -1) so a gap
// position can never masquerade as a published packet.
// nolint:lockguard constructor — the ring has not been published to any
// reader yet, so the slot init needs no lock
func newRing(n int, pool *bufPool) *ring {
	r := &ring{n: int64(n), pool: pool, slots: make([]slot, n)}
	for i := range r.slots {
		r.slots[i].seq = -1 // no slot is valid before its first publish
	}
	return r
}

// size returns the ring capacity in packets.
func (r *ring) size() int64 { return r.n }

// headSeq returns the live edge: the absolute sequence of the next
// packet to be published. Lock-free.
func (r *ring) headSeq() int64 { return r.headA.Load() }

// publish writes the next packet into the ring and advances the head,
// returning the new head sequence. Only the generator calls publish.
// The fresh buffer is acquired from the pool and filled before the lock
// is taken — it is private until the swap below, and only the generator
// advances the head, so the exclusive critical section shrinks to a
// pointer swap. The lapped occupant's ring reference is dropped after
// the swap; if no sender still pins it, it returns to the pool here.
//
// bufown sink — slot ingest: fill writes the payload in place while the
// buffer is still private, before any reader can alias the slot.
func (r *ring) publish(fill func(pkt uint32, buf []byte)) int64 {
	pb := r.pool.get()
	pb.fill(fill, uint32(r.headA.Load()))
	gen := time.Now().UnixNano()
	r.mu.Lock()
	s := &r.slots[r.head%int64(len(r.slots))]
	old := s.payload
	s.seq = r.head
	s.gen = gen
	s.payload = pb
	r.head++
	head := r.head
	r.headA.Store(head)
	r.mu.Unlock()
	if old != nil && old.refs.Add(-1) == 0 {
		r.pool.put(old)
	}
	return head
}

// publishAt places an externally received packet at absolute sequence seq
// and advances the head to seq+1 — the external-source ingest point (an
// edge relay republishing its upstream feed). seq must be at or past the
// current head: the forwarder publishes in ascending order, so anything
// below head is a late duplicate and is refused (ok=false) rather than
// backfilled. Skipped positions between the old head and seq keep their
// stale occupants; the seq-validity check in frame/pin/pinBatch makes
// those gaps read as drops, never as another packet's bytes.
//
// bufown sink — slot ingest: the borrowed payload is copied into a pool
// buffer that is still private, before any reader can alias the slot.
func (r *ring) publishAt(seq, gen int64, payload []byte) (head int64, ok bool) {
	pb := r.pool.get()
	pb.fillFrom(payload)
	r.mu.Lock()
	if seq < r.head {
		r.mu.Unlock()
		if pb.refs.Add(-1) == 0 {
			r.pool.put(pb)
		}
		return r.headA.Load(), false
	}
	s := &r.slots[seq%int64(len(r.slots))]
	old := s.payload
	s.seq = seq
	s.gen = gen
	s.payload = pb
	r.head = seq + 1
	r.headA.Store(r.head)
	r.mu.Unlock()
	if old != nil && old.refs.Add(-1) == 0 {
		r.pool.put(old)
	}
	return seq + 1, true
}

// frame renders ring packet seq into frame with numbering rebased to
// first (each subscriber sees a standalone 0-based v1 stream). It
// returns false when seq has already been lapped by the head — the
// caller counts a drop — and revalidates under the read lock, so a
// concurrent publish can never hand out a half-overwritten slot. This is
// the DeliveryCopy path; zero-copy senders use pin/pinBatch instead.
//
// hotpath copy-point — the one sanctioned payload copy per delivered
// frame; copycheck flags frame-payload copies anywhere else on the path.
//
// bufown sink — the copy point: the slot borrow dies inside this call,
// and the caller's frame buffer leaves owning independent bytes.
func (r *ring) frame(seq, first int64, frame []byte) bool {
	r.mu.RLock()
	if seq < r.head-int64(len(r.slots)) || seq >= r.head {
		r.mu.RUnlock()
		return false
	}
	s := &r.slots[seq%int64(len(r.slots))]
	if s.seq != seq || s.payload == nil {
		// An external-source gap: the head advanced past seq without a
		// publish. The caller counts a drop, same as a lapped slot.
		r.mu.RUnlock()
		return false
	}
	core.PutFrameHeader(frame, uint32(seq-first), s.gen)
	copy(frame[core.FrameHeaderSize:], s.payload.data)
	r.mu.RUnlock()
	return true
}

// pin acquires a reference on ring packet seq for zero-copy delivery,
// returning the shared buffer and the slot's generation timestamp.
// ok=false means seq was already lapped. The refcount is raised under
// the read lock — publish recycles a lapped slot only under the
// exclusive lock, so a successful pin can never hand out a buffer that
// is back in the pool. The caller must drop the reference (releaseBatch)
// once its write completes.
func (r *ring) pin(seq int64) (pb *payloadBuf, gen int64, ok bool) {
	r.mu.RLock()
	if seq < r.head-int64(len(r.slots)) || seq >= r.head {
		r.mu.RUnlock()
		return nil, 0, false
	}
	s := &r.slots[seq%int64(len(r.slots))]
	if s.seq != seq || s.payload == nil {
		// An external-source gap; reads as a drop, like a lapped slot.
		r.mu.RUnlock()
		return nil, 0, false
	}
	pb = s.payload
	pb.refs.Add(1)
	gen = s.gen
	r.mu.RUnlock()
	return pb, gen, true
}

// pinBatch pins up to max consecutive packets starting at start into b
// under one read-lock hold, returning how many it pinned and how many
// leading packets were unservable — lapped by the head, or external-source
// gap slots the head advanced past (the caller counts both as drops). The
// batch stops early at an interior gap; the next call's leading-skip pass
// accounts for it. The pinned buffers, sequences and generation stamps
// land in b's preallocated slots starting at b.n.
func (r *ring) pinBatch(start int64, max int, b *batch) (pinned int, skipped int64) {
	r.mu.RLock()
	if tail := r.head - int64(len(r.slots)); start < tail {
		skipped = tail - start
		start = tail
	}
	for start < r.head {
		s := &r.slots[start%int64(len(r.slots))]
		if s.seq == start && s.payload != nil {
			break
		}
		skipped++
		start++
	}
	for pinned < max && start < r.head {
		s := &r.slots[start%int64(len(r.slots))]
		if s.seq != start || s.payload == nil {
			break // interior gap: stop the batch; the next call skips it
		}
		pb := s.payload
		pb.refs.Add(1)
		b.bufs[b.n] = pb
		b.gens[b.n] = s.gen
		b.seqs[b.n] = start
		b.n++
		pinned++
		start++
	}
	r.mu.RUnlock()
	return pinned, skipped
}
