package hub

import (
	"sync"
	"sync/atomic"
	"time"

	"dmpstream/internal/core"
)

// slot is one generated packet in the shared ring.
type slot struct {
	gen int64 // generation timestamp, UnixNano
	// payload is the filled content; nil when Config.Stream.Fill is nil.
	// The buffer is reused every ring lap, so any reference that leaves
	// the ring's lock scope is a borrow with frame-scoped lifetime.
	payload []byte // bufown owned — slot buffer, rewritten when the head laps
}

// ring is the shared packet store every shard fans out from: a fixed
// window of the most recent LagWindow packets, written only by the
// generator and read by every subscriber path. The generator publishes
// under the exclusive lock; send loops copy frames out under the shared
// lock, so fan-out readers never serialize against each other — only
// against the (brief, µ-paced) publish of a new packet. A slot's content
// is immutable from publish until the head laps it, and the copy-out
// revalidates the sequence under the same lock hold, so a reader can
// never observe a torn overwrite.
//
// head is mirrored into an atomic so shards compute lag and cursor math
// (sub.cur < head) without touching the ring lock at all; only the
// actual frame copy takes the read lock.
type ring struct {
	n int64 // capacity in packets; immutable after newRing

	mu    sync.RWMutex
	slots []slot // guarded by mu
	head  int64  // guarded by mu; absolute sequence of the next packet to publish

	headA atomic.Int64 // mirror of head, published after each write
}

func newRing(n int) *ring {
	return &ring{n: int64(n), slots: make([]slot, n)}
}

// size returns the ring capacity in packets.
func (r *ring) size() int64 { return r.n }

// headSeq returns the live edge: the absolute sequence of the next
// packet to be published. Lock-free.
func (r *ring) headSeq() int64 { return r.headA.Load() }

// publish writes the next packet into the ring and advances the head,
// returning the new head sequence. Only the generator calls publish.
//
// bufown sink — slot ingest: fill writes the payload in place under the
// exclusive lock, before any reader can alias the slot.
func (r *ring) publish(fill func(pkt uint32, buf []byte), payloadSize int) int64 {
	r.mu.Lock()
	s := &r.slots[r.head%int64(len(r.slots))]
	s.gen = time.Now().UnixNano()
	if fill != nil {
		if s.payload == nil {
			s.payload = make([]byte, payloadSize) // nolint:hotalloc lazy slot buffer: one make per slot per hub lifetime, then reused every lap
		}
		fill(uint32(r.head), s.payload)
	}
	r.head++
	head := r.head
	r.headA.Store(head)
	r.mu.Unlock()
	return head
}

// frame renders ring packet seq into frame with numbering rebased to
// first (each subscriber sees a standalone 0-based v1 stream). It
// returns false when seq has already been lapped by the head — the
// caller counts a drop — and revalidates under the read lock, so a
// concurrent publish can never hand out a half-overwritten slot.
//
// hotpath copy-point — the one sanctioned payload copy per delivered
// frame; copycheck flags frame-payload copies anywhere else on the path.
//
// bufown sink — the copy point: the slot borrow dies inside this call,
// and the caller's frame buffer leaves owning independent bytes.
func (r *ring) frame(seq, first int64, frame []byte) bool {
	r.mu.RLock()
	if seq < r.head-int64(len(r.slots)) || seq >= r.head {
		r.mu.RUnlock()
		return false
	}
	s := &r.slots[seq%int64(len(r.slots))]
	core.PutFrameHeader(frame, uint32(seq-first), s.gen)
	if s.payload != nil {
		copy(frame[core.FrameHeaderSize:], s.payload)
	}
	r.mu.RUnlock()
	return true
}
