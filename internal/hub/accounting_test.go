package hub

import (
	"testing"

	"dmpstream/internal/core"
)

// TestBytesHeldSharedAccounting pins the shared-buffer accounting
// identity: with payloads held once in the ring and only headers rendered
// per subscriber, BytesHeld must equal
//
//	(head − minNeed) × payloadSize  +  Σ_subs (head − cur + len(resend)) × FrameHeaderSize
//
// where minNeed is the oldest ring packet any live subscriber still
// needs. The pre-zero-copy accounting charged every subscriber a full
// frame per outstanding packet, double-counting each shared payload once
// per laggard; the hand-computed expectations here would catch that
// regression (the naive sum for the opening scenario is 1232, not 732).
// The identity is re-verified after each degradation-ladder step — clip,
// then eviction — since those are exactly the moves the governor makes
// based on this number.
func TestBytesHeldSharedAccounting(t *testing.T) {
	const payload = 100
	h := ownershipHub(t, 8, payload, 8) // head 8, ring holds 0..7
	sd := h.shards[0]

	mk := func(cur int64, resend []int64) *subscriber {
		tok, err := core.NewToken()
		if err != nil {
			t.Fatal(err)
		}
		sub := &subscriber{token: tok, shard: sd, cur: cur, window: 8, resend: resend}
		sd.mu.Lock()
		sd.subs[tok] = sub
		sd.mu.Unlock()
		h.subCount.Add(1)
		return sub
	}
	// A needs 2..7; B's cursor is at 5 but its resend queue reaches back
	// to 3, so the shared span starts at 2 and payloads 2..7 are counted
	// once even though both subscribers hold references into them.
	subA := mk(2, nil)
	subB := mk(5, []int64{3, 4})

	check := func(step string, wantPayloadFrames, wantHdrFrames int64) {
		t.Helper()
		want := wantPayloadFrames*payload + wantHdrFrames*core.FrameHeaderSize
		if got := h.BytesHeld(); got != want {
			t.Fatalf("%s: BytesHeld = %d, want %d (%d shared payloads + %d headers)",
				step, got, want, wantPayloadFrames, wantHdrFrames)
		}
		if st := h.Stats(); st.BytesHeld != want {
			t.Fatalf("%s: Stats().BytesHeld = %d, want %d", step, st.BytesHeld, want)
		}
	}

	// Span 2..7 once; headers: A (8-2)=6, B (8-5)+2=5.
	check("initial", 6, 11)

	// Ladder step 1: clip A to a 4-packet window (cur 2 → 4). B's resend
	// tail at 3 now anchors the shared span.
	sd.mu.Lock()
	if freed := sd.clipLocked(subA, 4, h.ring.headSeq()); freed != 2 {
		sd.mu.Unlock()
		t.Fatalf("clip freed %d packets, want 2", freed)
	}
	sd.mu.Unlock()
	check("after clip", 5, 9)

	// Ladder step 2: evict B; its pins stop counting the moment it leaves.
	sd.mu.Lock()
	sd.evictLocked(subB)
	sd.mu.Unlock()
	check("after evicting B", 4, 4)

	// No subscribers left: nothing is held, whatever the ring retains.
	sd.mu.Lock()
	sd.evictLocked(subA)
	sd.mu.Unlock()
	check("after evicting A", 0, 0)
}
