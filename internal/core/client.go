package core

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// RedialPolicy says how a Client reacts when a path connection dies before
// the stream ends: wait a backoff delay, dial again, and re-attach the path.
// The zero value never redials — a dead path simply stays dead, which is the
// pre-resilience behavior.
type RedialPolicy struct {
	// Base is the delay before the first redial of a path. 0 disables
	// redialing entirely.
	Base time.Duration
	// Max caps the backoff delay; 0 means no cap.
	Max time.Duration
	// Multiplier grows the delay per consecutive failure (capped exponential
	// backoff). Values below 1 (including 0, the zero-value default) mean 2.
	Multiplier float64
	// Jitter is the fraction of each delay that is randomized: the actual
	// wait is uniform in [delay·(1−Jitter), delay]. 0 keeps delays exact.
	Jitter float64
	// Budget is the maximum number of redials per path; once spent, the path
	// gives up and its last error stands. 0 means unlimited.
	Budget int
	// Seed makes the jitter deterministic: path k draws from an RNG seeded
	// with Seed+k, so the same policy replays the same delays. Required for
	// reproducible failure experiments; has no effect when Jitter is 0.
	Seed int64
}

// delay computes the wait before redial number attempt (0-based) of a path.
func (p RedialPolicy) delay(attempt int, rng *rand.Rand) time.Duration {
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	d := float64(p.Base)
	for i := 0; i < attempt; i++ {
		d *= mult
		if p.Max > 0 && d >= float64(p.Max) {
			d = float64(p.Max)
			break
		}
	}
	if p.Max > 0 && d > float64(p.Max) {
		d = float64(p.Max)
	}
	if p.Jitter > 0 {
		d *= 1 - p.Jitter*rng.Float64()
	}
	return time.Duration(d)
}

// Client consumes a multipath stream and keeps its paths alive: when a path
// connection dies before the end marker, the Client redials it under Policy
// and re-attaches the fresh connection to the same Receiver. Against a hub,
// the re-sent Join carries the original token, so the subscription (and its
// rebased packet numbering) survives the flap; duplicates from the server's
// resend window are absorbed by the Receiver's dedup.
type Client struct {
	// Dial opens path k's connection. Called for the initial attach and for
	// every redial; required.
	Dial func(path int) (net.Conn, error)
	// Paths is how many paths to run. 0 means 1.
	Paths int
	// Join, when set, is written on every new connection before reading the
	// stream header — the hub handshake. Leave nil for a plain Server.
	Join *Join
	// Policy governs redialing; the zero value never redials.
	Policy RedialPolicy
	// Receiver tunes the underlying Receiver (end-of-stream grace).
	Receiver ReceiverOptions
	// OnPathDown, if set, is called when a path's connection fails, with the
	// error that killed it. Called from the path's goroutine.
	OnPathDown func(path int, err error)
	// OnPathUp, if set, is called when a path (re)connects; attempt is 0 for
	// the initial attach, n for the n-th redial. Called from the path's
	// goroutine.
	OnPathUp func(path int, attempt int)
}

// Sink consumes the path connections a Client's redial engine attaches.
// Receiver is the standard implementation (reassemble and dedup into a
// Trace); an edge relay's forwarder is another (republish into a local
// hub). The engine calls Run once per (re)attached connection and stops
// redialing a path once Done is closed or Run's error carries a typed
// *RejectError verdict.
type Sink interface {
	// Run consumes one path connection until the stream's end marker (nil)
	// or a terminal error. Called concurrently for different paths and
	// again for the same path index after a redial; the engine owns conn.
	Run(path int, conn net.Conn) error
	// Done is closed once the stream is over — the signal that redialing
	// any path is pointless.
	Done() <-chan struct{}
}

// Run attaches all paths, plays the redial policy on every failure, and
// blocks until the stream ends or every path has given up. The returned
// error is nil exactly when the stream completed: an end marker arrived and
// every generated packet was received — a path that died and exhausted its
// budget is not an error if the surviving paths (or a redial) delivered the
// full stream.
func (c *Client) Run() (*Trace, error) {
	if c.Dial == nil {
		return nil, errors.New("core: client needs a Dial function")
	}
	r := NewReceiver(c.Receiver)
	errs := c.RunWith(r)
	tr := r.Trace()
	if tr.Expected > 0 && int64(len(tr.Arrivals)) >= tr.Expected {
		return tr, nil
	}
	var pathErrs []error
	for _, err := range errs {
		if err != nil {
			pathErrs = append(pathErrs, err)
		}
	}
	if len(pathErrs) == 0 {
		pathErrs = append(pathErrs, fmt.Errorf("core: stream incomplete: %d of %d packets", len(tr.Arrivals), tr.Expected))
	}
	return tr, errors.Join(pathErrs...)
}

// RunWith is the redial engine under Run, decoupled from the Receiver: it
// attaches every path to sink, plays the redial policy on each failure,
// and blocks until all paths have finished or given up. The returned
// slice holds each path's final error (nil when the path delivered the
// stream's end marker); judging stream completeness is the caller's job,
// since only the sink knows what "complete" means.
func (c *Client) RunWith(sink Sink) []error {
	paths := c.Paths
	if paths == 0 {
		paths = 1
	}
	errs := make([]error, paths)
	if c.Dial == nil {
		for k := range errs {
			errs[k] = errors.New("core: client needs a Dial function")
		}
		return errs
	}
	var wg sync.WaitGroup
	for k := 0; k < paths; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			errs[k] = c.runPath(sink, k)
		}(k)
	}
	wg.Wait()
	return errs
}

// runPath drives one path through connect → consume → (die → backoff →
// redial)* until the stream ends or the redial budget is spent.
func (c *Client) runPath(r Sink, k int) error {
	rng := rand.New(rand.NewSource(c.Policy.Seed + int64(k)))
	for attempt := 0; ; attempt++ {
		err := c.attachOnce(r, k, attempt)
		if err == nil {
			return nil // end marker: this path finished the stream
		}
		if c.OnPathDown != nil {
			c.OnPathDown(k, err)
		}
		var rej *RejectError
		if errors.As(err, &rej) {
			// The server answered with a typed reject (full, draining,
			// evicted, ended): a verdict, not a transient fault — redialing
			// would only be refused again.
			return err
		}
		select {
		case <-r.Done():
			// The stream already ended on another path; redialing is
			// pointless and the hub would refuse a stopped stream anyway.
			return err
		default:
		}
		if c.Policy.Base <= 0 {
			return err
		}
		if c.Policy.Budget > 0 && attempt >= c.Policy.Budget {
			return fmt.Errorf("core: path %d redial budget (%d) spent: %w", k, c.Policy.Budget, err)
		}
		t := time.NewTimer(c.Policy.delay(attempt, rng))
		select {
		case <-t.C:
		case <-r.Done():
			t.Stop()
			return err
		}
	}
}

func (c *Client) attachOnce(r Sink, k, attempt int) error {
	conn, err := c.Dial(k)
	if err != nil {
		return fmt.Errorf("core: path %d dial: %w", k, err)
	}
	defer conn.Close()
	if c.Join != nil {
		if err := WriteJoin(conn, *c.Join); err != nil {
			return fmt.Errorf("core: path %d join: %w", k, err)
		}
	}
	if c.OnPathUp != nil {
		c.OnPathUp(k, attempt)
	}
	return r.Run(k, conn)
}
