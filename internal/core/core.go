// Package core is the real implementation of DMP-streaming over TCP
// connections — the paper's Section 3 scheme, as deployed in its Internet
// experiments (Section 6).
//
// A Server generates CBR video packets into a shared server queue. One
// sender goroutine per path pops packets from the head of the queue and
// writes them to that path's connection with a blocking Write. The pop is
// serialized by the queue lock (the paper's "access to the server queue");
// a sender blocked inside Write holds no lock, so other paths keep fetching.
// Kernel (or relay) send-buffer backpressure therefore allocates packets to
// paths in proportion to their instantaneous achievable throughput — no
// probing, exactly as the paper argues.
//
// The Client reads frames from all paths concurrently, reassembles by packet
// number and records a timestamped arrival trace, from which the fraction of
// late packets is computed for any startup delay in both playback order and
// arrival order (the paper's two accounting modes).
package core

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Config describes the video source.
type Config struct {
	Mu          float64 // generation/playback rate, packets per second
	PayloadSize int     // payload bytes per packet (default 1000)
	Count       int64   // packets to generate; 0 = run until Stop
	// Fill, if set, fills each packet's payload (e.g. with encoded media).
	Fill func(pkt uint32, buf []byte)
	// WriteStallTimeout bounds each per-path Write: a path whose connection
	// stalls longer fails with a timeout error instead of blocking
	// Session.Wait forever. 0 (the default) keeps blocking writes.
	WriteStallTimeout time.Duration
	// StallRetries is how many consecutive stalled writes a path may absorb
	// before it is declared dead. While retrying, the path is in the
	// PathStalled state; a write completing moves it back to PathActive.
	// 0 (the default) declares the path dead on the first stall, matching
	// the pre-state-machine behavior.
	StallRetries int
	// ResendWindow, when positive, keeps the last ResendWindow packets each
	// path wrote; when a path dies, that window is returned to the server
	// queue so a surviving path retransmits it. This closes the in-flight
	// loss hole a dead TCP connection leaves (bytes acknowledged to the
	// sender's kernel but never delivered). Packets the client had in fact
	// already received arrive twice and are deduplicated by the Receiver.
	// 0 (the default) requeues only the single packet in the sender's hand.
	ResendWindow int
}

func (c Config) withDefaults() Config {
	if c.PayloadSize == 0 {
		c.PayloadSize = 1000
	}
	return c
}

func (c Config) validate() error {
	if c.Mu <= 0 {
		return fmt.Errorf("core: rate %v <= 0", c.Mu)
	}
	if c.PayloadSize < 0 || c.PayloadSize > 1<<20 {
		return fmt.Errorf("core: payload size %d out of range", c.PayloadSize)
	}
	if c.Count < 0 {
		return fmt.Errorf("core: count %d < 0", c.Count)
	}
	if c.WriteStallTimeout < 0 {
		return fmt.Errorf("core: write stall timeout %v < 0", c.WriteStallTimeout)
	}
	if c.StallRetries < 0 {
		return fmt.Errorf("core: stall retries %d < 0", c.StallRetries)
	}
	if c.ResendWindow < 0 || c.ResendWindow > 1<<16 {
		return fmt.Errorf("core: resend window %d out of range", c.ResendWindow)
	}
	return nil
}

// Normalized applies defaults and validates, for embedders of Config (such
// as internal/hub) that build their own sender machinery.
func (c Config) Normalized() (Config, error) {
	c = c.withDefaults()
	if err := c.validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// Server streams a live CBR source over multiple paths.
type Server struct {
	cfg Config

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []queued // guarded by mu
	qhead   int      // guarded by mu
	stopped bool     // guarded by mu
	genDone bool     // guarded by mu

	generated int64   // guarded by mu
	pathSent  []int64 // guarded by mu
}

type queued struct {
	pkt uint32
	gen int64 // UnixNano generation timestamp
}

// NewServer validates the configuration and builds a server.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg}
	s.cond = sync.NewCond(&s.mu)
	return s, nil
}

// Stop ends generation; senders drain the queue and emit end markers.
func (s *Server) Stop() {
	s.mu.Lock()
	s.stopped = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Generated returns the number of packets generated so far.
func (s *Server) Generated() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.generated
}

// PathCounts returns how many packets each path carried (valid after Serve).
func (s *Server) PathCounts() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int64, len(s.pathSent))
	copy(out, s.pathSent)
	return out
}

// Serve streams over the given connections, blocking until generation ends
// and every path drains (or fails). It returns the number of packets
// generated and the first error any sender hit (nil if all succeeded).
func (s *Server) Serve(conns []net.Conn) (int64, error) {
	if len(conns) == 0 {
		return 0, errors.New("core: no paths")
	}
	sess := s.Start()
	for _, conn := range conns {
		sess.AddPath(conn)
	}
	return sess.Wait()
}

// PathState is one path's position in the health state machine:
//
//	Active ⇄ Stalled → Dead
//	   └──────┴─────────┴──→ Removed
//
// A path is Active while writes complete, Stalled while a write-stall
// timeout is being retried (Config.StallRetries), Dead once its sender hit a
// terminal error (its unsent window went back to the server queue), and
// Removed after RemovePath retired it administratively.
type PathState int32

const (
	// PathActive: the sender is fetching and writing normally.
	PathActive PathState = iota
	// PathStalled: the last write timed out; the sender is retrying.
	PathStalled
	// PathDead: the sender exited on an error; in-flight packets were
	// returned to the server queue for the surviving paths.
	PathDead
	// PathRemoved: RemovePath drained and retired the path.
	PathRemoved
)

func (s PathState) String() string {
	switch s {
	case PathActive:
		return "active"
	case PathStalled:
		return "stalled"
	case PathDead:
		return "dead"
	case PathRemoved:
		return "removed"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// Session is a running stream whose path membership can change while it is
// live: paths can be added mid-stream (e.g. a second interface coming up)
// and a failing path's sender stops fetching — after handing its unsent
// window back to the server queue — leaving the remaining paths to carry
// the stream. Every path moves through the PathState machine; query it with
// PathStates.
type Session struct {
	srv *Server

	mu     sync.Mutex
	wg     sync.WaitGroup
	errs   []error         // guarded by mu
	stops  []chan struct{} // guarded by mu
	waited bool            // guarded by mu
	states []PathState     // guarded by mu
}

// Start begins packet generation in the background and returns a Session to
// attach paths to. The caller must eventually call Wait.
func (s *Server) Start() *Session {
	sess := &Session{srv: s}
	sess.wg.Add(1) // generation
	go func() {
		defer sess.wg.Done()
		s.generate()
	}()
	return sess
}

// AddPath attaches a connection as a new path and starts its sender. It
// returns the path index. AddPath must not be called after Wait has
// returned.
func (sess *Session) AddPath(conn net.Conn) int {
	sess.mu.Lock()
	if sess.waited {
		sess.mu.Unlock()
		panic("core: AddPath after Wait returned")
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	sess.srv.mu.Lock()
	k := len(sess.srv.pathSent)
	sess.srv.pathSent = append(sess.srv.pathSent, 0)
	sess.srv.mu.Unlock()
	sess.errs = append(sess.errs, nil)
	sess.states = append(sess.states, PathActive)
	stop := make(chan struct{})
	sess.stops = append(sess.stops, stop)
	sess.wg.Add(1)
	sess.mu.Unlock()

	go func() {
		defer sess.wg.Done()
		err := sess.sendLoop(k, conn, stop)
		if err != nil {
			sess.mu.Lock()
			sess.errs[k] = err
			sess.mu.Unlock()
		}
	}()
	return k
}

// setState moves path k through the health state machine. Dead and Removed
// are terminal except that a dead path may still be Removed; stale
// transitions out of a terminal state are ignored so a racing sender cannot
// resurrect a removed path.
func (sess *Session) setState(k int, st PathState) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	cur := sess.states[k]
	if cur == PathRemoved || (cur == PathDead && st != PathRemoved) {
		return
	}
	sess.states[k] = st
}

// PathStates snapshots every path's health state, indexed by the path index
// AddPath returned.
func (sess *Session) PathStates() []PathState {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	out := make([]PathState, len(sess.states))
	copy(out, sess.states)
	return out
}

// PathState returns path k's health state (PathRemoved for unknown k, the
// same answer as for a long-retired path).
func (sess *Session) PathState(k int) PathState {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if k < 0 || k >= len(sess.states) {
		return PathRemoved
	}
	return sess.states[k]
}

// RemovePath gracefully drains path k: its sender finishes the packet in
// hand, emits an end marker, and stops fetching; remaining paths absorb the
// load. The connection itself is left open for the caller to close. Removing
// an unknown or already-removed path is a no-op.
func (sess *Session) RemovePath(k int) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if k < 0 || k >= len(sess.stops) || sess.states[k] == PathRemoved {
		return
	}
	sess.states[k] = PathRemoved
	close(sess.stops[k])
	// Wake a sender that is blocked waiting for queue content.
	sess.srv.mu.Lock()
	sess.srv.cond.Broadcast()
	sess.srv.mu.Unlock()
}

// Wait blocks until generation has finished and every path has drained or
// failed. It returns the number of packets generated and the joined errors
// of any failed paths.
func (sess *Session) Wait() (int64, error) {
	sess.wg.Wait()
	sess.mu.Lock()
	sess.waited = true
	err := errors.Join(sess.errs...)
	sess.mu.Unlock()
	return sess.srv.Generated(), err
}

// generate produces packets on the CBR schedule until Count or Stop.
//
// hotpath — the single-stream producer root; the loop body runs once
// per generated packet.
func (s *Server) generate() {
	period := time.Duration(float64(time.Second) / s.cfg.Mu)
	base := time.Now()
	for n := int64(0); ; n++ {
		if s.cfg.Count > 0 && n >= s.cfg.Count {
			break
		}
		// Drift-free schedule: packet n is due at base + n/µ.
		due := base.Add(time.Duration(n) * period)
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		s.mu.Lock()
		if s.stopped {
			s.mu.Unlock()
			break
		}
		s.queue = append(s.queue, queued{pkt: uint32(n), gen: time.Now().UnixNano()}) // nolint:hotalloc amortized queue growth; pop compacts and reuses the backing array
		s.generated++
		s.cond.Broadcast()
		s.mu.Unlock()
	}
	s.mu.Lock()
	s.genDone = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// pop fetches the head-of-queue packet, blocking while the queue is empty
// and generation continues. ok=false means the stream is over or the path
// was removed.
func (s *Server) pop(k int, stop <-chan struct{}) (queued, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		// Inline non-blocking stop check: a closure here would be a heap
		// allocation on every pop, i.e. one per frame per path.
		select {
		case <-stop:
			return queued{}, false
		default:
		}
		if s.qhead < len(s.queue) {
			return s.popLocked(k), true
		}
		if s.genDone || s.stopped {
			return queued{}, false // queue empty and no more production
		}
		s.cond.Wait()
	}
}

// popLocked pulls the head-of-queue packet and charges it to path k. The
// caller holds s.mu and has checked the queue is non-empty.
func (s *Server) popLocked(k int) queued {
	q := s.queue[s.qhead]
	s.qhead++
	if s.qhead == len(s.queue) {
		s.queue = s.queue[:0]
		s.qhead = 0
	} else if s.qhead > 32 && s.qhead*2 > len(s.queue) {
		// Compact once the consumed prefix dominates the slice, so a
		// persistent path deficit on a long live stream does not
		// retain every packet ever sent.
		n := copy(s.queue, s.queue[s.qhead:])
		s.queue = s.queue[:n]
		s.qhead = 0
	}
	s.pathSent[k]++
	return q
}

// popBatch fetches up to len(out) packets: a blocking pop for the head,
// then one more lock hold draining whatever the generator has already
// queued. A sender that fell behind (its connection briefly stalled, or
// a dead sibling's window was requeued) catches up with one syscall per
// batch instead of one per packet, while a sender keeping pace with the
// CBR schedule degenerates to batches of one — backpressure allocation
// across paths is untouched because packets are still claimed under the
// same queue lock, just amortized.
func (s *Server) popBatch(k int, stop <-chan struct{}, out []queued) (int, bool) {
	q, ok := s.pop(k, stop)
	if !ok {
		return 0, false
	}
	out[0] = q
	n := 1
	s.mu.Lock()
	for n < len(out) && s.qhead < len(s.queue) {
		out[n] = s.popLocked(k)
		n++
	}
	s.mu.Unlock()
	return n, true
}

// sendBatch bounds how many queued packets one sender claims and renders
// into its contiguous write buffer per fetch. A sender at pace sees
// batches of one; a sender catching up after a stall or a sibling's
// requeued window coalesces up to this many frames into a single Write.
const sendBatch = 32

// sendLoop is one path's sender: header, frames fetched from the shared
// queue, end marker. Batches claimed by popBatch are rendered into one
// contiguous buffer and written with a single Write call. On a terminal
// write error it hands the frames that never fully hit the wire — plus
// the last Config.ResendWindow packets it wrote, which may be stranded
// in dead kernel/relay buffers — back to the server queue, marks the
// path dead, and exits; the surviving paths absorb the returned packets.
//
// hotpath — the per-path sender root; the loop body runs once per
// transmitted batch.
func (sess *Session) sendLoop(k int, conn net.Conn, stop <-chan struct{}) error {
	s := sess.srv
	if err := s.writeHeader(k, conn); err != nil {
		sess.fail(k, nil, nil)
		return fmt.Errorf("core: path %d header: %w", k, err)
	}
	// ring holds the last cfg.ResendWindow packets written, oldest first
	// once unrolled; next is the slot the next write lands in. Pre-sized
	// so the per-frame append below never grows mid-stream.
	ring := make([]queued, 0, s.cfg.ResendWindow) // nolint:hotalloc per-path resend ring, allocated once
	next := 0
	frameSize := frameHdr + s.cfg.PayloadSize
	batch := make([]queued, sendBatch)       // nolint:hotalloc per-path claim buffer, allocated once
	buf := make([]byte, sendBatch*frameSize) // nolint:hotalloc per-path render buffer, allocated once before the loop
	for {
		n, ok := s.popBatch(k, stop, batch)
		if !ok {
			break
		}
		for i := 0; i < n; i++ {
			f := buf[i*frameSize : (i+1)*frameSize]
			PutFrameHeader(f, batch[i].pkt, batch[i].gen)
			if s.cfg.Fill != nil {
				s.cfg.Fill(batch[i].pkt, f[frameHdr:])
			}
		}
		wrote, err := sess.writeFrame(k, conn, buf[:n*frameSize])
		if err != nil {
			// Frames fully on the wire count as written (they join the
			// resend ring like any other transmission, possibly stranded
			// in dead buffers); the partially-written frame and everything
			// after it never reached the peer and is requeued with its
			// sent-count rolled back.
			done := wrote / frameSize
			for i := 0; i < done; i++ {
				if w := s.cfg.ResendWindow; w > 0 {
					if len(ring) < w {
						ring = append(ring, batch[i])
					} else {
						ring[next%w] = batch[i]
					}
					next++
				}
			}
			sess.fail(k, batch[done:n], unroll(ring, next))
			return fmt.Errorf("core: path %d write: %w", k, err)
		}
		if w := s.cfg.ResendWindow; w > 0 {
			for i := 0; i < n; i++ {
				if len(ring) < w {
					ring = append(ring, batch[i])
				} else {
					ring[next%w] = batch[i]
				}
				next++
			}
		}
	}
	// End marker: genNanos carries the generated count.
	end := buf[:frameSize]
	PutFrameHeader(end, EndMarker, s.Generated())
	if _, err := sess.writeFrame(k, conn, end); err != nil {
		sess.fail(k, nil, unroll(ring, next))
		return fmt.Errorf("core: path %d end marker: %w", k, err)
	}
	return nil
}

// unroll returns the ring's contents oldest-first. next is the total number
// of packets ever written through the ring.
func unroll(ring []queued, next int) []queued {
	if len(ring) == 0 || next <= len(ring) {
		return ring
	}
	start := next % len(ring)
	out := make([]queued, 0, len(ring))
	out = append(out, ring[start:]...)
	return append(out, ring[:start]...)
}

// fail marks path k dead and returns its undelivered window to the queue:
// the recently-written ring (possibly stranded in dead buffers) followed by
// the unsent tail of the failing batch (claimed but never fully written).
func (sess *Session) fail(k int, unsent []queued, ring []queued) {
	sess.setState(k, PathDead)
	sess.srv.requeue(k, unsent, ring)
}

// writeFrame writes one or more contiguous frames, arming the optional
// stall deadline before every attempt, and returns how many bytes hit the
// wire (meaningful on error: the caller divides by the frame size to tell
// delivered frames from ones to requeue). A timed-out write moves the path
// to PathStalled and is retried — resuming at the partial-write offset so
// framing survives — up to Config.StallRetries consecutive stalls; a write
// completing returns the path to PathActive.
//
// bufown borrowed frame — lent to the conn.Write sink (re-sliced across
// stall retries); writeFrame must never retain or rewrite it.
func (sess *Session) writeFrame(k int, conn net.Conn, frame []byte) (int, error) {
	s := sess.srv
	stalls, off := 0, 0
	for {
		if s.cfg.WriteStallTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteStallTimeout))
		}
		n, err := conn.Write(frame[off:])
		off += n
		if err != nil {
			// Stall classification lives in this terminating block, off the
			// steady state: errors.As boxes its target into an interface, a
			// cost only error frames should ever pay.
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() && stalls < s.cfg.StallRetries {
				stalls++
				sess.setState(k, PathStalled)
				continue
			}
			return off, err
		}
		if off < len(frame) {
			continue
		}
		if stalls > 0 {
			sess.setState(k, PathActive)
		}
		return off, nil
	}
}

// requeue returns a dead path's undelivered packets to the head of the
// server queue, oldest first, so surviving senders retransmit them ahead of
// fresh content. Unsent packets were counted sent at claim time but never
// hit the wire, so their counts are rolled back; ring packets were genuinely
// transmitted once already and keep their count.
func (s *Server) requeue(k int, unsent []queued, ring []queued) {
	n := len(ring) + len(unsent)
	if n == 0 {
		return
	}
	pkts := make([]queued, 0, n)
	pkts = append(pkts, ring...)
	pkts = append(pkts, unsent...)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pathSent[k] -= int64(len(unsent))
	if s.qhead >= len(pkts) {
		s.qhead -= len(pkts)
		copy(s.queue[s.qhead:], pkts)
	} else {
		s.queue = append(pkts, s.queue[s.qhead:]...)
		s.qhead = 0
	}
	s.cond.Broadcast()
}

func (s *Server) writeHeader(k int, conn net.Conn) error {
	s.mu.Lock()
	numPaths := len(s.pathSent)
	s.mu.Unlock()
	return WriteStreamHeader(conn, k, numPaths, s.cfg.PayloadSize, s.cfg.Mu)
}

// Arrival is one received packet observation.
type Arrival struct {
	Pkt  uint32
	Gen  int64 // server generation timestamp, UnixNano
	At   int64 // client arrival timestamp, UnixNano
	Path int
}

// Trace is the client-side record of a streaming session. Arrivals holds
// each distinct packet's first arrival; retransmissions of packets already
// received (a recovered path's resend window overlapping delivered content)
// are counted in Duplicates instead of appearing twice.
type Trace struct {
	Mu          float64
	PayloadSize int
	Expected    int64 // total packets the server generated
	Arrivals    []Arrival
	Duplicates  int64 // retransmitted packets discarded by reassembly
}

// LateFraction computes the fraction of late packets for startup delay tau
// (seconds), in true playback order and in arrival order. Packet deadlines
// are per-packet generation time + τ (server and client share a clock in
// this testbed; see DESIGN.md). Packets that never arrived count as late.
func (t *Trace) LateFraction(tau float64) (playback, arrivalOrder float64) {
	if t.Expected == 0 {
		return 0, 0
	}
	tauN := int64(tau * 1e9)
	var latePB int64
	seen := make(map[uint32]bool, len(t.Arrivals))
	var t0 int64 = 1<<63 - 1
	for _, a := range t.Arrivals {
		if a.Gen < t0 {
			t0 = a.Gen
		}
	}
	for _, a := range t.Arrivals {
		if seen[a.Pkt] {
			continue
		}
		seen[a.Pkt] = true
		if a.At > a.Gen+tauN {
			latePB++
		}
	}
	missing := t.Expected - int64(len(seen))
	latePB += missing

	var lateAO int64
	period := 1e9 / t.Mu
	j := 0
	for _, a := range t.Arrivals {
		deadline := t0 + tauN + int64(float64(j)*period)
		if a.At > deadline {
			lateAO++
		}
		j++
	}
	lateAO += missing
	return float64(latePB) / float64(t.Expected), float64(lateAO) / float64(t.Expected)
}

// PathCounts returns per-path arrival counts.
func (t *Trace) PathCounts(numPaths int) []int64 {
	out := make([]int64, numPaths)
	for _, a := range t.Arrivals {
		if a.Path >= 0 && a.Path < numPaths {
			out[a.Path]++
		}
	}
	return out
}

// ReorderCount counts arrivals whose packet number is below an earlier one.
func (t *Trace) ReorderCount() int64 {
	var n int64
	max := int64(-1)
	for _, a := range t.Arrivals {
		if int64(a.Pkt) < max {
			n++
		} else {
			max = int64(a.Pkt)
		}
	}
	return n
}
