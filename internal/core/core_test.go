package core

import (
	"encoding/binary"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"dmpstream/internal/emunet"
)

// tcpPair returns both ends of a loopback TCP connection.
func tcpPair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			done <- c
		}
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	return c, <-done
}

// runSession streams cfg over n loopback paths and returns the trace.
func runSession(t *testing.T, cfg Config, n int) (*Server, *Trace) {
	t.Helper()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sConns := make([]net.Conn, n)
	cConns := make([]net.Conn, n)
	for i := 0; i < n; i++ {
		cConns[i], sConns[i] = tcpPair(t)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	var serveErr error
	go func() {
		defer wg.Done()
		_, serveErr = srv.Serve(sConns)
		for _, c := range sConns {
			c.Close()
		}
	}()
	tr, err := Receive(cConns)
	if err != nil {
		t.Fatalf("receive: %v", err)
	}
	wg.Wait()
	if serveErr != nil {
		t.Fatalf("serve: %v", serveErr)
	}
	for _, c := range cConns {
		c.Close()
	}
	return srv, tr
}

func TestEndToEndTwoPaths(t *testing.T) {
	cfg := Config{Mu: 400, PayloadSize: 200, Count: 600}
	srv, tr := runSession(t, cfg, 2)
	if tr.Expected != 600 {
		t.Fatalf("expected = %d", tr.Expected)
	}
	if len(tr.Arrivals) != 600 {
		t.Fatalf("arrivals = %d", len(tr.Arrivals))
	}
	if tr.Mu != 400 || tr.PayloadSize != 200 {
		t.Fatalf("header decoded µ=%v payload=%d", tr.Mu, tr.PayloadSize)
	}
	pb, ao := tr.LateFraction(5.0)
	if pb != 0 || ao != 0 {
		t.Fatalf("late fractions %v/%v on loopback with 5s delay", pb, ao)
	}
	counts := srv.PathCounts()
	if counts[0]+counts[1] != 600 {
		t.Fatalf("path counts %v", counts)
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("a path was never used: %v", counts)
	}
}

func TestSinglePath(t *testing.T) {
	_, tr := runSession(t, Config{Mu: 500, PayloadSize: 64, Count: 250}, 1)
	if int64(len(tr.Arrivals)) != tr.Expected {
		t.Fatalf("got %d/%d", len(tr.Arrivals), tr.Expected)
	}
	if tr.ReorderCount() != 0 {
		t.Fatal("reordering on a single path")
	}
}

func TestStopEndsLiveStream(t *testing.T) {
	srv, err := NewServer(Config{Mu: 500, PayloadSize: 32}) // Count=0: live
	if err != nil {
		t.Fatal(err)
	}
	cConn, sConn := tcpPair(t)
	go func() {
		time.Sleep(300 * time.Millisecond)
		srv.Stop()
	}()
	var tr *Trace
	var rErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tr, rErr = Receive([]net.Conn{cConn})
	}()
	if _, err := srv.Serve([]net.Conn{sConn}); err != nil {
		t.Fatal(err)
	}
	sConn.Close()
	wg.Wait()
	if rErr != nil {
		t.Fatal(rErr)
	}
	if tr.Expected < 50 || tr.Expected > 1000 {
		t.Fatalf("generated %d packets in ~300ms at 500/s", tr.Expected)
	}
	if int64(len(tr.Arrivals)) != tr.Expected {
		t.Fatalf("arrivals %d != expected %d", len(tr.Arrivals), tr.Expected)
	}
}

func TestFillPayload(t *testing.T) {
	srv, err := NewServer(Config{
		Mu: 1000, PayloadSize: 8, Count: 3,
		Fill: func(pkt uint32, buf []byte) {
			binary.BigEndian.PutUint32(buf, pkt*7)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cConn, sConn := tcpPair(t)
	go func() {
		srv.Serve([]net.Conn{sConn})
		sConn.Close()
	}()
	var h [headerSize]byte
	if _, err := io.ReadFull(cConn, h[:]); err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, frameHdr+8)
	for i := 0; i < 3; i++ {
		if _, err := io.ReadFull(cConn, frame); err != nil {
			t.Fatal(err)
		}
		pkt := binary.BigEndian.Uint32(frame[0:4])
		val := binary.BigEndian.Uint32(frame[frameHdr : frameHdr+4])
		if val != pkt*7 {
			t.Fatalf("pkt %d payload %d", pkt, val)
		}
	}
	cConn.Close()
}

func TestBadMagicRejected(t *testing.T) {
	cConn, sConn := tcpPair(t)
	go func() {
		sConn.Write([]byte(strings.Repeat("x", headerSize)))
		sConn.Close()
	}()
	if _, err := Receive([]net.Conn{cConn}); err == nil {
		t.Fatal("garbage header accepted")
	}
	cConn.Close()
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Mu: 0},
		{Mu: -5},
		{Mu: 10, Count: -1},
		{Mu: 10, PayloadSize: 1 << 21},
	}
	for _, cfg := range bad {
		if _, err := NewServer(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestAsymmetricPathsShiftLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock emulation test")
	}
	// Path 0: fast relay. Path 1: heavily rate-limited relay. The stream rate
	// exceeds path 1's capacity, so DMP must route most packets to path 0.
	backends := make([]net.Listener, 2)
	sConns := make([]net.Conn, 2)
	cConns := make([]net.Conn, 2)
	rates := []float64{2e6, 20e3} // bytes/sec
	for i := 0; i < 2; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		backends[i] = ln
		relay, err := emunet.Listen("127.0.0.1:0", ln.Addr().String(), emunet.PathConfig{
			RateBps: rates[i], Delay: 10 * time.Millisecond, BufferKiB: 16,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer relay.Close()
		acc := make(chan net.Conn, 1)
		go func(ln net.Listener) {
			c, err := ln.Accept()
			if err == nil {
				acc <- c
			}
		}(ln)
		c, err := net.Dial("tcp", relay.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetWriteBuffer(16 * 1024)
		}
		sConns[i] = c
		cConns[i] = <-acc
	}
	srv, err := NewServer(Config{Mu: 300, PayloadSize: 500, Count: 900}) // ~1.2Mbit/s
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv.Serve(sConns)
		for _, c := range sConns {
			c.Close()
		}
	}()
	tr, err := Receive(cConns)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	counts := srv.PathCounts()
	// Path 1 is capped at ~40 pkts/s by the relay (plus drain-phase pickup),
	// so the fast path must carry the clear majority.
	if counts[0] <= counts[1]*2 {
		t.Fatalf("fast path carried %d vs slow %d; expected strong skew", counts[0], counts[1])
	}
	if int64(len(tr.Arrivals)) != tr.Expected {
		t.Fatalf("lost packets: %d/%d", len(tr.Arrivals), tr.Expected)
	}
}

// ---------- Pure trace-analysis tests (synthetic, no wall clock) ----------

func synthTrace(mu float64, n int, lateness func(i int) int64) *Trace {
	tr := &Trace{Mu: mu, Expected: int64(n)}
	period := int64(1e9 / mu)
	for i := 0; i < n; i++ {
		gen := int64(i) * period
		tr.Arrivals = append(tr.Arrivals, Arrival{
			Pkt: uint32(i), Gen: gen, At: gen + lateness(i),
		})
	}
	return tr
}

func TestLateFractionExactCounting(t *testing.T) {
	// Packets 0..99; even ones arrive 1s after generation, odd ones 3s.
	tr := synthTrace(10, 100, func(i int) int64 {
		if i%2 == 0 {
			return 1e9
		}
		return 3e9
	})
	pb, _ := tr.LateFraction(2.0)
	if pb != 0.5 {
		t.Fatalf("playback late fraction = %v, want 0.5", pb)
	}
	pb, _ = tr.LateFraction(4.0)
	if pb != 0 {
		t.Fatalf("late fraction = %v at tau=4", pb)
	}
}

func TestLateFractionCountsMissing(t *testing.T) {
	tr := synthTrace(10, 80, func(int) int64 { return 0 })
	tr.Expected = 100 // 20 never arrived
	pb, ao := tr.LateFraction(1.0)
	if pb != 0.2 || ao != 0.2 {
		t.Fatalf("late = %v/%v, want 0.2", pb, ao)
	}
}

func TestLateFractionDeduplicatesArrivals(t *testing.T) {
	tr := synthTrace(10, 50, func(int) int64 { return 0 })
	tr.Arrivals = append(tr.Arrivals, tr.Arrivals[0]) // duplicate delivery
	pb, _ := tr.LateFraction(1.0)
	if pb != 0 {
		t.Fatalf("late = %v with duplicate arrival", pb)
	}
}

func TestReorderCountSynthetic(t *testing.T) {
	tr := &Trace{Mu: 10, Expected: 4}
	for _, p := range []uint32{0, 2, 1, 3} {
		tr.Arrivals = append(tr.Arrivals, Arrival{Pkt: p})
	}
	if got := tr.ReorderCount(); got != 1 {
		t.Fatalf("reorders = %d, want 1", got)
	}
}

func TestLateFractionMonotone(t *testing.T) {
	tr := synthTrace(20, 200, func(i int) int64 { return int64(i) * 5e7 }) // growing delay
	prev := 1.1
	for _, tau := range []float64{0.5, 1, 2, 5, 20} {
		pb, _ := tr.LateFraction(tau)
		if pb > prev {
			t.Fatalf("late fraction rose with tau: %v > %v", pb, prev)
		}
		prev = pb
	}
}
