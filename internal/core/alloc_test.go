// Alloc-budget guard for the single-stream sender hot path: the per-frame
// cycle (queue pop, frame header encode, conn write) must not allocate,
// or a CBR stream at wire rate turns into steady GC pressure. The static
// side of the contract is dmplint's hotalloc analyzer over the
// `// hotpath` closure; this catches what escape analysis decides at
// compile time behind the analyzer's back.
//
// AllocsPerRun is unreliable under the race detector (instrumentation
// allocates), so the guard is built out of race runs.
//
//go:build !race

package core

import (
	"net"
	"sync"
	"testing"
)

// TestPutFrameHeaderAllocFree: the frame header encode runs once per
// frame on every path of every stream.
func TestPutFrameHeaderAllocFree(t *testing.T) {
	frame := make([]byte, FrameHeaderSize+32)
	allocs := testing.AllocsPerRun(1000, func() {
		PutFrameHeader(frame, 7, 42)
	})
	if allocs != 0 {
		t.Errorf("PutFrameHeader allocates %.2f times per frame, want 0", allocs)
	}
}

// TestPopAllocFree: the queue pop — including the inlined non-blocking
// stop check that used to be a per-call closure — must be allocation-free
// when the queue stays within its backing array.
func TestPopAllocFree(t *testing.T) {
	s := &Server{cfg: Config{}}
	s.cond = sync.NewCond(&s.mu)
	s.pathSent = []int64{0}
	s.queue = make([]queued, 0, 4)
	stop := make(chan struct{})

	allocs := testing.AllocsPerRun(200, func() {
		s.mu.Lock()
		s.queue = append(s.queue, queued{pkt: 1, gen: 2})
		s.mu.Unlock()
		if _, ok := s.pop(0, stop); !ok {
			t.Fatal("pop returned !ok with a non-empty queue")
		}
	})
	if allocs != 0 {
		t.Errorf("pop allocates %.2f times per frame, want 0", allocs)
	}
}

// nullConn swallows writes; every other net.Conn method crashes, which is
// the point — writeFrame's steady state must touch nothing else.
type nullConn struct{ net.Conn }

func (nullConn) Write(p []byte) (int, error) { return len(p), nil }

// TestWriteFrameAllocFree: a clean write must not pay for the stall
// classification (errors.As boxes its target), which lives in the
// error-only block.
func TestWriteFrameAllocFree(t *testing.T) {
	s := &Server{cfg: Config{}}
	sess := &Session{srv: s}
	var conn net.Conn = nullConn{}
	frame := make([]byte, FrameHeaderSize+64)

	allocs := testing.AllocsPerRun(200, func() {
		if _, err := sess.writeFrame(0, conn, frame); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("writeFrame allocates %.2f times per frame, want 0", allocs)
	}
}

var allocSink []byte

// TestAllocMeasurementSensitivity proves the harness would catch a
// regression: a deliberately escaping per-run allocation must be
// measured as at least one allocation per run, so the zero-allocation
// assertions above cannot pass vacuously.
func TestAllocMeasurementSensitivity(t *testing.T) {
	allocs := testing.AllocsPerRun(100, func() {
		allocSink = make([]byte, 16)
	})
	if allocs < 1 {
		t.Fatalf("seeded allocation measured as %.2f allocs/run; the alloc budget harness is blind", allocs)
	}
}
