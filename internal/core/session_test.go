package core

import (
	"net"
	"sync"
	"testing"
	"time"
)

func TestSessionAddPathMidStream(t *testing.T) {
	srv, err := NewServer(Config{Mu: 400, PayloadSize: 100, Count: 800}) // ~2s stream
	if err != nil {
		t.Fatal(err)
	}
	c0, s0 := tcpPair(t)
	c1, s1 := tcpPair(t)

	sess := srv.Start()
	if idx := sess.AddPath(s0); idx != 0 {
		t.Fatalf("first path index %d", idx)
	}

	// The client must start reading path 1 only once it exists; run both
	// readers but dial in the second connection after ~0.5 s of stream.
	var tr *Trace
	var rErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(500 * time.Millisecond)
		if idx := sess.AddPath(s1); idx != 1 {
			t.Errorf("second path index %d", idx)
		}
	}()
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		tr, rErr = Receive([]net.Conn{c0, c1})
	}()

	n, err := sess.Wait()
	if err != nil {
		t.Fatal(err)
	}
	s0.Close()
	s1.Close()
	wg.Wait()
	rwg.Wait()
	if rErr != nil {
		t.Fatal(rErr)
	}
	if n != 800 || int64(len(tr.Arrivals)) != 800 {
		t.Fatalf("generated %d, arrived %d", n, len(tr.Arrivals))
	}
	counts := srv.PathCounts()
	if len(counts) != 2 || counts[1] == 0 {
		t.Fatalf("late-added path carried nothing: %v", counts)
	}
}

func TestSessionSurvivesPathFailure(t *testing.T) {
	srv, err := NewServer(Config{Mu: 400, PayloadSize: 100, Count: 800})
	if err != nil {
		t.Fatal(err)
	}
	c0, s0 := tcpPair(t)
	c1, s1 := tcpPair(t)

	sess := srv.Start()
	sess.AddPath(s0)
	sess.AddPath(s1)

	var tr *Trace
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		tr, _ = Receive([]net.Conn{c0, c1}) // path-1 error expected
	}()
	// Kill path 1 shortly into the stream.
	go func() {
		time.Sleep(300 * time.Millisecond)
		c1.Close()
		s1.Close()
	}()

	n, err := sess.Wait()
	if err == nil {
		t.Fatal("expected a path error from the killed connection")
	}
	s0.Close()
	rwg.Wait()

	if n != 800 {
		t.Fatalf("generation stalled at %d", n)
	}
	// The healthy path must have carried the stream to completion: we accept
	// the loss of packets stuck in the dead path's buffers.
	if int64(len(tr.Arrivals)) < 700 {
		t.Fatalf("only %d/800 arrived after single-path failure", len(tr.Arrivals))
	}
	counts := srv.PathCounts()
	if counts[0] < counts[1] {
		t.Fatalf("healthy path did not dominate after failure: %v", counts)
	}
}

func TestAddPathAfterWaitPanics(t *testing.T) {
	srv, err := NewServer(Config{Mu: 1000, PayloadSize: 10, Count: 5})
	if err != nil {
		t.Fatal(err)
	}
	c0, s0 := tcpPair(t)
	sess := srv.Start()
	sess.AddPath(s0)
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		Receive([]net.Conn{c0})
	}()
	if _, err := sess.Wait(); err != nil {
		t.Fatal(err)
	}
	s0.Close()
	rwg.Wait()
	defer func() {
		if recover() == nil {
			t.Error("AddPath after Wait did not panic")
		}
	}()
	_, s1 := tcpPair(t)
	sess.AddPath(s1)
}

func TestSessionRemovePathDrains(t *testing.T) {
	srv, err := NewServer(Config{Mu: 400, PayloadSize: 100, Count: 1200}) // 3s stream
	if err != nil {
		t.Fatal(err)
	}
	c0, s0 := tcpPair(t)
	c1, s1 := tcpPair(t)
	sess := srv.Start()
	sess.AddPath(s0)
	k1 := sess.AddPath(s1)

	var tr *Trace
	var rErr error
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		tr, rErr = Receive([]net.Conn{c0, c1})
	}()
	go func() {
		time.Sleep(500 * time.Millisecond)
		sess.RemovePath(k1)
		sess.RemovePath(k1) // idempotent
		sess.RemovePath(99) // unknown: no-op
	}()
	n, err := sess.Wait()
	if err != nil {
		t.Fatal(err)
	}
	s0.Close()
	s1.Close()
	rwg.Wait()
	if rErr != nil {
		t.Fatal(rErr)
	}
	if n != 1200 || int64(len(tr.Arrivals)) != 1200 {
		t.Fatalf("generated %d arrived %d; removal must not lose packets", n, len(tr.Arrivals))
	}
	counts := srv.PathCounts()
	// Path 1 served only the first ~0.5s of a 3s stream.
	if counts[1] >= counts[0] {
		t.Fatalf("removed path carried %d vs %d", counts[1], counts[0])
	}
	if counts[1] == 0 {
		t.Fatal("path 1 never carried anything before removal")
	}
}
