package core

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"
)

// DefaultEndGrace bounds how long the remaining paths may keep delivering
// after the first end marker arrives. A path that has gone silent (a
// blackholed link never surfaces a read error) would otherwise block
// reassembly forever even though the surviving paths finished the stream.
const DefaultEndGrace = 10 * time.Second

// ReceiverOptions tunes a Receiver.
type ReceiverOptions struct {
	// EndGrace is the post-end-marker deadline armed on every path that has
	// not finished yet: a path still silent that long after the stream ended
	// fails with a timeout instead of hanging reassembly. 0 selects
	// DefaultEndGrace; negative disables the guard (a silent path then
	// blocks until its connection dies, the pre-resilience behavior).
	EndGrace time.Duration
	// OnPacket, when set, is called once per distinct packet as it first
	// arrives (duplicates never reach it), under the receiver's lock — the
	// callback must be quick and must not call back into the Receiver.
	// The payload slice is a borrowed view of the read buffer, valid only
	// for the duration of the call; copy it out to keep it.
	OnPacket func(pkt uint32, genNanos int64, payload []byte)
}

// Receiver reassembles a multipath stream with dynamic path membership:
// unlike Receive's fixed connection set, paths can be (re)attached while the
// stream runs — Run a connection per path, and redial-and-Run again when one
// dies. Packets are deduplicated across attachments, so a server resending a
// dead path's window does not double-deliver.
type Receiver struct {
	grace    time.Duration
	onPacket func(pkt uint32, genNanos int64, payload []byte)

	mu       sync.Mutex
	arrivals []Arrival             // guarded by mu
	seen     map[uint32]bool       // guarded by mu
	dups     int64                 // guarded by mu
	muRate   float64               // guarded by mu
	payload  int                   // guarded by mu
	expected int64                 // guarded by mu; -1 until an end marker
	endSeen  bool                  // guarded by mu
	active   map[net.Conn]struct{} // guarded by mu; conns currently in Run
	done     chan struct{}         // closed when the first end marker arrives
}

// NewReceiver builds an empty Receiver; attach paths with Run.
func NewReceiver(opts ReceiverOptions) *Receiver {
	grace := opts.EndGrace
	if grace == 0 {
		grace = DefaultEndGrace
	}
	return &Receiver{
		grace:    grace,
		onPacket: opts.OnPacket,
		seen:     make(map[uint32]bool),
		active:   make(map[net.Conn]struct{}),
		expected: -1,
		done:     make(chan struct{}),
	}
}

// Run consumes one path connection until its end marker (nil) or a terminal
// error. It may be called concurrently for different paths and again for the
// same path index after a redial; the caller owns (and closes) conn.
func (r *Receiver) Run(path int, conn net.Conn) error {
	r.mu.Lock()
	r.active[conn] = struct{}{}
	if r.endSeen && r.grace > 0 {
		conn.SetReadDeadline(time.Now().Add(r.grace))
	}
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		delete(r.active, conn)
		r.mu.Unlock()
	}()

	mu, payload, err := readHeader(conn)
	if err != nil {
		return fmt.Errorf("core: path %d: %w", path, err)
	}
	r.mu.Lock()
	if r.muRate != 0 && r.muRate != mu {
		have := r.muRate
		r.mu.Unlock()
		return fmt.Errorf("core: path %d announces µ=%v, another path %v", path, mu, have)
	}
	r.muRate, r.payload = mu, payload
	r.mu.Unlock()

	frame := make([]byte, frameHdr+payload)
	for {
		// nolint:netdeadline client-side read loop: bounded by the server's
		// end marker plus the EndGrace deadline armed once any path ends.
		if _, err := io.ReadFull(conn, frame); err != nil {
			return fmt.Errorf("core: path %d read: %w", path, err)
		}
		pkt, v, err := ParseFrameHeader(frame)
		if err != nil {
			return fmt.Errorf("core: path %d: %w", path, err)
		}
		if pkt == EndMarker {
			r.finish(v, conn)
			return nil
		}
		r.mu.Lock()
		if r.seen[pkt] {
			r.dups++
		} else {
			r.seen[pkt] = true
			r.arrivals = append(r.arrivals, Arrival{
				Pkt: pkt, Gen: v, At: time.Now().UnixNano(), Path: path,
			})
			if r.onPacket != nil {
				r.onPacket(pkt, v, frame[frameHdr:])
			}
		}
		r.mu.Unlock()
	}
}

// finish records an end marker: the expected count is the max announced by
// any path (paths of a live hub subscription drain at slightly different
// times), and on the first marker every other in-flight path gets the grace
// deadline so a silent one cannot block reassembly forever.
func (r *Receiver) finish(expected int64, self net.Conn) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if expected > r.expected {
		r.expected = expected
	}
	if r.endSeen {
		return
	}
	r.endSeen = true
	close(r.done)
	if r.grace > 0 {
		dl := time.Now().Add(r.grace)
		for c := range r.active {
			if c != self {
				c.SetReadDeadline(dl)
			}
		}
	}
}

// Done is closed once any path has delivered its end marker — the signal
// that the stream is over and redialing is pointless.
func (r *Receiver) Done() <-chan struct{} { return r.done }

// Trace snapshots the merged arrival record, sorted by arrival time.
func (r *Receiver) Trace() *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	tr := &Trace{
		Mu:          r.muRate,
		PayloadSize: r.payload,
		Arrivals:    make([]Arrival, len(r.arrivals)),
		Duplicates:  r.dups,
	}
	copy(tr.Arrivals, r.arrivals)
	if r.expected > 0 {
		tr.Expected = r.expected
	}
	sort.Slice(tr.Arrivals, func(i, j int) bool { return tr.Arrivals[i].At < tr.Arrivals[j].At })
	return tr
}

// Receive reads a whole session from the given path connections and returns
// the merged arrival trace. It blocks until every path delivers its end
// marker or fails — where "fails" includes staying silent for EndGrace
// after another path finished the stream; a partial trace plus the first
// error is returned on failure.
func Receive(conns []net.Conn) (*Trace, error) {
	return ReceiveOpts(conns, ReceiverOptions{})
}

// ReceiveOpts is Receive with explicit ReceiverOptions.
func ReceiveOpts(conns []net.Conn, opts ReceiverOptions) (*Trace, error) {
	if len(conns) == 0 {
		return nil, errors.New("core: no paths")
	}
	r := NewReceiver(opts)
	errs := make([]error, len(conns))
	var wg sync.WaitGroup
	for k, conn := range conns {
		wg.Add(1)
		go func(k int, conn net.Conn) {
			defer wg.Done()
			errs[k] = r.Run(k, conn)
		}(k, conn)
	}
	wg.Wait()
	var firstErr error
	for _, err := range errs {
		if err != nil {
			firstErr = err
			break
		}
	}
	return r.Trace(), firstErr
}
