package core

import (
	"math"
	"testing"
	"time"
)

// mkTrace builds a trace with the given per-packet slacks (seconds); a NaN
// slack marks a packet that never arrived.
func mkTrace(mu float64, slacks []float64) *Trace {
	tr := &Trace{Mu: mu, Expected: int64(len(slacks))}
	period := int64(1e9 / mu)
	for i, s := range slacks {
		if math.IsNaN(s) {
			continue
		}
		gen := int64(i) * period
		tr.Arrivals = append(tr.Arrivals, Arrival{
			Pkt: uint32(i), Gen: gen, At: gen + int64(s*1e9), Path: i % 2,
		})
	}
	return tr
}

func TestSlacks(t *testing.T) {
	tr := mkTrace(10, []float64{0.1, 0.5, math.NaN(), 0.2})
	slacks := tr.Slacks()
	if len(slacks) != 4 {
		t.Fatalf("%d slacks", len(slacks))
	}
	inf := 0
	for _, s := range slacks {
		if math.IsInf(s, 1) {
			inf++
		}
	}
	if inf != 1 {
		t.Fatalf("%d infinite slacks, want 1", inf)
	}
}

func TestRequiredDelayExact(t *testing.T) {
	// 10 packets with slacks 1..10 seconds.
	slacks := make([]float64, 10)
	for i := range slacks {
		slacks[i] = float64(i + 1)
	}
	tr := mkTrace(10, slacks)
	d, ok := tr.RequiredDelay(0) // all packets on time → max slack
	if !ok || d != 10*time.Second {
		t.Fatalf("RequiredDelay(0) = %v, %v", d, ok)
	}
	d, ok = tr.RequiredDelay(0.1) // one packet may be late
	if !ok || d != 9*time.Second {
		t.Fatalf("RequiredDelay(0.1) = %v, %v", d, ok)
	}
	d, ok = tr.RequiredDelay(0.95) // nearly everything may be late
	if !ok || d > time.Second {
		t.Fatalf("RequiredDelay(0.95) = %v, %v", d, ok)
	}
}

func TestRequiredDelayConsistentWithLateFraction(t *testing.T) {
	slacks := []float64{0.5, 1.5, 2.5, 3.5, 4.5, 5.5, 0.25, 1.25, 2.25, 3.25}
	tr := mkTrace(10, slacks)
	for _, q := range []float64{0, 0.1, 0.2, 0.5} {
		d, ok := tr.RequiredDelay(q)
		if !ok {
			t.Fatalf("q=%v infeasible", q)
		}
		pb, _ := tr.LateFraction(d.Seconds() + 1e-9)
		if pb > q+1e-12 {
			t.Errorf("q=%v: delay %v still gives late fraction %v", q, d, pb)
		}
	}
}

func TestRequiredDelayMissingPackets(t *testing.T) {
	tr := mkTrace(10, []float64{0.1, math.NaN(), math.NaN(), 0.2})
	if _, ok := tr.RequiredDelay(0.1); ok {
		t.Fatal("50% missing but 10% budget reported feasible")
	}
	if d, ok := tr.RequiredDelay(0.6); !ok || d > time.Second {
		t.Fatalf("60%% budget should be feasible cheaply: %v %v", d, ok)
	}
}

func TestPathGoodput(t *testing.T) {
	// 100 packets alternating between 2 paths over ~10 seconds.
	slacks := make([]float64, 100)
	for i := range slacks {
		slacks[i] = 0.05
	}
	tr := mkTrace(10, slacks)
	gp := tr.PathGoodput(2)
	// Each path carries every other packet: 5 pkts/s.
	for i, g := range gp {
		if g < 4 || g > 6 {
			t.Errorf("path %d goodput %v, want ≈5", i, g)
		}
	}
}

func TestGoodputSeriesBuckets(t *testing.T) {
	slacks := make([]float64, 40)
	tr := mkTrace(10, slacks) // 4 seconds of stream
	series := tr.GoodputSeries(2, time.Second)
	if len(series) != 2 {
		t.Fatalf("%d paths", len(series))
	}
	if len(series[0]) < 4 {
		t.Fatalf("%d buckets for a 4s stream", len(series[0]))
	}
	var total float64
	for _, s := range series {
		for _, v := range s {
			total += v
		}
	}
	if math.Abs(total-40) > 1e-9 { // pkts/s × 1s buckets sums to packet count
		t.Fatalf("series total %v, want 40", total)
	}
}

func TestGoodputSeriesEmpty(t *testing.T) {
	tr := &Trace{Mu: 10}
	series := tr.GoodputSeries(2, time.Second)
	if len(series) != 2 || series[0] != nil && len(series[0]) != 0 {
		t.Fatalf("unexpected series for empty trace: %v", series)
	}
}
