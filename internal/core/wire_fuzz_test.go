package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// Native fuzz targets for the wire format: the hub accept loop feeds
// attacker-controlled bytes straight into ReadJoin and clients feed
// server bytes into readHeader/ParseFrameHeader, so none of them may
// panic or overread, and every accepted value must round-trip.
//
// Run continuously with:
//
//	go test -fuzz=FuzzParseJoin -fuzztime=10s ./internal/core

func FuzzParseJoin(f *testing.F) {
	var valid bytes.Buffer
	if err := WriteJoin(&valid, Join{StreamID: "live", Token: Token{1, 2, 3}}); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	// Re-attach joins are byte-identical to first joins: the hub keys the
	// revived subscription purely on the token, so seed tokens that look
	// like session re-attach traffic (max-entropy, all-zero, and a repeat
	// of the same stream under a different token).
	var reattach bytes.Buffer
	if err := WriteJoin(&reattach, Join{StreamID: "live", Token: Token{
		0xde, 0xad, 0xbe, 0xef, 0xde, 0xad, 0xbe, 0xef,
		0xde, 0xad, 0xbe, 0xef, 0xde, 0xad, 0xbe, 0xef,
	}}); err != nil {
		f.Fatal(err)
	}
	f.Add(reattach.Bytes())
	var zeroTok bytes.Buffer
	if err := WriteJoin(&zeroTok, Join{StreamID: "flap", Token: Token{}}); err != nil {
		f.Fatal(err)
	}
	f.Add(zeroTok.Bytes())
	// An edge relay joins its upstream with the absolute-numbering flag set
	// (packet identity preserved across tiers); seed flagged joins so the
	// flags byte is always explored, including unknown future bits.
	for _, flags := range []uint8{JoinFlagAbsolute, 0xff} {
		var flagged bytes.Buffer
		if err := WriteJoin(&flagged, Join{
			StreamID: "live", Token: Token{0xed, 0x6e}, Flags: flags,
		}); err != nil {
			f.Fatal(err)
		}
		f.Add(flagged.Bytes())
	}
	// A registry serves many streams behind one accept loop and routes each
	// join by its stream id, so the parser sees a far wider id population
	// than a single hub ever did: short ids, ids at the 16-byte field limit,
	// multi-byte UTF-8, and near-collisions differing only in their suffix.
	for _, id := range []string{
		"a", "news", "sports", "music", "chaos-0", "chaos-1",
		"bench-0", "bench-31", "live2", "live\x01", "straße",
		strings.Repeat("x", MaxStreamID), strings.Repeat("x", MaxStreamID-1),
	} {
		var b bytes.Buffer
		if err := WriteJoin(&b, Join{StreamID: id, Token: Token{9, byte(len(id))}}); err != nil {
			f.Fatal(err)
		}
		f.Add(b.Bytes())
	}
	f.Add([]byte("DMPJ"))
	f.Add(bytes.Repeat([]byte{0xff}, 40))
	f.Add([]byte{})
	// A reject frame is server→client traffic; fed into the join parser it
	// must be cleanly refused (wrong magic), never crash or half-parse.
	var rej bytes.Buffer
	if err := WriteReject(&rej, RejectServerFull); err != nil {
		f.Fatal(err)
	}
	f.Add(rej.Bytes())
	f.Add(append(rej.Bytes(), bytes.Repeat([]byte{0}, joinSize-headerSize)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		j, err := ReadJoin(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted joins must be well-formed and round-trip exactly.
		if len(j.StreamID) > MaxStreamID {
			t.Fatalf("accepted oversized stream id %q", j.StreamID)
		}
		if strings.ContainsRune(j.StreamID, 0) {
			t.Fatalf("accepted stream id with embedded NUL %q", j.StreamID)
		}
		var buf bytes.Buffer
		if err := WriteJoin(&buf, j); err != nil {
			t.Fatalf("accepted join does not re-encode: %v", err)
		}
		j2, err := ReadJoin(&buf)
		if err != nil {
			t.Fatalf("re-encoded join does not parse: %v", err)
		}
		if j2 != j {
			t.Fatalf("round trip changed join: %+v != %+v", j2, j)
		}
	})
}

func FuzzParseHeader(f *testing.F) {
	var valid bytes.Buffer
	if err := WriteStreamHeader(&valid, 0, 2, 1000, 50); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte("DMPS"))
	f.Add(bytes.Repeat([]byte{0xff}, 20))
	f.Add([]byte{})
	// Reject frames share the header parser: seed every defined code plus a
	// future one so the DMPR branch is always explored.
	for _, code := range []RejectCode{
		RejectServerFull, RejectUnknownStream, RejectStreamEnded,
		RejectDraining, RejectEvicted, RejectUpstreamLost, RejectCode(200),
	} {
		var rej bytes.Buffer
		if err := WriteReject(&rej, code); err != nil {
			f.Fatal(err)
		}
		f.Add(rej.Bytes())
	}
	f.Add([]byte("DMPR"))
	f.Fuzz(func(t *testing.T, data []byte) {
		mu, payload, err := readHeader(bytes.NewReader(data))
		if err != nil {
			var rej *RejectError
			if errors.As(err, &rej) {
				// A parsed reject must be a well-formed frame: full header
				// size with our magic and version.
				if len(data) < headerSize || [4]byte(data[0:4]) != rejectMagic || data[4] != 1 {
					t.Fatalf("reject parsed from malformed input %x", data)
				}
				if !errors.Is(err, ErrRejected) {
					t.Fatalf("reject error not typed: %v", err)
				}
			}
			return
		}
		// The header guards every later frame-size allocation: accepted
		// values must be inside the validated envelope.
		if mu <= 0 {
			t.Fatalf("accepted non-positive rate %v", mu)
		}
		if payload < 0 || payload > 1<<20 {
			t.Fatalf("accepted out-of-range payload %d", payload)
		}
	})
}

func FuzzParseFrameHeader(f *testing.F) {
	frame := make([]byte, FrameHeaderSize+4)
	PutFrameHeader(frame, 7, 123456789)
	f.Add(frame)
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		pkt, gen, err := ParseFrameHeader(data)
		if err != nil {
			if len(data) >= FrameHeaderSize {
				t.Fatalf("rejected %d-byte frame: %v", len(data), err)
			}
			return
		}
		if len(data) < FrameHeaderSize {
			t.Fatalf("accepted %d-byte frame, need %d", len(data), FrameHeaderSize)
		}
		// Decode must agree with the encoder.
		buf := make([]byte, FrameHeaderSize)
		PutFrameHeader(buf, pkt, gen)
		if !bytes.Equal(buf, data[:FrameHeaderSize]) {
			t.Fatalf("re-encode mismatch: %x != %x", buf, data[:FrameHeaderSize])
		}
	})
}
