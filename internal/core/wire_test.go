package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"net"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// feedBytes serves raw bytes to a Receive call over a real socket and
// reports whether Receive returned an error.
func feedBytes(t *testing.T, raw []byte) error {
	t.Helper()
	cConn, sConn := tcpPair(t)
	go func() {
		sConn.Write(raw)
		sConn.Close()
	}()
	done := make(chan error, 1)
	go func() {
		_, err := Receive([]net.Conn{cConn})
		done <- err
	}()
	select {
	case err := <-done:
		cConn.Close()
		return err
	case <-time.After(10 * time.Second):
		cConn.Close()
		t.Fatal("Receive hung on malformed input")
		return nil
	}
}

func validHeader(payload uint32, mu float64) []byte {
	h := make([]byte, headerSize)
	copy(h[0:4], magic[:])
	h[4] = 1
	binary.BigEndian.PutUint32(h[8:12], payload)
	binary.BigEndian.PutUint64(h[12:20], uint64(mu*1e6))
	return h
}

func TestReceiveRejectsTruncatedHeader(t *testing.T) {
	if err := feedBytes(t, []byte("DMPS")); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestReceiveRejectsWrongVersion(t *testing.T) {
	h := validHeader(100, 50)
	h[4] = 9
	if err := feedBytes(t, h); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestReceiveRejectsAbsurdPayloadSize(t *testing.T) {
	if err := feedBytes(t, validHeader(1<<25, 50)); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestReceiveRejectsZeroRate(t *testing.T) {
	if err := feedBytes(t, validHeader(100, 0)); err == nil {
		t.Fatal("zero rate accepted")
	}
}

func TestReceiveTruncatedFrameStream(t *testing.T) {
	// A valid header followed by half a frame must error, not hang or panic.
	raw := validHeader(64, 50)
	raw = append(raw, make([]byte, (frameHdr+64)/2)...)
	if err := feedBytes(t, raw); err == nil {
		t.Fatal("truncated frame stream accepted")
	}
}

func TestReceiveEOFWithoutEndMarker(t *testing.T) {
	// Frames but no end marker: Receive should report the early close.
	raw := validHeader(16, 50)
	frame := make([]byte, frameHdr+16)
	binary.BigEndian.PutUint32(frame[0:4], 0)
	raw = append(raw, frame...)
	if err := feedBytes(t, raw); err == nil {
		t.Fatal("missing end marker accepted")
	}
}

// Property: random garbage never panics Receive and never yields a
// zero-error success with implausible metadata.
func TestPropertyReceiveNeverPanicsOnGarbage(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		raw := make([]byte, int(n%2048))
		rng.Read(raw)
		err := feedBytes(t, raw)
		// Success is only acceptable if the random bytes happened to form a
		// valid session; with a random 4-byte magic that has probability
		// ~2^-32, so in practice err must be non-nil. Either way: no panic.
		return err != nil || len(raw) >= headerSize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestJoinRoundTrip(t *testing.T) {
	tok, err := NewToken()
	if err != nil {
		t.Fatal(err)
	}
	cConn, sConn := tcpPair(t)
	defer cConn.Close()
	defer sConn.Close()
	want := Join{StreamID: "movie-night", Token: tok}
	go func() {
		if err := WriteJoin(cConn, want); err != nil {
			t.Error(err)
		}
	}()
	got, err := ReadJoin(sConn)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("join round trip: got %+v want %+v", got, want)
	}
}

// TestJoinFlagsRoundTrip pins the join flags field on the wire: an edge
// relay's absolute-numbering join (JoinFlagAbsolute) must arrive with the
// flag intact — losing it would silently rebase packet numbers at one
// tier and break packet identity across the relay tree — and unknown
// future flag bits must survive the trip too rather than being masked.
func TestJoinFlagsRoundTrip(t *testing.T) {
	tok, err := NewToken()
	if err != nil {
		t.Fatal(err)
	}
	for _, flags := range []uint8{0, JoinFlagAbsolute, 0x80, JoinFlagAbsolute | 0x40} {
		var buf bytes.Buffer
		want := Join{StreamID: "live", Token: tok, Flags: flags}
		if err := WriteJoin(&buf, want); err != nil {
			t.Fatalf("flags %#x: %v", flags, err)
		}
		got, err := ReadJoin(&buf)
		if err != nil {
			t.Fatalf("flags %#x: %v", flags, err)
		}
		if got != want {
			t.Fatalf("flags %#x changed on the wire: got %+v want %+v", flags, got, want)
		}
	}
}

func TestJoinRejectsOversizedStreamID(t *testing.T) {
	err := WriteJoin(io.Discard, Join{StreamID: "a-stream-id-longer-than-sixteen"})
	if err == nil {
		t.Fatal("oversized stream id accepted")
	}
}

// TestValidateStreamID pins the id rules shared by registry stream
// creation and the hub's configured id: the wire field is 16 NUL-padded
// bytes, so ids must fit, be non-empty and carry no interior NULs —
// anything else would alias distinct streams on the wire.
func TestValidateStreamID(t *testing.T) {
	for _, id := range []string{
		"a", "live", "movie-night", "straße",
		strings.Repeat("x", MaxStreamID),
	} {
		if err := ValidateStreamID(id); err != nil {
			t.Errorf("ValidateStreamID(%q) = %v, want nil", id, err)
		}
	}
	for _, id := range []string{
		"", strings.Repeat("x", MaxStreamID+1), "nul\x00led", "\x00",
	} {
		if err := ValidateStreamID(id); err == nil {
			t.Errorf("ValidateStreamID(%q) accepted", id)
		}
	}
	// Every id the validator accepts must survive the wire round trip
	// unchanged — the registry routes on byte equality of this field.
	for _, id := range []string{"a", strings.Repeat("x", MaxStreamID)} {
		var buf bytes.Buffer
		if err := WriteJoin(&buf, Join{StreamID: id}); err != nil {
			t.Fatalf("WriteJoin(%q): %v", id, err)
		}
		j, err := ReadJoin(&buf)
		if err != nil {
			t.Fatalf("ReadJoin(%q): %v", id, err)
		}
		if j.StreamID != id {
			t.Fatalf("stream id changed on the wire: %q != %q", j.StreamID, id)
		}
	}
}

func TestReadJoinRejectsGarbage(t *testing.T) {
	raw := make([]byte, joinSize)
	copy(raw, "NOPE")
	if _, err := ReadJoin(bytes.NewReader(raw)); err == nil {
		t.Fatal("bad join magic accepted")
	}
	wrongVer := make([]byte, joinSize)
	copy(wrongVer, joinMagic[:])
	wrongVer[4] = 7
	if _, err := ReadJoin(bytes.NewReader(wrongVer)); err == nil {
		t.Fatal("future join version accepted")
	}
	if _, err := ReadJoin(bytes.NewReader(raw[:10])); err == nil {
		t.Fatal("truncated join accepted")
	}
}

// TestRejectRoundTrip pins the reject frame: header-sized, typed on the
// client, unwrapping to both ErrRejected and the code-specific sentinel.
func TestRejectRoundTrip(t *testing.T) {
	cases := []struct {
		code RejectCode
		want error
	}{
		{RejectServerFull, ErrServerFull},
		{RejectUnknownStream, ErrUnknownStream},
		{RejectStreamEnded, ErrStreamOver},
		{RejectDraining, ErrDraining},
		{RejectEvicted, ErrEvicted},
		{RejectUpstreamLost, ErrUpstreamLost},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		if err := WriteReject(&buf, tc.code); err != nil {
			t.Fatal(err)
		}
		if buf.Len() != headerSize {
			t.Fatalf("%s: reject frame is %d bytes, want %d", tc.code, buf.Len(), headerSize)
		}
		_, _, err := ReadStreamHeader(&buf)
		if err == nil {
			t.Fatalf("%s: reject parsed as a stream header", tc.code)
		}
		if !errors.Is(err, ErrRejected) {
			t.Fatalf("%s: %v does not unwrap to ErrRejected", tc.code, err)
		}
		if !errors.Is(err, tc.want) {
			t.Fatalf("%s: %v does not unwrap to its sentinel", tc.code, err)
		}
		var rej *RejectError
		if !errors.As(err, &rej) || rej.Code != tc.code {
			t.Fatalf("%s: lost the code: %v", tc.code, err)
		}
	}
	// An unknown code still surfaces as a typed reject, just without a
	// specific sentinel — forward compatibility with future codes.
	var buf bytes.Buffer
	if err := WriteReject(&buf, RejectCode(99)); err != nil {
		t.Fatal(err)
	}
	_, _, err := ReadStreamHeader(&buf)
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("unknown code not typed: %v", err)
	}
	if errors.Is(err, ErrServerFull) {
		t.Fatal("unknown code matched a specific sentinel")
	}
}

// TestRejectFutureVersion: a reject frame from a future protocol version is
// an error, not a blindly trusted code.
func TestRejectFutureVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteReject(&buf, RejectServerFull); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4] = 9
	_, _, err := ReadStreamHeader(bytes.NewReader(raw))
	if err == nil || errors.Is(err, ErrRejected) {
		t.Fatalf("future reject version accepted: %v", err)
	}
}

// TestReceiveSurfacesUpstreamLost: when an edge relay's feed dies, its hub
// answers late joins with an upstream-lost reject; the receiving client
// must surface it as a typed error matching both ErrRejected and
// ErrUpstreamLost all the way up through Receive.
func TestReceiveSurfacesUpstreamLost(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteReject(&buf, RejectUpstreamLost); err != nil {
		t.Fatal(err)
	}
	err := feedBytes(t, buf.Bytes())
	if err == nil {
		t.Fatal("upstream-lost reject accepted as a stream")
	}
	if !errors.Is(err, ErrRejected) || !errors.Is(err, ErrUpstreamLost) {
		t.Fatalf("reject not typed through Receive: %v", err)
	}
}

// Property: a well-formed session round-trips regardless of packet count,
// payload size and rate.
func TestPropertySessionRoundTrip(t *testing.T) {
	f := func(countRaw, payloadRaw uint8) bool {
		count := int64(countRaw%40) + 1
		payload := int(payloadRaw) + 1
		srv, err := NewServer(Config{Mu: 2000, PayloadSize: payload, Count: count})
		if err != nil {
			return false
		}
		cConn, sConn := tcpPair(t)
		go func() {
			srv.Serve([]net.Conn{sConn})
			sConn.Close()
		}()
		tr, err := Receive([]net.Conn{cConn})
		cConn.Close()
		if err != nil {
			return false
		}
		return tr.Expected == count && int64(len(tr.Arrivals)) == count &&
			tr.PayloadSize == payload
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
