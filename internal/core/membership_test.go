package core

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"
)

// TestQueueCompaction pins the fix for unbounded server-queue growth: the
// consumed prefix must be reclaimed while the queue is still non-empty, not
// only when it fully drains.
func TestQueueCompaction(t *testing.T) {
	s, err := NewServer(Config{Mu: 1000, PayloadSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	const n = 10000
	s.mu.Lock()
	for i := 0; i < n; i++ {
		s.queue = append(s.queue, queued{pkt: uint32(i)})
	}
	s.pathSent = append(s.pathSent, 0)
	s.mu.Unlock()

	stop := make(chan struct{})
	for i := 0; i < 6000; i++ {
		q, ok := s.pop(0, stop)
		if !ok || q.pkt != uint32(i) {
			t.Fatalf("pop %d: got %v ok=%v", i, q.pkt, ok)
		}
	}
	s.mu.Lock()
	qlen, qhead := len(s.queue), s.qhead
	s.mu.Unlock()
	// Without compaction the slice would still hold all 10000 entries with
	// qhead at 6000; with it, the consumed prefix has been copied away.
	if qlen > n/2+1 || qhead >= qlen {
		t.Fatalf("queue not compacted: len=%d qhead=%d", qlen, qhead)
	}
	// Remaining packets still come out in order: nothing was lost.
	q, ok := s.pop(0, stop)
	if !ok || q.pkt != 6000 {
		t.Fatalf("post-compaction pop: got %v ok=%v", q.pkt, ok)
	}
}

// TestWriteStallTimeout: with Config.WriteStallTimeout set, a path whose
// peer stops reading fails with a timeout error instead of blocking
// Session.Wait forever.
func TestWriteStallTimeout(t *testing.T) {
	srv, err := NewServer(Config{
		Mu: 5000, PayloadSize: 8192, Count: 100, // ~820 KB, instantly generated
		WriteStallTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	cConn, sConn := tcpPair(t)
	defer cConn.Close()
	defer sConn.Close()
	// Small socket buffers so the sender blocks after a handful of frames;
	// the client deliberately never reads.
	sConn.(*net.TCPConn).SetWriteBuffer(8 * 1024)
	cConn.(*net.TCPConn).SetReadBuffer(8 * 1024)

	sess := srv.Start()
	sess.AddPath(sConn)
	done := make(chan error, 1)
	go func() {
		_, err := sess.Wait()
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("hung path produced no error")
		}
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Timeout() {
			t.Fatalf("want a timeout error, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Session.Wait still blocked despite WriteStallTimeout")
	}
}

// TestWriteStallTimeoutConfigValidation rejects negative timeouts.
func TestWriteStallTimeoutConfigValidation(t *testing.T) {
	if _, err := NewServer(Config{Mu: 10, WriteStallTimeout: -time.Second}); err == nil {
		t.Fatal("negative stall timeout accepted")
	}
}

// TestSessionConcurrentMembership hammers AddPath/RemovePath/Stop from
// concurrent goroutines on a live session; run under -race this pins the
// locking of dynamic path membership.
func TestSessionConcurrentMembership(t *testing.T) {
	srv, err := NewServer(Config{Mu: 2000, PayloadSize: 32}) // live until Stop
	if err != nil {
		t.Fatal(err)
	}
	const paths = 6
	sConns := make([]net.Conn, paths)
	cConns := make([]net.Conn, paths)
	for i := 0; i < paths; i++ {
		cConns[i], sConns[i] = tcpPair(t)
	}
	// Drain every client side so no sender can block on a full buffer.
	var drain sync.WaitGroup
	for _, c := range cConns {
		drain.Add(1)
		go func(c net.Conn) {
			defer drain.Done()
			io.Copy(io.Discard, c)
		}(c)
	}

	sess := srv.Start()
	rng := rand.New(rand.NewSource(42))
	delays := make([]time.Duration, paths)
	for i := range delays {
		delays[i] = time.Duration(rng.Intn(100)) * time.Millisecond
	}
	var wg sync.WaitGroup
	for i := 0; i < paths; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := sess.AddPath(sConns[i])
			time.Sleep(delays[i])
			if i%2 == 0 {
				sess.RemovePath(k)
				sess.RemovePath(k) // concurrent double-remove is a no-op
			}
		}(i)
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		srv.Stop()
	}()
	wg.Wait()

	done := make(chan struct{})
	var n int64
	var werr error
	go func() {
		n, werr = sess.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Wait deadlocked under concurrent membership changes")
	}
	if werr != nil {
		t.Fatalf("session error: %v", werr)
	}
	if n == 0 {
		t.Fatal("nothing generated")
	}
	for _, c := range sConns {
		c.Close()
	}
	drain.Wait()
	for _, c := range cConns {
		c.Close()
	}
	counts := srv.PathCounts()
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != n {
		t.Fatalf("conservation violated: generated %d, sent %d (%v)", n, total, counts)
	}
}
