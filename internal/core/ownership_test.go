package core

import (
	"reflect"
	"testing"
)

// TestQueuedRetainsNoPayloadAliases pins the buffer-ownership contract
// on the core resend path: the shared queue and the per-path resend
// ring both store queued metadata (packet number + generation stamp)
// and regenerate bytes through Config.Fill at write time, so there is
// no retained payload to go stale when a path dies and its window is
// requeued. A payload alias added to queued would silently survive
// requeue/unroll and replay whatever the buffer holds by then — the
// use-after-handoff bug the bufown analyzer convicts statically — so
// the element type is pinned reference-free here. (internal/hub has
// the matching pin for its []int64 sequence ring.)
func TestQueuedRetainsNoPayloadAliases(t *testing.T) {
	qt := reflect.TypeOf(queued{})
	for i := 0; i < qt.NumField(); i++ {
		f := qt.Field(i)
		switch k := f.Type.Kind(); k {
		case reflect.Slice, reflect.Ptr, reflect.Map, reflect.Chan, reflect.UnsafePointer, reflect.Interface, reflect.String:
			t.Errorf("queued.%s is a %v: the resend ring must hold metadata only, never payload aliases", f.Name, k)
		}
	}

	// unroll must return the same metadata values, not references into
	// a buffer that the ring keeps overwriting.
	ring := []queued{{pkt: 5}, {pkt: 3}, {pkt: 4}}
	got := unroll(ring, 7)
	if len(got) != 3 || got[0].pkt != 3 || got[1].pkt != 4 || got[2].pkt != 5 {
		t.Fatalf("unroll order wrong: %v", got)
	}
}
