package core

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dmpstream/internal/emunet"
)

// host serves a Session behind a real listener, attaching every accepted
// connection as a new path — the minimal server-side re-attach loop (core
// cannot import hub, whose Attach does the same keyed by token). With
// useJoin it consumes the DMPJ handshake first, and kills lets it close the
// first N connections right after their handshake, modeling a path that
// dies mid-join.
type host struct {
	t    *testing.T
	ln   net.Listener
	srv  *Server
	sess *Session

	useJoin bool
	mu      sync.Mutex
	kills   int // guarded by mu

	wg sync.WaitGroup
}

func startHost(t *testing.T, cfg Config, useJoin bool, kills int) *host {
	t.Helper()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	h := &host{t: t, ln: ln, srv: srv, sess: srv.Start(), useJoin: useJoin, kills: kills}
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		h.acceptLoop()
	}()
	return h
}

func (h *host) acceptLoop() {
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			return
		}
		if h.useJoin {
			conn.SetReadDeadline(time.Now().Add(5 * time.Second))
			if _, err := ReadJoin(conn); err != nil {
				conn.Close()
				continue
			}
			conn.SetReadDeadline(time.Time{})
		}
		h.mu.Lock()
		kill := h.kills > 0
		if kill {
			h.kills--
		}
		h.mu.Unlock()
		if kill {
			conn.Close() // dies between the DMPJ handshake and the header
			continue
		}
		h.sess.AddPath(conn)
	}
}

// finish stops accepting and joins the session; call after the client is done.
func (h *host) finish() (int64, error) {
	h.ln.Close()
	h.wg.Wait()
	return h.sess.Wait()
}

// faultCase is one scripted failure scenario: two paths, each through its
// own fault-capable relay, consumed by a redialing Client.
type faultCase struct {
	name    string
	cfg     Config
	policy  RedialPolicy
	useJoin bool
	kills   int
	scripts [2]string        // per-path fault script on that path's relay
	closeAt [2]time.Duration // when to close a path's relay entirely (0 = never)

	minDowns int32   // at least this many OnPathDown events
	tau      float64 // startup delay for the late-fraction bound
	maxLate  float64 // playback-order late fraction must stay below this
}

func TestFaultScenarios(t *testing.T) {
	base := Config{Mu: 200, PayloadSize: 100, Count: 600, // 3 s of stream
		WriteStallTimeout: 2 * time.Second, ResendWindow: 128}
	cases := []faultCase{
		{
			// A path is reset mid-stream and never redialed: the surviving
			// path must deliver the full stream, including the dead path's
			// requeued resend window.
			name:     "single-path-death",
			cfg:      base,
			policy:   RedialPolicy{}, // no redial
			scripts:  [2]string{"", "drop@500ms"},
			minDowns: 1,
			tau:      2.0, maxLate: 0.05,
		},
		{
			// Both paths die (staggered), both redial and recover. For a
			// moment no path exists at all; the queue buffers the stream
			// until the first redial lands.
			name:     "all-paths-flap",
			cfg:      base,
			policy:   RedialPolicy{Base: 300 * time.Millisecond, Multiplier: 1, Budget: 5, Seed: 7},
			scripts:  [2]string{"sever@600ms", "sever@900ms"},
			minDowns: 2,
			tau:      2.0, maxLate: 0.05,
		},
		{
			// The server closes a connection right after its DMPJ handshake;
			// the redial must attach a fresh path and the stream complete.
			name:     "death-during-handshake",
			cfg:      base,
			policy:   RedialPolicy{Base: 200 * time.Millisecond, Multiplier: 1, Budget: 4, Seed: 3},
			useJoin:  true,
			kills:    1,
			minDowns: 1,
			tau:      2.0, maxLate: 0.05,
		},
		{
			// A path dies and every redial fails (its relay is gone): the
			// budget must bound the attempts, and the surviving path still
			// conserves the stream.
			name:     "redial-exhausts-budget",
			cfg:      base,
			policy:   RedialPolicy{Base: 250 * time.Millisecond, Multiplier: 1, Budget: 2, Seed: 5},
			scripts:  [2]string{"", "sever@500ms"},
			closeAt:  [2]time.Duration{0, 600 * time.Millisecond},
			minDowns: 3, // the death plus two refused redials
			tau:      2.0, maxLate: 0.05,
		},
	}
	for _, fc := range cases {
		fc := fc
		t.Run(fc.name, func(t *testing.T) {
			t.Parallel()
			runFaultScenario(t, fc)
		})
	}
}

func runFaultScenario(t *testing.T, fc faultCase) {
	h := startHost(t, fc.cfg, fc.useJoin, fc.kills)

	relays := make([]*emunet.Relay, 2)
	for i := range relays {
		r, err := emunet.Listen("127.0.0.1:0", h.ln.Addr().String(), emunet.PathConfig{})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		relays[i] = r
		if fc.scripts[i] != "" {
			evs, err := emunet.ParseFaultScript(fc.scripts[i])
			if err != nil {
				t.Fatal(err)
			}
			tl := r.Schedule(evs)
			defer tl.Stop()
		}
		if fc.closeAt[i] > 0 {
			r := r
			timer := time.AfterFunc(fc.closeAt[i], func() { r.Close() })
			defer timer.Stop()
		}
	}

	var downs atomic.Int32
	client := &Client{
		Dial:       func(k int) (net.Conn, error) { return net.Dial("tcp", relays[k].Addr()) },
		Paths:      2,
		Policy:     fc.policy,
		OnPathDown: func(int, error) { downs.Add(1) },
	}
	if fc.useJoin {
		tok, err := NewToken()
		if err != nil {
			t.Fatal(err)
		}
		client.Join = &Join{StreamID: "live", Token: tok}
	}

	tr, err := client.Run()
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	n, _ := h.finish() // path errors on the server side are expected here
	if n != fc.cfg.Count {
		t.Fatalf("generated %d, want %d", n, fc.cfg.Count)
	}

	// Packet conservation: every generated packet arrived exactly once.
	if tr.Expected != fc.cfg.Count {
		t.Fatalf("trace expected %d, want %d", tr.Expected, fc.cfg.Count)
	}
	if missing := tr.Missing(); len(missing) != 0 {
		t.Fatalf("%d packets lost (first: %d)", len(missing), missing[0])
	}
	if int64(len(tr.Arrivals)) != fc.cfg.Count {
		t.Fatalf("%d arrivals for %d packets", len(tr.Arrivals), fc.cfg.Count)
	}

	// Bounded lateness: the failure may delay packets, but a startup delay
	// of tau seconds must still absorb almost all of it.
	if late, _ := tr.LateFraction(fc.tau); late > fc.maxLate {
		t.Fatalf("late fraction %.4f at tau=%gs exceeds %.4f", late, fc.tau, fc.maxLate)
	}
	if got := downs.Load(); got < fc.minDowns {
		t.Fatalf("OnPathDown fired %d times, want >= %d", got, fc.minDowns)
	}
}

// TestSeverRedialAcceptance is the issue's acceptance scenario: path 1 of
// two is severed at t=5s and redials (base backoff 5s, no jitter) land at
// t=10s. The stream must complete with zero lost packets, the late fraction
// must stay within 10 percentage points of a no-failure baseline, and two
// seeded runs must agree on every deterministic observable.
func TestSeverRedialAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("15s real-time scenario")
	}
	cfg := Config{Mu: 40, PayloadSize: 200, Count: 600, // 15 s of stream
		WriteStallTimeout: 2 * time.Second, ResendWindow: 128}

	type outcome struct {
		tr       *Trace
		redials  []int     // OnPathUp attempt numbers, in order, per event
		reupAt   []float64 // seconds since start of each re-attach
		lateFrac float64
	}
	run := func(sever bool) outcome {
		h := startHost(t, cfg, false, 0)
		relay, err := emunet.Listen("127.0.0.1:0", h.ln.Addr().String(), emunet.PathConfig{})
		if err != nil {
			t.Fatal(err)
		}
		defer relay.Close()
		if sever {
			evs, err := emunet.ParseFaultScript("sever@5s")
			if err != nil {
				t.Fatal(err)
			}
			tl := relay.Schedule(evs)
			defer tl.Stop()
		}
		addrs := []string{h.ln.Addr().String(), relay.Addr()}
		var mu sync.Mutex
		var out outcome
		start := time.Now()
		client := &Client{
			Dial:   func(k int) (net.Conn, error) { return net.Dial("tcp", addrs[k]) },
			Paths:  2,
			Policy: RedialPolicy{Base: 5 * time.Second, Multiplier: 1, Jitter: 0, Budget: 3, Seed: 42},
			OnPathUp: func(path, attempt int) {
				if attempt > 0 {
					mu.Lock()
					out.redials = append(out.redials, attempt)
					out.reupAt = append(out.reupAt, time.Since(start).Seconds())
					mu.Unlock()
				}
			},
		}
		tr, err := client.Run()
		if err != nil {
			t.Errorf("client: %v", err)
		}
		if _, err := h.finish(); sever == (err == nil) {
			t.Errorf("server path errors: %v (sever=%v)", err, sever)
		}
		out.tr = tr
		out.lateFrac, _ = tr.LateFraction(2.0)
		return out
	}

	// Baseline and the two seeded fault runs are independent stacks; run
	// them concurrently so the test costs one 15 s stream, not three.
	var baseline, runA, runB outcome
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { defer wg.Done(); baseline = run(false) }()
	go func() { defer wg.Done(); runA = run(true) }()
	go func() { defer wg.Done(); runB = run(true) }()
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	for name, o := range map[string]outcome{"baseline": baseline, "runA": runA, "runB": runB} {
		if o.tr.Expected != cfg.Count || int64(len(o.tr.Arrivals)) != cfg.Count {
			t.Fatalf("%s: %d/%d packets (expected field %d)", name, len(o.tr.Arrivals), cfg.Count, o.tr.Expected)
		}
		if missing := o.tr.Missing(); len(missing) != 0 {
			t.Fatalf("%s: %d packets lost", name, len(missing))
		}
	}
	for name, o := range map[string]outcome{"runA": runA, "runB": runB} {
		if len(o.redials) != 1 || o.redials[0] != 1 {
			t.Fatalf("%s: redial events %v, want exactly one first-attempt redial", name, o.redials)
		}
		// Death at t=5s plus the 5 s base backoff: the re-attach lands at
		// t=10s (allow slack for dial/handshake scheduling).
		if at := o.reupAt[0]; at < 9.5 || at > 12 {
			t.Fatalf("%s: re-attach at t=%.1fs, want ~10s", name, at)
		}
		if o.lateFrac > baseline.lateFrac+0.10 {
			t.Fatalf("%s: late fraction %.4f exceeds baseline %.4f + 10pp", name, o.lateFrac, baseline.lateFrac)
		}
	}
	// Determinism: the two seeded runs agree on every deterministic
	// observable (delivered set and count, redial count and sequence).
	if len(runA.tr.Arrivals) != len(runB.tr.Arrivals) {
		t.Fatalf("runs delivered %d vs %d packets", len(runA.tr.Arrivals), len(runB.tr.Arrivals))
	}
	seen := make(map[uint32]bool, len(runA.tr.Arrivals))
	for _, a := range runA.tr.Arrivals {
		seen[a.Pkt] = true
	}
	for _, a := range runB.tr.Arrivals {
		if !seen[a.Pkt] {
			t.Fatalf("runB delivered packet %d that runA did not", a.Pkt)
		}
	}
	if len(runA.redials) != len(runB.redials) {
		t.Fatalf("redial sequences differ: %v vs %v", runA.redials, runB.redials)
	}
}

// TestReceiveUnblocksSilentPath is the regression test for the pre-
// resilience hang: a path that goes silent (no error, no end marker) used
// to block Receive forever once the other path had finished. The EndGrace
// deadline must surface it as a per-path error instead, with the stream
// intact from the surviving path.
func TestReceiveUnblocksSilentPath(t *testing.T) {
	const count = 20
	c0, s0 := tcpPair(t)
	c1, s1 := tcpPair(t)
	defer c0.Close()
	defer c1.Close()
	defer s0.Close()
	defer s1.Close()

	// Path 0 delivers the whole stream and its end marker; path 1 presents a
	// header and then goes silent with the connection held open.
	go func() {
		if err := WriteStreamHeader(s0, 0, 2, 10, 100); err != nil {
			return
		}
		frame := make([]byte, frameHdr+10)
		for i := uint32(0); i < count; i++ {
			PutFrameHeader(frame, i, time.Now().UnixNano())
			if _, err := s0.Write(frame); err != nil {
				return
			}
		}
		PutFrameHeader(frame, EndMarker, count)
		s0.Write(frame)
	}()
	go func() {
		WriteStreamHeader(s1, 1, 2, 10, 100)
		// ... and nothing more: the silent-failure mode.
	}()

	done := make(chan struct{})
	var tr *Trace
	var err error
	go func() {
		defer close(done)
		tr, err = ReceiveOpts([]net.Conn{c0, c1}, ReceiverOptions{EndGrace: 500 * time.Millisecond})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Receive still blocked on the silent path")
	}
	if err == nil {
		t.Fatal("silent path must surface a per-path error")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("silent-path error %v does not carry the deadline timeout", err)
	}
	if tr.Expected != count || int64(len(tr.Arrivals)) != count {
		t.Fatalf("surviving path delivered %d/%d (expected field %d)", len(tr.Arrivals), count, tr.Expected)
	}
}

// TestPlayUnblocksSilentPath: same regression for the real-time player.
func TestPlayUnblocksSilentPath(t *testing.T) {
	const count = 30
	c0, s0 := tcpPair(t)
	c1, s1 := tcpPair(t)
	defer c0.Close()
	defer c1.Close()
	defer s0.Close()
	defer s1.Close()

	go func() {
		if err := WriteStreamHeader(s0, 0, 2, 10, 200); err != nil {
			return
		}
		frame := make([]byte, frameHdr+10)
		for i := uint32(0); i < count; i++ {
			PutFrameHeader(frame, i, time.Now().UnixNano())
			if _, err := s0.Write(frame); err != nil {
				return
			}
		}
		PutFrameHeader(frame, EndMarker, count)
		s0.Write(frame)
	}()
	go func() {
		WriteStreamHeader(s1, 1, 2, 10, 200)
	}()

	done := make(chan struct{})
	var stats PlayerStats
	go func() {
		defer close(done)
		stats, _ = Play([]net.Conn{c0, c1}, PlayerConfig{
			StartupDelay: 100 * time.Millisecond,
			EndGrace:     500 * time.Millisecond,
		})
	}()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("Play still blocked on the silent path")
	}
	if stats.Expected != count {
		t.Fatalf("played stream expected %d, want %d", stats.Expected, count)
	}
	if stats.Played == 0 {
		t.Fatal("nothing played from the surviving path")
	}
}

// TestSessionChurnRace hammers one session with concurrent AddPath,
// RemovePath, path kills (client-side closes), state polling and Stop —
// meaningful under -race, where any unguarded state in the path lifecycle
// machinery shows up.
func TestSessionChurnRace(t *testing.T) {
	srv, err := NewServer(Config{Mu: 500, PayloadSize: 50, ResendWindow: 32,
		WriteStallTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	sess := srv.Start()

	var mu sync.Mutex
	var clientConns []net.Conn
	var drainers sync.WaitGroup

	addPath := func() int {
		c, s := tcpPair(t)
		k := sess.AddPath(s)
		mu.Lock()
		clientConns = append(clientConns, c)
		mu.Unlock()
		drainers.Add(1)
		go func() {
			defer drainers.Done()
			buf := make([]byte, 4096)
			for {
				c.SetReadDeadline(time.Now().Add(5 * time.Second))
				if _, err := c.Read(buf); err != nil {
					return
				}
			}
		}()
		return k
	}

	for i := 0; i < 4; i++ {
		addPath()
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(4)
	go func() { // churn: keep adding paths
		defer wg.Done()
		for i := 0; i < 12; i++ {
			select {
			case <-stop:
				return
			case <-time.After(40 * time.Millisecond):
				addPath()
			}
		}
	}()
	go func() { // churn: remove paths administratively
		defer wg.Done()
		for k := 0; ; k++ {
			select {
			case <-stop:
				return
			case <-time.After(90 * time.Millisecond):
				sess.RemovePath(k * 3)
			}
		}
	}()
	go func() { // churn: kill paths from the client side
		defer wg.Done()
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(110 * time.Millisecond):
				mu.Lock()
				if i*2 < len(clientConns) {
					clientConns[i*2].Close()
				}
				mu.Unlock()
			}
		}
	}()
	go func() { // observers
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(20 * time.Millisecond):
				_ = sess.PathStates()
				_ = srv.PathCounts()
				_ = sess.PathState(1)
			}
		}
	}()

	time.Sleep(700 * time.Millisecond)
	srv.Stop()
	close(stop)
	wg.Wait()
	if _, err := sess.Wait(); err != nil {
		t.Logf("path errors during churn (expected): %v", err)
	}
	mu.Lock()
	for _, c := range clientConns {
		c.Close()
	}
	mu.Unlock()
	drainers.Wait()

	// Every path must have landed in a coherent terminal-or-live state.
	for k, st := range sess.PathStates() {
		switch st {
		case PathActive, PathStalled, PathDead, PathRemoved:
		default:
			t.Fatalf("path %d in impossible state %v", k, st)
		}
	}
}
