package core

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// traceMagic heads the on-disk trace format.
const traceMagic = "# dmpstream-trace v1"

// WriteCSV serializes the trace: a metadata comment line, a header row, and
// one row per arrival. The format round-trips through ReadTraceCSV and is
// directly loadable by spreadsheet/plotting tools.
func (t *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s mu=%g payload=%d expected=%d\n", traceMagic, t.Mu, t.PayloadSize, t.Expected)
	cw := csv.NewWriter(bw)
	if err := cw.Write([]string{"pkt", "gen_ns", "at_ns", "path"}); err != nil {
		return err
	}
	row := make([]string, 4)
	for _, a := range t.Arrivals {
		row[0] = strconv.FormatUint(uint64(a.Pkt), 10)
		row[1] = strconv.FormatInt(a.Gen, 10)
		row[2] = strconv.FormatInt(a.At, 10)
		row[3] = strconv.Itoa(a.Path)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadTraceCSV parses a trace written by WriteCSV.
func ReadTraceCSV(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	meta, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("core: trace metadata: %w", err)
	}
	meta = strings.TrimSpace(meta)
	if !strings.HasPrefix(meta, traceMagic) {
		return nil, fmt.Errorf("core: not a dmpstream trace (got %q)", firstN(meta, 40))
	}
	tr := &Trace{}
	for _, field := range strings.Fields(strings.TrimPrefix(meta, traceMagic)) {
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("core: malformed metadata field %q", field)
		}
		switch k {
		case "mu":
			tr.Mu, err = strconv.ParseFloat(v, 64)
		case "payload":
			tr.PayloadSize, err = strconv.Atoi(v)
		case "expected":
			tr.Expected, err = strconv.ParseInt(v, 10, 64)
		default:
			continue // forward compatibility: ignore unknown fields
		}
		if err != nil {
			return nil, fmt.Errorf("core: metadata field %q: %w", field, err)
		}
	}
	if tr.Mu <= 0 {
		return nil, fmt.Errorf("core: trace missing playback rate")
	}

	cr := csv.NewReader(br)
	cr.FieldsPerRecord = 4
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("core: trace header: %w", err)
	}
	if header[0] != "pkt" {
		return nil, fmt.Errorf("core: unexpected trace header %v", header)
	}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("core: trace row: %w", err)
		}
		pkt, err1 := strconv.ParseUint(rec[0], 10, 32)
		gen, err2 := strconv.ParseInt(rec[1], 10, 64)
		at, err3 := strconv.ParseInt(rec[2], 10, 64)
		path, err4 := strconv.Atoi(rec[3])
		for _, e := range []error{err1, err2, err3, err4} {
			if e != nil {
				return nil, fmt.Errorf("core: trace row %v: %w", rec, e)
			}
		}
		tr.Arrivals = append(tr.Arrivals, Arrival{Pkt: uint32(pkt), Gen: gen, At: at, Path: path})
	}
	return tr, nil
}

func firstN(s string, n int) string {
	if len(s) > n {
		return s[:n]
	}
	return s
}
