package core

import (
	"net"
	"sync"
	"testing"
	"time"
)

func TestPlayerCleanStream(t *testing.T) {
	srv, err := NewServer(Config{Mu: 500, PayloadSize: 64, Count: 400})
	if err != nil {
		t.Fatal(err)
	}
	sConns := make([]net.Conn, 2)
	cConns := make([]net.Conn, 2)
	for i := range sConns {
		cConns[i], sConns[i] = tcpPair(t)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv.Serve(sConns)
		for _, c := range sConns {
			c.Close()
		}
	}()
	var order []uint32
	stats, err := Play(cConns, PlayerConfig{
		StartupDelay: 500 * time.Millisecond,
		OnPacket:     func(pkt uint32, _ []byte) { order = append(order, pkt) },
	})
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Expected != 400 {
		t.Fatalf("expected = %d", stats.Expected)
	}
	if stats.Glitches != 0 {
		t.Fatalf("%d glitches on loopback with 500ms delay", stats.Glitches)
	}
	if stats.Played != 400 {
		t.Fatalf("played %d", stats.Played)
	}
	for i, pkt := range order {
		if pkt != uint32(i) {
			t.Fatalf("playout order broken at %d: %d", i, pkt)
		}
	}
	if stats.GlitchFraction() != 0 {
		t.Fatalf("glitch fraction %v", stats.GlitchFraction())
	}
}

func TestPlayerGlitchesOnStalledPath(t *testing.T) {
	// Single path that stalls mid-stream longer than the startup delay:
	// the player must glitch through the gap, then resume.
	cConn, sConn := tcpPair(t)
	go func() {
		srv, _ := NewServer(Config{Mu: 200, PayloadSize: 32, Count: 100})
		sess := srv.Start()
		sess.AddPath(sConn)
		sess.Wait()
		sConn.Close()
	}()
	// Throttle reading? Simpler: stall by not... the server writes freely on
	// loopback, so induce the gap on the receive side with a slow middle:
	// here we rely on a tiny startup delay instead — packets later than
	// their 50ms budget glitch only if the path stalls, which loopback does
	// not. So instead verify the late-arrival discard logic directly below.
	stats, err := Play([]net.Conn{cConn}, PlayerConfig{StartupDelay: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Played+stats.Glitches != 100 {
		t.Fatalf("slots played %d + glitches %d != 100", stats.Played, stats.Glitches)
	}
	cConn.Close()
}

func TestPlayerCountsGlitchesWithManualFrames(t *testing.T) {
	// Hand-crafted session: packet 1 is withheld until after its slot.
	cConn, sConn := tcpPair(t)
	const mu, payload = 20.0, 8 // 50ms slots: slot i plays at 200ms + i*50ms
	go func() {
		sConn.Write(headerBytes(0, 1, payload, mu))
		sConn.Write(frameBytes(0, payload))
		sConn.Write(frameBytes(2, payload))
		sConn.Write(frameBytes(3, payload))
		// Slot 1 plays at ~250ms; withhold packet 1 until after that, and
		// deliver the end marker before slot 4 (due at 400ms) so the player
		// stops exactly at the generated count.
		time.Sleep(320 * time.Millisecond)
		sConn.Write(frameBytes(1, payload))
		end := frameBytes(EndMarker, payload)
		putUint64(end[4:12], 4)
		sConn.Write(end)
		sConn.Close()
	}()
	var glitched []uint32
	stats, err := Play([]net.Conn{cConn}, PlayerConfig{
		StartupDelay: 200 * time.Millisecond,
		OnGlitch:     func(pkt uint32) { glitched = append(glitched, pkt) },
	})
	if err != nil {
		t.Fatal(err)
	}
	cConn.Close()
	if stats.Glitches != 1 || len(glitched) != 1 || glitched[0] != 1 {
		t.Fatalf("glitches = %d (%v), want exactly packet 1", stats.Glitches, glitched)
	}
	if stats.LateArrivals != 1 {
		t.Fatalf("late arrivals = %d, want 1", stats.LateArrivals)
	}
	if stats.Played != 3 {
		t.Fatalf("played = %d, want 3", stats.Played)
	}
}

func TestPlayerRejectsBadConfig(t *testing.T) {
	if _, err := Play(nil, PlayerConfig{StartupDelay: time.Second}); err == nil {
		t.Error("no conns accepted")
	}
	cConn, sConn := tcpPair(t)
	defer cConn.Close()
	defer sConn.Close()
	if _, err := Play([]net.Conn{cConn}, PlayerConfig{}); err == nil {
		t.Error("zero startup delay accepted")
	}
}

func TestPlayerAllPathsFailBeforeHeader(t *testing.T) {
	cConn, sConn := tcpPair(t)
	sConn.Close()
	if _, err := Play([]net.Conn{cConn}, PlayerConfig{StartupDelay: 100 * time.Millisecond}); err == nil {
		t.Error("headerless session accepted")
	}
	cConn.Close()
}

// --- helpers to hand-craft wire data ---

func headerBytes(pathIdx, numPaths uint8, payload int, mu float64) []byte {
	h := make([]byte, headerSize)
	copy(h[0:4], magic[:])
	h[4] = 1
	h[5] = pathIdx
	h[6] = numPaths
	putUint32(h[8:12], uint32(payload))
	putUint64(h[12:20], uint64(mu*1e6))
	return h
}

func frameBytes(pkt uint32, payload int) []byte {
	f := make([]byte, frameHdr+payload)
	putUint32(f[0:4], pkt)
	putUint64(f[4:12], uint64(time.Now().UnixNano()))
	return f
}

func putUint32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (56 - 8*i))
	}
}
