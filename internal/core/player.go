package core

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// PlayerConfig drives real-time playout of a multipath stream.
type PlayerConfig struct {
	// StartupDelay is τ: playback of packet 0 begins this long after the
	// first packet arrives.
	StartupDelay time.Duration
	// OnPacket, if set, receives each packet's payload at its playback slot,
	// in packet-number order. The buffer is reused; copy to retain.
	OnPacket func(pkt uint32, payload []byte)
	// OnGlitch, if set, is called when a playback slot arrives and its
	// packet has not: the glitch the paper's late-packet metric stands for.
	OnGlitch func(pkt uint32)
	// EndGrace bounds how long a still-silent path may block Play after
	// another path delivered the end marker: the laggard gets a read deadline
	// and surfaces a timeout error instead of hanging Play forever. 0 selects
	// DefaultEndGrace; negative disables the guard.
	EndGrace time.Duration
}

// PlayerStats summarizes a live playout.
type PlayerStats struct {
	Played       int64 // slots played on time
	Glitches     int64 // slots whose packet was missing at playback time
	LateArrivals int64 // packets that arrived after their slot had passed
	Expected     int64 // packets the server generated
}

// GlitchFraction is the live equivalent of the paper's fraction of late
// packets.
func (ps PlayerStats) GlitchFraction() float64 {
	total := ps.Played + ps.Glitches
	if total == 0 {
		return 0
	}
	return float64(ps.Glitches) / float64(total)
}

// Play consumes a DMP-streaming session from the given path connections and
// plays it back in real time with the configured startup delay. It blocks
// until the stream ends and every slot up to the last generated packet has
// been played or declared a glitch.
func Play(conns []net.Conn, cfg PlayerConfig) (PlayerStats, error) {
	if len(conns) == 0 {
		return PlayerStats{}, errors.New("core: no paths")
	}
	if cfg.StartupDelay <= 0 {
		return PlayerStats{}, errors.New("core: startup delay must be positive")
	}

	type sessionMeta struct {
		mu      float64
		payload int
	}
	metaCh := make(chan sessionMeta, len(conns))

	grace := cfg.EndGrace
	if grace == 0 {
		grace = DefaultEndGrace
	}

	var mu sync.Mutex
	buffer := make(map[uint32][]byte)
	var expected int64 = -1 // unknown until an end marker
	var lateArrivals int64
	played := uint32(0) // next slot to play (read under mu)
	endSeen := false    // guarded by mu
	active := make(map[net.Conn]struct{}, len(conns))
	for _, conn := range conns {
		active[conn] = struct{}{}
	}

	var readers sync.WaitGroup
	errs := make([]error, len(conns))
	for k, conn := range conns {
		readers.Add(1)
		go func(k int, conn net.Conn) {
			defer readers.Done()
			defer func() {
				mu.Lock()
				delete(active, conn)
				mu.Unlock()
			}()
			m, payload, err := readHeader(conn)
			if err != nil {
				errs[k] = err
				return
			}
			metaCh <- sessionMeta{mu: m, payload: payload}
			frame := make([]byte, frameHdr+payload)
			for {
				// nolint:netdeadline client-side read loop: bounded by the server's
				// end marker, and the caller owns/closes the connections on failure.
				if _, err := io.ReadFull(conn, frame); err != nil {
					errs[k] = fmt.Errorf("core: path %d read: %w", k, err)
					return
				}
				pkt, v, err := ParseFrameHeader(frame)
				if err != nil {
					errs[k] = fmt.Errorf("core: path %d: %w", k, err)
					return
				}
				if pkt == EndMarker {
					mu.Lock()
					if v > expected {
						expected = v
					}
					if !endSeen {
						endSeen = true
						// First end marker: a path still silent from here on
						// would block the final readers.Wait forever (a
						// blackholed link surfaces no read error), so bound
						// the stragglers with the grace deadline.
						if grace > 0 {
							dl := time.Now().Add(grace)
							for c := range active {
								if c != conn {
									c.SetReadDeadline(dl)
								}
							}
						}
					}
					mu.Unlock()
					return
				}
				data := make([]byte, payload)
				copy(data, frame[frameHdr:])
				mu.Lock()
				if pkt < played {
					lateArrivals++ // slot already passed; discard
				} else {
					buffer[pkt] = data
				}
				mu.Unlock()
			}
		}(k, conn)
	}

	done := make(chan struct{})
	go func() {
		readers.Wait()
		close(done)
	}()

	var meta sessionMeta
	select {
	case meta = <-metaCh:
	case <-done:
		// Every reader failed before producing a header.
		select {
		case meta = <-metaCh:
		default:
			return PlayerStats{}, errors.Join(append(errs, errors.New("core: no usable session header"))...)
		}
	}
	period := time.Duration(float64(time.Second) / meta.mu)

	var stats PlayerStats
	start := time.Now().Add(cfg.StartupDelay)
	for slot := uint32(0); ; slot++ {
		mu.Lock()
		exp := expected
		mu.Unlock()
		if exp >= 0 && int64(slot) >= exp {
			break
		}
		due := start.Add(time.Duration(slot) * period)
		if d := time.Until(due); d > 0 {
			select {
			case <-time.After(d):
			case <-done:
				// Paths all ended; if expected is known and reached, stop —
				// otherwise keep playing out buffered content on schedule.
				time.Sleep(time.Until(due))
			}
		}
		mu.Lock()
		data, ok := buffer[slot]
		delete(buffer, slot)
		played = slot + 1
		mu.Unlock()
		if ok {
			stats.Played++
			if cfg.OnPacket != nil {
				cfg.OnPacket(slot, data)
			}
		} else {
			stats.Glitches++
			if cfg.OnGlitch != nil {
				cfg.OnGlitch(slot)
			}
		}
		// Safety: without an end marker (all paths failed), stop once the
		// buffer is drained and every reader has exited.
		if exp < 0 {
			select {
			case <-done:
				mu.Lock()
				empty := len(buffer) == 0
				mu.Unlock()
				if empty {
					readers.Wait()
					mu.Lock()
					stats.Expected = int64(played)
					stats.LateArrivals = lateArrivals
					mu.Unlock()
					return stats, errors.Join(errs...)
				}
			default:
			}
		}
	}

	readers.Wait()
	mu.Lock()
	stats.Expected = expected
	stats.LateArrivals = lateArrivals
	mu.Unlock()
	return stats, errors.Join(errs...)
}
