package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestTraceCSVRoundTrip(t *testing.T) {
	orig := &Trace{Mu: 50, PayloadSize: 1000, Expected: 3}
	orig.Arrivals = []Arrival{
		{Pkt: 0, Gen: 100, At: 200, Path: 0},
		{Pkt: 2, Gen: 140, At: 260, Path: 1},
		{Pkt: 1, Gen: 120, At: 400, Path: 0},
	}
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Mu != 50 || got.PayloadSize != 1000 || got.Expected != 3 {
		t.Fatalf("metadata: %+v", got)
	}
	if len(got.Arrivals) != 3 {
		t.Fatalf("%d arrivals", len(got.Arrivals))
	}
	for i := range orig.Arrivals {
		if got.Arrivals[i] != orig.Arrivals[i] {
			t.Fatalf("arrival %d: %+v vs %+v", i, got.Arrivals[i], orig.Arrivals[i])
		}
	}
}

func TestTraceCSVAnalysisSurvivesRoundTrip(t *testing.T) {
	tr := synthTrace(20, 100, func(i int) int64 { return int64(i) * 1e7 })
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, tau := range []float64{0.2, 0.5, 1.0} {
		a1, b1 := tr.LateFraction(tau)
		a2, b2 := got.LateFraction(tau)
		if a1 != a2 || b1 != b2 {
			t.Fatalf("tau %v: (%v,%v) vs (%v,%v)", tau, a1, b1, a2, b2)
		}
	}
}

func TestReadTraceCSVRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"hello world\n",
		"# dmpstream-trace v1 mu=abc\npkt,gen_ns,at_ns,path\n",
		"# dmpstream-trace v1 payload=10\npkt,gen_ns,at_ns,path\n", // missing mu
		"# dmpstream-trace v1 mu=50\nwrong,header,here,x\n",
		"# dmpstream-trace v1 mu=50\npkt,gen_ns,at_ns,path\nnot,a,number,row\n",
	}
	for i, c := range cases {
		if _, err := ReadTraceCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestReadTraceCSVIgnoresUnknownMetadata(t *testing.T) {
	in := "# dmpstream-trace v1 mu=10 future=stuff expected=1\npkt,gen_ns,at_ns,path\n0,1,2,0\n"
	tr, err := ReadTraceCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Mu != 10 || tr.Expected != 1 || len(tr.Arrivals) != 1 {
		t.Fatalf("%+v", tr)
	}
}

// Property: any synthetic trace round-trips exactly.
func TestPropertyTraceRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := &Trace{Mu: 1 + rng.Float64()*100, PayloadSize: rng.Intn(2000), Expected: int64(n)}
		for i := 0; i < int(n); i++ {
			tr.Arrivals = append(tr.Arrivals, Arrival{
				Pkt: uint32(rng.Intn(1 << 20)), Gen: rng.Int63(), At: rng.Int63(), Path: rng.Intn(8),
			})
		}
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			return false
		}
		got, err := ReadTraceCSV(&buf)
		if err != nil {
			return false
		}
		if got.Mu != tr.Mu || got.Expected != tr.Expected || len(got.Arrivals) != len(tr.Arrivals) {
			return false
		}
		for i := range tr.Arrivals {
			if got.Arrivals[i] != tr.Arrivals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
