package core

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Wire format. Every path of a session carries the same byte stream shape:
// a 20-byte stream header (server → client) followed by fixed-size frames.
// A broadcast hub additionally expects a 40-byte join request
// (client → server) *before* the stream header; the stream header and frame
// layout are unchanged, so any v1 receiver works on a hub path once the join
// has been written. A plain single-client Server (Serve/Start) neither reads
// nor expects a join, which keeps the original header backward compatible.
//
// A hub that refuses a join answers with a reject frame instead of the
// stream header: same 20-byte size, "DMPR" magic, a one-byte reason code,
// zero padding. Clients read exactly one header-sized response either way,
// so a rejected joiner gets a clean typed error instead of an EOF mid-read.
//
//	stream header: magic "DMPS" | ver=1 | pathIdx | numPaths | rsvd |
//	               payloadSize u32 | µ·1e6 u64
//	frame:         pktNum u32 | genNanos u64 | payload[payloadSize]
//	join request:  magic "DMPJ" | ver=1 | flags | rsvd[2] | streamID[16] | token[16]
//	join reject:   magic "DMPR" | ver=1 | code | rsvd[14]
//
// The join flags byte occupies the first of v1's three reserved bytes, so
// a v1 reader that ignores it still parses the request (flags were always
// written as zero before they existed). Bit 0 (JoinFlagAbsolute) asks the
// hub for origin-absolute packet numbering instead of the default
// join-point rebase — the relay-tier handshake (see internal/relay).
const (
	headerSize = 20
	frameHdr   = 12 // pktNum uint32 + genNanos int64
	joinSize   = 40

	// FrameHeaderSize is the per-frame overhead preceding the payload.
	FrameHeaderSize = frameHdr
	// MaxStreamID is the longest stream id a join request can carry.
	MaxStreamID = 16
	// EndMarker terminates a path's frame stream; its genNanos field carries
	// the total number of packets generated.
	EndMarker = ^uint32(0)
)

var (
	magic       = [4]byte{'D', 'M', 'P', 'S'}
	joinMagic   = [4]byte{'D', 'M', 'P', 'J'}
	rejectMagic = [4]byte{'D', 'M', 'P', 'R'}
)

// RejectCode is the reason a hub refused a join, carried in the reject frame.
type RejectCode uint8

const (
	// RejectServerFull: the admission limits (subscribers or connections)
	// are exhausted; try again later or elsewhere.
	RejectServerFull RejectCode = 1
	// RejectUnknownStream: the join named a stream this hub does not serve.
	RejectUnknownStream RejectCode = 2
	// RejectStreamEnded: the stream is over (or the hub stopped).
	RejectStreamEnded RejectCode = 3
	// RejectDraining: the hub is shutting down gracefully and admits no new
	// subscriptions (re-attaches of live subscriptions are still admitted).
	RejectDraining RejectCode = 4
	// RejectEvicted: the presented token belongs to an evicted subscriber.
	RejectEvicted RejectCode = 5
	// RejectUpstreamLost: the hub is an edge relay whose upstream feed is
	// gone (orphaned past its grace); there is nothing left to serve here,
	// but the stream itself may still be live at other relays or the origin.
	RejectUpstreamLost RejectCode = 6
)

func (c RejectCode) String() string {
	switch c {
	case RejectServerFull:
		return "server full"
	case RejectUnknownStream:
		return "unknown stream"
	case RejectStreamEnded:
		return "stream ended"
	case RejectDraining:
		return "draining"
	case RejectEvicted:
		return "evicted"
	case RejectUpstreamLost:
		return "upstream lost"
	default:
		return fmt.Sprintf("reject(%d)", uint8(c))
	}
}

// Typed join outcomes a client can test with errors.Is. Every reject frame
// unwraps to ErrRejected plus the code-specific sentinel (when one exists).
var (
	ErrRejected      = errors.New("core: join rejected")
	ErrServerFull    = errors.New("core: server full")
	ErrUnknownStream = errors.New("core: unknown stream")
	ErrStreamOver    = errors.New("core: stream ended")
	ErrDraining      = errors.New("core: server draining")
	ErrEvicted       = errors.New("core: subscriber evicted")
	ErrUpstreamLost  = errors.New("core: upstream lost")
)

// sentinel maps a code to its errors.Is target; nil for unknown codes.
func (c RejectCode) sentinel() error {
	switch c {
	case RejectServerFull:
		return ErrServerFull
	case RejectUnknownStream:
		return ErrUnknownStream
	case RejectStreamEnded:
		return ErrStreamOver
	case RejectDraining:
		return ErrDraining
	case RejectEvicted:
		return ErrEvicted
	case RejectUpstreamLost:
		return ErrUpstreamLost
	default:
		return nil
	}
}

// RejectError is the client-side surface of a reject frame. It unwraps to
// both ErrRejected and the code's sentinel, so errors.Is(err, ErrServerFull)
// and errors.Is(err, ErrRejected) both hold for a full server.
type RejectError struct{ Code RejectCode }

func (e *RejectError) Error() string { return fmt.Sprintf("core: join rejected: %s", e.Code) }

// Unwrap exposes the typed sentinels for errors.Is.
func (e *RejectError) Unwrap() []error {
	if s := e.Code.sentinel(); s != nil {
		return []error{ErrRejected, s}
	}
	return []error{ErrRejected}
}

// WriteReject writes the header-sized reject frame a hub answers a refused
// join with.
func WriteReject(w io.Writer, code RejectCode) error {
	var b [headerSize]byte
	copy(b[0:4], rejectMagic[:])
	b[4] = 1 // version
	b[5] = byte(code)
	_, err := w.Write(b[:])
	return err
}

// WriteStreamHeader writes the v1 per-path stream header.
func WriteStreamHeader(w io.Writer, pathIdx, numPaths, payloadSize int, mu float64) error {
	var h [headerSize]byte
	copy(h[0:4], magic[:])
	h[4] = 1 // version
	h[5] = uint8(pathIdx)
	h[6] = uint8(numPaths)
	binary.BigEndian.PutUint32(h[8:12], uint32(payloadSize))
	binary.BigEndian.PutUint64(h[12:20], uint64(int64(mu*1e6))) // µ in micro-packets/s
	_, err := w.Write(h[:])
	return err
}

func readHeader(r io.Reader) (mu float64, payload int, err error) {
	var h [headerSize]byte
	if _, err = io.ReadFull(r, h[:]); err != nil {
		return 0, 0, fmt.Errorf("core: header read: %w", err)
	}
	if [4]byte(h[0:4]) == rejectMagic {
		if h[4] != 1 {
			return 0, 0, fmt.Errorf("core: unsupported reject version %d", h[4])
		}
		return 0, 0, &RejectError{Code: RejectCode(h[5])}
	}
	if [4]byte(h[0:4]) != magic {
		return 0, 0, fmt.Errorf("core: bad magic %q", h[0:4])
	}
	if h[4] != 1 {
		return 0, 0, fmt.Errorf("core: unsupported version %d", h[4])
	}
	payload = int(binary.BigEndian.Uint32(h[8:12]))
	mu = float64(binary.BigEndian.Uint64(h[12:20])) / 1e6
	if mu <= 0 || payload < 0 || payload > 1<<20 {
		return 0, 0, fmt.Errorf("core: implausible header µ=%v payload=%d", mu, payload)
	}
	return mu, payload, nil
}

// ReadStreamHeader reads one join response: the v1 stream header on
// admission (returning its rate and payload size), or a typed *RejectError
// when the server answered with a reject frame. It lets a client learn a
// join's outcome without committing to consume the stream.
func ReadStreamHeader(r io.Reader) (mu float64, payloadSize int, err error) {
	return readHeader(r)
}

// PutFrameHeader encodes a frame's packet number and generation timestamp
// into the first FrameHeaderSize bytes of frame. For an end marker, pass
// EndMarker and the generated-packet count.
//
// bufown owned frame — the encoder writes the header in place, so the
// caller must pass a buffer it owns, never a borrowed payload view.
func PutFrameHeader(frame []byte, pkt uint32, genNanos int64) {
	_ = frame[frameHdr-1] // bounds check: callers must size frame >= FrameHeaderSize
	binary.BigEndian.PutUint32(frame[0:4], pkt)
	binary.BigEndian.PutUint64(frame[4:12], uint64(genNanos))
}

// ParseFrameHeader decodes the packet number and generation timestamp
// from the first FrameHeaderSize bytes of b. For an end marker the packet
// number is EndMarker and the timestamp field carries the generated
// count. It is the read-side inverse of PutFrameHeader and rejects short
// input instead of panicking, so it is safe on untrusted bytes.
//
// bufown borrowed b — read-only decode; the header bytes stay the
// caller's.
func ParseFrameHeader(b []byte) (pkt uint32, genNanos int64, err error) {
	if len(b) < frameHdr {
		return 0, 0, fmt.Errorf("core: frame header: %d bytes, need %d", len(b), frameHdr)
	}
	pkt = binary.BigEndian.Uint32(b[0:4])
	genNanos = int64(binary.BigEndian.Uint64(b[4:12]))
	return pkt, genNanos, nil
}

// Token identifies one hub subscription; all path connections carrying the
// same token attach to the same subscriber.
type Token [16]byte

// NewToken draws a fresh random subscriber token.
func NewToken() (Token, error) {
	var tok Token
	if _, err := rand.Read(tok[:]); err != nil {
		return Token{}, fmt.Errorf("core: token: %w", err)
	}
	return tok, nil
}

// String renders the token in hex (for logs and stats).
func (t Token) String() string { return fmt.Sprintf("%x", t[:]) }

// JoinFlagAbsolute asks the hub to skip the per-subscriber packet-number
// rebase: frames carry origin-absolute sequence numbers and the cursor
// starts at the ring tail (everything the hub still retains) instead of
// the live edge. Relays and tree-aware leaves join with it so packet
// identity is stable across tiers, failovers and mid-tier restarts —
// the client-side dedup then collapses replays no matter which hub
// instance served them.
const JoinFlagAbsolute uint8 = 1 << 0

// Join is the hub handshake a client writes on each path connection before
// the server's stream header.
type Join struct {
	StreamID string
	Token    Token
	// Flags modifies the subscription (JoinFlagAbsolute, ...). Unknown bits
	// travel unchanged so the codec round-trips future flags.
	Flags uint8
}

// ValidateStreamID reports whether id can travel in a join request's
// NUL-padded 16-byte field: at most MaxStreamID bytes, no interior NULs
// (they would make Read(Write(id)) != id and can smuggle lookalike ids),
// and non-empty — the empty id is indistinguishable from an all-padding
// field, so it cannot name a stream on the wire.
func ValidateStreamID(id string) error {
	if id == "" {
		return fmt.Errorf("core: empty stream id")
	}
	if len(id) > MaxStreamID {
		return fmt.Errorf("core: stream id %q longer than %d bytes", id, MaxStreamID)
	}
	if strings.ContainsRune(id, 0) {
		return fmt.Errorf("core: stream id contains NUL")
	}
	return nil
}

// WriteJoin writes the join request for one path connection.
func WriteJoin(w io.Writer, j Join) error {
	if len(j.StreamID) > MaxStreamID {
		return fmt.Errorf("core: stream id %q longer than %d bytes", j.StreamID, MaxStreamID)
	}
	if strings.ContainsRune(j.StreamID, 0) {
		return fmt.Errorf("core: stream id contains NUL")
	}
	var b [joinSize]byte
	copy(b[0:4], joinMagic[:])
	b[4] = 1 // version
	b[5] = j.Flags
	copy(b[8:8+MaxStreamID], j.StreamID)
	copy(b[24:40], j.Token[:])
	_, err := w.Write(b[:])
	return err
}

// ReadJoin reads and validates a join request.
func ReadJoin(r io.Reader) (Join, error) {
	var b [joinSize]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return Join{}, fmt.Errorf("core: join read: %w", err)
	}
	if [4]byte(b[0:4]) != joinMagic {
		return Join{}, fmt.Errorf("core: bad join magic %q", b[0:4])
	}
	if b[4] != 1 {
		return Join{}, fmt.Errorf("core: unsupported join version %d", b[4])
	}
	j := Join{StreamID: strings.TrimRight(string(b[8:8+MaxStreamID]), "\x00"), Flags: b[5]}
	if strings.ContainsRune(j.StreamID, 0) {
		// The id field is NUL-padded on the right; interior NULs would
		// make Read(Write(j)) != j and can smuggle lookalike ids.
		return Join{}, fmt.Errorf("core: join stream id contains NUL")
	}
	copy(j.Token[:], b[24:40])
	return j, nil
}
