package core

import (
	"math"
	"sort"
	"time"

	"dmpstream/internal/stats"
)

// Slacks returns each distinct packet's delivery slack — arrival time minus
// generation time — in seconds, one entry per packet the server generated.
// Packets that never arrived get +Inf. The slack of packet i is exactly the
// startup delay that would make it arrive on time.
func (t *Trace) Slacks() []float64 {
	seen := make(map[uint32]bool, len(t.Arrivals))
	out := make([]float64, 0, t.Expected)
	for _, a := range t.Arrivals {
		if seen[a.Pkt] {
			continue
		}
		seen[a.Pkt] = true
		out = append(out, float64(a.At-a.Gen)/1e9)
	}
	for int64(len(out)) < t.Expected {
		out = append(out, math.Inf(1))
	}
	return out
}

// Missing returns the packet numbers the server generated but the trace
// never received, in ascending order — the packets a path failure actually
// lost. Empty means the stream was conserved end to end.
func (t *Trace) Missing() []uint32 {
	seen := make(map[uint32]bool, len(t.Arrivals))
	for _, a := range t.Arrivals {
		seen[a.Pkt] = true
	}
	var out []uint32
	for pkt := uint32(0); int64(pkt) < t.Expected; pkt++ {
		if !seen[pkt] {
			out = append(out, pkt)
		}
	}
	return out
}

// RequiredDelay returns the smallest startup delay that would have kept the
// fraction of late packets at or below quality, computed exactly from the
// recorded trace (it is the (1-quality) slack quantile). ok is false when
// missing packets alone exceed the quality budget.
func (t *Trace) RequiredDelay(quality float64) (delay time.Duration, ok bool) {
	slacks := t.Slacks()
	if len(slacks) == 0 {
		return 0, true
	}
	sort.Float64s(slacks)
	// Allow floor(quality * n) late packets: the answer is the slack of the
	// last packet that must be on time.
	budget := int(quality * float64(len(slacks)))
	idx := len(slacks) - 1 - budget
	if idx < 0 {
		return 0, true
	}
	s := slacks[idx]
	if math.IsInf(s, 1) {
		return 0, false
	}
	if s < 0 {
		s = 0
	}
	return time.Duration(s * float64(time.Second)), true
}

// SlackQuantile returns the q-th quantile of delivery slack in seconds
// (missing packets count as +Inf).
func (t *Trace) SlackQuantile(q float64) float64 {
	return stats.Quantile(t.Slacks(), q)
}

// PathGoodput returns each path's goodput in packets per second over the
// trace, measured from first to last arrival on that path.
func (t *Trace) PathGoodput(numPaths int) []float64 {
	first := make([]int64, numPaths)
	last := make([]int64, numPaths)
	count := make([]int64, numPaths)
	for i := range first {
		first[i] = math.MaxInt64
	}
	for _, a := range t.Arrivals {
		if a.Path < 0 || a.Path >= numPaths {
			continue
		}
		if a.At < first[a.Path] {
			first[a.Path] = a.At
		}
		if a.At > last[a.Path] {
			last[a.Path] = a.At
		}
		count[a.Path]++
	}
	out := make([]float64, numPaths)
	for i := range out {
		if count[i] >= 2 && last[i] > first[i] {
			out[i] = float64(count[i]-1) / (float64(last[i]-first[i]) / 1e9)
		}
	}
	return out
}

// GoodputSeries buckets arrivals into fixed windows and returns, per path,
// the packets-per-second series — the view dmpplay prints so a user can see
// load shifting between paths over time.
func (t *Trace) GoodputSeries(numPaths int, bucket time.Duration) [][]float64 {
	if len(t.Arrivals) == 0 || bucket <= 0 {
		return make([][]float64, numPaths)
	}
	start := t.Arrivals[0].At
	end := t.Arrivals[0].At
	for _, a := range t.Arrivals {
		if a.At < start {
			start = a.At
		}
		if a.At > end {
			end = a.At
		}
	}
	nb := int((end-start)/int64(bucket)) + 1
	out := make([][]float64, numPaths)
	for i := range out {
		out[i] = make([]float64, nb)
	}
	for _, a := range t.Arrivals {
		if a.Path < 0 || a.Path >= numPaths {
			continue
		}
		b := int((a.At - start) / int64(bucket))
		out[a.Path][b]++
	}
	perSec := bucket.Seconds()
	for i := range out {
		for j := range out[i] {
			out[i][j] /= perSec
		}
	}
	return out
}
