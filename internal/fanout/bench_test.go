package fanout

import (
	"encoding/json"
	"strings"
	"testing"
)

// compareOutput is a plausible two-run compare document for gate tests.
func compareOutput() Output {
	o := Output{
		Schema: SchemaV2, Tier: "quick", GoMaxProcs: 8,
		Runs: []Result{
			{Label: "single-lock", Shards: 1, Subscribers: 10000,
				FramesPerSec: 100000, AllocsPerFrame: 0.006},
			{Label: "sharded", Shards: 8, Subscribers: 10000,
				FramesPerSec: 133000, AllocsPerFrame: 0.0012},
		},
	}
	o.Finalize()
	return o
}

func TestFinalizeDerivedFields(t *testing.T) {
	o := compareOutput()
	if want := 1.33; o.SpeedupFPS < want-0.001 || o.SpeedupFPS > want+0.001 {
		t.Errorf("SpeedupFPS = %v, want ~%v", o.SpeedupFPS, want)
	}
	if o.AllocsPerFrame != 0.0012 {
		t.Errorf("AllocsPerFrame = %v, want the sharded run's 0.0012", o.AllocsPerFrame)
	}
}

// TestGateAllocRegression is the acceptance check for the alloc gate: a
// seeded allocation regression must fail against a clean baseline, and
// the unregressed document must pass.
func TestGateAllocRegression(t *testing.T) {
	base := compareOutput()

	cur := compareOutput()
	if err := Gate(cur, base); err != nil {
		t.Fatalf("unregressed run failed the gate: %v", err)
	}

	cur.AllocsPerFrame = 0.5 // e.g. a per-frame closure crept back into pop
	err := Gate(cur, base)
	if err == nil {
		t.Fatal("seeded alloc regression passed the gate")
	}
	if !strings.Contains(err.Error(), "allocs/frame") {
		t.Fatalf("gate failed for the wrong reason: %v", err)
	}
}

// TestGateAllocFloor: a baseline at (near) zero must tolerate measurement
// noise below the absolute floor but nothing above it.
func TestGateAllocFloor(t *testing.T) {
	base := compareOutput()
	base.AllocsPerFrame = 0

	cur := compareOutput()
	cur.AllocsPerFrame = 0.04
	if err := Gate(cur, base); err != nil {
		t.Fatalf("sub-floor noise failed the gate: %v", err)
	}
	cur.AllocsPerFrame = 0.06
	if Gate(cur, base) == nil {
		t.Fatal("above-floor regression passed against a zero baseline")
	}
}

func TestGateSpeedupRegression(t *testing.T) {
	base := compareOutput()
	cur := compareOutput()
	cur.SpeedupFPS = base.SpeedupFPS * 0.8
	err := Gate(cur, base)
	if err == nil || !strings.Contains(err.Error(), "speedup ratio") {
		t.Fatalf("20%% ratio drop not caught: %v", err)
	}
}

// TestParseBaselineV1Migration: a committed v1 baseline keeps gating
// after the schema bump — the top-level allocs_per_frame is lifted from
// the final run.
func TestParseBaselineV1Migration(t *testing.T) {
	v1 := compareOutput()
	v1.Schema = SchemaV1
	v1.AllocsPerFrame = 0 // v1 had no top-level field
	raw, err := json.Marshal(v1)
	if err != nil {
		t.Fatal(err)
	}
	base, err := ParseBaseline(raw)
	if err != nil {
		t.Fatal(err)
	}
	if base.Schema != SchemaV2 {
		t.Errorf("migrated schema = %q, want %q", base.Schema, SchemaV2)
	}
	if base.AllocsPerFrame != 0.0012 {
		t.Errorf("migrated AllocsPerFrame = %v, want 0.0012 (final run)", base.AllocsPerFrame)
	}

	if _, err := ParseBaseline([]byte(`{"schema":"dmpstream/bench-fanout/v9"}`)); err == nil {
		t.Error("unknown schema accepted")
	}
}
