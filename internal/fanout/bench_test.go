package fanout

import (
	"encoding/json"
	"strings"
	"testing"

	"dmpstream/internal/core"
)

// compareOutput is a plausible two-run compare document for gate tests:
// the copy path first, zero-copy last, as cmd/dmpfanout emits.
func compareOutput() Output {
	o := Output{
		Schema: SchemaV3, Tier: "quick", GoMaxProcs: 8,
		Runs: []Result{
			{Label: "copy", Delivery: "copy", Shards: 8, Subscribers: 10000,
				FramesPerSec: 100000, AllocsPerFrame: 0.006,
				BytesCopiedPerFrame: float64(core.FrameHeaderSize + 256)},
			{Label: "zero-copy", Delivery: "zero-copy", Shards: 8, Subscribers: 10000,
				FramesPerSec: 150000, AllocsPerFrame: 0.0012,
				BytesCopiedPerFrame: float64(core.FrameHeaderSize), WritevFramesPerBatch: 6.5},
		},
	}
	o.Finalize()
	return o
}

func TestFinalizeDerivedFields(t *testing.T) {
	o := compareOutput()
	if want := 1.5; o.SpeedupFPS < want-0.001 || o.SpeedupFPS > want+0.001 {
		t.Errorf("SpeedupFPS = %v, want ~%v", o.SpeedupFPS, want)
	}
	if o.AllocsPerFrame != 0.0012 {
		t.Errorf("AllocsPerFrame = %v, want the zero-copy run's 0.0012", o.AllocsPerFrame)
	}
	if o.BytesCopiedPerFrame != float64(core.FrameHeaderSize) {
		t.Errorf("BytesCopiedPerFrame = %v, want the zero-copy run's %d", o.BytesCopiedPerFrame, core.FrameHeaderSize)
	}
}

// TestGateAllocRegression is the acceptance check for the alloc gate: a
// seeded allocation regression must fail against a clean baseline, and
// the unregressed document must pass.
func TestGateAllocRegression(t *testing.T) {
	base := compareOutput()

	cur := compareOutput()
	if err := Gate(cur, base); err != nil {
		t.Fatalf("unregressed run failed the gate: %v", err)
	}

	cur.AllocsPerFrame = 0.5 // e.g. a per-frame closure crept back into pop
	err := Gate(cur, base)
	if err == nil {
		t.Fatal("seeded alloc regression passed the gate")
	}
	if !strings.Contains(err.Error(), "allocs/frame") {
		t.Fatalf("gate failed for the wrong reason: %v", err)
	}
}

// TestGateAllocFloor: a baseline at (near) zero must tolerate measurement
// noise below the absolute floor but nothing above it.
func TestGateAllocFloor(t *testing.T) {
	base := compareOutput()
	base.AllocsPerFrame = 0

	cur := compareOutput()
	cur.AllocsPerFrame = 0.04
	if err := Gate(cur, base); err != nil {
		t.Fatalf("sub-floor noise failed the gate: %v", err)
	}
	cur.AllocsPerFrame = 0.06
	if Gate(cur, base) == nil {
		t.Fatal("above-floor regression passed against a zero baseline")
	}
}

func TestGateSpeedupRegression(t *testing.T) {
	base := compareOutput()
	cur := compareOutput()
	cur.SpeedupFPS = base.SpeedupFPS * 0.8
	err := Gate(cur, base)
	if err == nil || !strings.Contains(err.Error(), "speedup ratio") {
		t.Fatalf("20%% ratio drop not caught: %v", err)
	}
}

// TestGateSpeedupFloor: on a multi-core runner the zero-copy path must
// clear an absolute 1.3x over the copy path, no matter how low the
// committed baseline drifted.
func TestGateSpeedupFloor(t *testing.T) {
	base := compareOutput()
	base.SpeedupFPS = 1.32 // a weak but passing baseline
	cur := compareOutput()
	cur.SpeedupFPS = 1.25 // within 90% of baseline, below the floor
	err := Gate(cur, base)
	if err == nil || !strings.Contains(err.Error(), "floor") {
		t.Fatalf("sub-1.3x speedup not caught: %v", err)
	}

	// On a single-core runner the pair contends for one core and the
	// ratio is noise; the floor must not apply.
	cur.GoMaxProcs = 1
	if err := Gate(cur, base); err != nil {
		t.Fatalf("ratio gate applied on a single-core runner: %v", err)
	}
}

// TestGateBytesCopied: the zero-copy delivery path leaking a payload
// memcpy back in (bytes/frame above the patched header) must fail the
// gate regardless of the baseline — it is an absolute property of the
// code, like allocs/frame.
func TestGateBytesCopied(t *testing.T) {
	base := compareOutput()
	cur := compareOutput()
	cur.BytesCopiedPerFrame = float64(core.FrameHeaderSize + 256) // payload copy crept back
	err := Gate(cur, base)
	if err == nil || !strings.Contains(err.Error(), "memcpy") {
		t.Fatalf("payload-copy regression not caught: %v", err)
	}
}

// TestParseBaselineMigration: committed v1/v2 baselines keep gating after
// the schema bump. v1's top-level allocs_per_frame is lifted from the
// final run; v2's speedup_fps compared shard counts, not delivery paths,
// so migration zeroes it (disabling the ratio gate until a v3 baseline
// is recorded) while the alloc gate keeps working.
func TestParseBaselineMigration(t *testing.T) {
	v2 := compareOutput()
	v2.Schema = SchemaV2
	v2.SpeedupFPS = 1.33 // sharded/single-lock — incomparable with v3's ratio
	raw, err := json.Marshal(v2)
	if err != nil {
		t.Fatal(err)
	}
	base, err := ParseBaseline(raw)
	if err != nil {
		t.Fatal(err)
	}
	if base.Schema != SchemaV3 {
		t.Errorf("migrated schema = %q, want %q", base.Schema, SchemaV3)
	}
	if base.SpeedupFPS != 0 {
		t.Errorf("migrated v2 SpeedupFPS = %v, want 0 (semantics changed)", base.SpeedupFPS)
	}
	if base.AllocsPerFrame != 0.0012 {
		t.Errorf("migrated AllocsPerFrame = %v, want 0.0012", base.AllocsPerFrame)
	}

	v1 := compareOutput()
	v1.Schema = SchemaV1
	v1.AllocsPerFrame = 0 // v1 had no top-level field
	v1.SpeedupFPS = 1.33
	raw, err = json.Marshal(v1)
	if err != nil {
		t.Fatal(err)
	}
	base, err = ParseBaseline(raw)
	if err != nil {
		t.Fatal(err)
	}
	if base.Schema != SchemaV3 || base.SpeedupFPS != 0 {
		t.Errorf("migrated v1 = %q speedup %v, want %q with 0 speedup", base.Schema, base.SpeedupFPS, SchemaV3)
	}
	if base.AllocsPerFrame != 0.0012 {
		t.Errorf("migrated v1 AllocsPerFrame = %v, want 0.0012 (final run)", base.AllocsPerFrame)
	}

	if _, err := ParseBaseline([]byte(`{"schema":"dmpstream/bench-fanout/v9"}`)); err == nil {
		t.Error("unknown schema accepted")
	}
}
