package fanout

import (
	"encoding/json"
	"fmt"
	"os"

	"dmpstream/internal/core"
)

// Schema versions of the BENCH_fanout.json document. Bump only with an
// accompanying EXPERIMENTS.md note; consumers (the CI gate, dashboards)
// key on it.
//
// v2 added the top-level allocs_per_frame field — the steady-state
// allocation count per delivered frame of the final run — promoting the
// per-run measurement to a first-class gated metric alongside the
// throughput ratio.
//
// v3 repurposes the compare pair: runs[0] is the copy delivery path and
// the final run is zero-copy, both at the same shard count, so
// speedup_fps now means zero-copy-over-copy (v2 meant
// sharded-over-single-lock; migration zeroes it rather than compare
// incomparable ratios). It also adds bytes_copied_per_frame — the
// hub-side payload memcpy cost per delivered frame, gated to the patched
// header size on the zero-copy path — and writev_frames_per_batch.
const (
	SchemaV1 = "dmpstream/bench-fanout/v1"
	SchemaV2 = "dmpstream/bench-fanout/v2"
	SchemaV3 = "dmpstream/bench-fanout/v3"
)

// Output is the BENCH_fanout.json document. Field names are
// schema-stable: add, never rename.
type Output struct {
	Schema     string   `json:"schema"`
	Tier       string   `json:"tier"`
	GoMaxProcs int      `json:"go_max_procs"`
	Runs       []Result `json:"runs"`
	// SpeedupFPS is the final run's delivered-frames/sec over the first
	// run's; 0 when the compare mode was off (or the baseline predates the
	// v3 semantics change). Since v3 the pair is zero-copy over copy.
	SpeedupFPS float64 `json:"speedup_fps"`
	// AllocsPerFrame is the final run's steady-state allocations per
	// delivered frame. Unlike raw frames/sec it is a property of the
	// code, not the runner, so the gate applies it across machines.
	AllocsPerFrame float64 `json:"allocs_per_frame"`
	// BytesCopiedPerFrame is the final run's hub-side memcpy cost per
	// delivered frame — core.FrameHeaderSize exactly when the zero-copy
	// path really is zero-copy. Machine-independent, gated absolutely.
	BytesCopiedPerFrame float64 `json:"bytes_copied_per_frame"`
}

// Finalize fills the derived fields from Runs: the final/first throughput
// ratio when a compare pair is present, and the gated per-frame figures
// from the final run.
func (o *Output) Finalize() {
	if len(o.Runs) == 0 {
		return
	}
	last := o.Runs[len(o.Runs)-1]
	o.AllocsPerFrame = last.AllocsPerFrame
	o.BytesCopiedPerFrame = last.BytesCopiedPerFrame
	if len(o.Runs) >= 2 && o.Runs[0].FramesPerSec > 0 {
		o.SpeedupFPS = last.FramesPerSec / o.Runs[0].FramesPerSec
	}
}

// ParseBaseline decodes a baseline document, accepting the current v3
// schema and migrating older ones in place. v1 carried allocs_per_frame
// only per-run, so the top-level figure is lifted from the final run.
// v2's speedup_fps compared shard counts, not delivery paths — a ratio
// the v3 gate must not be held to — so migration zeroes it, which
// disables the ratio gate until a v3 baseline is recorded.
func ParseBaseline(raw []byte) (Output, error) {
	var base Output
	if err := json.Unmarshal(raw, &base); err != nil {
		return Output{}, fmt.Errorf("baseline: %w", err)
	}
	switch base.Schema {
	case SchemaV3:
	case SchemaV1, SchemaV2:
		if base.Schema == SchemaV1 && len(base.Runs) > 0 {
			base.AllocsPerFrame = base.Runs[len(base.Runs)-1].AllocsPerFrame
		}
		base.Schema = SchemaV3
		base.SpeedupFPS = 0
	default:
		return Output{}, fmt.Errorf("baseline schema %q, want %q (or migratable %q/%q)",
			base.Schema, SchemaV3, SchemaV1, SchemaV2)
	}
	return base, nil
}

// LoadBaseline reads and decodes (migrating if necessary) a baseline
// file.
func LoadBaseline(path string) (Output, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Output{}, fmt.Errorf("baseline: %w", err)
	}
	out, err := ParseBaseline(raw)
	if err != nil {
		return Output{}, fmt.Errorf("baseline %s: %w", path, err)
	}
	return out, nil
}

// Gate tolerances. Throughput gates allow a 10% drop before failing;
// the alloc gate allows 10% plus an absolute floor of 0.05 allocs/frame
// so a baseline near zero (the steady state after the hotalloc work)
// does not fail on measurement noise from setup-phase stragglers. The
// bytes-copied gate allows one byte of rounding slack over the patched
// header; minZeroCopySpeedup is the absolute floor the zero-copy path
// must clear over the copy path wherever sharding actually runs on
// multiple cores.
const (
	gateTolerance      = 0.9
	allocSlack         = 1.1
	allocFloor         = 0.05
	bytesCopiedSlack   = 1.0
	minZeroCopySpeedup = 1.3
)

// Gate compares a fresh run against the committed baseline. The primary
// gate is the zero-copy/copy throughput ratio, which is machine-
// normalized: a >10% drop fails wherever the baseline was recorded, and
// on multi-core runners the ratio must also clear the absolute
// minZeroCopySpeedup floor. Absolute delivered throughput is gated only
// when the runner shape (GOMAXPROCS) and run semantics match the
// baseline's, since raw frames/sec across different machines measures
// the machine, not the code. Allocations and payload bytes memcpy'd per
// delivered frame are gated unconditionally — neither cares what machine
// it runs on.
func Gate(cur, base Output) error {
	if base.SpeedupFPS > 0 && cur.SpeedupFPS > 0 && base.GoMaxProcs > 1 && cur.GoMaxProcs > 1 {
		// On a single-core runner the compare pair contends for the same
		// core and the "ratio" is run-to-run noise, so the ratio gates only
		// apply when both sides ran on multiple cores.
		if cur.SpeedupFPS < gateTolerance*base.SpeedupFPS {
			return fmt.Errorf("speedup ratio %.3f fell below 90%% of baseline %.3f",
				cur.SpeedupFPS, base.SpeedupFPS)
		}
		if cur.SpeedupFPS < minZeroCopySpeedup {
			return fmt.Errorf("zero-copy/copy speedup %.3f below the %.1fx floor",
				cur.SpeedupFPS, minZeroCopySpeedup)
		}
	}
	if cur.GoMaxProcs == base.GoMaxProcs && cur.Tier == base.Tier &&
		len(cur.Runs) > 0 && len(base.Runs) > 0 &&
		cur.Runs[0].Subscribers == base.Runs[0].Subscribers &&
		cur.Runs[len(cur.Runs)-1].Delivery == base.Runs[len(base.Runs)-1].Delivery {
		curBest := cur.Runs[len(cur.Runs)-1].FramesPerSec
		baseBest := base.Runs[len(base.Runs)-1].FramesPerSec
		if baseBest > 0 && curBest < gateTolerance*baseBest {
			return fmt.Errorf("delivered %.0f frames/s fell below 90%% of baseline %.0f (same %d-core shape)",
				curBest, baseBest, base.GoMaxProcs)
		}
	}
	if limit := base.AllocsPerFrame*allocSlack + allocFloor; cur.AllocsPerFrame > limit {
		return fmt.Errorf("allocs/frame %.4f exceeds baseline %.4f (limit %.4f = +10%% and +%.2f slack)",
			cur.AllocsPerFrame, base.AllocsPerFrame, limit, allocFloor)
	}
	if len(cur.Runs) > 0 && cur.Runs[len(cur.Runs)-1].Delivery == "zero-copy" {
		if limit := float64(core.FrameHeaderSize) + bytesCopiedSlack; cur.BytesCopiedPerFrame > limit {
			return fmt.Errorf("zero-copy path memcpys %.2f bytes/frame, want the %d-byte patched header only (limit %.1f)",
				cur.BytesCopiedPerFrame, core.FrameHeaderSize, limit)
		}
	}
	return nil
}
