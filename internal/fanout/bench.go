package fanout

import (
	"encoding/json"
	"fmt"
	"os"
)

// Schema versions of the BENCH_fanout.json document. Bump only with an
// accompanying EXPERIMENTS.md note; consumers (the CI gate, dashboards)
// key on it.
//
// v2 adds the top-level allocs_per_frame field — the steady-state
// allocation count per delivered frame of the final (sharded) run —
// promoting the per-run measurement to a first-class gated metric
// alongside the throughput ratio.
const (
	SchemaV1 = "dmpstream/bench-fanout/v1"
	SchemaV2 = "dmpstream/bench-fanout/v2"
)

// Output is the BENCH_fanout.json document. Field names are
// schema-stable: add, never rename.
type Output struct {
	Schema     string   `json:"schema"`
	Tier       string   `json:"tier"`
	GoMaxProcs int      `json:"go_max_procs"`
	Runs       []Result `json:"runs"`
	// SpeedupFPS is sharded delivered-frames/sec over single-lock
	// delivered-frames/sec; 0 when the compare mode was off.
	SpeedupFPS float64 `json:"speedup_fps"`
	// AllocsPerFrame is the final run's steady-state allocations per
	// delivered frame. Unlike raw frames/sec it is a property of the
	// code, not the runner, so the gate applies it across machines.
	AllocsPerFrame float64 `json:"allocs_per_frame"`
}

// Finalize fills the derived fields from Runs: the sharded/single-lock
// throughput ratio when a compare pair is present, and the gated
// allocs-per-frame figure from the final run.
func (o *Output) Finalize() {
	if len(o.Runs) == 0 {
		return
	}
	o.AllocsPerFrame = o.Runs[len(o.Runs)-1].AllocsPerFrame
	if len(o.Runs) >= 2 && o.Runs[0].FramesPerSec > 0 {
		o.SpeedupFPS = o.Runs[len(o.Runs)-1].FramesPerSec / o.Runs[0].FramesPerSec
	}
}

// ParseBaseline decodes a baseline document, accepting the current v2
// schema and migrating v1 in place: v1 carried allocs_per_frame only
// per-run, so the top-level figure is lifted from the final run, exactly
// as Finalize derives it for fresh output.
func ParseBaseline(raw []byte) (Output, error) {
	var base Output
	if err := json.Unmarshal(raw, &base); err != nil {
		return Output{}, fmt.Errorf("baseline: %w", err)
	}
	switch base.Schema {
	case SchemaV2:
	case SchemaV1:
		base.Schema = SchemaV2
		if len(base.Runs) > 0 {
			base.AllocsPerFrame = base.Runs[len(base.Runs)-1].AllocsPerFrame
		}
	default:
		return Output{}, fmt.Errorf("baseline schema %q, want %q (or migratable %q)",
			base.Schema, SchemaV2, SchemaV1)
	}
	return base, nil
}

// LoadBaseline reads and decodes (migrating if necessary) a baseline
// file.
func LoadBaseline(path string) (Output, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Output{}, fmt.Errorf("baseline: %w", err)
	}
	out, err := ParseBaseline(raw)
	if err != nil {
		return Output{}, fmt.Errorf("baseline %s: %w", path, err)
	}
	return out, nil
}

// Gate tolerances. Throughput gates allow a 10% drop before failing;
// the alloc gate allows 10% plus an absolute floor of 0.05 allocs/frame
// so a baseline near zero (the steady state after the hotalloc work)
// does not fail on measurement noise from setup-phase stragglers.
const (
	gateTolerance = 0.9
	allocSlack    = 1.1
	allocFloor    = 0.05
)

// Gate compares a fresh run against the committed baseline. The primary
// gate is the sharded/single-lock throughput ratio, which is
// machine-normalized: a >10% drop fails wherever the baseline was
// recorded. Absolute delivered throughput is gated only when the runner
// shape (GOMAXPROCS) matches the baseline's, since raw frames/sec across
// different machines measures the machine, not the code. Allocations per
// delivered frame are gated unconditionally — the allocator does not care
// what machine it runs on.
func Gate(cur, base Output) error {
	if base.SpeedupFPS > 0 && cur.SpeedupFPS > 0 && base.GoMaxProcs > 1 && cur.GoMaxProcs > 1 {
		// On a single-core runner both compare runs collapse to shards=1 and
		// the "ratio" is run-to-run noise, so the ratio gate only applies when
		// both sides actually exercised sharding on multiple cores.
		if cur.SpeedupFPS < gateTolerance*base.SpeedupFPS {
			return fmt.Errorf("speedup ratio %.3f fell below 90%% of baseline %.3f",
				cur.SpeedupFPS, base.SpeedupFPS)
		}
	}
	if cur.GoMaxProcs == base.GoMaxProcs && cur.Tier == base.Tier &&
		len(cur.Runs) > 0 && len(base.Runs) > 0 &&
		cur.Runs[0].Subscribers == base.Runs[0].Subscribers {
		curBest := cur.Runs[len(cur.Runs)-1].FramesPerSec
		baseBest := base.Runs[len(base.Runs)-1].FramesPerSec
		if baseBest > 0 && curBest < gateTolerance*baseBest {
			return fmt.Errorf("delivered %.0f frames/s fell below 90%% of baseline %.0f (same %d-core shape)",
				curBest, baseBest, base.GoMaxProcs)
		}
	}
	if limit := base.AllocsPerFrame*allocSlack + allocFloor; cur.AllocsPerFrame > limit {
		return fmt.Errorf("allocs/frame %.4f exceeds baseline %.4f (limit %.4f = +10%% and +%.2f slack)",
			cur.AllocsPerFrame, base.AllocsPerFrame, limit, allocFloor)
	}
	return nil
}
