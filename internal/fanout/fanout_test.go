package fanout

import (
	"testing"
	"time"

	"dmpstream/internal/core"
	"dmpstream/internal/hub"
)

// TestFanoutSmall is a miniature benchmark run asserting the harness's
// mechanics, not performance: subscribers attach, frames flow, the
// histogram sees real delays, and the metrics are internally consistent.
// The real benchmark tiers run via cmd/dmpfanout in CI.
func TestFanoutSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("fanout harness skipped in -short mode")
	}
	res, err := Run(Config{
		Subscribers: 200,
		Streams:     4,
		Shards:      2,
		Mu:          300,
		Payload:     64,
		Duration:    2 * time.Second,
		Churn:       true,
		Seed:        1,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesDelivered == 0 || res.FramesPerSec <= 0 {
		t.Fatalf("no frames delivered: %+v", res)
	}
	if res.P50DelayMs <= 0 || res.P99DelayMs < res.P50DelayMs {
		t.Fatalf("implausible delay percentiles: p50=%v p99=%v", res.P50DelayMs, res.P99DelayMs)
	}
	if res.LateFrac < 0 || res.LateFrac > 1 || res.DroppedFrac < 0 || res.DroppedFrac > 1 {
		t.Fatalf("fractions out of range: %+v", res)
	}
	if res.Label != "zero-copy" || res.Delivery != "zero-copy" || res.Shards != 2 || res.Subscribers != 200 {
		t.Fatalf("config echo wrong: %+v", res)
	}
	if res.GeneratedPerSec <= 0 {
		t.Fatalf("generators idle: %+v", res)
	}
	// The zero-copy pipeline must report header-patch-only memcpy cost and
	// a live writev batch average — zeros here mean the instrumentation
	// (or the vectored path itself) silently fell back to copying.
	if res.BytesCopiedPerFrame <= 0 || res.BytesCopiedPerFrame > float64(core.FrameHeaderSize)+1 {
		t.Fatalf("zero-copy run memcpys %.2f bytes/frame, want ~%d (header patch only)",
			res.BytesCopiedPerFrame, core.FrameHeaderSize)
	}
	if res.WritevFramesPerBatch < 1 {
		t.Fatalf("writev batch average %.2f < 1: batching instrumentation dead", res.WritevFramesPerBatch)
	}
}

// TestFanoutCopyDelivery runs the same miniature workload over the
// historical copy path, which must report full-frame memcpy cost — the
// contrast that makes the compare tier's ratio meaningful.
func TestFanoutCopyDelivery(t *testing.T) {
	if testing.Short() {
		t.Skip("fanout harness skipped in -short mode")
	}
	res, err := Run(Config{
		Subscribers: 100,
		Streams:     2,
		Shards:      2,
		Delivery:    hub.DeliveryCopy,
		Mu:          300,
		Payload:     64,
		Duration:    time.Second,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Label != "copy" || res.Delivery != "copy" {
		t.Fatalf("config echo wrong: %+v", res)
	}
	if res.FramesDelivered == 0 {
		t.Fatalf("no frames delivered: %+v", res)
	}
	frameSize := float64(core.FrameHeaderSize + 64)
	if res.BytesCopiedPerFrame != frameSize {
		t.Fatalf("copy run memcpys %.2f bytes/frame, want %0.f (full frame)", res.BytesCopiedPerFrame, frameSize)
	}
	if res.WritevFramesPerBatch != 0 {
		t.Fatalf("copy run reports writev batching %.2f, want 0", res.WritevFramesPerBatch)
	}
}

// TestHistQuantiles pins the histogram math the percentile metrics depend
// on: recorded delays land in order-preserving buckets and quantiles
// bracket the inputs.
func TestHistQuantiles(t *testing.T) {
	var h hist
	for i := 1; i <= 1000; i++ {
		h.record(time.Duration(i) * time.Millisecond)
	}
	p50 := h.quantile(0.50)
	p99 := h.quantile(0.99)
	if p50 < 300*time.Millisecond || p50 > 800*time.Millisecond {
		t.Fatalf("p50 = %v, want ~500ms", p50)
	}
	if p99 < p50 || p99 > 1500*time.Millisecond {
		t.Fatalf("p99 = %v, want ~990ms >= p50", p99)
	}
	if f := h.lateFrac(500 * time.Millisecond); f < 0.3 || f > 0.7 {
		t.Fatalf("lateFrac(500ms) = %v, want ~0.5", f)
	}
	if f := h.lateFrac(10 * time.Second); f != 0 {
		t.Fatalf("lateFrac(10s) = %v, want 0", f)
	}
}
