package fanout

import (
	"io"
	"net"
	"sync"
	"time"
)

// pipeBufSize is the per-direction buffer of the benchmark's in-process
// connections. Small on purpose: a few frames of slack models a kernel
// socket buffer (senders see backpressure, not an infinite sink) while
// bounding how many stale pre-start frames a parked subscriber can queue.
const pipeBufSize = 8192

// bpipe is one direction of a buffered in-process connection: a bounded
// byte queue with blocking reads and writes. net.Pipe is fully
// synchronous — every Write rendezvouses with a Read — which serializes
// the hub's vectored writes back into lockstep and makes batch size
// invisible to the benchmark. bpipe instead behaves like a kernel socket
// buffer: a vectored write lands under one lock hold (writev), writers
// block only when the buffer is full, and a closed peer fails the writer
// instead of deadlocking it.
type bpipe struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []byte // fixed-capacity ring, guarded by mu
	r, n   int    // guarded by mu; read offset and bytes buffered
	closed bool   // guarded by mu
}

func newBpipe(size int) *bpipe {
	p := &bpipe{buf: make([]byte, size)}
	p.cond = sync.NewCond(&p.mu)
	return p
}

func (p *bpipe) close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

// writeLocked copies as much of b as fits right now, advancing the ring.
func (p *bpipe) writeLocked(b []byte) int {
	wrote := 0
	for len(b) > 0 && p.n < len(p.buf) {
		w := (p.r + p.n) % len(p.buf)
		chunk := len(p.buf) - w
		if free := len(p.buf) - p.n; chunk > free {
			chunk = free
		}
		m := copy(p.buf[w:w+chunk], b)
		b = b[m:]
		p.n += m
		wrote += m
	}
	return wrote
}

func (p *bpipe) write(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := 0
	for {
		if p.closed {
			return total, io.ErrClosedPipe
		}
		m := p.writeLocked(b)
		b = b[m:]
		total += m
		if m > 0 {
			p.cond.Broadcast()
		}
		if len(b) == 0 {
			return total, nil
		}
		p.cond.Wait()
	}
}

// writev lands a whole vector under one lock acquisition — the in-process
// analog of a writev syscall, so the benchmark's syscall-count economics
// track the hub's batch size instead of flattening every batch back into
// per-buffer rendezvous.
func (p *bpipe) writev(bufs net.Buffers) (int64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var total int64
	for _, b := range bufs {
		for len(b) > 0 {
			if p.closed {
				return total, io.ErrClosedPipe
			}
			m := p.writeLocked(b)
			b = b[m:]
			total += int64(m)
			if m > 0 {
				p.cond.Broadcast()
			} else {
				p.cond.Wait()
			}
		}
	}
	return total, nil
}

func (p *bpipe) read(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.n == 0 {
		if p.closed {
			return 0, io.EOF
		}
		p.cond.Wait()
	}
	total := 0
	for len(b) > 0 && p.n > 0 {
		chunk := len(p.buf) - p.r
		if chunk > p.n {
			chunk = p.n
		}
		m := copy(b, p.buf[p.r:p.r+chunk])
		b = b[m:]
		p.r = (p.r + m) % len(p.buf)
		p.n -= m
		total += m
	}
	p.cond.Broadcast()
	return total, nil
}

// pipeEnd is one end of a buffered duplex pipe. It satisfies net.Conn
// (deadlines are accepted and ignored — the benchmark never arms them)
// and hub.BuffersWriter, so the hub's zero-copy batch path reaches it as
// a single vectored write.
type pipeEnd struct {
	rd, wr *bpipe
}

func (e *pipeEnd) Read(b []byte) (int, error)  { return e.rd.read(b) }
func (e *pipeEnd) Write(b []byte) (int, error) { return e.wr.write(b) }

// WriteBuffers implements hub.BuffersWriter.
func (e *pipeEnd) WriteBuffers(bufs net.Buffers) (int64, error) { return e.wr.writev(bufs) }

func (e *pipeEnd) Close() error {
	e.rd.close()
	e.wr.close()
	return nil
}

type pipeAddr struct{}

func (pipeAddr) Network() string { return "bufpipe" }
func (pipeAddr) String() string  { return "bufpipe" }

func (e *pipeEnd) LocalAddr() net.Addr                { return pipeAddr{} }
func (e *pipeEnd) RemoteAddr() net.Addr               { return pipeAddr{} }
func (e *pipeEnd) SetDeadline(time.Time) error        { return nil }
func (e *pipeEnd) SetReadDeadline(time.Time) error    { return nil }
func (e *pipeEnd) SetWriteDeadline(t time.Time) error { return nil }

// newBufferedPipe returns the two ends of a buffered duplex in-process
// connection with pipeBufSize bytes of slack per direction.
func newBufferedPipe() (server, client net.Conn) {
	a, b := newBpipe(pipeBufSize), newBpipe(pipeBufSize)
	return &pipeEnd{rd: a, wr: b}, &pipeEnd{rd: b, wr: a}
}
