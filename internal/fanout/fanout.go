// Package fanout is the massive-fanout benchmark harness: it stands up a
// stream registry serving several live streams, attaches tens of thousands
// of in-process subscribers over buffered pipes, and measures what the
// fan-out path actually delivers — frames per second, frame delay
// percentiles, late fraction, held bytes, allocations and payload bytes
// memcpy'd per frame.
//
// The harness exists to keep the delivery path honest. Each run pins the
// hub's delivery strategy, so a copy run (hub.DeliveryCopy, the historical
// render-per-subscriber path) and a zero-copy run (pinned shared buffers +
// vectored batch writes) measure the same workload on the same machine;
// the ratio between them is the zero-copy architecture's speedup,
// independent of how fast the machine itself is. (Schema v2 compared
// Shards=1 against Shards=GOMAXPROCS the same way; the shard count is now
// pinned per run via Config.Shards instead.) cmd/dmpfanout emits both runs
// plus the ratio as schema-stable JSON (BENCH_fanout.json) that CI uploads
// and gates on.
//
// The generator is run deliberately hot (the default µ outpaces what the
// delivery path can drain at high subscriber counts), so delivered
// frames/sec measures fan-out capacity, not the configured rate: a run
// that keeps up is rate-bound and both architectures report the same
// number. DropOldest absorbs the overload exactly as in production.
//
// Churn (optional, the full tier) replays the same seeded multi-stream
// churn schedule the chaos harness uses — subscribers joining, reading and
// hanging up across all streams — so steady-state numbers don't hide
// admission-path contention.
package fanout

import (
	"fmt"
	"io"
	"math/bits"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dmpstream/internal/chaos"
	"dmpstream/internal/core"
	"dmpstream/internal/hub"
	"dmpstream/internal/registry"
)

// histBuckets is the per-reader delay histogram size: 64 powers of two of
// microseconds, each split into 4 sub-buckets (~25% resolution), enough to
// place p50/p99 anywhere between 1µs and hours.
const histBuckets = 64 * 4

// hist is one reader's frame-delay histogram. Readers own their histogram
// exclusively until the run's final merge, so recording takes no locks and
// no atomics.
type hist struct {
	n       int64
	buckets [histBuckets]int64
}

// bucketOf maps a delay to its histogram bucket.
func bucketOf(d time.Duration) int {
	us := uint64(d / time.Microsecond)
	if us == 0 {
		return 0
	}
	exp := bits.Len64(us) - 1
	sub := 0
	if exp >= 2 {
		sub = int((us >> (uint(exp) - 2)) & 3)
	}
	b := exp*4 + sub
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// bucketMid returns a bucket's representative delay.
func bucketMid(b int) time.Duration {
	exp := b / 4
	sub := b % 4
	base := uint64(1) << uint(exp)
	us := base + (base/4)*uint64(sub) + base/8
	return time.Duration(us) * time.Microsecond
}

func (h *hist) record(d time.Duration) {
	h.buckets[bucketOf(d)]++
	h.n++
}

// merge folds o into h.
func (h *hist) merge(o *hist) {
	h.n += o.n
	for i, c := range o.buckets {
		h.buckets[i] += c
	}
}

// quantile returns the q-quantile (0..1) of the merged histogram.
func (h *hist) quantile(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	target := int64(q * float64(h.n))
	var seen int64
	for i, c := range h.buckets {
		seen += c
		if seen > target {
			return bucketMid(i)
		}
	}
	return bucketMid(histBuckets - 1)
}

// lateFrac returns the fraction of recorded delays above thresh.
func (h *hist) lateFrac(thresh time.Duration) float64 {
	if h.n == 0 {
		return 0
	}
	cut := bucketOf(thresh)
	var late int64
	for i := cut + 1; i < histBuckets; i++ {
		late += h.buckets[i]
	}
	return float64(late) / float64(h.n)
}

// Config parameterizes one benchmark run.
type Config struct {
	// Subscribers is the total in-process subscriber count, spread
	// round-robin across the streams. Default 10000.
	Subscribers int
	// Streams is how many concurrent live streams the registry serves.
	// Default 4.
	Streams int
	// Shards pins every hub's shard count: 1 reproduces the historical
	// single-lock hub, 0 selects GOMAXPROCS.
	Shards int
	// Delivery selects the hub's send-loop strategy: hub.DeliveryZeroCopy
	// (the default — pinned shared buffers, vectored batch writes) or
	// hub.DeliveryCopy (the historical render-per-subscriber path). The
	// compare tier runs both on the same workload; their ratio is the
	// zero-copy architecture's speedup.
	Delivery hub.Delivery
	// Mu is each stream's generation rate in packets/second. Default 2000 —
	// deliberately above what the delivery path drains at high subscriber
	// counts, so delivered frames/sec measures capacity.
	Mu float64
	// Payload is the packet payload size in bytes. Default 256.
	Payload int
	// LagWindow is each hub's ring size. Default 1024.
	LagWindow int
	// Duration is the measurement window (after all subscribers have
	// attached). Default 10s.
	Duration time.Duration
	// LateThreshold classifies a delivered frame as late. Default 150ms.
	LateThreshold time.Duration
	// Churn, when true, replays the seeded multi-stream churn schedule
	// during the measurement window.
	Churn bool
	// Seed drives the churn schedule and token draws. Default 1.
	Seed int64
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Subscribers == 0 {
		c.Subscribers = 10000
	}
	if c.Streams == 0 {
		c.Streams = 4
	}
	if c.Mu == 0 {
		c.Mu = 2000
	}
	if c.Payload == 0 {
		c.Payload = 256
	}
	if c.LagWindow == 0 {
		c.LagWindow = 1024
	}
	if c.Duration == 0 {
		c.Duration = 10 * time.Second
	}
	if c.LateThreshold == 0 {
		c.LateThreshold = 150 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Result is one run's metrics — the unit the BENCH_fanout.json schema is
// built from. Field names (via their json tags) are schema-stable: add
// fields if needed, never rename or repurpose existing ones.
type Result struct {
	Label       string  `json:"label"` // e.g. "copy", "zero-copy" (historical: "single-lock", "sharded")
	Subscribers int     `json:"subscribers"`
	Streams     int     `json:"streams"`
	Shards      int     `json:"shards"`
	GoMaxProcs  int     `json:"go_max_procs"`
	MuPerStream float64 `json:"mu_per_stream"`
	PayloadB    int     `json:"payload_bytes"`
	DurationSec float64 `json:"duration_sec"`
	Churn       bool    `json:"churn"`
	Seed        int64   `json:"seed"`
	Delivery    string  `json:"delivery"` // "copy" or "zero-copy"; "" on pre-v3 baselines

	FramesDelivered int64   `json:"frames_delivered"` // across all subscribers, measurement window only
	FramesPerSec    float64 `json:"frames_per_sec"`
	GeneratedPerSec float64 `json:"generated_per_sec"` // summed over streams
	P50DelayMs      float64 `json:"p50_delay_ms"`
	P99DelayMs      float64 `json:"p99_delay_ms"`
	LateFrac        float64 `json:"late_frac"`    // delay > late threshold
	DroppedFrac     float64 `json:"dropped_frac"` // dropped / (delivered + dropped)
	BytesHeldPeak   int64   `json:"bytes_held_peak"`
	AllocsPerFrame  float64 `json:"allocs_per_frame"`
	// BytesCopiedPerFrame is the hub-side payload-memcpy cost of one
	// delivered frame: the full frame size on the copy path, the patched
	// header alone (core.FrameHeaderSize) on the zero-copy path.
	BytesCopiedPerFrame float64 `json:"bytes_copied_per_frame"`
	// WritevFramesPerBatch is the mean frames coalesced into one vectored
	// write; 0 on the copy path (which writes frame-at-a-time).
	WritevFramesPerBatch float64 `json:"writev_frames_per_batch"`
	ChurnJoins           int64   `json:"churn_joins"`
	ChurnLeaves          int64   `json:"churn_leaves"`
}

// reader drains one subscriber's pipe end, recording per-frame delay into
// its own histogram while the measurement window is open. It reads nothing
// until start closes: net.Pipe writes are synchronous, so an unread pipe
// parks its sender on the first header byte, keeping the fan-out path
// quiescent (and the attach loop unstarved) until every subscriber is in
// place — without it, attaching subscriber N competes for CPU with N-1
// subscribers already streaming at full tilt.
type reader struct {
	conn      net.Conn
	frameSize int
	start     chan struct{}
	measuring *atomic.Bool
	hist      hist
	delivered int64 // measurement-window frames only
}

// run drains frames from the subscriber connection, recording delivery
// latency while the measurement window is open.
//
// hotpath — the benchmark's receive loop; the body runs once per
// delivered frame and any allocation here skews the numbers it reports.
func (rd *reader) run() {
	defer rd.conn.Close()
	<-rd.start
	if _, _, err := core.ReadStreamHeader(rd.conn); err != nil {
		return
	}
	buf := make([]byte, rd.frameSize) // nolint:hotalloc per-reader frame buffer, allocated once before the loop
	for {
		if _, err := io.ReadFull(rd.conn, buf); err != nil {
			return
		}
		pkt, gen, err := core.ParseFrameHeader(buf)
		if err != nil || pkt == core.EndMarker {
			return
		}
		if rd.measuring.Load() {
			rd.delivered++
			rd.hist.record(time.Duration(time.Now().UnixNano() - gen))
		}
	}
}

// Run executes one benchmark run and returns its metrics. Setup errors are
// returned; the measurement itself cannot fail, only report.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	logf := func(format string, args ...any) {
		if cfg.Logf != nil {
			cfg.Logf(format, args...)
		}
	}
	shards := cfg.Shards
	if shards == 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	label := cfg.Delivery.String()

	reg, err := registry.New(registry.Config{Hub: hub.Config{
		Stream:    core.Config{Mu: cfg.Mu, PayloadSize: cfg.Payload, Count: 1 << 40},
		LagWindow: cfg.LagWindow,
		Policy:    hub.DropOldest,
		Shards:    shards,
		Delivery:  cfg.Delivery,
		// Benchmark subscribers are single-path and never re-attach:
		// disable the grace and resend machinery so leavers free their
		// slots the moment their pipe closes.
		ReattachGrace: -1,
		ResendWindow:  -1,
	}})
	if err != nil {
		return nil, fmt.Errorf("fanout: registry: %w", err)
	}
	defer reg.Close()
	ids := make([]string, cfg.Streams)
	hubs := make([]*hub.Hub, cfg.Streams)
	for i := range ids {
		ids[i] = fmt.Sprintf("bench-%d", i)
		h, err := reg.Create(ids[i])
		if err != nil {
			return nil, fmt.Errorf("fanout: create %s: %w", ids[i], err)
		}
		hubs[i] = h
	}

	frameSize := core.FrameHeaderSize + cfg.Payload
	var measuring atomic.Bool
	startCh := make(chan struct{})
	var startOnce sync.Once
	release := func() { startOnce.Do(func() { close(startCh) }) }
	defer release() // error paths must not leave readers parked
	readers := make([]*reader, cfg.Subscribers)
	var wg sync.WaitGroup
	logf("attaching %d subscribers across %d streams (shards=%d)...", cfg.Subscribers, cfg.Streams, shards)
	for i := range readers {
		tok, err := core.NewToken()
		if err != nil {
			return nil, fmt.Errorf("fanout: token: %w", err)
		}
		server, client := newBufferedPipe()
		rd := &reader{conn: client, frameSize: frameSize, start: startCh, measuring: &measuring}
		readers[i] = rd
		wg.Add(1)
		go func() {
			defer wg.Done()
			rd.run()
		}()
		j := core.Join{StreamID: ids[i%cfg.Streams], Token: tok}
		if err := reg.Route(server, j); err != nil {
			return nil, fmt.Errorf("fanout: attach %d: %w", i, err)
		}
	}
	deadline := time.Now().Add(60 * time.Second)
	for reg.ConnCount() < cfg.Subscribers {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("fanout: only %d/%d subscribers attached", reg.ConnCount(), cfg.Subscribers)
		}
		time.Sleep(10 * time.Millisecond)
	}
	logf("attached; measuring for %v (churn=%v)", cfg.Duration, cfg.Churn)

	// Measurement window: flip the flag, sample held bytes periodically,
	// optionally replay the churn schedule, and diff MemStats around it.
	genStart := int64(0)
	dropStart := int64(0)
	var bc0, wv0, fb0 int64
	for _, h := range hubs {
		genStart += h.Generated()
		dropStart += h.TotalDropped()
		bc, wv, fb := h.DeliveryCounters()
		bc0, wv0, fb0 = bc0+bc, wv0+wv, fb0+fb
	}
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	measuring.Store(true)
	release() // unpark every reader; fan-out starts now

	var churnWG sync.WaitGroup
	var churnJoins, churnLeaves atomic.Int64
	churnDone := make(chan struct{})
	if cfg.Churn {
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			runChurn(reg, ids, frameSize, cfg, churnDone, &churnJoins, &churnLeaves)
		}()
	}

	var heldPeak int64
	sampleEvery := cfg.Duration / 8
	if sampleEvery < 100*time.Millisecond {
		sampleEvery = 100 * time.Millisecond
	}
	for end := start.Add(cfg.Duration); time.Now().Before(end); {
		d := time.Until(end)
		if d > sampleEvery {
			d = sampleEvery
		}
		time.Sleep(d)
		var held int64
		for _, h := range hubs {
			held += h.BytesHeld()
		}
		if held > heldPeak {
			heldPeak = held
		}
	}

	measuring.Store(false)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	close(churnDone)
	churnWG.Wait()

	genEnd := int64(0)
	dropEnd := int64(0)
	var bc1, wv1, fb1 int64
	for _, h := range hubs {
		genEnd += h.Generated()
		dropEnd += h.TotalDropped()
		bc, wv, fb := h.DeliveryCounters()
		bc1, wv1, fb1 = bc1+bc, wv1+wv, fb1+fb
	}

	// Teardown before touching reader-owned state: closing the registry
	// closes every pipe, so each reader goroutine exits and its histogram
	// becomes safe to read.
	reg.Close()
	wg.Wait()

	res := &Result{
		Label:       label,
		Subscribers: cfg.Subscribers,
		Streams:     cfg.Streams,
		Shards:      shards,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		MuPerStream: cfg.Mu,
		PayloadB:    cfg.Payload,
		DurationSec: elapsed.Seconds(),
		Churn:       cfg.Churn,
		Seed:        cfg.Seed,
		Delivery:    cfg.Delivery.String(),
		ChurnJoins:  churnJoins.Load(),
		ChurnLeaves: churnLeaves.Load(),
	}
	// Hub-side memcpy accounting over the window: the copy path charges a
	// full frame per shard.pop, the zero-copy path a patched header per
	// batched frame, so framesHub is whichever denominator the run used.
	bytesCopied := bc1 - bc0
	framesHub := fb1 - fb0
	if framesHub == 0 && frameSize > 0 {
		framesHub = bytesCopied / int64(frameSize)
	}
	if framesHub > 0 {
		res.BytesCopiedPerFrame = float64(bytesCopied) / float64(framesHub)
	}
	if wv := wv1 - wv0; wv > 0 {
		res.WritevFramesPerBatch = float64(fb1-fb0) / float64(wv)
	}
	var merged hist
	for _, rd := range readers {
		res.FramesDelivered += rd.delivered
		merged.merge(&rd.hist)
	}
	res.FramesPerSec = float64(res.FramesDelivered) / elapsed.Seconds()
	res.GeneratedPerSec = float64(genEnd-genStart) / elapsed.Seconds()
	res.P50DelayMs = float64(merged.quantile(0.50)) / float64(time.Millisecond)
	res.P99DelayMs = float64(merged.quantile(0.99)) / float64(time.Millisecond)
	res.LateFrac = merged.lateFrac(cfg.LateThreshold)
	dropped := dropEnd - dropStart
	if total := res.FramesDelivered + dropped; total > 0 {
		res.DroppedFrac = float64(dropped) / float64(total)
	}
	res.BytesHeldPeak = heldPeak
	if res.FramesDelivered > 0 {
		res.AllocsPerFrame = float64(ms1.Mallocs-ms0.Mallocs) / float64(res.FramesDelivered)
	}
	logf("%s: %.0f frames/s delivered (%.0f generated/s), p50 %.2fms p99 %.2fms late %.4f",
		res.Label, res.FramesPerSec, res.GeneratedPerSec, res.P50DelayMs, res.P99DelayMs, res.LateFrac)
	return res, nil
}

// runChurn replays the seeded multi-stream churn schedule against the
// registry over pipes: joins read for their hold and hang up, bursts join
// and leave immediately. It returns when the schedule is exhausted or done
// closes.
func runChurn(reg *registry.Registry, ids []string, frameSize int, cfg Config,
	done chan struct{}, joins, leaves *atomic.Int64) {
	evs := chaos.ChurnSchedule(cfg.Seed, cfg.Duration, len(ids), 150*time.Millisecond)
	start := time.Now()
	var wg sync.WaitGroup
	defer wg.Wait()
	for _, ev := range evs {
		if d := time.Until(start.Add(ev.At)); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-done:
				t.Stop()
				return
			}
		}
		select {
		case <-done:
			return
		default:
		}
		n, hold := 0, time.Duration(0)
		switch ev.Kind {
		case chaos.ChurnJoin:
			n, hold = 1, ev.Hold
		case chaos.ChurnBurst:
			n = ev.Size
		case chaos.ChurnBreather:
			continue
		}
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(id string, hold time.Duration) {
				defer wg.Done()
				churnJoin(reg, id, frameSize, hold, done, joins, leaves)
			}(ids[ev.Stream], hold)
		}
	}
}

// churnJoin is one churn subscriber: attach over a pipe, read for hold,
// hang up.
func churnJoin(reg *registry.Registry, id string, frameSize int, hold time.Duration,
	done chan struct{}, joins, leaves *atomic.Int64) {
	tok, err := core.NewToken()
	if err != nil {
		return
	}
	server, client := newBufferedPipe()
	defer client.Close()
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		buf := make([]byte, frameSize)
		if _, _, err := core.ReadStreamHeader(client); err != nil {
			return
		}
		for {
			if _, err := io.ReadFull(client, buf); err != nil {
				return
			}
		}
	}()
	if err := reg.Route(server, core.Join{StreamID: id, Token: tok}); err != nil {
		// A typed reject under caps is an expected outcome here; protocol
		// correctness of refusals is the chaos harness's job, not the
		// benchmark's.
		<-readerDone
		return
	}
	joins.Add(1)
	if hold > 0 {
		t := time.NewTimer(hold)
		select {
		case <-t.C:
		case <-done:
			t.Stop()
		}
	}
	_ = client.Close()
	<-readerDone
	leaves.Add(1)
}
