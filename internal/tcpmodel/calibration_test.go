package tcpmodel

import (
	"testing"

	"dmpstream/internal/netsim"
	"dmpstream/internal/sim"
	"dmpstream/internal/tcpsim"
)

// dropSink drops packets with independent probability p.
type dropSink struct {
	s    *sim.Simulator
	p    float64
	next netsim.Sink
}

func (d *dropSink) Deliver(pkt *netsim.Packet) {
	if d.s.Rand().Float64() >= d.p {
		d.next.Deliver(pkt)
	}
}

// TestThroughputMatchesPacketSimulator calibrates the analytical chain
// against the packet-level Reno implementation: a backlogged tcpsim flow over
// a path with per-packet loss p and base RTT R should achieve a throughput
// the chain reproduces within a modest band, using the simulator's own
// measured RTT and timeout ratio as the chain's inputs.
func TestThroughputMatchesPacketSimulator(t *testing.T) {
	for _, tc := range []struct {
		p   float64
		rtt sim.Time
	}{
		{0.01, 100 * sim.Millisecond},
		{0.02, 150 * sim.Millisecond},
		{0.04, 200 * sim.Millisecond},
	} {
		s := sim.New(42)
		conn := tcpsim.NewConn(s, 1, tcpsim.Config{})
		fwd := netsim.NewLink(s, "fwd", 100, tc.rtt/2, 1<<18, nil)
		rev := netsim.NewLink(s, "rev", 100, tc.rtt/2, 1<<18, nil)
		loss := &dropSink{s: s, p: tc.p, next: netsim.NewPath(conn.Rcv, fwd)}
		conn.Wire(loss, netsim.NewPath(conn.Snd, rev))
		fill := func() {
			for conn.Snd.CanWrite() {
				conn.Snd.Write(nil)
			}
		}
		conn.Snd.Writable = fill
		fill()
		dur := 3000 * sim.Second
		s.Run(dur)
		simSigma := float64(conn.Rcv.Delivered) / dur.Seconds()

		st := conn.Snd.Stats()
		par := Params{
			P:  tc.p,
			R:  st.MeanRTT().Seconds(),
			TO: float64(st.MeanRTO()) / float64(st.MeanRTT()),
		}
		modelSigma, err := Throughput(par)
		if err != nil {
			t.Fatal(err)
		}
		ratio := modelSigma / simSigma
		if ratio < 0.7 || ratio > 1.3 {
			t.Errorf("p=%v rtt=%v: model σ=%.1f vs packet-sim σ=%.1f (ratio %.2f)",
				tc.p, tc.rtt, modelSigma, simSigma, ratio)
		}
	}
}
