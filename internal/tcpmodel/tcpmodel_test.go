package tcpmodel

import (
	"math"
	"testing"
	"testing/quick"

	"dmpstream/internal/markov"
	"dmpstream/internal/pftk"
)

func TestStateSpaceIsFiniteAndModest(t *testing.T) {
	par := Params{P: 0.02, R: 0.2, TO: 4}
	states, _, err := markov.Enumerate(Generator(par), Initial(par), 200000)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) < 50 || len(states) > 50000 {
		t.Fatalf("reachable states = %d; expected a modest finite chain", len(states))
	}
}

func TestStateInvariants(t *testing.T) {
	par := Params{P: 0.04, R: 0.1, TO: 2}
	states, _, err := markov.Enumerate(Generator(par), Initial(par), 200000)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range states {
		if s.W < 1 || int(s.W) > par.withDefaults().Wmax {
			t.Fatalf("window out of range: %+v", s)
		}
		if s.SS < 2 {
			t.Fatalf("ssthresh below 2: %+v", s)
		}
		if s.L > 0 && s.E > 0 {
			t.Fatalf("simultaneous detection and timeout: %+v", s)
		}
		if s.E == 0 && s.Q == 1 {
			t.Fatalf("retransmission flag outside timeout phase: %+v", s)
		}
		if s.E > 0 && (s.W != 1 || s.Q != 1) {
			t.Fatalf("malformed timeout state: %+v", s)
		}
	}
}

func TestRatesConserveProbability(t *testing.T) {
	// Transitions out of a sending round must have total rate 1/R (the round
	// outcomes partition the probability space).
	par := Params{P: 0.02, R: 0.25, TO: 4}
	states, _, err := markov.Enumerate(Generator(par), Initial(par), 200000)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range states {
		if s.E > 0 {
			continue // timeout states have their own slower clock
		}
		var total float64
		for _, tr := range Transitions(par, s) {
			total += tr.Rate
		}
		if math.Abs(total-1/par.R) > 1e-9 {
			t.Fatalf("state %+v: total outrate %v, want %v", s, total, 1/par.R)
		}
	}
}

func TestThroughputDecreasingInLoss(t *testing.T) {
	prev := math.Inf(1)
	for _, p := range []float64{0.004, 0.01, 0.02, 0.04, 0.08} {
		sigma, err := Throughput(Params{P: p, R: 0.2, TO: 4})
		if err != nil {
			t.Fatal(err)
		}
		if sigma >= prev {
			t.Fatalf("throughput not decreasing at p=%v: %v >= %v", p, sigma, prev)
		}
		prev = sigma
	}
}

func TestThroughputScalesInverseRTT(t *testing.T) {
	a, err := Throughput(Params{P: 0.02, R: 0.1, TO: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Throughput(Params{P: 0.02, R: 0.3, TO: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a/b-3) > 1e-6 {
		t.Fatalf("σ(R=0.1)/σ(R=0.3) = %v, want exactly 3", a/b)
	}
}

func TestThroughputAgreesWithPFTK(t *testing.T) {
	// The reconstructed chain should land in the same regime as the PFTK
	// full model across the paper's parameter ranges. The two models differ
	// structurally (our chain resolves recovery round-by-round), so accept a
	// factor-of-two band.
	for _, p := range []float64{0.004, 0.02, 0.04} {
		for _, to := range []float64{1, 2, 4} {
			r := 0.2
			got, err := Throughput(Params{P: p, R: r, TO: to})
			if err != nil {
				t.Fatal(err)
			}
			want := pftk.Throughput(p, r, to*r, 2, 32)
			if got < want/2 || got > want*2 {
				t.Errorf("p=%v TO=%v: chain σ=%.2f, PFTK σ=%.2f (ratio %.2f)",
					p, to, got, want, got/want)
			}
		}
	}
}

func TestThroughputDecreasingInTimeoutRatio(t *testing.T) {
	s1, _ := Throughput(Params{P: 0.04, R: 0.2, TO: 1})
	s4, _ := Throughput(Params{P: 0.04, R: 0.2, TO: 4})
	if s4 >= s1 {
		t.Fatalf("σ(TO=4)=%v not below σ(TO=1)=%v", s4, s1)
	}
}

func TestLossForThroughputRoundTrip(t *testing.T) {
	r, to := 0.15, 4.0
	orig := Params{P: 0.02, R: r, TO: to}
	sigma, err := Throughput(orig)
	if err != nil {
		t.Fatal(err)
	}
	p, err := LossForThroughput(sigma, r, to, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.02)/0.02 > 0.02 {
		t.Fatalf("inverted p = %v, want 0.02", p)
	}
}

func TestLossForThroughputOutOfRange(t *testing.T) {
	if _, err := LossForThroughput(1e9, 0.1, 4, 0); err == nil {
		t.Fatal("absurd target accepted")
	}
}

func TestValidation(t *testing.T) {
	bad := []Params{
		{P: 0, R: 0.1, TO: 4},
		{P: 1.5, R: 0.1, TO: 4},
		{P: 0.01, R: 0, TO: 4},
		{P: 0.01, R: 0.1, TO: 0},
		{P: 0.01, R: 0.1, TO: 4, Wmax: 2},
	}
	for _, par := range bad {
		if _, err := Throughput(par); err == nil {
			t.Errorf("params %+v accepted", par)
		}
	}
}

func TestFastRetransmitNeedsWindowOfFour(t *testing.T) {
	// From a window of 3, any loss must go straight to timeout: the ACK
	// clock cannot produce three duplicate ACKs.
	par := Params{P: 0.02, R: 0.2, TO: 4}
	s := State{W: 3, C: 0, SS: 2}
	for _, tr := range Transitions(par, s) {
		if tr.Next.L > 0 {
			t.Fatalf("W=3 loss produced detection state %+v", tr.Next)
		}
	}
	// From a window of 8, every loss must enter detection (fast retransmit),
	// not timeout, and the detection round must resolve in one halving.
	s = State{W: 8, C: 0, SS: 4}
	for _, tr := range Transitions(par, s) {
		if tr.Next.E > 0 {
			t.Fatalf("W=8 loss went straight to timeout: %+v", tr.Next)
		}
	}
	det := State{W: 8, C: 0, L: 3, SS: 4}
	for _, tr := range Transitions(par, det) {
		if tr.Next.E == 0 { // successful recovery
			if tr.Next.W != 4 || tr.Next.L != 0 {
				t.Fatalf("TD recovery did not halve once and finish: %+v", tr.Next)
			}
			if tr.Tag != int32(8-3+1) {
				t.Fatalf("TD recovery credited %d deliveries, want W-L+1=6", tr.Tag)
			}
		}
	}
}

func TestTimeoutBackoffCaps(t *testing.T) {
	par := Params{P: 0.5, R: 0.1, TO: 2}
	s := State{W: 1, E: 12, Q: 1, SS: 2}
	trs := Transitions(par, s)
	var total float64
	for _, tr := range trs {
		total += tr.Rate
		if tr.Next.E > 0 && int(tr.Next.E)-1 > maxBackoffExp {
			t.Fatalf("backoff exponent escaped cap: %+v", tr.Next)
		}
	}
	wantRate := 1 / (par.TO * par.R * math.Pow(2, float64(maxBackoffExp)))
	if math.Abs(total-wantRate) > 1e-9 {
		t.Fatalf("capped timeout rate %v, want %v", total, wantRate)
	}
}

// Property: for random valid parameters the chain is ergodic and its
// throughput is positive and bounded by Wmax/R.
func TestPropertyThroughputBounds(t *testing.T) {
	f := func(pRaw, toRaw uint16) bool {
		p := 0.001 + float64(pRaw%400)/4000.0 // 0.001..0.1
		to := 1 + float64(toRaw%7)/2          // 1..4
		par := Params{P: p, R: 0.2, TO: to}
		sigma, err := Throughput(par)
		if err != nil {
			return false
		}
		return sigma > 0 && sigma <= float64(par.withDefaults().Wmax)/par.R+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkThroughputSolve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Throughput(Params{P: 0.02, R: 0.2, TO: 4}); err != nil {
			b.Fatal(err)
		}
	}
}
