// Package tcpmodel defines the per-flow TCP Reno Markov chain used by the
// paper's analytical model of DMP-streaming (Section 4.2).
//
// Each flow's state is the tuple the paper names: window size W, delayed-ACK
// phase C, packets lost in the previous round L, timeout/backoff state E, and
// retransmission flag Q. The paper's detailed transition structure lives in
// an unavailable technical report [32]; this package reconstructs it from the
// paper's description, the loss-process assumptions it cites ([23, 10]:
// rounds are independent, losses within a round are correlated — once one
// packet is lost the rest of the round is lost), and standard Reno behavior
// (PFTK [24]). The reconstruction adds one implementation component, the
// slow-start threshold, documented in DESIGN.md.
//
// Rounds last one RTT on average and are exponentially distributed, making
// the flow a continuous-time Markov chain. Every rate in the chain scales as
// 1/R (timeouts are expressed through the ratio T_O = RTO/RTT), so the
// stationary distribution is independent of R and the achievable throughput
// factorizes as σ = σ̂(p, T_O)/R. That factorization is what lets the
// parameter-space study (Section 7) sweep σ_a/µ by varying R or µ alone.
package tcpmodel

import (
	"fmt"
	"math"

	"dmpstream/internal/markov"
)

// Params are the per-path inputs of the paper's model.
type Params struct {
	P    float64 // per-packet loss probability
	R    float64 // round-trip time, seconds
	TO   float64 // ratio RTO/RTT (the paper's T_O); first timeout lasts TO·R
	Wmax int     // window cap in packets (default 32)

	// StrictDupAck selects the strict reading of the correlated-loss model:
	// fast retransmit is possible only when at least three packets of the
	// loss round itself survived (first loss at position ≥ 4). The default
	// (false) judges duplicate-ACK availability by the window size, matching
	// packet-level Reno where the continuing ACK clock supplies the
	// duplicates. Kept as a knob for the reconstruction ablation
	// (dmpbench -exp ablation-td).
	StrictDupAck bool
}

func (p Params) withDefaults() Params {
	if p.Wmax == 0 {
		p.Wmax = 32
	}
	return p
}

func (p Params) validate() error {
	p = p.withDefaults()
	if p.P <= 0 || p.P >= 1 {
		return fmt.Errorf("tcpmodel: loss probability %v outside (0,1)", p.P)
	}
	if p.R <= 0 {
		return fmt.Errorf("tcpmodel: RTT %v <= 0", p.R)
	}
	if p.TO <= 0 {
		return fmt.Errorf("tcpmodel: timeout ratio %v <= 0", p.TO)
	}
	if p.Wmax < 4 {
		return fmt.Errorf("tcpmodel: Wmax %d < 4", p.Wmax)
	}
	return nil
}

// State is the per-flow chain state (the paper's X_k plus the slow-start
// threshold SS). Field ranges are small, so the struct is a cheap map key.
type State struct {
	W  uint8 // congestion window, packets (1..Wmax)
	C  uint8 // delayed-ACK phase: window grows when C=1 in congestion avoidance
	L  uint8 // packets lost in the previous round, awaiting detection
	E  uint8 // 0 = normal; k≥1 = timeout phase with backoff 2^(k-1) (capped)
	Q  uint8 // 1 = the pending send in the timeout phase is a retransmission
	SS uint8 // slow-start threshold
}

// Initial returns the canonical start state: slow start from W=1 with a high
// threshold, as after connection establishment.
func Initial(p Params) State {
	p = p.withDefaults()
	return State{W: 1, C: 0, L: 0, E: 0, Q: 0, SS: uint8(p.Wmax / 2)}
}

const maxBackoffExp = 6 // RTO doubling caps at 2^6, as in BSD-lineage stacks

// Transitions returns the outgoing CTMC transitions of state s. The Tag of
// each transition is the number of packets delivered to the receiver by the
// round it represents.
func Transitions(par Params, s State) []markov.Transition[State] {
	par = par.withDefaults()
	if err := par.validate(); err != nil {
		panic(err)
	}
	switch {
	case s.E > 0:
		return timeoutTransitions(par, s)
	case s.L > 0:
		return detectionTransitions(par, s)
	default:
		return sendingTransitions(par, s)
	}
}

// sendingTransitions: a normal round transmitting W packets. With the
// correlated-loss assumption the first loss at position j wipes out the rest
// of the round: j-1 packets arrive, L = W-j+1 are lost.
func sendingTransitions(par Params, s State) []markov.Transition[State] {
	rate := 1 / par.R
	w := int(s.W)
	p := par.P
	trs := make([]markov.Transition[State], 0, w+1)

	// No loss: the whole round arrives and the window opens.
	pNone := math.Pow(1-p, float64(w))
	trs = append(trs, markov.Transition[State]{
		Rate: rate * pNone,
		Tag:  int32(w),
		Next: grow(par, s),
	})

	// First loss at position j. Fast retransmit needs three duplicate ACKs;
	// with a window of at least four, the continuing ACK clock (survivors of
	// this round plus the packets they release) supplies them, so the window
	// size — not the first-loss position — decides TD versus TO. This matches
	// packet-level Reno, where a mid-window loss almost always recovers via
	// fast retransmit when W ≥ 4 (validated by the calibration tests against
	// internal/tcpsim).
	pj := p // (1-p)^(j-1) · p, accumulated incrementally
	for j := 1; j <= w; j++ {
		lost := w - j + 1
		delivered := j - 1
		td := canFastRetransmit(s.W)
		if par.StrictDupAck {
			td = delivered >= 3
		}
		var next State
		if td {
			next = State{W: s.W, C: 0, L: uint8(lost), E: 0, Q: 0, SS: s.SS}
		} else {
			next = enterTimeout(s)
		}
		trs = append(trs, markov.Transition[State]{
			Rate: rate * pj,
			Tag:  int32(delivered),
			Next: next,
		})
		pj *= 1 - p
	}
	return trs
}

// canFastRetransmit reports whether a window can elicit the three duplicate
// ACKs Reno needs.
func canFastRetransmit(w uint8) bool { return w >= 4 }

// grow applies window growth after a fully successful round: doubling below
// the slow-start threshold, +1 every other round (delayed ACKs, the paper's
// b=2) in congestion avoidance.
func grow(par Params, s State) State {
	w, ss := int(s.W), int(s.SS)
	if w < ss { // slow start
		nw := w * 2
		if nw > ss {
			nw = ss
		}
		if nw > par.Wmax {
			nw = par.Wmax
		}
		return State{W: uint8(nw), C: 0, SS: s.SS}
	}
	// Congestion avoidance.
	if s.C == 0 {
		return State{W: s.W, C: 1, SS: s.SS}
	}
	nw := w + 1
	if nw > par.Wmax {
		nw = par.Wmax
	}
	return State{W: uint8(nw), C: 0, SS: s.SS}
}

// enterTimeout is the state entered when a loss round cannot be recovered by
// fast retransmit.
func enterTimeout(s State) State {
	return State{W: 1, C: 0, L: 0, E: 1, Q: 1, SS: halved(s.W)}
}

func halved(w uint8) uint8 {
	h := w / 2
	if h < 2 {
		h = 2
	}
	return h
}

// detectionTransitions: the round after a loss. The surviving packets' ACKs
// slid the window, so the sender transmitted W-L new packets alongside the
// duplicate ACKs that now trigger fast retransmit of the first hole; the
// retransmission is itself subject to loss. Classic Reno recovers one loss
// per window halving; remaining holes re-enter detection with the halved
// window, and when the halved window can no longer produce three duplicate
// ACKs the flow falls back to a timeout.
//
// Delivery accounting: the W-L new packets of this round are credited here
// (their own losses are folded into subsequent rounds' loss draws — at the
// paper's loss rates the correction is below p·(W-L) ≈ 0.2 packet), plus the
// retransmitted packet when it survives. Without this crediting the chain
// underestimates Reno throughput by ~40% against the packet-level
// simulator (see TestThroughputMatchesPacketSimulator).
func detectionTransitions(par Params, s State) []markov.Transition[State] {
	rate := 1 / par.R
	newPkts := int32(s.W) - int32(s.L)
	if newPkts < 0 {
		newPkts = 0
	}
	td := canFastRetransmit(s.W)
	if par.StrictDupAck {
		td = int(s.W)-int(s.L) >= 3
	}
	if !td {
		// The window cannot elicit fast retransmit.
		return []markov.Transition[State]{{Rate: rate, Tag: newPkts, Next: enterTimeout(s)}}
	}
	// One loss event costs one halving (PFTK's TD treatment): a successful
	// recovery round retransmits the hole(s) and resumes congestion
	// avoidance from W/2; a lost retransmission degenerates to a timeout.
	w := halved(s.W)
	afterSuccess := State{W: w, C: 0, SS: w}
	return []markov.Transition[State]{
		{Rate: rate * (1 - par.P), Tag: newPkts + 1, Next: afterSuccess},
		{Rate: rate * par.P, Tag: newPkts, Next: enterTimeout(s)},
	}
}

// timeoutTransitions: the flow idles for the backed-off timeout, then
// retransmits one packet (Q=1). Success re-enters slow start toward the
// halved threshold; failure doubles the backoff.
func timeoutTransitions(par Params, s State) []markov.Transition[State] {
	exp := int(s.E) - 1
	if exp > maxBackoffExp {
		exp = maxBackoffExp
	}
	dur := par.TO * par.R * math.Pow(2, float64(exp))
	rate := 1 / dur
	nextE := s.E + 1
	if int(nextE)-1 > maxBackoffExp {
		nextE = uint8(maxBackoffExp + 1)
	}
	return []markov.Transition[State]{
		{Rate: rate * (1 - par.P), Tag: 1, Next: State{W: 1, C: 0, SS: s.SS}},
		{Rate: rate * par.P, Tag: 0, Next: State{W: 1, C: 0, E: nextE, Q: 1, SS: s.SS}},
	}
}

// Generator adapts Transitions to the markov.Generator interface.
func Generator(par Params) markov.Generator[State] {
	par = par.withDefaults()
	return func(s State) []markov.Transition[State] { return Transitions(par, s) }
}

// Throughput computes the achievable TCP throughput σ (packets per second)
// of a backlogged flow with the given parameters, by exactly solving the
// per-flow chain. This is the σ_k of the paper's Section 2.2, computed from
// the same chain that drives the streaming model so that every σ_a/µ knob in
// the parameter study is self-consistent.
func Throughput(par Params) (float64, error) {
	par = par.withDefaults()
	if err := par.validate(); err != nil {
		return 0, err
	}
	g := Generator(par)
	pi, err := markov.Stationary(g, Initial(par), 200000, 1e-12, 200000)
	if err != nil {
		return 0, err
	}
	return markov.TagRate(g, pi), nil
}

// LossForThroughput inverts Throughput: it finds the loss probability p that
// yields the target σ for fixed R and T_O. Used to construct the paper's
// Case-2 heterogeneous paths (two paths differing only in loss rate but with
// a prescribed aggregate throughput). Throughput is decreasing in p, so
// bisection applies.
func LossForThroughput(target, r, to float64, wmax int) (float64, error) {
	// The bracket covers everything the paper's experiments need (p in
	// 0.004..0.05 and their Case-2 derivatives). Below ~1e-4 the chain is so
	// close to deterministic that Gauss-Seidel mixes impractically slowly.
	lo, hi := 2e-4, 0.9
	sigma := func(p float64) (float64, error) {
		return Throughput(Params{P: p, R: r, TO: to, Wmax: wmax})
	}
	sLo, err := sigma(lo)
	if err != nil {
		return 0, err
	}
	sHi, err := sigma(hi)
	if err != nil {
		return 0, err
	}
	if target > sLo || target < sHi {
		return 0, fmt.Errorf("tcpmodel: target throughput %.3f outside achievable range [%.3f, %.3f]", target, sHi, sLo)
	}
	for i := 0; i < 60; i++ {
		mid := math.Sqrt(lo * hi) // geometric: p spans orders of magnitude
		sMid, err := sigma(mid)
		if err != nil {
			return 0, err
		}
		if sMid > target {
			lo = mid
		} else {
			hi = mid
		}
		if hi/lo < 1+1e-9 {
			break
		}
	}
	return math.Sqrt(lo * hi), nil
}
