package chaos

import (
	"testing"
	"time"
)

// TestChaosShortSoak runs the full harness at a fixed seed for a few
// seconds: enough for flaps, stalls, churn and at least one overload
// burst to land, while staying inside ordinary `go test` budgets. The
// nightly CI soak runs the same engine via cmd/dmpchaos for 30s under
// the race detector.
func TestChaosShortSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	rep, err := Run(Config{
		Seed:     1,
		Duration: 3 * time.Second,
		Mu:       300,
		MaxBytes: 24 << 10, // tight budget so the governor acts within 3s
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatalf("setup: %v", err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if t.Failed() {
		t.Fatalf("seed %d failed; rerun with: go run ./cmd/dmpchaos -seed %d -duration 3s",
			rep.Seed, rep.Seed)
	}
	if rep.Events == 0 {
		t.Fatal("schedule executed no events")
	}
	if rep.Joins+rep.Rejected == 0 {
		t.Fatal("no churn joins were attempted")
	}
	if len(rep.Stayers) != 2 {
		t.Fatalf("expected 2 stayer results, got %d", len(rep.Stayers))
	}
	for i, s := range rep.Stayers {
		if s.Err != "" || s.Received != s.Expected {
			t.Errorf("stayer %d: received %d of %d (%s)", i, s.Received, s.Expected, s.Err)
		}
	}
	if !rep.Drained {
		t.Fatal("graceful drain failed")
	}
}

// TestChaosSeededScheduleReproduces pins the seed contract: two runs at
// the same seed draw identical fault schedules (wall-clock dependent
// outcomes may differ; the schedules must not).
func TestChaosSeededScheduleReproduces(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	var flaps, stalls [2]int
	for round := 0; round < 2; round++ {
		rep, err := Run(Config{Seed: 7, Duration: time.Second})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for _, v := range rep.Violations {
			t.Errorf("round %d violation: %s", round, v)
		}
		flaps[round], stalls[round] = rep.Flaps, rep.Stalls
	}
	if flaps[0] != flaps[1] || stalls[0] != stalls[1] {
		t.Fatalf("same seed drew different schedules: flaps %v stalls %v", flaps, stalls)
	}
}
