package chaos

import (
	"testing"
	"time"
)

// TestTreeShortSoak is the tree-wide chaos acceptance run at a pinned
// seed: origin → two tiers of two relays → four dual-homed leaves, with
// severs/resets on the origin paths and kill/restart events mid-tier.
// Every leaf must conserve the stream exactly and every tier must end
// clean — no orphans, no pool corruption, no leaked goroutines.
func TestTreeShortSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("tree soak skipped in -short")
	}
	rep, err := RunTree(TreeConfig{
		Seed:     1,
		Duration: 2500 * time.Millisecond,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if t.Failed() {
		t.Logf("reproduce with: go test -run TestTreeShortSoak (seed %d)", rep.Seed)
		t.Logf("report: %+v", rep)
	}
	if rep.Events == 0 {
		t.Error("schedule executed no events")
	}
	if rep.Severs+rep.Drops+rep.Kills == 0 {
		t.Error("schedule fired no faults — the soak tested nothing")
	}
	if len(rep.LeafReports) != 4 {
		t.Errorf("leaf results: %d, want 4", len(rep.LeafReports))
	}
	if len(rep.Relays) != 4 {
		t.Errorf("relay reports: %d, want 4 (2 tiers x 2)", len(rep.Relays))
	}
	if !rep.Drained {
		t.Error("origin drain failed")
	}
}

// TestTreeSeededScheduleReproduces: two runs at the same seed must fire
// the same fault mix — the property that makes a failing tree soak
// reproducible from its seed line.
func TestTreeSeededScheduleReproduces(t *testing.T) {
	if testing.Short() {
		t.Skip("tree soak skipped in -short")
	}
	cfg := TreeConfig{Seed: 7, Duration: 1200 * time.Millisecond, Leaves: 2}
	a, err := RunTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range append(a.Violations, b.Violations...) {
		t.Errorf("violation: %s", v)
	}
	// Wall-clock jitter can shift how many gaps fit in the window, so the
	// counts may differ slightly — but the generator must be the same: a
	// fault mix wildly apart means the schedule is not seed-driven.
	if a.Severs+a.Drops+a.Kills == 0 && b.Severs+b.Drops+b.Kills > 2 {
		t.Errorf("same seed, divergent fault mixes: %d+%d+%d vs %d+%d+%d",
			a.Severs, a.Drops, a.Kills, b.Severs, b.Drops, b.Kills)
	}
}
