package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dmpstream/internal/core"
	"dmpstream/internal/hub"
	"dmpstream/internal/registry"
)

// ChurnKind classifies one event of a churn schedule.
type ChurnKind int

const (
	// ChurnJoin: one subscriber joins the event's stream, reads for Hold,
	// and hangs up abruptly.
	ChurnJoin ChurnKind = iota
	// ChurnBurst: Size subscribers join the event's stream simultaneously
	// and hang up immediately — the overload shape.
	ChurnBurst
	// ChurnBreather: nothing joins; invariants are checked on a quiet
	// registry.
	ChurnBreather
)

func (k ChurnKind) String() string {
	switch k {
	case ChurnJoin:
		return "join"
	case ChurnBurst:
		return "burst"
	case ChurnBreather:
		return "breather"
	default:
		return fmt.Sprintf("churn(%d)", int(k))
	}
}

// ChurnEvent is one entry of a seeded churn schedule: at offset At from the
// schedule start, Kind happens against stream index Stream.
type ChurnEvent struct {
	At     time.Duration
	Stream int           // index into the run's stream id list
	Kind   ChurnKind     //
	Hold   time.Duration // ChurnJoin: how long the joiner reads before hanging up
	Size   int           // ChurnBurst: simultaneous joiners
}

// ChurnSchedule derives a deterministic multi-stream churn schedule from a
// seed: exponentially spaced events across duration d, each targeting one
// of streams stream indices. Same arguments, same schedule — the property
// both the chaos soak and the fanout benchmark lean on to make runs
// reproducible.
func ChurnSchedule(seed int64, d time.Duration, streams int, meanGap time.Duration) []ChurnEvent {
	if streams < 1 {
		streams = 1
	}
	if meanGap <= 0 {
		meanGap = 120 * time.Millisecond
	}
	rng := rand.New(rand.NewSource(seed))
	var evs []ChurnEvent
	at := time.Duration(0)
	for {
		gap := time.Duration(rng.ExpFloat64() * float64(meanGap))
		if gap > time.Second {
			gap = time.Second
		}
		at += gap
		if at >= d {
			return evs
		}
		ev := ChurnEvent{At: at, Stream: rng.Intn(streams)}
		switch pick := rng.Intn(10); {
		case pick < 5:
			ev.Kind = ChurnJoin
			ev.Hold = time.Duration(50+rng.Intn(350)) * time.Millisecond
		case pick < 8:
			ev.Kind = ChurnBurst
			ev.Size = 4 + rng.Intn(5)
		default:
			ev.Kind = ChurnBreather
		}
		evs = append(evs, ev)
	}
}

// MultiConfig parameterizes one multi-stream soak run against a registry.
type MultiConfig struct {
	// Seed drives the churn schedule and every token draw.
	Seed int64
	// Duration is how long the churn schedule runs. Default 5s.
	Duration time.Duration
	// Streams is how many concurrent live streams the registry serves.
	// Default 4. Stream 0 is ended mid-run to prove per-stream lifecycle
	// independence, so conservation math needs Streams >= 2.
	Streams int
	// Mu is each stream's rate in packets/second. Default 300.
	Mu float64
	// Payload is the packet payload size in bytes. Default 64.
	Payload int
	// LagWindow is each hub's ring size. Default 2048.
	LagWindow int
	// MaxSubscribers caps admission registry-wide. Default
	// Streams*2+4 (the stayers plus churn headroom — bursts overflow it).
	// Set negative for unlimited.
	MaxSubscribers int
	// MaxBytes is each hub's resource-governor budget. Default 96 KiB.
	// Set negative for unlimited.
	MaxBytes int64
	// MeanGap is the mean pause between churn events. Default 120ms.
	MeanGap time.Duration
	// Logf, when set, receives verbose progress lines.
	Logf func(format string, args ...any)
}

func (c MultiConfig) withDefaults() MultiConfig {
	if c.Duration == 0 {
		c.Duration = 5 * time.Second
	}
	if c.Streams == 0 {
		c.Streams = 4
	}
	if c.Streams < 2 {
		c.Streams = 2
	}
	if c.Mu == 0 {
		c.Mu = 300
	}
	if c.Payload == 0 {
		c.Payload = 64
	}
	if c.LagWindow == 0 {
		c.LagWindow = 2048
	}
	if c.MaxSubscribers == 0 {
		c.MaxSubscribers = c.Streams*2 + 4
	}
	if c.MaxSubscribers < 0 {
		c.MaxSubscribers = 0
	}
	if c.MaxBytes == 0 {
		c.MaxBytes = 96 << 10
	}
	if c.MaxBytes < 0 {
		c.MaxBytes = 0
	}
	if c.MeanGap == 0 {
		c.MeanGap = 120 * time.Millisecond
	}
	return c
}

// MultiReport is the outcome of a multi-stream soak. The run passed iff
// Violations is empty.
type MultiReport struct {
	Seed            int64
	StreamIDs       []string // the ids served, index-aligned with the schedule
	EndedMid        string   // the stream ended mid-run (StreamIDs[0])
	Events          int      // churn events executed
	Joins           int64    // churn joins admitted
	Leaves          int64    // churn joiners that read and hung up
	Rejected        int64    // joins answered with a typed reject
	Stayers         map[string]StayerResult
	Final           registry.Stats // snapshot just before the registry drain
	Drained         bool
	GoroutinesStart int
	GoroutinesEnd   int
	Violations      []string
}

// multiRunner carries one multi-stream soak's state.
type multiRunner struct {
	cfg  MultiConfig
	reg  *registry.Registry
	addr string
	ids  []string

	joins    atomic.Int64
	leaves   atomic.Int64
	rejected atomic.Int64

	probes sync.WaitGroup

	mu         sync.Mutex
	violations []string // guarded by mu
}

func (r *multiRunner) violatef(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	r.mu.Lock()
	r.violations = append(r.violations, msg)
	r.mu.Unlock()
	r.logf("VIOLATION: %s", msg)
}

func (r *multiRunner) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// RunMulti executes one multi-stream soak: a registry serving
// cfg.Streams concurrent live streams takes a seeded churn schedule of
// joins, leaves and bursts spread across the stream ids, stream 0 is ended
// mid-run, and per-stream conservation plus registry-wide invariants are
// checked throughout. The returned error covers only setup failures;
// everything the schedule uncovers lands in MultiReport.Violations.
func RunMulti(cfg MultiConfig) (*MultiReport, error) {
	cfg = cfg.withDefaults()
	r := &multiRunner{cfg: cfg}
	rep := &MultiReport{
		Seed:            cfg.Seed,
		Stayers:         make(map[string]StayerResult),
		GoroutinesStart: runtime.NumGoroutine(),
	}

	reg, err := registry.New(registry.Config{
		Hub: hub.Config{
			Stream:          core.Config{Mu: cfg.Mu, PayloadSize: cfg.Payload, Count: 1 << 40},
			LagWindow:       cfg.LagWindow,
			Policy:          hub.DropOldest,
			PathWriteBuffer: 4096,
			ReattachGrace:   time.Second,
			MaxBytes:        cfg.MaxBytes,
			JoinTimeout:     2 * time.Second,
			// Poison-on-put across every stream's pool: churn plus
			// re-attach replay is exactly the traffic that would surface
			// a stale zero-copy pin, and the counters make it loud.
			PoisonPool: true,
		},
		MaxSubscribers: cfg.MaxSubscribers,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: registry: %w", err)
	}
	defer reg.Close()
	r.reg = reg
	for i := 0; i < cfg.Streams; i++ {
		id := fmt.Sprintf("chaos-%d", i)
		if _, err := reg.Create(id); err != nil {
			return nil, fmt.Errorf("chaos: create %s: %w", id, err)
		}
		r.ids = append(r.ids, id)
	}
	rep.StreamIDs = append(rep.StreamIDs, r.ids...)
	rep.EndedMid = r.ids[0]

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos: listen: %w", err)
	}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		_ = reg.Serve(ln)
	}()
	r.addr = ln.Addr().String()

	// One two-path stayer per stream; each must end with a perfectly
	// conserved stream — including the one whose stream is ended mid-run,
	// which must drain to a clean end marker early.
	type stayerOutcome struct {
		tr  *core.Trace
		err error
	}
	stayerCh := make([]chan stayerOutcome, cfg.Streams)
	for i := 0; i < cfg.Streams; i++ {
		ch := make(chan stayerOutcome, 1)
		stayerCh[i] = ch
		id := r.ids[i]
		cl := &core.Client{
			Paths: 2,
			Dial: func(int) (net.Conn, error) {
				return net.DialTimeout("tcp", r.addr, 5*time.Second)
			},
			Join: &core.Join{StreamID: id, Token: newToken()},
		}
		go func() {
			tr, err := cl.Run()
			ch <- stayerOutcome{tr, err}
		}()
	}
	settleDeadline := time.Now().Add(10 * time.Second)
	for {
		total := 0
		for _, st := range reg.Stats().Streams {
			total += st.Hub.Subscribers
		}
		if total >= cfg.Streams {
			break
		}
		if time.Now().After(settleDeadline) {
			return nil, fmt.Errorf("chaos: stayers failed to attach: %+v", reg.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Execute the seeded schedule. Halfway in, stream 0 is ended: from then
	// on its joins must answer stream-ended while the siblings keep taking
	// (and refusing) churn exactly as before.
	evs := ChurnSchedule(cfg.Seed, cfg.Duration, cfg.Streams, cfg.MeanGap)
	start := time.Now()
	half := cfg.Duration / 2
	ended := false
	prev := make(map[string]hub.Stats)
	for _, st := range reg.Stats().Streams {
		prev[st.ID] = st.Hub
	}
	for _, ev := range evs {
		if d := time.Until(start.Add(ev.At)); d > 0 {
			time.Sleep(d)
		}
		if !ended && time.Since(start) >= half {
			if err := reg.End(r.ids[0]); err != nil {
				r.violatef("mid-run End(%s): %v", r.ids[0], err)
			}
			delete(prev, r.ids[0])
			ended = true
			r.logf("ended %s mid-run", r.ids[0])
		}
		id := r.ids[ev.Stream]
		wantEnded := ended && ev.Stream == 0
		switch ev.Kind {
		case ChurnJoin:
			r.probes.Add(1)
			go func() {
				defer r.probes.Done()
				r.probeJoin(id, ev.Hold, wantEnded)
			}()
		case ChurnBurst:
			var burst sync.WaitGroup
			for i := 0; i < ev.Size; i++ {
				burst.Add(1)
				go func() {
					defer burst.Done()
					r.probeJoin(id, 0, wantEnded)
				}()
			}
			burst.Wait()
		case ChurnBreather:
		}
		rep.Events++
		prev = r.checkInvariants(prev)
	}
	r.probes.Wait()
	rep.Final = reg.Stats()

	// Graceful registry-wide drain: fresh joins answer draining, then every
	// live path gets its end marker.
	reg.BeginDrain()
	if err := r.probeOutcome(r.ids[1]); !errors.Is(err, core.ErrDraining) {
		r.violatef("join while draining: got %v, want ErrDraining", err)
	}
	rep.Drained = reg.Drain(10 * time.Second)
	if !rep.Drained {
		r.violatef("registry drain missed its 10s deadline")
	}
	for i, ch := range stayerCh {
		id := r.ids[i]
		select {
		case out := <-ch:
			rep.Stayers[id] = r.checkStayerTrace(id, out.tr, out.err)
		case <-time.After(15 * time.Second):
			r.violatef("stayer on %s never finished", id)
			rep.Stayers[id] = StayerResult{Err: "result timeout"}
		}
	}

	reg.Close()
	<-serveDone
	settleDeadline = time.Now().Add(3 * time.Second)
	for {
		rep.GoroutinesEnd = runtime.NumGoroutine()
		if rep.GoroutinesEnd <= rep.GoroutinesStart+2 || time.Now().After(settleDeadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if rep.GoroutinesEnd > rep.GoroutinesStart+2 {
		r.violatef("goroutines leaked: %d at start, %d after teardown",
			rep.GoroutinesStart, rep.GoroutinesEnd)
	}

	rep.Joins = r.joins.Load()
	rep.Leaves = r.leaves.Load()
	rep.Rejected = r.rejected.Load()
	r.mu.Lock()
	rep.Violations = append(rep.Violations, r.violations...)
	r.mu.Unlock()
	return rep, nil
}

// probeJoin runs one churn client against stream id. wantEnded asserts the
// join is answered with the stream-ended reject (the stream was ended
// mid-run); otherwise the join must be admitted or carry a typed reject —
// silence or a bare connection error is a violation either way.
func (r *multiRunner) probeJoin(id string, hold time.Duration, wantEnded bool) {
	conn, err := net.DialTimeout("tcp", r.addr, 5*time.Second)
	if err != nil {
		r.violatef("churn join dial: %v", err)
		return
	}
	defer conn.Close()
	if err := core.WriteJoin(conn, core.Join{StreamID: id, Token: newToken()}); err != nil {
		r.violatef("churn join write: %v", err)
		return
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	_, _, err = core.ReadStreamHeader(conn)
	switch {
	case wantEnded:
		if !errors.Is(err, core.ErrStreamOver) {
			r.violatef("join to ended %s: got %v, want ErrStreamOver", id, err)
			return
		}
		r.rejected.Add(1)
	case err == nil:
		r.joins.Add(1)
		if hold > 0 {
			conn.SetReadDeadline(time.Now().Add(hold))
			buf := make([]byte, 4096)
			for {
				if _, err := conn.Read(buf); err != nil {
					break
				}
			}
			r.leaves.Add(1)
		}
	case errors.Is(err, core.ErrRejected):
		r.rejected.Add(1)
	default:
		r.violatef("join to %s got an untyped outcome: %v", id, err)
	}
}

// probeOutcome performs one join against id and returns the raw outcome.
func (r *multiRunner) probeOutcome(id string) error {
	conn, err := net.DialTimeout("tcp", r.addr, 5*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := core.WriteJoin(conn, core.Join{StreamID: id, Token: newToken()}); err != nil {
		return err
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	_, _, err = core.ReadStreamHeader(conn)
	return err
}

// checkInvariants asserts the registry-wide guarantees against a fresh
// snapshot: every live hub under its byte budget, the registry-wide
// subscriber cap held, and no per-stream counter regressing while its
// stream lives. It returns the per-stream snapshots for the next round.
func (r *multiRunner) checkInvariants(prev map[string]hub.Stats) map[string]hub.Stats {
	st := r.reg.Stats()
	total := 0
	next := make(map[string]hub.Stats, len(st.Streams))
	for _, ss := range st.Streams {
		total += ss.Hub.Subscribers
		if r.cfg.MaxBytes > 0 && ss.Hub.BytesHeld > r.cfg.MaxBytes {
			r.violatef("%s: BytesHeld %d exceeds MaxBytes %d", ss.ID, ss.Hub.BytesHeld, r.cfg.MaxBytes)
		}
		if p, ok := prev[ss.ID]; ok {
			if ss.Hub.Generated < p.Generated || ss.Hub.Sent < p.Sent ||
				ss.Hub.Dropped < p.Dropped || ss.Hub.Rejected < p.Rejected ||
				ss.Hub.Shed < p.Shed || ss.Hub.Evicted < p.Evicted {
				r.violatef("%s: hub counters regressed: %+v -> %+v", ss.ID, p, ss.Hub)
			}
		}
		if ss.Hub.Pool.DoublePuts != 0 || ss.Hub.Pool.PoisonTrips != 0 {
			r.violatef("%s: payload pool integrity violated (double put or use-after-put): %+v", ss.ID, ss.Hub.Pool)
		}
		next[ss.ID] = ss.Hub
	}
	// The registry cap is approximate under concurrent handshakes (each
	// hub's own cap is the strict one), so allow in-flight headroom of one
	// burst before calling it a violation.
	if r.cfg.MaxSubscribers > 0 && total > r.cfg.MaxSubscribers+8 {
		r.violatef("%d subscribers far exceed registry MaxSubscribers %d", total, r.cfg.MaxSubscribers)
	}
	return next
}

// checkStayerTrace turns one stayer's trace into a result, recording a
// violation unless its stream was perfectly conserved from its join to its
// end marker.
func (r *multiRunner) checkStayerTrace(id string, tr *core.Trace, err error) StayerResult {
	res := StayerResult{}
	if err != nil {
		res.Err = err.Error()
	}
	if tr == nil {
		r.violatef("stayer on %s: no trace (%v)", id, err)
		return res
	}
	res.Expected = tr.Expected
	res.Received = int64(len(tr.Arrivals))
	seen := make(map[uint32]bool, len(tr.Arrivals))
	for _, a := range tr.Arrivals {
		if int64(a.Pkt) >= tr.Expected {
			r.violatef("stayer on %s: packet %d outside announced range %d", id, a.Pkt, tr.Expected)
			return res
		}
		if seen[a.Pkt] {
			r.violatef("stayer on %s: packet %d delivered twice", id, a.Pkt)
			return res
		}
		seen[a.Pkt] = true
	}
	if err != nil {
		r.violatef("stayer on %s: stream not conserved: %v", id, err)
		return res
	}
	if int64(len(seen)) != res.Expected {
		r.violatef("stayer on %s: %d distinct packets of %d expected", id, len(seen), res.Expected)
	}
	return res
}
