package chaos

import (
	"reflect"
	"testing"
	"time"
)

// TestChaosMultiStream soaks a registry serving four concurrent streams
// under the seeded multi-stream churn schedule: joins and bursts land
// across all stream ids, stream 0 is ended mid-run (its joiners must see
// the stream-ended reject while siblings keep serving), and every stayer —
// including the one on the ended stream — must finish with a perfectly
// conserved stream. The nightly CI soak runs the same engine via
// cmd/dmpchaos -multi for 30s under the race detector.
func TestChaosMultiStream(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	rep, err := RunMulti(MultiConfig{
		Seed:     1,
		Duration: 3 * time.Second,
		Streams:  4,
		MaxBytes: 24 << 10,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatalf("setup: %v", err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if t.Failed() {
		t.Fatalf("seed %d failed; rerun with: go run ./cmd/dmpchaos -multi -seed %d -duration 3s",
			rep.Seed, rep.Seed)
	}
	if rep.Events == 0 {
		t.Fatal("schedule executed no events")
	}
	if rep.Joins+rep.Rejected == 0 {
		t.Fatal("no churn joins were attempted")
	}
	if len(rep.Stayers) != 4 {
		t.Fatalf("expected 4 stayer results, got %d", len(rep.Stayers))
	}
	for id, s := range rep.Stayers {
		if s.Err != "" || s.Received != s.Expected {
			t.Errorf("stayer on %s: received %d of %d (%s)", id, s.Received, s.Expected, s.Err)
		}
	}
	// The mid-run End must have left exactly one tombstone at snapshot time
	// and three live siblings.
	if got := len(rep.Final.Streams); got != 3 {
		t.Errorf("live streams at teardown = %d, want 3", got)
	}
	if len(rep.Final.Ended) != 1 || rep.Final.Ended[0] != rep.EndedMid {
		t.Errorf("ended streams = %v, want [%s]", rep.Final.Ended, rep.EndedMid)
	}
	if !rep.Drained {
		t.Fatal("registry drain failed")
	}
}

// TestChurnScheduleReproduces pins the exported schedule contract both the
// multi-stream soak and the fanout benchmark rely on: same seed, same
// event-for-event schedule.
func TestChurnScheduleReproduces(t *testing.T) {
	a := ChurnSchedule(42, 2*time.Second, 4, 100*time.Millisecond)
	b := ChurnSchedule(42, 2*time.Second, 4, 100*time.Millisecond)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed drew different churn schedules")
	}
	if len(a) == 0 {
		t.Fatal("schedule is empty")
	}
	c := ChurnSchedule(43, 2*time.Second, 4, 100*time.Millisecond)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds drew identical schedules")
	}
	for i, ev := range a {
		if ev.Stream < 0 || ev.Stream >= 4 {
			t.Fatalf("event %d targets stream %d, want 0..3", i, ev.Stream)
		}
		if i > 0 && ev.At < a[i-1].At {
			t.Fatalf("event %d at %v before event %d at %v", i, ev.At, i-1, a[i-1].At)
		}
	}
}
