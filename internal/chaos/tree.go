package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sync/atomic"
	"time"

	"dmpstream/internal/core"
	"dmpstream/internal/emunet"
	"dmpstream/internal/hub"
	"dmpstream/internal/relay"
)

// treeStreamID names the tree-soak stream on the wire.
const treeStreamID = "chaos-tree"

// TreeConfig parameterizes one RunTree soak: an origin hub feeding Depth
// tiers of RelaysPerTier edge relays, with Leaves multipath subscribers
// dual-homed across the deepest tier.
type TreeConfig struct {
	// Seed drives every random decision. Same seed, same schedule.
	Seed int64
	// Duration is how long the fault schedule runs. Default 3s.
	Duration time.Duration
	// Mu is the origin stream rate in packets/second. Default 200.
	Mu float64
	// Payload is the packet payload size in bytes. Default 64.
	Payload int
	// RelaysPerTier is the fan-out width of every relay tier. Default 2.
	RelaysPerTier int
	// Depth is how many relay tiers sit between origin and leaves.
	// Default 2.
	Depth int
	// Leaves is the number of leaf subscribers. Each leaf runs two paths
	// homed on two different deepest-tier relays (one when the tier has a
	// single relay). Default 4.
	Leaves int
	// Kills caps how many mid-tier kill/restart events the schedule may
	// fire. Default 2.
	Kills int
	// MeanGap is the mean pause between fault events. Default 150ms.
	MeanGap time.Duration
	// Logf, when set, receives verbose progress lines.
	Logf func(format string, args ...any)
}

func (c TreeConfig) withDefaults() TreeConfig {
	if c.Duration == 0 {
		c.Duration = 3 * time.Second
	}
	if c.Mu == 0 {
		c.Mu = 200
	}
	if c.Payload == 0 {
		c.Payload = 64
	}
	if c.RelaysPerTier == 0 {
		c.RelaysPerTier = 2
	}
	if c.Depth == 0 {
		c.Depth = 2
	}
	if c.Leaves == 0 {
		c.Leaves = 4
	}
	if c.Kills == 0 {
		c.Kills = 2
	}
	if c.MeanGap == 0 {
		c.MeanGap = 150 * time.Millisecond
	}
	return c
}

// RelayReport is one relay's end-of-run conservation record.
type RelayReport struct {
	Tier       int    // 1 = attached to the origin
	Index      int    // position within the tier
	Restarts   int    // kill/restart events this slot absorbed
	State      string // final relay state (want "ended")
	Failovers  int64  // upstream candidate rotations
	Forwarded  int64  // packets republished into the local ring
	LateDrops  int64  // upstream duplicates discarded (dual-homing makes these large)
	GapSkips   int64  // sequences abandoned by the reorder buffer (want 0)
	Refused    int64  // publishes the local hub refused
	SourceGaps int64  // ring head jumps past unreceived sequences (want 0)
	HubSent    int64  // packets this relay's hub delivered downstream
	HubDropped int64  // packets its subscribers lost to lag/gaps
	Pool       hub.PoolStats
}

// LeafReport is one leaf subscriber's conservation record. The leaf joins
// mid-stream at its relays' ring tail, so conservation is Received ==
// Expected - MinPkt: every absolute sequence from its first packet to the
// end marker, exactly once.
type LeafReport struct {
	Received int64  // distinct packets delivered
	Expected int64  // end-marker absolute head
	MinPkt   int64  // first packet the leaf caught
	BadBytes int64  // packets whose payload mismatched the origin pattern
	Err      string // path errors, informational once conservation holds
}

// TreeReport is the outcome of one RunTree soak. The run passed iff
// Violations is empty.
type TreeReport struct {
	Seed            int64
	Events          int // schedule events executed
	Severs          int // origin↔tier-1 sever events fired
	Drops           int // origin↔tier-1 reset events fired
	Kills           int // relay kill/restart events fired
	Relays          []RelayReport
	LeafReports     []LeafReport
	Origin          hub.Stats
	Drained         bool
	GoroutinesStart int
	GoroutinesEnd   int
	Violations      []string
}

// relaySlot is one position in the tree: its address and upstream ranking
// survive kill/restart, the relay incarnation behind them changes.
type relaySlot struct {
	tier, idx int
	addr      string   // stable listen address, rebound on restart
	upstreams []string // ranked candidates, stable across restarts
	token     core.Token
	seed      int64
	r         *relay.Relay
	ln        net.Listener
	restarts  int
	prev      relay.Stats // last snapshot; reset to zero on restart (fresh epoch)
}

// treeRunner carries one tree soak's state. Slots are owned by the single
// schedule goroutine; only the violations list is shared.
type treeRunner struct {
	cfg    TreeConfig
	origin *hub.Hub
	slots  [][]*relaySlot // [tier][index]
	rep    *TreeReport
}

func (t *treeRunner) violatef(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	t.rep.Violations = append(t.rep.Violations, msg)
	t.logf("VIOLATION: %s", msg)
}

func (t *treeRunner) logf(format string, args ...any) {
	if t.cfg.Logf != nil {
		t.cfg.Logf(format, args...)
	}
}

// treeFill is the origin's deterministic payload pattern; leaves re-derive
// it from the absolute packet number to prove byte-exactness end to end.
func treeFill(pkt uint32, buf []byte) {
	for i := range buf {
		buf[i] = byte(uint32(i)*2654435761 + pkt*97 + 13)
	}
}

// newTreeRelay builds one relay incarnation for a slot.
func (t *treeRunner) newTreeRelay(s *relaySlot) (*relay.Relay, error) {
	return relay.New(relay.Config{
		Upstreams: s.upstreams,
		StreamID:  treeStreamID,
		Paths:     2,
		Token:     s.token,
		Redial: core.RedialPolicy{
			Base: 50 * time.Millisecond, Max: 400 * time.Millisecond,
			Jitter: 0.3, Multiplier: 1.6, Seed: s.seed,
		},
		// The orphan grace must never fire mid-soak: every fault here is
		// transient, and a premature orphan verdict would end the subtree.
		OrphanGrace:   30 * time.Second,
		ReorderWindow: 512,
		Hub: hub.Config{
			LagWindow:       2048,
			PathWriteBuffer: 4096,
			ReattachGrace:   2 * time.Second,
			ResendWindow:    256,
			MaxBytes:        4 << 20,
			JoinTimeout:     2 * time.Second,
			PoisonPool:      true,
		},
	})
}

// restartSlot is the kill/restart event: the incarnation dies taking every
// connection with it, then a new one rebinds the same address with the
// same token — children and leaves redial the unchanged address, and the
// upstream re-attach (token preserved, inside the grace) replays the dead
// paths' resend windows.
func (t *treeRunner) restartSlot(s *relaySlot) {
	t.logf("kill/restart relay tier %d idx %d (addr %s)", s.tier, s.idx, s.addr)
	s.r.Close()
	_ = s.ln.Close()
	var ln net.Listener
	var err error
	for i := 0; i < 100; i++ {
		ln, err = net.Listen("tcp", s.addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.violatef("relay tier %d idx %d: rebind %s: %v", s.tier, s.idx, s.addr, err)
		return
	}
	nr, err := t.newTreeRelay(s)
	if err != nil {
		_ = ln.Close()
		t.violatef("relay tier %d idx %d: restart: %v", s.tier, s.idx, err)
		return
	}
	s.r, s.ln = nr, ln
	s.restarts++
	s.prev = relay.Stats{} // fresh incarnation, fresh counter epoch
	go func() { _ = nr.Serve(ln) }()
}

// checkTreeInvariants walks every tier after an event: byte budgets hold,
// counters are monotone within an incarnation, no relay is orphaned, and
// the payload pools are intact (DoublePuts == PoisonTrips == 0).
func (t *treeRunner) checkTreeInvariants(prevOrigin hub.Stats) hub.Stats {
	ost := t.origin.Stats()
	if ost.BytesHeld > 4<<20 {
		t.violatef("origin BytesHeld %d exceeds budget", ost.BytesHeld)
	}
	if ost.Generated < prevOrigin.Generated || ost.Sent < prevOrigin.Sent ||
		ost.Dropped < prevOrigin.Dropped {
		t.violatef("origin counters regressed")
	}
	if ost.Pool.DoublePuts != 0 || ost.Pool.PoisonTrips != 0 {
		t.violatef("origin pool integrity: %+v", ost.Pool)
	}
	for _, tier := range t.slots {
		for _, s := range tier {
			st := s.r.Stats()
			if st.State == relay.StateOrphaned {
				t.violatef("relay tier %d idx %d orphaned mid-soak", s.tier, s.idx)
			}
			if st.Forwarded < s.prev.Forwarded || st.LateDrops < s.prev.LateDrops ||
				st.GapSkips < s.prev.GapSkips || st.Failovers < s.prev.Failovers {
				t.violatef("relay tier %d idx %d counters regressed", s.tier, s.idx)
			}
			if st.HubReady {
				if st.Hub.Pool.DoublePuts != 0 || st.Hub.Pool.PoisonTrips != 0 {
					t.violatef("relay tier %d idx %d pool integrity: %+v", s.tier, s.idx, st.Hub.Pool)
				}
				if st.Hub.BytesHeld > 4<<20 {
					t.violatef("relay tier %d idx %d BytesHeld %d exceeds budget",
						s.tier, s.idx, st.Hub.BytesHeld)
				}
			}
			s.prev = st
		}
	}
	return ost
}

// RunTree executes one fault-tolerant distribution-tree soak: origin →
// Depth tiers of relays → dual-homed leaves, with scripted severs and
// resets on the origin↔tier-1 paths and kill/restart events on random
// relays, then a cascading graceful drain. The returned error covers only
// setup failures; everything the chaos uncovers lands in Violations.
func RunTree(cfg TreeConfig) (*TreeReport, error) {
	cfg = cfg.withDefaults()
	rep := &TreeReport{Seed: cfg.Seed, GoroutinesStart: runtime.NumGoroutine()}
	t := &treeRunner{cfg: cfg, rep: rep}
	rng := rand.New(rand.NewSource(cfg.Seed))

	origin, err := hub.New(hub.Config{
		Stream:          core.Config{Mu: cfg.Mu, PayloadSize: cfg.Payload, Count: 1 << 40, Fill: treeFill},
		StreamID:        treeStreamID,
		LagWindow:       2048,
		PathWriteBuffer: 4096,
		ReattachGrace:   2 * time.Second,
		ResendWindow:    256,
		MaxBytes:        4 << 20,
		JoinTimeout:     2 * time.Second,
		PoisonPool:      true,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: origin: %w", err)
	}
	defer origin.Close()
	t.origin = origin
	oln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos: origin listen: %w", err)
	}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		_ = origin.Serve(oln)
	}()
	originAddr := oln.Addr().String()

	// One emunet fault relay per tier-1 relay: the severable origin↔relay
	// path. Each tier-1 relay ranks it first with the direct address as
	// the failover candidate.
	emus := make([]*emunet.Relay, cfg.RelaysPerTier)
	for i := range emus {
		emus[i], err = emunet.Listen("127.0.0.1:0", originAddr, emunet.PathConfig{
			Downstream: true,
			Delay:      2 * time.Millisecond,
			Seed:       cfg.Seed + int64(i),
		})
		if err != nil {
			return nil, fmt.Errorf("chaos: emunet %d: %w", i, err)
		}
		defer emus[i].Close()
	}

	// Build the tiers top-down. Every relay (and leaf) is dual-homed on
	// two distinct parents where the width allows, so a single kill or
	// sever never cuts the only copy of the stream.
	t.slots = make([][]*relaySlot, cfg.Depth)
	for tier := 1; tier <= cfg.Depth; tier++ {
		t.slots[tier-1] = make([]*relaySlot, cfg.RelaysPerTier)
		for i := 0; i < cfg.RelaysPerTier; i++ {
			tok, err := core.NewToken()
			if err != nil {
				return nil, fmt.Errorf("chaos: token: %w", err)
			}
			var ups []string
			if tier == 1 {
				ups = []string{emus[i].Addr(), originAddr}
			} else {
				parents := t.slots[tier-2]
				ups = []string{
					parents[i%len(parents)].addr,
					parents[(i+1)%len(parents)].addr,
				}
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return nil, fmt.Errorf("chaos: relay listen: %w", err)
			}
			s := &relaySlot{
				tier: tier, idx: i,
				addr:      ln.Addr().String(),
				upstreams: ups,
				token:     tok,
				seed:      cfg.Seed + int64(tier)*100 + int64(i),
				ln:        ln,
			}
			r, err := t.newTreeRelay(s)
			if err != nil {
				_ = ln.Close()
				return nil, fmt.Errorf("chaos: relay tier %d idx %d: %w", tier, i, err)
			}
			s.r = r
			go func() { _ = r.Serve(ln) }()
			t.slots[tier-1][i] = s
		}
	}
	defer func() {
		for _, tier := range t.slots {
			for _, s := range tier {
				s.r.Close()
				_ = s.ln.Close()
			}
		}
	}()

	// Wait for every relay's feed before unleashing faults.
	for _, tier := range t.slots {
		for _, s := range tier {
			select {
			case <-s.r.Ready():
			case <-time.After(10 * time.Second):
				return nil, fmt.Errorf("chaos: relay tier %d idx %d never saw its upstream", s.tier, s.idx)
			}
		}
	}

	// Leaves: dual-homed multipath subscribers on the deepest tier.
	bottom := t.slots[cfg.Depth-1]
	type leafOutcome struct {
		tr   *core.Trace
		errs []error
	}
	leafCh := make([]chan leafOutcome, cfg.Leaves)
	leafSeen := make([]atomic.Int64, cfg.Leaves)
	leafBad := make([]atomic.Int64, cfg.Leaves)
	for i := 0; i < cfg.Leaves; i++ {
		tok, err := core.NewToken()
		if err != nil {
			return nil, fmt.Errorf("chaos: token: %w", err)
		}
		ch := make(chan leafOutcome, 1)
		leafCh[i] = ch
		i := i
		cl := &core.Client{
			Paths: 2,
			Dial: func(k int) (net.Conn, error) {
				return net.DialTimeout("tcp", bottom[(i+k)%len(bottom)].addr, 5*time.Second)
			},
			Join: &core.Join{StreamID: treeStreamID, Token: tok, Flags: core.JoinFlagAbsolute},
			Policy: core.RedialPolicy{
				Base: 50 * time.Millisecond, Max: 500 * time.Millisecond,
				Jitter: 0.3, Multiplier: 1.6, Seed: cfg.Seed + 2000 + int64(i),
			},
		}
		rec := core.NewReceiver(core.ReceiverOptions{
			OnPacket: func(pkt uint32, _ int64, payload []byte) {
				want := make([]byte, len(payload))
				treeFill(pkt, want)
				for j := range payload {
					if payload[j] != want[j] {
						leafBad[i].Add(1)
						break
					}
				}
				leafSeen[i].Add(1)
			},
		})
		go func() {
			errs := cl.RunWith(rec)
			ch <- leafOutcome{rec.Trace(), errs}
		}()
	}
	settleDeadline := time.Now().Add(10 * time.Second)
	for i := range leafSeen {
		for leafSeen[i].Load() == 0 {
			if time.Now().After(settleDeadline) {
				return nil, fmt.Errorf("chaos: leaf %d never received a packet", i)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// The fault schedule: seeded severs/resets on the origin↔tier-1 paths
	// and bounded kill/restart events, invariants re-checked tree-wide
	// after every event.
	flat := make([]*relaySlot, 0, cfg.Depth*cfg.RelaysPerTier)
	for _, tier := range t.slots {
		flat = append(flat, tier...)
	}
	deadline := time.Now().Add(cfg.Duration)
	prevOrigin := origin.Stats()
	var lastKill time.Time
	for time.Now().Before(deadline) {
		gap := time.Duration(rng.ExpFloat64() * float64(cfg.MeanGap))
		if gap > 500*time.Millisecond {
			gap = 500 * time.Millisecond
		}
		time.Sleep(gap)
		switch pick := rng.Intn(10); {
		case pick < 4: // sever or reset an origin↔tier-1 path
			e := emus[rng.Intn(len(emus))]
			if rng.Intn(2) == 0 {
				e.Sever()
				rep.Severs++
				t.logf("sever origin path via emunet %s", e.Addr())
			} else {
				e.Drop()
				rep.Drops++
				t.logf("reset origin path via emunet %s", e.Addr())
			}
		case pick < 6 && rep.Kills < cfg.Kills &&
			time.Until(deadline) > 700*time.Millisecond &&
			time.Since(lastKill) > 400*time.Millisecond:
			t.restartSlot(flat[rng.Intn(len(flat))])
			rep.Kills++
			lastKill = time.Now()
		default: // breather: invariants only
		}
		rep.Events++
		prevOrigin = t.checkTreeInvariants(prevOrigin)
	}

	// Cascading graceful drain: the origin closes admission (verified with
	// a typed draining reject), then ends the stream; the end markers
	// propagate tier by tier down to every leaf.
	probe, err := net.DialTimeout("tcp", originAddr, 5*time.Second)
	if err == nil {
		origin.BeginDrain()
		ptok, terr := core.NewToken()
		if terr != nil {
			_ = probe.Close()
			return nil, fmt.Errorf("chaos: token: %w", terr)
		}
		_ = probe.SetReadDeadline(time.Now().Add(5 * time.Second))
		if jerr := core.WriteJoin(probe, core.Join{StreamID: treeStreamID, Token: ptok}); jerr == nil {
			if _, _, herr := core.ReadStreamHeader(probe); !errors.Is(herr, core.ErrDraining) {
				t.violatef("join while draining: got %v, want ErrDraining", herr)
			}
		}
		_ = probe.Close()
	} else {
		t.violatef("drain probe dial: %v", err)
	}
	rep.Drained = origin.Drain(10 * time.Second)
	if !rep.Drained {
		t.violatef("origin drain missed its 10s deadline")
	}

	// Every leaf must end with an exactly conserved stream: each absolute
	// sequence from its first packet through the end marker, once.
	for i, ch := range leafCh {
		lr := LeafReport{Err: "result timeout"}
		select {
		case out := <-ch:
			lr = t.checkLeaf(i, out.tr, out.errs)
		case <-time.After(15 * time.Second):
			t.violatef("leaf %d never finished", i)
		}
		lr.BadBytes = leafBad[i].Load()
		if lr.BadBytes != 0 {
			t.violatef("leaf %d: %d byte-mismatched packets", i, lr.BadBytes)
		}
		rep.LeafReports = append(rep.LeafReports, lr)
	}

	// Harvest the per-tier conservation records, then tear everything down
	// and require the goroutine count to settle back to baseline.
	for _, tier := range t.slots {
		for _, s := range tier {
			st := s.r.Stats()
			rr := RelayReport{
				Tier: s.tier, Index: s.idx, Restarts: s.restarts,
				State: st.State.String(), Failovers: st.Failovers,
				Forwarded: st.Forwarded, LateDrops: st.LateDrops,
				GapSkips: st.GapSkips, Refused: st.Refused,
			}
			if st.HubReady {
				rr.SourceGaps = st.Hub.SourceGaps
				rr.HubSent = st.Hub.Sent
				rr.HubDropped = st.Hub.Dropped
				rr.Pool = st.Hub.Pool
			}
			if st.State != relay.StateEnded {
				t.violatef("relay tier %d idx %d finished in state %v, want ended", s.tier, s.idx, st.State)
			}
			rep.Relays = append(rep.Relays, rr)
			s.r.Close()
			_ = s.ln.Close()
		}
	}
	rep.Origin = origin.Stats()
	origin.Close()
	<-serveDone
	for _, e := range emus {
		_ = e.Close()
	}
	settleDeadline = time.Now().Add(3 * time.Second)
	for {
		rep.GoroutinesEnd = runtime.NumGoroutine()
		if rep.GoroutinesEnd <= rep.GoroutinesStart+2 || time.Now().After(settleDeadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if rep.GoroutinesEnd > rep.GoroutinesStart+2 {
		t.violatef("goroutines leaked: %d at start, %d after teardown",
			rep.GoroutinesStart, rep.GoroutinesEnd)
	}
	return rep, nil
}

// checkLeaf judges one leaf's trace: an end marker must have arrived, and
// the distinct-packet count must equal the announced absolute head minus
// the leaf's catch-up start — exact conservation, no gap, no loss. Path
// errors alone are not violations (paths flap by design); losing bytes is.
func (t *treeRunner) checkLeaf(i int, tr *core.Trace, errs []error) LeafReport {
	lr := LeafReport{}
	for _, err := range errs {
		if err != nil {
			lr.Err = err.Error()
			break
		}
	}
	if tr == nil || tr.Expected <= 0 {
		t.violatef("leaf %d: no end marker (errs %v)", i, errs)
		return lr
	}
	lr.Expected = tr.Expected
	lr.Received = int64(len(tr.Arrivals))
	lr.MinPkt = tr.Expected
	for _, a := range tr.Arrivals {
		if int64(a.Pkt) >= tr.Expected {
			t.violatef("leaf %d: packet %d outside announced range %d", i, a.Pkt, tr.Expected)
			return lr
		}
		if int64(a.Pkt) < lr.MinPkt {
			lr.MinPkt = int64(a.Pkt)
		}
	}
	if lr.Received != lr.Expected-lr.MinPkt {
		t.violatef("leaf %d: stream not conserved: %d distinct packets, want %d (expected %d - first %d)",
			i, lr.Received, lr.Expected-lr.MinPkt, lr.Expected, lr.MinPkt)
	}
	return lr
}
