// Package chaos is the randomized soak harness for the broadcast hub: it
// stands up a real hub behind emunet fault relays and drives a seeded
// random schedule of joins, abrupt leaves, overload join bursts, path
// flaps and stalls against it, checking invariants after every event.
//
// The harness distinguishes three client populations:
//
//   - Stayers subscribe for the whole run through two fault-injected
//     relay paths with a redial policy, and must end with a perfectly
//     conserved stream: every packet generated since their join arrives
//     exactly once, despite drops, stalls and severs on their paths.
//   - Leavers join directly, read for a random hold, and hang up
//     abruptly — the churn that exercises re-attach grace and resend
//     bookkeeping.
//   - Burst joiners arrive in simultaneous groups against a capped hub;
//     every one of them must observe a defined outcome: the stream
//     header (admitted) or a typed DMPR reject. An EOF or reset in the
//     handshake is a protocol violation.
//
// A fourth participant, the hog, joins and never reads, so the resource
// governor's degradation ladder runs against it for the whole soak.
//
// Invariants checked after every event: BytesHeld stays under MaxBytes,
// admission caps hold, and hub counters never regress. At teardown the
// harness drains the hub gracefully (asserting the draining reject on a
// late join), joins every goroutine it started, and requires the
// process's goroutine count to settle back to its baseline — the leak
// check that makes the soak meaningful for long durations.
//
// All randomness flows from Config.Seed, so a failing run is reproduced
// by its seed alone (modulo kernel scheduling, which the invariants are
// designed to tolerate).
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dmpstream/internal/core"
	"dmpstream/internal/emunet"
	"dmpstream/internal/hub"
)

// streamID names the soak stream on the wire.
const streamID = "chaos"

// Config parameterizes one soak run. The zero value of every field picks
// a sensible default; only Seed and Duration are commonly set.
type Config struct {
	// Seed drives every random decision of the run. Same seed, same
	// schedule.
	Seed int64
	// Duration is how long the event schedule runs (teardown and drain
	// come after). Default 5s.
	Duration time.Duration
	// Mu is the stream rate in packets/second. Default 300.
	Mu float64
	// Payload is the packet payload size in bytes. Default 64.
	Payload int
	// LagWindow is the hub ring size. Default 2048.
	LagWindow int
	// Stayers is the number of full-run multipath subscribers. Default 2.
	Stayers int
	// MaxSubscribers caps hub admission. Default Stayers+4 (the stayers,
	// the hog, and a little churn headroom — bursts are sized to overflow
	// it). Set negative for unlimited.
	MaxSubscribers int
	// MaxBytes is the hub's resource-governor budget. Default 96 KiB.
	// Set negative for unlimited.
	MaxBytes int64
	// Burst is how many joiners arrive in one overload burst. Default 6.
	Burst int
	// MeanGap is the mean pause between churn events. Default 120ms.
	MeanGap time.Duration
	// Logf, when set, receives verbose progress lines.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Duration == 0 {
		c.Duration = 5 * time.Second
	}
	if c.Mu == 0 {
		c.Mu = 300
	}
	if c.Payload == 0 {
		c.Payload = 64
	}
	if c.LagWindow == 0 {
		c.LagWindow = 2048
	}
	if c.Stayers == 0 {
		c.Stayers = 2
	}
	if c.MaxSubscribers == 0 {
		c.MaxSubscribers = c.Stayers + 4
	}
	if c.MaxSubscribers < 0 {
		c.MaxSubscribers = 0
	}
	if c.MaxBytes == 0 {
		c.MaxBytes = 96 << 10
	}
	if c.MaxBytes < 0 {
		c.MaxBytes = 0
	}
	if c.Burst == 0 {
		c.Burst = 6
	}
	if c.MeanGap == 0 {
		c.MeanGap = 120 * time.Millisecond
	}
	return c
}

// StayerResult is one stayer's end state.
type StayerResult struct {
	Received int64  // distinct packets delivered
	Expected int64  // packets generated since its join
	Err      string // "" when the stream completed
}

// Report is the outcome of a soak run. A run passed iff Violations is
// empty.
type Report struct {
	Seed            int64
	Events          int   // churn-schedule events executed
	Flaps           int   // drop+sever events scheduled on the relays
	Stalls          int   // stall events scheduled on the relays
	Joins           int64 // leaver/burst joins admitted
	Leaves          int64 // leavers that read and hung up
	Rejected        int64 // joins answered with a typed reject
	Stayers         []StayerResult
	Final           hub.Stats // snapshot taken just before the drain
	Drained         bool      // the graceful drain beat its deadline
	GoroutinesStart int
	GoroutinesEnd   int
	Violations      []string
}

// runner carries one soak run's state.
type runner struct {
	cfg  Config
	h    *hub.Hub
	addr string // hub's direct listen address

	joins    atomic.Int64
	leaves   atomic.Int64
	rejected atomic.Int64

	probes sync.WaitGroup // leaver/burst goroutines

	mu         sync.Mutex
	violations []string // guarded by mu
}

func (r *runner) violatef(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	r.mu.Lock()
	r.violations = append(r.violations, msg)
	r.mu.Unlock()
	r.logf("VIOLATION: %s", msg)
}

func (r *runner) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// Run executes one soak. The returned error covers only setup failures
// (ports, config); everything the chaos schedule itself uncovers lands
// in Report.Violations.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &runner{cfg: cfg}
	rep := &Report{Seed: cfg.Seed, GoroutinesStart: runtime.NumGoroutine()}
	rng := rand.New(rand.NewSource(cfg.Seed))

	h, err := hub.New(hub.Config{
		Stream:          core.Config{Mu: cfg.Mu, PayloadSize: cfg.Payload, Count: 1 << 40},
		StreamID:        streamID,
		LagWindow:       cfg.LagWindow,
		Policy:          hub.DropOldest,
		PathWriteBuffer: 4096,
		ReattachGrace:   2 * time.Second,
		MaxSubscribers:  cfg.MaxSubscribers,
		MaxBytes:        cfg.MaxBytes,
		JoinTimeout:     2 * time.Second,
		// Poison released payload buffers so a zero-copy sender writing
		// through a stale pin turns into a counted PoisonTrip instead of
		// silent frame corruption; checkInvariants gates on the counters.
		PoisonPool: true,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: hub: %w", err)
	}
	defer h.Close()
	r.h = h
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos: listen: %w", err)
	}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		_ = h.Serve(ln)
	}()
	r.addr = ln.Addr().String()

	// Two relay paths carry the stayers; the seeded fault schedules flap
	// and stall them for the whole run.
	relays := make([]*emunet.Relay, 2)
	timelines := make([]*emunet.Timeline, 2)
	for k := range relays {
		rel, err := emunet.Listen("127.0.0.1:0", r.addr, emunet.PathConfig{
			Downstream: true,
			Delay:      2 * time.Millisecond,
			Seed:       cfg.Seed + int64(k),
		})
		if err != nil {
			return nil, fmt.Errorf("chaos: relay %d: %w", k, err)
		}
		defer rel.Close()
		relays[k] = rel
		evs := emunet.RandomFaults(cfg.Seed+100+int64(k), cfg.Duration,
			cfg.Duration/8+50*time.Millisecond, 150*time.Millisecond)
		for _, ev := range evs {
			switch ev.Kind {
			case emunet.FaultDrop, emunet.FaultSever:
				rep.Flaps++
			case emunet.FaultStall:
				rep.Stalls++
			default:
				// FaultUnstall lifts a stall already counted above; it is
				// not itself an impairment event.
			}
		}
		r.logf("relay %d fault schedule: %s", k, emunet.FormatFaultScript(evs))
		timelines[k] = rel.Schedule(evs)
	}

	// The hog joins and never reads another byte: a standing target for
	// the resource governor.
	hogConn, err := r.dialJoin(newToken())
	if err != nil {
		return nil, fmt.Errorf("chaos: hog join: %w", err)
	}
	if _, _, err := core.ReadStreamHeader(hogConn); err != nil {
		_ = hogConn.Close()
		return nil, fmt.Errorf("chaos: hog admission: %w", err)
	}

	// Stayers: full-run multipath subscribers through the fault relays.
	type stayerOutcome struct {
		tr  *core.Trace
		err error
	}
	stayerCh := make([]chan stayerOutcome, cfg.Stayers)
	for i := 0; i < cfg.Stayers; i++ {
		ch := make(chan stayerOutcome, 1)
		stayerCh[i] = ch
		cl := &core.Client{
			Paths: 2,
			Dial: func(k int) (net.Conn, error) {
				return net.DialTimeout("tcp", relays[k%2].Addr(), 5*time.Second)
			},
			Join: &core.Join{StreamID: streamID, Token: newToken()},
			Policy: core.RedialPolicy{
				Base:       50 * time.Millisecond,
				Max:        500 * time.Millisecond,
				Jitter:     0.3,
				Seed:       cfg.Seed + 1000 + int64(i),
				Multiplier: 1.6,
			},
		}
		go func() {
			tr, err := cl.Run()
			ch <- stayerOutcome{tr, err}
		}()
	}

	// Wait until the standing population (stayers + hog) is attached, so
	// the churn schedule runs against a known baseline.
	settleDeadline := time.Now().Add(10 * time.Second)
	for h.Stats().Subscribers < cfg.Stayers+1 {
		if time.Now().After(settleDeadline) {
			return nil, fmt.Errorf("chaos: stayers failed to attach: %+v", h.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The churn schedule: seeded random leavers, overload bursts and
	// breathers, with the invariants re-checked after every event.
	deadline := time.Now().Add(cfg.Duration)
	prev := h.Stats()
	for time.Now().Before(deadline) {
		gap := time.Duration(rng.ExpFloat64() * float64(cfg.MeanGap))
		if gap > time.Second {
			gap = time.Second
		}
		time.Sleep(gap)
		switch pick := rng.Intn(10); {
		case pick < 5: // one leaver: join, read a while, hang up abruptly
			hold := time.Duration(50+rng.Intn(350)) * time.Millisecond
			r.probes.Add(1)
			go func() {
				defer r.probes.Done()
				r.probeJoin(hold)
			}()
		case pick < 8: // overload burst: simultaneous joiners past the caps
			var burst sync.WaitGroup
			for i := 0; i < cfg.Burst; i++ {
				burst.Add(1)
				go func() {
					defer burst.Done()
					r.probeJoin(0)
				}()
			}
			burst.Wait()
		default: // breather: invariants only
		}
		rep.Events++
		prev = r.checkInvariants(prev)
	}

	// Teardown: quiesce the fault schedules and churn before the drain.
	for _, tl := range timelines {
		tl.Stop()
	}
	for _, rel := range relays {
		rel.Unstall()
	}
	r.probes.Wait()
	rep.Final = h.Stats()

	// Graceful drain: admission must close with a typed verdict while the
	// live population finishes cleanly.
	h.BeginDrain()
	if err := r.probeOutcome(); !errors.Is(err, core.ErrDraining) {
		r.violatef("join while draining: got %v, want ErrDraining", err)
	}
	_ = hogConn.Close()
	rep.Drained = h.Drain(10 * time.Second)
	if !rep.Drained {
		r.violatef("graceful drain missed its 10s deadline")
	}
	for i, ch := range stayerCh {
		res := StayerResult{Err: "result timeout"}
		select {
		case out := <-ch:
			res = r.checkStayer(i, out.tr, out.err)
		case <-time.After(15 * time.Second):
			r.violatef("stayer %d never finished", i)
		}
		rep.Stayers = append(rep.Stayers, res)
	}

	// Full teardown, then the leak check: everything the run started must
	// be gone, or a long soak accumulates goroutines until it dies.
	h.Close()
	<-serveDone
	for _, rel := range relays {
		_ = rel.Close()
	}
	settleDeadline = time.Now().Add(3 * time.Second)
	for {
		rep.GoroutinesEnd = runtime.NumGoroutine()
		if rep.GoroutinesEnd <= rep.GoroutinesStart+2 || time.Now().After(settleDeadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if rep.GoroutinesEnd > rep.GoroutinesStart+2 {
		r.violatef("goroutines leaked: %d at start, %d after teardown",
			rep.GoroutinesStart, rep.GoroutinesEnd)
	}

	rep.Joins = r.joins.Load()
	rep.Leaves = r.leaves.Load()
	rep.Rejected = r.rejected.Load()
	r.mu.Lock()
	rep.Violations = append(rep.Violations, r.violations...)
	r.mu.Unlock()
	return rep, nil
}

// newToken draws a token, panicking only if the OS entropy pool is broken.
func newToken() core.Token {
	tok, err := core.NewToken()
	if err != nil {
		panic(err)
	}
	return tok
}

// dialJoin opens a direct connection to the hub and writes a join for tok.
func (r *runner) dialJoin(tok core.Token) (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", r.addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	if err := core.WriteJoin(conn, core.Join{StreamID: streamID, Token: tok}); err != nil {
		_ = conn.Close()
		return nil, err
	}
	return conn, nil
}

// probeJoin runs one churn client: join with a fresh token and classify
// the outcome. Admitted clients read for `hold` and then hang up without
// ceremony (hold 0 hangs up immediately — the burst-joiner shape). Every
// outcome other than admission or a typed reject is a violation: an
// overloaded hub must never answer a well-formed join with silence or a
// bare connection error.
func (r *runner) probeJoin(hold time.Duration) {
	conn, err := r.dialJoin(newToken())
	if err != nil {
		r.violatef("churn join dial: %v", err)
		return
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	_, _, err = core.ReadStreamHeader(conn)
	switch {
	case err == nil:
		r.joins.Add(1)
		if hold > 0 {
			conn.SetReadDeadline(time.Now().Add(hold))
			buf := make([]byte, 4096)
			for {
				if _, err := conn.Read(buf); err != nil {
					break
				}
			}
			r.leaves.Add(1)
		}
	case errors.Is(err, core.ErrRejected):
		r.rejected.Add(1)
	default:
		r.violatef("join got an untyped outcome: %v", err)
	}
}

// probeOutcome performs one join and returns the raw outcome error (nil
// when admitted; the connection is closed either way).
func (r *runner) probeOutcome() error {
	conn, err := r.dialJoin(newToken())
	if err != nil {
		return err
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	_, _, err = core.ReadStreamHeader(conn)
	return err
}

// checkInvariants asserts the hub's standing guarantees against a fresh
// snapshot and returns it for the next round's monotonicity check.
func (r *runner) checkInvariants(prev hub.Stats) hub.Stats {
	st := r.h.Stats()
	if r.cfg.MaxBytes > 0 && st.BytesHeld > r.cfg.MaxBytes {
		r.violatef("BytesHeld %d exceeds MaxBytes %d", st.BytesHeld, r.cfg.MaxBytes)
	}
	if r.cfg.MaxSubscribers > 0 && st.Subscribers > r.cfg.MaxSubscribers {
		r.violatef("%d subscribers exceed MaxSubscribers %d", st.Subscribers, r.cfg.MaxSubscribers)
	}
	if st.Generated < prev.Generated || st.Sent < prev.Sent ||
		st.Dropped < prev.Dropped || st.Rejected < prev.Rejected ||
		st.Shed < prev.Shed || st.Evicted < prev.Evicted {
		r.violatef("hub counters regressed: %+v -> %+v", prev, st)
	}
	if st.Pool.DoublePuts != 0 || st.Pool.PoisonTrips != 0 {
		r.violatef("payload pool integrity violated (double put or use-after-put): %+v", st.Pool)
	}
	return st
}

// checkStayer turns one stayer's trace into a result, recording a
// violation unless its stream was perfectly conserved: the run completed,
// every packet number is inside the announced range, and the number of
// distinct packets equals the number generated since its join.
func (r *runner) checkStayer(i int, tr *core.Trace, err error) StayerResult {
	res := StayerResult{}
	if err != nil {
		res.Err = err.Error()
	}
	if tr == nil {
		r.violatef("stayer %d: no trace (%v)", i, err)
		return res
	}
	res.Expected = tr.Expected
	res.Received = int64(len(tr.Arrivals))
	for _, a := range tr.Arrivals {
		if int64(a.Pkt) >= tr.Expected {
			r.violatef("stayer %d: packet %d outside announced range %d", i, a.Pkt, tr.Expected)
			return res
		}
	}
	if err != nil {
		r.violatef("stayer %d: stream not conserved: %v", i, err)
		return res
	}
	if res.Received != res.Expected {
		r.violatef("stayer %d: %d distinct packets of %d expected", i, res.Received, res.Expected)
	}
	return res
}
