// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine drives the packet-level network and TCP simulators that stand in
// for ns-2 in this reproduction. Time is kept as int64 nanoseconds so that
// runs are exactly reproducible for a given seed: there is no floating-point
// clock drift, and simultaneous events are broken by scheduling order.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is a simulation timestamp or duration in nanoseconds.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds converts a floating-point number of seconds to a Time.
func Seconds(s float64) Time { return Time(s * float64(Second)) }

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// event is a scheduled callback. seq breaks ties between events scheduled for
// the same instant: earlier-scheduled events run first, which keeps runs
// deterministic.
type event struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
	index    int // heap index, -1 when popped
}

// Timer is a handle to a scheduled event that can be canceled before it fires.
type Timer struct{ ev *event }

// Cancel prevents the timer's callback from running. Canceling an
// already-fired or already-canceled timer is a no-op. It reports whether the
// call actually canceled a pending event.
func (t *Timer) Cancel() bool {
	if t == nil || t.ev == nil || t.ev.canceled || t.ev.index < 0 {
		return false
	}
	t.ev.canceled = true
	return true
}

// Pending reports whether the timer is still scheduled to fire.
func (t *Timer) Pending() bool {
	return t != nil && t.ev != nil && !t.ev.canceled && t.ev.index >= 0
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Simulator is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; all entities in one simulation must share one goroutine.
type Simulator struct {
	now     Time
	events  eventHeap
	seq     uint64
	rng     *rand.Rand
	stopped bool
	nRun    uint64
}

// New returns a simulator with its clock at zero and a deterministic RNG
// seeded with seed.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulation time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// EventsRun returns the number of events executed so far (for tests and
// instrumentation).
func (s *Simulator) EventsRun() uint64 { return s.nRun }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a logic error in a protocol implementation.
func (s *Simulator) At(t Time, fn func()) *Timer {
	if t < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, s.now))
	}
	ev := &event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d nanoseconds from now.
func (s *Simulator) After(d Time, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.At(s.now+d, fn)
}

// Stop makes Run return after the currently executing event completes.
func (s *Simulator) Stop() { s.stopped = true }

// Run executes events in timestamp order until the clock would pass `until`,
// the event queue drains, or Stop is called. The clock is left at the time of
// the last executed event (or at `until` if the queue outlived it).
func (s *Simulator) Run(until Time) {
	s.stopped = false
	for len(s.events) > 0 && !s.stopped {
		next := s.events[0]
		if next.at > until {
			s.now = until
			return
		}
		heap.Pop(&s.events)
		if next.canceled {
			continue
		}
		s.now = next.at
		s.nRun++
		next.fn()
	}
	if len(s.events) == 0 && s.now < until {
		s.now = until
	}
}

// RunAll executes events until the queue drains or Stop is called.
func (s *Simulator) RunAll() {
	s.stopped = false
	for len(s.events) > 0 && !s.stopped {
		next := heap.Pop(&s.events).(*event)
		if next.canceled {
			continue
		}
		s.now = next.at
		s.nRun++
		next.fn()
	}
}

// Pending returns the number of scheduled (non-canceled) events.
func (s *Simulator) Pending() int {
	n := 0
	for _, ev := range s.events {
		if !ev.canceled {
			n++
		}
	}
	return n
}
