package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeConversion(t *testing.T) {
	if Seconds(1.5) != 1500*Millisecond {
		t.Fatalf("Seconds(1.5) = %v", Seconds(1.5))
	}
	if got := (250 * Millisecond).Seconds(); got != 0.25 {
		t.Fatalf("(250ms).Seconds() = %v", got)
	}
}

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var order []int
	s.At(30*Millisecond, func() { order = append(order, 3) })
	s.At(10*Millisecond, func() { order = append(order, 1) })
	s.At(20*Millisecond, func() { order = append(order, 2) })
	s.RunAll()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 30*Millisecond {
		t.Fatalf("clock = %v", s.Now())
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(Second, func() { order = append(order, i) })
	}
	s.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events ran out of scheduling order: %v", order)
		}
	}
}

func TestAfterRelative(t *testing.T) {
	s := New(1)
	var fired Time
	s.After(100*Millisecond, func() {
		s.After(50*Millisecond, func() { fired = s.Now() })
	})
	s.RunAll()
	if fired != 150*Millisecond {
		t.Fatalf("nested After fired at %v", fired)
	}
}

func TestRunUntilStopsClock(t *testing.T) {
	s := New(1)
	ran := false
	s.At(2*Second, func() { ran = true })
	s.Run(Second)
	if ran {
		t.Fatal("event beyond horizon ran")
	}
	if s.Now() != Second {
		t.Fatalf("clock = %v, want 1s", s.Now())
	}
	s.Run(3 * Second)
	if !ran {
		t.Fatal("event did not run on resumed Run")
	}
}

func TestRunEmptyQueueAdvancesToHorizon(t *testing.T) {
	s := New(1)
	s.Run(5 * Second)
	if s.Now() != 5*Second {
		t.Fatalf("clock = %v", s.Now())
	}
}

func TestTimerCancel(t *testing.T) {
	s := New(1)
	ran := false
	tm := s.At(Second, func() { ran = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending")
	}
	if !tm.Cancel() {
		t.Fatal("first cancel should succeed")
	}
	if tm.Cancel() {
		t.Fatal("second cancel should be a no-op")
	}
	s.RunAll()
	if ran {
		t.Fatal("canceled event ran")
	}
	if tm.Pending() {
		t.Fatal("canceled timer still pending")
	}
}

func TestCancelAfterFireIsNoop(t *testing.T) {
	s := New(1)
	tm := s.At(Second, func() {})
	s.RunAll()
	if tm.Cancel() {
		t.Fatal("cancel after fire should report false")
	}
}

func TestStopInsideEvent(t *testing.T) {
	s := New(1)
	ran2 := false
	s.At(Second, func() { s.Stop() })
	s.At(2*Second, func() { ran2 = true })
	s.RunAll()
	if ran2 {
		t.Fatal("event after Stop ran")
	}
	// A later Run resumes.
	s.Run(3 * Second)
	if !ran2 {
		t.Fatal("resume after Stop failed")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New(1)
	s.At(Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(0, func() {})
	})
	s.RunAll()
}

func TestNegativeAfterPanics(t *testing.T) {
	s := New(1)
	defer func() {
		if recover() == nil {
			t.Error("negative After did not panic")
		}
	}()
	s.After(-1, func() {})
}

func TestPendingCount(t *testing.T) {
	s := New(1)
	a := s.At(Second, func() {})
	s.At(2*Second, func() {})
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d", s.Pending())
	}
	a.Cancel()
	if s.Pending() != 1 {
		t.Fatalf("Pending after cancel = %d", s.Pending())
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func(seed int64) []Time {
		s := New(seed)
		var times []Time
		var step func()
		step = func() {
			times = append(times, s.Now())
			if len(times) < 50 {
				s.After(Time(s.Rand().Intn(1000)+1)*Microsecond, step)
			}
		}
		s.After(0, step)
		s.RunAll()
		return times
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d: %v != %v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if i >= len(c) || a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical event times")
	}
}

// Property: for any batch of events with random timestamps, execution order
// is a stable sort by timestamp.
func TestPropertyEventsRunInTimestampOrder(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 200 {
			raw = raw[:200]
		}
		s := New(7)
		type stamped struct {
			at  Time
			idx int
		}
		var want []stamped
		var got []stamped
		for i, r := range raw {
			at := Time(r % 1000)
			want = append(want, stamped{at, i})
			i := i
			s.At(at, func() { got = append(got, stamped{s.Now(), i}) })
		}
		sort.SliceStable(want, func(i, j int) bool { return want[i].at < want[j].at })
		s.RunAll()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: the clock never moves backwards during a run.
func TestPropertyClockMonotone(t *testing.T) {
	f := func(seed int64) bool {
		s := New(seed)
		last := Time(-1)
		ok := true
		var step func()
		n := 0
		step = func() {
			if s.Now() < last {
				ok = false
			}
			last = s.Now()
			n++
			if n < 100 {
				s.After(Time(s.Rand().Intn(100))*Microsecond, step)
			}
		}
		for i := 0; i < 5; i++ {
			s.After(Time(i)*Millisecond, step)
		}
		s.RunAll()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	s := New(1)
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			s.After(Microsecond, tick)
		}
	}
	b.ResetTimer()
	s.After(0, tick)
	s.RunAll()
}
