// Package trafficgen provides the background load used in the paper's ns
// validation: long-lived FTP flows and on/off HTTP flows sharing the
// bottleneck with the video streams (Table 1 configurations).
package trafficgen

import (
	"math"

	"dmpstream/internal/netsim"
	"dmpstream/internal/sim"
	"dmpstream/internal/tcpsim"
)

// FTP is a backlogged TCP source: it always has data to send, so it exercises
// the bottleneck exactly like the paper's FTP background flows.
type FTP struct {
	Conn *tcpsim.Conn
}

// NewFTP creates a backlogged flow. The caller wires Conn's paths, then calls
// Start.
func NewFTP(s *sim.Simulator, flow netsim.FlowID, cfg tcpsim.Config) *FTP {
	return &FTP{Conn: tcpsim.NewConn(s, flow, cfg)}
}

// Start begins transmission; the source refills the send buffer forever.
func (f *FTP) Start() {
	fill := func() {
		for f.Conn.Snd.CanWrite() {
			f.Conn.Snd.Write(nil)
		}
	}
	f.Conn.Snd.Writable = fill
	fill()
}

// HTTPConfig shapes an on/off web-like source. Transfer sizes are bounded
// Pareto (heavy-tailed, matching classic web workload models); think times
// between transfers are exponential. The defaults are calibrated so that the
// paper's Table 1 configurations measure loss rates and RTTs inside Table 2's
// ranges (the paper does not give its web-traffic parameters).
type HTTPConfig struct {
	MeanThink   float64 // seconds between transfers (default 12)
	MeanSizePkt float64 // mean transfer size in packets (default 5)
	ParetoShape float64 // tail index (default 1.5)
	MaxSizePkt  int     // truncation (default 200)
}

func (c HTTPConfig) withDefaults() HTTPConfig {
	if c.MeanThink == 0 {
		c.MeanThink = 12
	}
	if c.MeanSizePkt == 0 {
		c.MeanSizePkt = 5
	}
	if c.ParetoShape == 0 {
		c.ParetoShape = 1.5
	}
	if c.MaxSizePkt == 0 {
		c.MaxSizePkt = 200
	}
	return c
}

// HTTP is an on/off TCP source: think, transfer a heavy-tailed number of
// packets, repeat. Each transfer dials a fresh connection so slow start
// restarts, reproducing the burstiness of short web flows.
type HTTP struct {
	sim  *sim.Simulator
	cfg  HTTPConfig
	dial func() *tcpsim.Conn // returns a new, fully wired connection

	Transfers int64
	PktsSent  int64
}

// NewHTTP creates an on/off source. dial must return a fresh connection with
// forward and reverse paths already attached; it is called once per transfer.
func NewHTTP(s *sim.Simulator, cfg HTTPConfig, dial func() *tcpsim.Conn) *HTTP {
	return &HTTP{sim: s, cfg: cfg.withDefaults(), dial: dial}
}

// Start schedules the first think period.
func (h *HTTP) Start() {
	h.sim.After(h.thinkTime(), h.transfer)
}

func (h *HTTP) thinkTime() sim.Time {
	return sim.Seconds(h.sim.Rand().ExpFloat64() * h.cfg.MeanThink)
}

// paretoSize draws a bounded-Pareto transfer size with the configured mean.
func (h *HTTP) paretoSize() int64 {
	// For Pareto(xm, a): mean = a*xm/(a-1)  =>  xm = mean*(a-1)/a.
	a := h.cfg.ParetoShape
	xm := h.cfg.MeanSizePkt * (a - 1) / a
	if xm < 1 {
		xm = 1
	}
	u := h.sim.Rand().Float64()
	size := int64(xm / math.Pow(1-u, 1/a))
	if size < 1 {
		size = 1
	}
	if size > int64(h.cfg.MaxSizePkt) {
		size = int64(h.cfg.MaxSizePkt)
	}
	return size
}

func (h *HTTP) transfer() {
	conn := h.dial()
	n := h.paretoSize()
	h.Transfers++
	var written int64
	fill := func() {
		for written < n && conn.Snd.CanWrite() {
			conn.Snd.Write(nil)
			written++
			h.PktsSent++
		}
	}
	conn.Snd.Writable = fill
	conn.Snd.OnAllAcked = func() {
		if written == n {
			conn.Snd.Writable = nil // transfer complete; release the source
			conn.Snd.OnAllAcked = nil
			h.sim.After(h.thinkTime(), h.transfer)
		}
	}
	fill()
}
