package trafficgen

import (
	"testing"

	"dmpstream/internal/netsim"
	"dmpstream/internal/sim"
	"dmpstream/internal/tcpsim"
)

func TestFTPSaturatesLink(t *testing.T) {
	s := sim.New(1)
	f := NewFTP(s, 1, tcpsim.Config{})
	fwd := netsim.NewLink(s, "fwd", 1.0, 10*sim.Millisecond, 50, nil)
	rev := netsim.NewLink(s, "rev", 100, 10*sim.Millisecond, 1<<20, nil)
	f.Conn.Wire(netsim.NewPath(f.Conn.Rcv, fwd), netsim.NewPath(f.Conn.Snd, rev))
	f.Start()
	s.Run(60 * sim.Second)
	goodput := float64(f.Conn.Rcv.Delivered) * 1500 * 8 / s.Now().Seconds()
	if goodput < 0.85e6 || goodput > 1.01e6 {
		t.Fatalf("FTP goodput %.2f Mbps on a 1 Mbps link", goodput/1e6)
	}
}

func TestParetoSizeStatistics(t *testing.T) {
	s := sim.New(2)
	h := &HTTP{sim: s, cfg: HTTPConfig{}.withDefaults()}
	var sum, n float64
	minV, maxV := int64(1<<62), int64(0)
	for i := 0; i < 20000; i++ {
		v := h.paretoSize()
		sum += float64(v)
		n++
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	mean := sum / n
	// Truncation pulls the mean slightly below the nominal 5.
	if mean < 2.5 || mean > 7.5 {
		t.Fatalf("mean transfer size %.2f, want ≈5", mean)
	}
	if minV < 1 {
		t.Fatalf("size %d < 1", minV)
	}
	if maxV > 200 {
		t.Fatalf("size %d beyond truncation", maxV)
	}
	if maxV < 50 {
		t.Fatalf("no heavy tail observed (max %d)", maxV)
	}
}

func TestHTTPOnOffCycle(t *testing.T) {
	s := sim.New(3)
	var flowSeq netsim.FlowID = 100
	var conns []*tcpsim.Conn
	dial := func() *tcpsim.Conn {
		flowSeq++
		c := tcpsim.NewConn(s, flowSeq, tcpsim.Config{})
		fwd := netsim.NewLink(s, "fwd", 10, 5*sim.Millisecond, 100, nil)
		rev := netsim.NewLink(s, "rev", 10, 5*sim.Millisecond, 100, nil)
		c.Wire(netsim.NewPath(c.Rcv, fwd), netsim.NewPath(c.Snd, rev))
		conns = append(conns, c)
		return c
	}
	h := NewHTTP(s, HTTPConfig{MeanThink: 1}, dial)
	h.Start()
	s.Run(120 * sim.Second)
	if h.Transfers < 20 {
		t.Fatalf("only %d transfers in 120s with 1s mean think", h.Transfers)
	}
	var delivered int64
	for _, c := range conns {
		delivered += c.Rcv.Delivered
	}
	if delivered != h.PktsSent {
		// The final transfer may be mid-flight when the horizon hits.
		if h.PktsSent-delivered > 200 {
			t.Fatalf("sent %d delivered %d", h.PktsSent, delivered)
		}
	}
}

func TestHTTPTransfersAreBursty(t *testing.T) {
	// New connection per transfer means slow start restarts: the first
	// transfer's connection should not retain state from prior ones.
	s := sim.New(4)
	var dialed int
	dial := func() *tcpsim.Conn {
		dialed++
		c := tcpsim.NewConn(s, netsim.FlowID(dialed), tcpsim.Config{})
		fwd := netsim.NewLink(s, "fwd", 10, sim.Millisecond, 100, nil)
		rev := netsim.NewLink(s, "rev", 10, sim.Millisecond, 100, nil)
		c.Wire(netsim.NewPath(c.Rcv, fwd), netsim.NewPath(c.Snd, rev))
		return c
	}
	h := NewHTTP(s, HTTPConfig{MeanThink: 0.5}, dial)
	h.Start()
	s.Run(30 * sim.Second)
	if dialed < 10 {
		t.Fatalf("dialed only %d connections", dialed)
	}
	if int64(dialed) != h.Transfers {
		t.Fatalf("dialed %d != transfers %d", dialed, h.Transfers)
	}
}
