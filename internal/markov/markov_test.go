package markov

import (
	"math"
	"testing"
	"testing/quick"
)

// mm1 builds a truncated M/M/1 queue generator: states 0..cap, arrivals λ,
// service μ. Its stationary distribution is geometric: π_i ∝ ρ^i.
func mm1(lambda, mu float64, capN int) Generator[int] {
	return func(s int) []Transition[int] {
		var trs []Transition[int]
		if s < capN {
			trs = append(trs, Transition[int]{Rate: lambda, Next: s + 1, Tag: 1})
		}
		if s > 0 {
			trs = append(trs, Transition[int]{Rate: mu, Next: s - 1})
		}
		return trs
	}
}

func TestStationaryTwoState(t *testing.T) {
	// 0 →(a) 1 →(b) 0: π0 = b/(a+b).
	a, b := 2.0, 3.0
	g := func(s int) []Transition[int] {
		if s == 0 {
			return []Transition[int]{{Rate: a, Next: 1}}
		}
		return []Transition[int]{{Rate: b, Next: 0}}
	}
	pi, err := Stationary(g, 0, 10, 1e-12, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi[0]-b/(a+b)) > 1e-9 || math.Abs(pi[1]-a/(a+b)) > 1e-9 {
		t.Fatalf("pi = %v", pi)
	}
}

func TestStationaryMM1Geometric(t *testing.T) {
	lambda, mu := 1.0, 2.0
	const capN = 30
	pi, err := Stationary(mm1(lambda, mu, capN), 0, 100, 1e-13, 100000)
	if err != nil {
		t.Fatal(err)
	}
	rho := lambda / mu
	norm := (1 - rho) / (1 - math.Pow(rho, capN+1))
	for i := 0; i <= capN; i++ {
		want := norm * math.Pow(rho, float64(i))
		if math.Abs(pi[i]-want) > 1e-8 {
			t.Fatalf("pi[%d] = %v, want %v", i, pi[i], want)
		}
	}
}

func TestTagRateMM1Throughput(t *testing.T) {
	// Accepted-arrival rate in a truncated M/M/1 is λ(1-π_cap).
	lambda, mu := 3.0, 2.0 // overloaded, so blocking matters
	const capN = 10
	g := mm1(lambda, mu, capN)
	pi, err := Stationary(g, 0, 100, 1e-13, 100000)
	if err != nil {
		t.Fatal(err)
	}
	got := TagRate(g, pi)
	want := lambda * (1 - pi[capN])
	if math.Abs(got-want) > 1e-8 {
		t.Fatalf("TagRate = %v, want %v", got, want)
	}
}

func TestEnumerateCounts(t *testing.T) {
	states, index, err := Enumerate(mm1(1, 1, 5), 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 6 || len(index) != 6 {
		t.Fatalf("enumerated %d states", len(states))
	}
}

func TestEnumerateTooLarge(t *testing.T) {
	_, _, err := Enumerate(mm1(1, 1, 1000), 0, 10)
	if err != ErrStateSpaceTooLarge {
		t.Fatalf("err = %v", err)
	}
}

func TestAbsorbingStateRejected(t *testing.T) {
	g := func(s int) []Transition[int] {
		if s == 0 {
			return []Transition[int]{{Rate: 1, Next: 1}}
		}
		return nil // absorbing
	}
	if _, err := Stationary(g, 0, 10, 1e-10, 1000); err == nil {
		t.Fatal("absorbing chain accepted")
	}
}

func TestNegativeRateRejected(t *testing.T) {
	g := func(s int) []Transition[int] {
		return []Transition[int]{{Rate: -1, Next: s}}
	}
	if _, _, err := Enumerate(g, 0, 10); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestSelfLoopsIgnored(t *testing.T) {
	g := func(s int) []Transition[int] {
		trs := []Transition[int]{{Rate: 5, Next: s}} // self-loop
		if s == 0 {
			trs = append(trs, Transition[int]{Rate: 1, Next: 1})
		} else {
			trs = append(trs, Transition[int]{Rate: 1, Next: 0})
		}
		return trs
	}
	pi, err := Stationary(g, 0, 10, 1e-12, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi[0]-0.5) > 1e-9 {
		t.Fatalf("pi = %v", pi)
	}
}

func TestSimulateMatchesStationary(t *testing.T) {
	lambda, mu := 1.0, 1.5
	const capN = 8
	g := mm1(lambda, mu, capN)
	pi, err := Stationary(g, 0, 100, 1e-13, 100000)
	if err != nil {
		t.Fatal(err)
	}
	// Time-weighted occupancy from the sampler.
	occ := make(map[int]float64)
	var total float64
	Simulate(g, 0, 42, 400000, func(from int, hold float64, _ Transition[int]) {
		occ[from] += hold
		total += hold
	})
	for s, want := range pi {
		got := occ[s] / total
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("state %d: simulated %v, exact %v", s, got, want)
		}
	}
}

func TestSimulateStopsAtAbsorbing(t *testing.T) {
	g := func(s int) []Transition[int] {
		if s == 0 {
			return []Transition[int]{{Rate: 1, Next: 1}}
		}
		return nil
	}
	n := 0
	Simulate(g, 0, 1, 1000, func(int, float64, Transition[int]) { n++ })
	if n != 1 {
		t.Fatalf("took %d jumps from absorbing-bound chain", n)
	}
}

// Property: for random birth-death chains, the solver satisfies detailed
// balance (birth-death chains are reversible): π_i λ_i = π_{i+1} μ_{i+1}.
func TestPropertyDetailedBalance(t *testing.T) {
	f := func(rates [6]uint8) bool {
		lam := make([]float64, 6)
		mu := make([]float64, 6)
		for i, r := range rates {
			lam[i] = 0.5 + float64(r%10)
			mu[i] = 1 + float64(r%7)
		}
		g := func(s int) []Transition[int] {
			var trs []Transition[int]
			if s < 5 {
				trs = append(trs, Transition[int]{Rate: lam[s], Next: s + 1})
			}
			if s > 0 {
				trs = append(trs, Transition[int]{Rate: mu[s], Next: s - 1})
			}
			return trs
		}
		pi, err := Stationary(g, 0, 10, 1e-13, 100000)
		if err != nil {
			return false
		}
		for i := 0; i < 5; i++ {
			if math.Abs(pi[i]*lam[i]-pi[i+1]*mu[i+1]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: stationary probabilities are a distribution: non-negative, sum 1.
func TestPropertyDistribution(t *testing.T) {
	f := func(a, b, c uint8) bool {
		// Random 3-cycle with extra chords.
		r := []float64{1 + float64(a%9), 1 + float64(b%9), 1 + float64(c%9)}
		g := func(s int) []Transition[int] {
			next := (s + 1) % 3
			back := (s + 2) % 3
			return []Transition[int]{
				{Rate: r[s], Next: next},
				{Rate: 0.5, Next: back},
			}
		}
		pi, err := Stationary(g, 0, 10, 1e-12, 10000)
		if err != nil {
			return false
		}
		var sum float64
		for _, p := range pi {
			if p < 0 {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStationaryMM1(b *testing.B) {
	g := mm1(1, 1.2, 200)
	for i := 0; i < b.N; i++ {
		if _, err := Stationary(g, 0, 300, 1e-10, 100000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateJumps(b *testing.B) {
	g := mm1(1, 1.2, 50)
	b.ResetTimer()
	Simulate(g, 0, 1, int64(b.N), nil)
}
