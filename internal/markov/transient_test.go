package markov

import (
	"math"
	"math/rand"
	"testing"
)

// twoState builds the 0 →(a) 1 →(b) 0 chain, whose transient distribution is
// known in closed form: P(state 0 at t | start 0) = b/(a+b) + a/(a+b)·e^{-(a+b)t}.
func twoState(a, b float64) Generator[int] {
	return func(s int) []Transition[int] {
		if s == 0 {
			return []Transition[int]{{Rate: a, Next: 1}}
		}
		return []Transition[int]{{Rate: b, Next: 0}}
	}
}

func TestTransientTwoStateClosedForm(t *testing.T) {
	a, b := 1.7, 0.6
	ts, err := NewTransientSolver(twoState(a, b), 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := 0.0
	for _, dt := range []float64{0.1, 0.3, 1.0, 2.5} {
		ts.Advance(dt)
		elapsed += dt
		want := b/(a+b) + a/(a+b)*math.Exp(-(a+b)*elapsed)
		got := ts.Prob(func(s int) bool { return s == 0 })
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("t=%v: P(0) = %v, want %v", elapsed, got, want)
		}
	}
}

func TestTransientConvergesToStationary(t *testing.T) {
	g := mm1(1.0, 1.6, 12)
	pi, err := Stationary(g, 0, 100, 1e-12, 100000)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := NewTransientSolver(g, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	ts.Advance(200) // long horizon
	for s, want := range pi {
		got := ts.Prob(func(x int) bool { return x == s })
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("state %d: transient %v vs stationary %v", s, got, want)
		}
	}
}

func TestTransientZeroTimeIsInitial(t *testing.T) {
	ts, err := NewTransientSolver(mm1(1, 2, 5), 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	ts.Advance(0)
	if p := ts.Prob(func(s int) bool { return s == 0 }); p != 1 {
		t.Fatalf("P(init) = %v after zero time", p)
	}
}

func TestTransientConservesMass(t *testing.T) {
	ts, err := NewTransientSolver(mm1(2, 1, 20), 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		ts.Advance(0.7)
		var sum float64
		for _, p := range ts.Dist() {
			if p < 0 {
				t.Fatal("negative probability")
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("mass = %v after %d steps", sum, i+1)
		}
	}
}

func TestTransientSetDist(t *testing.T) {
	g := twoState(1, 1)
	ts, err := NewTransientSolver(g, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.SetDist(map[int]float64{1: 1}); err != nil {
		t.Fatal(err)
	}
	if p := ts.Prob(func(s int) bool { return s == 1 }); p != 1 {
		t.Fatalf("P(1) = %v after SetDist", p)
	}
	if err := ts.SetDist(map[int]float64{42: 1}); err == nil {
		t.Fatal("unknown state accepted")
	}
}

func TestTransientMatchesSimulatedOccupancy(t *testing.T) {
	// Empirical check on a birth-death chain: the transient P(state=0 at
	// t=1.5) from many short trajectories matches uniformization.
	g := mm1(2.0, 3.0, 8)
	ts, err := NewTransientSolver(g, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	ts.Advance(1.5)
	want := ts.Prob(func(s int) bool { return s == 0 })

	// Trajectory sampling with explicit exponential holding times.
	count := 0
	const reps = 30000
	for rep := 0; rep < reps; rep++ {
		state := 0
		tNow := 0.0
		seed := int64(rep + 1)
		rng := newTestRand(seed)
		for {
			trs := g(state)
			var total float64
			for _, tr := range trs {
				total += tr.Rate
			}
			dt := rng.ExpFloat64() / total
			if tNow+dt > 1.5 {
				break
			}
			tNow += dt
			u := rng.Float64() * total
			for _, tr := range trs {
				if u < tr.Rate {
					state = tr.Next
					break
				}
				u -= tr.Rate
			}
		}
		if state == 0 {
			count++
		}
	}
	got := float64(count) / reps
	if math.Abs(got-want) > 0.015 {
		t.Fatalf("empirical %v vs uniformization %v", got, want)
	}
}

// newTestRand supplies the deterministic randomness for the empirical
// transient check.
func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
