package markov

import (
	"fmt"
	"math"
)

// TransientSolver computes time-dependent state distributions of a CTMC by
// uniformization: the chain is embedded in a Poisson process of rate Λ (the
// maximum total outflow), and the distribution at t+dt is a Poisson-weighted
// mixture of powers of the uniformized transition matrix. The method is
// numerically exact up to the truncation of the Poisson series (taken to a
// 1e-12 tail here).
//
// It is used to cross-validate the Monte-Carlo transient estimator of the
// streaming model (dmpmodel.TransientFractionLate) on truncated instances.
type TransientSolver[S comparable] struct {
	states []S
	index  map[S]int
	// Uniformized DTMC in CSR-ish form.
	rowStart []int32
	colIdx   []int32
	prob     []float64
	lambda   float64
	dist     []float64
	scratch  []float64
}

// NewTransientSolver enumerates the reachable space and builds the
// uniformized chain, starting from a point mass on init.
func NewTransientSolver[S comparable](g Generator[S], init S, maxStates int) (*TransientSolver[S], error) {
	states, index, err := Enumerate(g, init, maxStates)
	if err != nil {
		return nil, err
	}
	n := len(states)
	ts := &TransientSolver[S]{
		states:   states,
		index:    index,
		rowStart: make([]int32, n+1),
		dist:     make([]float64, n),
		scratch:  make([]float64, n),
	}

	// Find Λ.
	outRates := make([]float64, n)
	for i, s := range states {
		var total float64
		for _, tr := range g(s) {
			if index[tr.Next] != i {
				total += tr.Rate
			}
		}
		outRates[i] = total
		if total > ts.lambda {
			ts.lambda = total
		}
	}
	if ts.lambda == 0 {
		return nil, fmt.Errorf("markov: chain has no transitions")
	}

	// Build P = I + Q/Λ row by row.
	for i, s := range states {
		ts.rowStart[i] = int32(len(ts.colIdx))
		// Self-retention probability.
		stay := 1 - outRates[i]/ts.lambda
		if stay > 0 {
			ts.colIdx = append(ts.colIdx, int32(i))
			ts.prob = append(ts.prob, stay)
		}
		for _, tr := range g(s) {
			j := index[tr.Next]
			if j == i || tr.Rate == 0 {
				continue
			}
			ts.colIdx = append(ts.colIdx, int32(j))
			ts.prob = append(ts.prob, tr.Rate/ts.lambda)
		}
	}
	ts.rowStart[n] = int32(len(ts.colIdx))

	ts.dist[index[init]] = 1
	return ts, nil
}

// step applies one multiplication dist ← dist·P.
func (ts *TransientSolver[S]) step() {
	for i := range ts.scratch {
		ts.scratch[i] = 0
	}
	for i := range ts.dist {
		d := ts.dist[i]
		if d == 0 {
			continue
		}
		for k := ts.rowStart[i]; k < ts.rowStart[i+1]; k++ {
			ts.scratch[ts.colIdx[k]] += d * ts.prob[k]
		}
	}
	ts.dist, ts.scratch = ts.scratch, ts.dist
}

// Advance evolves the distribution by dt seconds.
func (ts *TransientSolver[S]) Advance(dt float64) {
	if dt <= 0 {
		return
	}
	a := ts.lambda * dt
	// Poisson(a) weights over matrix powers, truncated at 1e-12 tail mass.
	out := make([]float64, len(ts.dist))
	weight := math.Exp(-a)
	cum := weight
	cur := make([]float64, len(ts.dist))
	copy(cur, ts.dist)
	for i, v := range cur {
		out[i] += weight * v
	}
	// Keep the power iteration inside ts.dist/ts.scratch.
	copy(ts.dist, cur)
	for k := 1; cum < 1-1e-12; k++ {
		ts.step()
		weight *= a / float64(k)
		cum += weight
		for i, v := range ts.dist {
			out[i] += weight * v
		}
		if k > int(a)+200 && weight < 1e-300 {
			break // numerically exhausted
		}
	}
	copy(ts.dist, out)
	// Renormalize the truncation residue.
	var sum float64
	for _, v := range ts.dist {
		sum += v
	}
	if sum > 0 {
		inv := 1 / sum
		for i := range ts.dist {
			ts.dist[i] *= inv
		}
	}
}

// Prob returns the probability mass on states satisfying pred.
func (ts *TransientSolver[S]) Prob(pred func(S) bool) float64 {
	var p float64
	for i, s := range ts.states {
		if pred(s) {
			p += ts.dist[i]
		}
	}
	return p
}

// Dist returns the current distribution as a map (allocates; for tests).
func (ts *TransientSolver[S]) Dist() map[S]float64 {
	out := make(map[S]float64, len(ts.states))
	for i, s := range ts.states {
		if ts.dist[i] > 0 {
			out[s] = ts.dist[i]
		}
	}
	return out
}

// SetDist replaces the current distribution (states not in the map get 0;
// unknown states are an error). Used to hand a distribution from one
// generator's solver to another when the dynamics switch regimes (e.g.
// playback start in the streaming model).
func (ts *TransientSolver[S]) SetDist(d map[S]float64) error {
	for i := range ts.dist {
		ts.dist[i] = 0
	}
	for s, p := range d {
		i, ok := ts.index[s]
		if !ok {
			return fmt.Errorf("markov: state %v not in this solver's space", s)
		}
		ts.dist[i] = p
	}
	return nil
}
