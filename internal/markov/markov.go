// Package markov provides generic continuous-time Markov chain machinery:
// an exact stationary-distribution solver and an exact-dynamics trajectory
// sampler, both driven by a user-supplied transition generator.
//
// This is the reproduction's stand-in for the TANGRAM-II modeling tool the
// paper used to solve its DMP-streaming chain. The exact solver enumerates
// the reachable state space and applies Gauss-Seidel to the global balance
// equations; it is used directly for per-flow TCP chains (a few thousand
// states) and, on truncated instances, to cross-validate the Monte-Carlo
// estimator that handles the paper's large parameter sweeps.
package markov

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Transition is one outgoing CTMC transition. Tag carries a user label (for
// the TCP chains: the number of packets delivered by the transition).
type Transition[S comparable] struct {
	Rate float64
	Tag  int32
	Next S
}

// Generator produces the outgoing transitions of a state. It must be
// deterministic: repeated calls for the same state must return the same set.
type Generator[S comparable] func(S) []Transition[S]

// ErrStateSpaceTooLarge is returned when reachability exceeds the caller's cap.
var ErrStateSpaceTooLarge = errors.New("markov: reachable state space exceeds limit")

// Enumerate performs breadth-first reachability from init, returning the
// state list (index order = discovery order) and an index map.
func Enumerate[S comparable](g Generator[S], init S, maxStates int) ([]S, map[S]int, error) {
	index := map[S]int{init: 0}
	states := []S{init}
	for head := 0; head < len(states); head++ {
		for _, tr := range g(states[head]) {
			if tr.Rate < 0 {
				return nil, nil, fmt.Errorf("markov: negative rate %v from %v", tr.Rate, states[head])
			}
			if tr.Rate == 0 {
				continue
			}
			if _, ok := index[tr.Next]; !ok {
				if len(states) >= maxStates {
					return nil, nil, ErrStateSpaceTooLarge
				}
				index[tr.Next] = len(states)
				states = append(states, tr.Next)
			}
		}
	}
	return states, index, nil
}

// Stationary computes the stationary distribution of the CTMC reachable from
// init. It solves the global balance equations πQ = 0, Σπ = 1 by Gauss-Seidel
// sweeps over the reversed transition structure. The chain must be ergodic on
// its reachable class (the solver reports failure to converge otherwise).
func Stationary[S comparable](g Generator[S], init S, maxStates int, tol float64, maxSweeps int) (map[S]float64, error) {
	states, index, err := Enumerate(g, init, maxStates)
	if err != nil {
		return nil, err
	}
	n := len(states)

	// Flatten transitions; build incoming adjacency.
	type inEdge struct {
		from int32
		rate float64
	}
	outRate := make([]float64, n)
	incoming := make([][]inEdge, n)
	for i, s := range states {
		for _, tr := range g(s) {
			if tr.Rate == 0 {
				continue
			}
			j := index[tr.Next]
			if j == i {
				continue // self-loops cancel in balance equations
			}
			outRate[i] += tr.Rate
			incoming[j] = append(incoming[j], inEdge{from: int32(i), rate: tr.Rate})
		}
	}
	for i := range outRate {
		if outRate[i] == 0 {
			return nil, fmt.Errorf("markov: absorbing state %v (chain not ergodic)", states[i])
		}
	}

	pi := make([]float64, n)
	for i := range pi {
		pi[i] = 1 / float64(n)
	}
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var delta, norm float64
		for j := 0; j < n; j++ {
			var inflow float64
			for _, e := range incoming[j] {
				inflow += pi[e.from] * e.rate
			}
			next := inflow / outRate[j]
			delta += math.Abs(next - pi[j])
			pi[j] = next
			norm += next
		}
		// Normalize each sweep to keep the iteration numerically anchored.
		if norm <= 0 || math.IsNaN(norm) || math.IsInf(norm, 0) {
			return nil, errors.New("markov: Gauss-Seidel diverged")
		}
		inv := 1 / norm
		for j := range pi {
			pi[j] *= inv
		}
		if delta*inv < tol {
			out := make(map[S]float64, n)
			for i, s := range states {
				out[s] = pi[i]
			}
			return out, nil
		}
	}
	return nil, fmt.Errorf("markov: no convergence in %d sweeps", maxSweeps)
}

// TagRate returns the long-run rate at which tagged units are produced:
// Σ_s π(s) Σ_t rate(t)·tag(t). For the TCP flow chains this is the achievable
// throughput σ in packets per second. The terms are summed in sorted order
// so the float result is bit-identical regardless of map iteration order.
func TagRate[S comparable](g Generator[S], pi map[S]float64) float64 {
	var terms []float64
	// nolint:detsim terms are sorted below before the reduction, so the
	// result is independent of map iteration order.
	for s, p := range pi {
		for _, tr := range g(s) {
			terms = append(terms, p*tr.Rate*float64(tr.Tag))
		}
	}
	return sortedSum(terms)
}

// sortedSum reduces terms deterministically: float addition is not
// associative, so summing in map-iteration order would make results
// differ in the last ulps from run to run.
func sortedSum(terms []float64) float64 {
	sort.Float64s(terms)
	var total float64
	for _, v := range terms {
		total += v
	}
	return total
}

// Simulate samples the embedded jump chain for `steps` transitions starting
// from init, reporting each jump to observe (which may be nil). Holding times
// are reported as their expectation 1/totalRate rather than sampled: every
// time-average computed from them is unbiased, and the estimator variance is
// strictly smaller. Transition tables are memoized per state.
func Simulate[S comparable](g Generator[S], init S, seed int64, steps int64, observe func(from S, hold float64, tr Transition[S])) {
	type row struct {
		cum   []float64
		total float64
		trs   []Transition[S]
	}
	rows := make(map[S]*row)
	get := func(s S) *row {
		r, ok := rows[s]
		if !ok {
			trs := g(s)
			r = &row{trs: trs, cum: make([]float64, len(trs))}
			for i, tr := range trs {
				r.total += tr.Rate
				r.cum[i] = r.total
			}
			rows[s] = r
		}
		return r
	}
	rng := rand.New(rand.NewSource(seed))
	cur := init
	for i := int64(0); i < steps; i++ {
		r := get(cur)
		if r.total == 0 {
			return // absorbing
		}
		u := rng.Float64() * r.total
		k := 0
		for k < len(r.cum)-1 && r.cum[k] < u {
			k++
		}
		tr := r.trs[k]
		if observe != nil {
			observe(cur, 1/r.total, tr)
		}
		cur = tr.Next
	}
}
