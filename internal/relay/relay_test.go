package relay

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"dmpstream/internal/core"
	"dmpstream/internal/hub"
)

// fillPattern is the origin's deterministic payload content: leaf
// subscribers re-derive the expected bytes from the (absolute) packet
// number alone, so byte-exactness survives any number of tiers.
func fillPattern(pkt uint32, buf []byte) {
	for i := range buf {
		buf[i] = byte(uint32(i)*2654435761 + pkt*97 + 13)
	}
}

// newOrigin starts an origin hub serving streamID on a loopback listener.
// grace is the hub's ReattachGrace (0 default, negative disables).
func newOrigin(t *testing.T, streamID string, mu float64, payload int, count int64, grace time.Duration) (*hub.Hub, net.Listener) {
	t.Helper()
	h, err := hub.New(hub.Config{
		Stream:        core.Config{Mu: mu, PayloadSize: payload, Count: count, Fill: fillPattern},
		StreamID:      streamID,
		ReattachGrace: grace,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go h.Serve(ln)
	return h, ln
}

// newRelay builds a relay on cfg with test-friendly redial defaults and
// starts serving downstream joins on a fresh loopback listener.
func newRelay(t *testing.T, cfg Config) (*Relay, net.Listener) {
	t.Helper()
	if cfg.Redial.Base == 0 {
		cfg.Redial = core.RedialPolicy{Base: 20 * time.Millisecond, Max: 100 * time.Millisecond, Jitter: 0.2, Seed: 7}
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go r.Serve(ln)
	return r, ln
}

// leafClient joins addr as a two-path absolute-numbering subscriber whose
// OnPacket verifies every payload byte against the origin pattern.
// Returns the client plus the verification state.
type leafCheck struct {
	mu       sync.Mutex
	received int64
	badBytes int64
}

func newLeaf(t *testing.T, addr, streamID string, chk *leafCheck) *core.Client {
	t.Helper()
	tok, err := core.NewToken()
	if err != nil {
		t.Fatal(err)
	}
	return &core.Client{
		Paths: 2,
		Dial: func(int) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 2*time.Second)
		},
		Join:   &core.Join{StreamID: streamID, Token: tok, Flags: core.JoinFlagAbsolute},
		Policy: core.RedialPolicy{Base: 20 * time.Millisecond, Max: 100 * time.Millisecond, Jitter: 0.2, Seed: 11},
		Receiver: core.ReceiverOptions{
			OnPacket: func(pkt uint32, _ int64, payload []byte) {
				want := make([]byte, len(payload))
				fillPattern(pkt, want)
				chk.mu.Lock()
				chk.received++
				for i := range payload {
					if payload[i] != want[i] {
						chk.badBytes++
						break
					}
				}
				chk.mu.Unlock()
			},
		},
	}
}

// TestRelayTwoTier is the tentpole acceptance test: origin → relay → two
// leaves, every leaf byte-exact and stream-complete, end-of-stream
// cascading down cleanly.
func TestRelayTwoTier(t *testing.T) {
	const (
		mu      = 400.0
		count   = 600 // ~1.5s of stream
		payload = 120
	)
	origin, oln := newOrigin(t, "tier", mu, payload, count, 0)
	defer origin.Close()
	defer oln.Close()

	r, rln := newRelay(t, Config{
		Upstreams: []string{oln.Addr().String()},
		StreamID:  "tier",
	})
	defer r.Close()
	defer rln.Close()

	select {
	case <-r.Ready():
	case <-time.After(5 * time.Second):
		t.Fatal("relay never saw the upstream header")
	}

	var wg sync.WaitGroup
	checks := make([]leafCheck, 2)
	traces := make([]*core.Trace, 2)
	errs := make([]error, 2)
	for i := range checks {
		leaf := newLeaf(t, rln.Addr().String(), "tier", &checks[i])
		wg.Add(1)
		go func(i int, leaf *core.Client) {
			defer wg.Done()
			traces[i], errs[i] = leaf.Run()
		}(i, leaf)
	}
	wg.Wait()

	for i := range checks {
		if errs[i] != nil {
			t.Fatalf("leaf %d: %v", i, errs[i])
		}
		tr := traces[i]
		if tr.Expected != count {
			t.Fatalf("leaf %d: expected %d packets announced, want %d", i, tr.Expected, count)
		}
		if got := int64(len(tr.Arrivals)); got != count {
			t.Fatalf("leaf %d: received %d distinct packets, want %d", i, got, count)
		}
		checks[i].mu.Lock()
		rec, bad := checks[i].received, checks[i].badBytes
		checks[i].mu.Unlock()
		if rec != count || bad != 0 {
			t.Fatalf("leaf %d: %d packets verified, %d byte-mismatched (want %d, 0)", i, rec, bad, count)
		}
	}

	st := r.Stats()
	if st.State != StateEnded {
		t.Fatalf("relay state %v after end-of-stream, want %v", st.State, StateEnded)
	}
	if st.Forwarded != count {
		t.Fatalf("relay forwarded %d, want %d", st.Forwarded, count)
	}
	if st.GapSkips != 0 {
		t.Fatalf("relay skipped %d sequences on a clean run", st.GapSkips)
	}
	if !st.Ended || st.Expected != count {
		t.Fatalf("relay end marker: ended=%v expected=%d, want true, %d", st.Ended, st.Expected, count)
	}
	if ps := st.Hub.Pool; ps.DoublePuts != 0 || ps.PoisonTrips != 0 {
		t.Fatalf("relay hub pool integrity: %+v", ps)
	}
}

// TestRelayOrphanNoUpstream: a relay whose every candidate is unreachable
// must give up after the orphan grace instead of hanging Serve forever.
func TestRelayOrphanNoUpstream(t *testing.T) {
	// A port that was just listening and no longer is: dials get refused.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := dead.Addr().String()
	dead.Close()

	r, err := New(Config{
		Upstreams:   []string{addr},
		StreamID:    "lost",
		OrphanGrace: 200 * time.Millisecond,
		Redial:      core.RedialPolicy{Base: 10 * time.Millisecond, Max: 40 * time.Millisecond, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	done := make(chan error, 1)
	go func() { done <- r.Serve(ln) }()
	select {
	case err := <-done:
		if !errors.Is(err, ErrNoUpstream) {
			t.Fatalf("Serve returned %v, want ErrNoUpstream", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not give up on an unreachable upstream")
	}
	if st := r.Stats(); st.State != StateOrphaned {
		t.Fatalf("relay state %v, want %v", st.State, StateOrphaned)
	}
}

// TestRelayUpstreamLostPropagates: when the origin dies for good
// mid-stream, subscribers of the relay get a clean end marker for what
// was delivered, and later joins are answered with the typed
// upstream-lost reject (errors.Is-matchable through the client stack).
func TestRelayUpstreamLostPropagates(t *testing.T) {
	origin, oln := newOrigin(t, "live", 300.0, 100, 0, 0) // endless
	// One upstream path: an abnormal cut then leaves no interleave gap, so
	// the flushed ring is contiguous and the leaf's trace provably complete.
	r, rln := newRelay(t, Config{
		Upstreams:   []string{oln.Addr().String()},
		StreamID:    "live",
		Paths:       1,
		OrphanGrace: 250 * time.Millisecond,
	})
	defer r.Close()
	defer rln.Close()

	select {
	case <-r.Ready():
	case <-time.After(5 * time.Second):
		t.Fatal("relay never saw the upstream header")
	}

	var chk leafCheck
	leaf := newLeaf(t, rln.Addr().String(), "live", &chk)
	var tr *core.Trace
	var leafErr error
	leafDone := make(chan struct{})
	go func() {
		defer close(leafDone)
		tr, leafErr = leaf.Run()
	}()

	time.Sleep(300 * time.Millisecond) // let some stream flow
	oln.Close()
	origin.Close() // hard kill: no end markers upstream

	select {
	case <-leafDone:
	case <-time.After(10 * time.Second):
		t.Fatal("leaf still running after upstream loss + orphan grace")
	}
	if leafErr != nil {
		t.Fatalf("pre-orphan leaf should end cleanly, got %v", leafErr)
	}
	if tr.Expected <= 0 || int64(len(tr.Arrivals)) != tr.Expected {
		t.Fatalf("pre-orphan leaf: %d of %d packets", len(tr.Arrivals), tr.Expected)
	}
	chk.mu.Lock()
	bad := chk.badBytes
	chk.mu.Unlock()
	if bad != 0 {
		t.Fatalf("%d byte-mismatched packets at the leaf", bad)
	}

	// The relay is now orphaned: a fresh join gets the typed reject.
	if st := r.Stats(); st.State != StateOrphaned {
		t.Fatalf("relay state %v, want %v", st.State, StateOrphaned)
	}
	var lateChk leafCheck
	late := newLeaf(t, rln.Addr().String(), "live", &lateChk)
	late.Policy = core.RedialPolicy{} // a verdict, not a flake: no redial
	_, err := late.Run()
	if !errors.Is(err, core.ErrUpstreamLost) {
		t.Fatalf("post-orphan join: %v, want errors.Is ErrUpstreamLost", err)
	}
	if !errors.Is(err, core.ErrRejected) {
		t.Fatalf("post-orphan join: %v should also match ErrRejected", err)
	}
}

// TestRelayDrainCascade: Drain mid-stream detaches the upstream first,
// flushes, then ends the downstream leg with a clean end marker — the
// leaf sees a complete (if truncated) stream, and the origin's
// subscriber count returns to zero.
func TestRelayDrainCascade(t *testing.T) {
	// Negative grace: the origin forgets the relay's subscription the moment
	// its path dies, so the post-drain subscriber count settles promptly.
	origin, oln := newOrigin(t, "live", 300.0, 100, 0, -1) // endless
	defer origin.Close()
	defer oln.Close()

	r, rln := newRelay(t, Config{
		Upstreams: []string{oln.Addr().String()},
		StreamID:  "live",
		Paths:     1, // single path: the drain cut leaves no interleave gap
	})
	defer rln.Close()

	select {
	case <-r.Ready():
	case <-time.After(5 * time.Second):
		t.Fatal("relay never saw the upstream header")
	}

	var chk leafCheck
	leaf := newLeaf(t, rln.Addr().String(), "live", &chk)
	var tr *core.Trace
	var leafErr error
	leafDone := make(chan struct{})
	go func() {
		defer close(leafDone)
		tr, leafErr = leaf.Run()
	}()

	time.Sleep(300 * time.Millisecond)
	if !r.Drain(5 * time.Second) {
		t.Fatal("relay drain timed out")
	}

	select {
	case <-leafDone:
	case <-time.After(5 * time.Second):
		t.Fatal("leaf still running after relay drain")
	}
	if leafErr != nil {
		t.Fatalf("drained leaf: %v", leafErr)
	}
	if tr.Expected <= 0 || int64(len(tr.Arrivals)) != tr.Expected {
		t.Fatalf("drained leaf: %d of %d packets", len(tr.Arrivals), tr.Expected)
	}

	// The relay's upstream subscription must be gone at the origin.
	deadline := time.Now().Add(5 * time.Second)
	for origin.SubscriberCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("origin still holds %d subscribers after relay drain", origin.SubscriberCount())
		}
		time.Sleep(20 * time.Millisecond)
	}
}
