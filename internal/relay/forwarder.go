package relay

import (
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"dmpstream/internal/core"
	"dmpstream/internal/hub"
)

// syncDepth is how many packets the forwarder holds before committing to
// a starting sequence: the upstream hub spreads consecutive packets
// across the relay's paths, so the first arrival on a fast path may be a
// few sequences ahead of the true resume point on a slower one. Holding a
// short prefix and starting from its minimum keeps those near-boundary
// packets out of the late-drop bin.
const syncDepth = 8

// heldFrame is one out-of-order upstream packet parked in the reorder
// buffer until the sequences before it arrive (or are given up on).
type heldFrame struct {
	gen     int64
	payload []byte // bufown owned — private copy taken at ingest
}

// forwarder is the relay's upstream sink: core.Client's redial engine
// hands it every (re)attached upstream path connection, and it
// republishes the received feed — in strictly ascending absolute
// sequence order, exactly once per sequence — into the local hub ring via
// Hub.PublishAt. Out-of-order arrivals (multipath interleave, failover
// replays overtaking live frames) park in a bounded reorder buffer;
// sequences the upstream replayed twice are dropped here, so the
// downstream tier never sees a duplicate. A gap that stays open past the
// reorder window is abandoned (the head jumps past it downstream), which
// bounds the relay's memory no matter how the upstream misbehaves.
//
// It implements core.Sink; the interesting half of Receiver's contract
// (dedup, end-marker handling, end-grace deadlines) is mirrored here with
// ring-publication replacing trace accumulation.
type forwarder struct {
	r *Relay

	mu        sync.Mutex
	h         *hub.Hub              // guarded by mu; nil until the first upstream header
	next      int64                 // guarded by mu; next sequence to publish; -1 until synced
	pending   map[int64]heldFrame   // guarded by mu; out-of-order arrivals by sequence
	active    map[net.Conn]struct{} // guarded by mu; upstream conns currently in Run
	endSeen   bool                  // guarded by mu
	expected  int64                 // guarded by mu; end-marker generated count (max across paths)
	forwarded int64                 // guarded by mu; packets accepted by PublishAt
	lateDrops int64                 // guarded by mu; duplicates and too-late arrivals discarded
	reordered int64                 // guarded by mu; packets that had to park in the buffer
	gapSkips  int64                 // guarded by mu; sequences abandoned (window overflow)
	refused   int64                 // guarded by mu; publishes the hub refused (stopped/draining)
	done      chan struct{}         // closed on the first end marker
}

func newForwarder(r *Relay) *forwarder {
	return &forwarder{
		r:       r,
		next:    -1,
		pending: make(map[int64]heldFrame),
		active:  make(map[net.Conn]struct{}),
		done:    make(chan struct{}),
	}
}

// setHub installs the local hub once the first upstream header fixed the
// stream's rate and payload size.
func (f *forwarder) setHub(h *hub.Hub) {
	f.mu.Lock()
	f.h = h
	f.mu.Unlock()
}

// activeConns snapshots the upstream connections currently being read —
// the set Close/Drain cuts to unwind the redial engine promptly.
func (f *forwarder) activeConns() []net.Conn {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]net.Conn, 0, len(f.active))
	for c := range f.active {
		out = append(out, c)
	}
	return out
}

// Run consumes one upstream path connection until its end marker (nil) or
// a terminal error — the core.Sink contract. Called concurrently for
// different paths and again after redials.
func (f *forwarder) Run(path int, conn net.Conn) error {
	f.mu.Lock()
	f.active[conn] = struct{}{}
	if f.endSeen {
		conn.SetReadDeadline(time.Now().Add(core.DefaultEndGrace))
	}
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		delete(f.active, conn)
		f.mu.Unlock()
	}()

	mu, payload, err := core.ReadStreamHeader(conn)
	if err != nil {
		return fmt.Errorf("relay: upstream path %d: %w", path, err)
	}
	if err := f.r.onHeader(mu, payload); err != nil {
		return err
	}
	frame := make([]byte, core.FrameHeaderSize+payload)
	for {
		// nolint:netdeadline upstream read loop: bounded by the upstream's
		// end marker (plus the end-grace deadline above), the redial
		// engine's typed verdicts, and Close/Drain cutting active conns.
		if _, err := io.ReadFull(conn, frame); err != nil {
			return fmt.Errorf("relay: upstream path %d read: %w", path, err)
		}
		pkt, gen, err := core.ParseFrameHeader(frame)
		if err != nil {
			return fmt.Errorf("relay: upstream path %d: %w", path, err)
		}
		if pkt == core.EndMarker {
			f.finish(gen, conn)
			return nil
		}
		f.ingest(int64(pkt), gen, frame[core.FrameHeaderSize:])
	}
}

// Done is closed once any upstream path delivered its end marker — the
// redial engine's stop signal.
func (f *forwarder) Done() <-chan struct{} { return f.done }

// finish records an upstream end marker: the expected count is the max
// announced across paths, and the first marker arms the end-grace
// deadline on the other in-flight paths so a blackholed one cannot hold
// the relay's teardown hostage.
func (f *forwarder) finish(expected int64, self net.Conn) {
	f.mu.Lock()
	if expected > f.expected {
		f.expected = expected
	}
	first := !f.endSeen
	if first {
		f.endSeen = true
		close(f.done)
		dl := time.Now().Add(core.DefaultEndGrace)
		for c := range f.active {
			if c != self {
				c.SetReadDeadline(dl)
			}
		}
	}
	f.mu.Unlock()
	if first {
		f.r.noteEnded()
	}
}

// ingest routes one upstream packet: publish it if it is the next
// sequence, drop it if it is a duplicate or arrived too late, park it if
// it ran ahead. Holding the forwarder lock across the publish is what
// makes "strictly ascending, exactly once" true under concurrent paths —
// and it pins the relay tier's lock-order edge: forwarder.mu ≺
// hub.Hub.govMu (see the lockorder fixture).
//
// bufown borrowed payload — either copied into a private heldFrame buffer
// or lent onward to Hub.PublishAt (which copies before returning); never
// retained past the call.
func (f *forwarder) ingest(seq, gen int64, payload []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.next < 0 {
		// Not synced yet: park everything; commit to the smallest held
		// sequence once the prefix is deep enough to cover path skew.
		if _, dup := f.pending[seq]; dup {
			f.lateDrops++
			return
		}
		f.holdLocked(seq, gen, payload)
		if len(f.pending) >= syncDepth {
			f.syncLocked()
		}
		return
	}
	switch {
	case seq < f.next:
		f.lateDrops++
	case seq == f.next:
		f.publishLocked(seq, gen, payload)
		f.next = seq + 1
		f.drainPendingLocked()
	default:
		if _, dup := f.pending[seq]; dup {
			f.lateDrops++
			return
		}
		f.holdLocked(seq, gen, payload)
		f.reordered++
		if len(f.pending) > f.r.cfg.ReorderWindow {
			// The blocking gap has outstayed the window: abandon it so the
			// buffer stays bounded. Downstream sees a head jump — the same
			// observable as a DropOldest skip.
			f.skipLocked()
		}
	}
}

// holdLocked parks a private copy of one out-of-order payload. Caller
// holds f.mu.
//
// bufown borrowed payload — copied into a fresh heldFrame buffer before
// the call returns.
func (f *forwarder) holdLocked(seq, gen int64, payload []byte) {
	buf := make([]byte, len(payload))
	copy(buf, payload)
	f.pending[seq] = heldFrame{gen: gen, payload: buf}
}

// syncLocked commits the starting sequence to the smallest parked one and
// drains the run it begins. Caller holds f.mu.
func (f *forwarder) syncLocked() {
	f.next = f.minPendingLocked()
	f.drainPendingLocked()
}

// minPendingLocked returns the smallest parked sequence; only valid with
// a non-empty buffer. Caller holds f.mu.
func (f *forwarder) minPendingLocked() int64 {
	first := true
	var min int64
	for seq := range f.pending {
		if first || seq < min {
			min = seq
			first = false
		}
	}
	return min
}

// drainPendingLocked publishes the contiguous run of parked packets
// starting at next. Caller holds f.mu.
func (f *forwarder) drainPendingLocked() {
	for {
		hf, ok := f.pending[f.next]
		if !ok {
			return
		}
		delete(f.pending, f.next)
		f.publishLocked(f.next, hf.gen, hf.payload)
		f.next++
	}
}

// skipLocked abandons the gap blocking the reorder buffer: next jumps to
// the smallest parked sequence and the run from there drains. Caller
// holds f.mu.
func (f *forwarder) skipLocked() {
	min := f.minPendingLocked()
	f.gapSkips += min - f.next
	f.next = min
	f.drainPendingLocked()
}

// publishLocked hands one in-order packet to the local hub ring. Caller
// holds f.mu.
//
// bufown borrowed payload — lent onward to Hub.PublishAt, which copies it
// into a pool buffer before returning.
func (f *forwarder) publishLocked(seq, gen int64, payload []byte) {
	if f.h != nil && f.h.PublishAt(seq, gen, payload) {
		f.forwarded++
	} else {
		f.refused++
	}
}

// flush publishes whatever the reorder buffer still holds, in ascending
// order, gaps and all. Called once the upstream is finished for good (end
// marker, orphaned, or cancelled) — nothing can fill the gaps anymore, so
// parked packets go out as-is before the hub ends the stream downstream.
func (f *forwarder) flush() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.pending) == 0 {
		return
	}
	seqs := make([]int64, 0, len(f.pending))
	for seq := range f.pending {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	if f.next < 0 {
		f.next = seqs[0]
	}
	for _, seq := range seqs {
		hf := f.pending[seq]
		delete(f.pending, seq)
		if seq < f.next {
			f.lateDrops++
			continue
		}
		f.gapSkips += seq - f.next
		f.publishLocked(seq, hf.gen, hf.payload)
		f.next = seq + 1
	}
}
