package relay

import (
	"net"
	"testing"
	"time"

	"dmpstream/internal/core"
	"dmpstream/internal/emunet"
)

// TestRelayUpstreamFailover is the deterministic failover acceptance
// test: a relay ranked [primary, secondary] streams through the primary
// until a scripted emunet sever kills it, re-attaches to the secondary
// within the origin's grace presenting the same token, and the origin
// replays the dead path's resend window — the leaf's stream stays
// byte-exact with zero duplicate deliveries.
func TestRelayUpstreamFailover(t *testing.T) {
	origin, oln := newOrigin(t, "live", 400.0, 100, 0, 0) // endless, default grace
	defer origin.Close()
	defer oln.Close()

	primary, err := emunet.Listen("127.0.0.1:0", oln.Addr().String(), emunet.PathConfig{
		Delay: 2 * time.Millisecond, Downstream: true, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	secondary, err := emunet.Listen("127.0.0.1:0", oln.Addr().String(), emunet.PathConfig{
		Delay: 2 * time.Millisecond, Downstream: true, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer secondary.Close()

	r, rln := newRelay(t, Config{
		Upstreams:   []string{primary.Addr(), secondary.Addr()},
		StreamID:    "live",
		Paths:       1, // one upstream path: the failover is the whole story
		OrphanGrace: 5 * time.Second,
	})
	defer r.Close()
	defer rln.Close()

	select {
	case <-r.Ready():
	case <-time.After(5 * time.Second):
		t.Fatal("relay never saw the upstream header")
	}
	if st := r.Stats(); st.Candidates[0] != 0 {
		t.Fatalf("relay started on candidate %d, want the primary (0)", st.Candidates[0])
	}

	var chk leafCheck
	leaf := newLeaf(t, rln.Addr().String(), "live", &chk)
	var tr *core.Trace
	var leafErr error
	leafDone := make(chan struct{})
	go func() {
		defer close(leafDone)
		tr, leafErr = leaf.Run()
	}()

	// The scripted fault: sever every connection through the primary 400ms
	// in. The relay's path dies, rotates to the secondary and re-attaches
	// with its original token inside the origin's re-attach grace.
	tl := primary.Schedule([]emunet.FaultEvent{{At: 400 * time.Millisecond, Kind: emunet.FaultSever}})
	defer tl.Stop()

	time.Sleep(900 * time.Millisecond) // 400ms on primary + ~500ms on secondary
	origin.Stop()                      // graceful end: end markers cascade down

	select {
	case <-leafDone:
	case <-time.After(10 * time.Second):
		t.Fatal("leaf still running after end-of-stream")
	}
	if leafErr != nil {
		t.Fatalf("leaf: %v", leafErr)
	}
	if tr.Expected <= 0 || int64(len(tr.Arrivals)) != tr.Expected {
		t.Fatalf("leaf: %d of %d packets — failover lost stream bytes", len(tr.Arrivals), tr.Expected)
	}
	if tr.Duplicates != 0 {
		t.Fatalf("leaf saw %d duplicate deliveries — the relay republished a replayed packet", tr.Duplicates)
	}
	chk.mu.Lock()
	rec, bad := chk.received, chk.badBytes
	chk.mu.Unlock()
	if rec != tr.Expected || bad != 0 {
		t.Fatalf("leaf verified %d/%d packets, %d byte-mismatched", rec, tr.Expected, bad)
	}

	st := r.Stats()
	if st.Failovers < 1 {
		t.Fatalf("relay recorded %d failovers, want >= 1", st.Failovers)
	}
	if st.Candidates[0] != 1 {
		t.Fatalf("relay path on candidate %d, want the secondary (1)", st.Candidates[0])
	}
	if st.State != StateEnded {
		t.Fatalf("relay state %v, want %v", st.State, StateEnded)
	}
	if st.GapSkips != 0 {
		t.Fatalf("relay abandoned %d sequences — resend replay did not conserve the stream", st.GapSkips)
	}

	ost := origin.Stats()
	if ost.Reattached < 1 {
		t.Fatalf("origin recorded %d re-attaches, want >= 1 (token not preserved?)", ost.Reattached)
	}
	// The dead path's resend window replays on the re-attached path; the
	// forwarder's dedup (late drops) swallows the already-forwarded part.
	if ost.Resent < 1 {
		t.Fatalf("origin resent %d packets, want >= 1", ost.Resent)
	}
}

// TestRelayFailoverRoundRobin: with every candidate down, the relay walks
// primary → secondary → back to primary, one rotation per failed attempt,
// with capped backoff between — it never camps on a dead candidate.
func TestRelayFailoverRoundRobin(t *testing.T) {
	deadA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrA := deadA.Addr().String()
	deadA.Close()
	deadB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrB := deadB.Addr().String()
	deadB.Close()

	r, err := New(Config{
		Upstreams:   []string{addrA, addrB},
		StreamID:    "live",
		Paths:       1,
		OrphanGrace: 10 * time.Second, // not under test here
		Redial:      core.RedialPolicy{Base: 5 * time.Millisecond, Max: 20 * time.Millisecond, Seed: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := r.Stats(); st.Failovers >= 4 {
			break // both candidates tried at least twice: a full cycle and more
		}
		if time.Now().After(deadline) {
			t.Fatalf("relay failovers stuck at %d, want >= 4", r.Stats().Failovers)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
