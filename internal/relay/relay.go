// Package relay implements the edge relay of a DMP distribution tree: a
// node that joins an upstream hub (or another relay) as an ordinary
// multipath subscriber and re-fans the received stream through its own
// local hub.Hub to downstream subscribers — the paper's Fig-7 relay
// generalized to a CDN shape, where the origin serves hundreds of relays
// instead of millions of clients.
//
// The upstream side reuses the whole client resilience stack verbatim:
// core.Client's capped-backoff redial engine drives the relay's upstream
// paths, the DMPJ join carries a stable re-attach token (so the upstream
// subscription — and its resend window — survives path flaps, candidate
// failover and even a relay restart that preserved the token), and the
// join sets core.JoinFlagAbsolute, so packet numbering is origin-absolute
// at every tier. Absolute numbering is what makes the tree's failure
// story compose: a replayed resend window, a failover to another upstream
// address, or a restarted mid-tier hub all re-deliver packets under the
// same identity, and each tier's dedup (the forwarder here, core.Receiver
// at the leaves) collapses them exactly once.
//
// Robustness model:
//
//   - Ranked upstream candidates. Config.Upstreams lists addresses that
//     reach the same logical upstream feed (the direct address plus
//     alternate routes/front-ends). Path k starts on candidate k mod N
//     for path diversity; every abnormal path death rotates that path to
//     the next candidate (primary → secondary → … → back to primary),
//     while the redial engine applies its capped backoff per attempt.
//   - Upstream health: Connecting → Healthy/Degraded → Orphaned/Ended.
//     While at least one upstream path is live the relay is Healthy (all
//     paths) or Degraded (some). When the last path drops, an orphan
//     countdown of Config.OrphanGrace starts; if nothing re-attaches in
//     time the relay declares the upstream lost: the local hub Fails with
//     RejectUpstreamLost — live downstream subscribers drain what the
//     relay holds and get a clean end marker, new joiners get the typed
//     DMPR reject — instead of hanging its subscribers on a silent feed.
//   - Every tier keeps the hub's own protections: admission caps, join
//     timeouts, the byte-budget governor and the lag-window policy all
//     apply to the relay's downstream side exactly as at the origin.
//   - Two-phase cascading drain. Drain detaches from the upstream first
//     (so the origin frees this relay's slot), flushes the reorder buffer
//     into the local ring, then drains downstream with end markers.
//
// Lock hierarchy (extends DESIGN.md §7): relay.Relay.mu and
// relay.forwarder.mu sit above the hub locks — forwarder.mu ≺
// hub.Hub.govMu ≺ hub.shard.mu ≺ hub.ring.mu (the ingest edge), and
// neither relay lock is ever taken while a hub lock is held.
package relay

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"dmpstream/internal/core"
	"dmpstream/internal/hub"
)

// DefaultOrphanGrace is how long the relay tolerates having zero live
// upstream paths before declaring the upstream lost.
const DefaultOrphanGrace = 10 * time.Second

// DefaultReorderWindow bounds the forwarder's reorder buffer: a gap still
// open after this many newer packets have parked is abandoned. It must
// comfortably exceed the upstream's resend window plus in-flight path
// skew, or failover replays arrive "too late" and turn into gaps.
const DefaultReorderWindow = 256

// DefaultDialTimeout bounds one upstream candidate dial.
const DefaultDialTimeout = 5 * time.Second

// ErrNoUpstream is returned by Serve when the relay never established an
// upstream feed (orphaned before the first stream header).
var ErrNoUpstream = errors.New("relay: no upstream feed")

// State is the relay's upstream-health state.
type State int

const (
	// StateConnecting: no upstream path has delivered a header yet (the
	// orphan countdown is already running).
	StateConnecting State = iota
	// StateHealthy: every configured upstream path is live.
	StateHealthy
	// StateDegraded: some upstream paths are down, at least one is live.
	StateDegraded
	// StateOrphaned: zero live paths for longer than the orphan grace; the
	// local hub has Failed with RejectUpstreamLost.
	StateOrphaned
	// StateEnded: the upstream delivered its end marker; the local hub is
	// propagating end-of-stream downstream.
	StateEnded
)

func (s State) String() string {
	switch s {
	case StateConnecting:
		return "connecting"
	case StateHealthy:
		return "healthy"
	case StateDegraded:
		return "degraded"
	case StateOrphaned:
		return "orphaned"
	case StateEnded:
		return "ended"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Config describes one edge relay.
type Config struct {
	// Upstreams is the ranked candidate address list for the upstream
	// feed — every entry must reach the same logical stream (the origin
	// hub directly, or routes/front-ends to it). Required, at least one.
	Upstreams []string
	// StreamID names the stream: it is sent in the upstream join and
	// served to downstream joiners. Default "live".
	StreamID string
	// Paths is how many upstream path connections to run. Default 2.
	Paths int
	// Token is the upstream subscription token. The zero value draws a
	// random one; pass an explicit token to re-attach an earlier relay
	// incarnation's subscription after a restart (within the upstream's
	// re-attach grace), so its resend window replays instead of the
	// stream gapping.
	Token core.Token
	// Redial is the upstream redial policy. A zero Base selects a capped
	// exponential default (50ms base, 1s cap, unlimited budget).
	Redial core.RedialPolicy
	// DialTimeout bounds one candidate dial. 0 selects DefaultDialTimeout.
	DialTimeout time.Duration
	// OrphanGrace is how long the relay tolerates zero live upstream paths
	// before declaring the upstream lost and failing its local hub with
	// RejectUpstreamLost. 0 selects DefaultOrphanGrace.
	OrphanGrace time.Duration
	// ReorderWindow bounds the upstream reorder buffer (see
	// DefaultReorderWindow). 0 selects the default.
	ReorderWindow int
	// Hub configures the local downstream fan-out (lag window, policy,
	// delivery, admission caps, byte budget, grace windows — everything a
	// standalone hub takes). Its Stream rate/payload and StreamID are
	// overridden from the upstream header and StreamID above, and
	// ExternalSource is forced on.
	Hub hub.Config
	// Logf, when set, receives progress lines (state transitions,
	// failovers, orphan verdicts).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() (Config, error) {
	if len(c.Upstreams) == 0 {
		return c, errors.New("relay: no upstream candidates")
	}
	if c.StreamID == "" {
		c.StreamID = "live"
	}
	if err := core.ValidateStreamID(c.StreamID); err != nil {
		return c, fmt.Errorf("relay: %w", err)
	}
	if c.Paths == 0 {
		c.Paths = 2
	}
	if c.Paths < 0 {
		return c, fmt.Errorf("relay: paths %d < 0", c.Paths)
	}
	if c.Redial.Base == 0 {
		c.Redial = core.RedialPolicy{
			Base:       50 * time.Millisecond,
			Max:        time.Second,
			Multiplier: 2,
			Jitter:     0.3,
			Seed:       c.Redial.Seed,
		}
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = DefaultDialTimeout
	}
	if c.OrphanGrace == 0 {
		c.OrphanGrace = DefaultOrphanGrace
	}
	if c.OrphanGrace < 0 {
		return c, fmt.Errorf("relay: orphan grace %v < 0", c.OrphanGrace)
	}
	if c.ReorderWindow == 0 {
		c.ReorderWindow = DefaultReorderWindow
	}
	if c.ReorderWindow < 0 {
		return c, fmt.Errorf("relay: reorder window %d < 0", c.ReorderWindow)
	}
	return c, nil
}

// Relay is a running edge relay: an upstream multipath subscription being
// republished through a local hub.
type Relay struct {
	cfg    Config
	token  core.Token
	fwd    *forwarder
	client *core.Client
	wg     sync.WaitGroup

	readyCh      chan struct{} // closed once the local hub exists
	failCh       chan struct{} // closed if the relay gives up before a hub exists
	stopCh       chan struct{} // closed once upstream consumption is over (cancel orphan timers)
	upstreamDone chan struct{} // closed once the upstream manager (redial engine + flush) exited

	mu         sync.Mutex
	h          *hub.Hub // guarded by mu; written once by onHeader
	hubMu      float64  // guarded by mu; upstream-announced rate
	hubPayload int      // guarded by mu; upstream-announced payload size
	up         []bool   // guarded by mu; per-path liveness (header-delivering conns)
	live       int      // guarded by mu; count of true entries in up
	cand       []int    // guarded by mu; per-path current candidate index
	failovers  int64    // guarded by mu; candidate rotations on multi-candidate configs
	orphaned   bool     // guarded by mu
	ended      bool     // guarded by mu; upstream end marker seen
	cancelled  bool     // guarded by mu; stop dialing upstream (Close/Drain/orphan)
	orphanGen   int64 // guarded by mu; versions the pending orphan countdown
	orphanArmed bool  // guarded by mu; a countdown is pending (don't re-arm per retry)
	readySig   bool     // guarded by mu; readyCh already closed
	failSig    bool     // guarded by mu; failCh already closed
	stopSig    bool     // guarded by mu; stopCh already closed
}

// New validates cfg, draws (or adopts) the upstream token and starts the
// upstream subscription. The local hub comes up once the first upstream
// stream header fixes the feed's rate and payload size; Serve blocks on
// that. Shut down with Drain (graceful) or Close.
func New(cfg Config) (*Relay, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	tok := cfg.Token
	if tok == (core.Token{}) {
		if tok, err = core.NewToken(); err != nil {
			return nil, fmt.Errorf("relay: %w", err)
		}
	}
	// Path k starts on candidate k round-robin, so a multi-path relay
	// spreads its paths across the upstream list from the first dial.
	cand := make([]int, cfg.Paths)
	for k := range cand {
		cand[k] = k % len(cfg.Upstreams)
	}
	r := &Relay{
		cfg:          cfg,
		token:        tok,
		readyCh:      make(chan struct{}),
		failCh:       make(chan struct{}),
		stopCh:       make(chan struct{}),
		upstreamDone: make(chan struct{}),
		up:           make([]bool, cfg.Paths),
		cand:         cand,
	}
	r.fwd = newForwarder(r)
	r.client = &core.Client{
		Paths:      cfg.Paths,
		Dial:       r.dialUpstream,
		Join:       &core.Join{StreamID: cfg.StreamID, Token: tok, Flags: core.JoinFlagAbsolute},
		Policy:     cfg.Redial,
		OnPathUp:   r.pathUp,
		OnPathDown: r.pathDown,
	}
	// The initial orphan countdown: a relay that never reaches any
	// candidate must not sit Connecting forever.
	r.armOrphanTimer()
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		defer close(r.upstreamDone)
		errs := r.client.RunWith(r.fwd)
		r.onUpstreamDone(errs)
	}()
	return r, nil
}

// Token returns the upstream subscription token — persist it to re-attach
// a restarted relay to the same upstream subscription.
func (r *Relay) Token() core.Token { return r.token }

// Hub returns the local downstream hub, or nil before the first upstream
// header has arrived.
func (r *Relay) Hub() *hub.Hub {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.h
}

// Ready is closed once the local hub exists (the first upstream header
// arrived).
func (r *Relay) Ready() <-chan struct{} { return r.readyCh }

func (r *Relay) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// dialUpstream opens path k's connection to its current candidate.
// After the relay is cancelled (Close, Drain, orphan verdict) it returns
// an error carrying a typed reject so the redial engine treats it as a
// verdict and retires the path instead of backing off forever.
func (r *Relay) dialUpstream(k int) (net.Conn, error) {
	r.mu.Lock()
	if r.cancelled || r.ended {
		r.mu.Unlock()
		return nil, fmt.Errorf("relay: upstream detached: %w",
			&core.RejectError{Code: core.RejectStreamEnded})
	}
	addr := r.cfg.Upstreams[r.cand[k]%len(r.cfg.Upstreams)]
	r.mu.Unlock()
	return net.DialTimeout("tcp", addr, r.cfg.DialTimeout)
}

// pathUp marks path k live: any pending orphan countdown is superseded.
// Called from the path's goroutine on every (re)attach.
func (r *Relay) pathUp(k, attempt int) {
	r.mu.Lock()
	if !r.up[k] {
		r.up[k] = true
		r.live++
		r.orphanGen++ // supersede any pending orphan countdown
		r.orphanArmed = false
	}
	live, paths := r.live, r.cfg.Paths
	r.mu.Unlock()
	r.logf("relay: path %d up (attempt %d), %d/%d live", k, attempt, live, paths)
}

// pathDown marks path k dead, rotates it to the next upstream candidate,
// and — when it was the last live path — starts the orphan countdown.
// Called from the path's goroutine on dial failures and connection
// deaths alike.
func (r *Relay) pathDown(k int, err error) {
	r.mu.Lock()
	if r.up[k] {
		r.up[k] = false
		r.live--
	}
	if r.cancelled || r.ended || r.orphaned {
		r.mu.Unlock()
		return
	}
	r.cand[k] = (r.cand[k] + 1) % len(r.cfg.Upstreams)
	if len(r.cfg.Upstreams) > 1 {
		r.failovers++
	}
	arm := r.live == 0
	live := r.live
	r.mu.Unlock()
	r.logf("relay: path %d down (%v), %d live, next candidate %d", k, err, live, k)
	if arm {
		r.armOrphanTimer()
	}
}

// armOrphanTimer starts an orphan countdown unless one is already
// pending — every failed redial reports another pathDown, and re-arming
// per retry would push the verdict out forever. The timer fires after
// OrphanGrace unless a path comes up (orphanGen moves on, orphanArmed
// clears) or the relay stops (stopCh).
func (r *Relay) armOrphanTimer() {
	r.mu.Lock()
	if r.orphanArmed || r.cancelled || r.ended || r.orphaned {
		r.mu.Unlock()
		return
	}
	r.orphanArmed = true
	r.orphanGen++
	gen := r.orphanGen
	r.mu.Unlock()
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		t := time.NewTimer(r.cfg.OrphanGrace)
		select {
		case <-t.C:
		case <-r.stopCh:
			t.Stop()
			return
		}
		r.orphanFire(gen)
	}()
}

// orphanFire delivers the orphan verdict for countdown generation gen,
// unless it was superseded: the relay detaches from the upstream for good
// and the local hub (if any) Fails with RejectUpstreamLost — live
// subscribers drain what the relay holds and get an end marker, new
// joiners get the typed reject.
func (r *Relay) orphanFire(gen int64) {
	r.mu.Lock()
	if r.orphanGen != gen || r.live > 0 || r.ended || r.cancelled || r.orphaned {
		r.mu.Unlock()
		return
	}
	r.orphaned = true
	r.cancelled = true
	r.signalStopLocked()
	h := r.h
	if h == nil {
		r.signalFailLocked()
	}
	r.mu.Unlock()
	r.logf("relay: orphaned: no live upstream path for %v", r.cfg.OrphanGrace)
	r.fwd.flush()
	if h != nil {
		h.Fail(core.RejectUpstreamLost)
	}
	for _, c := range r.fwd.activeConns() {
		_ = c.Close()
	}
}

// onHeader reacts to an upstream stream header: the first one fixes the
// feed's rate and payload size and brings the local hub up; later ones
// (redials, other paths) must agree with it.
func (r *Relay) onHeader(mu float64, payload int) error {
	r.mu.Lock()
	if r.h != nil {
		ok := r.hubMu == mu && r.hubPayload == payload
		r.mu.Unlock()
		if !ok {
			return fmt.Errorf("relay: upstream header changed: µ=%v payload=%d", mu, payload)
		}
		return nil
	}
	if r.cancelled || r.ended || r.orphaned {
		r.mu.Unlock()
		return fmt.Errorf("relay: stream already over")
	}
	r.mu.Unlock()

	hc := r.cfg.Hub
	hc.ExternalSource = true
	hc.StreamID = r.cfg.StreamID
	hc.Stream.Mu = mu
	hc.Stream.PayloadSize = payload
	hc.Stream.Count = 0
	hc.Stream.Fill = nil
	h, err := hub.New(hc)
	if err != nil {
		// A hub that cannot be built from the upstream's own header will
		// never build: give up rather than redial into the same wall.
		r.mu.Lock()
		r.cancelled = true
		r.signalStopLocked()
		r.signalFailLocked()
		r.mu.Unlock()
		return fmt.Errorf("relay: local hub: %w", err)
	}
	r.mu.Lock()
	if r.h == nil && !r.cancelled {
		r.h = h
		r.hubMu, r.hubPayload = mu, payload
		r.fwd.setHub(h)
		r.signalReadyLocked()
		r.mu.Unlock()
		r.logf("relay: local hub up: µ=%v payload=%d", mu, payload)
		return nil
	}
	// Lost the bring-up race to another path, or cancelled meanwhile:
	// discard the spare hub (no generator to join — ExternalSource).
	r.mu.Unlock()
	h.Close()
	r.mu.Lock()
	ok := r.h != nil && r.hubMu == mu && r.hubPayload == payload
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("relay: stream already over")
	}
	return nil
}

// onUpstreamDone runs once the redial engine has retired every upstream
// path: flush the reorder buffer and settle the local hub's fate.
func (r *Relay) onUpstreamDone(errs []error) {
	r.fwd.flush()
	r.mu.Lock()
	ended := r.ended
	decided := r.cancelled || r.orphaned
	r.signalStopLocked()
	h := r.h
	if h == nil {
		r.signalFailLocked()
	}
	r.mu.Unlock()
	switch {
	case h == nil:
		// Never got a single header: nothing downstream to settle.
	case ended:
		// Graceful end-of-stream: senders drain the ring and emit end
		// markers carrying the absolute head.
		h.Stop()
	case decided:
		// Close/Drain/orphan already settled the hub.
	default:
		// Every path gave up (budget spent, upstream verdicts) without an
		// end marker: the feed is lost for good.
		r.mu.Lock()
		r.orphaned = true
		r.mu.Unlock()
		h.Fail(core.RejectUpstreamLost)
	}
	for _, err := range errs {
		if err != nil {
			r.logf("relay: upstream path retired: %v", err)
		}
	}
}

// noteEnded records the upstream end marker (called by the forwarder on
// the first one).
func (r *Relay) noteEnded() {
	r.mu.Lock()
	r.ended = true
	r.signalStopLocked()
	r.mu.Unlock()
	r.logf("relay: upstream stream ended")
}

// signalReadyLocked / signalFailLocked / signalStopLocked close their
// channel exactly once. Caller holds r.mu.
func (r *Relay) signalReadyLocked() {
	if !r.readySig {
		r.readySig = true
		close(r.readyCh)
	}
}

func (r *Relay) signalFailLocked() {
	if !r.failSig {
		r.failSig = true
		close(r.failCh)
	}
}

func (r *Relay) signalStopLocked() {
	if !r.stopSig {
		r.stopSig = true
		close(r.stopCh)
	}
}

// Serve accepts downstream subscribers on ln, blocking first until the
// upstream feed exists (the local hub needs the upstream header's rate
// and payload size). If the relay orphans before ever seeing a header,
// ln is closed and ErrNoUpstream returned. Once serving, the listener
// keeps answering joins even after the stream ends or fails — with the
// typed verdict (stream-ended, upstream-lost) — until Close.
func (r *Relay) Serve(ln net.Listener) error {
	select {
	case <-r.readyCh:
	case <-r.failCh:
		_ = ln.Close()
		return ErrNoUpstream
	}
	return r.hubOrNil().Serve(ln)
}

// hubOrNil returns the hub pointer without the nil-vs-ready ceremony;
// only called after readyCh.
func (r *Relay) hubOrNil() *hub.Hub {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.h
}

// BeginDrain closes downstream admission (fresh tokens get a draining
// reject; re-attaches of live subscriptions still heal). The upstream
// side is untouched — pair with Drain for the full cascade.
func (r *Relay) BeginDrain() {
	if h := r.Hub(); h != nil {
		h.BeginDrain()
	}
}

// Drain is the cascading two-phase shutdown: close downstream admission,
// detach from the upstream (freeing this relay's slot at the origin),
// flush the reorder buffer into the local ring, then drain downstream —
// every live path gets the remaining ring contents and an end marker.
// It returns true when every downstream path drained within timeout.
func (r *Relay) Drain(timeout time.Duration) bool {
	r.BeginDrain()
	r.cancelUpstream()
	select {
	case <-r.upstreamDone: // reorder buffer flushed
	case <-time.After(timeout):
	}
	h := r.Hub()
	if h == nil {
		r.wg.Wait()
		return true
	}
	ok := h.Drain(timeout)
	r.wg.Wait()
	return ok
}

// cancelUpstream detaches from the upstream: no more dials (the redial
// engine gets a typed verdict) and the live upstream connections are cut.
func (r *Relay) cancelUpstream() {
	r.mu.Lock()
	r.cancelled = true
	r.signalStopLocked()
	r.mu.Unlock()
	for _, c := range r.fwd.activeConns() {
		_ = c.Close()
	}
}

// Close force-stops the relay: the upstream detaches, the local hub (if
// any) force-closes with its listeners and subscriber connections, and
// every goroutine the relay started is joined.
func (r *Relay) Close() {
	r.cancelUpstream()
	if h := r.Hub(); h != nil {
		h.Close()
	}
	r.wg.Wait()
}

// Stats is a point-in-time snapshot of the relay.
type Stats struct {
	State      State
	LivePaths  int   // upstream paths currently delivering
	Paths      int   // configured upstream paths
	Candidates []int // per-path current candidate index into Upstreams
	Failovers  int64 // candidate rotations (multi-candidate configs)
	Forwarded  int64 // packets republished into the local ring
	LateDrops  int64 // upstream duplicates / too-late arrivals discarded
	Reordered  int64 // packets that parked in the reorder buffer
	GapSkips   int64 // sequences abandoned past the reorder window
	Refused    int64 // publishes the local hub refused (stopped/draining)
	Held       int   // packets currently parked in the reorder buffer
	Ended      bool  // upstream end marker seen
	Expected   int64 // end-marker packet count (absolute head), once Ended
	HubReady   bool  // the local hub exists
	Hub        hub.Stats
}

// Stats snapshots the relay: upstream health first, then the forwarder
// counters, then (when ready) the local hub's own snapshot.
func (r *Relay) Stats() Stats {
	r.mu.Lock()
	st := Stats{
		LivePaths:  r.live,
		Paths:      r.cfg.Paths,
		Candidates: append([]int(nil), r.cand...),
		Failovers:  r.failovers,
	}
	switch {
	case r.orphaned:
		st.State = StateOrphaned
	case r.ended:
		st.State = StateEnded
	case r.live == 0:
		st.State = StateConnecting
	case r.live >= r.cfg.Paths:
		st.State = StateHealthy
	default:
		st.State = StateDegraded
	}
	h := r.h
	r.mu.Unlock()
	f := r.fwd
	f.mu.Lock()
	st.Forwarded = f.forwarded
	st.LateDrops = f.lateDrops
	st.Reordered = f.reordered
	st.GapSkips = f.gapSkips
	st.Refused = f.refused
	st.Held = len(f.pending)
	st.Ended = f.endSeen
	st.Expected = f.expected
	f.mu.Unlock()
	if h != nil {
		st.HubReady = true
		st.Hub = h.Stats()
	}
	return st
}
