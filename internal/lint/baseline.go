package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Baseline support: adopt-then-burn-down. `dmplint -baseline f
// -update-baseline` records the current findings; later runs with
// `-baseline f` fail only on findings NOT in the file, so a new analyzer
// can land with existing debt frozen and burned down incrementally.
//
// Entries are keyed by (analyzer, file, message) with a count — line
// numbers are deliberately excluded so unrelated edits shifting code
// around do not resurrect baselined findings. Fixing one of N identical
// findings in a file is still progress: the count caps how many matching
// findings are waived.

// baselineVersion guards the file format.
const baselineVersion = 1

// BaselineEntry is one waived finding class.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

type baselineFile struct {
	Version int             `json:"version"`
	Entries []BaselineEntry `json:"entries"`
}

func baselineKey(analyzer, file, message string) string {
	return analyzer + "\x00" + file + "\x00" + message
}

// WriteBaselineFile records findings (suppressed ones excluded — those
// are already waived inline) as the new baseline at path.
func WriteBaselineFile(path string, findings []Finding) error {
	counts := map[string]BaselineEntry{}
	for _, f := range findings {
		if f.Suppressed {
			continue
		}
		k := baselineKey(f.Analyzer, f.File(), f.Message)
		e := counts[k]
		e.Analyzer, e.File, e.Message = f.Analyzer, f.File(), f.Message
		e.Count++
		counts[k] = e
	}
	bf := baselineFile{Version: baselineVersion}
	for _, e := range counts {
		bf.Entries = append(bf.Entries, e)
	}
	sort.Slice(bf.Entries, func(i, j int) bool {
		a, b := bf.Entries[i], bf.Entries[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadBaselineFile reads a baseline into waived-count form.
func LoadBaselineFile(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %w", path, err)
	}
	if bf.Version != baselineVersion {
		return nil, fmt.Errorf("lint: baseline %s has version %d, want %d", path, bf.Version, baselineVersion)
	}
	out := map[string]int{}
	for _, e := range bf.Entries {
		out[baselineKey(e.Analyzer, e.File, e.Message)] += e.Count
	}
	return out, nil
}

// FilterBaseline returns the findings not covered by the baseline:
// suppressed findings never gate, and each baseline entry waives up to
// Count matching findings. The remainder — new debt — is what fails the
// build.
func FilterBaseline(findings []Finding, baseline map[string]int) []Finding {
	remaining := make(map[string]int, len(baseline))
	for k, v := range baseline {
		remaining[k] = v
	}
	var out []Finding
	for _, f := range findings {
		if f.Suppressed {
			continue
		}
		k := baselineKey(f.Analyzer, f.File(), f.Message)
		if remaining[k] > 0 {
			remaining[k]--
			continue
		}
		out = append(out, f)
	}
	return out
}
