// Buffer-ownership analysis: the `// bufown` annotation vocabulary and
// the borrow/escape analyzer that makes a zero-copy fan-out refactor
// safe to attempt.
//
// The hub's ring slots are reused every ring lap, so any []byte that
// aliases a slot payload is a loan with frame-scoped lifetime: the
// moment `hub.ring.frame` stops copying, a retained or mutated alias is
// a cross-lap data race. PR 7 built the enforcement floor for
// allocations (hotalloc/copycheck over the hotpath closure); bufown is
// the matching floor for aliasing and lifetime.
//
// Annotation grammar — doc-comment lines whose first word is "bufown":
//
//	// bufown borrowed [param...]   function params that alias a shared
//	                                frame payload; no names = every
//	                                []byte param
//	// bufown owned [param...]      params the callee may mutate/retain
//	                                (ownership transfers at the call)
//	// bufown sink <reason>         a sanctioned handoff point; borrowed
//	                                slices may be passed in freely
//
// Struct fields take the same markers in their doc or trailing comment:
//
//	payload []byte // bufown owned — slot buffer, reused every lap
//	view    []byte // bufown borrowed release-by drop
//
// An owned field holds bytes its struct may rewrite at any time, so
// reading it from outside the owning struct's methods yields a borrow.
// A borrowed field is a sanctioned retained alias and MUST name the
// method that drops it (`release-by <method>`, checked to exist);
// storing a borrow into any other field is an escape.
//
// Enforcement is an intraprocedural forward dataflow pass over every
// function in the hotpath closure plus every function carrying a bufown
// annotation. Borrowed params and non-owner reads of annotated fields
// seed a taint set; re-slicing (`b[4:]`, `b[:n]`) and assignment chains
// propagate it to a fixed point. On the tainted set the analyzer
// convicts:
//
//	mutation  index/IncDec assignment into the slice, append to it,
//	          copy into it, or passing it to a resolvable module
//	          function whose parameter is not marked borrowed or sink
//	escape    store into a struct field (unless the field is borrowed
//	          with a release-by pairing), a package-level var, a map, a
//	          channel send, or capture by a go/closure subtree
//
// Reading a borrow, copying OUT of it, returning it, and handing it to
// a sink — an annotated module sink, net.Conn.Write, or a net.Buffers
// batch — are all allowed. Unresolvable callees and types stay quiet,
// per the suite's "unknown: stay quiet" convention, and every check
// honors `// nolint:bufown reason`.
//
// `dmplint -bufgraph` dumps the borrow edges the pass derives (field →
// borrower, lender → borrowed param, function → sink) as Graphviz dot.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// bufFn is one declared function in the ownership table.
type bufFn struct {
	key  string
	pkg  *Package
	file *File
	fd   *ast.FuncDecl

	params    []string // declared param names, flattened, in order
	borrowed  map[string]bool
	owned     map[string]bool
	sink      bool
	annotated bool // any bufown doc line present
}

// bufField is one annotated struct field.
type bufField struct {
	key       string // pkg.Struct.Field
	pkgPath   string
	owner     string // struct type name
	name      string
	mode      string // "borrowed" or "owned"
	releaseBy string
}

// bufIndex is the lazily computed module-wide ownership table.
type bufIndex struct {
	fns    map[string]*bufFn    // every declared function, by summaryKey
	fields map[string]*bufField // annotated fields, by pkg.Struct.Field
	errs   map[string][]Finding // annotation-grammar findings, by pkg
}

// buf computes the ownership table once per Index.
func (idx *Index) buf() *bufIndex {
	idx.bufOnce.Do(func() {
		idx.bufIdx = buildBufIndex(idx)
	})
	return idx.bufIdx
}

// bufownLines extracts the token lists of `bufown ...` lines from a
// comment group: a line counts when its first word is exactly "bufown",
// so prose about ownership does not annotate.
func bufownLines(cg *ast.CommentGroup) [][]string {
	if cg == nil {
		return nil
	}
	var out [][]string
	for _, line := range strings.Split(cg.Text(), "\n") {
		fields := strings.Fields(line)
		if len(fields) >= 2 && fields[0] == "bufown" {
			out = append(out, fields[1:])
		}
	}
	return out
}

// bufToken strips the punctuation that prose-style annotations attach
// ("release-by drop." or "frame,").
func bufToken(s string) string {
	return strings.Trim(s, "—-.,:;()")
}

func buildBufIndex(idx *Index) *bufIndex {
	bi := &bufIndex{
		fns:    map[string]*bufFn{},
		fields: map[string]*bufField{},
		errs:   map[string][]Finding{},
	}
	errf := func(pkg *Package, file *File, pos token.Pos, format string, args ...any) {
		bi.errs[pkg.ImportPath] = append(bi.errs[pkg.ImportPath],
			finding(file, pos, "bufown", format, args...))
	}

	for _, pkg := range idx.pkgs {
		for _, file := range pkg.Files {
			if file.Test {
				continue
			}
			for _, decl := range file.AST.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					key := summaryKey(pkg, d)
					if key == "" || bi.fns[key] != nil {
						continue
					}
					fn := &bufFn{key: key, pkg: pkg, file: file, fd: d,
						borrowed: map[string]bool{}, owned: map[string]bool{}}
					byteParams := map[string]bool{}
					if d.Type.Params != nil {
						for _, f := range d.Type.Params.List {
							t := resolveType(file, pkg.ImportPath, f.Type)
							isBytes := t != nil && t.Slice && t.Elem != nil && t.Elem.Name == "byte"
							for _, name := range f.Names {
								fn.params = append(fn.params, name.Name)
								if isBytes {
									byteParams[name.Name] = true
								}
							}
						}
					}
					declared := map[string]bool{}
					for _, p := range fn.params {
						declared[p] = true
					}
					for _, toks := range bufownLines(d.Doc) {
						fn.annotated = true
						mode := toks[0]
						switch mode {
						case "sink":
							fn.sink = true
						case "borrowed", "owned":
							set := fn.borrowed
							if mode == "owned" {
								set = fn.owned
							}
							named := false
							for _, tok := range toks[1:] {
								name := bufToken(tok)
								if name == "" {
									continue
								}
								if !declared[name] {
									// Past the param list the line is prose
									// ("bufown borrowed frame — aliases a
									// ring slot"); only the leading tokens
									// must name params.
									break
								}
								set[name] = true
								named = true
							}
							if !named {
								// No names: every []byte param.
								for p := range byteParams {
									set[p] = true
								}
								if len(byteParams) == 0 {
									errf(pkg, file, d.Pos(),
										"bufown %s on %s names no parameter and the function has no []byte parameter",
										mode, d.Name.Name)
								}
							}
						default:
							errf(pkg, file, d.Pos(),
								"unknown bufown mode %q on %s (want borrowed, owned, or sink)",
								mode, d.Name.Name)
						}
					}
					bi.fns[key] = fn
				case *ast.GenDecl:
					if d.Tok != token.TYPE {
						continue
					}
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						st, ok := ts.Type.(*ast.StructType)
						if !ok {
							continue
						}
						for _, f := range st.Fields.List {
							lines := append(bufownLines(f.Doc), bufownLines(f.Comment)...)
							if len(lines) == 0 {
								continue
							}
							for _, name := range f.Names {
								fld := &bufField{
									pkgPath: pkg.ImportPath, owner: ts.Name.Name, name: name.Name,
									key: pkg.ImportPath + "." + ts.Name.Name + "." + name.Name,
								}
								for _, toks := range lines {
									switch toks[0] {
									case "borrowed", "owned":
										fld.mode = toks[0]
									default:
										errf(pkg, file, f.Pos(),
											"unknown bufown mode %q on field %s.%s (want borrowed or owned)",
											toks[0], ts.Name.Name, name.Name)
									}
									for i, tok := range toks {
										if bufToken(tok) == "release-by" && i+1 < len(toks) {
											fld.releaseBy = bufToken(toks[i+1])
										}
									}
								}
								if fld.mode == "" {
									continue
								}
								switch {
								case fld.mode == "borrowed" && fld.releaseBy == "":
									errf(pkg, file, f.Pos(),
										"field %s.%s is bufown borrowed but names no release-by method; a retained borrow must declare how the alias is dropped",
										ts.Name.Name, name.Name)
								case fld.releaseBy != "":
									if _, ok := idx.methodResults[pkg.ImportPath][ts.Name.Name][fld.releaseBy]; !ok {
										errf(pkg, file, f.Pos(),
											"field %s.%s names release-by method %q which %s does not declare",
											ts.Name.Name, name.Name, fld.releaseBy, ts.Name.Name)
									}
								}
								bi.fields[fld.key] = fld
							}
						}
					}
				}
			}
		}
	}
	return bi
}

// paramAt maps an argument index to the callee's parameter name,
// clamping trailing arguments onto a variadic final parameter.
func (fn *bufFn) paramAt(i int) string {
	if len(fn.params) == 0 {
		return ""
	}
	if i >= len(fn.params) {
		i = len(fn.params) - 1
	}
	return fn.params[i]
}

// BufEdge is one edge of the borrow graph: who holds an alias of whose
// bytes, and through which sanctioned channel it leaves.
type BufEdge struct {
	From string // field key (borrow) or function key (lend/store/sink)
	To   string // borrowing function, borrowed-param callee, field, or sink
	Kind string // "borrow", "lend", "store", or "sink"
}

func (e BufEdge) key() string { return e.Kind + "\x00" + e.From + "\x00" + e.To }

// bufownFunc runs the dataflow pass over one function, returning its
// convictions and the borrow edges it contributes to the graph.
func bufownFunc(idx *Index, bi *bufIndex, fn *bufFn) ([]Finding, []BufEdge) {
	e := funcEnv(idx, fn.pkg, fn.file, fn.fd)
	var out []Finding
	var edges []BufEdge
	edgeSeen := map[string]bool{}
	addEdge := func(from, to, kind string) {
		ed := BufEdge{From: from, To: to, Kind: kind}
		if !edgeSeen[ed.key()] {
			edgeSeen[ed.key()] = true
			edges = append(edges, ed)
		}
	}
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, finding(fn.file, pos, "bufown", format, args...))
	}

	recvName := ""
	if fn.fd.Recv != nil && len(fn.fd.Recv.List) > 0 {
		if t := resolveType(fn.file, fn.pkg.ImportPath, fn.fd.Recv.List[0].Type); t != nil {
			recvName = t.Name
		}
	}

	// locals is every name the function genuinely declares (receiver,
	// params, :=, var, range). The env's vars map also absorbs plain `=`
	// assignments, so it cannot distinguish a local from a package-level
	// var being overwritten — this set can.
	locals := map[string]bool{}
	addNames := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				locals[name.Name] = true
			}
		}
	}
	addNames(fn.fd.Recv)
	addNames(fn.fd.Type.Params)
	addNames(fn.fd.Type.Results)
	ast.Inspect(fn.fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						locals[id.Name] = true
					}
				}
			}
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, name := range vs.Names {
							locals[name.Name] = true
						}
					}
				}
			}
		case *ast.RangeStmt:
			if n.Tok == token.DEFINE {
				for _, x := range []ast.Expr{n.Key, n.Value} {
					if id, ok := x.(*ast.Ident); ok {
						locals[id.Name] = true
					}
				}
			}
		case *ast.FuncLit:
			addNames(n.Type.Params)
			addNames(n.Type.Results)
		}
		return true
	})

	// typeOfExt falls back to package-level var types, which the
	// per-function env does not track.
	typeOfExt := func(x ast.Expr) *TypeRef {
		if t := e.typeOf(x); t != nil {
			return t
		}
		if id, ok := x.(*ast.Ident); ok && !locals[id.Name] {
			return idx.pkgVars[fn.pkg.ImportPath][id.Name]
		}
		return nil
	}

	// fieldOf resolves a selector to its bufown field annotation.
	fieldOf := func(sel *ast.SelectorExpr) *bufField {
		base := e.typeOf(sel.X)
		if base == nil || base.Name == "" {
			return nil
		}
		return bi.fields[base.Path+"."+base.Name+"."+sel.Sel.Name]
	}

	taint := map[string]bool{}
	for p := range fn.borrowed {
		taint[p] = true
	}

	// tainted reports whether x evaluates to a borrowed slice: a tainted
	// local, a re-slice or paren of one, or a read of an annotated field
	// (owned fields only borrow outside the owning struct's methods —
	// the owner manages its own buffer).
	var tainted func(x ast.Expr) bool
	tainted = func(x ast.Expr) bool {
		switch x := x.(type) {
		case *ast.Ident:
			return taint[x.Name]
		case *ast.ParenExpr:
			return tainted(x.X)
		case *ast.SliceExpr:
			return tainted(x.X)
		case *ast.SelectorExpr:
			fld := fieldOf(x)
			if fld == nil {
				return false
			}
			if fld.mode == "owned" && fld.pkgPath == fn.pkg.ImportPath && fld.owner == recvName {
				return false
			}
			return true
		}
		return false
	}

	// Propagate taint through assignment chains to a fixed point. Only
	// slice-valued expressions carry it: b[i] is a byte, not an alias.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn.fd.Body, func(n ast.Node) bool {
			a, ok := n.(*ast.AssignStmt)
			if !ok || len(a.Lhs) != len(a.Rhs) {
				return true
			}
			for i, lhs := range a.Lhs {
				id, ok := lhs.(*ast.Ident)
				if ok && id.Name != "_" && !taint[id.Name] && tainted(a.Rhs[i]) {
					taint[id.Name] = true
					changed = true
				}
			}
			return true
		})
	}

	describe := func(x ast.Expr) string {
		if s := selectorPath(x); s != "" {
			return s
		}
		return "borrowed slice"
	}

	// reportCaptures convicts tainted free identifiers inside a function
	// literal: the closure may outlive the frame, so the borrow escapes.
	reportCaptures := func(fl *ast.FuncLit, how string) {
		shadow := map[string]bool{}
		if fl.Type.Params != nil {
			for _, f := range fl.Type.Params.List {
				for _, name := range f.Names {
					shadow[name.Name] = true
				}
			}
		}
		selNames := map[*ast.Ident]bool{}
		ast.Inspect(fl, func(n ast.Node) bool {
			if s, ok := n.(*ast.SelectorExpr); ok {
				selNames[s.Sel] = true
			}
			return true
		})
		seen := map[string]bool{}
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if ok && taint[id.Name] && !shadow[id.Name] && !selNames[id] && !seen[id.Name] {
				seen[id.Name] = true
				report(id.Pos(), "borrowed slice %q captured by %s; the borrow must not outlive the frame — copy it first", id.Name, how)
			}
			return true
		})
	}

	// checkCall enforces handoff rules at a call site: builtins append
	// and copy must not write into a borrow, sanctioned sinks accept it,
	// and a resolvable module callee must mark the receiving parameter
	// borrowed (anything else claims ownership the caller cannot grant).
	checkCall := func(call *ast.CallExpr) {
		calleeKey := ""
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			switch fun.Name {
			case "append":
				if len(call.Args) > 0 && tainted(call.Args[0]) {
					report(call.Pos(), "append to borrowed slice %s may grow past the shared backing array or move it; copy first", describe(call.Args[0]))
				}
				return
			case "copy":
				if len(call.Args) == 2 && tainted(call.Args[0]) {
					report(call.Pos(), "copy into borrowed slice %s overwrites shared payload bytes", describe(call.Args[0]))
				}
				return
			case "len", "cap", "string", "make", "new", "delete", "panic",
				"print", "println", "min", "max", "clear":
				return
			}
			calleeKey = fn.pkg.ImportPath + "." + fun.Name
		case *ast.SelectorExpr:
			if x, ok := fun.X.(*ast.Ident); ok {
				if imp, ok := fn.file.Imports[x.Name]; ok {
					if imp == "net" && fun.Sel.Name == "Buffers" {
						// net.Buffers(bufs) — the writev batch is a
						// sanctioned handoff to the kernel.
						for _, arg := range call.Args {
							if tainted(arg) {
								addEdge(fn.key, "net.Buffers", "sink")
							}
						}
						return
					}
					calleeKey = imp + "." + fun.Sel.Name
					break
				}
			}
			base := e.typeOf(fun.X)
			if base == nil || base.Path == "" {
				return // unresolved receiver: stay quiet
			}
			if base.Path == "net" && fun.Sel.Name == "Write" {
				switch base.Name {
				case "Conn", "TCPConn", "UDPConn", "UnixConn", "Buffers":
					for _, arg := range call.Args {
						if tainted(arg) {
							addEdge(fn.key, "net."+base.Name+".Write", "sink")
						}
					}
					return
				}
			}
			calleeKey = base.Path + "." + base.Name + "." + fun.Sel.Name
		default:
			return
		}
		callee := bi.fns[calleeKey]
		if callee == nil {
			return // external or unresolvable: stay quiet
		}
		if callee.sink {
			for _, arg := range call.Args {
				if tainted(arg) {
					addEdge(fn.key, calleeKey, "sink")
				}
			}
			return
		}
		for i, arg := range call.Args {
			if !tainted(arg) {
				continue
			}
			pname := callee.paramAt(i)
			if pname == "" {
				continue
			}
			if callee.borrowed[pname] {
				addEdge(fn.key, calleeKey, "lend")
				continue
			}
			report(arg.Pos(), "passes borrowed slice %s to %s: parameter %q is not marked borrowed or sink — the callee may retain or mutate it",
				describe(arg), trimModule(idx.Module, calleeKey), pname)
		}
	}

	// checkAssign enforces the mutation and escape rules at stores.
	checkAssign := func(a *ast.AssignStmt) {
		for i, lhs := range a.Lhs {
			var rhs ast.Expr
			if len(a.Rhs) == len(a.Lhs) {
				rhs = a.Rhs[i]
			}
			switch l := lhs.(type) {
			case *ast.IndexExpr:
				if tainted(l.X) {
					report(l.Pos(), "writes into borrowed slice %s; the bytes are shared frame payload", describe(l.X))
					continue
				}
				if rhs == nil || !tainted(rhs) {
					continue
				}
				if t := typeOfExt(l.X); t != nil && t.Map {
					report(rhs.Pos(), "borrowed slice %s stored in map %s escapes frame scope", describe(rhs), describe(l.X))
				}
			case *ast.Ident:
				if rhs == nil || !tainted(rhs) || locals[l.Name] {
					continue
				}
				if _, ok := idx.pkgVars[fn.pkg.ImportPath][l.Name]; ok {
					report(rhs.Pos(), "borrowed slice %s stored in package-level var %s escapes frame scope", describe(rhs), l.Name)
				}
			case *ast.SelectorExpr:
				if rhs == nil || !tainted(rhs) {
					continue
				}
				fld := fieldOf(l)
				if fld != nil && fld.mode == "borrowed" && fld.releaseBy != "" {
					// Sanctioned retained alias: the field declares the
					// release method that drops it.
					addEdge(fn.key, fld.key, "store")
					continue
				}
				report(rhs.Pos(), "borrowed slice %s escapes into field %s; annotate the field `bufown borrowed release-by <method>` or copy first",
					describe(rhs), describe(l))
			}
		}
	}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			reportCaptures(n, "closure")
			return false
		case *ast.GoStmt:
			for _, arg := range n.Call.Args {
				if tainted(arg) {
					report(arg.Pos(), "borrowed slice %s handed to goroutine escapes frame scope", describe(arg))
				}
			}
			if fl, ok := n.Call.Fun.(*ast.FuncLit); ok {
				reportCaptures(fl, "goroutine")
			}
			return false
		case *ast.DeferStmt:
			return false
		case *ast.SendStmt:
			if tainted(n.Value) {
				report(n.Value.Pos(), "borrowed slice %s sent on channel escapes frame scope", describe(n.Value))
			}
		case *ast.AssignStmt:
			checkAssign(n)
		case *ast.IncDecStmt:
			if ix, ok := n.X.(*ast.IndexExpr); ok && tainted(ix.X) {
				report(n.Pos(), "writes into borrowed slice %s; the bytes are shared frame payload", describe(ix.X))
			}
		case *ast.CallExpr:
			checkCall(n)
		case *ast.SelectorExpr:
			if fld := fieldOf(n); fld != nil && tainted(n) {
				addEdge(fld.key, fn.key, "borrow")
			}
		}
		return true
	}
	ast.Inspect(fn.fd.Body, walk)
	return out, edges
}

// bufScope reports whether fn is analyzed: in the hotpath closure, or
// carrying any bufown annotation.
func bufScope(h *hotIndex, fn *bufFn) bool {
	return fn.annotated || h.hot[fn.key] != nil
}

// Bufown returns the buffer-ownership analyzer.
func Bufown() *Analyzer {
	return &Analyzer{
		Name: "bufown",
		Doc:  "borrowed frame-payload slices are never mutated, retained, or leaked past frame scope",
		Run: func(pkg *Package, idx *Index) []Finding {
			bi := idx.buf()
			h := idx.hot()
			var out []Finding
			out = append(out, bi.errs[pkg.ImportPath]...)
			eachFunc(pkg, func(file *File, fd *ast.FuncDecl) {
				key := summaryKey(pkg, fd)
				fn := bi.fns[key]
				if fn == nil || fn.fd != fd || !bufScope(h, fn) {
					return
				}
				fs, _ := bufownFunc(idx, bi, fn)
				out = append(out, fs...)
			})
			return out
		},
	}
}

// BufGraph collects the borrow edges of every in-scope function in the
// module, deduplicated and sorted.
func BufGraph(idx *Index) []BufEdge {
	bi := idx.buf()
	h := idx.hot()
	seen := map[string]bool{}
	var edges []BufEdge
	for _, pkg := range idx.pkgs {
		eachFunc(pkg, func(file *File, fd *ast.FuncDecl) {
			fn := bi.fns[summaryKey(pkg, fd)]
			if fn == nil || fn.fd != fd || !bufScope(h, fn) {
				return
			}
			_, es := bufownFunc(idx, bi, fn)
			for _, e := range es {
				if !seen[e.key()] {
					seen[e.key()] = true
					edges = append(edges, e)
				}
			}
		})
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].key() < edges[j].key() })
	return edges
}

// BufGraphDot renders the borrow graph as Graphviz dot: field → reader
// borrow edges, caller → callee lends, sanctioned stores, and handoffs
// into sinks. Deterministic (sorted nodes and edges) so it can be
// diffed across commits.
func BufGraphDot(idx *Index) string {
	edges := BufGraph(idx)
	nodeSet := map[string]bool{}
	for _, e := range edges {
		nodeSet[e.From] = true
		nodeSet[e.To] = true
	}
	var nodes []string
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	var b strings.Builder
	b.WriteString("digraph bufown {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=box, fontname=\"monospace\"];\n")
	for _, n := range nodes {
		fmt.Fprintf(&b, "  %q;\n", trimModule(idx.Module, n))
	}
	for _, e := range edges {
		attrs := fmt.Sprintf("label=%q", e.Kind)
		if e.Kind == "sink" {
			attrs += ", color=blue"
		}
		fmt.Fprintf(&b, "  %q -> %q [%s];\n",
			trimModule(idx.Module, e.From), trimModule(idx.Module, e.To), attrs)
	}
	b.WriteString("}\n")
	return b.String()
}
