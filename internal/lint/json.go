package lint

import (
	"encoding/json"
	"io"
)

// JSONFinding is the stable machine-readable form of one finding. The
// schema is a compatibility surface: CI artifacts, baselines and any
// downstream tooling parse it, so fields are only ever added, never
// renamed or removed. File paths are module-relative with forward
// slashes, so output is identical across checkouts.
type JSONFinding struct {
	Analyzer   string  `json:"analyzer"`
	Pos        JSONPos `json:"pos"`
	Severity   string  `json:"severity"`
	Message    string  `json:"message"`
	Suppressed bool    `json:"suppressed"`
}

// JSONPos locates a finding.
type JSONPos struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

// ToJSON converts findings (typically from RunAll, so suppressions are
// included and marked) into the stable schema.
func ToJSON(findings []Finding) []JSONFinding {
	out := make([]JSONFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, JSONFinding{
			Analyzer:   f.Analyzer,
			Pos:        JSONPos{File: f.File(), Line: f.Pos.Line, Col: f.Pos.Column},
			Severity:   f.Severity,
			Message:    f.Message,
			Suppressed: f.Suppressed,
		})
	}
	return out
}

// WriteJSON emits findings as an indented JSON array (an empty slice
// renders as [], never null) followed by a newline.
func WriteJSON(w io.Writer, findings []Finding) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ToJSON(findings))
}
