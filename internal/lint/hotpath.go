// Hot-path discipline: the `// hotpath` annotation and the transitive
// call-graph closure shared by the hotalloc and copycheck analyzers.
//
// A function whose doc comment contains a line beginning with the word
// `hotpath` declares itself a per-frame hot-path root: everything the
// function does in steady state happens once per frame (or more), so
// heap allocations and large copies inside it are throughput bugs, not
// style nits. The marker line may carry extra tokens:
//
//	// hotpath — ring advance, runs once per generated frame.
//	// hotpath copy-point — the ONE sanctioned frame-payload copy.
//
// `copy-point` designates the function as a sanctioned frame-payload
// copy site; copycheck allows builtin copy() into byte slices there and
// flags it everywhere else on the hot path.
//
// The discipline is transitive: PR 6's lockorder pass followed calls one
// level deep; here the closure is computed to a fixed point with a
// cycle guard, so the analyzers follow the real call graph — hub ring
// advance → shard wakeup → sender write loop → frame encode — without
// requiring every link to be annotated. Only module-internal calls are
// followed (bare identifiers, pkg-qualified functions via the file's
// import table, and methods via the best-effort receiver types of
// types.go); unresolvable callees are silently not followed, per the
// suite's "unknown: stay quiet" convention.
//
// Two escapes exist. Statements inside early-exit branches — an if body
// or select/switch case that ends in return/break/panic (the
// stmtsTerminate predicate of lockstate.go) — are cold: error handling
// and teardown may allocate freely. And a call line carrying
// `// nolint:hotpath reason` (or nolint:hotalloc, so one comment covers
// both the finding and the edge) cuts the closure edge: per-path setup
// calls made once before the per-frame loop stay out of the hot set.
package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// hotFunc is one function in the module-wide declaration index.
type hotFunc struct {
	key       string
	pkg       *Package
	file      *File
	fd        *ast.FuncDecl
	root      bool     // carries a `// hotpath` doc marker
	copyPoint bool     // marker includes the copy-point token
	via       []string // discovery chain from a root (empty for roots)
}

// hotIndex is the lazily computed hot-path state.
type hotIndex struct {
	funcs map[string]*hotFunc // every declared function, by summaryKey
	hot   map[string]*hotFunc // transitive closure of the annotated roots
	roots []string            // sorted root keys
}

// hot computes the hot-path closure once per Index.
func (idx *Index) hot() *hotIndex {
	idx.hotOnce.Do(func() {
		idx.hotIdx = buildHotIndex(idx)
	})
	return idx.hotIdx
}

// hotpathMarker scans a doc comment for the annotation. A line counts
// when its first word (after stripping the comment marker) is exactly
// "hotpath", so prose mentioning hot paths does not annotate.
func hotpathMarker(doc *ast.CommentGroup) (isRoot, isCopyPoint bool) {
	if doc == nil {
		return false, false
	}
	for _, line := range strings.Split(doc.Text(), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 0 || fields[0] != "hotpath" {
			continue
		}
		isRoot = true
		for _, tok := range fields[1:] {
			if strings.Trim(tok, "—-.,:;") == "copy-point" {
				isCopyPoint = true
			}
		}
	}
	return isRoot, isCopyPoint
}

// buildHotIndex indexes every declared function, finds the annotated
// roots, and runs a breadth-first closure over resolvable calls made in
// hot regions. BFS order means each function's recorded via chain is a
// shortest call path from some root — the chain `dmplint -hotpaths`
// prints. The visited set doubles as the cycle guard: recursive and
// mutually recursive call graphs terminate because a function enters the
// hot set at most once.
func buildHotIndex(idx *Index) *hotIndex {
	h := &hotIndex{funcs: map[string]*hotFunc{}, hot: map[string]*hotFunc{}}
	for _, pkg := range idx.pkgs {
		for _, file := range pkg.Files {
			if file.Test {
				continue
			}
			for _, decl := range file.AST.Decls {
				fd, ok := declFunc(decl)
				if !ok {
					continue
				}
				key := summaryKey(pkg, fd)
				if key == "" || h.funcs[key] != nil {
					continue
				}
				root, cp := hotpathMarker(fd.Doc)
				h.funcs[key] = &hotFunc{key: key, pkg: pkg, file: file, fd: fd, root: root, copyPoint: cp}
			}
		}
	}

	var queue []*hotFunc
	for _, fn := range h.funcs {
		if fn.root {
			h.hot[fn.key] = fn
			h.roots = append(h.roots, fn.key)
			queue = append(queue, fn)
		}
	}
	sort.Strings(h.roots)
	sort.Slice(queue, func(i, j int) bool { return queue[i].key < queue[j].key })

	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, key := range hotCallees(idx, fn) {
			callee, ok := h.funcs[key]
			if !ok || h.hot[key] != nil {
				continue // unresolved, external, or already visited (cycle guard)
			}
			callee.via = append(append([]string{}, fn.via...), fn.key)
			h.hot[key] = callee
			queue = append(queue, callee)
		}
	}
	return h
}

// hotCallees resolves the calls fn makes in its hot regions to summary
// keys, deduplicated and sorted for deterministic BFS order. Function
// literals and go/defer targets are skipped (they escape the per-frame
// control flow — the literal or spawn itself is hotalloc's finding), and
// a call line under nolint:hotpath/hotalloc cuts the edge.
func hotCallees(idx *Index, fn *hotFunc) []string {
	e := funcEnv(idx, fn.pkg, fn.file, fn.fd)
	cold := coldIntervals(fn.fd.Body)
	cut := nolintLines(fn.pkg.Fset, fn.file, "hotpath", "hotalloc")
	seen := map[string]bool{}
	var out []string
	add := func(key string) {
		if key != "" && !seen[key] {
			seen[key] = true
			out = append(out, key)
		}
	}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			if cold.covers(n.Pos()) || cut[fn.pkg.Fset.Position(n.Pos()).Line] {
				return true
			}
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				add(fn.pkg.ImportPath + "." + fun.Name)
			case *ast.SelectorExpr:
				if x, ok := fun.X.(*ast.Ident); ok {
					if imp, ok := fn.file.Imports[x.Name]; ok {
						// Package-qualified function: core.PutFrameHeader
						// called from the hub sender loop.
						add(imp + "." + fun.Sel.Name)
						return true
					}
				}
				if base := e.typeOf(fun.X); base != nil && base.Path != "" {
					add(base.Path + "." + base.Name + "." + fun.Sel.Name)
				}
			}
		}
		return true
	}
	ast.Inspect(fn.fd.Body, walk)
	return out
}

// posInterval is a half-open source range.
type posInterval struct{ start, end token.Pos }

type coldSet []posInterval

func (c coldSet) covers(p token.Pos) bool {
	for _, iv := range c {
		if iv.start <= p && p < iv.end {
			return true
		}
	}
	return false
}

// coldIntervals finds the early-exit regions of a hot function body: the
// body of an if (or its else block) and the statements of a switch or
// select case whose list ends in return/break/panic. Everything inside
// is error handling or teardown — off the steady-state frame path — so
// both the analyzers and the closure ignore it. Loop bodies and the
// function body itself never count: they ARE the steady state, whatever
// their last statement is.
func coldIntervals(body *ast.BlockStmt) coldSet {
	var cold coldSet
	mark := func(list []ast.Stmt, end token.Pos) {
		if len(list) == 0 || !stmtsTerminate(list) {
			return
		}
		cold = append(cold, posInterval{start: list[0].Pos(), end: end})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			mark(n.Body.List, n.Body.End())
			if alt, ok := n.Else.(*ast.BlockStmt); ok {
				mark(alt.List, alt.End())
			}
		case *ast.CaseClause:
			mark(n.Body, n.End())
		case *ast.CommClause:
			mark(n.Body, n.End())
		}
		return true
	})
	return cold
}

// nolintLines returns the set of source lines covered by a nolint
// comment for any of the given analyzers — the same placement rules as
// finding suppression (trailing same-line or full line above), used
// where the closure needs line coverage before any finding exists.
func nolintLines(fset *token.FileSet, file *File, analyzers ...string) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range file.AST.Comments {
		matched := false
		for _, c := range cg.List {
			for _, a := range analyzers {
				if nolintMatches(c.Text, a) {
					matched = true
				}
			}
		}
		if matched {
			end := fset.Position(cg.End()).Line
			lines[end] = true
			lines[end+1] = true
		}
	}
	return lines
}

// HotpathEntry is one function of the hot-path closure in the
// `dmplint -hotpaths` dump.
type HotpathEntry struct {
	Func      string `json:"func"`
	Root      bool   `json:"root"`
	CopyPoint bool   `json:"copy_point,omitempty"`
	// Via is the shortest discovery chain from a root (exclusive of
	// Func itself); empty for roots.
	Via []string `json:"via,omitempty"`
}

// HotpathDump is the machine-readable closure report. It is a separate
// JSON document from the findings schema (JSONFinding is append-only
// and golden-pinned), written by `dmplint -hotpaths -json`.
type HotpathDump struct {
	Schema  string         `json:"schema"`
	Roots   []string       `json:"roots"`
	Closure []HotpathEntry `json:"closure"`
}

// HotpathSchema versions the -hotpaths JSON document.
const HotpathSchema = "dmpstream/hotpaths/v1"

// Hotpaths reports the annotated roots and their transitive callee
// closure, sorted by function key.
func Hotpaths(idx *Index) *HotpathDump {
	h := idx.hot()
	d := &HotpathDump{Schema: HotpathSchema, Roots: append([]string{}, h.roots...)}
	keys := make([]string, 0, len(h.hot))
	for k := range h.hot {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fn := h.hot[k]
		d.Closure = append(d.Closure, HotpathEntry{
			Func: k, Root: fn.root, CopyPoint: fn.copyPoint,
			Via: append([]string{}, fn.via...),
		})
	}
	return d
}

// Text renders the dump for terminals: roots first, then the closure
// with discovery chains.
func (d *HotpathDump) Text(module string) string {
	var b strings.Builder
	b.WriteString("hotpath roots:\n")
	for _, r := range d.Roots {
		b.WriteString("  " + trimModule(module, r) + "\n")
	}
	b.WriteString("transitive closure:\n")
	for _, e := range d.Closure {
		b.WriteString("  " + trimModule(module, e.Func))
		switch {
		case e.Root && e.CopyPoint:
			b.WriteString("  [root, copy-point]")
		case e.Root:
			b.WriteString("  [root]")
		case e.CopyPoint:
			b.WriteString("  [copy-point]")
		}
		if len(e.Via) > 0 {
			parts := make([]string, 0, len(e.Via))
			for _, v := range e.Via {
				parts = append(parts, trimModule(module, v))
			}
			b.WriteString("  via " + strings.Join(parts, " -> "))
		}
		b.WriteString("\n")
	}
	return b.String()
}
