package lint

import (
	"go/ast"
)

// Netdeadline requires that server-side functions performing net.Conn
// I/O — a direct conn.Read/conn.Write, or io.ReadFull/io.Copy over a
// conn — also arm a deadline (SetDeadline / SetReadDeadline /
// SetWriteDeadline) somewhere in the same declaration, so a dead peer
// cannot pin a goroutine forever. Deliberately unbounded I/O is
// annotated `// nolint:netdeadline <reason>`.
func Netdeadline() *Analyzer {
	return &Analyzer{
		Name: "netdeadline",
		Doc:  "server-side net.Conn reads/writes must happen in functions that arm a deadline",
		Run:  runNetdeadline,
	}
}

func runNetdeadline(pkg *Package, idx *Index) []Finding {
	var out []Finding
	eachFunc(pkg, func(file *File, fd *ast.FuncDecl) {
		hasDeadline := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "SetDeadline", "SetReadDeadline", "SetWriteDeadline":
					hasDeadline = true
					return false
				}
			}
			return true
		})
		if hasDeadline {
			return
		}
		e := funcEnv(idx, pkg, file, fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			report := func(conn ast.Expr, op string) {
				out = append(out, finding(file, call.Pos(), "netdeadline",
					"%s on net.Conn %s in %s, which never sets a deadline (arm Set*Deadline or add // nolint:netdeadline <reason>)",
					op, selectorPath(conn), fd.Name.Name))
			}
			switch sel.Sel.Name {
			case "Read", "Write":
				if isConn(e.typeOf(sel.X)) {
					report(sel.X, sel.Sel.Name)
				}
			case "ReadFull":
				if x, ok := sel.X.(*ast.Ident); ok && file.Imports[x.Name] == "io" && len(call.Args) >= 1 {
					if isConn(e.typeOf(call.Args[0])) {
						report(call.Args[0], "io.ReadFull")
					}
				}
			case "Copy":
				if x, ok := sel.X.(*ast.Ident); ok && file.Imports[x.Name] == "io" && len(call.Args) >= 2 {
					for _, arg := range call.Args[:2] {
						if isConn(e.typeOf(arg)) {
							report(arg, "io.Copy")
							break
						}
					}
				}
			}
			return true
		})
	})
	return out
}

func isConn(t *TypeRef) bool {
	return t.Is("net", "Conn") || t.Is("net", "TCPConn") || t.Is("net", "UDPConn")
}
