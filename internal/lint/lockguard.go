package lint

import (
	"go/ast"
	"regexp"
	"strings"
)

// Lockguard enforces `guarded by <mu>` field annotations: a struct field
// whose doc or line comment says "guarded by mu" may only be read or
// written while that mutex is lexically held. Held regions come from the
// shared lock-state machinery (lockstate.go): Lock/RLock open an
// interval, the matching Unlock/RUnlock closes it (`defer` extends it to
// the end of the scope, an unlock on an early-exit path does not cut the
// mainline), and Lock/Unlock pair independently of RLock/RUnlock. An
// access after an explicit unlock is therefore a finding — the
// false-negative the original lexically-any-earlier-Lock heuristic had.
//
// Function literals form their own scopes: a goroutine or callback does
// not inherit the enclosing function's held set, so a literal touching
// guarded state must lock for itself. Functions named *Locked, and
// functions whose doc comment says the caller holds the mutex, are exempt
// — they encode the lock-is-already-held convention.
//
// This is a heuristic lexical check, not an escape/alias analysis: it
// sees accesses through receivers, parameters and resolvable selector
// chains. It is sound enough to catch the common regressions — a new
// method touching shared hub/session state without the lock, or touching
// it again after releasing.
func Lockguard() *Analyzer {
	return &Analyzer{
		Name: "lockguard",
		Doc:  "fields annotated `guarded by <mu>` must only be accessed under that mutex",
		Run:  runLockguard,
	}
}

var guardedRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_.]*)`)

// guardedKey records one annotated field.
type guardedKey struct{ typeName, field string }

func runLockguard(pkg *Package, idx *Index) []Finding {
	guarded := collectGuarded(pkg)
	if len(guarded) == 0 {
		return nil
	}
	var out []Finding
	eachFunc(pkg, func(file *File, fd *ast.FuncDecl) {
		callerHolds := strings.HasSuffix(fd.Name.Name, "Locked") ||
			(fd.Doc != nil && strings.Contains(strings.ToLower(fd.Doc.Text()), "holds"))
		if callerHolds {
			return
		}
		e := funcEnv(idx, pkg, file, fd)
		scopes := collectLockScopes(e, fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			base := e.typeOf(sel.X)
			if base == nil || base.Path != pkg.ImportPath {
				return true
			}
			mu, ok := guarded[guardedKey{base.Name, sel.Sel.Name}]
			if !ok {
				return true
			}
			sc := innermostScope(scopes, sel.Pos())
			if sc == nil || sc.heldByName(mu, sel.Pos()) {
				return true
			}
			out = append(out, finding(file, sel.Pos(), "lockguard",
				"%s.%s is guarded by %s but %s does not hold it at this access",
				base.Name, sel.Sel.Name, mu, sc.fnName))
			return true
		})
	})
	return out
}

// collectGuarded finds `guarded by <mu>` annotations on struct fields.
// The mutex is identified by the final path element, so "guarded by mu"
// and "guarded by h.mu" both demand a <chain>.mu.Lock() call.
func collectGuarded(pkg *Package) map[guardedKey]string {
	guarded := map[guardedKey]string{}
	for _, file := range pkg.Files {
		if file.Test {
			continue
		}
		ast.Inspect(file.AST, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, f := range st.Fields.List {
				text := ""
				if f.Doc != nil {
					text += f.Doc.Text()
				}
				if f.Comment != nil {
					text += f.Comment.Text()
				}
				m := guardedRe.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				mu := m[1]
				if i := strings.LastIndex(mu, "."); i >= 0 {
					mu = mu[i+1:]
				}
				for _, name := range f.Names {
					guarded[guardedKey{ts.Name.Name, name.Name}] = mu
				}
			}
			return true
		})
	}
	return guarded
}
