package lint

import (
	"go/ast"
	"regexp"
	"strings"
)

// Lockguard enforces `guarded by <mu>` field annotations: a struct field
// whose doc or line comment says "guarded by mu" may only be read or
// written inside functions that call <...>.mu.Lock() (or RLock) at some
// point before the access. Functions named *Locked, and functions whose
// doc comment says the caller holds the mutex, are exempt — they encode
// the lock-is-already-held convention.
//
// This is a heuristic AST check, not an escape/alias analysis: it sees
// accesses through receivers, parameters and resolvable selector chains,
// and treats a lexically earlier Lock call in the same declaration as a
// dominating lock. It is sound enough to catch the common regression — a
// new method touching shared hub/session state without taking the lock.
func Lockguard() *Analyzer {
	return &Analyzer{
		Name: "lockguard",
		Doc:  "fields annotated `guarded by <mu>` must only be accessed under that mutex",
		Run:  runLockguard,
	}
}

var guardedRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_.]*)`)

// guardedField records one annotated field.
type guardedKey struct{ typeName, field string }

func runLockguard(pkg *Package, idx *Index) []Finding {
	guarded := collectGuarded(pkg)
	if len(guarded) == 0 {
		return nil
	}
	var out []Finding
	eachFunc(pkg, func(file *File, fd *ast.FuncDecl) {
		e := funcEnv(idx, pkg, file, fd)
		// All mutex Lock/RLock call positions in this declaration, by
		// mutex field name: h.mu.Lock() records position under "mu".
		locks := map[string][]int{} // mu name → []offset
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
				return true
			}
			if muSel, ok := sel.X.(*ast.SelectorExpr); ok {
				locks[muSel.Sel.Name] = append(locks[muSel.Sel.Name], int(call.Pos()))
			} else if muID, ok := sel.X.(*ast.Ident); ok {
				locks[muID.Name] = append(locks[muID.Name], int(call.Pos()))
			}
			return true
		})
		callerHolds := strings.HasSuffix(fd.Name.Name, "Locked") ||
			(fd.Doc != nil && strings.Contains(strings.ToLower(fd.Doc.Text()), "holds"))
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			base := e.typeOf(sel.X)
			if base == nil || base.Path != pkg.ImportPath {
				return true
			}
			mu, ok := guarded[guardedKey{base.Name, sel.Sel.Name}]
			if !ok {
				return true
			}
			if callerHolds {
				return true
			}
			for _, lp := range locks[mu] {
				if lp < int(sel.Pos()) {
					return true
				}
			}
			out = append(out, finding(file, sel.Pos(), "lockguard",
				"%s.%s is guarded by %s but %s does not lock it before this access",
				base.Name, sel.Sel.Name, mu, fd.Name.Name))
			return true
		})
	})
	return out
}

// collectGuarded finds `guarded by <mu>` annotations on struct fields.
// The mutex is identified by the final path element, so "guarded by mu"
// and "guarded by h.mu" both demand a <chain>.mu.Lock() call.
func collectGuarded(pkg *Package) map[guardedKey]string {
	guarded := map[guardedKey]string{}
	for _, file := range pkg.Files {
		if file.Test {
			continue
		}
		ast.Inspect(file.AST, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, f := range st.Fields.List {
				text := ""
				if f.Doc != nil {
					text += f.Doc.Text()
				}
				if f.Comment != nil {
					text += f.Comment.Text()
				}
				m := guardedRe.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				mu := m[1]
				if i := strings.LastIndex(mu, "."); i >= 0 {
					mu = mu[i+1:]
				}
				for _, name := range f.Names {
					guarded[guardedKey{ts.Name.Name, name.Name}] = mu
				}
			}
			return true
		})
	}
	return guarded
}
