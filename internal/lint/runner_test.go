package lint

import (
	"fmt"
	"testing"
)

// TestParallelMatchesSequential runs the full default suite over the
// real module both ways and requires byte-identical, deterministically
// ordered output. The parallel run gets a fresh Index so the lazy
// sub-indices (conc/hot/buf/enum) are built under concurrency, not
// inherited pre-built from the sequential pass.
func TestParallelMatchesSequential(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, module, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	analyzers := DefaultAnalyzers(module)

	render := func(fs []Finding) []string {
		out := make([]string, len(fs))
		for i, f := range fs {
			out[i] = fmt.Sprintf("%s suppressed=%v", f.String(), f.Suppressed)
		}
		return out
	}
	seq := render(RunAll(pkgs, BuildIndex(module, pkgs), analyzers))
	for round := 0; round < 3; round++ {
		par := render(RunAllParallel(pkgs, BuildIndex(module, pkgs), analyzers))
		if len(par) != len(seq) {
			t.Fatalf("round %d: parallel yielded %d findings, sequential %d", round, len(par), len(seq))
		}
		for i := range par {
			if par[i] != seq[i] {
				t.Fatalf("round %d: finding %d differs:\npar: %s\nseq: %s", round, i, par[i], seq[i])
			}
		}
	}
}

// TestRunnerWorkerBounds exercises the degenerate worker counts the
// public entry points never pass directly.
func TestRunnerWorkerBounds(t *testing.T) {
	pkg := parseFixtureSrc(t, jsonFixtureSrc)
	idx := BuildIndex("fixture", []*Package{pkg})
	want := len(RunAll([]*Package{pkg}, idx, []*Analyzer{Closecheck(), Bufown()}))
	for _, workers := range []int{0, 1, 2, 64} {
		got := runAll([]*Package{pkg}, BuildIndex("fixture", []*Package{pkg}),
			[]*Analyzer{Closecheck(), Bufown()}, workers)
		if len(got) != want {
			t.Errorf("workers=%d: got %d findings, want %d", workers, len(got), want)
		}
	}
}
