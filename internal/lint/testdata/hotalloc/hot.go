package fixture

import "fmt"

// frameLoop fans one batch of frames out.
// hotpath — runs once per generated frame.
func frameLoop(frames [][]byte) error {
	ring := make([]int64, 0, 16) // nolint:hotalloc pre-sized once per path, before the frame loop
	for i, f := range frames {
		ring = append(ring, int64(i)) // quiet: grows into preallocated capacity
		encode(f)
		buf := make([]byte, len(f)) // want "make allocates"
		_ = buf
		tmp := new(int) // want "new allocates"
		_ = tmp
		s := string(f) // want "string conversion copies"
		b := []byte(s) // want "byte conversion copies"
		_ = b
		fmt.Println(i)  // want "boxes its arguments"
		go drain(f)     // want "go statement spawns"
		fn := func() {} // want "function literal allocates"
		_ = fn
	}
	if len(frames) == 0 {
		return fmt.Errorf("empty batch") // quiet: early-exit error path is cold
	}
	return nil
}

// encode is deliberately unannotated: it must be convicted through the
// transitive closure from frameLoop.
func encode(f []byte) {
	hdr := map[string]int{} // want "map literal allocates"
	_ = hdr
	lits := []int{1, 2, 3} // want "slice literal allocates"
	_ = lits
	p := &point{x: 1} // want "composite literal escapes"
	_ = p
	v := point{x: 1} // quiet: value literal stays on the stack
	_ = v
	_ = f
}

type point struct{ x, y int }

// appendGrowth demonstrates the un-preallocated append conviction.
// hotpath
func appendGrowth(vals []int) int {
	var acc []int
	for _, v := range vals {
		acc = append(acc, v) // want "append without preallocated capacity"
	}
	return len(acc)
}

// drainA and drainB are mutually recursive: the closure's cycle guard
// must terminate and still convict both bodies.
// hotpath
func drainA(n int) {
	if n == 0 {
		return
	}
	scratchA := make([]byte, n) // want "make allocates"
	_ = scratchA
	drainB(n - 1)
}

func drainB(n int) {
	scratchB := make([]byte, n) // want "make allocates"
	_ = scratchB
	drainA(n)
}

// drain is only ever a go-statement target, so it stays out of the
// closure: its allocation is quiet.
func drain(f []byte) {
	dup := make([]byte, len(f))
	copy(dup, f)
}

// coldOnly is not on any hot path; allocate freely.
func coldOnly() []byte { return make([]byte, 64) }
