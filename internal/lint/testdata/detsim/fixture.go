// Fixture for the detsim analyzer: true positives carry // want
// comments, the rest must stay quiet.
package fixture

import (
	"math/rand"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano() // want "time.Now in deterministic package"
}

func sinceStart(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since in deterministic package"
}

func globalRand() int {
	return rand.Intn(10) // want "global math/rand.Intn"
}

func unseeded() *rand.Rand {
	src := rand.NewSource(1)
	_ = src
	return rand.New(nil) // want "rand.New without an explicit rand.NewSource"
}

func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // ok: explicit seed
}

func mapAccumulate(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want "order-dependent result"
		sum += v
	}
	return sum
}

func mapAppend(m map[string]float64) []float64 {
	var out []float64
	for _, v := range m { // want "order-dependent result"
		out = append(out, v)
	}
	return out
}

func mapKeyedWrite(m map[int]float64, out []float64) {
	for k, v := range m { // ok: keyed writes commute
		out[k] = v
	}
}

func mapSuppressed(m map[string]float64) float64 {
	var sum float64
	// nolint:detsim fixture: reduction verified order-independent by hand
	for _, v := range m {
		sum += v
	}
	return sum
}

func sliceAccumulate(xs []float64) float64 {
	var sum float64
	for _, v := range xs { // ok: slices iterate in order
		sum += v
	}
	return sum
}
