// Fixture for the goleak analyzer. Findings sit on the `go` statement.
package fixture

import "time"

type S struct {
	done chan struct{}
	ch   chan int
}

// leak: a ticker-style loop with no way out.
func (s *S) leak() {
	go func() { // want "unbounded for-loop"
		for {
			time.Sleep(time.Second)
		}
	}()
}

// okDone: the loop receives from a done channel.
func (s *S) okDone() {
	go func() {
		for {
			select {
			case <-s.done:
				return
			case v := <-s.ch:
				_ = v
			}
		}
	}()
}

// okRange: ranging over a closable channel ends when the producer closes.
func (s *S) okRange() {
	go func() {
		for v := range s.ch {
			_ = v
		}
	}()
}

// okBounded: a conditional loop exits on its own terms.
func (s *S) okBounded() {
	go func() {
		for i := 0; i < 10; i++ {
			_ = i
		}
	}()
}

// spinLeak: directly launched methods are resolved to their bodies.
func (s *S) spinLeak() {
	go s.spin() // want "unbounded for-loop"
}

func (s *S) spin() {
	for {
		time.Sleep(time.Millisecond)
	}
}

// block: an empty select never proceeds.
func block() {
	go func() { // want "empty select"
		select {}
	}()
}

func poll() int { return 0 }

// switchBreakLeak: the bare break targets the switch, not the loop.
func switchBreakLeak() {
	go func() { // want "unbounded for-loop"
		for {
			switch poll() {
			case 0:
				break
			}
		}
	}()
}

// okLabeled: a labeled break does leave the loop.
func okLabeled() {
	go func() {
	outer:
		for {
			switch poll() {
			case 0:
				break outer
			}
		}
	}()
}

// pumpLeak: same-package callees are followed one level deep.
func pumpLeak() {
	go func() { // want "unbounded for-loop"
		forever()
	}()
}

func forever() {
	for {
		time.Sleep(time.Second)
	}
}

// daemon: intentionally process-lifetime, waived with a reason.
func daemon() {
	go func() { // nolint:goleak process-lifetime stats pump by design
		for {
			time.Sleep(time.Minute)
		}
	}()
}
