// Fixture for the wiresafe analyzer.
package fixture

import "encoding/binary"

const hdrSize = 12

func goodGuard(b []byte) (uint32, uint64) {
	if len(b) < hdrSize {
		return 0, 0
	}
	return binary.BigEndian.Uint32(b[0:4]), binary.BigEndian.Uint64(b[4:hdrSize])
}

func goodHint(b []byte) uint32 {
	_ = b[3] // bounds hint dominates the read below
	return binary.BigEndian.Uint32(b[0:4])
}

func goodReversed(b []byte) byte {
	if 2 > len(b) {
		return 0
	}
	return b[1]
}

func badIndex(b []byte) byte {
	return b[8] // want "len >= 9"
}

func badSlice(b []byte) uint32 {
	return binary.BigEndian.Uint32(b[0:4]) // want "len >= 4"
}

func badWholeSlice(b []byte) uint64 {
	return binary.BigEndian.Uint64(b) // want "len >= 8"
}

func badGuardTooShort(b []byte) byte {
	if len(b) < 4 {
		return 0
	}
	return b[7] // want "len >= 8"
}

func little(b []byte) uint32 {
	if len(b) < 4 {
		return 0
	}
	return binary.LittleEndian.Uint32(b[0:4]) // want "big-endian"
}

func localsExempt() uint32 {
	var h [4]byte
	local := make([]byte, 8)
	_ = local[0]
	return binary.BigEndian.Uint32(h[0:4])
}

func suppressed(b []byte) byte {
	return b[5] // nolint:wiresafe fixture exercising the escape hatch
}
