// Fixture for the closecheck analyzer.
package fixture

import (
	"net"
	"os"
)

// Hub has a no-result Close: never flagged.
type Hub struct{}

func (h *Hub) Close() {}

// Relay has an error-returning Close: dropped calls are flagged.
type Relay struct{}

func (r *Relay) Close() error { return nil }

func NewRelay() *Relay { return &Relay{} }

func dropConn(c net.Conn) {
	c.Close() // want "dropped error from c.Close"
}

func deferOK(c net.Conn) {
	defer c.Close() // ok: idiomatic teardown
}

func discardOK(c net.Conn) {
	_ = c.Close() // ok: explicit discard
}

func handleOK(f *os.File) error {
	return f.Close()
}

func noErrorClose(h *Hub) {
	h.Close() // ok: Close returns nothing
}

func moduleType() {
	r := NewRelay()
	r.Close() // want "dropped error from r.Close"
}

func fromDial(addr string) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return
	}
	c.Close() // want "dropped error from c.Close"
}

func fromAccept(ln net.Listener) {
	c, err := ln.Accept()
	if err != nil {
		return
	}
	c.Close() // want "dropped error from c.Close"
}

func suppressed(c net.Conn) {
	c.Close() // nolint:closecheck fixture exercising the escape hatch
}
