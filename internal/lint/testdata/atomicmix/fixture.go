// Fixture for the atomicmix analyzer: once a field is touched through
// sync/atomic anywhere, every access must be atomic.
package fixture

import "sync/atomic"

type Counter struct {
	n    int64
	flag atomic.Bool
}

func (c *Counter) add() {
	atomic.AddInt64(&c.n, 1)
}

func (c *Counter) bad(d int64) int64 {
	c.n += d   // want "read/written plainly"
	return c.n // want "read/written plainly"
}

// handOff: taking the address to pass the counter along is atomic-safe.
func (c *Counter) handOff() *int64 {
	return &c.n
}

// okFlag: atomic value types are used through their methods.
func (c *Counter) okFlag() bool {
	return c.flag.Load()
}

// copyFlag: copying an atomic value races with its own methods.
func (c *Counter) copyFlag() bool {
	b := c.flag // want "atomic type but is used as a plain value"
	return b.Load()
}

// snapshot: a deliberate plain read carries its reason.
func (c *Counter) snapshot() int64 {
	return c.n // nolint:atomicmix single-threaded teardown snapshot
}
