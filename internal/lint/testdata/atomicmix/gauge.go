package fixture

import "sync/atomic"

func (g *Gauge) set(v int64) {
	atomic.StoreInt64(&g.v, v)
}
