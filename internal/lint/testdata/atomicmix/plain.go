// The census is module-wide: the atomic store in gauge.go convicts the
// plain read here, a file away.
package fixture

type Gauge struct{ v int64 }

func (g *Gauge) read() int64 {
	return g.v // want "read/written plainly"
}
