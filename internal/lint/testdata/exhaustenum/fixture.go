package fixture

import "fmt"

type state int

const (
	stateA state = iota
	stateB
	stateC
)

// untyped constants never form an enum.
const loose = 7

func describe(s state) string {
	switch s { // exhaustive: no default needed
	case stateA:
		return "a"
	case stateB:
		return "b"
	case stateC:
		return "c"
	}
	return "?"
}

func partial(s state) string {
	switch s { // want "not exhaustive"
	case stateA:
		return "a"
	}
	return "?"
}

func lazyDefault(s state) string {
	switch s { // want "uncommented default"
	case stateA:
		return "a"
	default:
		return fmt.Sprint(int(s))
	}
}

func explained(s state) string {
	switch s {
	case stateA:
		return "a"
	default:
		// Remaining states render numerically; new members need no case.
		return fmt.Sprint(int(s))
	}
}

func opaque(s state, other state) string {
	switch s { // a case the analyzer cannot resolve: stay quiet
	case other:
		return "other"
	}
	return "?"
}

func waived(s state) string {
	switch s { // nolint:exhaustenum fixture waiver
	case stateB:
		return "b"
	}
	return "?"
}

func nonEnum(n int) string {
	switch n { // int is not an enum type
	case 1:
		return "one"
	}
	return "?"
}
