package fixture

type slotx struct {
	payload []byte // bufown owned — slot buffer, reused every lap
}

type ringx struct {
	slots []slotx
}

// render copies the slot payload out — the fixture's copy point. It is
// in scope via the hotpath closure, not a bufown param annotation, and
// reading the owned field from outside slotx's methods yields a borrow.
//
// hotpath copy-point — fixture frame render loop.
func (r *ringx) render(i int, frame []byte) {
	s := &r.slots[i]
	copy(frame, s.payload) // copying OUT of the borrow is the sanctioned move
	s.payload[0] = 1       // want "writes into borrowed slice"
	leakSlot(s.payload)    // want "not marked borrowed"
}

func leakSlot(b []byte) { _ = b }

// reset is a slotx method: the owner manages its own buffer freely.
func (s *slotx) reset(n int) {
	s.payload = make([]byte, n)
	s.payload[0] = 0
}
