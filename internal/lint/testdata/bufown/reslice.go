package fixture

// rebase trims the header: the borrow survives re-slicing and
// assignment chains.
// bufown borrowed frame
func rebase(frame []byte) {
	payload := frame[4:]
	tail := payload[:8]
	alias := tail
	alias[0] = 1     // want "writes into borrowed slice"
	keep(alias)      // want "not marked borrowed"
	view(frame[2:6]) // a borrowed param accepts a re-slice of the borrow
}

func keep(b []byte) { _ = b }

// view reads a window of the frame.
// bufown borrowed b
func view(b []byte) { _ = len(b) }
