package fixture

// process handles one borrowed frame: every mutation class convicts.
// bufown borrowed b
func process(b []byte) {
	b[0] = 1 // want "writes into borrowed slice"
	b[1]++   // want "writes into borrowed slice"
	b = append(b, 2) // want "append to borrowed slice"
	scratch := make([]byte, 16)
	copy(b, scratch) // want "copy into borrowed slice"
	copy(scratch, b) // reading a borrow is always fine
	consume(b)       // want "not marked borrowed"
	scrub(b)         // want "not marked borrowed"
	inspect(b)       // lending to a borrowed param is fine
	b[2] = 3         // nolint:bufown fixture-sanctioned write
	_ = scratch
}

func consume(b []byte) { _ = b }

// scrub may mutate its buffer freely: callers must hand it owned bytes.
// bufown owned b
func scrub(b []byte) { b[0] = 0 }

// inspect reads the frame without retaining it.
// bufown borrowed b
func inspect(b []byte) { _ = len(b) }
