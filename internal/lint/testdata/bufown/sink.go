package fixture

import "net"

// transmit hands the borrowed frame to the wire: conn.Write and the
// annotated module sink are exempt, an unannotated callee is not.
// bufown borrowed frame
func transmit(conn net.Conn, frame []byte) error {
	if _, err := conn.Write(frame); err != nil { // builtin sink
		return err
	}
	deliver(frame) // annotated sink: fine
	stash(frame)   // want "not marked borrowed"
	bufs := net.Buffers{frame}
	_, err := bufs.WriteTo(conn)
	return err
}

// deliver is the fixture's designated handoff point.
// bufown sink fixture copy point
func deliver(b []byte) { _ = b }

func stash(b []byte) { _ = b }
