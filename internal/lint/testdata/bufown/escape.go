package fixture

type holder struct {
	buf []byte // bufown owned — copied at ingest
	ref []byte // bufown borrowed release-by releaseRef
	bad []byte
}

// releaseRef drops the retained alias; the release-by pairing above
// names it.
func (h *holder) releaseRef() { h.ref = nil }

var global []byte

var table map[int][]byte

var frames chan []byte

// retain exercises every escape class against a borrowed frame.
// bufown borrowed b
func (h *holder) retain(b []byte) {
	h.bad = b    // want "escapes into field"
	h.buf = b    // want "escapes into field"
	h.ref = b    // sanctioned: borrowed field with a release-by pairing
	global = b   // want "package-level"
	table[1] = b // want "stored in map"
	frames <- b  // want "sent on channel"
	go archive(b) // want "handed to goroutine"
	go func() { sink0(b) }() // want "captured by goroutine"
	f := func() byte { return b[0] } // want "captured by closure"
	_ = f
	own := make([]byte, len(b))
	copy(own, b)
	h.buf = own // owned-after-copy: the store keeps its own bytes
}

func archive(b []byte) { _ = b }

func sink0(b []byte) { _ = b }
