package fixture

type cache struct {
	slot []byte // bufown borrowed release-by drop
	leak []byte // bufown borrowed release-by vanish // want "does not declare"
	raw  []byte // bufown borrowed // want "no release-by"
}

// drop releases the retained borrow.
func (c *cache) drop() { c.slot = nil }

// adopt stores the borrow under the release-by contract.
// bufown borrowed b
func (c *cache) adopt(b []byte) {
	c.slot = b // sanctioned: the field pairs with drop()
}
