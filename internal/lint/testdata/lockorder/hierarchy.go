// A clean lock hierarchy: every function agrees C.mu ≺ D.mu and the
// package-level tableMu sits above both — consistent orders, no cycle,
// no findings.
package fixture

import "sync"

type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }

var tableMu sync.Mutex

func cd(c *C, d *D) {
	c.mu.Lock()
	d.mu.Lock()
	d.mu.Unlock()
	c.mu.Unlock()
}

func cdDeferred(c *C, d *D) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
}

// load exercises package-level mutex identity in the graph.
func load(c *C) {
	tableMu.Lock()
	c.mu.Lock()
	c.mu.Unlock()
	tableMu.Unlock()
}

// report pins the early-exit clip: the deferred unlock inside the
// returning block never covers the mainline, so no D-before-C edge (and
// hence no cycle with cd) arises from it.
func report(c *C, d *D, failed bool) {
	if failed {
		d.mu.Lock()
		defer d.mu.Unlock()
		return
	}
	c.mu.Lock()
	d.mu.Lock()
	d.mu.Unlock()
	c.mu.Unlock()
}
