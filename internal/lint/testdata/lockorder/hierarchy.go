// A clean lock hierarchy: every function agrees C.mu ≺ D.mu and the
// package-level tableMu sits above both — consistent orders, no cycle,
// no findings.
package fixture

import "sync"

type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }

var tableMu sync.Mutex

func cd(c *C, d *D) {
	c.mu.Lock()
	d.mu.Lock()
	d.mu.Unlock()
	c.mu.Unlock()
}

func cdDeferred(c *C, d *D) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
}

// load exercises package-level mutex identity in the graph.
func load(c *C) {
	tableMu.Lock()
	c.mu.Lock()
	c.mu.Unlock()
	tableMu.Unlock()
}

// report pins the early-exit clip: the deferred unlock inside the
// returning block never covers the mainline, so no D-before-C edge (and
// hence no cycle with cd) arises from it.
func report(c *C, d *D, failed bool) {
	if failed {
		d.mu.Lock()
		defer d.mu.Unlock()
		return
	}
	c.mu.Lock()
	d.mu.Lock()
	d.mu.Unlock()
	c.mu.Unlock()
}

// lockD is a helper whose direct acquisition the one-level call summary
// charges to callers.
func lockD(d *D) {
	d.mu.Lock()
	d.mu.Unlock()
}

// cdViaHelper establishes C ≺ D through the helper call — the same order
// cd writes directly, so still no cycle.
func cdViaHelper(c *C, d *D) {
	c.mu.Lock()
	defer c.mu.Unlock()
	lockD(d)
}

// The four-level chain below mirrors the repo's documented hierarchy
// (registry ≺ hub shard ≺ session ≺ server): each level may take the next
// while held, different entry points start at different levels, and the
// composed orders must merge into one acyclic graph — no findings.

type Reg struct{ mu sync.Mutex }
type HubShard struct{ mu sync.Mutex }
type Sess struct{ mu sync.Mutex }
type Srv struct{ mu sync.Mutex }

// route enters at the top and walks the full chain.
func route(r *Reg, h *HubShard, s *Sess, v *Srv) {
	r.mu.Lock()
	h.mu.Lock()
	s.mu.Lock()
	v.mu.Lock()
	v.mu.Unlock()
	s.mu.Unlock()
	h.mu.Unlock()
	r.mu.Unlock()
}

// fanout enters mid-chain, as a hub worker does: shard then session.
func fanout(h *HubShard, s *Sess) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
}

// finish enters at the bottom pair, as a path teardown does.
func finish(s *Sess, v *Srv) {
	s.mu.Lock()
	v.mu.Lock()
	v.mu.Unlock()
	s.mu.Unlock()
}

// admit exercises the skip edge: registry straight to session-level work
// without the shard lock in between — consistent with the chain, no cycle.
func admit(r *Reg, s *Sess) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s.mu.Lock()
	s.mu.Unlock()
}

// The relay tier extends the chain upward: an edge relay's state lock
// sits above its forwarder's reorder lock, and the forwarder publishes
// into the hub tier while holding its own lock (relay ≺ forwarder ≺ hub
// shard ≺ session ≺ server) — still one acyclic graph, no findings.

type EdgeRelay struct{ mu sync.Mutex }
type Fwd struct{ mu sync.Mutex }

// header mirrors hub installation on the first upstream header: the
// relay state lock is held while the forwarder learns its hub.
func header(e *EdgeRelay, f *Fwd) {
	e.mu.Lock()
	defer e.mu.Unlock()
	f.mu.Lock()
	f.mu.Unlock()
}

// ingestPublish pins the cross-tier edge: the forwarder keeps its lock
// across the publish into the hub tier, so "strictly ascending, exactly
// once" holds under concurrent upstream paths.
func ingestPublish(f *Fwd, h *HubShard) {
	f.mu.Lock()
	defer f.mu.Unlock()
	h.mu.Lock()
	h.mu.Unlock()
}

// relayChain walks the full extended hierarchy from the very top.
func relayChain(e *EdgeRelay, f *Fwd, h *HubShard, s *Sess) {
	e.mu.Lock()
	f.mu.Lock()
	h.mu.Lock()
	s.mu.Lock()
	s.mu.Unlock()
	h.mu.Unlock()
	f.mu.Unlock()
	e.mu.Unlock()
}
