// Fixture for the lockorder analyzer: cyclic acquisition orders.
// Each cycle is reported exactly once, at its lexically-first edge.
package fixture

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

// ab acquires B.mu while holding A.mu; ba does the reverse — a classic
// two-mutex inversion.
func ab(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want "lock-order cycle A.mu ->(Lock) B.mu ->(Lock) A.mu"
	b.mu.Unlock()
	a.mu.Unlock()
}

func ba(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock() // ok: the cycle is anchored at its first edge, in ab
	a.mu.Unlock()
	b.mu.Unlock()
}

type R struct{ mu sync.Mutex }

// reentrant self-acquisition is a self-edge — a cycle of length one
// (sync.Mutex is not recursive).
func reentrant(r *R) {
	r.mu.Lock()
	r.mu.Lock() // want "lock-order cycle R.mu ->(Lock) R.mu"
	r.mu.Unlock()
	r.mu.Unlock()
}

type E struct{ mu sync.RWMutex }
type F struct{ mu sync.RWMutex }

// Read-side-only cycles cannot deadlock on their own (readers coexist),
// so the RLock inversion below stays quiet.
func ef(e *E, f *F) {
	e.mu.RLock()
	f.mu.RLock() // ok: read-only cycle is filtered
	f.mu.RUnlock()
	e.mu.RUnlock()
}

func fe(e *E, f *F) {
	f.mu.RLock()
	e.mu.RLock()
	e.mu.RUnlock()
	f.mu.RUnlock()
}

type G struct{ mu sync.Mutex }
type H struct{ mu sync.Mutex }

// A deliberate inversion can be waived inline like any other finding.
func gh(g *G, h *H) {
	g.mu.Lock()
	h.mu.Lock() // nolint:lockorder fixture exercises the escape hatch
	h.mu.Unlock()
	g.mu.Unlock()
}

func hg(g *G, h *H) {
	h.mu.Lock()
	g.mu.Lock()
	g.mu.Unlock()
	h.mu.Unlock()
}

type P struct{ mu sync.Mutex }
type Q struct{ mu sync.Mutex }

// lockQ is the helper whose acquisition the one-level call summary
// charges to callers.
func lockQ(q *Q) {
	q.mu.Lock()
	q.mu.Unlock()
}

// pq orders P before Q only through the helper call; qp inverts it
// directly — the interprocedural edge must close the cycle.
func pq(p *P, q *Q) {
	p.mu.Lock()
	lockQ(q) // want "lock-order cycle P.mu ->(Lock) Q.mu ->(Lock) P.mu"
	p.mu.Unlock()
}

func qp(p *P, q *Q) {
	q.mu.Lock()
	p.mu.Lock() // ok: the cycle is anchored at its first edge, in pq
	p.mu.Unlock()
	q.mu.Unlock()
}
