// Fixture for the netdeadline analyzer.
package fixture

import (
	"io"
	"net"
	"time"
)

func good(conn net.Conn, buf []byte) error {
	if err := conn.SetWriteDeadline(time.Now().Add(time.Second)); err != nil {
		return err
	}
	_, err := conn.Write(buf)
	return err
}

func badWrite(conn net.Conn, buf []byte) error {
	_, err := conn.Write(buf) // want "Write on net.Conn conn"
	return err
}

func badRead(conn net.Conn, buf []byte) error {
	_, err := conn.Read(buf) // want "Read on net.Conn conn"
	return err
}

func badReadFull(conn net.Conn, buf []byte) error {
	_, err := io.ReadFull(conn, buf) // want "io.ReadFull on net.Conn conn"
	return err
}

func badCopy(dst net.Conn, src io.Reader) error {
	_, err := io.Copy(dst, src) // want "io.Copy on net.Conn dst"
	return err
}

func notAConn(w io.Writer, buf []byte) error {
	_, err := w.Write(buf) // ok: io.Writer, not a socket
	return err
}

// pump forwards until EOF; its lifetime is bounded by the endpoints.
// nolint:netdeadline fixture exercising the doc-comment escape hatch
func pump(conn net.Conn, buf []byte) error {
	_, err := conn.Write(buf)
	return err
}
