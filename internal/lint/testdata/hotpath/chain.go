// The hotpath closure fixture mirrors the repo's real chain shape:
// a generator root reaching ring advance and shard wakeup through
// method calls, a sender root reaching pop and encode, a recursive
// pair, and a nolint-cut setup edge.
package fixture

type ring struct{ head int64 }

type shard struct{ r *ring }

type hub struct{ sh *shard }

// generate produces one frame.
// hotpath — runs once per generated frame.
func (h *hub) generate() {
	h.sh.r.advance()
	h.sh.wakeup()
}

func (r *ring) advance() { r.head++ }

func (s *shard) wakeup() { s.r.frame() }

// frame is the designated payload copy site.
// hotpath copy-point
func (r *ring) frame() {}

// sendLoop drains one subscriber.
// hotpath
func (h *hub) sendLoop() {
	h.setup() // nolint:hotpath once per path, before the frame loop
	for {
		h.pop()
	}
}

func (h *hub) pop() { encode() }

func encode() {}

func (h *hub) setup() {}

// recurA and recurB form a call cycle.
// hotpath
func recurA() { recurB() }

func recurB() { recurA() }

func notHot() {}
