package fixture

// big is comfortably over the default 128-byte threshold (20 words).
type big struct {
	f0, f1, f2, f3, f4, f5, f6, f7, f8, f9 int64
	g0, g1, g2, g3, g4, g5, g6, g7, g8, g9 int64
}

// small stays under it.
type small struct{ x, y int64 }

// copies exercises the by-value copy convictions.
// hotpath
func copies(items []big, lookup map[string]big, one big, p *big) {
	local := one // want "assignment copies large struct"
	_ = local
	use(one)  // want "call passes large struct"
	usePtr(p) // quiet: pointer argument
	s := small{}
	t := s // quiet: small struct
	_ = t
	for _, it := range items { // want "range copies large struct"
		_ = it
	}
	for i := range items { // quiet: index ranging
		_ = i
	}
	v := lookup["k"] // want "assignment copies large struct"
	_ = v
	if p == nil {
		w := one // quiet: early-exit block is cold
		_ = w
		return
	}
}

// use and usePtr are hot through the closure; their empty bodies are
// clean.
func use(b big)     { _ = b }
func usePtr(b *big) { _ = b }

// waived snapshots deliberately; the escape hatch covers it.
// hotpath
func waived(one big) {
	clone := one // nolint:copycheck deliberate snapshot at join time
	_ = clone
}

// sanctioned is the designated frame-payload copy site.
// hotpath copy-point — the one sanctioned payload copy.
func sanctioned(dst, src []byte) {
	copy(dst, src) // quiet: designated copy point
}

// stray copies payload without the copy-point designation.
// hotpath
func stray(dst, src []byte) {
	copy(dst, src) // want "frame-payload copy outside a designated copy point"
}

// offPath copies freely: it is not on any hot path.
func offPath(one big) big {
	dup := one
	return dup
}
