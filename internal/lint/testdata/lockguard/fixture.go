// Fixture for the lockguard analyzer.
package fixture

import "sync"

type Box struct {
	mu sync.Mutex
	n  int // guarded by mu
	m  int // unguarded: no annotation
}

func (b *Box) Good() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

func (b *Box) Bad() int {
	return b.n // want "guarded by mu"
}

func (b *Box) BadWrite(d int) {
	b.n += d // want "guarded by mu"
	b.mu.Lock()
	b.mu.Unlock()
}

func (b *Box) UnguardedOK() int {
	return b.m // ok: field not annotated
}

func (b *Box) addLocked(d int) {
	b.n += d // ok: *Locked naming convention means caller has the mutex
}

// bump assumes the caller holds b.mu.
func (b *Box) bump() {
	b.n++ // ok: doc comment declares the lock is held
}

func (b *Box) Suppressed() int {
	return b.n // nolint:lockguard fixture: single-threaded caller
}

// sumBoxes touches guarded state of a parameter, not a receiver.
func sumBoxes(a, b *Box) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.n + b.n
}

// UseAfterUnlock is the false negative the interval model fixes: the
// hold ends at the mainline unlock, so the later access is unguarded.
func (b *Box) UseAfterUnlock() int {
	b.mu.Lock()
	n := b.n // ok: inside the held interval
	b.mu.Unlock()
	return n + b.n // want "guarded by mu"
}

// EarlyExitUnlock is the idiom that must stay quiet: the unlock on the
// early-return path does not end the mainline hold.
func (b *Box) EarlyExitUnlock(stop bool) int {
	b.mu.Lock()
	if stop {
		b.mu.Unlock()
		return 0
	}
	n := b.n // ok: mainline still holds the lock
	b.mu.Unlock()
	return n
}

// LitMustLock: a function literal is its own scope — a goroutine does
// not inherit the enclosing function's hold.
func (b *Box) LitMustLock() {
	b.mu.Lock()
	defer b.mu.Unlock()
	go func() {
		b.n++ // want "guarded by mu"
	}()
}

// LitLocksItself: a literal taking the lock for itself is fine.
func (b *Box) LitLocksItself() func() {
	return func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		b.n++
	}
}

type RBox struct {
	mu sync.RWMutex
	v  int // guarded by mu
}

// ReadOK holds the read side for the whole scope.
func (r *RBox) ReadOK() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.v
}

// ReadPath: RLock/RUnlock pair independently of Lock/Unlock, and the
// read hold ends at the RUnlock.
func (r *RBox) ReadPath() int {
	r.mu.RLock()
	v := r.v // ok: read-held
	r.mu.RUnlock()
	return v + r.v // want "guarded by mu"
}
