// Fixture for the lockguard analyzer.
package fixture

import "sync"

type Box struct {
	mu sync.Mutex
	n  int // guarded by mu
	m  int // unguarded: no annotation
}

func (b *Box) Good() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

func (b *Box) Bad() int {
	return b.n // want "guarded by mu"
}

func (b *Box) BadWrite(d int) {
	b.n += d // want "guarded by mu"
	b.mu.Lock()
	b.mu.Unlock()
}

func (b *Box) UnguardedOK() int {
	return b.m // ok: field not annotated
}

func (b *Box) addLocked(d int) {
	b.n += d // ok: *Locked naming convention means caller has the mutex
}

// bump assumes the caller holds b.mu.
func (b *Box) bump() {
	b.n++ // ok: doc comment declares the lock is held
}

func (b *Box) Suppressed() int {
	return b.n // nolint:lockguard fixture: single-threaded caller
}

// sumBoxes touches guarded state of a parameter, not a receiver.
func sumBoxes(a, b *Box) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.n + b.n
}
