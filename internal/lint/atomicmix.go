package lint

import (
	"go/ast"
	"go/token"
)

// Atomicmix flags struct fields whose access discipline is mixed: a field
// reached through sync/atomic anywhere in the module (atomic.AddInt64(&s.n,
// …) and friends) must never be read or written plainly, and a field of an
// atomic value type (atomic.Int64, atomic.Bool, …) must only be used
// through its methods or by taking its address. Mixed access is exactly
// the silent race the emunet counters are prone to: the atomic side
// guarantees nothing once a plain `s.n++` slips in elsewhere.
//
// The census of atomically-accessed fields is whole-program (part of the
// Index's concurrency pass), so an atomic access in one package convicts a
// plain access in another. Addresses taken outside atomic calls (&s.n
// passed along, like emunet handing &Relay.BytesForwarded to its shaper)
// stay quiet — the imprecision rule is false negatives, not noise.
func Atomicmix() *Analyzer {
	return &Analyzer{
		Name: "atomicmix",
		Doc:  "fields accessed through sync/atomic must never be read or written plainly",
		Run:  runAtomicmix,
	}
}

// fieldKey identifies a struct field module-wide.
type fieldKey struct{ pkg, typ, field string }

// atomPos remembers where a field was first seen accessed atomically.
type atomPos struct {
	file *File
	pos  token.Pos
}

// buildAtomicCensus records every field passed as &x.f to a sync/atomic
// call, across the whole module (test files included — an atomic access
// in a test still convicts plain production access).
func buildAtomicCensus(idx *Index, c *concIndex) {
	for _, pkg := range idx.pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.AST.Decls {
				fd, ok := declFunc(decl)
				if !ok {
					continue
				}
				e := funcEnv(idx, pkg, file, fd)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok || !isAtomicPkgCall(file, call) {
						return true
					}
					for _, arg := range call.Args {
						key, ok := addrOfField(e, arg)
						if !ok {
							continue
						}
						if _, dup := c.atomic[key]; !dup {
							c.atomic[key] = atomPos{file: file, pos: call.Pos()}
						}
					}
					return true
				})
			}
		}
	}
}

// isAtomicPkgCall reports whether call invokes a function of sync/atomic.
func isAtomicPkgCall(file *File, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	x, ok := sel.X.(*ast.Ident)
	return ok && file.Imports[x.Name] == "sync/atomic"
}

// addrOfField matches &x.f where x resolves to a known struct type.
func addrOfField(e *env, arg ast.Expr) (fieldKey, bool) {
	ue, ok := arg.(*ast.UnaryExpr)
	if !ok || ue.Op != token.AND {
		return fieldKey{}, false
	}
	sel, ok := ue.X.(*ast.SelectorExpr)
	if !ok {
		return fieldKey{}, false
	}
	base := e.typeOf(sel.X)
	if base == nil || base.Path == "" {
		return fieldKey{}, false
	}
	return fieldKey{pkg: base.Path, typ: base.Name, field: sel.Sel.Name}, true
}

// isAtomicValueType reports whether t is one of sync/atomic's value types
// (by value — pointer fields are handed around freely).
func isAtomicValueType(t *TypeRef) bool {
	return t != nil && !t.Ptr && !t.Slice && !t.Array && !t.Map && t.Path == "sync/atomic"
}

func runAtomicmix(pkg *Package, idx *Index) []Finding {
	census := idx.conc().atomic
	var out []Finding
	eachFunc(pkg, func(file *File, fd *ast.FuncDecl) {
		e := funcEnv(idx, pkg, file, fd)

		// allowed collects SelectorExpr nodes that are legitimate uses:
		// the &x.f argument of a sync/atomic call, any address-taken x.f,
		// and the receiver position of a method call (x.f.Load()).
		allowed := map[*ast.SelectorExpr]bool{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					if sel, ok := n.X.(*ast.SelectorExpr); ok {
						allowed[sel] = true
					}
				}
			case *ast.SelectorExpr:
				// x.f in x.f.Method(...): the inner selector is the
				// receiver of the outer one.
				if sel, ok := n.X.(*ast.SelectorExpr); ok {
					allowed[sel] = true
				}
			}
			return true
		})

		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || allowed[sel] {
				return true
			}
			base := e.typeOf(sel.X)
			if base == nil || base.Path == "" {
				return true
			}
			key := fieldKey{pkg: base.Path, typ: base.Name, field: sel.Sel.Name}
			if at, ok := census[key]; ok {
				out = append(out, finding(file, sel.Pos(), "atomicmix",
					"%s.%s is accessed atomically (%s) but read/written plainly here; use sync/atomic for every access",
					base.Name, sel.Sel.Name, at.file.Path))
				return true
			}
			if isAtomicValueType(idx.structs[base.Path][base.Name][sel.Sel.Name]) {
				out = append(out, finding(file, sel.Pos(), "atomicmix",
					"%s.%s has an atomic type but is used as a plain value here; call its methods or take its address",
					base.Name, sel.Sel.Name))
			}
			return true
		})
	})
	return out
}
