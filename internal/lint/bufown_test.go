package lint

import (
	"go/parser"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoBorrowChain is the acceptance pin: over the real module, the
// borrow graph must cover the ring-slot → frame → conn.Write chain —
// the slot payload is borrowed exactly at the ring.frame copy point,
// and the rendered frame leaves the process only through the
// conn.Write sink, on both the hub and the core send paths.
func TestRepoBorrowChain(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, module, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	idx := BuildIndex(module, pkgs)
	edges := map[string]bool{}
	for _, e := range BufGraph(idx) {
		edges[e.From+" -"+e.Kind+"-> "+e.To] = true
	}
	for _, want := range []string{
		"dmpstream/internal/hub.slot.payload -borrow-> dmpstream/internal/hub.ring.frame",
		"dmpstream/internal/hub.slot.payload -borrow-> dmpstream/internal/hub.ring.publish",
		"dmpstream/internal/hub.Hub.writeFrame -sink-> net.Conn.Write",
		"dmpstream/internal/core.Session.writeFrame -sink-> net.Conn.Write",
	} {
		if !edges[want] {
			t.Errorf("borrow graph missing edge %s (have %v)", want, edges)
		}
	}

	dot := BufGraphDot(idx)
	if !strings.HasPrefix(dot, "digraph bufown {") {
		t.Fatalf("unexpected dot prologue:\n%s", dot)
	}
	for _, want := range []string{
		`"internal/hub.slot.payload" -> "internal/hub.ring.frame" [label="borrow"]`,
		`"internal/hub.Hub.writeFrame" -> "net.Conn.Write" [label="sink"`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("bufgraph dot missing %q:\n%s", want, dot)
		}
	}
}

// TestBufGraphFixtureEdges checks each edge kind over the bufown
// fixture: field borrows, lends into borrowed params, release-by
// sanctioned stores, and handoffs into module and builtin sinks.
func TestBufGraphFixtureEdges(t *testing.T) {
	pkg, _ := loadFixture(t, "bufown")
	idx := BuildIndex("fixture", []*Package{pkg})
	edges := map[string]bool{}
	for _, e := range BufGraph(idx) {
		edges[e.From+" -"+e.Kind+"-> "+e.To] = true
	}
	for _, want := range []string{
		"fixture.slotx.payload -borrow-> fixture.ringx.render",
		"fixture.process -lend-> fixture.inspect",
		"fixture.rebase -lend-> fixture.view",
		"fixture.cache.adopt -store-> fixture.cache.slot",
		"fixture.holder.retain -store-> fixture.holder.ref",
		"fixture.transmit -sink-> fixture.deliver",
		"fixture.transmit -sink-> net.Conn.Write",
	} {
		if !edges[want] {
			t.Errorf("fixture borrow graph missing edge %s (have %v)", want, edges)
		}
	}
}

// TestRepoSeededMutation pins the enforcement half of the acceptance
// criterion: seeding a borrowed-slice mutation into the hub's write
// path must fail the lint gate.
func TestRepoSeededMutation(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, module, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	var hub *Package
	for _, pkg := range pkgs {
		if pkg.ImportPath == module+"/internal/hub" {
			hub = pkg
		}
	}
	if hub == nil {
		t.Fatal("no internal/hub package")
	}
	src, err := os.ReadFile(filepath.Join(root, "internal/hub/hub.go"))
	if err != nil {
		t.Fatal(err)
	}
	const anchor = "_, err := conn.Write(frame)"
	seeded := strings.Replace(string(src), anchor, "frame[0] = 0\n\t"+anchor, 1)
	if seeded == string(src) {
		t.Fatalf("anchor %q not found in hub.go", anchor)
	}
	af, err := parser.ParseFile(hub.Fset, "internal/hub/hub.go", seeded, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range hub.Files {
		if f.Path == "internal/hub/hub.go" {
			hub.Files[i] = NewFile(f.Path, af)
		}
	}
	idx := BuildIndex(module, pkgs)
	findings := Run([]*Package{hub}, idx, []*Analyzer{Bufown()})
	found := false
	for _, f := range findings {
		found = found || strings.Contains(f.Message, "writes into borrowed slice")
	}
	if !found {
		t.Errorf("seeded borrowed-slice mutation not convicted (findings: %v)", findings)
	}
}
