package lint

import (
	"go/ast"
)

// Closecheck flags expression-statement calls `x.Close()` that silently
// drop an error, outside tests. Only receivers whose type is known to
// have an error-returning Close (stdlib net/os/io types, or a module
// type indexed by BuildIndex) are flagged; unknown receivers stay quiet.
// `defer x.Close()` and `go x.Close()` are idiomatic teardown and exempt;
// an explicit `_ = x.Close()` acknowledges the discard and satisfies the
// check.
func Closecheck() *Analyzer {
	return &Analyzer{
		Name: "closecheck",
		Doc:  "Close() errors must be handled or explicitly discarded outside tests",
		Run:  runClosecheck,
	}
}

func runClosecheck(pkg *Package, idx *Index) []Finding {
	var out []Finding
	eachFunc(pkg, func(file *File, fd *ast.FuncDecl) {
		e := funcEnv(idx, pkg, file, fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok || len(call.Args) != 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Close" {
				return true
			}
			t := e.typeOf(sel.X)
			if !idx.CloseReturnsError(t) {
				return true
			}
			out = append(out, finding(file, call.Pos(), "closecheck",
				"dropped error from %s.Close (handle it, or write `_ = %s.Close()` to discard explicitly)",
				selectorPath(sel.X), selectorPath(sel.X)))
			return true
		})
	})
	return out
}
