// Package lint implements dmplint, the repo-invariant static-analysis
// suite. It is built on the standard library only (go/parser + go/ast +
// go/token): packages are loaded by walking the module tree and parsing
// every file, and each analyzer works syntactically on the ASTs with a
// best-effort type-inference layer (see types.go) — no go/types loader, no
// external driver, so the module keeps zero dependencies.
//
// Analyzers (see DESIGN.md "Enforced invariants"):
//
//	detsim      no wall-clock time, unseeded randomness, or map-order
//	            dependent results in the deterministic model packages
//	lockguard   fields documented `guarded by <mu>` are only touched by
//	            functions that lock that mutex first
//	wiresafe    wire encoders/decoders index byte slices only behind a
//	            dominating length check, and use big-endian throughout
//	netdeadline server-side net.Conn reads/writes happen in functions
//	            that arm a deadline
//	closecheck  no silently dropped Close() errors outside tests
//	lockorder   the whole-program mutex acquisition graph stays acyclic
//	            (lock-order deadlocks; `dmplint -lockgraph` dumps it)
//	goleak      every goroutine in library packages has a provable exit
//	            path (done channel, bounded loop, or return)
//	atomicmix   a field accessed through sync/atomic anywhere is never
//	            read or written plainly elsewhere
//	hotalloc    no heap allocation inside `// hotpath` functions or
//	            their transitive callees (see hotpath.go)
//	copycheck   no large-struct by-value copies or stray frame-payload
//	            copies on the hot path
//	bufown      `// bufown borrowed` frame-payload slices are never
//	            mutated, retained, or leaked past frame scope (see
//	            bufown.go; `dmplint -bufgraph` dumps the borrow edges)
//	exhaustenum switches over repo enum types cover every member or
//	            carry a commented default
//
// Any finding can be suppressed with an inline escape hatch:
//
//	// nolint:<analyzer> <reason>
//
// on the offending line, the line above it, or in the enclosing
// function's doc comment. Suppressions should carry a reason.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// File is one parsed source file.
type File struct {
	Path string // path relative to the module root
	AST  *ast.File
	Test bool // *_test.go

	// Imports maps the local name of each import to its path
	// ("rand" → "math/rand").
	Imports map[string]string
}

// Package is one directory's worth of parsed files.
type Package struct {
	Dir        string // absolute directory
	ImportPath string // module-qualified import path
	Fset       *token.FileSet
	Files      []*File
}

// Finding is one diagnostic.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
	Severity string // "error" unless the analyzer declares otherwise
	// Suppressed marks findings covered by a nolint comment; Run drops
	// them, RunAll keeps them flagged (the -json schema reports both).
	Suppressed bool

	pos  token.Pos // set by analyzers; resolved into Pos by Run
	file *File
}

// File returns the module-relative path of the file the finding is in
// (stable across machines, unlike Pos.Filename).
func (f Finding) File() string { return f.file.Path }

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// finding is the constructor analyzers use.
func finding(file *File, pos token.Pos, analyzer, format string, args ...any) Finding {
	return Finding{pos: pos, file: file, Analyzer: analyzer, Message: fmt.Sprintf(format, args...)}
}

// Analyzer is one named check over a package.
type Analyzer struct {
	Name string
	Doc  string
	// Severity tags the analyzer's findings in -json output; empty means
	// "error".
	Severity string
	// Scope reports whether the analyzer applies to pkg. nil = all
	// packages.
	Scope func(pkg *Package) bool
	Run   func(pkg *Package, idx *Index) []Finding
}

// Load walks the module rooted at root, parses every package, and returns
// the packages plus the module path from go.mod. Directories named
// testdata or vendor, and names starting with "." or "_", are skipped —
// same convention as the go tool.
func Load(root string) ([]*Package, string, error) {
	modBytes, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, "", fmt.Errorf("lint: %s is not a module root: %w", root, err)
	}
	module := ""
	for _, line := range strings.Split(string(modBytes), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			module = strings.TrimSpace(rest)
			break
		}
	}
	if module == "" {
		return nil, "", fmt.Errorf("lint: no module line in %s/go.mod", root)
	}

	fset := token.NewFileSet()
	var pkgs []*Package
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		pkg, err := loadDir(fset, root, module, path)
		if err != nil {
			return err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
		return nil
	})
	if err != nil {
		return nil, "", err
	}
	return pkgs, module, nil
}

func loadDir(fset *token.FileSet, root, module, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	importPath := module
	if rel != "." {
		importPath = module + "/" + filepath.ToSlash(rel)
	}
	pkg := &Package{Dir: dir, ImportPath: importPath, Fset: fset}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		af, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		relName := name
		if rel != "." {
			relName = filepath.ToSlash(rel) + "/" + name
		}
		pkg.Files = append(pkg.Files, NewFile(relName, af))
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	return pkg, nil
}

// NewFile wraps a parsed AST as a lint File, deriving the import table.
// Exposed for tests that build fixture packages by hand.
func NewFile(path string, af *ast.File) *File {
	f := &File{Path: path, AST: af, Test: strings.HasSuffix(path, "_test.go"), Imports: map[string]string{}}
	for _, imp := range af.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		local := p[strings.LastIndex(p, "/")+1:]
		if imp.Name != nil {
			local = imp.Name.Name
		}
		f.Imports[local] = p
	}
	return f
}

// Run applies each analyzer to each in-scope package, filters nolint
// suppressions, and returns findings sorted by position.
func Run(pkgs []*Package, idx *Index, analyzers []*Analyzer) []Finding {
	all := RunAll(pkgs, idx, analyzers)
	out := all[:0]
	for _, f := range all {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}

// RunAll is Run without the suppression filter: nolint-covered findings
// are kept with Suppressed set, so output plumbing (-json) can report
// what was waived alongside what fires. RunAllParallel (runner.go) is
// the same suite spread over GOMAXPROCS workers with identical output.
func RunAll(pkgs []*Package, idx *Index, analyzers []*Analyzer) []Finding {
	return runAll(pkgs, idx, analyzers, 1)
}

var nolintRe = regexp.MustCompile(`nolint:([A-Za-z0-9_,]+)`)

// suppressed reports whether a nolint comment covers the finding: a
// comment group ending on the same line or the line directly above
// (multi-line nolint reasons count as one group), or the enclosing
// function's doc comment.
func suppressed(fset *token.FileSet, f Finding) bool {
	line := f.Pos.Line
	for _, cg := range f.file.AST.Comments {
		end := fset.Position(cg.End()).Line
		if end != line && end != line-1 {
			continue
		}
		for _, c := range cg.List {
			if nolintMatches(c.Text, f.Analyzer) {
				return true
			}
		}
	}
	// Enclosing function doc comment.
	for _, decl := range f.file.AST.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		if fd.Pos() <= f.pos && f.pos <= fd.End() && nolintMatches(fd.Doc.Text(), f.Analyzer) {
			return true
		}
	}
	return false
}

func nolintMatches(comment, analyzer string) bool {
	for _, m := range nolintRe.FindAllStringSubmatch(comment, -1) {
		for _, name := range strings.Split(m[1], ",") {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

// DefaultAnalyzers returns the full suite with repo scoping applied.
// module is the module path from Load.
func DefaultAnalyzers(module string) []*Analyzer {
	det := Detsim()
	det.Scope = pkgIn(module,
		"internal/sim", "internal/tcpsim", "internal/netsim", "internal/dmpmodel",
		"internal/markov", "internal/simstream", "internal/exps")
	nd := Netdeadline()
	nd.Scope = pkgIn(module, "internal/hub", "internal/core", "internal/emunet", "cmd/dmpserve")
	// goleak targets long-lived library code: a leaked goroutine in a
	// main (or example) dies with the process, but one per hub join or
	// relay connection accumulates forever.
	gl := Goleak()
	gl.Scope = pkgPrefix(module, "internal")
	return []*Analyzer{det, Lockguard(), Wiresafe(), nd, Closecheck(), Lockorder(), gl, Atomicmix(),
		Hotalloc(), Copycheck(0), Bufown(), Exhaustenum()}
}

func pkgIn(module string, rels ...string) func(*Package) bool {
	set := map[string]bool{}
	for _, r := range rels {
		set[module+"/"+r] = true
	}
	return func(p *Package) bool { return set[p.ImportPath] }
}

// pkgPrefix scopes an analyzer to a subtree of the module.
func pkgPrefix(module string, rels ...string) func(*Package) bool {
	return func(p *Package) bool {
		for _, r := range rels {
			pre := module + "/" + r
			if p.ImportPath == pre || strings.HasPrefix(p.ImportPath, pre+"/") {
				return true
			}
		}
		return false
	}
}
