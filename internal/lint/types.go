// Best-effort syntactic type inference shared by the analyzers.
//
// dmplint deliberately avoids go/types' full loader (it would need an
// importer and build-system integration); instead an Index over every
// parsed package records struct field types, function/method result types
// and Close signatures, and a per-function env resolves identifiers from
// receivers, parameters, var declarations, assignments from known
// constructors, type assertions and range statements. Unresolvable
// expressions yield nil, and analyzers treat nil as "unknown: stay quiet",
// so the imprecision only ever costs false negatives, not noise.
package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"sync"
)

// TypeRef is a shallow description of a Go type.
type TypeRef struct {
	Path string // import path; "" for builtins and unresolved
	Name string // type name ("Conn", "File", "byte", …)
	Ptr  bool

	Slice bool // []Elem
	Array bool // [N]Elem — constant-size, indexing is compile-time checked
	Map   bool // map[...]Elem
	Elem  *TypeRef
}

// Is reports whether t names path.name, ignoring pointerness.
func (t *TypeRef) Is(path, name string) bool {
	return t != nil && !t.Slice && !t.Array && !t.Map && t.Path == path && t.Name == name
}

// resolveType derives a TypeRef from a type expression appearing in file
// (whose import table gives package names meaning). pkgPath qualifies
// bare identifiers that name package-local types.
func resolveType(file *File, pkgPath string, e ast.Expr) *TypeRef {
	switch e := e.(type) {
	case *ast.Ident:
		switch e.Name {
		case "byte", "uint8", "int", "int8", "int16", "int32", "int64",
			"uint", "uint16", "uint32", "uint64", "uintptr", "float32",
			"float64", "bool", "string", "rune", "error", "any":
			return &TypeRef{Name: e.Name}
		}
		return &TypeRef{Path: pkgPath, Name: e.Name}
	case *ast.SelectorExpr:
		if x, ok := e.X.(*ast.Ident); ok {
			if imp, ok := file.Imports[x.Name]; ok {
				return &TypeRef{Path: imp, Name: e.Sel.Name}
			}
		}
	case *ast.StarExpr:
		if inner := resolveType(file, pkgPath, e.X); inner != nil {
			cp := *inner
			cp.Ptr = true
			return &cp
		}
	case *ast.ArrayType:
		elem := resolveType(file, pkgPath, e.Elt)
		if e.Len == nil {
			return &TypeRef{Slice: true, Elem: elem}
		}
		return &TypeRef{Array: true, Elem: elem}
	case *ast.MapType:
		return &TypeRef{Map: true, Elem: resolveType(file, pkgPath, e.Value)}
	case *ast.IndexExpr: // generic instantiation T[X]
		return resolveType(file, pkgPath, e.X)
	case *ast.IndexListExpr:
		return resolveType(file, pkgPath, e.X)
	case *ast.ParenExpr:
		return resolveType(file, pkgPath, e.X)
	}
	return nil
}

// Index holds module-wide syntactic facts.
type Index struct {
	Module string

	structs       map[string]map[string]map[string]*TypeRef // pkg → struct → field → type
	funcResults   map[string]map[string][]*TypeRef          // pkg → func → results
	methodResults map[string]map[string]map[string][]*TypeRef
	closeErr      map[string]map[string]bool     // pkg → type → Close() returns error
	pkgVars       map[string]map[string]*TypeRef // pkg → package-level var → type

	// pkgs is every loaded package; the whole-program concurrency pass
	// (lock-order graph, atomic access census — see lockorder.go and
	// atomicmix.go) runs over all of them regardless of which packages an
	// analyzer is invoked on.
	pkgs     []*Package
	concOnce sync.Once
	concIdx  *concIndex

	// The hot-path closure (hotpath.go) is likewise computed once and
	// shared by hotalloc and copycheck.
	hotOnce sync.Once
	hotIdx  *hotIndex

	// Buffer-ownership annotations (bufown.go): the module-wide table of
	// `// bufown` marked params and fields, shared by the analyzer and
	// the -bufgraph dump.
	bufOnce sync.Once
	bufIdx  *bufIndex

	// Enum member table (exhaustenum.go): module named integer types with
	// two or more typed constants.
	enumOnce sync.Once
	enumIdx  map[string]*enumInfo
}

// BuildIndex scans every package once.
func BuildIndex(module string, pkgs []*Package) *Index {
	idx := &Index{
		Module:        module,
		structs:       map[string]map[string]map[string]*TypeRef{},
		funcResults:   map[string]map[string][]*TypeRef{},
		methodResults: map[string]map[string]map[string][]*TypeRef{},
		closeErr:      map[string]map[string]bool{},
		pkgVars:       map[string]map[string]*TypeRef{},
		pkgs:          pkgs,
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.AST.Decls {
				switch d := decl.(type) {
				case *ast.GenDecl:
					if d.Tok == token.VAR {
						for _, spec := range d.Specs {
							vs, ok := spec.(*ast.ValueSpec)
							if !ok || vs.Type == nil {
								continue
							}
							t := resolveType(file, pkg.ImportPath, vs.Type)
							for _, name := range vs.Names {
								if idx.pkgVars[pkg.ImportPath] == nil {
									idx.pkgVars[pkg.ImportPath] = map[string]*TypeRef{}
								}
								idx.pkgVars[pkg.ImportPath][name.Name] = t
							}
						}
						continue
					}
					if d.Tok != token.TYPE {
						continue
					}
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						st, ok := ts.Type.(*ast.StructType)
						if !ok {
							continue
						}
						fields := map[string]*TypeRef{}
						for _, f := range st.Fields.List {
							t := resolveType(file, pkg.ImportPath, f.Type)
							for _, name := range f.Names {
								fields[name.Name] = t
							}
						}
						if idx.structs[pkg.ImportPath] == nil {
							idx.structs[pkg.ImportPath] = map[string]map[string]*TypeRef{}
						}
						idx.structs[pkg.ImportPath][ts.Name.Name] = fields
					}
				case *ast.FuncDecl:
					var results []*TypeRef
					if d.Type.Results != nil {
						for _, r := range d.Type.Results.List {
							t := resolveType(file, pkg.ImportPath, r.Type)
							n := len(r.Names)
							if n == 0 {
								n = 1
							}
							for i := 0; i < n; i++ {
								results = append(results, t)
							}
						}
					}
					if d.Recv == nil {
						if idx.funcResults[pkg.ImportPath] == nil {
							idx.funcResults[pkg.ImportPath] = map[string][]*TypeRef{}
						}
						idx.funcResults[pkg.ImportPath][d.Name.Name] = results
						continue
					}
					recv := resolveType(file, pkg.ImportPath, d.Recv.List[0].Type)
					if recv == nil {
						continue
					}
					if idx.methodResults[pkg.ImportPath] == nil {
						idx.methodResults[pkg.ImportPath] = map[string]map[string][]*TypeRef{}
					}
					if idx.methodResults[pkg.ImportPath][recv.Name] == nil {
						idx.methodResults[pkg.ImportPath][recv.Name] = map[string][]*TypeRef{}
					}
					idx.methodResults[pkg.ImportPath][recv.Name][d.Name.Name] = results
					if d.Name.Name == "Close" {
						if idx.closeErr[pkg.ImportPath] == nil {
							idx.closeErr[pkg.ImportPath] = map[string]bool{}
						}
						returnsErr := len(results) > 0 && results[len(results)-1].Is("", "error")
						idx.closeErr[pkg.ImportPath][recv.Name] = returnsErr
					}
				}
			}
		}
	}
	return idx
}

// stdlib types whose Close returns an error.
var stdCloseErr = map[[2]string]bool{
	{"net", "Conn"}: true, {"net", "TCPConn"}: true, {"net", "UDPConn"}: true,
	{"net", "Listener"}: true, {"net", "TCPListener"}: true,
	{"os", "File"}:   true,
	{"io", "Closer"}: true, {"io", "ReadCloser"}: true,
	{"io", "WriteCloser"}: true, {"io", "ReadWriteCloser"}: true,
}

// CloseReturnsError reports whether t.Close() is known to return an error.
func (idx *Index) CloseReturnsError(t *TypeRef) bool {
	if t == nil {
		return false
	}
	if stdCloseErr[[2]string{t.Path, t.Name}] {
		return true
	}
	return idx.closeErr[t.Path][t.Name]
}

// stdlib constructor results, keyed by "pkgpath.Func".
var stdFuncResults = map[string][]*TypeRef{
	"net.Dial":        {{Path: "net", Name: "Conn"}, {Name: "error"}},
	"net.DialTimeout": {{Path: "net", Name: "Conn"}, {Name: "error"}},
	"net.DialTCP":     {{Path: "net", Name: "TCPConn", Ptr: true}, {Name: "error"}},
	"net.Listen":      {{Path: "net", Name: "Listener"}, {Name: "error"}},
	"net.ListenTCP":   {{Path: "net", Name: "TCPListener", Ptr: true}, {Name: "error"}},
	"os.Open":         {{Path: "os", Name: "File", Ptr: true}, {Name: "error"}},
	"os.Create":       {{Path: "os", Name: "File", Ptr: true}, {Name: "error"}},
	"os.OpenFile":     {{Path: "os", Name: "File", Ptr: true}, {Name: "error"}},
}

// stdlib method results, keyed by recvPkg.RecvType.Method.
var stdMethodResults = map[[3]string][]*TypeRef{
	{"net", "Listener", "Accept"}:       {{Path: "net", Name: "Conn"}, {Name: "error"}},
	{"net", "TCPListener", "Accept"}:    {{Path: "net", Name: "Conn"}, {Name: "error"}},
	{"net", "TCPListener", "AcceptTCP"}: {{Path: "net", Name: "TCPConn", Ptr: true}, {Name: "error"}},
}

// env resolves identifiers within one function declaration.
type env struct {
	idx  *Index
	pkg  *Package
	file *File
	vars map[string]*TypeRef
}

// funcEnv collects identifier types from fn's receiver, parameters,
// nested function-literal parameters, declarations, assignments from
// known constructors, type assertions and range statements.
func funcEnv(idx *Index, pkg *Package, file *File, fn *ast.FuncDecl) *env {
	e := &env{idx: idx, pkg: pkg, file: file, vars: map[string]*TypeRef{}}
	bindFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			t := resolveType(file, pkg.ImportPath, f.Type)
			for _, name := range f.Names {
				e.vars[name.Name] = t
			}
		}
	}
	bindFields(fn.Recv)
	bindFields(fn.Type.Params)
	if fn.Body == nil {
		return e
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			bindFields(n.Type.Params)
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || vs.Type == nil {
					continue
				}
				t := resolveType(file, pkg.ImportPath, vs.Type)
				for _, name := range vs.Names {
					e.vars[name.Name] = t
				}
			}
		case *ast.AssignStmt:
			e.bindAssign(n)
		case *ast.RangeStmt:
			t := e.typeOf(n.X)
			if t != nil && (t.Slice || t.Array || t.Map) && n.Value != nil {
				if id, ok := n.Value.(*ast.Ident); ok {
					e.vars[id.Name] = t.Elem
				}
			}
		}
		return true
	})
	return e
}

func (e *env) bindAssign(a *ast.AssignStmt) {
	// x, err := f(...)  /  tc, ok := conn.(*T)
	if len(a.Rhs) == 1 && len(a.Lhs) > 1 {
		var results []*TypeRef
		switch rhs := a.Rhs[0].(type) {
		case *ast.CallExpr:
			results = e.callResults(rhs)
		case *ast.TypeAssertExpr:
			if rhs.Type != nil {
				results = []*TypeRef{resolveType(e.file, e.pkg.ImportPath, rhs.Type)}
			}
		case *ast.IndexExpr:
			// v, ok := m[k] — the first value carries the element type.
			results = []*TypeRef{e.typeOf(rhs)}
		}
		for i, lhs := range a.Lhs {
			if i >= len(results) {
				break
			}
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				e.vars[id.Name] = results[i]
			}
		}
		return
	}
	if len(a.Rhs) != len(a.Lhs) {
		return
	}
	for i, lhs := range a.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if t := e.typeOf(a.Rhs[i]); t != nil {
			e.vars[id.Name] = t
		}
	}
}

// callResults resolves a call's result types from the make builtin, the
// module-wide index, or the stdlib tables.
func (e *env) callResults(call *ast.CallExpr) []*TypeRef {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "make" && len(call.Args) >= 1 {
			return []*TypeRef{resolveType(e.file, e.pkg.ImportPath, call.Args[0])}
		}
		return e.idx.funcResults[e.pkg.ImportPath][fun.Name]
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			if imp, ok := e.file.Imports[x.Name]; ok {
				if r, ok := stdFuncResults[imp+"."+fun.Sel.Name]; ok {
					return r
				}
				return e.idx.funcResults[imp][fun.Sel.Name]
			}
		}
		recv := e.typeOf(fun.X)
		if recv == nil {
			return nil
		}
		if r, ok := stdMethodResults[[3]string{recv.Path, recv.Name, fun.Sel.Name}]; ok {
			return r
		}
		return e.idx.methodResults[recv.Path][recv.Name][fun.Sel.Name]
	}
	return nil
}

// typeOf resolves an expression to a TypeRef, or nil if unknown.
func (e *env) typeOf(expr ast.Expr) *TypeRef {
	switch expr := expr.(type) {
	case *ast.Ident:
		return e.vars[expr.Name]
	case *ast.SelectorExpr:
		base := e.typeOf(expr.X)
		if base == nil {
			return nil
		}
		return e.idx.structs[base.Path][base.Name][expr.Sel.Name]
	case *ast.IndexExpr:
		t := e.typeOf(expr.X)
		if t != nil && (t.Slice || t.Array || t.Map) {
			return t.Elem
		}
	case *ast.CallExpr:
		if r := e.callResults(expr); len(r) > 0 {
			return r[0]
		}
	case *ast.ParenExpr:
		return e.typeOf(expr.X)
	case *ast.StarExpr:
		if t := e.typeOf(expr.X); t != nil {
			cp := *t
			cp.Ptr = false
			return &cp
		}
	case *ast.UnaryExpr:
		if expr.Op == token.AND {
			if t := e.typeOf(expr.X); t != nil {
				cp := *t
				cp.Ptr = true
				return &cp
			}
		}
	case *ast.CompositeLit:
		if expr.Type != nil {
			return resolveType(e.file, e.pkg.ImportPath, expr.Type)
		}
	}
	return nil
}

// constVal evaluates a compile-time integer expression using the given
// package-level constant table; ok=false when the expression is not a
// simple constant.
func constVal(consts map[string]int64, e ast.Expr) (int64, bool) {
	switch e := e.(type) {
	case *ast.BasicLit:
		if e.Kind == token.INT {
			v, err := strconv.ParseInt(e.Value, 0, 64)
			return v, err == nil
		}
	case *ast.Ident:
		v, ok := consts[e.Name]
		return v, ok
	case *ast.ParenExpr:
		return constVal(consts, e.X)
	case *ast.UnaryExpr:
		if v, ok := constVal(consts, e.X); ok && e.Op == token.SUB {
			return -v, true
		}
	case *ast.BinaryExpr:
		a, okA := constVal(consts, e.X)
		b, okB := constVal(consts, e.Y)
		if !okA || !okB {
			return 0, false
		}
		switch e.Op {
		case token.ADD:
			return a + b, true
		case token.SUB:
			return a - b, true
		case token.MUL:
			return a * b, true
		case token.QUO:
			if b != 0 {
				return a / b, true
			}
		case token.SHL:
			if b >= 0 && b < 63 {
				return a << b, true
			}
		}
	}
	return 0, false
}

// packageConsts collects integer package-level constants (plain literals
// and simple expressions over earlier constants; iota runs are skipped).
func packageConsts(pkg *Package) map[string]int64 {
	consts := map[string]int64{}
	// Two passes so order of declaration across files doesn't matter.
	for pass := 0; pass < 2; pass++ {
		for _, file := range pkg.Files {
			for _, decl := range file.AST.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.CONST {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Values) != len(vs.Names) {
						continue
					}
					for i, name := range vs.Names {
						if v, ok := constVal(consts, vs.Values[i]); ok {
							consts[name.Name] = v
						}
					}
				}
			}
		}
	}
	return consts
}

// eachFunc invokes fn for every function declaration in every non-test
// file of pkg. Analyzers target production code; tests are exempt.
func eachFunc(pkg *Package, fn func(file *File, decl *ast.FuncDecl)) {
	for _, file := range pkg.Files {
		if file.Test {
			continue
		}
		for _, decl := range file.AST.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(file, fd)
			}
		}
	}
}

// selectorPath renders a selector chain ("h.subs") for messages; best
// effort, falls back to the final element.
func selectorPath(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if base := selectorPath(e.X); base != "" {
			return base + "." + e.Sel.Name
		}
		return e.Sel.Name
	}
	return ""
}
