package lint

import (
	"strings"
	"testing"
)

// closureMap builds key → entry from a dump.
func closureMap(d *HotpathDump) map[string]HotpathEntry {
	m := map[string]HotpathEntry{}
	for _, e := range d.Closure {
		m[e.Func] = e
	}
	return m
}

// TestHotpathClosureFixture pins the closure mechanics on the fixture
// package: marker detection, transitive method resolution, via chains,
// the nolint edge cut, and cycle termination.
func TestHotpathClosureFixture(t *testing.T) {
	pkg, _ := loadFixture(t, "hotpath")
	idx := BuildIndex("fixture", []*Package{pkg})
	d := Hotpaths(idx)

	wantRoots := []string{
		"fixture.hub.generate", "fixture.hub.sendLoop",
		"fixture.recurA", "fixture.ring.frame",
	}
	if got := strings.Join(d.Roots, " "); got != strings.Join(wantRoots, " ") {
		t.Fatalf("roots = %v, want %v", d.Roots, wantRoots)
	}

	m := closureMap(d)
	for _, key := range []string{
		"fixture.ring.advance", "fixture.shard.wakeup", "fixture.ring.frame",
		"fixture.hub.pop", "fixture.encode", "fixture.recurB",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("closure is missing %s", key)
		}
	}
	for _, key := range []string{"fixture.hub.setup", "fixture.notHot"} {
		if _, ok := m[key]; ok {
			t.Errorf("closure wrongly contains %s", key)
		}
	}

	// The via chain records the discovery path from a root.
	if via := m["fixture.ring.advance"].Via; strings.Join(via, " ") != "fixture.hub.generate" {
		t.Errorf("advance via = %v, want [fixture.hub.generate]", via)
	}
	if via := m["fixture.encode"].Via; strings.Join(via, " ") != "fixture.hub.sendLoop fixture.hub.pop" {
		t.Errorf("encode via = %v, want sendLoop -> pop", via)
	}
	if !m["fixture.ring.frame"].CopyPoint {
		t.Errorf("ring.frame should carry the copy-point designation")
	}
	if m["fixture.hub.pop"].Root {
		t.Errorf("hub.pop is transitively hot, not a root")
	}

	// The text rendering mentions every closure member and the cut edge
	// stays absent.
	text := d.Text("fixture")
	for _, want := range []string{"hub.generate", "ring.frame", "[root, copy-point]", "via hub.sendLoop -> hub.pop"} {
		if !strings.Contains(text, want) {
			t.Errorf("text dump missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "setup") {
		t.Errorf("text dump contains the nolint-cut setup edge:\n%s", text)
	}
}

// TestRepoHotpathChain is the acceptance pin: over the real module, the
// annotated roots must transitively cover the ring-advance → shard
// wakeup → sender write loop → frame encode chain without any of those
// callees being annotated themselves.
func TestRepoHotpathChain(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, module, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	idx := BuildIndex(module, pkgs)
	d := Hotpaths(idx)
	m := closureMap(d)

	roots := map[string]bool{}
	for _, r := range d.Roots {
		roots[r] = true
	}
	for _, want := range []string{
		"dmpstream/internal/hub.Hub.generate",
		"dmpstream/internal/hub.Hub.sendLoop",
		"dmpstream/internal/core.Server.generate",
		"dmpstream/internal/core.Session.sendLoop",
		"dmpstream/internal/registry.Registry.Route",
		"dmpstream/internal/fanout.reader.run",
	} {
		if !roots[want] {
			t.Errorf("expected hotpath root %s (have %v)", want, d.Roots)
		}
	}

	// Transitive coverage: none of these carry their own marker; they
	// must be reached through the call graph.
	for key, wantRoot := range map[string]bool{
		"dmpstream/internal/hub.ring.publish":    false, // generate → ring advance
		"dmpstream/internal/hub.shard.wake":      false, // generate → shard wakeup
		"dmpstream/internal/hub.shard.pop":       false, // sendLoop → pop
		"dmpstream/internal/hub.ring.frame":      true,  // copy-point marker makes it a root too
		"dmpstream/internal/core.PutFrameHeader": false, // sendLoop → frame encode
		"dmpstream/internal/core.Server.pop":     false,
		"dmpstream/internal/fanout.hist.record":  false,
	} {
		e, ok := m[key]
		if !ok {
			t.Errorf("hot closure is missing %s", key)
			continue
		}
		if e.Root != wantRoot {
			t.Errorf("%s: root = %v, want %v", key, e.Root, wantRoot)
		}
	}
	if !m["dmpstream/internal/hub.ring.frame"].CopyPoint {
		t.Errorf("hub.ring.frame must be the designated copy point")
	}
}
