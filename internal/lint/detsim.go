package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Detsim forbids nondeterminism in the model/simulator packages: wall
// clock reads (time.Now, time.Since), global or unseeded math/rand use,
// and map iteration whose body accumulates an order-dependent result
// (append, compound assignment, printing). The paper-validation numbers
// (Tables 2-3, Figs 4-5) must be bit-reproducible run to run.
func Detsim() *Analyzer {
	return &Analyzer{
		Name: "detsim",
		Doc:  "forbid wall-clock time, unseeded randomness and map-order dependent results in deterministic packages",
		Run:  runDetsim,
	}
}

// Global math/rand functions that draw from the process-wide source.
var globalRandFns = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
	// math/rand/v2 spellings
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true, "Int64N": true,
	"UintN": true, "Uint32N": true, "Uint64N": true, "N": true,
}

func runDetsim(pkg *Package, idx *Index) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		if file.Test {
			continue
		}
		var timeName, randName string
		for local, path := range file.Imports {
			switch path {
			case "time":
				timeName = local
			case "math/rand", "math/rand/v2":
				randName = local
			}
		}
		for _, decl := range file.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			e := funcEnv(idx, pkg, file, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					sel, ok := n.Fun.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					x, ok := sel.X.(*ast.Ident)
					if !ok {
						return true
					}
					switch {
					case timeName != "" && x.Name == timeName && (sel.Sel.Name == "Now" || sel.Sel.Name == "Since"):
						out = append(out, finding(file, n.Pos(), "detsim",
							"time.%s in deterministic package %s; thread simulated time instead",
							sel.Sel.Name, pkg.ImportPath))
					case randName != "" && x.Name == randName && globalRandFns[sel.Sel.Name]:
						out = append(out, finding(file, n.Pos(), "detsim",
							"global math/rand.%s draws from the shared unseeded source; use rand.New(rand.NewSource(seed))",
							sel.Sel.Name))
					case randName != "" && x.Name == randName && sel.Sel.Name == "New":
						if !isSeededSource(randName, n) {
							out = append(out, finding(file, n.Pos(), "detsim",
								"rand.New without an explicit rand.NewSource(seed) argument"))
						}
					}
				case *ast.RangeStmt:
					t := e.typeOf(n.X)
					if t == nil || !t.Map {
						return true
					}
					if feed, what := ordersResult(n.Body); feed {
						out = append(out, finding(file, n.Pos(), "detsim",
							"iteration over map %s feeds an order-dependent result (%s); iterate a sorted key slice or reduce order-independently",
							selectorPath(n.X), what))
					}
				}
				return true
			})
		}
	}
	return out
}

// isSeededSource reports whether rand.New's argument is itself a
// rand.NewSource/NewPCG/NewChaCha8 call (an explicitly seeded source).
func isSeededSource(randName string, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	inner, ok := call.Args[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := inner.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	x, ok := sel.X.(*ast.Ident)
	if !ok || x.Name != randName {
		return false
	}
	switch sel.Sel.Name {
	case "NewSource", "NewPCG", "NewChaCha8", "NewZipf":
		return true
	}
	return false
}

// ordersResult reports whether a map-range body produces something that
// depends on iteration order: growing a slice, compound-assignment
// accumulation (float sums are not associative), or direct output.
func ordersResult(body *ast.BlockStmt) (bool, string) {
	found := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				found = "compound assignment " + n.Tok.String()
			}
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "append" {
					found = "append"
				}
			case *ast.SelectorExpr:
				if x, ok := fun.X.(*ast.Ident); ok && x.Name == "fmt" &&
					strings.HasPrefix(fun.Sel.Name, "Print") {
					found = "fmt." + fun.Sel.Name
				}
				if x, ok := fun.X.(*ast.Ident); ok && x.Name == "fmt" &&
					strings.HasPrefix(fun.Sel.Name, "Fprint") {
					found = "fmt." + fun.Sel.Name
				}
			}
		}
		return true
	})
	return found != "", found
}
