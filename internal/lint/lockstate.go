// Lexical lock-state tracking shared by the lockguard and lockorder
// analyzers.
//
// A lock scope is one function declaration body or one function literal
// inside it — literals get their own scope because they typically escape
// (go statements, defers, callbacks) and so do not inherit the enclosing
// function's held set. Within a scope, Lock/RLock and Unlock/RUnlock
// calls are paired lexically into held intervals:
//
//   - `defer mu.Unlock()` extends the matching acquisition to the end of
//     the scope;
//   - an explicit unlock inside an early-exit block (a non-outermost
//     statement list ending in return/break/continue/goto or a panic)
//     does NOT close the mainline interval — control flow leaves the
//     function there, so the lexically-following code only runs with the
//     lock still held (`if stopped { mu.Unlock(); return }` idiom);
//   - conversely, an ACQUISITION inside an early-exit block never extends
//     past that block: control cannot flow from the block to the
//     lexically-following code, so `if err != nil { mu.Lock(); defer
//     mu.Unlock(); return err }` holds nothing over the rest of the
//     function;
//   - Lock/Unlock and RLock/RUnlock pair independently, so read-side and
//     write-side holds are distinguished.
//
// The model is lexical, not a CFG: loops, gotos and aliasing are
// approximated. Both consumers bias the imprecision toward false
// negatives (lockguard: an uncovered access stays quiet only when a
// covering interval exists; lockorder: an edge needs a positive covering
// interval).
package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strconv"
	"strings"
)

// lockEvent is one Lock/RLock/Unlock/RUnlock call in a scope.
type lockEvent struct {
	pos      token.Pos
	name     string // final path element of the mutex expression ("mu")
	node     string // global mutex identity "pkg.Type.field" / "pkg.var"; "" unresolved
	read     bool   // RLock / RUnlock
	acquire  bool   // Lock / RLock
	deferred bool   // inside a defer statement
	terminal bool   // unlock on an early-exit path (see package comment)
	// clip bounds how far an acquisition can extend: the end of the
	// innermost early-exit block containing it, or NoPos on the mainline.
	clip token.Pos
}

// muInterval is one lexical region during which a mutex is held.
type muInterval struct {
	start, end token.Pos
	read       bool
}

func (iv muInterval) covers(p token.Pos) bool { return iv.start < p && p <= iv.end }

// lockScope is the lock state of one function body or function literal.
type lockScope struct {
	fnName string
	body   *ast.BlockStmt
	events []lockEvent

	byName map[string][]muInterval // keyed by mutex field/ident name
	byNode map[string][]muInterval // keyed by resolved global identity
}

// contains reports whether the scope's body lexically contains pos.
func (sc *lockScope) contains(pos token.Pos) bool {
	return sc.body.Pos() <= pos && pos <= sc.body.End()
}

// heldByName reports whether any interval (read or write) of the named
// mutex covers pos.
func (sc *lockScope) heldByName(name string, pos token.Pos) bool {
	for _, iv := range sc.byName[name] {
		if iv.covers(pos) {
			return true
		}
	}
	return false
}

// collectLockScopes builds the lock scopes of fd: one for the declaration
// body plus one per function literal, at any nesting depth.
func collectLockScopes(e *env, fd *ast.FuncDecl) []*lockScope {
	var out []*lockScope
	var build func(name string, body *ast.BlockStmt)
	build = func(name string, body *ast.BlockStmt) {
		sc := &lockScope{fnName: name, body: body}
		collectLockEvents(e, sc, body)
		sc.finish()
		out = append(out, sc)
		// Nested literals become their own scopes.
		n := 0
		ast.Inspect(body, func(node ast.Node) bool {
			if node == body {
				return true
			}
			if lit, ok := node.(*ast.FuncLit); ok {
				n++
				build(name+"."+litSuffix(n), lit.Body)
				return false
			}
			return true
		})
	}
	build(fd.Name.Name, fd.Body)
	return out
}

func litSuffix(n int) string {
	return "func" + strconv.Itoa(n) // cosmetic only; matches the runtime's func1 style
}

// innermostScope returns the tightest scope containing pos.
func innermostScope(scopes []*lockScope, pos token.Pos) *lockScope {
	var best *lockScope
	for _, sc := range scopes {
		if !sc.contains(pos) {
			continue
		}
		if best == nil || (best.body.Pos() <= sc.body.Pos() && sc.body.End() <= best.body.End()) {
			best = sc
		}
	}
	return best
}

// collectLockEvents walks body's statements in lexical order, recording
// mutex calls with their defer/terminal context. Function literals are
// not descended into — they form separate scopes.
func collectLockEvents(e *env, sc *lockScope, body *ast.BlockStmt) {
	var walkStmts func(list []ast.Stmt, outermost bool, clip token.Pos)
	var walkStmt func(s ast.Stmt, terminal bool, clip token.Pos)

	walkStmts = func(list []ast.Stmt, outermost bool, clip token.Pos) {
		terminal := !outermost && stmtsTerminate(list)
		if terminal {
			// Events in this list can never reach past its last statement.
			clip = list[len(list)-1].End()
		}
		for _, s := range list {
			walkStmt(s, terminal, clip)
		}
	}
	walkStmt = func(s ast.Stmt, terminal bool, clip token.Pos) {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				sc.lockCall(e, call, false, terminal, clip)
			}
		case *ast.DeferStmt:
			sc.lockCall(e, s.Call, true, terminal, clip)
		case *ast.BlockStmt:
			walkStmts(s.List, false, clip)
		case *ast.LabeledStmt:
			walkStmt(s.Stmt, terminal, clip)
		case *ast.IfStmt:
			if s.Init != nil {
				walkStmt(s.Init, terminal, clip)
			}
			walkStmts(s.Body.List, false, clip)
			switch el := s.Else.(type) {
			case *ast.BlockStmt:
				walkStmts(el.List, false, clip)
			case *ast.IfStmt:
				walkStmt(el, terminal, clip)
			}
		case *ast.ForStmt:
			walkStmts(s.Body.List, false, clip)
		case *ast.RangeStmt:
			walkStmts(s.Body.List, false, clip)
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkStmts(cc.Body, false, clip)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkStmts(cc.Body, false, clip)
				}
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					walkStmts(cc.Body, false, clip)
				}
			}
		}
	}
	walkStmts(body.List, true, token.NoPos)
}

// stmtsTerminate reports whether a statement list ends by leaving the
// enclosing control flow: return, break/continue/goto, or a panic-like
// call.
func stmtsTerminate(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			return isPanicCall(call)
		}
	}
	return false
}

// isPanicCall recognizes panic, os.Exit, runtime.Goexit and log.Fatal*.
func isPanicCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			switch {
			case x.Name == "os" && fun.Sel.Name == "Exit":
				return true
			case x.Name == "runtime" && fun.Sel.Name == "Goexit":
				return true
			case x.Name == "log" && strings.HasPrefix(fun.Sel.Name, "Fatal"):
				return true
			}
		}
	}
	return false
}

// lockCall records call as a lock event if it is a mutex operation.
func (sc *lockScope) lockCall(e *env, call *ast.CallExpr, deferred, terminal bool, clip token.Pos) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	var read, acquire bool
	switch sel.Sel.Name {
	case "Lock":
		acquire = true
	case "RLock":
		acquire, read = true, true
	case "Unlock":
	case "RUnlock":
		read = true
	default:
		return
	}
	name := ""
	switch x := sel.X.(type) {
	case *ast.SelectorExpr:
		name = x.Sel.Name
	case *ast.Ident:
		name = x.Name
	default:
		return
	}
	sc.events = append(sc.events, lockEvent{
		pos:      call.Pos(),
		name:     name,
		node:     resolveMutexNode(e, sel.X),
		read:     read,
		acquire:  acquire,
		deferred: deferred,
		terminal: terminal,
		clip:     clip,
	})
}

// resolveMutexNode derives a module-global mutex identity from the
// expression x in x.Lock(): "pkg.Type.field" for a struct field whose
// declared type is sync.Mutex/RWMutex, "pkg.var" for a package-level
// mutex var. Locals, parameters of mutex type and unresolvable chains
// yield "" (they cannot participate in a cross-function order anyway).
func resolveMutexNode(e *env, x ast.Expr) string {
	switch x := x.(type) {
	case *ast.SelectorExpr:
		base := e.typeOf(x.X)
		if base == nil || base.Path == "" {
			return ""
		}
		ft := e.idx.structs[base.Path][base.Name][x.Sel.Name]
		if !isMutexType(ft) {
			return ""
		}
		return base.Path + "." + base.Name + "." + x.Sel.Name
	case *ast.Ident:
		if t := e.idx.pkgVars[e.pkg.ImportPath][x.Name]; isMutexType(t) {
			return e.pkg.ImportPath + "." + x.Name
		}
	}
	return ""
}

func isMutexType(t *TypeRef) bool {
	return t != nil && (t.Is("sync", "Mutex") || t.Is("sync", "RWMutex"))
}

// finish pairs the recorded events into held intervals.
func (sc *lockScope) finish() {
	sort.Slice(sc.events, func(i, j int) bool { return sc.events[i].pos < sc.events[j].pos })
	end := sc.body.End()
	sc.byName = buildIntervals(sc.events, end, func(ev lockEvent) string { return ev.name })
	sc.byNode = buildIntervals(sc.events, end, func(ev lockEvent) string { return ev.node })
}

func buildIntervals(events []lockEvent, end token.Pos, key func(lockEvent) string) map[string][]muInterval {
	type open struct {
		pos  token.Pos
		read bool
		clip token.Pos
	}
	opens := map[string][]open{}
	out := map[string][]muInterval{}
	clipped := func(o open, ivEnd token.Pos) token.Pos {
		if o.clip.IsValid() && o.clip < ivEnd {
			return o.clip
		}
		return ivEnd
	}
	for _, ev := range events {
		k := key(ev)
		if k == "" {
			continue
		}
		if ev.acquire {
			opens[k] = append(opens[k], open{ev.pos, ev.read, ev.clip})
			continue
		}
		// Release. Early-exit unlocks do not close the mainline interval.
		if ev.terminal && !ev.deferred {
			continue
		}
		stack := opens[k]
		for i := len(stack) - 1; i >= 0; i-- {
			if stack[i].read != ev.read {
				continue
			}
			o := stack[i]
			opens[k] = append(stack[:i], stack[i+1:]...)
			ivEnd := ev.pos
			if ev.deferred {
				ivEnd = end // defer releases at scope exit
			}
			out[k] = append(out[k], muInterval{start: o.pos, end: clipped(o, ivEnd), read: o.read})
			break
		}
	}
	// Acquisitions with no visible release are held to the end of the scope
	// (bounded by the early-exit block they sit in, if any).
	for k, stack := range opens {
		for _, o := range stack {
			out[k] = append(out[k], muInterval{start: o.pos, end: clipped(o, end), read: o.read})
		}
	}
	return out
}
