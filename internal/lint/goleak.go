package lint

import (
	"go/ast"
	"strings"
)

// Goleak requires every goroutine launched in library packages to have a
// provable exit path. A goroutine body (a function literal, or a
// same-package function/method launched directly — calls one level deep
// are followed) is flagged when it contains an unconditional `for` loop
// with no way out: no return, no break targeting the loop, no receive
// from a done/quit/stop-style channel, and no panic/Goexit. An empty
// `select {}` is flagged as blocking forever.
//
// Conditional loops (`for cond`), counted loops and `range` loops exit on
// their own terms and stay quiet, as do goroutines whose body cannot be
// resolved — the analyzer trades false negatives for zero noise, per the
// suite's convention. A goroutine that is intentionally process-lifetime
// carries `// nolint:goleak <reason>`.
//
// This is the per-subscriber leak class the hub is most exposed to: a
// path sender or stats pump started per join that never observes the
// subscriber leaving accumulates one goroutine per churn event until the
// process dies — the silent stall mode of long-lived streaming servers.
func Goleak() *Analyzer {
	return &Analyzer{
		Name: "goleak",
		Doc:  "every goroutine needs a provable exit path (done channel, bounded loop, or return)",
		Run:  runGoleak,
	}
}

func runGoleak(pkg *Package, idx *Index) []Finding {
	funcs, methods := packageFuncs(pkg)
	var out []Finding
	eachFunc(pkg, func(file *File, fd *ast.FuncDecl) {
		e := funcEnv(idx, pkg, file, fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body, name := goTargetBody(e, gs, funcs, methods)
			if body == nil {
				return true
			}
			if reason := leakEvidence(body, funcs, methods, name); reason != "" {
				out = append(out, finding(file, gs.Pos(), "goleak",
					"goroutine has no provable exit path: %s (add a done-channel/bound, or // nolint:goleak <reason>)",
					reason))
			}
			return true
		})
	})
	return out
}

// packageFuncs indexes the package's function and method declarations so
// `go f()` and `go x.m()` can be resolved to bodies.
func packageFuncs(pkg *Package) (map[string]*ast.FuncDecl, map[string]map[string]*ast.FuncDecl) {
	funcs := map[string]*ast.FuncDecl{}
	methods := map[string]map[string]*ast.FuncDecl{}
	for _, file := range pkg.Files {
		if file.Test {
			continue
		}
		for _, decl := range file.AST.Decls {
			fd, ok := declFunc(decl)
			if !ok {
				continue
			}
			if fd.Recv == nil {
				funcs[fd.Name.Name] = fd
				continue
			}
			recv := resolveType(file, pkg.ImportPath, fd.Recv.List[0].Type)
			if recv == nil {
				continue
			}
			if methods[recv.Name] == nil {
				methods[recv.Name] = map[string]*ast.FuncDecl{}
			}
			methods[recv.Name][fd.Name.Name] = fd
		}
	}
	return funcs, methods
}

// goTargetBody resolves the body a go statement runs: a literal's body,
// or the declaration of a directly launched same-package function/method.
func goTargetBody(e *env, gs *ast.GoStmt, funcs map[string]*ast.FuncDecl, methods map[string]map[string]*ast.FuncDecl) (*ast.BlockStmt, string) {
	switch fun := gs.Call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body, "func literal"
	case *ast.Ident:
		if fd := funcs[fun.Name]; fd != nil {
			return fd.Body, fun.Name
		}
	case *ast.SelectorExpr:
		recv := e.typeOf(fun.X)
		if recv != nil && recv.Path == e.pkg.ImportPath {
			if fd := methods[recv.Name][fun.Sel.Name]; fd != nil {
				return fd.Body, recv.Name + "." + fun.Sel.Name
			}
		}
	}
	return nil, ""
}

// leakEvidence inspects a goroutine body (and same-package callees one
// level deep) for a construct that can never exit; "" means no evidence.
func leakEvidence(body *ast.BlockStmt, funcs map[string]*ast.FuncDecl, methods map[string]map[string]*ast.FuncDecl, name string) string {
	if reason := blockLeaks(body, name); reason != "" {
		return reason
	}
	// Follow direct same-package calls one level: `go func() { s.run() }()`
	// leaks if run never returns. Method receivers are matched by name
	// only at this depth — good enough inside one package.
	var reason string
	ast.Inspect(body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false // separate goroutines/scopes
		case *ast.CallExpr:
			var callee *ast.FuncDecl
			calleeName := ""
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				callee, calleeName = funcs[fun.Name], fun.Name
			case *ast.SelectorExpr:
				var matches []*ast.FuncDecl
				for _, ms := range methods {
					if fd := ms[fun.Sel.Name]; fd != nil {
						matches = append(matches, fd)
					}
				}
				if len(matches) == 1 { // ambiguous method names stay quiet
					callee, calleeName = matches[0], fun.Sel.Name
				}
			}
			if callee != nil {
				reason = blockLeaks(callee.Body, name+" via "+calleeName)
			}
		}
		return true
	})
	return reason
}

// blockLeaks scans one body for loops/selects that provably never exit.
func blockLeaks(body *ast.BlockStmt, name string) string {
	reason := ""
	var scan func(n ast.Node) bool
	scan = func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SelectStmt:
			if len(n.Body.List) == 0 {
				reason = name + " blocks forever on an empty select"
				return false
			}
		case *ast.ForStmt:
			if n.Cond == nil && !loopExits(n) {
				reason = name + " runs an unbounded for-loop with no return, break, or done-channel receive"
				return false
			}
		}
		return true
	}
	ast.Inspect(body, scan)
	return reason
}

// loopExits reports whether an unconditional for-loop shows any exit
// evidence: a return, a break that targets it, a panic-style call, or a
// receive from a channel whose name suggests shutdown signalling
// (done/quit/stop/exit/cancel/ctx/close/term).
func loopExits(loop *ast.ForStmt) bool {
	exits := false
	var walk func(n ast.Node, depth int)
	walkStmts := func(list []ast.Stmt, depth int) {
		for _, s := range list {
			walk(s, depth)
		}
	}
	walk = func(n ast.Node, depth int) {
		if exits || n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			exits = true
		case *ast.BranchStmt:
			// A labeled break/continue/goto is assumed to leave the loop; a
			// bare break only counts at depth 0 (inside a nested for /
			// switch / select it targets the inner construct).
			if n.Label != nil || (n.Tok.String() == "break" && depth == 0) {
				exits = true
			}
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && isPanicCall(call) {
				exits = true
				return
			}
			walkExprForReceive(n.X, &exits)
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				walkExprForReceive(rhs, &exits)
			}
		case *ast.IfStmt:
			if n.Init != nil {
				walk(n.Init, depth)
			}
			walkStmts(n.Body.List, depth)
			if n.Else != nil {
				walk(n.Else, depth)
			}
		case *ast.BlockStmt:
			walkStmts(n.List, depth)
		case *ast.LabeledStmt:
			walk(n.Stmt, depth)
		case *ast.ForStmt:
			walkStmts(n.Body.List, depth+1)
		case *ast.RangeStmt:
			walkStmts(n.Body.List, depth+1)
		case *ast.SwitchStmt:
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkStmts(cc.Body, depth+1)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkStmts(cc.Body, depth+1)
				}
			}
		case *ast.SelectStmt:
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					if cc.Comm != nil {
						if recvFromShutdownChan(cc.Comm) {
							exits = true
							return
						}
					}
					walkStmts(cc.Body, depth+1)
				}
			}
		case *ast.DeferStmt, *ast.GoStmt:
			// deferred code runs only if something else exits; nested
			// goroutines are analyzed separately
		}
	}
	walkStmts(loop.Body.List, 0)
	return exits
}

// walkExprForReceive sets *exits when expr contains a receive from a
// shutdown-style channel (outside function literals).
func walkExprForReceive(expr ast.Expr, exits *bool) {
	ast.Inspect(expr, func(n ast.Node) bool {
		if *exits {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" && isShutdownChanExpr(n.X) {
				*exits = true
				return false
			}
		}
		return true
	})
}

// recvFromShutdownChan matches `case <-ch:` / `case x := <-ch:` where ch
// names a shutdown channel.
func recvFromShutdownChan(comm ast.Stmt) bool {
	var recv ast.Expr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		recv = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			recv = s.Rhs[0]
		}
	}
	ue, ok := recv.(*ast.UnaryExpr)
	if !ok || ue.Op.String() != "<-" {
		return false
	}
	return isShutdownChanExpr(ue.X)
}

var shutdownChanTokens = []string{"done", "quit", "stop", "exit", "cancel", "ctx", "close", "term"}

// isShutdownChanExpr matches channel expressions whose final name element
// suggests a shutdown signal: s.done, quitCh, ctx.Done(), h.closing…
func isShutdownChanExpr(x ast.Expr) bool {
	if call, ok := x.(*ast.CallExpr); ok { // ctx.Done()
		x = call.Fun
	}
	name := selectorPath(x)
	if i := strings.LastIndex(name, "."); i >= 0 {
		name = name[i+1:]
	}
	name = strings.ToLower(name)
	for _, tok := range shutdownChanTokens {
		if strings.Contains(name, tok) {
			return true
		}
	}
	return false
}
