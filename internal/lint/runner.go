// Concurrent analyzer execution. Each (package, analyzer) pair is an
// independent job: analyzers only read the parsed ASTs and the shared
// Index, whose lazy sub-indices (conc/hot/buf/enum) are built behind
// sync.Once and therefore safe to race on first use. Results land in
// per-job slots preallocated in the sequential iteration order, so the
// flattened output is byte-identical to a sequential run before the
// final sort even happens — determinism does not depend on scheduling.
package lint

import (
	"runtime"
	"sort"
	"sync"
)

// runJob is one (package, analyzer) unit of work.
type runJob struct {
	pkg *Package
	a   *Analyzer
}

// runAll executes the suite with the given worker bound and returns the
// post-processed findings (positions resolved, severity defaulted,
// suppressions marked) in deterministic order.
func runAll(pkgs []*Package, idx *Index, analyzers []*Analyzer, workers int) []Finding {
	var jobs []runJob
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Scope != nil && !a.Scope(pkg) {
				continue
			}
			jobs = append(jobs, runJob{pkg: pkg, a: a})
		}
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	results := make([][]Finding, len(jobs))
	run := func(i int) {
		job := jobs[i]
		fs := job.a.Run(job.pkg, idx)
		for k := range fs {
			f := &fs[k]
			f.Pos = job.pkg.Fset.Position(f.pos)
			f.Severity = job.a.Severity
			if f.Severity == "" {
				f.Severity = "error"
			}
			f.Suppressed = suppressed(job.pkg.Fset, *f)
		}
		results[i] = fs
	}

	if workers <= 1 {
		for i := range jobs {
			run(i)
		}
	} else {
		next := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					run(i)
				}
			}()
		}
		for i := range jobs {
			next <- i
		}
		close(next)
		wg.Wait()
	}

	var out []Finding
	for _, fs := range results {
		out = append(out, fs...)
	}
	sortFindings(out)
	return out
}

// sortFindings orders findings for output. The comparator is a total
// order over every reported field (file, line, analyzer, column,
// message) so ties cannot let sort.Slice's unstable ordering leak
// scheduling differences between sequential and parallel runs.
func sortFindings(out []Finding) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}

// RunAllParallel is RunAll with the jobs spread over GOMAXPROCS-bounded
// workers. Output is identical to RunAll — same findings, same order.
func RunAllParallel(pkgs []*Package, idx *Index, analyzers []*Analyzer) []Finding {
	return runAll(pkgs, idx, analyzers, runtime.GOMAXPROCS(0))
}
