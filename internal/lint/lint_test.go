package lint

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The fixture harness: each analyzer has a testdata/<name>/ directory of
// parse-only Go files carrying `// want "substring"` comments on the
// lines expected to be flagged. Lines without a want comment must stay
// quiet — so every fixture asserts true positives and true negatives in
// one pass, including the nolint escape hatch.

var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

type wantDiag struct {
	line   int
	substr string
}

// loadFixture parses every file in testdata/<dir> into one Package and
// extracts the want comments.
func loadFixture(t *testing.T, dir string) (*Package, []wantDiag) {
	t.Helper()
	root := filepath.Join("testdata", dir)
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	pkg := &Package{Dir: root, ImportPath: "fixture", Fset: fset}
	var wants []wantDiag
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(root, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		af, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		pkg.Files = append(pkg.Files, NewFile(e.Name(), af))
		for i, line := range strings.Split(string(src), "\n") {
			if m := wantRe.FindStringSubmatch(line); m != nil {
				wants = append(wants, wantDiag{line: i + 1, substr: m[1]})
			}
		}
	}
	if len(pkg.Files) == 0 {
		t.Fatalf("no fixture files in %s", root)
	}
	return pkg, wants
}

// checkFixture runs the analyzer over its fixture and requires an exact
// line-by-line match between findings and want comments.
func checkFixture(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	pkg, wants := loadFixture(t, dir)
	idx := BuildIndex("fixture", []*Package{pkg})
	got := Run([]*Package{pkg}, idx, []*Analyzer{a})

	matched := make([]bool, len(got))
	for _, w := range wants {
		found := false
		for i, f := range got {
			if !matched[i] && f.Pos.Line == w.line && strings.Contains(f.Message, w.substr) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: expected finding at line %d containing %q; analyzer stayed quiet", dir, w.line, w.substr)
		}
	}
	for i, f := range got {
		if !matched[i] {
			t.Errorf("%s: unexpected finding: %s", dir, f)
		}
	}
}

func TestDetsimFixture(t *testing.T)      { checkFixture(t, Detsim(), "detsim") }
func TestLockguardFixture(t *testing.T)   { checkFixture(t, Lockguard(), "lockguard") }
func TestWiresafeFixture(t *testing.T)    { checkFixture(t, Wiresafe(), "wiresafe") }
func TestNetdeadlineFixture(t *testing.T) { checkFixture(t, Netdeadline(), "netdeadline") }
func TestClosecheckFixture(t *testing.T)  { checkFixture(t, Closecheck(), "closecheck") }
func TestLockorderFixture(t *testing.T)   { checkFixture(t, Lockorder(), "lockorder") }
func TestGoleakFixture(t *testing.T)      { checkFixture(t, Goleak(), "goleak") }
func TestAtomicmixFixture(t *testing.T)   { checkFixture(t, Atomicmix(), "atomicmix") }
func TestHotallocFixture(t *testing.T)    { checkFixture(t, Hotalloc(), "hotalloc") }
func TestCopycheckFixture(t *testing.T)   { checkFixture(t, Copycheck(0), "copycheck") }
func TestBufownFixture(t *testing.T)      { checkFixture(t, Bufown(), "bufown") }
func TestExhaustenumFixture(t *testing.T) { checkFixture(t, Exhaustenum(), "exhaustenum") }

// TestRepoSelfClean is the gate the CI lint job re-runs via the driver:
// the full default suite over the whole module must report nothing. Any
// new finding means either a real regression or a missing nolint with
// its reason — both belong in the diff that introduced them.
func TestRepoSelfClean(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, module, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	if module != "dmpstream" {
		t.Fatalf("unexpected module %q", module)
	}
	analyzers := DefaultAnalyzers(module)
	// The concurrency analyzers must be part of the default gate — a
	// scoping change that drops one would silently stop enforcing it.
	for _, want := range []string{"lockorder", "goleak", "atomicmix", "hotalloc", "copycheck",
		"bufown", "exhaustenum"} {
		found := false
		for _, a := range analyzers {
			found = found || a.Name == want
		}
		if !found {
			t.Errorf("default suite is missing %s", want)
		}
	}
	idx := BuildIndex(module, pkgs)
	findings := Run(pkgs, idx, analyzers)
	for _, f := range findings {
		t.Errorf("repo not lint-clean: %s", f)
	}
}

// TestRepoLockGraphAcyclic pins the acceptance criterion that the
// module's own lock graph stays cycle-free: LockGraphDot paints cycle
// edges red, so a clean tree must render none.
func TestRepoLockGraphAcyclic(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, module, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	idx := BuildIndex(module, pkgs)
	dot := LockGraphDot(idx)
	if !strings.HasPrefix(dot, "digraph lockorder {") {
		t.Fatalf("unexpected dot prologue:\n%s", dot)
	}
	if strings.Contains(dot, "color=red") {
		t.Errorf("lock graph has a cycle:\n%s", dot)
	}
	// The one intended cross-mutex edge of the tree (DESIGN.md §7's
	// hierarchy) should be present — an empty graph would mean the pass
	// stopped seeing the repo at all.
	if !strings.Contains(dot, `"internal/core.Session.mu" -> "internal/core.Server.mu"`) {
		t.Errorf("expected Session.mu -> Server.mu edge missing:\n%s", dot)
	}
	// The registry level sits above the hub shards: Route checks a token's
	// re-attach exemption (shard lock) while holding the registry lock.
	if !strings.Contains(dot, `"internal/registry.Registry.mu" -> "internal/hub.shard.mu"`) {
		t.Errorf("expected Registry.mu -> shard.mu edge missing:\n%s", dot)
	}
	// The relay tier extends the hierarchy upward: installing the freshly
	// built downstream hub takes the forwarder's reorder lock under the
	// relay state lock (relay ≺ forwarder ≺ hub; see internal/relay's
	// package doc and the lockorder fixture's relay chain).
	if !strings.Contains(dot, `"internal/relay.Relay.mu" -> "internal/relay.forwarder.mu"`) {
		t.Errorf("expected Relay.mu -> forwarder.mu edge missing:\n%s", dot)
	}
}

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above test working directory")
		}
		dir = parent
	}
}

// TestNolintPlacement pins the three supported suppression positions:
// trailing same-line, full line above (multi-line group), and enclosing
// function doc.
func TestNolintPlacement(t *testing.T) {
	src := `package p

import "net"

func trailing(c net.Conn) {
	c.Close() // nolint:closecheck reason
}

func above(c net.Conn) {
	// nolint:closecheck this reason spans
	// a second comment line
	c.Close()
}

// docSuppressed tears down best-effort.
// nolint:closecheck whole function is teardown
func docSuppressed(c net.Conn) {
	c.Close()
}

func unrelatedSuppression(c net.Conn) {
	c.Close() // nolint:detsim wrong analyzer, must still flag
}
`
	fset := token.NewFileSet()
	af, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{ImportPath: "fixture", Fset: fset, Files: []*File{NewFile("p.go", af)}}
	idx := BuildIndex("fixture", []*Package{pkg})
	got := Run([]*Package{pkg}, idx, []*Analyzer{Closecheck()})
	if len(got) != 1 {
		t.Fatalf("want exactly the wrong-analyzer finding, got %d: %v", len(got), got)
	}
	if got[0].Pos.Line != 22 {
		t.Fatalf("finding at line %d, want 22 (unrelatedSuppression)", got[0].Pos.Line)
	}
}
