package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// declFunc narrows a declaration to a function with a body.
func declFunc(decl ast.Decl) (*ast.FuncDecl, bool) {
	fd, ok := decl.(*ast.FuncDecl)
	return fd, ok && fd.Body != nil
}

// Lockorder builds a whole-program lock-acquisition graph and reports any
// cycle as a potential deadlock. An edge A→B means some function acquires
// mutex B while holding mutex A (per the lexical lock intervals of
// lockstate.go); mutexes are identified globally by owner type and field
// ("hub.Hub.mu") or by package-level var, so the graph spans packages. A
// cycle whose acquisitions are all read-side (RLock held while RLock-ing)
// is not reported — concurrent readers coexist, so the read-only cycle
// cannot deadlock on its own.
//
// Besides direct acquisitions, the graph propagates one level of calls: a
// call made while a mutex is held orders that mutex before every mutex
// the callee's own body locks (registry.Route holding the registry lock
// while Hub.HasSubscriber takes a shard lock). The summary is one level
// deep and direct only — callee literals are excluded (they typically
// escape to other goroutines), go-statement targets run without the
// caller's locks, and same-node edges are skipped because the graph
// cannot tell two instances of one field apart (lexical reentrancy is
// still caught).
//
// Each cycle is reported once, anchored at its lexically-first edge. The
// full graph is exported as Graphviz dot via `dmplint -lockgraph`; the
// repo's intended hierarchy is documented in DESIGN.md §7.
func Lockorder() *Analyzer {
	return &Analyzer{
		Name: "lockorder",
		Doc:  "the global mutex acquisition graph must stay acyclic (lock-order deadlocks)",
		Run:  runLockorder,
	}
}

// lockEdge is one held→acquired pair in the global graph, anchored at its
// first occurrence.
type lockEdge struct {
	From, To         string // global mutex identities
	FromRead, ToRead bool   // read-side hold / acquisition

	file *File
	pkg  *Package
	pos  token.Pos
	fn   string // function establishing the edge, for the dot label
}

func (e *lockEdge) key() string {
	return e.From + modeSuffix(e.FromRead) + "->" + e.To + modeSuffix(e.ToRead)
}

func modeSuffix(read bool) string {
	if read {
		return "[R]"
	}
	return "[W]"
}

// concIndex is the lazily computed whole-program concurrency state: the
// lock-order graph plus the atomic-access census (see atomicmix.go).
type concIndex struct {
	edges  []*lockEdge          // deterministic order: package walk, file, position
	cycles [][]*lockEdge        // simple cycles, deduped, lexically-first edge first
	atomic map[fieldKey]atomPos // fields accessed through sync/atomic calls
}

// conc computes the whole-program pass once per Index.
func (idx *Index) conc() *concIndex {
	idx.concOnce.Do(func() {
		c := &concIndex{atomic: map[fieldKey]atomPos{}}
		c.buildLockGraph(idx)
		c.cycles = findLockCycles(c.edges)
		buildAtomicCensus(idx, c)
		idx.concIdx = c
	})
	return idx.concIdx
}

// callAcq is one mutex acquisition a function performs directly in its
// own body — the unit of the one-level call summaries the graph
// propagates to call sites.
type callAcq struct {
	node string
	read bool
}

// summaryKey names a declaration the way call sites can resolve it:
// "pkg.Type.method" for methods, "pkg.func" for plain functions. Generic
// and unresolvable receivers yield "".
func summaryKey(pkg *Package, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return pkg.ImportPath + "." + fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	if !ok {
		return ""
	}
	return pkg.ImportPath + "." + id.Name + "." + fd.Name.Name
}

// buildCallSummaries indexes, for every function in the module, the
// module-global mutexes its declaration body acquires directly. Function
// literals are excluded: they typically escape (go statements, callbacks)
// and so do not run under a caller's locks.
func buildCallSummaries(idx *Index) map[string][]callAcq {
	sums := map[string][]callAcq{}
	for _, pkg := range idx.pkgs {
		for _, file := range pkg.Files {
			if file.Test {
				continue
			}
			for _, decl := range file.AST.Decls {
				fd, ok := declFunc(decl)
				if !ok {
					continue
				}
				key := summaryKey(pkg, fd)
				if key == "" {
					continue
				}
				e := funcEnv(idx, pkg, file, fd)
				// collectLockScopes puts the declaration body first.
				body := collectLockScopes(e, fd)[0]
				dup := map[string]bool{}
				for _, ev := range body.events {
					if !ev.acquire || ev.node == "" || dup[ev.node+modeSuffix(ev.read)] {
						continue
					}
					dup[ev.node+modeSuffix(ev.read)] = true
					sums[key] = append(sums[key], callAcq{node: ev.node, read: ev.read})
				}
			}
		}
	}
	return sums
}

// scopeCall is one resolvable call made inside a lock scope.
type scopeCall struct {
	pos  token.Pos
	name string // callee's short name, for the dot label
	key  string // summary key
}

// collectScopeCalls finds the calls in sc's body whose callee summary the
// graph can charge to the caller's held set: same-package function calls
// and method calls with a resolvable receiver type (which works across
// packages). Nested literals are separate scopes and go-statement targets
// run without the caller's locks, so both are skipped.
func collectScopeCalls(e *env, sc *lockScope) []scopeCall {
	var out []scopeCall
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			for _, arg := range n.Call.Args {
				ast.Inspect(arg, walk)
			}
			return false
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				out = append(out, scopeCall{
					pos: n.Pos(), name: fun.Name,
					key: e.pkg.ImportPath + "." + fun.Name,
				})
			case *ast.SelectorExpr:
				if base := e.typeOf(fun.X); base != nil && base.Path != "" {
					out = append(out, scopeCall{
						pos: n.Pos(), name: fun.Sel.Name,
						key: base.Path + "." + base.Name + "." + fun.Sel.Name,
					})
				}
			}
		}
		return true
	}
	ast.Inspect(sc.body, walk)
	return out
}

// buildLockGraph derives edges from every function's lock scopes: for
// each acquisition — direct, or via a one-level call summary — every
// other mutex with a held interval covering the acquisition point
// contributes an edge.
func (c *concIndex) buildLockGraph(idx *Index) {
	sums := buildCallSummaries(idx)
	seen := map[string]*lockEdge{}
	addEdge := func(edge *lockEdge) {
		if _, dup := seen[edge.key()]; !dup {
			seen[edge.key()] = edge
			c.edges = append(c.edges, edge)
		}
	}
	for _, pkg := range idx.pkgs {
		for _, file := range pkg.Files {
			if file.Test {
				continue
			}
			for _, decl := range file.AST.Decls {
				fd, ok := declFunc(decl)
				if !ok {
					continue
				}
				e := funcEnv(idx, pkg, file, fd)
				for _, sc := range collectLockScopes(e, fd) {
					for _, ev := range sc.events {
						if !ev.acquire || ev.node == "" {
							continue
						}
						for node, ivs := range sc.byNode {
							for _, iv := range ivs {
								if !iv.covers(ev.pos) || iv.start == ev.pos {
									continue
								}
								addEdge(&lockEdge{
									From: node, FromRead: iv.read,
									To: ev.node, ToRead: ev.read,
									file: file, pkg: pkg, pos: ev.pos, fn: sc.fnName,
								})
							}
						}
					}
					for _, call := range collectScopeCalls(e, sc) {
						for _, acq := range sums[call.key] {
							for node, ivs := range sc.byNode {
								if node == acq.node {
									// Instances of one field are indistinguishable
									// here; lexical reentrancy is caught above.
									continue
								}
								for _, iv := range ivs {
									if !iv.covers(call.pos) {
										continue
									}
									addEdge(&lockEdge{
										From: node, FromRead: iv.read,
										To: acq.node, ToRead: acq.read,
										file: file, pkg: pkg, pos: call.pos,
										fn: sc.fnName + " -> " + call.name,
									})
								}
							}
						}
					}
				}
			}
		}
	}
	// byNode map iteration can interleave edges discovered at the same
	// acquisition point in any order; sort for a stable edge list.
	sort.Slice(c.edges, func(i, j int) bool {
		a, b := c.edges[i], c.edges[j]
		if a.file.Path != b.file.Path {
			return a.file.Path < b.file.Path
		}
		if a.pos != b.pos {
			return a.pos < b.pos
		}
		return a.key() < b.key()
	})
}

// findLockCycles enumerates the simple cycles of the edge set, each
// exactly once. Cycles made purely of read-side acquisitions are
// filtered. The edge list of each cycle starts at its lexically-first
// edge so reporting is deterministic.
func findLockCycles(edges []*lockEdge) [][]*lockEdge {
	adj := map[string][]*lockEdge{}
	var nodes []string
	nodeSeen := map[string]bool{}
	for _, e := range edges {
		adj[e.From] = append(adj[e.From], e)
		for _, n := range []string{e.From, e.To} {
			if !nodeSeen[n] {
				nodeSeen[n] = true
				nodes = append(nodes, n)
			}
		}
	}
	sort.Strings(nodes)
	for _, l := range adj {
		sort.Slice(l, func(i, j int) bool { return l[i].key() < l[j].key() })
	}

	var cycles [][]*lockEdge
	cycleSeen := map[string]bool{}
	const maxCycles = 64 // runaway guard; real modules have a handful of mutexes

	// DFS from each start node, visiting only nodes >= start so every
	// cycle is found from its smallest node exactly once.
	for _, start := range nodes {
		var path []*lockEdge
		onPath := map[string]int{start: 0}
		var dfs func(node string)
		dfs = func(node string) {
			if len(cycles) >= maxCycles {
				return
			}
			for _, e := range adj[node] {
				if e.To < start {
					continue
				}
				if i, ok := onPath[e.To]; ok {
					cyc := append(append([]*lockEdge{}, path[i:]...), e)
					if sig := cycleSig(cyc); !cycleSeen[sig] {
						cycleSeen[sig] = true
						if !readOnlyCycle(cyc) {
							cycles = append(cycles, anchorFirst(cyc))
						}
					}
					continue
				}
				onPath[e.To] = len(path) + 1
				path = append(path, e)
				dfs(e.To)
				path = path[:len(path)-1]
				delete(onPath, e.To)
			}
		}
		dfs(start)
	}
	sort.Slice(cycles, func(i, j int) bool {
		a, b := cycles[i][0], cycles[j][0]
		if a.file.Path != b.file.Path {
			return a.file.Path < b.file.Path
		}
		return a.pos < b.pos
	})
	return cycles
}

// cycleSig canonicalizes a cycle's edge list by rotating the smallest
// edge key first, so the same cycle found from different entry points
// dedupes.
func cycleSig(cyc []*lockEdge) string {
	min := 0
	for i := range cyc {
		if cyc[i].key() < cyc[min].key() {
			min = i
		}
	}
	var b strings.Builder
	for i := range cyc {
		b.WriteString(cyc[(min+i)%len(cyc)].key())
		b.WriteByte(';')
	}
	return b.String()
}

func readOnlyCycle(cyc []*lockEdge) bool {
	for _, e := range cyc {
		if !e.FromRead || !e.ToRead {
			return false
		}
	}
	return true
}

// anchorFirst rotates the cycle so its lexically-first edge leads.
func anchorFirst(cyc []*lockEdge) []*lockEdge {
	min := 0
	for i, e := range cyc {
		m := cyc[min]
		if e.file.Path < m.file.Path || (e.file.Path == m.file.Path && e.pos < m.pos) {
			min = i
		}
	}
	out := make([]*lockEdge, 0, len(cyc))
	for i := range cyc {
		out = append(out, cyc[(min+i)%len(cyc)])
	}
	return out
}

func runLockorder(pkg *Package, idx *Index) []Finding {
	var out []Finding
	for _, cyc := range idx.conc().cycles {
		anchor := cyc[0]
		if anchor.pkg != pkg {
			continue
		}
		out = append(out, finding(anchor.file, anchor.pos, "lockorder",
			"potential deadlock: lock-order cycle %s (run dmplint -lockgraph for the full graph)",
			describeCycle(idx.Module, cyc)))
	}
	return out
}

// describeCycle renders "A →(Lock) B →(RLock) A" with module-trimmed
// mutex names.
func describeCycle(module string, cyc []*lockEdge) string {
	var b strings.Builder
	b.WriteString(trimModule(module, cyc[0].From))
	for _, e := range cyc {
		op := "Lock"
		if e.ToRead {
			op = "RLock"
		}
		fmt.Fprintf(&b, " ->(%s) %s", op, trimModule(module, e.To))
	}
	return b.String()
}

func trimModule(module, node string) string {
	return strings.TrimPrefix(strings.TrimPrefix(node, module+"/"), module+".")
}

// LockGraphDot renders the whole-program lock-acquisition graph as
// Graphviz dot. Edges participating in a cycle are drawn red; the output
// is deterministic (sorted nodes and edges) so it can be diffed across
// commits.
func LockGraphDot(idx *Index) string {
	c := idx.conc()
	inCycle := map[string]bool{}
	for _, cyc := range c.cycles {
		for _, e := range cyc {
			inCycle[e.key()] = true
		}
	}
	nodeSet := map[string]bool{}
	for _, e := range c.edges {
		nodeSet[e.From] = true
		nodeSet[e.To] = true
	}
	var nodes []string
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	edges := append([]*lockEdge{}, c.edges...)
	sort.Slice(edges, func(i, j int) bool { return edges[i].key() < edges[j].key() })

	var b strings.Builder
	b.WriteString("digraph lockorder {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=box, fontname=\"monospace\"];\n")
	for _, n := range nodes {
		fmt.Fprintf(&b, "  %q;\n", trimModule(idx.Module, n))
	}
	for _, e := range edges {
		heldOp, acqOp := "Lock", "Lock"
		if e.FromRead {
			heldOp = "RLock"
		}
		if e.ToRead {
			acqOp = "RLock"
		}
		attrs := fmt.Sprintf("label=\"%s->%s\\n%s (%s)\"", heldOp, acqOp, e.file.Path, e.fn)
		if inCycle[e.key()] {
			attrs += ", color=red, fontcolor=red"
		}
		fmt.Fprintf(&b, "  %q -> %q [%s];\n",
			trimModule(idx.Module, e.From), trimModule(idx.Module, e.To), attrs)
	}
	b.WriteString("}\n")
	return b.String()
}
