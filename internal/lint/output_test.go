package lint

import (
	"bytes"
	"flag"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// parseFixtureSrc builds a one-file package from source for output tests.
func parseFixtureSrc(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	af, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{ImportPath: "fixture", Fset: fset, Files: []*File{NewFile("p.go", af)}}
}

const jsonFixtureSrc = `package p

import "net"

func leaky(c net.Conn) {
	c.Close()
}

func waived(c net.Conn) {
	c.Close() // nolint:closecheck teardown is best-effort
}

// mutate writes into its borrowed input.
// bufown borrowed b
func mutate(b []byte) {
	b[0] = 1
}

// waivedMutate carries recorded debt.
// bufown borrowed b
func waivedMutate(b []byte) {
	b[0] = 1 // nolint:bufown recorded debt
}
`

// TestJSONGolden pins the -json schema byte-for-byte: field names,
// ordering, indentation, module-relative paths, and the suppressed flag
// are all compatibility surface for CI artifacts and downstream tools.
func TestJSONGolden(t *testing.T) {
	pkg := parseFixtureSrc(t, jsonFixtureSrc)
	idx := BuildIndex("fixture", []*Package{pkg})
	all := RunAll([]*Package{pkg}, idx, []*Analyzer{Closecheck(), Bufown()})
	if len(all) != 4 {
		t.Fatalf("fixture should yield 2 active + 2 suppressed findings, got %d", len(all))
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, all); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "json", "golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("-json output drifted from golden (run with -update to adopt):\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestWriteJSONEmpty: no findings must render as [], never null.
func TestWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("empty findings render as %q, want []", got)
	}
}

// TestBaselineRoundTrip exercises adopt-then-burn-down: recording the
// current findings (closecheck and bufown keys both) waives exactly
// those findings, new ones still fail, and fixing a baselined finding
// does not resurrect anything.
func TestBaselineRoundTrip(t *testing.T) {
	pkg := parseFixtureSrc(t, jsonFixtureSrc)
	idx := BuildIndex("fixture", []*Package{pkg})
	findings := Run([]*Package{pkg}, idx, []*Analyzer{Closecheck(), Bufown()}) // suppressed excluded
	if len(findings) != 2 {
		t.Fatalf("want 2 active findings, got %d", len(findings))
	}

	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := WriteBaselineFile(path, findings); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"analyzer": "bufown"`) {
		t.Errorf("baseline file missing bufown key:\n%s", data)
	}
	base, err := LoadBaselineFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if left := FilterBaseline(findings, base); len(left) != 0 {
		t.Errorf("baseline did not waive its own findings: %v", left)
	}

	// New findings (a second dropped Close, a second borrowed-slice
	// mutation) are not waived by the recorded counts.
	grownSrc := strings.Replace(jsonFixtureSrc, "\tc.Close()\n", "\tc.Close()\n\tc.Close()\n", 1)
	grownSrc = strings.Replace(grownSrc, "\tb[0] = 1\n}", "\tb[0] = 1\n\tb[1] = 2\n}", 1)
	grown := parseFixtureSrc(t, grownSrc)
	gidx := BuildIndex("fixture", []*Package{grown})
	gf := Run([]*Package{grown}, gidx, []*Analyzer{Closecheck(), Bufown()})
	if len(gf) != 4 {
		t.Fatalf("grown fixture should yield 4 findings, got %d", len(gf))
	}
	left := FilterBaseline(gf, base)
	if len(left) != 2 {
		t.Fatalf("baseline should waive 2 of 4 findings, %d left", len(left))
	}

	// An empty baseline waives nothing.
	if left := FilterBaseline(findings, nil); len(left) != 2 {
		t.Errorf("nil baseline should pass findings through, got %d", len(left))
	}

	// Version drift is an error, not a silent pass.
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := bytes.Replace(data, []byte(`"version": 1`), []byte(`"version": 99`), 1)
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaselineFile(path); err == nil {
		t.Error("version-99 baseline loaded without error")
	}
}

// TestLockGraphDotFixture checks the dot rendering over the lockorder
// fixture: cycle edges red, clean hierarchy edges plain, deterministic
// output.
func TestLockGraphDotFixture(t *testing.T) {
	pkg, _ := loadFixture(t, "lockorder")
	idx := BuildIndex("fixture", []*Package{pkg})
	dot := LockGraphDot(idx)
	for _, want := range []string{
		`"A.mu" -> "B.mu" [label="Lock->Lock\ncycle.go (ab)", color=red, fontcolor=red];`,
		`"B.mu" -> "A.mu" [label="Lock->Lock\ncycle.go (ba)", color=red, fontcolor=red];`,
		`"C.mu" -> "D.mu" [label="Lock->Lock\nhierarchy.go (cd)"];`,
		`"tableMu" -> "C.mu" [label="Lock->Lock\nhierarchy.go (load)"];`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot output missing %q:\n%s", want, dot)
		}
	}
	if dot != LockGraphDot(idx) {
		t.Error("LockGraphDot is not deterministic")
	}
}
