package lint

import (
	"go/ast"
	"go/token"
)

// defaultCopySize is the by-value copy threshold in estimated bytes.
// The frame-loop structs we care about (hub.Config and friends) sit
// well above it; small value types (TypeRef, time.Duration wrappers)
// stay quiet.
const defaultCopySize = 128

// Copycheck flags expensive by-value copies inside the `// hotpath`
// closure (see hotpath.go): assignments, range clauses and call
// arguments that copy a struct whose estimated size meets the threshold
// (sizeThreshold; 0 selects the default of 128 bytes), plus
// frame-payload copies — builtin copy() involving a byte slice — in any
// hot function not annotated as the designated `hotpath copy-point`.
//
// Sizes are estimated from the syntactic struct index (pointers,
// slices, maps and strings count as their header sizes; unknown types
// count small), so the check errs toward silence on types it cannot
// see — the usual false-negatives-over-noise trade.
func Copycheck(sizeThreshold int) *Analyzer {
	if sizeThreshold <= 0 {
		sizeThreshold = defaultCopySize
	}
	return &Analyzer{
		Name: "copycheck",
		Doc:  "no large-struct by-value copies or stray frame-payload copies on the hot path",
		Run: func(pkg *Package, idx *Index) []Finding {
			return runCopycheck(pkg, idx, sizeThreshold)
		},
	}
}

func runCopycheck(pkg *Package, idx *Index, threshold int) []Finding {
	h := idx.hot()
	var out []Finding
	eachFunc(pkg, func(file *File, fd *ast.FuncDecl) {
		key := summaryKey(pkg, fd)
		fn, ok := h.hot[key]
		if !ok || fn.fd != fd {
			return
		}
		out = append(out, copycheckFunc(idx, pkg, file, fd, fn.copyPoint, threshold)...)
	})
	return out
}

func copycheckFunc(idx *Index, pkg *Package, file *File, fd *ast.FuncDecl, copyPoint bool, threshold int) []Finding {
	e := funcEnv(idx, pkg, file, fd)
	cold := coldIntervals(fd.Body)
	var out []Finding
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, finding(file, pos, "copycheck", "hot path: "+format, args...))
	}
	// bigStruct reports the size when expr is a plain read of a large
	// struct value. Only reads of existing values count — composite
	// literals, address-taking and calls construct rather than copy.
	bigStruct := func(expr ast.Expr) (*TypeRef, int, bool) {
		switch expr.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		default:
			return nil, 0, false
		}
		t := e.typeOf(expr)
		if t == nil || t.Ptr || t.Slice || t.Map || t.Array {
			return nil, 0, false
		}
		size := structSize(idx, t, map[string]bool{})
		return t, size, size >= threshold
	}
	typeName := func(t *TypeRef) string {
		if t.Path == "" {
			return t.Name
		}
		return trimModule(idx.Module, t.Path) + "." + t.Name
	}
	byteSlice := func(expr ast.Expr) bool {
		t := e.typeOf(expr)
		return t != nil && t.Slice && t.Elem != nil && t.Elem.Name == "byte"
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if cold.covers(n.Pos()) {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // hotalloc owns the literal itself
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
					continue
				}
				if t, size, big := bigStruct(rhs); big {
					report(rhs.Pos(), "assignment copies large struct %s (~%d bytes); keep a pointer", typeName(t), size)
				}
			}
		case *ast.RangeStmt:
			if n.Value == nil {
				return true
			}
			rt := e.typeOf(n.X)
			if rt == nil || (!rt.Slice && !rt.Array && !rt.Map) || rt.Elem == nil {
				return true
			}
			elem := rt.Elem
			if elem.Ptr || elem.Slice || elem.Map {
				return true
			}
			if size := structSize(idx, elem, map[string]bool{}); size >= threshold {
				report(n.Value.Pos(), "range copies large struct %s (~%d bytes) per iteration; range by index or store pointers", typeName(elem), size)
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "copy" && len(n.Args) == 2 {
				if !copyPoint && (byteSlice(n.Args[0]) || byteSlice(n.Args[1])) {
					report(n.Pos(), "frame-payload copy outside a designated copy point; mark the function `hotpath copy-point` or share the buffer")
				}
				return true
			}
			for _, arg := range n.Args {
				if t, size, big := bigStruct(arg); big {
					report(arg.Pos(), "call passes large struct %s (~%d bytes) by value; pass a pointer", typeName(t), size)
				}
			}
		}
		return true
	})
	return out
}

// Estimated sizes (64-bit targets) for header-carrying and basic types.
var basicSizes = map[string]int{
	"bool": 1, "int8": 1, "uint8": 1, "byte": 1,
	"int16": 2, "uint16": 2,
	"int32": 4, "uint32": 4, "rune": 4, "float32": 4,
	"int": 8, "uint": 8, "int64": 8, "uint64": 8, "uintptr": 8, "float64": 8,
	"string": 16, "error": 16, "any": 16,
	"complex64": 8, "complex128": 16,
}

// structSize estimates the value size of t in bytes: pointer-shaped
// types by their header, basics by width, named structs by summing the
// syntactic field index recursively (self-referential types are guarded
// by the visited set). Types the index cannot see count as one word, so
// imprecision under-counts — toward silence.
func structSize(idx *Index, t *TypeRef, visited map[string]bool) int {
	const word = 8
	if t == nil || t.Ptr || t.Map {
		return word
	}
	if t.Slice {
		return 3 * word
	}
	if t.Array {
		// Length is not tracked; count a couple of elements so byte
		// arrays stay small without claiming precision.
		return 2 * structSize(idx, t.Elem, visited)
	}
	if s, ok := basicSizes[t.Name]; ok && t.Path == "" {
		return s
	}
	fields, ok := idx.structs[t.Path][t.Name]
	if !ok {
		return word
	}
	key := t.Path + "." + t.Name
	if visited[key] {
		return word
	}
	visited[key] = true
	size := 0
	for _, ft := range fields {
		size += structSize(idx, ft, visited)
	}
	if size == 0 {
		size = word
	}
	return size
}
