package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Wiresafe checks wire encoders/decoders — any non-test file that imports
// encoding/binary or is named wire*.go — for two memory-safety/format
// invariants:
//
//  1. Every constant index or slice of a []byte *parameter* (bytes that
//     crossed a function boundary, i.e. potentially attacker-length) must
//     be dominated by a length check: an early-return `if len(b) < N`
//     guard or a `_ = b[N-1]` bounds hint earlier in the function.
//     Fixed-size array locals are exempt (compile-time checked), as are
//     locally allocated slices.
//  2. Multi-byte fields must be big-endian: any binary.LittleEndian use
//     is a finding.
//
// Panics from malformed bytes are exactly the failure class the hub's
// "DMPJ"/v1 wire format must never hit in a server accept loop.
func Wiresafe() *Analyzer {
	return &Analyzer{
		Name: "wiresafe",
		Doc:  "wire codecs must length-check byte-slice params before indexing and use big-endian",
		Run:  runWiresafe,
	}
}

func runWiresafe(pkg *Package, idx *Index) []Finding {
	consts := packageConsts(pkg)
	var out []Finding
	for _, file := range pkg.Files {
		if file.Test {
			continue
		}
		isWire := strings.HasPrefix(pathBase(file.Path), "wire")
		if _, ok := file.Imports["binary"]; !ok && !isWire {
			continue
		}
		for _, decl := range file.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, wiresafeFunc(pkg, file, consts, fd)...)
		}
		// Endianness is a file-wide property, not per-function.
		ast.Inspect(file.AST, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "LittleEndian" {
				return true
			}
			if x, ok := sel.X.(*ast.Ident); ok && file.Imports[x.Name] == "encoding/binary" {
				out = append(out, finding(file, sel.Pos(), "wiresafe",
					"wire format is big-endian; binary.LittleEndian is forbidden in codec files"))
			}
			return true
		})
	}
	return out
}

// guard records a point after which len(name) >= minLen is known.
type lenGuard struct {
	pos    int
	minLen int64
}

func wiresafeFunc(pkg *Package, file *File, consts map[string]int64, fd *ast.FuncDecl) []Finding {
	// Byte-slice parameters are the checked set; everything else
	// (locals, arrays) is exempt.
	params := map[string]bool{}
	for _, f := range fd.Type.Params.List {
		t := resolveType(file, pkg.ImportPath, f.Type)
		if t != nil && t.Slice && t.Elem != nil && (t.Elem.Name == "byte" || t.Elem.Name == "uint8") {
			for _, name := range f.Names {
				params[name.Name] = true
			}
		}
	}
	if len(params) == 0 {
		return nil
	}
	guards := map[string][]lenGuard{}
	type access struct {
		pos  token.Pos
		name string
		need int64
		what string
	}
	var accesses []access

	need := func(name string, pos token.Pos, n int64, what string) {
		accesses = append(accesses, access{pos: pos, name: name, need: n, what: what})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// `_ = b[K]` bounds hint.
			if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
				if id, ok := n.Lhs[0].(*ast.Ident); ok && id.Name == "_" {
					if ix, ok := n.Rhs[0].(*ast.IndexExpr); ok {
						if base, ok := ix.X.(*ast.Ident); ok && params[base.Name] {
							if k, ok := constVal(consts, ix.Index); ok {
								guards[base.Name] = append(guards[base.Name],
									lenGuard{pos: int(n.End()), minLen: k + 1})
								return false // the hint itself is not an unchecked access
							}
						}
					}
				}
			}
		case *ast.IfStmt:
			if name, minLen, ok := lenCheck(consts, params, n); ok {
				guards[name] = append(guards[name], lenGuard{pos: int(n.End()), minLen: minLen})
			}
		case *ast.IndexExpr:
			if base, ok := n.X.(*ast.Ident); ok && params[base.Name] {
				if k, ok := constVal(consts, n.Index); ok {
					need(base.Name, n.Pos(), k+1, "index")
				}
			}
		case *ast.SliceExpr:
			base, ok := n.X.(*ast.Ident)
			if !ok || !params[base.Name] {
				return true
			}
			var bound ast.Expr
			switch {
			case n.High != nil:
				bound = n.High
			case n.Low != nil:
				bound = n.Low
			default:
				return true // b[:] is always safe
			}
			if k, ok := constVal(consts, bound); ok {
				need(base.Name, n.Pos(), k, "slice")
			}
		case *ast.CallExpr:
			// binary.BigEndian.Uint32(b) reads b[0:4] implicitly.
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || len(n.Args) == 0 {
				return true
			}
			width := endianWidth(sel.Sel.Name)
			if width == 0 {
				return true
			}
			if inner, ok := sel.X.(*ast.SelectorExpr); ok {
				if x, ok := inner.X.(*ast.Ident); ok && file.Imports[x.Name] == "encoding/binary" {
					if arg, ok := n.Args[0].(*ast.Ident); ok && params[arg.Name] {
						need(arg.Name, n.Pos(), width, "binary."+sel.Sel.Name)
					}
				}
			}
		}
		return true
	})

	var out []Finding
	for _, a := range accesses {
		covered := false
		for _, g := range guards[a.name] {
			if g.pos < int(a.pos) && g.minLen >= a.need {
				covered = true
				break
			}
		}
		if !covered {
			out = append(out, finding(file, a.pos, "wiresafe",
				"%s of %s needs len >= %d with no dominating length check (add `if len(%s) < %d` or `_ = %s[%d]`)",
				a.what, a.name, a.need, a.name, a.need, a.name, a.need-1))
		}
	}
	return out
}

// lenCheck recognizes `if len(b) < N { return/... }` (and <=, and the
// reversed `N > len(b)`) over a tracked parameter, yielding the length
// guaranteed after the statement.
func lenCheck(consts map[string]int64, params map[string]bool, ifs *ast.IfStmt) (string, int64, bool) {
	cmp, ok := ifs.Cond.(*ast.BinaryExpr)
	if !ok {
		return "", 0, false
	}
	name, n, op, ok := lenCmp(consts, params, cmp)
	if !ok {
		return "", 0, false
	}
	switch op {
	case token.LSS: // len(b) < N + early exit → len >= N after
		if exits(ifs.Body) {
			return name, n, true
		}
	case token.LEQ:
		if exits(ifs.Body) {
			return name, n + 1, true
		}
	case token.GEQ: // if len(b) >= N { ...access... } — treat as a guard too
		return name, n, true
	case token.GTR:
		return name, n + 1, true
	}
	return "", 0, false
}

// lenCmp normalizes `len(b) OP N` / `N OP len(b)` to (name, N, OP-with-
// len-on-the-left).
func lenCmp(consts map[string]int64, params map[string]bool, cmp *ast.BinaryExpr) (string, int64, token.Token, bool) {
	if name, ok := lenOf(params, cmp.X); ok {
		if n, ok := constVal(consts, cmp.Y); ok {
			return name, n, cmp.Op, true
		}
	}
	if name, ok := lenOf(params, cmp.Y); ok {
		if n, ok := constVal(consts, cmp.X); ok {
			flip := map[token.Token]token.Token{
				token.LSS: token.GTR, token.GTR: token.LSS,
				token.LEQ: token.GEQ, token.GEQ: token.LEQ,
			}
			return name, n, flip[cmp.Op], true
		}
	}
	return "", 0, 0, false
}

func lenOf(params map[string]bool, e ast.Expr) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return "", false
	}
	if fun, ok := call.Fun.(*ast.Ident); !ok || fun.Name != "len" {
		return "", false
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok || !params[id.Name] {
		return "", false
	}
	return id.Name, true
}

// exits reports whether the block clearly leaves the function or loop.
func exits(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func endianWidth(fn string) int64 {
	switch fn {
	case "Uint16", "PutUint16":
		return 2
	case "Uint32", "PutUint32":
		return 4
	case "Uint64", "PutUint64":
		return 8
	}
	return 0
}

func pathBase(p string) string {
	if i := strings.LastIndex(p, "/"); i >= 0 {
		return p[i+1:]
	}
	return p
}
