package lint

import (
	"go/ast"
	"go/token"
)

// Hotalloc flags heap-allocating constructs inside `// hotpath`
// functions and their transitive callees (see hotpath.go for the
// closure and the cold-region/nolint escapes):
//
//   - make and new — including map and channel allocation
//   - composite literals that escape: &T{…}, slice and map literals
//     (a plain value literal T{…} stays on the stack and is quiet)
//   - append to a slice that was not preallocated with a 3-arg make in
//     the same function — growth reallocates mid-frame
//   - string↔[]byte conversions, which copy and allocate
//   - function literals — a closure allocates at each evaluation
//   - go statements — spawning per frame allocates a stack
//   - fmt/log/errors call sites, which box arguments into interfaces
//     (the classic per-frame logging regression)
//
// Per-path setup that legitimately allocates once before the per-frame
// loop carries `// nolint:hotalloc reason`, which suppresses the finding
// AND cuts the closure edge on that line.
func Hotalloc() *Analyzer {
	return &Analyzer{
		Name: "hotalloc",
		Doc:  "no heap allocation inside `// hotpath` functions or their transitive callees",
		Run:  runHotalloc,
	}
}

// boxingPkgs are stdlib packages whose call sites take ...any (or build
// errors): every call boxes its arguments.
var boxingPkgs = map[string]bool{"fmt": true, "log": true, "errors": true}

func runHotalloc(pkg *Package, idx *Index) []Finding {
	h := idx.hot()
	var out []Finding
	eachFunc(pkg, func(file *File, fd *ast.FuncDecl) {
		key := summaryKey(pkg, fd)
		fn, ok := h.hot[key]
		if !ok || fn.fd != fd {
			return
		}
		out = append(out, hotallocFunc(idx, pkg, file, fd)...)
	})
	return out
}

func hotallocFunc(idx *Index, pkg *Package, file *File, fd *ast.FuncDecl) []Finding {
	e := funcEnv(idx, pkg, file, fd)
	cold := coldIntervals(fd.Body)
	prealloc := preallocated(fd.Body)
	var out []Finding
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, finding(file, pos, "hotalloc", "hot path: "+format, args...))
	}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if cold.covers(n.Pos()) {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n.Pos(), "function literal allocates a closure per evaluation; hoist it out of the frame loop")
			return false
		case *ast.GoStmt:
			report(n.Pos(), "go statement spawns a goroutine per call; move the spawn off the per-frame path")
			return false
		case *ast.DeferStmt:
			// Teardown: runs once at function exit, not per frame.
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					report(n.Pos(), "&composite literal escapes to the heap; reuse a preallocated value")
				}
			}
		case *ast.CompositeLit:
			switch n.Type.(type) {
			case *ast.ArrayType:
				if at := n.Type.(*ast.ArrayType); at.Len == nil {
					report(n.Pos(), "slice literal allocates a backing array; preallocate and reuse")
				}
			case *ast.MapType:
				report(n.Pos(), "map literal allocates; hoist the map out of the frame loop")
			}
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				switch fun.Name {
				case "make":
					if len(n.Args) >= 1 {
						if _, isMap := n.Args[0].(*ast.MapType); isMap {
							report(n.Pos(), "make allocates a map; hoist it out of the frame loop")
							return true
						}
					}
					report(n.Pos(), "make allocates; hoist the buffer out of the frame loop and reuse it")
				case "new":
					report(n.Pos(), "new allocates; reuse a preallocated value")
				case "append":
					if len(n.Args) >= 1 {
						if id, ok := n.Args[0].(*ast.Ident); ok && prealloc[id.Name] {
							return true // grows into capacity reserved up front
						}
					}
					report(n.Pos(), "append without preallocated capacity grows the backing array mid-frame; make(..., 0, cap) it first")
				case "string":
					if len(n.Args) == 1 {
						if t := e.typeOf(n.Args[0]); t != nil && t.Slice {
							report(n.Pos(), "string conversion copies and allocates; keep the bytes")
						}
					}
				}
			case *ast.ArrayType:
				// Conversion spelled as a call: []byte(s).
				if fun.Len == nil {
					if id, ok := fun.Elt.(*ast.Ident); ok && id.Name == "byte" {
						report(n.Pos(), "[]byte conversion copies and allocates; keep the bytes")
					}
				}
			case *ast.SelectorExpr:
				if x, ok := fun.X.(*ast.Ident); ok {
					if imp, ok := file.Imports[x.Name]; ok && boxingPkgs[imp] {
						report(n.Pos(), "%s.%s boxes its arguments into interfaces (allocates); move it off the per-frame path", x.Name, fun.Sel.Name)
					}
				}
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
	return out
}

// preallocated collects the names bound by a 3-arg make (explicit
// capacity) anywhere in the function — appends into those slices grow
// into reserved capacity, which is the sanctioned pre-size idiom.
func preallocated(body *ast.BlockStmt) map[string]bool {
	names := map[string]bool{}
	threeArgMake := func(e ast.Expr) bool {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "make" && len(call.Args) == 3
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				if id, ok := lhs.(*ast.Ident); ok && threeArgMake(n.Rhs[i]) {
					names[id.Name] = true
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i >= len(n.Values) {
					break
				}
				if threeArgMake(n.Values[i]) {
					names[name.Name] = true
				}
			}
		}
		return true
	})
	return names
}
