// Exhaustive-switch analysis over the repo's enum types.
//
// The module's behavior ladders are iota enums: core.PathState drives
// the path health machine, core.RejectCode the DMPR overload protocol,
// emunet.FaultKind the scripted fault injector, hub.Policy the lag
// ladder, chaos.ChurnKind the soak schedule. Adding a member to any of
// them must force every switch that dispatches on the type to take a
// position — a silently skipped new state is how a degradation ladder
// quietly stops degrading.
//
// An enum is a module named type with two or more typed package-level
// constants (iota runs count through continuation specs). For every
// `switch` whose tag resolves to an enum, the analyzer requires either
// every member covered by a case, or an explicit `default` carrying a
// comment that says why the remainder is safe. A case expression it
// cannot resolve to a member (a call, a local, a constant from a third
// package) makes the switch opaque and the analyzer stays quiet, per
// the suite convention; `// nolint:exhaustenum reason` waives a switch.
package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// enumInfo is one module enum type's member set.
type enumInfo struct {
	members []string // declaration order, deduplicated
	set     map[string]bool
}

// enums lazily builds the module-wide enum table, keyed "pkgpath.Type".
func (idx *Index) enums() map[string]*enumInfo {
	idx.enumOnce.Do(func() {
		idx.enumIdx = buildEnumIndex(idx)
	})
	return idx.enumIdx
}

func buildEnumIndex(idx *Index) map[string]*enumInfo {
	enums := map[string]*enumInfo{}
	add := func(key, member string) {
		info := enums[key]
		if info == nil {
			info = &enumInfo{set: map[string]bool{}}
			enums[key] = info
		}
		if !info.set[member] {
			info.set[member] = true
			info.members = append(info.members, member)
		}
	}
	for _, pkg := range idx.pkgs {
		for _, file := range pkg.Files {
			if file.Test {
				continue
			}
			for _, decl := range file.AST.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.CONST {
					continue
				}
				// Track the "current type" through an iota run: an
				// explicit Type starts one, specs with neither Type nor
				// Values continue it, untyped values end it.
				cur := ""
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					if vs.Type != nil {
						cur = ""
						t := resolveType(file, pkg.ImportPath, vs.Type)
						if t != nil && t.Path != "" && !t.Ptr && !t.Slice && !t.Array && !t.Map {
							cur = t.Path + "." + t.Name
						}
					} else if len(vs.Values) > 0 {
						cur = ""
					}
					if cur == "" {
						continue
					}
					for _, name := range vs.Names {
						if name.Name != "_" {
							add(cur, name.Name)
						}
					}
				}
			}
		}
	}
	for key, info := range enums {
		if len(info.members) < 2 {
			delete(enums, key)
		}
	}
	return enums
}

// defaultCommented reports whether a default clause carries a comment —
// inside the clause, or trailing on the `default:` line. The clause is
// bounded by the next case or the switch's closing brace, not by
// cc.End(): a comment-only body sits past the last statement.
func defaultCommented(fset *token.FileSet, file *File, sw *ast.SwitchStmt, cc *ast.CaseClause) bool {
	end := sw.Body.Rbrace
	for _, stmt := range sw.Body.List {
		if stmt.Pos() > cc.Pos() && stmt.Pos() < end {
			end = stmt.Pos()
		}
	}
	defLine := fset.Position(cc.Case).Line
	for _, cg := range file.AST.Comments {
		if cg.Pos() >= cc.Pos() && cg.End() <= end {
			return true
		}
		if cg.Pos() > cc.Pos() && fset.Position(cg.Pos()).Line == defLine {
			return true
		}
	}
	return false
}

// Exhaustenum returns the exhaustive-enum-switch analyzer.
func Exhaustenum() *Analyzer {
	return &Analyzer{
		Name: "exhaustenum",
		Doc:  "switches over repo enum types cover every member or carry a commented default",
		Run: func(pkg *Package, idx *Index) []Finding {
			enums := idx.enums()
			var out []Finding
			eachFunc(pkg, func(file *File, fd *ast.FuncDecl) {
				e := funcEnv(idx, pkg, file, fd)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					sw, ok := n.(*ast.SwitchStmt)
					if !ok || sw.Tag == nil {
						return true
					}
					t := e.typeOf(sw.Tag)
					if t == nil || t.Ptr || t.Slice || t.Array || t.Map || t.Path == "" {
						return true
					}
					info := enums[t.Path+"."+t.Name]
					if info == nil {
						return true
					}
					covered := map[string]bool{}
					var def *ast.CaseClause
					for _, stmt := range sw.Body.List {
						cc, ok := stmt.(*ast.CaseClause)
						if !ok {
							continue
						}
						if cc.List == nil {
							def = cc
							continue
						}
						for _, ce := range cc.List {
							switch ce := ce.(type) {
							case *ast.Ident:
								if t.Path != pkg.ImportPath || !info.set[ce.Name] {
									return true // opaque case: stay quiet
								}
								covered[ce.Name] = true
							case *ast.SelectorExpr:
								x, ok := ce.X.(*ast.Ident)
								if !ok {
									return true
								}
								imp, ok := file.Imports[x.Name]
								if !ok || imp != t.Path || !info.set[ce.Sel.Name] {
									return true
								}
								covered[ce.Sel.Name] = true
							default:
								return true
							}
						}
					}
					var missing []string
					for _, m := range info.members {
						if !covered[m] {
							missing = append(missing, m)
						}
					}
					if len(missing) == 0 {
						return true
					}
					sort.Strings(missing)
					name := trimModule(idx.Module, t.Path+"."+t.Name)
					switch {
					case def == nil:
						out = append(out, finding(file, sw.Switch, "exhaustenum",
							"switch over %s is not exhaustive: missing %s; add the cases or a commented default",
							name, strings.Join(missing, ", ")))
					case !defaultCommented(pkg.Fset, file, sw, def):
						out = append(out, finding(file, sw.Switch, "exhaustenum",
							"switch over %s relies on an uncommented default for %s; comment the default with why the remainder is safe",
							name, strings.Join(missing, ", ")))
					}
					return true
				})
			})
			return out
		},
	}
}
