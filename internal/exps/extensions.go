package exps

// Extensions beyond the paper's evaluation: the two directions its
// conclusion defers to future work (more than two paths; stored-video
// streaming) and ablations of this reproduction's documented design choices
// (DESIGN.md §5): the fast-retransmit eligibility rule in the reconstructed
// chain, the sender's send-buffer size (the granularity of DMP's implicit
// bandwidth inference), and the TCP flavor.

import (
	"fmt"

	"dmpstream/internal/dmpmodel"
	"dmpstream/internal/netsim"
	"dmpstream/internal/sim"
	"dmpstream/internal/simstream"
	"dmpstream/internal/tcpmodel"
	"dmpstream/internal/tcpsim"
)

func init() {
	register(Experiment{
		ID:    "extk",
		Paper: "Section 7 (future work: K > 2)",
		Short: "required startup delay vs number of paths at fixed sigma_a/mu",
		Run:   runExtK,
	})
	register(Experiment{
		ID:    "extstored",
		Paper: "Section 3 (future work: stored video)",
		Short: "live vs stored-video streaming: the cost of the liveness constraint",
		Run:   runExtStored,
	})
	register(Experiment{
		ID:    "ablation-td",
		Paper: "DESIGN.md §5 (reconstruction choice)",
		Short: "fast-retransmit eligibility: window-based vs strict correlated-loss reading",
		Run:   runAblationTD,
	})
	register(Experiment{
		ID:    "ablation-sndbuf",
		Paper: "Section 3 (implementation parameter)",
		Short: "send-buffer size: granularity of DMP's implicit bandwidth inference",
		Run:   runAblationSndbuf,
	})
	register(Experiment{
		ID:    "ablation-flavor",
		Paper: "Section 5 (TCP variant)",
		Short: "TCP Reno vs NewReno video flows in the validation topology",
		Run:   runAblationFlavor,
	})
	register(Experiment{
		ID:    "ablation-red",
		Paper: "Section 5 (queue discipline)",
		Short: "drop-tail vs RED bottlenecks in the validation topology",
		Run:   runAblationRED,
	})
	register(Experiment{
		ID:    "extq1",
		Paper: "Section 1 (intro question i), in the packet simulator",
		Short: "one fast access link vs two half-capacity links, end to end",
		Run:   runExtQ1,
	})
}

// runExtK: at a fixed aggregate provisioning ratio, split the same σ_a over
// K ∈ {1,2,3,4} homogeneous paths and find the required startup delay. K=1
// is the single-path model of [31]; K=2 is the paper; K>2 is its future work.
func runExtK(f Fidelity, seed int64) ([]Table, error) {
	const p, to, mu = 0.02, 4.0, 25.0
	step, maxTau := searchScale(f)
	budget := modelBudget(f)
	t := Table{
		ID:      "extk",
		Title:   "Required startup delay (late fraction < 1e-4) vs number of paths",
		Columns: []string{"sigma_a/mu", "K=1", "K=2", "K=3", "K=4"},
	}
	for _, ratio := range []float64{1.4, 1.6, 1.8} {
		row := []string{fmt.Sprintf("%.1f", ratio)}
		for k := 1; k <= 4; k++ {
			par, err := dmpmodel.RForRatio(p, to, 0, mu, ratio, k)
			if err != nil {
				return nil, err
			}
			paths := make([]tcpmodel.Params, k)
			for i := range paths {
				paths[i] = par
			}
			m := dmpmodel.Model{Paths: paths, Mu: mu}
			tau, err := m.RequiredStartupDelay(qualityThreshold, step, maxTau,
				dmpmodel.Options{Seed: seed + int64(k*100), MaxConsumptions: budget})
			if err != nil {
				return nil, err
			}
			row = append(row, fmtTau(tau))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"each path's RTT is scaled so the aggregate achievable throughput is identical across K",
		"expected: K=1 needs the largest buffer (the paper's single-path 2x rule); returns diminish beyond K=2")
	return []Table{t}, nil
}

// runExtStored: transient finite-video analysis comparing live streaming
// (senders capped at N ≤ µτ) with stored-video streaming (no cap).
func runExtStored(f Fidelity, seed int64) ([]Table, error) {
	const p, to, mu = 0.02, 4.0, 25.0
	videoSec := 300.0
	budget := modelBudget(f) * 4 // transient needs replications
	t := Table{
		ID:      "extstored",
		Title:   fmt.Sprintf("Fraction of late packets over a %g-second video: live vs stored", videoSec),
		Columns: []string{"sigma_a/mu", "tau (s)", "live", "stored", "live/stored"},
	}
	for _, ratio := range []float64{1.2, 1.4, 1.6} {
		par, err := dmpmodel.RForRatio(p, to, 0, mu, ratio, 2)
		if err != nil {
			return nil, err
		}
		m := dmpmodel.Model{Paths: []tcpmodel.Params{par, par}, Mu: mu}
		for _, tau := range []float64{4, 8} {
			opts := dmpmodel.Options{Seed: seed + int64(ratio*100), MaxConsumptions: budget}
			live, err := m.TransientFractionLate(tau, videoSec, false, opts)
			if err != nil {
				return nil, err
			}
			stored, err := m.TransientFractionLate(tau, videoSec, true, opts)
			if err != nil {
				return nil, err
			}
			ratioCell := "-"
			if stored.F > 0 {
				ratioCell = fmt.Sprintf("%.1f", live.F/stored.F)
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.1f", ratio), fmt.Sprintf("%g", tau),
				fmtF(live.F), fmtF(stored.F), ratioCell,
			})
		}
	}
	t.Notes = append(t.Notes,
		"stored video removes the live cap N <= mu*tau: senders may run arbitrarily far ahead",
		"expected: stored is never worse, and much better at tight provisioning ratios")
	return []Table{t}, nil
}

// runAblationTD compares the reconstruction's window-based fast-retransmit
// eligibility against the strict correlated-loss reading, in both achievable
// throughput and predicted streaming quality.
func runAblationTD(f Fidelity, seed int64) ([]Table, error) {
	budget := modelBudget(f)
	t := Table{
		ID:    "ablation-td",
		Title: "Fast-retransmit eligibility rule: window-based (default) vs strict survivors",
		Columns: []string{"p", "TO", "sigma default (pkts/s)", "sigma strict (pkts/s)",
			"f default (tau=6)", "f strict (tau=6)"},
	}
	const r, mu = 0.15, 50.0
	for _, p := range []float64{0.01, 0.02, 0.04} {
		for _, to := range []float64{2.0, 4.0} {
			def := tcpmodel.Params{P: p, R: r, TO: to}
			strict := def
			strict.StrictDupAck = true
			sigDef, err := dmpmodel.Sigma(def)
			if err != nil {
				return nil, err
			}
			sigStr, err := dmpmodel.Sigma(strict)
			if err != nil {
				return nil, err
			}
			opts := dmpmodel.Options{Seed: seed, MaxConsumptions: budget}
			fDef, err := (&dmpmodel.Model{Paths: []tcpmodel.Params{def, def}, Mu: mu}).FractionLate(6, opts)
			if err != nil {
				return nil, err
			}
			fStr, err := (&dmpmodel.Model{Paths: []tcpmodel.Params{strict, strict}, Mu: mu}).FractionLate(6, opts)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%g", p), fmt.Sprintf("%g", to),
				fmt.Sprintf("%.1f", sigDef), fmt.Sprintf("%.1f", sigStr),
				fmtF(fDef.F), fmtF(fStr.F),
			})
		}
	}
	t.Notes = append(t.Notes,
		"strict eligibility sends early-position losses to timeout, depressing throughput",
		"the default matches packet-level Reno within ~10% (see tcpmodel calibration tests)")
	return []Table{t}, nil
}

// runAblationSndbuf reruns the Setting 2-2 validation with different video
// send-buffer sizes. The buffer is the unit of DMP's implicit inference: a
// huge buffer commits many packets to a path before backpressure is felt.
func runAblationSndbuf(f Fidelity, seed int64) ([]Table, error) {
	duration, _ := validationScale(f)
	st := settingByName("2-2", independentSettings)
	t := Table{
		ID:      "ablation-sndbuf",
		Title:   "Video send-buffer size vs late fraction (Setting 2-2)",
		Columns: []string{"sndbuf (pkts)", "late @ tau=4", "late @ tau=6", "late @ tau=10", "path-0 share"},
	}
	for _, buf := range []int{4, 16, 64} {
		run, err := runValidationSimTCP(st, false, duration, seed, tcpsim.Config{SndBufPkts: buf})
		if err != nil {
			return nil, err
		}
		cells := []string{fmt.Sprintf("%d", buf)}
		for _, tau := range []float64{4, 6, 10} {
			pb, _ := run.stream.LateFraction(tau)
			cells = append(cells, fmtF(pb))
		}
		cells = append(cells, fmt.Sprintf("%.2f", run.stream.PathShare(0)))
		t.Rows = append(t.Rows, cells)
	}
	t.Notes = append(t.Notes,
		"the send buffer bounds the data in flight: below the path's bandwidth-delay product",
		"(≈5-8 packets here) it caps TCP throughput itself and lateness explodes;",
		"above the BDP, larger buffers only add per-fetch head-of-line latency — diminishing effect")
	return []Table{t}, nil
}

// runAblationRED reruns the Setting 2-2 validation with RED bottlenecks.
// RED spreads losses over time instead of clustering them at full buffers,
// which changes the loss process the video flows see (shorter bursts, lower
// queueing delay) while leaving the DMP mechanism untouched.
func runAblationRED(f Fidelity, seed int64) ([]Table, error) {
	duration, _ := validationScale(f)
	st := settingByName("2-2", independentSettings)
	t := Table{
		ID:      "ablation-red",
		Title:   "Bottleneck queue discipline (Setting 2-2)",
		Columns: []string{"discipline", "p (events)", "R (ms)", "late @ tau=4", "late @ tau=8"},
	}
	for _, v := range []struct {
		name string
		red  bool
	}{{"drop-tail", false}, {"RED", true}} {
		run, err := runValidationSimVar(st, false, duration, seed, simVariant{red: v.red})
		if err != nil {
			return nil, err
		}
		p4, _ := run.stream.LateFraction(4)
		p8, _ := run.stream.LateFraction(8)
		t.Rows = append(t.Rows, []string{
			v.name,
			fmt.Sprintf("%.3f", (run.stats[0].P+run.stats[1].P)/2),
			fmt.Sprintf("%.0f", (run.stats[0].R+run.stats[1].R)/2*1e3),
			fmtF(p4), fmtF(p8),
		})
	}
	t.Notes = append(t.Notes,
		"RED keeps the average queue near its thresholds: expect a visibly lower RTT;",
		"DMP-streaming's behavior is a function of (p, R, TO) only — the scheme itself is unchanged")
	return []Table{t}, nil
}

// runExtQ1 answers the paper's first introduction question inside the packet
// simulator: can one fast access link be replaced by two links of half the
// capacity? Each link carries its own (identical) background load, so the
// video's aggregate fair share is the same in both configurations.
func runExtQ1(f Fidelity, seed int64) ([]Table, error) {
	duration, _ := validationScale(f)
	t := Table{
		ID:      "extq1",
		Title:   "One 7.4 Mbps access link vs two/three fractional links (mu=50 pkts/s)",
		Columns: []string{"configuration", "late @ tau=4", "late @ tau=6", "late @ tau=10", "delay for <1% late (s)"},
	}
	runCfg := func(name string, links []LinkConfig) error {
		s := sim.New(seed)
		var next netsim.FlowID = 100
		var conns []*tcpsim.Conn
		for k, lc := range links {
			env := newPathEnv(s, lc, &next, false)
			env.populate()
			c := tcpsim.NewConn(s, netsim.FlowID(k+1), tcpsim.Config{})
			env.attach(netsim.FlowID(k+1), c)
			conns = append(conns, c)
		}
		const warmup = 30.0
		s.Run(sim.Seconds(warmup))
		stream := simstream.New(s, simstream.VideoConfig{Mu: 50, Duration: sim.Seconds(duration)}, conns)
		stream.Start()
		s.Run(sim.Seconds(warmup+duration) + 120*sim.Second)
		row := []string{name}
		for _, tau := range []float64{4, 6, 10} {
			pb, _ := stream.LateFraction(tau)
			row = append(row, fmtF(pb))
		}
		if d, ok := stream.RequiredDelay(0.01); ok {
			row = append(row, fmt.Sprintf("%.1f", d))
		} else {
			row = append(row, "n/a")
		}
		t.Rows = append(t.Rows, row)
		return nil
	}
	fast := LinkConfig{FTPFlows: 9, HTTPFlows: 40, DelayMs: 1, Mbps: 7.4, BufPkts: 100}
	half := LinkConfig{FTPFlows: 9, HTTPFlows: 40, DelayMs: 1, Mbps: 3.7, BufPkts: 50}
	third := LinkConfig{FTPFlows: 9, HTTPFlows: 40, DelayMs: 1, Mbps: 7.4 / 3, BufPkts: 34}
	if err := runCfg("single 7.4 Mbps path", []LinkConfig{fast}); err != nil {
		return nil, err
	}
	if err := runCfg("two 3.7 Mbps paths", []LinkConfig{half, half}); err != nil {
		return nil, err
	}
	if err := runCfg("three 2.47 Mbps paths", []LinkConfig{third, third, third}); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"each link carries its own 9 FTP + 40 HTTP background flows, so the video's",
		"aggregate fair share is identical; the paper's answer: the pair is at least as good")
	return []Table{t}, nil
}

// runAblationFlavor reruns the Setting 2-2 validation with NewReno video
// flows: does DMP-streaming depend on the Reno-specific recovery behavior?
func runAblationFlavor(f Fidelity, seed int64) ([]Table, error) {
	duration, _ := validationScale(f)
	st := settingByName("2-2", independentSettings)
	t := Table{
		ID:      "ablation-flavor",
		Title:   "TCP flavor of the video flows (Setting 2-2)",
		Columns: []string{"flavor", "p (events)", "R (ms)", "late @ tau=4", "late @ tau=8"},
	}
	for _, fl := range []struct {
		name string
		f    tcpsim.Flavor
	}{{"Reno", tcpsim.Reno}, {"NewReno", tcpsim.NewReno}} {
		run, err := runValidationSimTCP(st, false, duration, seed, tcpsim.Config{Flavor: fl.f})
		if err != nil {
			return nil, err
		}
		p4, _ := run.stream.LateFraction(4)
		p8, _ := run.stream.LateFraction(8)
		t.Rows = append(t.Rows, []string{
			fl.name,
			fmt.Sprintf("%.3f", (run.stats[0].P+run.stats[1].P)/2),
			fmt.Sprintf("%.0f", (run.stats[0].R+run.stats[1].R)/2*1e3),
			fmtF(p4), fmtF(p8),
		})
	}
	t.Notes = append(t.Notes,
		"DMP-streaming only needs blocking sends and a finite send buffer;",
		"NewReno's gentler multi-loss recovery should match or improve the late fraction")
	return []Table{t}, nil
}
