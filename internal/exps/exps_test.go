package exps

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "table2", "table3",
		"fig4a", "fig4b", "fig5a", "fig5b", "correlated",
		"fig7a", "fig7b",
		"fig8", "fig9a", "fig9b", "fig10", "fig11",
		"toy73",
		"extk", "extstored", "extq1", "toy73sim",
		"ablation-td", "ablation-sndbuf", "ablation-flavor", "ablation-red",
	}
	for _, id := range want {
		if _, ok := Find(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
	for _, e := range All() {
		if e.Paper == "" || e.Short == "" || e.Run == nil {
			t.Errorf("experiment %q incompletely described", e.ID)
		}
	}
}

func TestFindIsCaseInsensitive(t *testing.T) {
	if _, ok := Find("FIG8"); !ok {
		t.Error("upper-case lookup failed")
	}
	if _, ok := Find("nonsense"); ok {
		t.Error("bogus id found")
	}
}

func TestParseFidelity(t *testing.T) {
	for s, want := range map[string]Fidelity{"quick": Quick, "full": Full, "": Quick, "FULL": Full} {
		got, err := ParseFidelity(s)
		if err != nil || got != want {
			t.Errorf("ParseFidelity(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseFidelity("medium"); err == nil {
		t.Error("bad fidelity accepted")
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	tables, err := runTable1(Quick, 0)
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	// Paper's Table 1, row 3: 19 FTP, 40 HTTP, 40ms, 5.0 Mbps, 50 pkts.
	if rows[2][1] != "19" || rows[2][2] != "40" || rows[2][3] != "40" || rows[2][4] != "5" || rows[2][5] != "50" {
		t.Fatalf("config 3 row = %v", rows[2])
	}
}

func TestTableFormat(t *testing.T) {
	tb := Table{ID: "x", Title: "t", Columns: []string{"a", "bb"}, Rows: [][]string{{"1", "2"}}, Notes: []string{"n"}}
	var sb strings.Builder
	tb.Format(&sb)
	out := sb.String()
	for _, frag := range []string{"== x: t ==", "a", "bb", "note: n"} {
		if !strings.Contains(out, frag) {
			t.Errorf("formatted table missing %q:\n%s", frag, out)
		}
	}
}

func TestValidationSimMeasurementsInPaperRange(t *testing.T) {
	run, err := runValidationSim(settingByName("2-2", independentSettings), false, 300, 5)
	if err != nil {
		t.Fatal(err)
	}
	for k, st := range run.stats {
		if st.P < 0.003 || st.P > 0.09 {
			t.Errorf("path %d loss-event rate %v outside plausible range", k, st.P)
		}
		if st.R < 0.05 || st.R > 0.4 {
			t.Errorf("path %d RTT %v outside plausible range", k, st.R)
		}
		if st.TO < 1 || st.TO > 5 {
			t.Errorf("path %d timeout ratio %v outside plausible range", k, st.TO)
		}
	}
	if run.stream.Arrived() != run.stream.Generated() {
		t.Errorf("TCP reliability violated: %d/%d", run.stream.Arrived(), run.stream.Generated())
	}
}

func TestCorrelatedSimBothFlowsSimilar(t *testing.T) {
	run, err := runValidationSim(settingByName("2", correlatedSettings), true, 300, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Sharing one bottleneck, the two flows must measure similar parameters
	// (the paper's Table 3 shows near-identical columns).
	r0, r1 := run.stats[0].R, run.stats[1].R
	if r0/r1 > 1.2 || r1/r0 > 1.2 {
		t.Errorf("correlated paths measured very different RTTs: %v vs %v", r0, r1)
	}
}

func TestToy73ClaimHolds(t *testing.T) {
	tables, err := runToy73(Quick, 0)
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	if len(tb.Rows) != 5 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[4] != "true" {
			t.Errorf("DMP<=single violated at x/mu=%s: %v", row[0], row)
		}
		fSingle, _ := strconv.ParseFloat(strings.ReplaceAll(row[1], "e", "E"), 64)
		if fSingle <= 0 {
			t.Errorf("single-path late fraction should be positive at tau<half-period: %v", row)
		}
	}
}

func TestFig8Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("several seconds of Monte-Carlo")
	}
	tables, err := runFig8(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	if len(tb.Columns) != 6 || len(tb.Rows) != 15 {
		t.Fatalf("fig8 shape %dx%d", len(tb.Rows), len(tb.Columns))
	}
	// At tau=10s the late fraction must improve from ratio 1.2 to 2.0.
	var row10 []string
	for _, r := range tb.Rows {
		if r[0] == "10" {
			row10 = r
		}
	}
	f12 := parseF(t, row10[1])
	f20 := parseF(t, row10[5])
	if f20 >= f12 {
		t.Errorf("fig8: f(ratio 2.0)=%v not below f(ratio 1.2)=%v at tau=10", f20, f12)
	}
	if f12 < 0.01 {
		t.Errorf("fig8: ratio 1.2 should show substantial lateness, got %v", f12)
	}
}

func TestFig9aStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("several seconds of Monte-Carlo")
	}
	tables, err := runFig9a(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	if len(tb.Rows) != 3 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	if !strings.Contains(tb.Rows[0][1], "omitted") {
		t.Errorf("p=0.004, mu=25 cell should be omitted like the paper's: %v", tb.Rows[0])
	}
	// Every populated cell should report a finite required delay.
	for _, row := range tb.Rows {
		for _, cell := range row[1:] {
			if strings.Contains(cell, ">max") {
				t.Errorf("required delay did not converge: %v", row)
			}
		}
	}
}

func TestEmuScenarioSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock streaming")
	}
	sc := emuScenario{
		name: "smoke", mu: 100, payload: 300,
		rate:     [2]float64{80e3, 40e3},
		delay:    [2]time.Duration{10 * time.Millisecond, 30 * time.Millisecond},
		epPeriod: 10 * time.Second, epDur: 2 * time.Second, epFactor: 0.5,
	}
	tr, err := runEmuScenario(sc, 6*time.Second, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Expected == 0 || int64(len(tr.Arrivals)) != tr.Expected {
		t.Fatalf("incomplete trace: %d/%d", len(tr.Arrivals), tr.Expected)
	}
	if pb, _ := tr.LateFraction(30); pb != 0 {
		t.Errorf("late at tau=30s on a 6s stream: %v", pb)
	}
}

func TestEmuModelDerivation(t *testing.T) {
	m, err := emuModel(emuScenarios[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Paths) != 2 {
		t.Fatal("wrong path count")
	}
	for _, p := range m.Paths {
		if p.P <= 0 || p.P >= 0.5 {
			t.Errorf("derived loss rate %v implausible", p.P)
		}
	}
	agg, err := m.AggregateThroughput()
	if err != nil {
		t.Fatal(err)
	}
	// Derived model throughput should be near the configured relay budget.
	ratio := agg / m.Mu
	if ratio < 1.0 || ratio > 3.0 {
		t.Errorf("derived sigma_a/mu = %v, expected mildly overprovisioned", ratio)
	}
}

func TestFluidPathRate(t *testing.T) {
	p := fluidPath{on: 10, period: 10}
	if p.rate(2) != 10 || p.rate(7) != 0 || p.rate(12) != 10 {
		t.Fatal("on/off schedule wrong")
	}
	shifted := fluidPath{on: 10, period: 10, phase: 5}
	if shifted.rate(2) != 0 || shifted.rate(7) != 10 {
		t.Fatal("phase shift wrong")
	}
}

func TestFluidConservation(t *testing.T) {
	// With ample always-on capacity nothing is late.
	f := fluidLateFraction([]fluidPath{{on: 100, period: 10}, {on: 100, period: 10, phase: 5}}, 20, 1, 200)
	if f != 0 {
		t.Fatalf("late fraction %v with 5x capacity", f)
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	if s == "0" {
		return 0
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("unparseable fraction %q", s)
	}
	return v
}
