package exps

import (
	"fmt"

	"dmpstream/internal/netsim"
	"dmpstream/internal/sim"
	"dmpstream/internal/simstream"
	"dmpstream/internal/tcpsim"
)

func init() {
	register(Experiment{
		ID:    "toy73sim",
		Paper: "Section 7.3 (illustrative example), with real TCP",
		Short: "alternating on/off paths under full TCP dynamics, not fluid flow",
		Run:   runToy73Sim,
	})
}

// onOffPath builds one path whose bottleneck alternates between onMbps and a
// near-zero trickle with the given period; phase=true starts in the off
// half. Returns the wired connection.
func onOffPath(s *sim.Simulator, flow netsim.FlowID, onMbps, offMbps, period float64, startOff bool) *tcpsim.Conn {
	first := onMbps
	if startOff {
		first = offMbps
	}
	link := netsim.NewLink(s, "onoff", first, 10*sim.Millisecond, 50, nil)
	half := sim.Seconds(period / 2)
	var flip func()
	flip = func() {
		if link.Rate() == onMbps {
			link.SetRate(offMbps)
		} else {
			link.SetRate(onMbps)
		}
		s.After(half, flip)
	}
	s.After(half, flip)

	// A small send buffer keeps the head-of-line cost of a path swap low
	// (6 packets is still ~3x these paths' bandwidth-delay product).
	c := tcpsim.NewConn(s, flow, tcpsim.Config{SndBufPkts: 6})
	rev := netsim.NewLink(s, "rev", 100, 10*sim.Millisecond, 1<<18, nil)
	c.Wire(netsim.NewPath(c.Rcv, link), netsim.NewPath(c.Snd, rev))
	return c
}

// runToy73Sim re-runs the Section 7.3 thought experiment with the packet
// simulator's real TCP Reno instead of fluid capacity: timeouts, backoff and
// slow start after each outage are all in play.
//
// Two honest deviations from the paper's fluid setup, both because fluid
// flow hides real TCP costs. First, a hard outage (rate ~0) triggers
// exponentially backed-off timeouts whose blindness extends well into the
// next on-phase, collapsing BOTH configurations at the paper's knife-edge
// average of exactly µ — so the low phase is congestion (0.3µ) rather than
// silence, and the peak is 3µ for headroom. Second, τ sits below the
// single path's per-cycle deficit so the single path visibly misses
// deadlines while a diversity-exploiting scheme need not.
func runToy73Sim(f Fidelity, seed int64) ([]Table, error) {
	const mu, period, tau = 20.0, 10.0, 2.5
	const peak = 3 * mu  // high-phase rate of the single path
	const low = 0.3 * mu // low-phase rate (congestion, not outage)
	duration, _ := validationScale(f)
	t := Table{
		ID:    "toy73sim",
		Title: "Alternating high/low paths with real TCP (period 10s, tau=2.5s, mu=20)",
		Columns: []string{"x/mu", "late (single path)", "late (DMP anti-phase)",
			"anti-phase <= single"},
	}
	mbps := func(pktRate float64) float64 { return pktRate * 1500 * 8 / 1e6 }

	// Single path alternating at 3µ.
	runSingle := func() (float64, error) {
		s := sim.New(seed)
		c := onOffPath(s, 1, mbps(peak), mbps(low), period, false)
		st := simstream.New(s, simstream.VideoConfig{Mu: mu, Duration: sim.Seconds(duration)}, []*tcpsim.Conn{c})
		st.Start()
		s.Run(sim.Seconds(duration) + 300*sim.Second)
		pb, _ := st.LateFraction(tau)
		return pb, nil
	}
	fSingle, err := runSingle()
	if err != nil {
		return nil, err
	}

	for _, frac := range []float64{0.25, 0.5, 1.0} {
		x := frac * peak / 2
		s := sim.New(seed + int64(frac*100))
		c1 := onOffPath(s, 1, mbps(x), mbps(low/2), period, false)
		c2 := onOffPath(s, 2, mbps(peak-x), mbps(low/2), period, true) // anti-phase
		st := simstream.New(s, simstream.VideoConfig{Mu: mu, Duration: sim.Seconds(duration)},
			[]*tcpsim.Conn{c1, c2})
		st.Start()
		s.Run(sim.Seconds(duration) + 300*sim.Second)
		fDMP, _ := st.LateFraction(tau)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", frac),
			fmtF(fSingle),
			fmtF(fDMP),
			fmt.Sprintf("%v", fDMP <= fSingle+1e-9),
		})
	}
	t.Notes = append(t.Notes,
		"real TCP adds loss recovery, window dynamics and per-swap head-of-line costs that",
		"the fluid version (toy73) ignores; the paper's ordering holds regardless, weakest at",
		"small x where one path is nearly useless (the paper's extreme-heterogeneity caveat)")
	return []Table{t}, nil
}
