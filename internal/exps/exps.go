// Package exps regenerates every table and figure of the paper's evaluation.
//
// Each experiment is registered under a short id (table1, table2, table3,
// fig4a, fig4b, fig5a, fig5b, correlated, fig7a, fig7b, fig8, fig9a, fig9b,
// fig10, fig11, toy73) and produces one or more printable Tables with the
// same rows/series the paper reports. The Fidelity knob selects between a
// laptop-quick rendition (shorter simulated videos, fewer repetitions,
// smaller Monte-Carlo budgets) and the paper-scale Full configuration
// (10,000-second videos, 30 repetitions, late fractions resolved to 1e-4).
// See DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured outcomes.
package exps

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Fidelity scales experiment effort.
type Fidelity int

// Fidelity levels.
const (
	// Quick targets interactive runs and the benchmark suite: minutes for
	// the whole set, late fractions resolved to roughly 1e-3.
	Quick Fidelity = iota
	// Full reproduces paper-scale runs; individual experiments can take
	// tens of minutes to hours.
	Full
)

// ParseFidelity maps a CLI string to a Fidelity.
func ParseFidelity(s string) (Fidelity, error) {
	switch strings.ToLower(s) {
	case "quick", "":
		return Quick, nil
	case "full":
		return Full, nil
	default:
		return 0, fmt.Errorf("exps: unknown fidelity %q (want quick or full)", s)
	}
}

// Table is a printable experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// FormatCSV writes the table as CSV (id/title as a comment, then header and
// rows) for plotting tools.
func (t *Table) FormatCSV(w io.Writer) {
	fmt.Fprintf(w, "# %s: %s\n", t.ID, t.Title)
	cw := csv.NewWriter(w)
	cw.Write(t.Columns)
	for _, row := range t.Rows {
		cw.Write(row)
	}
	cw.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(w, "# note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Format writes the table as aligned text.
func (t *Table) Format(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], cell)
		}
		fmt.Fprintln(w)
	}
	writeRow(t.Columns)
	for i, wd := range widths {
		if i > 0 {
			fmt.Fprint(w, "  ")
		}
		fmt.Fprint(w, strings.Repeat("-", wd))
	}
	fmt.Fprintln(w)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Experiment is one registered reproduction target.
type Experiment struct {
	ID    string
	Paper string // which table/figure of the paper it regenerates
	Short string // one-line description
	Run   func(f Fidelity, seed int64) ([]Table, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("exps: duplicate experiment id " + e.ID)
	}
	registry[e.ID] = e
}

// All returns the registered experiments sorted by id.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Find looks up an experiment by id.
func Find(id string) (Experiment, bool) {
	e, ok := registry[strings.ToLower(id)]
	return e, ok
}

// fmtF renders a late fraction the way the paper's log-scale plots read.
func fmtF(f float64) string {
	if f == 0 {
		return "0"
	}
	if f < 0.01 {
		return fmt.Sprintf("%.2e", f)
	}
	return fmt.Sprintf("%.4f", f)
}

// fmtTau renders a required startup delay.
func fmtTau(tau float64) string {
	if tau > 1e8 { // infinity marker
		return ">max"
	}
	return fmt.Sprintf("%.1f", tau)
}
