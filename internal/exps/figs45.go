package exps

import (
	"fmt"
	"math"

	"dmpstream/internal/dmpmodel"
	"dmpstream/internal/tcpmodel"
)

func init() {
	register(Experiment{
		ID:    "fig4a",
		Paper: "Figure 4(a)",
		Short: "out-of-order effect, independent homogeneous paths (Setting 2-2)",
		Run: func(f Fidelity, seed int64) ([]Table, error) {
			return runOutOfOrderFig("fig4a", settingByName("2-2", independentSettings), false, f, seed)
		},
	})
	register(Experiment{
		ID:    "fig4b",
		Paper: "Figure 4(b)",
		Short: "late fraction vs startup delay, sim vs model (Setting 2-2)",
		Run: func(f Fidelity, seed int64) ([]Table, error) {
			return runSimVsModelFig("fig4b", settingByName("2-2", independentSettings), false, f, seed)
		},
	})
	register(Experiment{
		ID:    "fig5a",
		Paper: "Figure 5(a)",
		Short: "out-of-order effect, independent heterogeneous paths (Setting 1-2)",
		Run: func(f Fidelity, seed int64) ([]Table, error) {
			return runOutOfOrderFig("fig5a", settingByName("1-2", independentSettings), false, f, seed)
		},
	})
	register(Experiment{
		ID:    "fig5b",
		Paper: "Figure 5(b)",
		Short: "late fraction vs startup delay, sim vs model (Setting 1-2)",
		Run: func(f Fidelity, seed int64) ([]Table, error) {
			return runSimVsModelFig("fig5b", settingByName("1-2", independentSettings), false, f, seed)
		},
	})
	register(Experiment{
		ID:    "correlated",
		Paper: "Section 5.3 (figures omitted in the paper)",
		Short: "sim-vs-model match when both flows share one bottleneck",
		Run:   runCorrelatedValidation,
	})
}

func settingByName(name string, list []setting) setting {
	for _, s := range list {
		if s.name == name {
			return s
		}
	}
	panic("exps: unknown setting " + name)
}

// runOutOfOrderFig regenerates the Fig 4(a)/5(a) scatter: for each run and
// each startup delay, the late fraction counted in true playback order
// against the late fraction when packets are consumed in arrival order.
func runOutOfOrderFig(id string, st setting, correlated bool, f Fidelity, seed int64) ([]Table, error) {
	duration, runs := validationScale(f)
	t := Table{
		ID:      id,
		Title:   fmt.Sprintf("Effect of out-of-order packets (Setting %s)", st.name),
		Columns: []string{"run", "tau (s)", "late (playback order)", "late (arrival order)", "ratio"},
	}
	var worst float64 = 1
	for r := 0; r < runs; r++ {
		run, err := runValidationSim(st, correlated, duration, seed+int64(r)*101)
		if err != nil {
			return nil, err
		}
		for _, tau := range []float64{4, 6, 8, 10} {
			pb, ao := run.stream.LateFraction(tau)
			ratio := math.NaN()
			if pb > 0 && ao > 0 {
				ratio = ao / pb
				if ratio < 1 {
					ratio = 1 / ratio
				}
				if ratio > worst {
					worst = ratio
				}
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", r+1),
				fmt.Sprintf("%g", tau),
				fmtF(pb),
				fmtF(ao),
				fmt.Sprintf("%.2f", ratio),
			})
		}
	}
	t.Notes = append(t.Notes,
		"the paper's claim: the two orderings nearly coincide (points on the diagonal)",
		fmt.Sprintf("worst playback/arrival-order discrepancy observed: %.2fx", worst))
	return []Table{t}, nil
}

// runSimVsModelFig regenerates Fig 4(b)/5(b): simulated late fraction versus
// the analytical model fed with the measured path parameters.
func runSimVsModelFig(id string, st setting, correlated bool, f Fidelity, seed int64) ([]Table, error) {
	duration, runs := validationScale(f)
	taus := []float64{4, 5, 6, 7, 8, 9, 10}

	simF := make(map[float64][]float64)
	var params [2]videoPathStats
	for r := 0; r < runs; r++ {
		run, err := runValidationSim(st, correlated, duration, seed+int64(r)*101)
		if err != nil {
			return nil, err
		}
		for _, tau := range taus {
			pb, _ := run.stream.LateFraction(tau)
			simF[tau] = append(simF[tau], pb)
		}
		for k := 0; k < 2; k++ {
			params[k].P += run.stats[k].P / float64(runs)
			params[k].R += run.stats[k].R / float64(runs)
			params[k].TO += run.stats[k].TO / float64(runs)
		}
	}

	model := dmpmodel.Model{
		Paths: []tcpmodel.Params{params[0].ModelParams(), params[1].ModelParams()},
		Mu:    st.mu,
	}
	budget := modelBudget(f)
	t := Table{
		ID:      id,
		Title:   fmt.Sprintf("Fraction of late packets, ns-substitute vs model (Setting %s)", st.name),
		Columns: []string{"tau (s)", "sim mean", "sim 95% CI", "model", "model/sim", "match"},
	}
	for _, tau := range taus {
		mean, ci := meanCI(simF[tau])
		res, err := model.FractionLate(tau, dmpmodel.Options{Seed: seed + 7, MaxConsumptions: budget})
		if err != nil {
			return nil, err
		}
		ratio := math.NaN()
		if mean > 0 && res.F > 0 {
			ratio = res.F / mean
		}
		// The paper's acceptance criterion: the model lies within the sim's
		// confidence interval, or within one order of magnitude.
		match := "no"
		switch {
		case res.F >= mean-ci && res.F <= mean+ci:
			match = "within CI"
		case ratio > 0.1 && ratio < 10:
			match = "within 10x"
		case mean == 0 && res.F < 1e-3:
			match = "both small"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", tau),
			fmtF(mean),
			fmtF(ci),
			fmtF(res.F),
			fmt.Sprintf("%.2f", ratio),
			match,
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("model inputs measured from the simulation: p=(%.3f,%.3f) R=(%.0f,%.0f)ms TO=(%.1f,%.1f)",
			params[0].P, params[1].P, params[0].R*1e3, params[1].R*1e3, params[0].TO, params[1].TO),
		"paper's acceptance criterion: model within the sim CI or within 10x")
	return []Table{t}, nil
}

// runCorrelatedValidation covers Section 5.3: the same sim-vs-model check
// with both video flows sharing one bottleneck (Fig. 6 topology).
func runCorrelatedValidation(f Fidelity, seed int64) ([]Table, error) {
	var out []Table
	for _, st := range correlatedSettings {
		ts, err := runSimVsModelFig("correlated-"+st.name, st, true, f, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, ts...)
	}
	return out, nil
}

// meanCI returns the sample mean and normal-approximation 95% half-width.
func meanCI(xs []float64) (mean, ci float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(len(xs)-1))
	return mean, 1.96 * sd / math.Sqrt(float64(len(xs)))
}

// modelBudget is the Monte-Carlo sampling budget per model estimate.
func modelBudget(f Fidelity) int64 {
	if f == Full {
		return 5_000_000
	}
	return 400_000
}
