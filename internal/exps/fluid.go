package exps

import (
	"fmt"
)

func init() {
	register(Experiment{
		ID:    "toy73",
		Paper: "Section 7.3 (illustrative example)",
		Short: "alternating on/off paths: DMP vs single-path late fraction for x in (0, mu]",
		Run:   runToy73,
	})
}

// fluidPath is a deterministic on/off capacity process: `on` packets/second
// for half the period, zero for the other half. phase shifts the cycle.
type fluidPath struct {
	on     float64
	period float64
	phase  float64 // seconds into the cycle at t=0
}

func (p fluidPath) rate(t float64) float64 {
	pos := t + p.phase
	pos -= float64(int(pos/p.period)) * p.period
	if pos < p.period/2 {
		return p.on
	}
	return 0
}

// fluidLateFraction simulates the paper's Section 7.3 thought experiment at
// packet granularity: a CBR source at rate mu, startup delay tau, paths with
// deterministic on/off capacity. Packets go to whichever path has spare
// capacity this tick (head-of-queue fetch), emulating DMP's dynamic
// allocation; a single entry in paths is single-path streaming. Returns the
// fraction of packets arriving after their playback deadline.
func fluidLateFraction(paths []fluidPath, mu, tau, horizon float64) float64 {
	const dt = 1e-3
	type state struct {
		credit float64 // fractional transmission capacity accumulated
	}
	sts := make([]state, len(paths))
	var generated, sent int64
	var queue int64 // backlog at the server, packets
	arrivals := make([]float64, 0, int(mu*horizon)+1)
	genAcc := 0.0
	for t := 0.0; t < horizon; t += dt {
		// Generation.
		genAcc += mu * dt
		for genAcc >= 1 {
			genAcc--
			generated++
			queue++
		}
		// Transmission: each path drains the shared queue with its capacity.
		for i, p := range paths {
			sts[i].credit += p.rate(t) * dt
			for sts[i].credit >= 1 && queue > 0 {
				sts[i].credit--
				queue--
				sent++
				arrivals = append(arrivals, t)
			}
			if queue == 0 && sts[i].credit > 1 {
				sts[i].credit = 1 // live source: cannot send future packets
			}
		}
	}
	var late int64
	for i, at := range arrivals {
		deadline := float64(i)/mu + tau
		if at > deadline {
			late++
		}
	}
	late += generated - int64(len(arrivals)) // still queued = late
	if generated == 0 {
		return 0
	}
	return float64(late) / float64(generated)
}

func runToy73(Fidelity, int64) ([]Table, error) {
	// tau = 4.5 s sits strictly below the 5 s on/off half-period, so the
	// single path genuinely misses deadlines every cycle (tau = 5 exactly is
	// a knife-edge where every packet is marginally on time).
	const mu, period, tau, horizon = 20.0, 10.0, 4.5, 2000.0
	t := Table{
		ID:    "toy73",
		Title: "Alternating on/off paths (period 10s, tau=5s): DMP vs single path",
		Columns: []string{"x/mu", "late (single path)", "late (DMP, anti-phase)",
			"late (DMP, in-phase)", "DMP anti-phase <= single"},
	}
	single := []fluidPath{{on: 2 * mu, period: period}}
	fSingle := fluidLateFraction(single, mu, tau, horizon)
	allHold := true
	for _, frac := range []float64{0.1, 0.25, 0.5, 0.75, 1.0} {
		x := frac * mu
		anti := []fluidPath{
			{on: x, period: period},
			{on: 2*mu - x, period: period, phase: period / 2},
		}
		inPhase := []fluidPath{
			{on: x, period: period},
			{on: 2*mu - x, period: period},
		}
		fAnti := fluidLateFraction(anti, mu, tau, horizon)
		fIn := fluidLateFraction(inPhase, mu, tau, horizon)
		holds := fAnti <= fSingle+1e-9
		if !holds {
			allHold = false
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", frac),
			fmtF(fSingle),
			fmtF(fAnti),
			fmtF(fIn),
			fmt.Sprintf("%v", holds),
		})
	}
	t.Notes = append(t.Notes,
		"paper's claim: DMP's late fraction is at most the single path's for all x in (0, mu]",
		fmt.Sprintf("claim holds for every sampled x: %v", allHold),
		"in-phase paths equal the single path (both silent together); anti-phase paths let DMP shift load")
	return []Table{t}, nil
}
