package exps

import (
	"fmt"
	"math"

	"dmpstream/internal/dmpmodel"
	"dmpstream/internal/tcpmodel"
)

func init() {
	register(Experiment{
		ID:    "fig8",
		Paper: "Figure 8",
		Short: "diminishing gain from increasing sigma_a/mu (p=0.02, TO=4, mu=25)",
		Run:   runFig8,
	})
	register(Experiment{
		ID:    "fig9a",
		Paper: "Figure 9(a)",
		Short: "required startup delay at sigma_a/mu=1.6, varying RTT (mu in {25,50,100})",
		Run:   runFig9a,
	})
	register(Experiment{
		ID:    "fig9b",
		Paper: "Figure 9(b)",
		Short: "required startup delay at sigma_a/mu=1.6, varying mu (R in {100,200,300} ms)",
		Run:   runFig9b,
	})
	register(Experiment{
		ID:    "fig10",
		Paper: "Figure 10",
		Short: "impact of path heterogeneity: homogeneous vs heterogeneous required delay",
		Run:   runFig10,
	})
	register(Experiment{
		ID:    "fig11",
		Paper: "Figure 11",
		Short: "DMP-streaming vs static packet allocation",
		Run:   runFig11,
	})
}

// qualityThreshold is the paper's satisfactory-performance bar: late
// fraction below 1e-4.
const qualityThreshold = 1e-4

// searchScale returns the delay-search parameters per fidelity.
func searchScale(f Fidelity) (step, maxTau float64) {
	if f == Full {
		return 0.5, 120
	}
	return 1.0, 90
}

func runFig8(f Fidelity, seed int64) ([]Table, error) {
	const p, to, mu = 0.02, 4.0, 25.0
	ratios := []float64{1.2, 1.4, 1.6, 1.8, 2.0}
	taus := []float64{2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30}
	// The sweep is cheap (small µ), so afford extra samples: the figure's
	// log-scale tail otherwise shows Monte-Carlo shimmer near 1e-4.
	budget := 4 * modelBudget(f)

	t := Table{
		ID:      "fig8",
		Title:   "Fraction of late packets vs startup delay (p=0.02, TO=4, mu=25 pkts/s)",
		Columns: []string{"tau (s)"},
	}
	for _, r := range ratios {
		t.Columns = append(t.Columns, fmt.Sprintf("sigma_a/mu=%.1f", r))
	}
	series := make(map[float64][]string)
	for _, ratio := range ratios {
		par, err := dmpmodel.RForRatio(p, to, 0, mu, ratio, 2)
		if err != nil {
			return nil, err
		}
		m := dmpmodel.Model{Paths: []tcpmodel.Params{par, par}, Mu: mu}
		for _, tau := range taus {
			res, err := m.FractionLate(tau, dmpmodel.Options{Seed: seed + int64(tau*10), MaxConsumptions: budget})
			if err != nil {
				return nil, err
			}
			series[tau] = append(series[tau], fmtF(res.F))
		}
	}
	for _, tau := range taus {
		row := []string{fmt.Sprintf("%g", tau)}
		row = append(row, series[tau]...)
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper's shape: dramatic improvement from 1.2 to 1.4, diminishing returns beyond",
		fmt.Sprintf("Monte-Carlo budget %d consumptions per point; 0 means below resolution", budget))
	return []Table{t}, nil
}

func runFig9a(f Fidelity, seed int64) ([]Table, error) {
	const to, ratio = 4.0, 1.6
	step, maxTau := searchScale(f)
	budget := modelBudget(f)
	t := Table{
		ID:      "fig9a",
		Title:   "Required startup delay for late fraction < 1e-4 (TO=4, sigma_a/mu=1.6; R set per cell)",
		Columns: []string{"loss rate", "mu=25", "mu=50", "mu=100"},
	}
	for _, p := range []float64{0.004, 0.02, 0.04} {
		row := []string{fmt.Sprintf("%g", p)}
		for _, mu := range []float64{25, 50, 100} {
			if p == 0.004 && mu == 25 {
				// The paper omits this cell: the implied RTT exceeds 600 ms.
				row = append(row, "(omitted)")
				continue
			}
			par, err := dmpmodel.RForRatio(p, to, 0, mu, ratio, 2)
			if err != nil {
				return nil, err
			}
			m := dmpmodel.Model{Paths: []tcpmodel.Params{par, par}, Mu: mu}
			tau, err := m.RequiredStartupDelay(qualityThreshold, step, maxTau,
				dmpmodel.Options{Seed: seed + int64(mu), MaxConsumptions: budget})
			if err != nil {
				return nil, err
			}
			row = append(row, fmtTau(tau)+fmt.Sprintf(" (R=%.0fms)", par.R*1e3))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "paper: required delay around 10 s in all settings")
	return []Table{t}, nil
}

func runFig9b(f Fidelity, seed int64) ([]Table, error) {
	const to, ratio = 4.0, 1.6
	step, maxTau := searchScale(f)
	budget := modelBudget(f)
	t := Table{
		ID:      "fig9b",
		Title:   "Required startup delay for late fraction < 1e-4 (TO=4, sigma_a/mu=1.6; mu set per cell)",
		Columns: []string{"loss rate", "R=100ms", "R=200ms", "R=300ms"},
	}
	for _, p := range []float64{0.004, 0.02, 0.04} {
		row := []string{fmt.Sprintf("%g", p)}
		for _, rms := range []float64{100, 200, 300} {
			mu, par, err := dmpmodel.MuForRatio(p, rms/1e3, to, 0, ratio, 2)
			if err != nil {
				return nil, err
			}
			m := dmpmodel.Model{Paths: []tcpmodel.Params{par, par}, Mu: mu}
			tau, err := m.RequiredStartupDelay(qualityThreshold, step, maxTau,
				dmpmodel.Options{Seed: seed + int64(rms), MaxConsumptions: budget})
			if err != nil {
				return nil, err
			}
			row = append(row, fmtTau(tau)+fmt.Sprintf(" (mu=%.0f)", mu))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper: around 10 s except large-RTT/high-loss corners, which need sigma_a/mu=1.8")
	return []Table{t}, nil
}

func runFig10(f Fidelity, seed int64) ([]Table, error) {
	const to = 4.0
	step, maxTau := searchScale(f)
	budget := modelBudget(f)
	ratios := []float64{1.4, 1.6, 1.8}
	gammas := []float64{1.5, 2.0}

	type base struct {
		name string
		homo tcpmodel.Params
		mk   func(gamma float64) ([2]tcpmodel.Params, error)
	}
	var bases []base
	// Case 1 (RTT heterogeneity): p° in {0.01, 0.04}, R° = 150 ms.
	for _, p := range []float64{0.01, 0.04} {
		homo := tcpmodel.Params{P: p, R: 0.150, TO: to}
		bases = append(bases, base{
			name: fmt.Sprintf("case1 p=%g", p),
			homo: homo,
			mk:   func(g float64) ([2]tcpmodel.Params, error) { return dmpmodel.Case1RTTHetero(homo, g), nil },
		})
	}
	// Case 2 (loss heterogeneity): R° in {100, 300} ms, p° = 0.02.
	for _, rms := range []float64{100, 300} {
		homo := tcpmodel.Params{P: 0.02, R: rms / 1e3, TO: to}
		bases = append(bases, base{
			name: fmt.Sprintf("case2 R=%gms", rms),
			homo: homo,
			mk:   func(g float64) ([2]tcpmodel.Params, error) { return dmpmodel.Case2LossHetero(homo, g) },
		})
	}

	t := Table{
		ID:      "fig10",
		Title:   "Required startup delay: homogeneous vs heterogeneous paths (TO=4)",
		Columns: []string{"setting", "gamma", "sigma_a/mu", "tau homo (s)", "tau hetero (s)", "diff (s)"},
	}
	var maxDiff float64
	for _, b := range bases {
		sigmaO, err := dmpmodel.Sigma(b.homo)
		if err != nil {
			return nil, err
		}
		for _, gamma := range gammas {
			hetero, err := b.mk(gamma)
			if err != nil {
				return nil, err
			}
			for _, ratio := range ratios {
				mu := 2 * sigmaO / ratio
				homoM := dmpmodel.Model{Paths: []tcpmodel.Params{b.homo, b.homo}, Mu: mu}
				hetM := dmpmodel.Model{Paths: hetero[:], Mu: mu}
				opts := dmpmodel.Options{Seed: seed + int64(ratio*100) + int64(gamma*10), MaxConsumptions: budget}
				tauHomo, err := homoM.RequiredStartupDelay(qualityThreshold, step, maxTau, opts)
				if err != nil {
					return nil, err
				}
				tauHet, err := hetM.RequiredStartupDelay(qualityThreshold, step, maxTau, opts)
				if err != nil {
					return nil, err
				}
				diff := tauHet - tauHomo
				if !math.IsInf(diff, 0) && math.Abs(diff) > maxDiff {
					maxDiff = math.Abs(diff)
				}
				t.Rows = append(t.Rows, []string{
					b.name,
					fmt.Sprintf("%.1f", gamma),
					fmt.Sprintf("%.1f", ratio),
					fmtTau(tauHomo),
					fmtTau(tauHet),
					fmt.Sprintf("%.1f", diff),
				})
			}
		}
	}
	t.Notes = append(t.Notes,
		"paper's claim: points near the diagonal — DMP-streaming is not sensitive to path heterogeneity",
		fmt.Sprintf("largest |hetero-homo| gap observed: %.1f s", maxDiff))
	return []Table{t}, nil
}

func runFig11(f Fidelity, seed int64) ([]Table, error) {
	const to = 4.0
	step, maxTau := searchScale(f)
	budget := modelBudget(f)
	groups := []struct {
		rms   float64
		ratio float64
	}{
		{100, 1.6}, {200, 1.6}, {300, 1.6}, {300, 1.8}, {300, 2.0},
	}
	t := Table{
		ID:      "fig11",
		Title:   "Required startup delay: DMP-streaming vs static allocation (TO=4)",
		Columns: []string{"R (ms)", "sigma_a/mu", "loss rate", "tau static (s)", "tau DMP (s)"},
	}
	for _, g := range groups {
		for _, p := range []float64{0.004, 0.02, 0.04} {
			mu, par, err := dmpmodel.MuForRatio(p, g.rms/1e3, to, 0, g.ratio, 2)
			if err != nil {
				return nil, err
			}
			paths := []tcpmodel.Params{par, par}
			opts := dmpmodel.Options{Seed: seed + int64(g.rms) + int64(p*1e4), MaxConsumptions: budget}
			m := dmpmodel.Model{Paths: paths, Mu: mu}
			tauDMP, err := m.RequiredStartupDelay(qualityThreshold, step, maxTau, opts)
			if err != nil {
				return nil, err
			}
			tauStatic, err := dmpmodel.StaticRequiredStartupDelay(paths, mu, qualityThreshold, step, maxTau, opts)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%g", g.rms),
				fmt.Sprintf("%.1f", g.ratio),
				fmt.Sprintf("%g", p),
				fmtTau(tauStatic),
				fmtTau(tauDMP),
			})
		}
	}
	t.Notes = append(t.Notes,
		"paper's claim: DMP-streaming needs a much smaller startup delay than static allocation")
	return []Table{t}, nil
}
