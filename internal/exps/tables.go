package exps

import (
	"fmt"
)

func init() {
	register(Experiment{
		ID:    "table1",
		Paper: "Table 1",
		Short: "bottleneck link configurations used in the ns validation",
		Run:   runTable1,
	})
	register(Experiment{
		ID:    "table2",
		Paper: "Table 2",
		Short: "measured path parameters for independent paths",
		Run: func(f Fidelity, seed int64) ([]Table, error) {
			return runPathParamTable("table2", "Measured video-stream parameters, independent paths",
				independentSettings, false, f, seed)
		},
	})
	register(Experiment{
		ID:    "table3",
		Paper: "Table 3",
		Short: "measured path parameters for correlated (shared-bottleneck) paths",
		Run: func(f Fidelity, seed int64) ([]Table, error) {
			return runPathParamTable("table3", "Measured video-stream parameters, correlated paths",
				correlatedSettings, true, f, seed)
		},
	})
}

func runTable1(Fidelity, int64) ([]Table, error) {
	t := Table{
		ID:      "table1",
		Title:   "Configurations of the bottleneck link",
		Columns: []string{"Config.", "FTP flows", "HTTP flows", "Prop. delay (ms)", "B.w. (Mbps)", "Buffer (pkts)"},
	}
	for i, c := range Table1Configs {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%d", c.FTPFlows),
			fmt.Sprintf("%d", c.HTTPFlows),
			fmt.Sprintf("%g", c.DelayMs),
			fmt.Sprintf("%g", c.Mbps),
			fmt.Sprintf("%d", c.BufPkts),
		})
	}
	t.Notes = []string{"inputs reproduced verbatim from the paper"}
	return []Table{t}, nil
}

// runPathParamTable regenerates Table 2 or Table 3: run the validation
// topology for each setting and report the measured per-path loss rate, RTT,
// timeout ratio and the playback rate.
func runPathParamTable(id, title string, settings []setting, correlated bool, f Fidelity, seed int64) ([]Table, error) {
	duration, runs := validationScale(f)
	t := Table{
		ID:      id,
		Title:   title,
		Columns: []string{"Setting", "p1", "p2", "R1 (ms)", "R2 (ms)", "TO1", "TO2", "mu (pkts ps)"},
	}
	for _, st := range settings {
		var agg [2]videoPathStats
		for r := 0; r < runs; r++ {
			run, err := runValidationSim(st, correlated, duration, seed+int64(r)*101)
			if err != nil {
				return nil, fmt.Errorf("setting %s run %d: %w", st.name, r, err)
			}
			for k := 0; k < 2; k++ {
				agg[k].P += run.stats[k].P
				agg[k].R += run.stats[k].R
				agg[k].TO += run.stats[k].TO
			}
		}
		for k := 0; k < 2; k++ {
			agg[k].P /= float64(runs)
			agg[k].R /= float64(runs)
			agg[k].TO /= float64(runs)
		}
		t.Rows = append(t.Rows, []string{
			st.name,
			fmt.Sprintf("%.3f", agg[0].P),
			fmt.Sprintf("%.3f", agg[1].P),
			fmt.Sprintf("%.0f", agg[0].R*1e3),
			fmt.Sprintf("%.0f", agg[1].R*1e3),
			fmt.Sprintf("%.1f", agg[0].TO),
			fmt.Sprintf("%.1f", agg[1].TO),
			fmt.Sprintf("%g", st.mu),
		})
	}
	t.Notes = []string{
		fmt.Sprintf("averaged over %d runs of %g-second videos", runs, duration),
		"paper's Table 2 ranges: p 0.023-0.053, R 80-210 ms, TO 1.6-3.3",
	}
	return []Table{t}, nil
}
