package exps

import (
	"fmt"

	"dmpstream/internal/netsim"
	"dmpstream/internal/sim"
	"dmpstream/internal/simstream"
	"dmpstream/internal/tcpmodel"
	"dmpstream/internal/tcpsim"
	"dmpstream/internal/trafficgen"
)

// LinkConfig is one row of the paper's Table 1: a bottleneck link
// configuration together with its background load.
type LinkConfig struct {
	FTPFlows  int
	HTTPFlows int
	DelayMs   float64
	Mbps      float64
	BufPkts   int
}

// Table1Configs are the paper's four bottleneck configurations, verbatim.
var Table1Configs = [4]LinkConfig{
	{FTPFlows: 9, HTTPFlows: 40, DelayMs: 40, Mbps: 3.7, BufPkts: 50},
	{FTPFlows: 9, HTTPFlows: 40, DelayMs: 1, Mbps: 3.7, BufPkts: 50},
	{FTPFlows: 19, HTTPFlows: 40, DelayMs: 40, Mbps: 5.0, BufPkts: 50},
	{FTPFlows: 5, HTTPFlows: 20, DelayMs: 1, Mbps: 5.0, BufPkts: 30},
}

// setting pairs two Table-1 configurations with a playback rate, as in the
// paper's Tables 2 and 3.
type setting struct {
	name   string
	c1, c2 int // Table1Configs indices
	mu     float64
}

// independentSettings reproduces Table 2's rows (homogeneous then
// heterogeneous pairings).
var independentSettings = []setting{
	{"1-1", 0, 0, 50},
	{"2-2", 1, 1, 50},
	{"3-3", 2, 2, 30},
	{"4-4", 3, 3, 80},
	{"1-2", 0, 1, 50},
	{"1-3", 0, 2, 40},
	{"2-3", 1, 2, 40},
	{"3-4", 2, 3, 60},
}

// correlatedSettings reproduces Table 3's rows: both video flows share one
// bottleneck.
var correlatedSettings = []setting{
	{"1", 0, 0, 50},
	{"2", 1, 1, 50},
	{"3", 2, 2, 30},
	{"4", 3, 3, 80},
}

// pathEnv is one bottleneck plus its attached background load.
type pathEnv struct {
	s       *sim.Simulator
	cfg     LinkConfig
	bneck   *netsim.Link
	ingress netsim.Sink // bottleneck admission: the link itself, or RED
	red     *netsim.RED // non-nil when RED admission is active
	demux   map[netsim.FlowID]netsim.Sink
	next    *netsim.FlowID
}

func newPathEnv(s *sim.Simulator, cfg LinkConfig, next *netsim.FlowID, useRED bool) *pathEnv {
	env := &pathEnv{s: s, cfg: cfg, demux: make(map[netsim.FlowID]netsim.Sink), next: next}
	sink := netsim.SinkFunc(func(pkt *netsim.Packet) {
		if s, ok := env.demux[pkt.Flow]; ok {
			s.Deliver(pkt)
		}
	})
	if useRED {
		env.bneck, env.red = netsim.NewREDLink(s, "bneck", cfg.Mbps,
			sim.Seconds(cfg.DelayMs/1e3), cfg.BufPkts, netsim.REDConfig{}, sink)
		env.ingress = env.red
	} else {
		env.bneck = netsim.NewLink(s, "bneck", cfg.Mbps,
			sim.Seconds(cfg.DelayMs/1e3), cfg.BufPkts, sink)
		env.ingress = env.bneck
	}
	return env
}

// attach wires a connection through this bottleneck: 100 Mbps access links
// with 10 ms propagation on each side (the paper's Fig. 3 topology) and an
// uncongested reverse path with matching total delay.
func (env *pathEnv) attach(id netsim.FlowID, c *tcpsim.Conn) {
	head := netsim.NewLink(env.s, "head", 100, 10*sim.Millisecond, 1<<18, nil)
	tail := netsim.NewLink(env.s, "tail", 100, 10*sim.Millisecond, 1<<18, nil)
	env.demux[id] = netsim.NewPath(c.Rcv, tail)
	rev := netsim.NewLink(env.s, "rev", 100,
		sim.Seconds(env.cfg.DelayMs/1e3)+20*sim.Millisecond, 1<<18, nil)
	c.Wire(netsim.NewPath(env.ingress, head), netsim.NewPath(c.Snd, rev))
}

// populate starts the background FTP and HTTP sources.
func (env *pathEnv) populate() {
	for i := 0; i < env.cfg.FTPFlows; i++ {
		id := *env.next
		*env.next++
		f := trafficgen.NewFTP(env.s, id, tcpsim.Config{})
		env.attach(id, f.Conn)
		f.Start()
	}
	for i := 0; i < env.cfg.HTTPFlows; i++ {
		// trafficgen's defaults are calibrated against Table 2; see HTTPConfig.
		h := trafficgen.NewHTTP(env.s, trafficgen.HTTPConfig{}, func() *tcpsim.Conn {
			id := *env.next
			*env.next++
			c := tcpsim.NewConn(env.s, id, tcpsim.Config{})
			env.attach(id, c)
			return c
		})
		h.Start()
	}
}

// videoPathStats are the per-path measurements the paper reports in
// Tables 2 and 3.
type videoPathStats struct {
	P  float64 // bottleneck loss probability seen by the video flow
	R  float64 // mean RTT, seconds
	TO float64 // mean RTO / mean RTT
}

// ModelParams converts the measurements into analytical-model inputs.
func (v videoPathStats) ModelParams() tcpmodel.Params {
	return tcpmodel.Params{P: v.P, R: v.R, TO: v.TO}
}

// simRun is one completed validation simulation.
type simRun struct {
	stream *simstream.Stream
	stats  [2]videoPathStats
}

// runValidationSim builds the paper's topology for the given setting and
// runs DMP-streaming for `duration` simulated seconds. correlated selects
// the Fig. 6 shared-bottleneck variant.
func runValidationSim(st setting, correlated bool, duration float64, seed int64) (*simRun, error) {
	return runValidationSimVar(st, correlated, duration, seed, simVariant{})
}

// simVariant selects ablation knobs for the validation topology.
type simVariant struct {
	videoTCP tcpsim.Config // TCP configuration of the video flows
	red      bool          // RED admission at the bottlenecks instead of drop-tail
}

// runValidationSimTCP is runValidationSim with an explicit TCP configuration
// for the video flows (used by the send-buffer and flavor ablations; the
// background flows always use defaults).
func runValidationSimTCP(st setting, correlated bool, duration float64, seed int64, videoTCP tcpsim.Config) (*simRun, error) {
	return runValidationSimVar(st, correlated, duration, seed, simVariant{videoTCP: videoTCP})
}

// runValidationSimVar is the fully parameterized variant.
func runValidationSimVar(st setting, correlated bool, duration float64, seed int64, v simVariant) (*simRun, error) {
	s := sim.New(seed)
	var next netsim.FlowID = 100
	var envs [2]*pathEnv
	if correlated {
		env := newPathEnv(s, Table1Configs[st.c1], &next, v.red)
		envs[0], envs[1] = env, env
		env.populate()
	} else {
		envs[0] = newPathEnv(s, Table1Configs[st.c1], &next, v.red)
		envs[1] = newPathEnv(s, Table1Configs[st.c2], &next, v.red)
		envs[0].populate()
		envs[1].populate()
	}

	videoIDs := [2]netsim.FlowID{1, 2}
	var conns []*tcpsim.Conn
	for k := 0; k < 2; k++ {
		c := tcpsim.NewConn(s, videoIDs[k], v.videoTCP)
		envs[k].attach(videoIDs[k], c)
		conns = append(conns, c)
	}

	// Let the background traffic reach steady state before streaming starts.
	const warmup = 30.0
	s.Run(sim.Seconds(warmup))
	stream := simstream.New(s, simstream.VideoConfig{
		Mu: st.mu, Duration: sim.Seconds(duration),
	}, conns)
	stream.Start()
	s.Run(sim.Seconds(warmup+duration) + 120*sim.Second)

	run := &simRun{stream: stream}
	for k := 0; k < 2; k++ {
		snd := conns[k].Snd.Stats()
		if snd.Sent == 0 {
			return nil, fmt.Errorf("exps: video flow %d sent nothing", k)
		}
		if snd.RTTSamples == 0 {
			return nil, fmt.Errorf("exps: video flow %d has no RTT samples", k)
		}
		// The model's p is the probability that a packet is the FIRST loss of
		// its round (PFTK's convention; within-round losses are then modeled
		// as correlated). The sender-side estimator for that quantity is the
		// loss-event rate — each fast retransmit or timeout marks exactly one
		// loss event — not the raw bottleneck drop ratio, which counts whole
		// drop bursts and would make the correlated-loss model double-count.
		p := float64(snd.FastRetransmits+snd.Timeouts) / float64(snd.Sent)
		if p <= 0 {
			p = 1e-4 // model requires p > 0; losses were simply never observed
		}
		run.stats[k] = videoPathStats{
			P:  p,
			R:  snd.MeanRTT().Seconds(),
			TO: float64(snd.MeanRTO()) / float64(snd.MeanRTT()),
		}
	}
	return run, nil
}

// validationScale returns the video duration and repetition count for a
// fidelity level. The paper used 10,000-second videos and 30 runs.
func validationScale(f Fidelity) (duration float64, runs int) {
	if f == Full {
		return 10000, 30
	}
	return 400, 3
}
