package exps

import (
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"dmpstream/internal/core"
	"dmpstream/internal/dmpmodel"
	"dmpstream/internal/emunet"
	"dmpstream/internal/tcpmodel"
)

func init() {
	register(Experiment{
		ID:    "fig7a",
		Paper: "Figure 7(a)",
		Short: "emulated-Internet experiments: out-of-order effect on the real implementation",
		Run:   runFig7a,
	})
	register(Experiment{
		ID:    "fig7b",
		Paper: "Figure 7(b)",
		Short: "emulated-Internet experiments: measured vs model late fraction",
		Run:   runFig7b,
	})
}

// emuScenario is one emulated wide-area setting. The paper streamed from a
// UConn server to PlanetLab nodes (two ADSL nodes in San Francisco for the
// homogeneous case; San Francisco + Hefei for the heterogeneous case); here
// each path is a loopback TCP connection through an emunet relay whose rate,
// delay and congestion episodes play the role of the Internet path.
type emuScenario struct {
	name    string
	mu      float64 // packets per second
	payload int     // bytes per packet
	rate    [2]float64
	delay   [2]time.Duration
	// Shared periodic congestion process (see emunet.NewPeriodicEpisodes):
	// every epPeriod both paths collapse to epFactor of their rate for
	// epDur, modeling correlated wide-area congestion. Deep shared dips are
	// what give the testbed the multi-second deficits real Internet paths
	// show; independent single-path dips are absorbed by the other path.
	// A deterministic schedule keeps short runs reproducible and hands the
	// model an exact duty cycle.
	epPeriod time.Duration
	epDur    time.Duration
	epFactor float64
}

// emuScenarios spans homogeneous and heterogeneous paths and the paper's
// range of video rates (it used 25/50 pkts/s homogeneous, 100 heterogeneous).
var emuScenarios = []emuScenario{
	{
		// Comfortable scenario, like most of the paper's runs: effective
		// sigma_a/mu ≈ 1.6 after the episode duty cycle; the late fraction
		// sits at or below the measurement floor (the paper saw exact zeros
		// in 6 of its 10 experiments).
		name: "homog-adsl mu=25", mu: 25, payload: 1000,
		rate:     [2]float64{25e3, 25e3},
		delay:    [2]time.Duration{40 * time.Millisecond, 40 * time.Millisecond},
		epPeriod: 20 * time.Second, epDur: 6 * time.Second, epFactor: 0.35,
	},
	{
		name: "homog-adsl mu=50", mu: 50, payload: 1000,
		rate:     [2]float64{55e3, 55e3},
		delay:    [2]time.Duration{40 * time.Millisecond, 40 * time.Millisecond},
		epPeriod: 20 * time.Second, epDur: 6 * time.Second, epFactor: 0.45,
	},
	{
		// Tight scenario: effective sigma_a/mu ≈ 1.05 with ten-second dips —
		// the upper-left region of the paper's Fig 7 scatter where late
		// fractions reach 1e-2..1e-1.
		name: "hetero-sf-hefei mu=100", mu: 100, payload: 1000,
		rate:     [2]float64{95e3, 48e3},
		delay:    [2]time.Duration{30 * time.Millisecond, 120 * time.Millisecond},
		epPeriod: 25 * time.Second, epDur: 10 * time.Second, epFactor: 0.35,
	},
}

// emuScale returns the wall-clock duration per scenario run and the number
// of repetitions. The paper ran 10 experiments of 3000 s each.
func emuScale(f Fidelity) (dur time.Duration, runs int) {
	if f == Full {
		return 300 * time.Second, 3
	}
	return 25 * time.Second, 1
}

// runEmuScenario streams the real implementation through two impairment
// relays and returns the client trace.
func runEmuScenario(sc emuScenario, dur time.Duration, seed int64) (*core.Trace, error) {
	count := int64(sc.mu * dur.Seconds())
	srv, err := core.NewServer(core.Config{Mu: sc.mu, PayloadSize: sc.payload, Count: count})
	if err != nil {
		return nil, err
	}
	sConns := make([]net.Conn, 2)
	cConns := make([]net.Conn, 2)
	// Offset the first episode by a seed-dependent phase so repeated runs
	// sample different alignments of content vs congestion.
	offset := time.Duration(seed%7) * sc.epPeriod / 7
	shared := emunet.NewPeriodicEpisodes(sc.epPeriod, sc.epDur, offset)
	defer shared.Stop()
	for k := 0; k < 2; k++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		relay, err := emunet.Listen("127.0.0.1:0", ln.Addr().String(), emunet.PathConfig{
			RateBps:       sc.rate[k],
			Delay:         sc.delay[k],
			BufferKiB:     16,
			EpisodeFactor: sc.epFactor,
			Shared:        shared,
			Seed:          seed + int64(k),
		})
		if err != nil {
			_ = ln.Close()
			return nil, err
		}
		defer relay.Close()
		acc := make(chan net.Conn, 1)
		go func(ln net.Listener) {
			c, err := ln.Accept()
			_ = ln.Close()
			if err == nil {
				acc <- c
			}
		}(ln)
		c, err := net.Dial("tcp", relay.Addr())
		if err != nil {
			return nil, err
		}
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetWriteBuffer(16 * 1024)
		}
		sConns[k] = c
		select {
		case cConns[k] = <-acc:
		case <-time.After(5 * time.Second):
			return nil, fmt.Errorf("exps: relay accept timeout on path %d", k)
		}
	}
	var wg sync.WaitGroup
	wg.Add(1)
	var serveErr error
	go func() {
		defer wg.Done()
		_, serveErr = srv.Serve(sConns)
		for _, c := range sConns {
			_ = c.Close()
		}
	}()
	tr, err := core.Receive(cConns)
	wg.Wait()
	for _, c := range cConns {
		_ = c.Close()
	}
	if err != nil {
		return nil, err
	}
	if serveErr != nil {
		return nil, serveErr
	}
	return tr, nil
}

// emuModel derives analytical-model parameters for a scenario. The paper
// estimated p, R and RTO from tcpdump traces; with kernel TCP opaque to a
// userspace testbed, we instead invert the model's throughput function: the
// relay pins each path's achievable throughput (mean rate over episodes ÷
// packet size), the RTT is twice the configured one-way delay plus relay
// buffering, and T_O follows the paper's measured range. DESIGN.md records
// this substitution.
func emuModel(sc emuScenario) (dmpmodel.Model, error) {
	const to = 2.0
	epDuty := sc.epDur.Seconds() / sc.epPeriod.Seconds()
	paths := make([]tcpmodel.Params, 2)
	for k := 0; k < 2; k++ {
		meanRate := sc.rate[k] * ((1 - epDuty) + epDuty*sc.epFactor)
		sigma := meanRate / float64(sc.payload+16) // frame overhead
		rtt := 2*sc.delay[k].Seconds() + 0.050     // relay + kernel buffering
		loss, err := tcpmodel.LossForThroughput(sigma, rtt, to, 0)
		if err != nil {
			return dmpmodel.Model{}, fmt.Errorf("exps: scenario %s path %d: %w", sc.name, k, err)
		}
		paths[k] = tcpmodel.Params{P: loss, R: rtt, TO: to}
	}
	return dmpmodel.Model{Paths: paths, Mu: sc.mu}, nil
}

func runFig7a(f Fidelity, seed int64) ([]Table, error) {
	dur, runs := emuScale(f)
	t := Table{
		ID:      "fig7a",
		Title:   "Emulated-Internet runs: late fraction, playback order vs arrival order",
		Columns: []string{"scenario", "run", "tau (s)", "late (playback)", "late (arrival order)"},
	}
	for _, sc := range emuScenarios {
		for r := 0; r < runs; r++ {
			tr, err := runEmuScenario(sc, dur, seed+int64(r)*31)
			if err != nil {
				return nil, err
			}
			for _, tau := range []float64{4, 6, 8, 10} {
				pb, ao := tr.LateFraction(tau)
				t.Rows = append(t.Rows, []string{
					sc.name, fmt.Sprintf("%d", r+1), fmt.Sprintf("%g", tau), fmtF(pb), fmtF(ao),
				})
			}
		}
	}
	t.Notes = append(t.Notes, "paper's claim: the two orderings nearly coincide")
	return []Table{t}, nil
}

func runFig7b(f Fidelity, seed int64) ([]Table, error) {
	dur, runs := emuScale(f)
	budget := modelBudget(f)
	t := Table{
		ID:      "fig7b",
		Title:   "Emulated-Internet runs: measured vs model late fraction",
		Columns: []string{"scenario", "tau (s)", "measured", "model", "within 10x"},
	}
	for _, sc := range emuScenarios {
		model, err := emuModel(sc)
		if err != nil {
			return nil, err
		}
		byTau := map[float64][]float64{}
		for r := 0; r < runs; r++ {
			tr, err := runEmuScenario(sc, dur, seed+int64(r)*31)
			if err != nil {
				return nil, err
			}
			for _, tau := range []float64{4, 6, 8, 10} {
				pb, _ := tr.LateFraction(tau)
				byTau[tau] = append(byTau[tau], pb)
			}
		}
		for _, tau := range []float64{4, 6, 8, 10} {
			meas, _ := meanCI(byTau[tau])
			res, err := model.FractionLate(tau, dmpmodel.Options{Seed: seed, MaxConsumptions: budget})
			if err != nil {
				return nil, err
			}
			within := "yes"
			if meas > 0 && res.F > 0 {
				r := res.F / meas
				if r > 10 || r < 0.1 {
					within = "no"
				}
			} else if (meas == 0) != (res.F == 0) {
				// The paper saw this too: several runs measured exactly zero
				// while the model predicted a small value (it attributes the
				// gap to insufficient samples). Call the pair consistent when
				// the non-zero side is itself small.
				within = "both-small"
				if math.Max(meas, res.F) > 3e-3 {
					within = "no"
				}
			}
			t.Rows = append(t.Rows, []string{sc.name, fmt.Sprintf("%g", tau), fmtF(meas), fmtF(res.F), within})
		}
	}
	t.Notes = append(t.Notes,
		"paper's acceptance band: scatter within the 10x diagonals of Fig 7(b)",
		"model parameters derived by throughput inversion (see emuModel)")
	return []Table{t}, nil
}
