package pftk

import (
	"math"
	"testing"
	"testing/quick"
)

func TestThroughputDecreasingInLoss(t *testing.T) {
	prev := math.Inf(1)
	for _, p := range []float64{0.001, 0.004, 0.01, 0.02, 0.04, 0.1} {
		got := Throughput(p, 0.2, 0.8, 2, 32)
		if got >= prev {
			t.Fatalf("not decreasing at p=%v: %v >= %v", p, got, prev)
		}
		prev = got
	}
}

func TestThroughputLossFreeIsWindowLimited(t *testing.T) {
	if got := Throughput(0, 0.1, 0.4, 2, 20); got != 200 {
		t.Fatalf("loss-free throughput %v, want Wmax/RTT = 200", got)
	}
}

func TestSquareRootRegime(t *testing.T) {
	// At small p with a large window cap, the full model approaches the
	// square-root law 1/(R·sqrt(2bp/3)).
	p, rtt := 0.002, 0.2
	got := Throughput(p, rtt, 2*rtt, 2, 1000)
	want := 1 / (rtt * math.Sqrt(2*2*p/3))
	if got < 0.6*want || got > 1.3*want {
		t.Fatalf("full model %v vs square-root law %v", got, want)
	}
}

func TestWindowCapBinds(t *testing.T) {
	// With a tiny window cap, throughput must fall well below the
	// unconstrained value.
	free := Throughput(0.005, 0.1, 0.4, 2, 1000)
	capped := Throughput(0.005, 0.1, 0.4, 2, 6)
	if capped >= free {
		t.Fatalf("cap did not bind: %v >= %v", capped, free)
	}
	if capped > 6/0.1 {
		t.Fatalf("capped throughput %v exceeds Wmax/RTT", capped)
	}
}

func TestSimpleThroughputOrdering(t *testing.T) {
	// The simplified formula should track the full model within a factor 2
	// over the paper's parameter ranges.
	for _, p := range []float64{0.004, 0.02, 0.04} {
		full := Throughput(p, 0.15, 0.6, 2, 64)
		simple := SimpleThroughput(p, 0.15, 0.6, 2)
		if simple < full/2 || simple > full*2 {
			t.Fatalf("p=%v: simple %v vs full %v", p, simple, full)
		}
	}
	if !math.IsInf(SimpleThroughput(0, 0.1, 0.4, 2), 1) {
		t.Fatal("loss-free simple formula should be unbounded")
	}
}

// Property: throughput is positive and bounded by Wmax/RTT for any valid
// parameters.
func TestPropertyBounds(t *testing.T) {
	f := func(pRaw, rttRaw, toRaw uint16) bool {
		p := 0.0005 + float64(pRaw%200)/1000.0
		rtt := 0.02 + float64(rttRaw%400)/1000.0
		rto := rtt * (1 + float64(toRaw%40)/10)
		got := Throughput(p, rtt, rto, 2, 32)
		return got > 0 && got <= 32/rtt+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
