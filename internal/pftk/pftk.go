// Package pftk implements the steady-state TCP throughput formula of Padhye,
// Firoiu, Towsley and Kurose (SIGCOMM 1998), reference [24] of the paper.
//
// The paper uses this formula to construct its Case-2 heterogeneous paths
// (setting the second path's loss rate so the aggregate achievable throughput
// matches the homogeneous scenario). In this reproduction the primary
// inversion goes through the model's own chain (tcpmodel.LossForThroughput)
// for self-consistency; PFTK serves as an independent cross-check that the
// reconstructed chain produces sane Reno throughputs.
package pftk

import "math"

// Throughput returns the PFTK full-model estimate of TCP Reno throughput in
// packets per second.
//
//	p   per-packet loss probability
//	rtt round-trip time, seconds
//	rto retransmission timeout, seconds
//	b   packets acknowledged per ACK (2 with delayed ACKs)
//	wm  maximum window, packets
func Throughput(p, rtt, rto, b, wm float64) float64 {
	if p <= 0 {
		// Loss-free: limited by window only.
		return wm / rtt
	}
	// E[W] for the unconstrained model.
	ew := 2/(3*b) + math.Sqrt(8/(3*b*p)+math.Pow(2/(3*b), 2))
	qp := math.Min(1, 3*math.Sqrt(3*b*p/8)) // prob. a loss is a timeout
	fp := 1 + 32*p*p                        // backoff factor Σ (2p)^k truncated

	var denom float64
	if ew < wm {
		denom = rtt*(b/2*ew+1) + qp*rto*fp/(1-p)
	} else {
		denom = rtt*(b/8*wm+1/(p*wm)+2) + qp*rto*fp/(1-p)
	}
	num := (1-p)/p + ew + qp/(1-p)
	if ew >= wm {
		num = (1-p)/p + wm + qp/(1-p)
	}
	return num / denom
}

// SimpleThroughput is the PFTK "square-root" approximation including the
// timeout term (their Eq. 30 simplified form), packets per second.
func SimpleThroughput(p, rtt, rto, b float64) float64 {
	if p <= 0 {
		return math.Inf(1)
	}
	den := rtt*math.Sqrt(2*b*p/3) + rto*math.Min(1, 3*math.Sqrt(3*b*p/8))*p*(1+32*p*p)
	return 1 / den
}
