// Fault injection: deterministic mid-stream path failures.
//
// The relay already models *degradation* (rate limits, delay, congestion
// episodes); this file adds *failure*. Three primitives cover the ways a
// real path dies:
//
//   - Drop: every live connection through the relay is reset (RST), as when
//     a NAT entry expires or a middlebox sends a reset. Readers and writers
//     on both ends fail immediately. The relay keeps listening, so a client
//     that redials gets a fresh connection.
//   - Stall: the relay blackholes traffic — connections stay open but no
//     byte moves in either direction until Unstall. This is the silent
//     failure mode (a routing flap, a dead wireless link) that only
//     timeouts can detect.
//   - Sever: every live connection is closed cleanly (FIN), as when the far
//     host shuts down gracefully.
//
// A Timeline schedules these primitives at fixed offsets from its start, so
// a failure scenario is a value, not a hand-written sleep sequence — the
// same script replayed against the same seeds reproduces the same run.
package emunet

import (
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"
)

// FaultKind selects one fault primitive within a FaultEvent.
type FaultKind int

const (
	// FaultDrop resets (RST) every connection currently through the relay.
	FaultDrop FaultKind = iota
	// FaultStall blackholes the relay: connections stay open, bytes stop.
	FaultStall
	// FaultUnstall lifts a FaultStall.
	FaultUnstall
	// FaultSever closes (FIN) every connection currently through the relay.
	FaultSever
)

func (k FaultKind) String() string {
	switch k {
	case FaultDrop:
		return "drop"
	case FaultStall:
		return "stall"
	case FaultUnstall:
		return "unstall"
	case FaultSever:
		return "sever"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// FaultEvent is one scheduled fault: Kind fires At after the timeline starts.
type FaultEvent struct {
	At   time.Duration
	Kind FaultKind
}

// Drop resets every connection currently relayed: SO_LINGER is zeroed so the
// close emits a TCP RST, the abrupt death a sender sees as "connection reset
// by peer". The listener keeps accepting, so redials establish fresh paths.
func (r *Relay) Drop() {
	for _, c := range r.liveConns() {
		if tc, ok := c.(*net.TCPConn); ok {
			_ = tc.SetLinger(0)
		}
		_ = c.Close()
	}
}

// Sever closes every connection currently relayed with a normal FIN. Like
// Drop, the listener stays up for redials.
func (r *Relay) Sever() {
	for _, c := range r.liveConns() {
		_ = c.Close()
	}
}

// Stall blackholes the relay: both pump directions park before their next
// write and no byte moves until Unstall. Connections stay open — the peers
// see silence, not an error, which is exactly what write-stall timeouts and
// health state machines exist to detect. Stall is idempotent.
func (r *Relay) Stall() {
	r.mu.Lock()
	if r.stallCh == nil {
		r.stallCh = make(chan struct{})
	}
	r.mu.Unlock()
}

// Unstall lifts a Stall; parked pumps resume immediately. Unstalling a relay
// that is not stalled is a no-op.
func (r *Relay) Unstall() {
	r.mu.Lock()
	if r.stallCh != nil {
		close(r.stallCh)
		r.stallCh = nil
	}
	r.mu.Unlock()
}

// Stalled reports whether the relay is currently blackholing traffic.
func (r *Relay) Stalled() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stallCh != nil
}

// liveConns snapshots the current relay-side sockets.
func (r *Relay) liveConns() []net.Conn {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]net.Conn, 0, len(r.conns))
	for c := range r.conns {
		out = append(out, c)
	}
	return out
}

// waitOpen blocks while the relay is stalled. It returns false when the
// relay closed while waiting, true once traffic may flow.
func (r *Relay) waitOpen() bool {
	for {
		r.mu.Lock()
		ch := r.stallCh
		closed := r.closed
		r.mu.Unlock()
		if closed {
			return false
		}
		if ch == nil {
			return true
		}
		select {
		case <-ch: // unstalled
		case <-r.done: // relay closed mid-stall
			return false
		}
	}
}

// Timeline is a running fault schedule; Stop cancels pending events and
// joins the scheduler goroutine.
type Timeline struct {
	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// Schedule starts firing the given fault events at their offsets from now.
// Events run in At order regardless of slice order; equal offsets fire in
// slice order. The returned Timeline's Stop cancels anything still pending.
func (r *Relay) Schedule(events []FaultEvent) *Timeline {
	evs := make([]FaultEvent, len(events))
	copy(evs, events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	tl := &Timeline{stop: make(chan struct{})}
	tl.wg.Add(1)
	go func() {
		defer tl.wg.Done()
		base := time.Now()
		for _, ev := range evs {
			// Drift-free: each event is scheduled against the timeline start,
			// not the previous event's actual firing time.
			t := time.NewTimer(time.Until(base.Add(ev.At)))
			select {
			case <-t.C:
			case <-tl.stop:
				t.Stop()
				return
			case <-r.done:
				t.Stop()
				return
			}
			switch ev.Kind {
			case FaultDrop:
				r.Drop()
			case FaultStall:
				r.Stall()
			case FaultUnstall:
				r.Unstall()
			case FaultSever:
				r.Sever()
			}
		}
	}()
	return tl
}

// Stop cancels pending events and joins the scheduler. Events already fired
// are not undone (in particular, a Stall stays in effect). Idempotent.
func (tl *Timeline) Stop() {
	tl.once.Do(func() { close(tl.stop) })
	tl.wg.Wait()
}

// ParseFaultScript parses a comma-separated fault timeline of the form
//
//	"drop@5s,stall@7s,unstall@9s,sever@12s"
//
// into events for Relay.Schedule. Whitespace around entries is ignored;
// offsets use Go duration syntax and must not be negative.
func ParseFaultScript(s string) ([]FaultEvent, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []FaultEvent
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		kind, at, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("emunet: fault %q: want kind@offset", part)
		}
		var k FaultKind
		switch kind {
		case "drop":
			k = FaultDrop
		case "stall":
			k = FaultStall
		case "unstall":
			k = FaultUnstall
		case "sever":
			k = FaultSever
		default:
			return nil, fmt.Errorf("emunet: unknown fault kind %q", kind)
		}
		d, err := time.ParseDuration(at)
		if err != nil {
			return nil, fmt.Errorf("emunet: fault %q: %w", part, err)
		}
		if d < 0 {
			return nil, fmt.Errorf("emunet: fault %q: negative offset", part)
		}
		out = append(out, FaultEvent{At: d, Kind: k})
	}
	return out, nil
}

// FormatFaultScript renders events in the syntax ParseFaultScript accepts.
func FormatFaultScript(events []FaultEvent) string {
	parts := make([]string, len(events))
	for i, ev := range events {
		parts[i] = fmt.Sprintf("%s@%s", ev.Kind, ev.At)
	}
	return strings.Join(parts, ",")
}
