package emunet

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// echoBackend listens and returns everything it receives back to the sender
// of a second connection? No — it simply accumulates received bytes and
// signals completion when the client half-closes.
type sinkBackend struct {
	ln   net.Listener
	mu   sync.Mutex
	data bytes.Buffer
	done chan struct{}
}

func newSinkBackend(t *testing.T) *sinkBackend {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b := &sinkBackend{ln: ln, done: make(chan struct{})}
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		buf := make([]byte, 4096)
		for {
			n, err := conn.Read(buf)
			if n > 0 {
				b.mu.Lock()
				b.data.Write(buf[:n])
				b.mu.Unlock()
			}
			if err != nil {
				break
			}
		}
		conn.Close()
		close(b.done)
	}()
	return b
}

func (b *sinkBackend) bytesReceived() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]byte, b.data.Len())
	copy(out, b.data.Bytes())
	return out
}

func dialAndSend(t *testing.T, addr string, payload []byte) time.Duration {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := conn.Write(payload); err != nil {
		t.Fatal(err)
	}
	conn.(*net.TCPConn).CloseWrite()
	io.Copy(io.Discard, conn) // wait for remote close
	elapsed := time.Since(start)
	conn.Close()
	return elapsed
}

func TestRelayForwardsIntact(t *testing.T) {
	b := newSinkBackend(t)
	r, err := Listen("127.0.0.1:0", b.ln.Addr().String(), PathConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	payload := make([]byte, 50000)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	dialAndSend(t, r.Addr(), payload)
	<-b.done
	if !bytes.Equal(b.bytesReceived(), payload) {
		t.Fatal("payload corrupted through relay")
	}
	if r.BytesForwarded.Load() != int64(len(payload)) {
		t.Fatalf("counter = %d", r.BytesForwarded.Load())
	}
}

func TestRelayRateLimit(t *testing.T) {
	b := newSinkBackend(t)
	// 100 KB at 200 KB/s ≈ 0.5s minimum.
	r, err := Listen("127.0.0.1:0", b.ln.Addr().String(), PathConfig{RateBps: 200 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	payload := make([]byte, 100*1024)
	start := time.Now()
	dialAndSend(t, r.Addr(), payload)
	<-b.done
	elapsed := time.Since(start)
	if elapsed < 400*time.Millisecond {
		t.Fatalf("100KiB at 200KiB/s took only %v", elapsed)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("transfer took %v; pacing far too slow", elapsed)
	}
}

func TestRelayDelay(t *testing.T) {
	b := newSinkBackend(t)
	r, err := Listen("127.0.0.1:0", b.ln.Addr().String(), PathConfig{Delay: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	start := time.Now()
	dialAndSend(t, r.Addr(), []byte("ping"))
	<-b.done
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Fatalf("delivery after %v with 150ms one-way delay", elapsed)
	}
}

func TestEpisodesSlowTransfer(t *testing.T) {
	run := func(episodes bool) time.Duration {
		b := newSinkBackend(t)
		cfg := PathConfig{RateBps: 500 * 1024, Seed: 7}
		if episodes {
			cfg.EpisodeRate = 8 // frequent
			cfg.EpisodeDuration = 150 * time.Millisecond
			cfg.EpisodeFactor = 0.05
		}
		r, err := Listen("127.0.0.1:0", b.ln.Addr().String(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		start := time.Now()
		dialAndSend(t, r.Addr(), make([]byte, 400*1024))
		<-b.done
		return time.Since(start)
	}
	clean := run(false)
	impaired := run(true)
	if impaired < clean {
		t.Fatalf("episodes sped things up: clean %v vs impaired %v", clean, impaired)
	}
}

func TestBackpressurePropagates(t *testing.T) {
	// With a slow relay rate and a small buffer, a large non-blocking write
	// burst cannot complete instantly: the client's Write must block once
	// kernel + relay buffers fill.
	b := newSinkBackend(t)
	r, err := Listen("127.0.0.1:0", b.ln.Addr().String(), PathConfig{RateBps: 50 * 1024, BufferKiB: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	conn, err := net.Dial("tcp", r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	conn.(*net.TCPConn).SetWriteBuffer(8 * 1024)
	start := time.Now()
	if _, err := conn.Write(make([]byte, 512*1024)); err != nil {
		t.Fatal(err)
	}
	blocked := time.Since(start)
	conn.(*net.TCPConn).CloseWrite()
	io.Copy(io.Discard, conn)
	conn.Close()
	<-b.done
	// 512 KiB at 50 KiB/s is ~10s; even returning after buffering most of it
	// the write should have taken well over a second.
	if blocked < time.Second {
		t.Fatalf("write of 512KiB returned in %v; backpressure not reaching sender", blocked)
	}
}

func TestCloseStopsAccepting(t *testing.T) {
	b := newSinkBackend(t)
	r, err := Listen("127.0.0.1:0", b.ln.Addr().String(), PathConfig{})
	if err != nil {
		t.Fatal(err)
	}
	addr := r.Addr()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Dial("tcp", addr); err == nil {
		t.Fatal("dial succeeded after Close")
	}
}
