// Package emunet emulates wide-area network paths for real TCP connections.
//
// It is the reproduction's stand-in for the paper's PlanetLab testbed
// (Section 6): a TCP relay that forwards bytes through a token-bucket rate
// limiter, a propagation-delay line, and an on/off congestion-episode
// process that temporarily collapses the available rate. Streaming the real
// DMP implementation (internal/core) through two relays with different
// configurations reproduces the role of the paper's Internet experiments —
// validating the model against an implementation outside the simulator,
// with real kernel sockets providing the send-buffer backpressure.
package emunet

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// PathConfig describes one emulated path direction.
type PathConfig struct {
	RateBps   float64       // forwarding rate in bytes/second (0 = unlimited)
	Delay     time.Duration // one-way propagation delay
	BufferKiB int           // relay buffering before backpressure (default 64)

	// Congestion episodes: the rate drops to RateBps·EpisodeFactor for an
	// exponentially distributed duration, at exponentially distributed
	// intervals. EpisodeRate is episodes per second (0 disables).
	EpisodeRate     float64
	EpisodeDuration time.Duration
	EpisodeFactor   float64

	// Shared, when set, replaces the relay-local episode process: the relay
	// is congested whenever the shared process is active. Use one Episodes
	// value across several relays to model paths whose congestion is
	// correlated (e.g. a common provider segment).
	Shared *Episodes

	// Downstream flips the impaired direction: the rate limit and episodes
	// apply to backend→client (the reverse direction gets only the delay).
	// Use it when the heavy flow is served by the backend — e.g. subscribers
	// dialing a broadcast hub — instead of pushed by the dialer.
	Downstream bool

	Seed int64
}

// Episodes is a standalone on/off congestion process that any number of
// relays can subscribe to through PathConfig.Shared.
type Episodes struct {
	active atomic.Bool
	stop   chan struct{}
	once   sync.Once
	wg     sync.WaitGroup
}

// NewEpisodes starts a process that turns on at exponential rate `perSecond`
// and stays on for an exponentially distributed time with mean `dur`. Stop
// it with Stop when done.
func NewEpisodes(perSecond float64, dur time.Duration, seed int64) *Episodes {
	e := &Episodes{stop: make(chan struct{})}
	rng := rand.New(rand.NewSource(seed))
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		for {
			if !e.sleep(time.Duration(rng.ExpFloat64() / perSecond * float64(time.Second))) {
				return
			}
			e.active.Store(true)
			if !e.sleep(time.Duration(rng.ExpFloat64() * dur.Seconds() * float64(time.Second))) {
				return
			}
			e.active.Store(false)
		}
	}()
	return e
}

// NewPeriodicEpisodes starts a deterministic process: an episode of exactly
// `dur` begins every `period`, the first one after `offset`. Deterministic
// schedules make short testbed runs reproducible and give the analytical
// model an exact duty cycle.
func NewPeriodicEpisodes(period, dur, offset time.Duration) *Episodes {
	if dur >= period {
		panic("emunet: episode duration must be below the period")
	}
	e := &Episodes{stop: make(chan struct{})}
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		if !e.sleep(offset) {
			return
		}
		for {
			e.active.Store(true)
			if !e.sleep(dur) {
				return
			}
			e.active.Store(false)
			if !e.sleep(period - dur) {
				return
			}
		}
	}()
	return e
}

// Active reports whether an episode is in progress.
func (e *Episodes) Active() bool { return e.active.Load() }

// Stop terminates the process goroutine and joins it.
func (e *Episodes) Stop() {
	e.once.Do(func() { close(e.stop) })
	e.wg.Wait()
}

func (e *Episodes) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-e.stop:
		return false
	}
}

func (c PathConfig) withDefaults() PathConfig {
	if c.BufferKiB == 0 {
		c.BufferKiB = 64
	}
	if c.EpisodeFactor == 0 {
		c.EpisodeFactor = 0.1
	}
	if c.EpisodeDuration == 0 {
		c.EpisodeDuration = time.Second
	}
	return c
}

// Relay is a TCP forwarder applying PathConfig impairments to the
// client→backend and backend→client byte streams (the reverse direction gets
// the delay but not the rate limit, mimicking an uncongested ACK path).
type Relay struct {
	ln      net.Listener
	backend string
	cfg     PathConfig
	wg      sync.WaitGroup

	mu      sync.Mutex
	closed  bool                  // guarded by mu
	conns   map[net.Conn]struct{} // guarded by mu; live relay-side sockets
	stallCh chan struct{}         // guarded by mu; non-nil while blackholed (see faults.go)
	done    chan struct{}         // closed by Close; never written

	// Both byte counters are written by pump goroutines and read by tests
	// and tools while the relay runs, so every access goes through
	// sync/atomic — never plain reads.
	BytesForwarded atomic.Int64 // impaired direction
	BytesReturned  atomic.Int64 // return direction (delay only)
}

// Listen starts a relay on addr forwarding to backend.
func Listen(addr, backend string, cfg PathConfig) (*Relay, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("emunet: listen: %w", err)
	}
	r := &Relay{
		ln: ln, backend: backend, cfg: cfg.withDefaults(),
		conns: map[net.Conn]struct{}{},
		done:  make(chan struct{}),
	}
	r.wg.Add(1)
	go r.acceptLoop()
	return r, nil
}

// Addr returns the relay's listening address.
func (r *Relay) Addr() string { return r.ln.Addr().String() }

// Close stops accepting, closes every in-flight connection, and joins the
// pump goroutines before returning — no relay goroutine survives Close.
func (r *Relay) Close() error {
	r.mu.Lock()
	already := r.closed
	r.closed = true
	conns := make([]net.Conn, 0, len(r.conns))
	for c := range r.conns {
		conns = append(conns, c)
	}
	r.mu.Unlock()
	var err error
	if !already {
		close(r.done)
		err = r.ln.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	r.wg.Wait()
	return err
}

// register adds c to the live-socket set so Close can cut it. If the relay
// is already closed it closes c instead and reports false.
func (r *Relay) register(c net.Conn) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		_ = c.Close()
		return false
	}
	r.conns[c] = struct{}{}
	return true
}

func (r *Relay) unregister(c net.Conn) {
	r.mu.Lock()
	delete(r.conns, c)
	r.mu.Unlock()
}

func (r *Relay) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !r.register(conn) {
			continue
		}
		// acceptLoop itself holds a wg slot until it returns, so this Add
		// can never race a Close that already observed a zero counter.
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			defer r.unregister(conn)
			r.handle(conn)
		}()
	}
}

func (r *Relay) handle(client net.Conn) {
	server, err := net.Dial("tcp", r.backend)
	if err != nil {
		_ = client.Close()
		return
	}
	if !r.register(server) { // relay closed while dialing
		_ = client.Close()
		return
	}
	defer r.unregister(server)
	// Bound the kernel socket buffers on the impaired direction so that
	// backpressure reaches the sender through the relay instead of being
	// absorbed by hundreds of kilobytes of default buffering. The receive
	// buffer also caps the TCP window the relay advertises to the sender.
	in, out := client, server // impaired direction: in → out
	if r.cfg.Downstream {
		in, out = server, client
	}
	if tc, ok := in.(*net.TCPConn); ok {
		tc.SetReadBuffer(r.cfg.BufferKiB * 1024)
	}
	if tc, ok := out.(*net.TCPConn); ok {
		tc.SetWriteBuffer(r.cfg.BufferKiB * 1024)
	}
	shape := newShaper(r.cfg, &r.BytesForwarded, r.waitOpen)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // impaired direction
		defer wg.Done()
		shape.pump(in, out)
		tcpHalfClose(out)
	}()
	go func() { // return direction: delay only
		defer wg.Done()
		delayPump(out, in, r.cfg.Delay, &r.BytesReturned, r.waitOpen)
		tcpHalfClose(in)
	}()
	wg.Wait()
	_ = client.Close()
	_ = server.Close()
}

// tcpHalfClose closes the write side so EOF propagates while reads continue.
func tcpHalfClose(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
}

// chunk is a unit of forwarded data with a scheduled release time.
type chunk struct {
	data    []byte
	release time.Time
}

// shaper implements rate limiting + episodes + delay for one direction.
type shaper struct {
	cfg     PathConfig
	rng     *rand.Rand
	rngMu   sync.Mutex
	inEp    atomic.Bool
	counter *atomic.Int64
	done    chan struct{}
	gate    func() bool // blocks while the relay is stalled; false = closed
}

func newShaper(cfg PathConfig, counter *atomic.Int64, gate func() bool) *shaper {
	s := &shaper{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		counter: counter,
		done:    make(chan struct{}),
		gate:    gate,
	}
	if cfg.Shared == nil && cfg.EpisodeRate > 0 {
		go s.episodeLoop()
	}
	return s
}

// sleepOrDone sleeps for d unless the shaper shuts down first.
func (s *shaper) sleepOrDone(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-s.done:
		return false
	}
}

func (s *shaper) expDur(mean float64) time.Duration {
	s.rngMu.Lock()
	v := s.rng.ExpFloat64() * mean
	s.rngMu.Unlock()
	return time.Duration(v * float64(time.Second))
}

func (s *shaper) episodeLoop() {
	for {
		if !s.sleepOrDone(s.expDur(1 / s.cfg.EpisodeRate)) {
			return
		}
		s.inEp.Store(true)
		if !s.sleepOrDone(s.expDur(s.cfg.EpisodeDuration.Seconds())) {
			return
		}
		s.inEp.Store(false)
	}
}

func (s *shaper) currentRate() float64 {
	congested := s.inEp.Load()
	if s.cfg.Shared != nil {
		congested = s.cfg.Shared.Active()
	}
	if congested {
		return s.cfg.RateBps * s.cfg.EpisodeFactor
	}
	return s.cfg.RateBps
}

// pump forwards src→dst with pacing and delay. The bounded channel between
// the reader and the writer is the relay's buffer: when it fills, reads stop
// and TCP backpressure reaches the sender — which is exactly the signal the
// DMP sender goroutines rely on.
//
// Pacing is charged on the writer side, at serve time: a real link transmits
// queued bytes at whatever the line rate is NOW, so bytes buffered during a
// congestion episode must not keep the episode's slow rate once it ends.
func (s *shaper) pump(src io.Reader, dst io.Writer) {
	const chunkSize = 2048
	depth := s.cfg.BufferKiB * 1024 / chunkSize
	if depth < 2 {
		depth = 2
	}
	ch := make(chan []byte, depth)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: pace at the current rate, then apply the delay
		defer wg.Done()
		var pace time.Time
		for data := range ch {
			if s.gate != nil && !s.gate() {
				for range ch { // relay closed mid-stall: drain and exit
				}
				return
			}
			now := time.Now()
			if pace.Before(now) {
				pace = now
			}
			if rate := s.currentRate(); rate > 0 {
				pace = pace.Add(time.Duration(float64(len(data)) / rate * float64(time.Second)))
			}
			// Serialization finishes at `pace`; the head arrives Delay later.
			// pace is monotone, so FIFO order and inter-chunk gaps survive.
			if d := time.Until(pace.Add(s.cfg.Delay)); d > 0 {
				time.Sleep(d)
			}
			if _, err := dst.Write(data); err != nil {
				// Drain the channel so the reader can observe src close.
				for range ch {
				}
				return
			}
			if s.counter != nil {
				s.counter.Add(int64(len(data)))
			}
		}
	}()

	buf := make([]byte, chunkSize)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			data := make([]byte, n)
			copy(data, buf[:n])
			ch <- data
		}
		if err != nil {
			break
		}
	}
	close(ch)
	close(s.done)
	wg.Wait()
}

// delayPump forwards src→dst with a fixed delay and no rate limit,
// counting forwarded bytes into counter (atomically — the other side of
// the relay reads it live). gate, when non-nil, parks the writer while the
// relay is stalled (see faults.go).
func delayPump(src io.Reader, dst io.Writer, delay time.Duration, counter *atomic.Int64, gate func() bool) {
	ch := make(chan chunk, 256)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for c := range ch {
			if gate != nil && !gate() {
				for range ch { // relay closed mid-stall: drain and exit
				}
				return
			}
			if d := time.Until(c.release); d > 0 {
				time.Sleep(d)
			}
			if _, err := dst.Write(c.data); err != nil {
				for range ch {
				}
				return
			}
			if counter != nil {
				counter.Add(int64(len(c.data)))
			}
		}
	}()
	buf := make([]byte, 4096)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			data := make([]byte, n)
			copy(data, buf[:n])
			ch <- chunk{data: data, release: time.Now().Add(delay)}
		}
		if err != nil {
			break
		}
	}
	close(ch)
	wg.Wait()
}
