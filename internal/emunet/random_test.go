package emunet

import (
	"reflect"
	"testing"
	"time"
)

func TestRandomFaultsDeterministic(t *testing.T) {
	a := RandomFaults(42, 30*time.Second, 200*time.Millisecond, 150*time.Millisecond)
	b := RandomFaults(42, 30*time.Second, 200*time.Millisecond, 150*time.Millisecond)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if len(a) == 0 {
		t.Fatal("30s schedule drew no events")
	}
	c := RandomFaults(43, 30*time.Second, 200*time.Millisecond, 150*time.Millisecond)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestRandomFaultsWellFormed(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		const dur = 20 * time.Second
		evs := RandomFaults(seed, dur, 100*time.Millisecond, 200*time.Millisecond)
		stalled := 0
		for i, ev := range evs {
			if ev.At < 0 || ev.At > dur {
				t.Fatalf("seed %d: event %d at %v outside [0,%v]", seed, i, ev.At, dur)
			}
			if i > 0 && ev.At < evs[i-1].At {
				t.Fatalf("seed %d: schedule not sorted at %d", seed, i)
			}
			switch ev.Kind {
			case FaultStall:
				if stalled++; stalled > 1 {
					t.Fatalf("seed %d: nested stall at %d", seed, i)
				}
			case FaultUnstall:
				if stalled--; stalled < 0 {
					t.Fatalf("seed %d: unstall without stall at %d", seed, i)
				}
			}
		}
		// Every stall is paired: a completed schedule leaves traffic flowing.
		if stalled != 0 {
			t.Fatalf("seed %d: %d unclosed stalls", seed, stalled)
		}
	}
}
