package emunet

import (
	"testing"
	"time"
)

func TestPeriodicEpisodesSchedule(t *testing.T) {
	e := NewPeriodicEpisodes(200*time.Millisecond, 80*time.Millisecond, 50*time.Millisecond)
	defer e.Stop()
	if e.Active() {
		t.Fatal("active before offset")
	}
	time.Sleep(90 * time.Millisecond) // inside first episode (50..130ms)
	if !e.Active() {
		t.Fatal("not active during scheduled episode")
	}
	time.Sleep(80 * time.Millisecond) // past episode end (t≈170ms)
	if e.Active() {
		t.Fatal("active after episode end")
	}
	time.Sleep(120 * time.Millisecond) // inside second episode (250..330ms)
	if !e.Active() {
		t.Fatal("second period did not fire")
	}
}

func TestPeriodicEpisodesBadDurationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("dur >= period accepted")
		}
	}()
	NewPeriodicEpisodes(time.Second, time.Second, 0)
}

func TestEpisodesStopIsIdempotent(t *testing.T) {
	e := NewEpisodes(10, 50*time.Millisecond, 1)
	e.Stop()
	e.Stop() // second stop must not panic
}

func TestRandomEpisodesToggle(t *testing.T) {
	e := NewEpisodes(50, 20*time.Millisecond, 7) // fast process
	defer e.Stop()
	sawOn, sawOff := false, false
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && !(sawOn && sawOff) {
		if e.Active() {
			sawOn = true
		} else {
			sawOff = true
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !sawOn || !sawOff {
		t.Fatalf("process did not toggle (on=%v off=%v)", sawOn, sawOff)
	}
}

func TestSharedEpisodesThrottleRelay(t *testing.T) {
	// A relay with a shared process that is permanently ON must forward at
	// the episode rate; with the process OFF, at full rate.
	run := func(active bool) time.Duration {
		b := newSinkBackend(t)
		var e *Episodes
		if active {
			// Zero offset: the episode starts immediately and lasts ~1h.
			e = NewPeriodicEpisodes(time.Hour, time.Hour-time.Second, 0)
			time.Sleep(20 * time.Millisecond)
			if !e.Active() {
				t.Fatal("shared process should be active")
			}
		} else {
			// First episode is an hour away: permanently inactive here.
			e = NewPeriodicEpisodes(time.Hour, time.Second, time.Hour)
		}
		defer e.Stop()
		r, err := Listen("127.0.0.1:0", b.ln.Addr().String(), PathConfig{
			RateBps:       400 * 1024,
			EpisodeFactor: 0.1,
			Shared:        e,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		start := time.Now()
		dialAndSend(t, r.Addr(), make([]byte, 100*1024))
		<-b.done
		return time.Since(start)
	}
	slow := run(true)
	fast := run(false)
	if slow < 3*fast {
		t.Fatalf("shared episode did not throttle: active %v vs inactive %v", slow, fast)
	}
}
