package emunet

import (
	"io"
	"net"
	"testing"
	"time"
)

func TestParseFaultScriptRoundTrip(t *testing.T) {
	evs, err := ParseFaultScript(" drop@5s, stall@7s ,unstall@9s,sever@12s")
	if err != nil {
		t.Fatal(err)
	}
	want := []FaultEvent{
		{5 * time.Second, FaultDrop},
		{7 * time.Second, FaultStall},
		{9 * time.Second, FaultUnstall},
		{12 * time.Second, FaultSever},
	}
	if len(evs) != len(want) {
		t.Fatalf("parsed %d events, want %d", len(evs), len(want))
	}
	for i := range want {
		if evs[i] != want[i] {
			t.Fatalf("event %d: %+v, want %+v", i, evs[i], want[i])
		}
	}
	evs2, err := ParseFaultScript(FormatFaultScript(evs))
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	for i := range evs {
		if evs2[i] != evs[i] {
			t.Fatalf("round trip changed event %d: %+v != %+v", i, evs2[i], evs[i])
		}
	}
}

func TestParseFaultScriptErrors(t *testing.T) {
	for _, s := range []string{"drop", "blip@1s", "drop@-1s", "drop@xyz", "@1s"} {
		if _, err := ParseFaultScript(s); err == nil {
			t.Errorf("script %q accepted", s)
		}
	}
	if evs, err := ParseFaultScript("  "); err != nil || len(evs) != 0 {
		t.Errorf("blank script: %v, %d events", err, len(evs))
	}
}

// TestDropResetsConns: Drop must kill an in-flight connection abruptly while
// the relay keeps accepting, so a redial establishes a fresh path.
func TestDropResetsConns(t *testing.T) {
	b := newSinkBackend(t)
	r, err := Listen("127.0.0.1:0", b.ln.Addr().String(), PathConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	conn, err := net.Dial("tcp", r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("before")); err != nil {
		t.Fatal(err)
	}
	// Let the relay register both sides before firing the fault.
	time.Sleep(50 * time.Millisecond)
	r.Drop()
	// The dead conn surfaces as a read error promptly (RST or EOF — both are
	// "the path died", and which one wins depends on pump close ordering).
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("read succeeded on dropped connection")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("dropped connection still silently open after 3s")
	}
	// Redial works: the listener survived the fault.
	c2, err := net.Dial("tcp", r.Addr())
	if err != nil {
		t.Fatalf("redial after Drop: %v", err)
	}
	c2.Close()
}

// TestStallBlackholes: during a Stall no byte crosses the relay but the
// connection stays open; Unstall releases the parked bytes.
func TestStallBlackholes(t *testing.T) {
	b := newSinkBackend(t)
	r, err := Listen("127.0.0.1:0", b.ln.Addr().String(), PathConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	conn, err := net.Dial("tcp", r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("warmup")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for len(b.bytesReceived()) < 6 {
		if time.Now().After(deadline) {
			t.Fatal("warmup bytes never forwarded")
		}
		time.Sleep(5 * time.Millisecond)
	}

	r.Stall()
	if !r.Stalled() {
		t.Fatal("Stalled() false after Stall")
	}
	if _, err := conn.Write([]byte("black")); err != nil {
		t.Fatalf("write during stall should buffer, not error: %v", err)
	}
	time.Sleep(300 * time.Millisecond)
	if got := len(b.bytesReceived()); got != 6 {
		t.Fatalf("bytes leaked through stalled relay: %d", got)
	}

	r.Unstall()
	r.Unstall() // idempotent
	deadline = time.Now().Add(3 * time.Second)
	for len(b.bytesReceived()) < 11 {
		if time.Now().After(deadline) {
			t.Fatalf("bytes never released after Unstall: %d", len(b.bytesReceived()))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTimelineFiresInOrder: a scheduled stall window must toggle Stalled at
// the scripted offsets, and Stop must cancel anything still pending.
func TestTimelineFiresInOrder(t *testing.T) {
	b := newSinkBackend(t)
	r, err := Listen("127.0.0.1:0", b.ln.Addr().String(), PathConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	tl := r.Schedule([]FaultEvent{
		{At: 250 * time.Millisecond, Kind: FaultUnstall},
		{At: 50 * time.Millisecond, Kind: FaultStall}, // out of order on purpose
		{At: time.Hour, Kind: FaultDrop},              // cancelled by Stop
	})
	defer tl.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for !r.Stalled() {
		if time.Now().After(deadline) {
			t.Fatal("scheduled stall never fired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for r.Stalled() {
		if time.Now().After(deadline) {
			t.Fatal("scheduled unstall never fired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	tl.Stop()
	tl.Stop() // idempotent
}

// TestCloseWhileStalled: closing a stalled relay must not deadlock — parked
// pumps observe the close and exit.
func TestCloseWhileStalled(t *testing.T) {
	b := newSinkBackend(t)
	r, err := Listen("127.0.0.1:0", b.ln.Addr().String(), PathConfig{})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r.Stall()
	if _, err := conn.Write(make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		_ = r.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close deadlocked on a stalled relay")
	}
}

// TestSeverClosesCleanly: Sever ends every conn with EOF semantics and the
// relay keeps accepting.
func TestSeverClosesCleanly(t *testing.T) {
	b := newSinkBackend(t)
	r, err := Listen("127.0.0.1:0", b.ln.Addr().String(), PathConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	conn, err := net.Dial("tcp", r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	r.Sever()
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	if _, err := io.Copy(io.Discard, conn); err != nil {
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			t.Fatal("severed connection still open after 3s")
		}
	}
	if c2, err := net.Dial("tcp", r.Addr()); err != nil {
		t.Fatalf("redial after Sever: %v", err)
	} else {
		c2.Close()
	}
}

func FuzzParseFaultScript(f *testing.F) {
	f.Add("drop@5s,stall@7s,unstall@9s,sever@12s")
	f.Add("drop@0s")
	f.Add("")
	f.Add("stall@1h,unstall@90m")
	f.Add("drop@-1s")
	f.Add("x@y,,@@")
	f.Fuzz(func(t *testing.T, s string) {
		evs, err := ParseFaultScript(s)
		if err != nil {
			return
		}
		for _, ev := range evs {
			if ev.At < 0 {
				t.Fatalf("accepted negative offset %v", ev.At)
			}
			switch ev.Kind {
			case FaultDrop, FaultStall, FaultUnstall, FaultSever:
			default:
				t.Fatalf("accepted unknown kind %v", ev.Kind)
			}
		}
		// Accepted scripts must survive a format/parse round trip.
		evs2, err := ParseFaultScript(FormatFaultScript(evs))
		if err != nil {
			t.Fatalf("formatted script does not reparse: %v", err)
		}
		if len(evs2) != len(evs) {
			t.Fatalf("round trip changed length %d != %d", len(evs2), len(evs))
		}
		for i := range evs {
			if evs2[i] != evs[i] {
				t.Fatalf("round trip changed event %d: %+v != %+v", i, evs2[i], evs[i])
			}
		}
	})
}
