// Seeded random fault schedules: the bridge between the deterministic
// fault scripts (faults.go) and chaos testing. A schedule is drawn once
// from a seed and then replayed by Relay.Schedule, so a failing chaos run
// reproduces from its seed alone.
package emunet

import (
	"math/rand"
	"time"
)

// RandomFaults draws a reproducible random fault schedule covering
// `duration`: fault events occur at exponentially distributed gaps with
// mean `gap`; each event is a connection drop (RST, twice as likely — it
// exercises redial paths hardest), a clean sever (FIN), or a stall paired
// with an unstall after an exponentially distributed hold with mean
// `stall`. Every stall's unstall lands inside the schedule, so a timeline
// that runs to completion leaves the relay passing traffic. The same
// (seed, duration, gap, stall) always yields the same schedule.
func RandomFaults(seed int64, duration, gap, stall time.Duration) []FaultEvent {
	rng := rand.New(rand.NewSource(seed))
	next := func(mean time.Duration) time.Duration {
		return time.Duration(rng.ExpFloat64() * float64(mean))
	}
	var out []FaultEvent
	for at := next(gap); at < duration; at += next(gap) {
		switch rng.Intn(4) {
		case 0, 1:
			out = append(out, FaultEvent{At: at, Kind: FaultDrop})
		case 2:
			out = append(out, FaultEvent{At: at, Kind: FaultSever})
		default:
			hold := next(stall)
			if rest := duration - at; hold > rest {
				hold = rest
			}
			out = append(out,
				FaultEvent{At: at, Kind: FaultStall},
				FaultEvent{At: at + hold, Kind: FaultUnstall})
			// The next gap starts after the unstall: stalls never nest, and
			// the schedule stays sorted as generated.
			at += hold
		}
	}
	return out
}
