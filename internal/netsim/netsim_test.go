package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dmpstream/internal/sim"
)

type collector struct {
	pkts  []*Packet
	times []sim.Time
	s     *sim.Simulator
}

func (c *collector) Deliver(pkt *Packet) {
	c.pkts = append(c.pkts, pkt)
	c.times = append(c.times, c.s.Now())
}

func TestSinglePacketLatency(t *testing.T) {
	s := sim.New(1)
	c := &collector{s: s}
	// 1 Mbps, 10 ms delay: a 1250-byte packet serializes in 10 ms.
	l := NewLink(s, "l", 1.0, 10*sim.Millisecond, 10, c)
	l.Deliver(&Packet{SizeB: 1250})
	s.RunAll()
	if len(c.pkts) != 1 {
		t.Fatalf("delivered %d packets", len(c.pkts))
	}
	if c.times[0] != 20*sim.Millisecond {
		t.Fatalf("latency = %v, want 20ms", c.times[0])
	}
}

func TestPipelining(t *testing.T) {
	// Transmission of packet 2 overlaps propagation of packet 1.
	s := sim.New(1)
	c := &collector{s: s}
	l := NewLink(s, "l", 1.0, 100*sim.Millisecond, 10, c)
	l.Deliver(&Packet{SizeB: 1250})
	l.Deliver(&Packet{SizeB: 1250})
	s.RunAll()
	if len(c.pkts) != 2 {
		t.Fatalf("delivered %d", len(c.pkts))
	}
	if c.times[0] != 110*sim.Millisecond || c.times[1] != 120*sim.Millisecond {
		t.Fatalf("times = %v", c.times)
	}
}

func TestDropTail(t *testing.T) {
	s := sim.New(1)
	c := &collector{s: s}
	l := NewLink(s, "l", 1.0, 0, 2, c)
	var dropped []*Packet
	l.OnDrop = func(p *Packet) { dropped = append(dropped, p) }
	// One in service + 2 queued fit; the 4th and 5th drop.
	for i := 0; i < 5; i++ {
		l.Deliver(&Packet{SizeB: 1250, Flow: FlowID(i)})
	}
	s.RunAll()
	if len(c.pkts) != 3 || len(dropped) != 2 {
		t.Fatalf("delivered %d dropped %d", len(c.pkts), len(dropped))
	}
	st := l.Stats()
	if st.Dropped != 2 || st.Sent != 3 || st.Enqueued != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if dropped[0].Flow != 3 || dropped[1].Flow != 4 {
		t.Fatalf("wrong packets dropped: %v %v", dropped[0].Flow, dropped[1].Flow)
	}
}

func TestPerFlowStats(t *testing.T) {
	s := sim.New(1)
	c := &collector{s: s}
	l := NewLink(s, "l", 1.0, 0, 1, c)
	l.Deliver(&Packet{SizeB: 1250, Flow: 1}) // in service
	l.Deliver(&Packet{SizeB: 1250, Flow: 2}) // queued
	l.Deliver(&Packet{SizeB: 1250, Flow: 2}) // dropped
	s.RunAll()
	st := l.Stats()
	if st.ByFlow[1].Enqueued != 1 || st.ByFlow[1].Dropped != 0 {
		t.Fatalf("flow1 = %+v", st.ByFlow[1])
	}
	if st.ByFlow[2].Enqueued != 1 || st.ByFlow[2].Dropped != 1 {
		t.Fatalf("flow2 = %+v", st.ByFlow[2])
	}
}

func TestFIFOOrder(t *testing.T) {
	s := sim.New(1)
	c := &collector{s: s}
	l := NewLink(s, "l", 10.0, sim.Millisecond, 100, c)
	for i := 0; i < 50; i++ {
		l.Deliver(&Packet{SizeB: 100, Flow: FlowID(i)})
	}
	s.RunAll()
	for i, p := range c.pkts {
		if p.Flow != FlowID(i) {
			t.Fatalf("packet %d has flow %d", i, p.Flow)
		}
	}
}

func TestPathChaining(t *testing.T) {
	s := sim.New(1)
	c := &collector{s: s}
	l1 := NewLink(s, "l1", 100, 10*sim.Millisecond, 50, nil)
	l2 := NewLink(s, "l2", 100, 40*sim.Millisecond, 50, nil)
	p := NewPath(c, l1, l2)
	p.Deliver(&Packet{SizeB: 1250})
	s.RunAll()
	if len(c.pkts) != 1 {
		t.Fatalf("delivered %d", len(c.pkts))
	}
	// 0.1ms tx + 10ms + 0.1ms tx + 40ms = 50.2ms
	want := 2*sim.Time(float64(1250*8)/100e6*float64(sim.Second)) + 50*sim.Millisecond
	if c.times[0] != want {
		t.Fatalf("latency = %v, want %v", c.times[0], want)
	}
}

func TestEmptyPathDeliversDirect(t *testing.T) {
	s := sim.New(1)
	c := &collector{s: s}
	p := NewPath(c)
	p.Deliver(&Packet{SizeB: 1})
	if len(c.pkts) != 1 {
		t.Fatal("empty path did not deliver")
	}
}

func TestBadLinkParamsPanic(t *testing.T) {
	s := sim.New(1)
	for name, fn := range map[string]func(){
		"rate":   func() { NewLink(s, "x", 0, 0, 1, nil) },
		"buffer": func() { NewLink(s, "x", 1, 0, 0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: conservation — every packet offered to a link is either delivered
// or dropped, exactly once, and deliveries preserve FIFO order.
func TestPropertyConservationAndOrder(t *testing.T) {
	f := func(seed int64, nPkts uint8, buffer uint8) bool {
		n := int(nPkts%200) + 1
		buf := int(buffer%20) + 1
		s := sim.New(seed)
		c := &collector{s: s}
		l := NewLink(s, "l", 0.5, 5*sim.Millisecond, buf, c)
		drops := 0
		l.OnDrop = func(*Packet) { drops++ }
		rng := rand.New(rand.NewSource(seed))
		sent := 0
		var inject func()
		inject = func() {
			l.Deliver(&Packet{SizeB: 100 + rng.Intn(1400), Flow: FlowID(sent)})
			sent++
			if sent < n {
				s.After(sim.Time(rng.Intn(5000))*sim.Microsecond, inject)
			}
		}
		s.After(0, inject)
		s.RunAll()
		if len(c.pkts)+drops != n {
			return false
		}
		last := FlowID(-1)
		for _, p := range c.pkts {
			if p.Flow <= last {
				return false
			}
			last = p.Flow
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: link throughput never exceeds capacity. Send a large burst and
// check the delivery completion time is at least total bits / rate.
func TestPropertyCapacityRespected(t *testing.T) {
	f := func(nPkts uint8) bool {
		n := int(nPkts%100) + 2
		s := sim.New(3)
		c := &collector{s: s}
		l := NewLink(s, "l", 2.0, 0, n, c)
		for i := 0; i < n; i++ {
			l.Deliver(&Packet{SizeB: 1000})
		}
		s.RunAll()
		if len(c.pkts) != n {
			return false
		}
		minTime := sim.Time(float64(n*1000*8) / 2e6 * float64(sim.Second))
		return c.times[len(c.times)-1] >= minTime-sim.Microsecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLinkForwarding(b *testing.B) {
	s := sim.New(1)
	c := &collector{s: s}
	l := NewLink(s, "l", 1000, sim.Millisecond, 1<<30, c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Deliver(&Packet{SizeB: 1500})
	}
	s.RunAll()
}
