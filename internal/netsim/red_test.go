package netsim

import (
	"testing"

	"dmpstream/internal/sim"
)

func TestREDIdleQueuePassesEverything(t *testing.T) {
	s := sim.New(1)
	c := &collector{s: s}
	_, red := NewREDLink(s, "red", 100, sim.Millisecond, 50, REDConfig{}, c)
	for i := 0; i < 20; i++ {
		red.Deliver(&Packet{SizeB: 1500})
		s.RunAll()
	}
	if red.EarlyDrops() != 0 {
		t.Fatalf("early drops on an idle link: %d", red.EarlyDrops())
	}
	if len(c.pkts) != 20 {
		t.Fatalf("delivered %d", len(c.pkts))
	}
}

func TestREDDropsUnderSustainedOverload(t *testing.T) {
	s := sim.New(2)
	c := &collector{s: s}
	link, red := NewREDLink(s, "red", 1.0, sim.Millisecond, 50, REDConfig{Weight: 0.05}, c)
	// Offer 3x the link rate for 20 seconds.
	var n int
	var inject func()
	inject = func() {
		red.Deliver(&Packet{SizeB: 1500})
		n++
		if n < 5000 {
			s.After(4*sim.Millisecond, inject)
		}
	}
	s.After(0, inject)
	s.RunAll()
	if red.EarlyDrops() == 0 {
		t.Fatal("no early drops at 3x overload")
	}
	// RED should do its job early enough that the tail rarely drops.
	tail := link.Stats().Dropped
	if tail > red.EarlyDrops() {
		t.Fatalf("tail drops (%d) exceed RED drops (%d)", tail, red.EarlyDrops())
	}
	if red.AvgQueue() <= 0 {
		t.Fatal("average queue never moved")
	}
}

func TestREDForcedDropAboveMaxThresh(t *testing.T) {
	s := sim.New(3)
	c := &collector{s: s}
	_, red := NewREDLink(s, "red", 0.1, 0, 100, REDConfig{MinThresh: 1, MaxThresh: 2, Weight: 1}, c)
	// Weight 1 makes avg equal the instantaneous queue. Flood without
	// letting the link drain: once queue ≥ 2, everything is force-dropped.
	for i := 0; i < 50; i++ {
		red.Deliver(&Packet{SizeB: 1500})
	}
	if red.EarlyDrops() < 40 {
		t.Fatalf("forced drops = %d, want ≥40", red.EarlyDrops())
	}
	s.RunAll()
}

func TestREDConfigDefaults(t *testing.T) {
	cfg := REDConfig{}.withDefaults(100)
	if cfg.MinThresh != 25 || cfg.MaxThresh != 50 || cfg.MaxP != 0.1 || cfg.Weight != 0.002 {
		t.Fatalf("defaults = %+v", cfg)
	}
}
