package netsim

import (
	"math"

	"dmpstream/internal/sim"
)

// REDConfig parameterizes Random Early Detection (Floyd & Jacobson 1993),
// the standard ns-2 alternative to drop-tail queueing. Packets are dropped
// probabilistically as the exponentially-weighted average queue length moves
// between MinThresh and MaxThresh, avoiding the synchronized whole-window
// losses that full drop-tail buffers inflict.
type REDConfig struct {
	MinThresh float64 // average-queue drop onset, packets (default buffer/4)
	MaxThresh float64 // average-queue forced-drop point (default buffer/2)
	MaxP      float64 // drop probability at MaxThresh (default 0.1)
	Weight    float64 // EWMA weight for the average queue (default 0.002)
}

func (c REDConfig) withDefaults(buffer int) REDConfig {
	if c.MinThresh == 0 {
		c.MinThresh = float64(buffer) / 4
	}
	if c.MaxThresh == 0 {
		c.MaxThresh = float64(buffer) / 2
	}
	if c.MaxP == 0 {
		c.MaxP = 0.1
	}
	if c.Weight == 0 {
		c.Weight = 0.002
	}
	return c
}

// redQueue implements the RED admission decision in front of a Link. It
// wraps the link's Deliver: admitted packets proceed to the (still finite,
// drop-tail-backed) link queue.
type redQueue struct {
	s    *sim.Simulator
	cfg  REDConfig
	link *Link

	avg   float64 // EWMA of the instantaneous queue length
	count int     // packets since the last drop (spreads drops out)

	Dropped int64 // early (RED) drops; tail drops are counted by the link
}

// NewREDLink builds a link whose admissions are governed by RED. The
// underlying buffer still bounds the instantaneous queue (tail drops can
// occur under bursts faster than the EWMA reacts).
func NewREDLink(s *sim.Simulator, name string, rateMbps float64, delay sim.Time, buffer int, cfg REDConfig, sink Sink) (*Link, *RED) {
	link := NewLink(s, name, rateMbps, delay, buffer, sink)
	rq := &redQueue{s: s, cfg: cfg.withDefaults(buffer), link: link}
	return link, &RED{q: rq}
}

// RED is the admission wrapper returned by NewREDLink; point senders at it
// instead of the raw link.
type RED struct{ q *redQueue }

// Deliver implements Sink with RED admission.
func (r *RED) Deliver(pkt *Packet) { r.q.deliver(pkt) }

// EarlyDrops returns the number of packets RED dropped before the queue.
func (r *RED) EarlyDrops() int64 { return r.q.Dropped }

// AvgQueue returns the current EWMA queue estimate (for tests).
func (r *RED) AvgQueue() float64 { return r.q.avg }

func (q *redQueue) deliver(pkt *Packet) {
	// Update the average with the instantaneous queue length.
	inst := float64(q.link.QueueLen())
	q.avg = (1-q.cfg.Weight)*q.avg + q.cfg.Weight*inst

	switch {
	case q.avg < q.cfg.MinThresh:
		q.count = 0
	case q.avg >= q.cfg.MaxThresh:
		q.Dropped++
		q.count = 0
		return
	default:
		q.count++
		frac := (q.avg - q.cfg.MinThresh) / (q.cfg.MaxThresh - q.cfg.MinThresh)
		pb := q.cfg.MaxP * frac
		// Spread drops uniformly: effective probability pb/(1 - count·pb).
		pa := pb / math.Max(1e-9, 1-float64(q.count)*pb)
		if pa >= 1 || q.s.Rand().Float64() < pa {
			q.Dropped++
			q.count = 0
			return
		}
	}
	q.link.Deliver(pkt)
}
