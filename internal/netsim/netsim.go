// Package netsim models network links for the packet-level simulator.
//
// The topology elements mirror what the paper's ns-2 setup needs: store-and-
// forward links with a transmission rate, a propagation delay, and a finite
// drop-tail buffer measured in packets (Table 1 of the paper), assembled into
// unidirectional paths. Packet losses arise only from buffer overflow at a
// bottleneck link, exactly as in the paper's Figure 3/6 topologies.
package netsim

import (
	"fmt"

	"dmpstream/internal/sim"
)

// FlowID identifies a traffic flow for per-flow accounting at links.
type FlowID int32

// Packet is one simulated packet. TCP segments and ACKs are both Packets;
// Payload carries protocol state opaque to the network layer.
type Packet struct {
	Flow    FlowID
	SizeB   int // wire size in bytes
	Payload any
}

// Sink consumes packets at the downstream end of a link or path.
type Sink interface {
	Deliver(pkt *Packet)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(pkt *Packet)

// Deliver implements Sink.
func (f SinkFunc) Deliver(pkt *Packet) { f(pkt) }

// LinkStats counts traffic through a link, overall and per flow.
type LinkStats struct {
	Enqueued int64
	Dropped  int64
	Sent     int64 // packets fully transmitted
	ByFlow   map[FlowID]*FlowStats
}

// FlowStats is per-flow link accounting.
type FlowStats struct {
	Enqueued int64
	Dropped  int64
}

// Link is a unidirectional store-and-forward link with a drop-tail queue.
// The buffer limit counts queued packets excluding the one in transmission,
// matching ns-2's DropTail queue semantics closely enough for this study.
type Link struct {
	Name string

	sim      *sim.Simulator
	rateBps  float64  // bits per second
	delay    sim.Time // propagation delay
	buffer   int      // max queued packets
	sink     Sink
	queue    []*Packet
	busy     bool
	stats    LinkStats
	OnDrop   func(pkt *Packet) // optional drop hook (loss notification for tests)
	OnDepart func(pkt *Packet) // optional hook when transmission completes
}

// NewLink builds a link. rateMbps is in megabits per second; buffer is the
// drop-tail queue limit in packets; sink receives packets after transmission
// plus propagation delay.
func NewLink(s *sim.Simulator, name string, rateMbps float64, delay sim.Time, buffer int, sink Sink) *Link {
	if rateMbps <= 0 {
		panic(fmt.Sprintf("netsim: link %s: non-positive rate %v", name, rateMbps))
	}
	if buffer < 1 {
		panic(fmt.Sprintf("netsim: link %s: buffer %d < 1", name, buffer))
	}
	return &Link{
		Name:    name,
		sim:     s,
		rateBps: rateMbps * 1e6,
		delay:   delay,
		buffer:  buffer,
		sink:    sink,
		stats:   LinkStats{ByFlow: make(map[FlowID]*FlowStats)},
	}
}

// SetSink redirects delivered packets; used when composing paths.
func (l *Link) SetSink(sink Sink) { l.sink = sink }

// SetRate changes the link's transmission rate (Mbps) from now on. The
// packet currently being serialized finishes at the old rate; queued packets
// are served at the new one. Used to model time-varying capacity (the
// paper's Section 7.3 alternating-path scenario).
func (l *Link) SetRate(rateMbps float64) {
	if rateMbps <= 0 {
		panic(fmt.Sprintf("netsim: link %s: non-positive rate %v", l.Name, rateMbps))
	}
	l.rateBps = rateMbps * 1e6
}

// Rate returns the current transmission rate in Mbps.
func (l *Link) Rate() float64 { return l.rateBps / 1e6 }

// Stats returns a snapshot of the link counters.
func (l *Link) Stats() LinkStats { return l.stats }

// QueueLen returns the number of queued packets (excluding one in service).
func (l *Link) QueueLen() int { return len(l.queue) }

func (l *Link) flowStats(id FlowID) *FlowStats {
	fs := l.stats.ByFlow[id]
	if fs == nil {
		fs = &FlowStats{}
		l.stats.ByFlow[id] = fs
	}
	return fs
}

// Deliver implements Sink: packets arriving at the link head are enqueued or
// dropped (drop-tail).
func (l *Link) Deliver(pkt *Packet) {
	fs := l.flowStats(pkt.Flow)
	if !l.busy {
		l.stats.Enqueued++
		fs.Enqueued++
		l.transmit(pkt)
		return
	}
	if len(l.queue) >= l.buffer {
		l.stats.Dropped++
		fs.Dropped++
		if l.OnDrop != nil {
			l.OnDrop(pkt)
		}
		return
	}
	l.stats.Enqueued++
	fs.Enqueued++
	l.queue = append(l.queue, pkt)
}

// transmit starts serializing pkt onto the wire.
func (l *Link) transmit(pkt *Packet) {
	l.busy = true
	txTime := sim.Time(float64(pkt.SizeB*8) / l.rateBps * float64(sim.Second))
	l.sim.After(txTime, func() {
		l.stats.Sent++
		if l.OnDepart != nil {
			l.OnDepart(pkt)
		}
		// Propagation: the packet is on the wire; the link is free to
		// serialize the next one concurrently.
		l.sim.After(l.delay, func() { l.sink.Deliver(pkt) })
		if len(l.queue) > 0 {
			next := l.queue[0]
			copy(l.queue, l.queue[1:])
			l.queue[len(l.queue)-1] = nil
			l.queue = l.queue[:len(l.queue)-1]
			l.transmit(next)
		} else {
			l.busy = false
		}
	})
}

// Path is a chain of links delivering to a final sink. It implements Sink so
// senders can be pointed at it directly.
type Path struct {
	first Sink
}

// NewPath chains links head-to-tail and terminates at sink. With no links the
// path delivers directly (zero-latency, used in unit tests).
func NewPath(sink Sink, links ...*Link) *Path {
	next := sink
	for i := len(links) - 1; i >= 0; i-- {
		links[i].SetSink(next)
		next = links[i]
	}
	return &Path{first: next}
}

// Deliver implements Sink.
func (p *Path) Deliver(pkt *Packet) { p.first.Deliver(pkt) }
